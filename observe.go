package ccubing

// Process-wide query-path instrumentation, recorded into obs.Default. The
// histograms time the two stages every point query resolves through — the
// result-cache hit or the covering probe of the closed store — and the
// counter funcs bridge cubestore's striped probe totals into the exposition
// without cubestore importing obs (the store stays a pure index).

import (
	"ccubing/internal/cubestore"
	"ccubing/internal/obs"
)

var (
	probeSeconds = obs.Default.Histogram("ccubing_probe_seconds",
		"Latency of covering probes against the closed store (point queries that miss or bypass the result cache).")
	cacheHitSeconds = obs.Default.Histogram("ccubing_cache_hit_seconds",
		"Latency of point queries answered from the query-result cache.")
)

func init() {
	obs.Default.CounterFunc("ccubing_probe_ops_total",
		"Point-lookup operations (Query/Lookup) against any closed store in this process.",
		func() int64 { ops, _, _ := cubestore.ProbeTotals(); return ops })
	obs.Default.CounterFunc("ccubing_probe_groups_total",
		"Covering cuboid groups probed; divided by ccubing_probe_ops_total this is the mean probe depth.",
		func() int64 { _, groups, _ := cubestore.ProbeTotals(); return groups })
	obs.Default.CounterFunc("ccubing_probe_candidates_total",
		"Candidate-list entries scanned by the cuboid-lattice index; per op this is the mean candidate list length.",
		func() int64 { _, _, cands := cubestore.ProbeTotals(); return cands })
}
