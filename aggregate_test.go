package ccubing

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCubeClosureIdempotence is the closure-idempotence property test: for
// random cubes and random queries, re-querying the exact cell Lookup returns
// must return that same cell with the same count and measure. (Closure is a
// fixpoint: closure(closure(q)) == closure(q).)
func TestCubeClosureIdempotence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cards := []int{5 + int(seed), 6, 4, 3 + int(seed%2)}
		ds, err := Synthetic(SyntheticConfig{T: 400 + 100*int(seed), Cards: cards, Skew: 0.8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		aux := make([]float64, ds.NumTuples())
		for i := range aux {
			aux[i] = float64((i*7)%19) - 3
		}
		if err := ds.SetMeasure(aux); err != nil {
			t.Fatal(err)
		}
		minsup := int64(1 + seed%3)
		cube, err := Materialize(ds, Options{MinSup: minsup, Measure: MeasureSum})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 101))
		for _, q := range cubeFuzzQueries(rng, ds, 800) {
			c, ok := cube.Lookup(q)
			if !ok {
				continue
			}
			again, ok2 := cube.Lookup(c.Values)
			if !ok2 {
				t.Fatalf("seed %d: closure %v of %v misses on re-query", seed, c.Values, q)
			}
			if fmt.Sprint(again.Values) != fmt.Sprint(c.Values) || again.Count != c.Count || again.Aux != c.Aux {
				t.Fatalf("seed %d: closure not idempotent: %v (%d,%g) re-queried as %v (%d,%g)",
					seed, c.Values, c.Count, c.Aux, again.Values, again.Count, again.Aux)
			}
		}
	}
}

// matchPred reports whether a coded value satisfies a facade predicate.
func matchPred(p Predicate, v int32) bool {
	switch p.Op {
	case PredAny:
		return true
	case PredEq:
		return v == p.Value
	case PredRange:
		return v >= p.Lo && v <= p.Hi
	default:
		for _, sv := range p.Set {
			if v == sv {
				return true
			}
		}
		return false
	}
}

// randomFacadeSpec draws a random predicate vector over the dataset's domain.
func randomFacadeSpec(rng *rand.Rand, cards []int) QuerySpec {
	spec := make(QuerySpec, len(cards))
	for d, card := range cards {
		switch rng.Intn(4) {
		case 0:
			spec[d] = Predicate{Op: PredAny}
		case 1:
			spec[d] = Predicate{Op: PredEq, Value: int32(rng.Intn(card))}
		case 2:
			lo := int32(rng.Intn(card))
			spec[d] = Predicate{Op: PredRange, Lo: lo, Hi: lo + int32(rng.Intn(card))}
		default:
			set := make([]int32, 1+rng.Intn(3))
			for i := range set {
				set[i] = int32(rng.Intn(card))
			}
			spec[d] = Predicate{Op: PredIn, Set: set}
		}
	}
	return spec
}

// TestCubeSelectEquivalence checks Select against filtering the closed cube
// computed by ComputeCollect, at several iceberg thresholds (Select filters
// stored cells, so it is exact for iceberg cubes too).
func TestCubeSelectEquivalence(t *testing.T) {
	cards := []int{6, 5, 4, 3}
	ds, err := Synthetic(SyntheticConfig{T: 600, Cards: cards, Skew: 1.1, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []int64{1, 3} {
		cube, err := Materialize(ds, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		closed, _, err := ComputeCollect(ds, Options{MinSup: minsup, Closed: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(minsup))
		for i := 0; i < 100; i++ {
			spec := randomFacadeSpec(rng, cards)
			want := map[string]int64{}
			for _, c := range closed {
				ok := true
				for d, p := range spec {
					if p.Op == PredAny {
						continue
					}
					if c.Values[d] == Star || !matchPred(p, c.Values[d]) {
						ok = false
						break
					}
				}
				if ok {
					want[fmt.Sprint(c.Values)] = c.Count
				}
			}
			got := map[string]int64{}
			if err := cube.Select(spec, func(c Cell) bool {
				got[fmt.Sprint(c.Values)] = c.Count
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("minsup=%d spec %d: %d cells, want %d", minsup, i, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("minsup=%d spec %d: mismatch at %s", minsup, i, k)
				}
			}
		}
	}
}

// TestCubeAggregateEquivalence fuzzes Aggregate — predicates, group-by and
// measure combination — against direct recomputation from the base relation
// at min_sup 1, where the closed cube is lossless and the aggregate must be
// exact. Sum, min and max measures are each exercised.
func TestCubeAggregateEquivalence(t *testing.T) {
	cards := []int{6, 5, 4, 3}
	ds, err := Synthetic(SyntheticConfig{T: 500, Cards: cards, Skew: 0.9, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64((i*13)%23) - 5
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}
	tb := ds.Table()
	names := ds.Names()
	for _, kind := range []MeasureKind{MeasureSum, MeasureMin, MeasureMax} {
		cube, err := Materialize(ds, Options{MinSup: 1, Measure: kind})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(kind)))
		for i := 0; i < 60; i++ {
			spec := randomFacadeSpec(rng, cards)
			var groupDims []int
			var groupNames []string
			for d := range cards {
				if rng.Intn(2) == 0 {
					groupDims = append(groupDims, d)
					groupNames = append(groupNames, names[d])
				}
			}
			type agg struct {
				count int64
				aux   float64
			}
			want := map[string]*agg{}
			for tid := 0; tid < tb.NumTuples(); tid++ {
				ok := true
				for d, p := range spec {
					if !matchPred(p, tb.Cols[d][tid]) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				key := ""
				for _, d := range groupDims {
					key += fmt.Sprintf("%d,", tb.Cols[d][tid])
				}
				a := want[key]
				if a == nil {
					a = &agg{aux: tb.Aux[tid]}
					want[key] = a
				} else {
					switch kind {
					case MeasureMin:
						if tb.Aux[tid] < a.aux {
							a.aux = tb.Aux[tid]
						}
					case MeasureMax:
						if tb.Aux[tid] > a.aux {
							a.aux = tb.Aux[tid]
						}
					default:
						a.aux += tb.Aux[tid]
					}
				}
				a.count++
			}
			rows, exact, err := cube.Aggregate(spec, AggregateOptions{GroupBy: groupNames, AuxAgg: kind})
			if !exact {
				t.Fatal("minsup-1 aggregate must report exact")
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(want) {
				t.Fatalf("%v spec %d groupBy %v: %d rows, want %d", kind, i, groupNames, len(rows), len(want))
			}
			for _, r := range rows {
				key := ""
				for _, d := range groupDims {
					key += fmt.Sprintf("%d,", r.Values[d])
				}
				a := want[key]
				if a == nil {
					t.Fatalf("%v spec %d: unexpected group %v", kind, i, r.Values)
				}
				if r.Count != a.count {
					t.Fatalf("%v spec %d: group %v count %d, want %d", kind, i, r.Values, r.Count, a.count)
				}
				const eps = 1e-9
				if diff := r.Aux - a.aux; diff > eps || diff < -eps {
					t.Fatalf("%v spec %d: group %v aux %g, want %g", kind, i, r.Values, r.Aux, a.aux)
				}
			}
		}
	}
}

// TestCubeAggregateTopKByAux pins aux-ranked top-k through the facade.
func TestCubeAggregateTopKByAux(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 300, Cards: []int{8, 5, 4}, Skew: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64(i % 11)
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1, Measure: MeasureSum})
	if err != nil {
		t.Fatal(err)
	}
	spec := make(QuerySpec, 3)
	all, _, err := cube.Aggregate(spec, AggregateOptions{GroupBy: []string{ds.Names()[0]}, By: ByAux})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Aux > all[i-1].Aux {
			t.Fatalf("rows not aux-descending at %d", i)
		}
	}
	top, _, err := cube.Aggregate(spec, AggregateOptions{GroupBy: []string{ds.Names()[0]}, By: ByAux, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || fmt.Sprint(top[0]) != fmt.Sprint(all[0]) {
		t.Fatalf("top-k by aux = %v", top)
	}
	// ByAux on a measureless cube is a structural error.
	plain, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plain.Aggregate(spec, AggregateOptions{By: ByAux}); err == nil {
		t.Fatal("ByAux without a measure must error")
	}
}

// TestCubeParseSpec pins the label-aware predicate syntax.
func TestCubeParseSpec(t *testing.T) {
	rows := [][]string{}
	for _, city := range []string{"oslo", "paris", "rome", "berlin"} {
		for _, year := range []string{"2023", "2024", "2025"} {
			rows = append(rows, []string{city, year})
		}
	}
	ds, err := NewDataset([]string{"city", "year"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Lexicographic label range over years, set over cities.
	spec, err := cube.ParseSpec([]string{"oslo|rome", "2024..2025"})
	if err != nil {
		t.Fatal(err)
	}
	if spec[0].Op != PredIn || len(spec[0].Set) != 2 {
		t.Fatalf("set predicate = %+v", spec[0])
	}
	if spec[1].Op != PredIn || len(spec[1].Set) != 2 {
		t.Fatalf("label range predicate = %+v (want the two codes of 2024, 2025)", spec[1])
	}
	rowsOut, _, err := cube.Aggregate(spec, AggregateOptions{GroupBy: []string{"city"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsOut) != 2 {
		t.Fatalf("aggregate rows = %v, want oslo and rome", rowsOut)
	}
	for _, r := range rowsOut {
		if r.Count != 2 { // two matching years per city
			t.Fatalf("row %v count %d, want 2", r.Values, r.Count)
		}
	}

	// Unknown labels are honest misses: predicates matching nothing.
	spec, err = cube.ParseSpec([]string{"atlantis", "*"})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := cube.Select(spec, func(Cell) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unknown label matched %d cells", n)
	}

	// Wrong arity and bad coded values are errors.
	if _, err := cube.ParseSpec([]string{"*"}); err == nil {
		t.Fatal("wrong arity must error")
	}
	coded, err := Synthetic(SyntheticConfig{T: 100, D: 2, C: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	codedCube, err := Materialize(coded, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codedCube.ParseSpec([]string{"x", "*"}); err == nil {
		t.Fatal("non-numeric coded component must error")
	}
	cspec, err := codedCube.ParseSpec([]string{"0..2", "1|3"})
	if err != nil {
		t.Fatal(err)
	}
	if cspec[0].Op != PredRange || cspec[0].Lo != 0 || cspec[0].Hi != 2 {
		t.Fatalf("coded range = %+v", cspec[0])
	}
	if cspec[1].Op != PredIn || len(cspec[1].Set) != 2 {
		t.Fatalf("coded set = %+v", cspec[1])
	}
	// Unknown group-by dimension is an error.
	if _, _, err := cube.Aggregate(make(QuerySpec, 2), AggregateOptions{GroupBy: []string{"nope"}}); err == nil {
		t.Fatal("unknown group-by dimension must error")
	}
}
