package ccubing

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"

	"ccubing/internal/cubestore"
)

// measureDataset builds a synthetic dataset with an integer-valued measure
// column (so float sums are exact and comparisons can be byte-strict).
func measureDataset(t *testing.T, seed int64) *Dataset {
	t.Helper()
	ds, err := Synthetic(SyntheticConfig{T: 600, Cards: []int{7, 6, 5, 4}, Skew: 1.0, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64((i*11)%29) - 6
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestCubeAggregateIcebergExact is the in-process half of the PR's acceptance
// contract: Cube.Aggregate on an iceberg cube (MinSup > 1, residual attached
// by Materialize) reports exact=true and returns rows identical — counts,
// measure values, order — to a MinSup-1 cube over the same relation, for
// every measure kind including algebraic avg.
func TestCubeAggregateIcebergExact(t *testing.T) {
	ds := measureDataset(t, 61)
	names := ds.Names()
	for _, kind := range []MeasureKind{MeasureSum, MeasureMin, MeasureMax, MeasureAvg} {
		iceberg, err := Materialize(ds, Options{MinSup: 3, Measure: kind})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := Materialize(ds, Options{MinSup: 1, Measure: kind})
		if err != nil {
			t.Fatal(err)
		}
		if iceberg.NumCells() >= oracle.NumCells() {
			t.Fatalf("kind=%v: iceberg cube prunes nothing (%d vs %d cells)", kind, iceberg.NumCells(), oracle.NumCells())
		}
		rng := rand.New(rand.NewSource(int64(kind) * 7))
		for i := 0; i < 100; i++ {
			spec := randomFacadeSpec(rng, []int{7, 6, 5, 4})
			var groupBy []string
			for d := range names {
				if rng.Intn(3) == 0 {
					groupBy = append(groupBy, names[d])
				}
			}
			opt := AggregateOptions{GroupBy: groupBy, AuxAgg: kind}
			if rng.Intn(2) == 0 {
				opt.By = ByAux
			}
			got, exact, err := iceberg.Aggregate(spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !exact {
				t.Fatalf("kind=%v spec %d: iceberg cube with residual must report exact", kind, i)
			}
			want, oExact, err := oracle.Aggregate(spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !oExact {
				t.Fatal("minsup-1 aggregate must report exact")
			}
			if len(got) != len(want) {
				t.Fatalf("kind=%v spec %d group-by %v: %d rows, oracle has %d", kind, i, groupBy, len(got), len(want))
			}
			for j := range got {
				if got[j].Count != want[j].Count || got[j].Aux != want[j].Aux ||
					fmt.Sprint(got[j].Values) != fmt.Sprint(want[j].Values) {
					t.Fatalf("kind=%v spec %d row %d: iceberg %+v, oracle %+v", kind, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestCubeSnapshotIcebergMeasureRoundTrip pins the version-4 snapshot: an avg
// iceberg cube saves the aux-form flag and the store residual, round-trips
// byte-identically, and the loaded cube keeps both the stored-aggregate form
// and the exactness property.
func TestCubeSnapshotIcebergMeasureRoundTrip(t *testing.T) {
	ds := measureDataset(t, 67)
	cube, err := Materialize(ds, Options{MinSup: 3, Measure: MeasureAvg})
	if err != nil {
		t.Fatal(err)
	}
	if !cube.AuxStored() {
		t.Fatal("materialized avg cube must hold stored aggregates")
	}
	var buf1 bytes.Buffer
	if err := cube.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	if got := buf1.Bytes()[7]; got != CubeSnapshotVersion {
		t.Fatalf("snapshot version byte %d, want %d", got, CubeSnapshotVersion)
	}
	loaded, err := LoadCube(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot not byte-identical after round trip (%d vs %d bytes)", buf1.Len(), buf2.Len())
	}
	if !loaded.AuxStored() || loaded.Measure() != MeasureAvg {
		t.Fatalf("loaded cube lost its aux form (stored=%v, measure=%v)", loaded.AuxStored(), loaded.Measure())
	}
	spec := make(QuerySpec, ds.NumDims())
	groupBy := []string{ds.Names()[0], ds.Names()[2]}
	got, exact, err := loaded.Aggregate(spec, AggregateOptions{GroupBy: groupBy})
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("loaded iceberg cube must keep its residual-backed exactness")
	}
	want, _, err := cube.Aggregate(spec, AggregateOptions{GroupBy: groupBy})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded aggregate has %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Count != want[i].Count || got[i].Aux != want[i].Aux {
			t.Fatalf("loaded aggregate row %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// legacyV3Snapshot hand-writes a version-3 cube snapshot — the pre-residual,
// pre-aux-form format — around a residual-free version-1 store payload, the
// way a pre-upgrade writer would have produced it.
func legacyV3Snapshot(t *testing.T, minSup int64, measure MeasureKind, names []string, store *cubestore.Store) []byte {
	t.Helper()
	var head bytes.Buffer
	putUvarint := func(v uint64) {
		var b [binary.MaxVarintLen64]byte
		head.Write(b[:binary.PutUvarint(b[:], v)])
	}
	putUvarint(uint64(minSup))
	head.WriteByte(0) // algorithm
	head.WriteByte(byte(measure))
	putUvarint(0) // generation
	putUvarint(5) // source rows
	putUvarint(uint64(len(names)))
	for _, n := range names {
		putUvarint(uint64(len(n)))
		head.WriteString(n)
	}
	head.WriteByte(0) // no dictionaries

	var buf bytes.Buffer
	buf.WriteString("CCUBE\x00\x00")
	buf.WriteByte(3)
	var b [binary.MaxVarintLen64]byte
	buf.Write(b[:binary.PutUvarint(b[:], uint64(head.Len()))])
	buf.Write(head.Bytes())
	binary.LittleEndian.PutUint32(b[:4], crc32.ChecksumIEEE(head.Bytes()))
	buf.Write(b[:4])
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCubeSnapshotLegacyV3Load pins the honest-degrade contract for old
// snapshots: a version-3 avg cube (cells hold presented means, store carries
// no residual) loads, keeps its mean values undivided at egress, and reports
// exact=false on aggregates instead of passing bounds off as totals.
func TestCubeSnapshotLegacyV3Load(t *testing.T) {
	// Relation: (0,0) x2 with aux 2.0 each, (1,1) x3 with aux 3.0 each.
	// Closed iceberg cube at min_sup 3: the apex (mean 13/5) and (1,1)
	// (mean 3.0), stored in PRESENTED form as a legacy writer did.
	b := cubestore.NewBuilder(2, true)
	b.Add([]int32{Star, Star}, 5, 13.0/5)
	b.Add([]int32{1, 1}, 3, 3.0)
	store, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	raw := legacyV3Snapshot(t, 3, MeasureAvg, []string{"a", "b"}, store)
	cube, err := LoadCube(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cube.MinSup() != 3 || cube.Measure() != MeasureAvg {
		t.Fatalf("loaded metadata: minsup %d, measure %v", cube.MinSup(), cube.Measure())
	}
	if cube.AuxStored() {
		t.Fatal("version-3 snapshot must load with auxStored=false")
	}
	// Egress must NOT divide again: the cells already hold means.
	cell, ok := cube.Lookup([]int32{1, 1})
	if !ok || cell.Aux != 3.0 {
		t.Fatalf("legacy avg cell = (%+v, %v), want aux 3.0 undivided", cell, ok)
	}
	stored, ok := cube.LookupStored([]int32{1, 1})
	if !ok || stored.Aux != cell.Aux {
		t.Fatal("legacy cells have no separate stored form")
	}
	// No residual in the store: iceberg aggregates are lower bounds.
	rows, exact, err := cube.Aggregate(make(QuerySpec, 2), AggregateOptions{GroupBy: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("legacy residual-free iceberg cube must report exact=false")
	}
	if len(rows) == 0 {
		t.Fatal("legacy cube must still answer aggregates")
	}
	// Explicit avg combination needs stored aggregates; legacy cubes refuse.
	if _, _, err := cube.Aggregate(make(QuerySpec, 2), AggregateOptions{AuxAgg: MeasureAvg}); err == nil {
		t.Fatal("aux-agg avg on a legacy presented-mean cube must error")
	}
}
