module ccubing

go 1.24
