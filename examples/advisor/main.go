// Advisor: a miniature of the paper's Fig. 15 study. For datasets of varying
// dependence R and a sweep of min_sup values, it measures C-Cubing(MM)
// against C-Cubing(Star), prints the observed winner, and compares with what
// ccubing.Advise predicts — illustrating the paper's conclusion that the
// Star family wins while closed pruning is significant and C-Cubing(MM)
// takes over once iceberg pruning dominates, with the switch-point rising
// with data dependence.
//
// Run with: go run ./examples/advisor
package main

import (
	"fmt"
	"log"
	"time"

	"ccubing"
)

func main() {
	const tuples = 30000
	minsups := []int64{1, 4, 16, 64, 256}

	fmt.Println("winner per (dependence R, min_sup); parentheses = advisor prediction")
	fmt.Printf("%-6s", "R\\M")
	for _, m := range minsups {
		fmt.Printf("%-22d", m)
	}
	fmt.Println()

	for r := 0; r <= 3; r++ {
		ds, err := ccubing.Synthetic(ccubing.SyntheticConfig{
			T: tuples, D: 8, C: 20, Skew: 0, Dependence: float64(r), Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d", r)
		for _, m := range minsups {
			mmTime := timeRun(ds, ccubing.AlgMM, m)
			starTime := timeRun(ds, ccubing.AlgStar, m)
			winner := "CC(MM)"
			if starTime < mmTime {
				winner = "CC(Star)"
			}
			advised := ccubing.Advise(ds, m, true)
			fmt.Printf("%-22s", fmt.Sprintf("%s (%s)", winner, shortName(advised)))
		}
		fmt.Println()
	}
	fmt.Println("\npaper Fig. 15: the Star family region grows with R; CC(MM) wins at high min_sup.")
}

func timeRun(ds *ccubing.Dataset, alg ccubing.Algorithm, minsup int64) time.Duration {
	st, err := ccubing.Compute(ds, ccubing.Options{MinSup: minsup, Closed: true, Algorithm: alg}, nil)
	if err != nil {
		log.Fatal(err)
	}
	return st.Elapsed
}

func shortName(a ccubing.Algorithm) string {
	switch a {
	case ccubing.AlgMM:
		return "MM"
	case ccubing.AlgStar:
		return "Star"
	case ccubing.AlgStarArray:
		return "SArr"
	default:
		return a.String()
	}
}
