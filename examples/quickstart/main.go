// Quickstart: build a tiny relation, compute its closed iceberg cube, and
// print the cells — reproducing Example 1 (Table 1) of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccubing"
)

func main() {
	// Table 1 of the paper: three tuples over dimensions A, B, C, D.
	ds, err := ccubing.NewDataset(
		[]string{"A", "B", "C", "D"},
		[][]string{
			{"a1", "b1", "c1", "d1"},
			{"a1", "b1", "c1", "d3"},
			{"a1", "b2", "c2", "d2"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Closed iceberg cube with count >= 2. The paper's Example 1 says the
	// result is exactly {(a1,b1,c1,*):2, (a1,*,*,*):3}: (a1,*,c1,*):2 is
	// covered by (a1,b1,c1,*):2, and (a1,b2,c2,d2):1 misses the threshold.
	cells, stats, err := ccubing.ComputeCollect(ds, ccubing.Options{
		MinSup:    2,
		Closed:    true,
		Algorithm: ccubing.AlgStar, // C-Cubing(Star)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("closed iceberg cube (min_sup=2) via %s:\n", stats.Algorithm)
	for _, c := range cells {
		fmt.Println(" ", ds.FormatCell(c))
	}

	// The same cube without closedness compression, for contrast.
	iceberg, _, err := ccubing.ComputeCollect(ds, ccubing.Options{
		MinSup:    2,
		Algorithm: ccubing.AlgBUC,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain iceberg cube has %d cells; the closed cube compresses them to %d:\n",
		len(iceberg), len(cells))
	for _, c := range iceberg {
		fmt.Println(" ", ds.FormatCell(c))
	}
}
