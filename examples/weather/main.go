// Weather: the paper's real-data scenario. Computes the closed iceberg cube
// of the weather-like relation (high-cardinality, strongly dependent — see
// DESIGN.md for the simulator standing in for SEP83L.DAT), then mines closed
// rules (paper Sec. 6.2) and reports the compression the paper highlights:
// "while there are 462k closed cells, we can get 57k closed rules".
//
// Run with: go run ./examples/weather
package main

import (
	"fmt"
	"log"

	"ccubing"
)

func main() {
	// 60k reports over all 8 dimensions (scale up for the full 1M-tuple
	// experience; the shapes are the same).
	ds, err := ccubing.Weather(1, 60000, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weather relation: %d tuples, dims:", ds.NumTuples())
	for d, name := range ds.Names() {
		fmt.Printf(" %s(%d)", name, ds.Cardinalities()[d])
	}
	fmt.Println()

	const minsup = 10
	cells, stats, err := ccubing.ComputeCollect(ds, ccubing.Options{
		MinSup:    minsup,
		Closed:    true,
		Algorithm: ccubing.AlgStarArray, // high cardinality: C-Cubing(StarArray)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed iceberg cube (min_sup=%d): %d cells, %.2f MB, %s\n",
		minsup, len(cells), stats.MB(), stats.Elapsed.Round(1000000))

	// Closed rules: a compact representation of the cube's semantics.
	rs, err := ccubing.MineRules(ds, cells)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed rules: %d (%.1f%% of the closed cell count)\n",
		len(rs), 100*float64(len(rs))/float64(len(cells)))
	fmt.Println("sample rules (dimension=value implications found in the data):")
	for i, r := range rs {
		if i == 5 {
			break
		}
		fmt.Println("  ", r)
	}

	// The dependence the paper describes: "when a certain weather condition
	// appears at the same time of the day, there is always a unique value
	// for solar altitude" — visible as rules targeting dimension 6 (solar).
	solar := 0
	for _, r := range rs {
		for _, d := range r.TargDims {
			if d == 6 {
				solar++
				break
			}
		}
	}
	fmt.Printf("rules determining solar altitude: %d\n", solar)

	// The closed cube plus a CubeIndex is a lossless substitute for the full
	// iceberg cube: any cell's count is answerable, closed or not.
	ix, err := ccubing.NewCubeIndex(ds, cells)
	if err != nil {
		log.Fatal(err)
	}
	probe := make([]int32, ds.NumDims())
	for d := range probe {
		probe[d] = ccubing.Star
	}
	apex, _ := ix.Query(probe)
	fmt.Printf("index: %d nodes; apex query answers %d tuples\n", ix.Nodes(), apex)
}
