// Serving: materialize a closed cube once, snapshot it, reload it, and
// answer point and slice queries — the workflow behind cmd/ccserve. The
// closed cube is lossless: any cell's count (closed or not) is recovered
// from its closure, so the store answers arbitrary group-bys without the
// base relation.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"ccubing"
)

func main() {
	// A small sales relation with string dimensions.
	rows := [][]string{
		{"oslo", "pen", "2024"}, {"oslo", "pen", "2025"},
		{"oslo", "ink", "2025"}, {"paris", "pen", "2025"},
		{"paris", "ink", "2025"}, {"paris", "ink", "2024"},
		{"rome", "pen", "2025"}, {"rome", "pen", "2025"},
	}
	ds, err := ccubing.NewDataset([]string{"city", "product", "year"}, rows)
	if err != nil {
		log.Fatal(err)
	}

	// Materialize the full closed cube (Closed is implied) and snapshot it.
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 1})
	if err != nil {
		log.Fatal(err)
	}
	var snapshot bytes.Buffer
	if err := cube.Save(&snapshot); err != nil {
		log.Fatal(err)
	}
	snapBytes := snapshot.Len()
	served, err := ccubing.LoadCube(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d closed cells across %d cuboids (%d bytes snapshotted)\n\n",
		served.NumCells(), served.NumCuboids(), snapBytes)

	// Point queries by label; (rome, *, *) is NOT closed — every rome row
	// sells pens in 2025, so its closure binds both.
	for _, q := range [][]string{
		{"oslo", "*", "*"},
		{"rome", "*", "*"},
		{"*", "ink", "2025"},
		{"atlantis", "*", "*"},
	} {
		count, ok, err := served.QueryLabels(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s -> count=%d found=%v\n", strings.Join(q, ","), count, ok)
	}

	// The closure of a non-closed cell carries the full answer.
	vals, err := served.ParseCell([]string{"rome", "*", "*"})
	if err != nil {
		log.Fatal(err)
	}
	if cell, ok := served.Lookup(vals); ok {
		fmt.Printf("\nclosure of (rome, *, *): %v : %d\n", served.Labels(cell.Values), cell.Count)
	}

	// Slice: every closed cell inside the paris sub-cube.
	fmt.Println("\nclosed cells with city=paris:")
	vals, err = served.ParseCell([]string{"paris", "*", "*"})
	if err != nil {
		log.Fatal(err)
	}
	served.Slice(vals, func(c ccubing.Cell) bool {
		fmt.Printf("  %v : %d\n", served.Labels(c.Values), c.Count)
		return true
	})
}
