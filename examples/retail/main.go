// Retail OLAP: the motivating scenario of iceberg cubing — a sales relation
// over (region, store, category, product, month, channel) where analysts
// want every combination that sold at least N units, compressed losslessly
// by closedness, with revenue attached as a complex measure (paper Sec. 6.1).
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ccubing"
)

func main() {
	ds, revenue := buildSales(40000, 11)

	opt := ccubing.Options{
		MinSup:    50,
		Closed:    true,
		Algorithm: ccubing.AlgAuto, // let the advisor pick (paper Sec. 5.3)
	}
	cells, stats, err := ccubing.ComputeCollect(ds, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sales cube: %d tuples, %d dims -> %d closed iceberg cells (min_sup=%d) in %s via %s\n",
		ds.NumTuples(), ds.NumDims(), len(cells), opt.MinSup, stats.Elapsed.Round(1000000), stats.Algorithm)

	// Attach total revenue to the most aggregated cells. Lemma 1 of the
	// paper guarantees the count-closed cube loses no closed cells of any
	// other measure.
	if err := ds.SetMeasure(revenue); err != nil {
		log.Fatal(err)
	}
	top := topCells(cells, 5)
	if err := ccubing.AttachMeasure(ds, top, ccubing.MeasureSum); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbiggest closed cells with revenue:")
	for _, c := range top {
		fmt.Printf("  %-60s revenue=%.0f\n", ds.FormatCell(c), c.Aux)
	}

	// Compare against the uncompressed iceberg cube to show the closed
	// compression ratio on dependent retail data (region determines
	// currency-like channel mixes, category determines products).
	ice, _, err := ccubing.ComputeCollect(ds, ccubing.Options{MinSup: opt.MinSup, Algorithm: ccubing.AlgMM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niceberg cells: %d, closed iceberg cells: %d (%.1f%% of iceberg)\n",
		len(ice), len(cells), 100*float64(len(cells))/float64(len(ice)))
}

// buildSales synthesizes a retail relation with realistic dependencies:
// store -> region (each store belongs to one region), product -> category.
func buildSales(n int, seed int64) (*ccubing.Dataset, []float64) {
	rng := rand.New(rand.NewSource(seed))
	const (
		regions    = 4
		stores     = 40
		categories = 8
		products   = 120
		months     = 12
		channels   = 3
	)
	storeRegion := make([]int, stores)
	for s := range storeRegion {
		storeRegion[s] = rng.Intn(regions)
	}
	productCat := make([]int, products)
	for p := range productCat {
		productCat[p] = rng.Intn(categories)
	}

	rows := make([][]int32, n)
	revenue := make([]float64, n)
	for i := range rows {
		store := rng.Intn(stores)
		product := int(float64(products) * rng.Float64() * rng.Float64()) // skewed
		month := rng.Intn(months)
		channel := rng.Intn(channels)
		rows[i] = []int32{
			int32(storeRegion[store]),
			int32(store),
			int32(productCat[product]),
			int32(product),
			int32(month),
			int32(channel),
		}
		revenue[i] = float64(5+rng.Intn(200)) + 0.99
	}
	ds, err := ccubing.NewDatasetFromValues(
		[]string{"region", "store", "category", "product", "month", "channel"}, rows)
	if err != nil {
		log.Fatal(err)
	}
	return ds, revenue
}

// topCells returns the k highest-count cells (copied).
func topCells(cells []ccubing.Cell, k int) []ccubing.Cell {
	out := append([]ccubing.Cell(nil), cells...)
	for i := 0; i < k && i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Count > out[i].Count {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}
