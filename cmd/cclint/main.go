// Command cclint is the repo's multichecker: it runs the internal/lint
// analyzers (lockorder, poolescape, storemut, hotpathalloc) over Go
// packages. It speaks two protocols:
//
//   - go vet -vettool: `go vet -vettool=$(pwd)/cclint ./...` invokes the
//     tool once per package with a vet.cfg file describing sources, import
//     maps and export data. This mode also analyzes test-package variants
//     and is what CI runs.
//   - standalone: `cclint ./...` resolves packages itself via
//     `go list -e -deps -export -json` and analyzes every non-dependency
//     package in the match.
//
// Exit status: 0 clean, 1 findings, 2 operational error. Each finding is
// printed as file:line:col: message (analyzer).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ccubing/internal/lint/analysis"
	"ccubing/internal/lint/hotpathalloc"
	"ccubing/internal/lint/load"
	"ccubing/internal/lint/lockorder"
	"ccubing/internal/lint/poolescape"
	"ccubing/internal/lint/storemut"
)

var analyzers = []*analysis.Analyzer{
	lockorder.Analyzer,
	poolescape.Analyzer,
	storemut.Analyzer,
	hotpathalloc.Analyzer,
}

func main() {
	args := os.Args[1:]
	// The go vet handshake probes the tool before using it: -flags asks for
	// the tool's flag schema, -V=full for a cache-busting version string.
	for _, arg := range args {
		switch {
		case arg == "-flags":
			fmt.Println("[]")
			return
		case strings.HasPrefix(arg, "-V"):
			fmt.Printf("cclint version devel buildID=%s\n", selfID())
			return
		}
	}
	switch {
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0]))
	case len(args) > 0 && args[0] == "-h" || len(args) > 0 && args[0] == "--help":
		fmt.Fprintln(os.Stderr, "usage: cclint [packages] | go vet -vettool=cclint [packages]")
		os.Exit(2)
	default:
		if len(args) == 0 {
			args = []string{"."}
		}
		os.Exit(standalone(args))
	}
}

// selfID hashes the tool's own binary: go vet folds the -V=full output into
// its action cache key, so a rebuilt cclint invalidates stale results.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("%s: %v", cfgPath, err))
	}
	// cmd/go expects the facts file regardless of findings; this suite
	// exchanges no facts, so an empty one satisfies the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return fail(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	files := cfg.GoFiles
	for i, f := range files {
		if !filepath.IsAbs(f) {
			files[i] = filepath.Join(cfg.Dir, f)
		}
	}
	imp := load.Importer(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := load.Check(fset, cfg.ImportPath, files, imp)
	if err != nil && pkg == nil {
		return fail(err)
	}
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fail(fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err))
	}
	if n := runAll(pkg); n > 0 {
		return 1
	}
	return 0
}

func standalone(patterns []string) int {
	pkgs, err := load.GoList("", patterns...)
	if err != nil {
		return fail(err)
	}
	exports := load.Exports(pkgs)
	findings, status := 0, 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "cclint: %s: %s\n", p.ImportPath, p.Error.Err)
			status = 2
			continue
		}
		fset := token.NewFileSet()
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		imp := load.Importer(fset, exports, nil)
		pkg, err := load.Check(fset, p.ImportPath, files, imp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cclint: typecheck %s: %v\n", p.ImportPath, err)
			status = 2
			continue
		}
		findings += runAll(pkg)
	}
	if status == 0 && findings > 0 {
		status = 1
	}
	return status
}

// runAll applies every analyzer to the package, printing deduplicated
// diagnostics sorted by position, and returns how many were printed.
func runAll(pkg *load.Package) int {
	type diag struct {
		pos      token.Position
		msg      string
		analyzer string
	}
	var diags []diag
	seen := map[string]bool{}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				// The same finding can surface from several analyzers
				// (e.g. a reasonless //ccubing:allow); print it once.
				key := fmt.Sprintf("%v: %s", p, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				diags = append(diags, diag{pos: p, msg: d.Message, analyzer: a.Name})
			},
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cclint: %s: %s: %v\n", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos.Filename != diags[j].pos.Filename {
			return diags[i].pos.Filename < diags[j].pos.Filename
		}
		if diags[i].pos.Line != diags[j].pos.Line {
			return diags[i].pos.Line < diags[j].pos.Line
		}
		return diags[i].pos.Column < diags[j].pos.Column
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%v: %s (%s)\n", d.pos, d.msg, d.analyzer)
	}
	return len(diags)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "cclint:", err)
	return 2
}
