// Command ccbench reproduces the paper's evaluation (Figs. 3-18): for each
// figure it regenerates the workloads, runs the compared algorithms with
// output disabled, and prints the series the figure plots.
//
// Usage:
//
//	ccbench -list
//	ccbench -fig fig05 -scale 0.1
//	ccbench -fig all -scale 0.05 | tee results.txt
//
// -scale multiplies tuple counts; 1.0 is paper scale (0.2M-1M tuples per
// dataset), the default 0.1 keeps a full sweep in the minutes range.
// Absolute seconds are not comparable to the paper's 2005 C++/P4 testbed;
// the orderings and crossovers are the reproduction target (EXPERIMENTS.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ccubing/internal/expt"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to run: fig03..fig18, or all")
		scale   = flag.Float64("scale", 0.1, "tuple-count scale factor (1.0 = paper scale)")
		list    = flag.Bool("list", false, "list figures and exit")
		workers = flag.Int("workers", 1, "engine goroutines per run (0/1 = sequential as in the paper, n>1 = n workers, negative = all CPU cores)")
	)
	flag.Parse()
	resolved := expt.SetWorkers(*workers)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *list {
		for _, f := range expt.Figures(*scale) {
			fmt.Fprintf(w, "%s  %-55s [%s]\n", f.ID, f.Title, f.Params)
		}
		return
	}

	var figs []expt.Figure
	if *fig == "all" {
		figs = expt.Figures(*scale)
	} else {
		f, err := expt.Find(*fig, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			os.Exit(1)
		}
		figs = []expt.Figure{f}
	}
	fmt.Fprintf(w, "ccbench scale=%g (1.0 = paper scale) workers=%d\n\n", *scale, resolved)
	for _, f := range figs {
		w.Flush()
		if err := expt.Report(w, f); err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			os.Exit(1)
		}
	}
}
