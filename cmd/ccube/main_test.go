package main

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccubing"
)

func newTestWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }

func TestParseSynth(t *testing.T) {
	cfg, err := parseSynth("T=5000,D=7,C=42,S=1.5,R=2,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.T != 5000 || cfg.D != 7 || cfg.C != 42 || cfg.Skew != 1.5 ||
		cfg.Dependence != 2 || cfg.Seed != 9 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range []string{"T", "T=x", "Q=1", "T=1,,"} {
		if _, err := parseSynth(bad); err == nil {
			t.Errorf("parseSynth(%q) should fail", bad)
		}
	}
}

func TestParseOrder(t *testing.T) {
	cases := map[string]ccubing.OrderStrategy{
		"org": ccubing.OrderOriginal, "Original": ccubing.OrderOriginal,
		"card": ccubing.OrderByCardinality, "Entropy": ccubing.OrderByEntropy,
	}
	for in, want := range cases {
		got, err := parseOrder(in)
		if err != nil || got != want {
			t.Errorf("parseOrder(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseOrder("zigzag"); err == nil {
		t.Fatal("unknown order should fail")
	}
}

func TestLoadDatasetValidation(t *testing.T) {
	if _, err := loadDataset("", "", ""); err == nil {
		t.Fatal("no source should fail")
	}
	if _, err := loadDataset("a.csv", "T=1", ""); err == nil {
		t.Fatal("two sources should fail")
	}
	if _, err := loadDataset("", "", "abc"); err == nil {
		t.Fatal("malformed weather spec should fail")
	}
	ds, err := loadDataset("", "T=100,D=3,C=4", "")
	if err != nil || ds.NumTuples() != 100 {
		t.Fatalf("synth load: %v", err)
	}
	ds, err = loadDataset("", "", "200,5")
	if err != nil || ds.NumTuples() != 200 || ds.NumDims() != 5 {
		t.Fatalf("weather load: %v", err)
	}
}

// TestSaveCubeRoundTrip materializes, snapshots via the CLI helper and
// reloads — the ccube -store → ccserve -snapshot handoff.
func TestSaveCubeRoundTrip(t *testing.T) {
	ds, err := loadDataset("", "T=200,D=3,C=5,seed=4", "")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cube.ccube")
	if err := saveCube(cube, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := ccubing.LoadCube(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCells() != cube.NumCells() || loaded.MinSup() != 2 {
		t.Fatalf("loaded %d cells minsup=%d, want %d cells minsup=2", loaded.NumCells(), loaded.MinSup(), cube.NumCells())
	}
	q := []int32{0, ccubing.Star, ccubing.Star}
	w1, ok1 := cube.Query(q)
	w2, ok2 := loaded.Query(q)
	if w1 != w2 || ok1 != ok2 {
		t.Fatalf("query mismatch: (%d,%v) vs (%d,%v)", w1, ok1, w2, ok2)
	}
}

func TestWriteCell(t *testing.T) {
	var sb strings.Builder
	w := newTestWriter(&sb)
	writeCell(w, ccubing.Cell{Values: []int32{3, ccubing.Star}, Count: 7})
	w.Flush()
	if sb.String() != "3,*,7\n" {
		t.Fatalf("writeCell = %q", sb.String())
	}
}
