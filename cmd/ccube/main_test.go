package main

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccubing"
)

func newTestWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }

func TestParseSynth(t *testing.T) {
	cfg, err := parseSynth("T=5000,D=7,C=42,S=1.5,R=2,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.T != 5000 || cfg.D != 7 || cfg.C != 42 || cfg.Skew != 1.5 ||
		cfg.Dependence != 2 || cfg.Seed != 9 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range []string{"T", "T=x", "Q=1", "T=1,,"} {
		if _, err := parseSynth(bad); err == nil {
			t.Errorf("parseSynth(%q) should fail", bad)
		}
	}
}

func TestParseOrder(t *testing.T) {
	cases := map[string]ccubing.OrderStrategy{
		"org": ccubing.OrderOriginal, "Original": ccubing.OrderOriginal,
		"card": ccubing.OrderByCardinality, "Entropy": ccubing.OrderByEntropy,
	}
	for in, want := range cases {
		got, err := parseOrder(in)
		if err != nil || got != want {
			t.Errorf("parseOrder(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseOrder("zigzag"); err == nil {
		t.Fatal("unknown order should fail")
	}
}

func TestLoadDatasetValidation(t *testing.T) {
	if _, err := loadDataset("", "", ""); err == nil {
		t.Fatal("no source should fail")
	}
	if _, err := loadDataset("a.csv", "T=1", ""); err == nil {
		t.Fatal("two sources should fail")
	}
	if _, err := loadDataset("", "", "abc"); err == nil {
		t.Fatal("malformed weather spec should fail")
	}
	ds, err := loadDataset("", "T=100,D=3,C=4", "")
	if err != nil || ds.NumTuples() != 100 {
		t.Fatalf("synth load: %v", err)
	}
	ds, err = loadDataset("", "", "200,5")
	if err != nil || ds.NumTuples() != 200 || ds.NumDims() != 5 {
		t.Fatalf("weather load: %v", err)
	}
}

// TestSaveCubeRoundTrip materializes, snapshots via the CLI helper and
// reloads — the ccube -store → ccserve -snapshot handoff.
func TestSaveCubeRoundTrip(t *testing.T) {
	ds, err := loadDataset("", "T=200,D=3,C=5,seed=4", "")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cube.ccube")
	if err := saveCube(cube, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := ccubing.LoadCube(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCells() != cube.NumCells() || loaded.MinSup() != 2 {
		t.Fatalf("loaded %d cells minsup=%d, want %d cells minsup=2", loaded.NumCells(), loaded.MinSup(), cube.NumCells())
	}
	q := []int32{0, ccubing.Star, ccubing.Star}
	w1, ok1 := cube.Query(q)
	w2, ok2 := loaded.Query(q)
	if w1 != w2 || ok1 != ok2 {
		t.Fatalf("query mismatch: (%d,%v) vs (%d,%v)", w1, ok1, w2, ok2)
	}
}

// TestRunSelect drives the -select path: predicate slice, group-by
// aggregation and top-k, checked against the library's brute-force answer.
func TestRunSelect(t *testing.T) {
	ds, err := loadDataset("", "T=400,D=3,C=5,seed=8", "")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Predicate slice: the output rows are exactly the matching closed cells.
	var sb strings.Builder
	w := newTestWriter(&sb)
	if err := runSelect(w, cube, "1,*,0..2", "", 0, "count", false); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	spec, err := cube.ParseSpec([]string{"1", "*", "0..2"})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	if err := cube.Select(spec, func(ccubing.Cell) bool { want++; return true }); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != want {
		t.Fatalf("select wrote %d rows, want %d", got, want)
	}

	// Group-by with top-k: ranked rows, one per group, truncated to k.
	sb.Reset()
	w = newTestWriter(&sb)
	if err := runSelect(w, cube, "*,*,0..2", "dim0", 2, "count", false); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("top-2 wrote %d rows: %q", len(lines), sb.String())
	}
	aggSpec, err := cube.ParseSpec([]string{"*", "*", "0..2"})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := cube.Aggregate(aggSpec, ccubing.AggregateOptions{GroupBy: []string{"dim0"}, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		var rsb strings.Builder
		rw := newTestWriter(&rsb)
		writeCell(rw, r)
		rw.Flush()
		if lines[i]+"\n" != rsb.String() {
			t.Fatalf("row %d = %q, want %q", i, lines[i], strings.TrimSuffix(rsb.String(), "\n"))
		}
	}

	// -quiet suppresses the row output but keeps the stderr summary path.
	sb.Reset()
	w = newTestWriter(&sb)
	if err := runSelect(w, cube, "1,*,0..2", "", 0, "count", true); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if sb.Len() != 0 {
		t.Fatalf("quiet select wrote %q", sb.String())
	}

	// Errors surface instead of silently producing empty output.
	if err := runSelect(w, cube, "1,*", "", 0, "count", false); err == nil {
		t.Fatal("wrong-arity select must error")
	}
	// -by is validated even on the plain select path (no -groupby/-topk).
	if err := runSelect(w, cube, "*,*,*", "", 0, "zigzag", false); err == nil {
		t.Fatal("unknown -by must error on the select path too")
	}
	if err := runSelect(w, cube, "*,*,*", "nope", 0, "count", false); err == nil {
		t.Fatal("unknown group-by dimension must error")
	}
	if err := runSelect(w, cube, "*,*,*", "dim0", 1, "zigzag", false); err == nil {
		t.Fatal("unknown -by must error")
	}
	if err := runSelect(w, cube, "*,*,*", "dim0", 1, "aux", false); err == nil {
		t.Fatal("-by aux without a measure must error")
	}
}

func TestWriteCell(t *testing.T) {
	var sb strings.Builder
	w := newTestWriter(&sb)
	writeCell(w, ccubing.Cell{Values: []int32{3, ccubing.Star}, Count: 7})
	w.Flush()
	if sb.String() != "3,*,7\n" {
		t.Fatalf("writeCell = %q", sb.String())
	}
}

// TestRunAppend drives the -append/-refresh-every path: an NDJSON delta is
// folded in with chunked refreshes and the cube matches a from-scratch
// materialization of the grown relation.
func TestRunAppend(t *testing.T) {
	ds, err := loadDataset("", "T=300,D=3,C=5,seed=12", "")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	delta := filepath.Join(t.TempDir(), "delta.ndjson")
	var sb strings.Builder
	for i := 0; i < 25; i++ {
		sb.WriteString("[1,")
		sb.WriteString(strings.Repeat("0,", 1))
		sb.WriteString("2]\n")
	}
	if err := os.WriteFile(delta, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMutate(cube, delta, 10, false); err != nil {
		t.Fatal(err)
	}
	// 25 rows at -refresh-every 10: two threshold refreshes plus the final
	// one folding the remainder.
	if got := cube.Generation(); got != 3 {
		t.Fatalf("generation = %d, want 3", got)
	}
	if cube.Backlog() != 0 {
		t.Fatalf("backlog = %d after runAppend", cube.Backlog())
	}
	count, ok := cube.Query([]int32{1, 0, 2})
	if !ok || count < 25 {
		t.Fatalf("appended cell = (%d,%v), want at least 25", count, ok)
	}
	if err := runMutate(cube, filepath.Join(t.TempDir(), "missing"), 0, false); err == nil {
		t.Fatal("missing delta file must fail")
	}
}

// TestRunDelete drives the -delete path: an NDJSON tombstone file is folded
// in and the served counts shrink to match the edited relation.
func TestRunDelete(t *testing.T) {
	ds, err := loadDataset("", "T=300,D=3,C=5,seed=12", "")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Tombstone five copies of an existing tuple (appended first so the
	// multiplicity is guaranteed), plus the appended remainder.
	delta := filepath.Join(t.TempDir(), "delta.ndjson")
	if err := os.WriteFile(delta, []byte(strings.Repeat("[1,0,2]\n", 8)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMutate(cube, delta, 0, false); err != nil {
		t.Fatal(err)
	}
	before, ok := cube.Query([]int32{1, 0, 2})
	if !ok || before < 8 {
		t.Fatalf("appended cell = (%d,%v), want at least 8", before, ok)
	}
	gone := filepath.Join(t.TempDir(), "gone.ndjson")
	if err := os.WriteFile(gone, []byte(strings.Repeat("[1,0,2]\n", 5)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMutate(cube, gone, 0, true); err != nil {
		t.Fatal(err)
	}
	after, ok := cube.Query([]int32{1, 0, 2})
	if !ok || after != before-5 {
		t.Fatalf("cell after -delete = (%d,%v), want %d", after, ok, before-5)
	}
	if cube.Backlog() != 0 {
		t.Fatalf("backlog = %d after runMutate", cube.Backlog())
	}
	// A tombstone file overdrawing the relation fails cleanly.
	over := filepath.Join(t.TempDir(), "over.ndjson")
	if err := os.WriteFile(over, []byte(strings.Repeat("[1,0,2]\n", 10000)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMutate(cube, over, 0, true); err == nil {
		t.Fatal("overdrawn tombstone file must fail")
	}
}
