// Command ccube computes a (closed) iceberg cube from a CSV file or a
// generated dataset and streams the cells to stdout.
//
// Usage:
//
//	ccube -csv data.csv -minsup 10 -closed -alg stararray
//	ccube -synth T=100000,D=8,C=100,S=1,R=0,seed=1 -minsup 4 -closed -workers 0
//	ccube -weather 100000,8 -minsup 10 -closed -rules
//
// Output rows are "v0,v1,*,v3,count" with dictionary labels resolved for CSV
// inputs; a summary line goes to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccubing"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "CSV input file (header row = dimension names)")
		synth   = flag.String("synth", "", "synthetic dataset spec: T=..,D=..,C=..,S=..,R=..,seed=..")
		weather = flag.String("weather", "", "weather-like dataset: tuples,dims (e.g. 100000,8)")
		algName = flag.String("alg", "auto", "algorithm: auto|mm|star|stararray|buc|qcdfs|qctree|obbuc")
		minsup  = flag.Int64("minsup", 1, "iceberg threshold on count")
		closed  = flag.Bool("closed", false, "compute the closed iceberg cube")
		ordName = flag.String("order", "Org", "dimension order: Org|Card|Entropy")
		quiet   = flag.Bool("quiet", false, "suppress cell output (timing only)")
		doRules = flag.Bool("rules", false, "mine closed rules from the result (closed mode)")
		workers = flag.Int("workers", 1, "engine goroutines (1 = sequential, 0 = all CPU cores)")
	)
	flag.Parse()

	ds, err := loadDataset(*csvPath, *synth, *weather)
	if err != nil {
		fatal(err)
	}
	alg, err := ccubing.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	ord, err := parseOrder(*ordName)
	if err != nil {
		fatal(err)
	}

	opt := ccubing.Options{
		MinSup:    *minsup,
		Closed:    *closed,
		Algorithm: alg,
		Order:     ord,
		Workers:   *workers,
	}
	if *workers == 0 {
		opt.Workers = -1 // Options maps negative to runtime.NumCPU()
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var cells []ccubing.Cell
	visit := func(c ccubing.Cell) {
		if !*quiet {
			writeCell(w, c)
		}
		if *doRules {
			vals := make([]int32, len(c.Values))
			copy(vals, c.Values)
			cells = append(cells, ccubing.Cell{Values: vals, Count: c.Count})
		}
	}
	st, err := ccubing.Compute(ds, opt, visit)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ccube: %s  tuples=%d dims=%d minsup=%d closed=%v  cells=%d size=%.2fMB elapsed=%s\n",
		st.Algorithm, ds.NumTuples(), ds.NumDims(), opt.MinSup, opt.Closed, st.Cells, st.MB(), st.Elapsed)

	if *doRules {
		if !*closed {
			fatal(fmt.Errorf("-rules requires -closed"))
		}
		rs, err := ccubing.MineRules(ds, cells)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccube: %d closed rules from %d closed cells (%.1f%%)\n",
			len(rs), len(cells), 100*float64(len(rs))/float64(max(1, len(cells))))
		for _, r := range rs {
			fmt.Fprintln(w, "# rule:", r.String())
		}
	}
}

func loadDataset(csvPath, synth, weather string) (*ccubing.Dataset, error) {
	n := 0
	for _, s := range []string{csvPath, synth, weather} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of -csv, -synth, -weather is required")
	}
	switch {
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ccubing.ReadCSV(bufio.NewReader(f))
	case synth != "":
		cfg, err := parseSynth(synth)
		if err != nil {
			return nil, err
		}
		return ccubing.Synthetic(cfg)
	default:
		parts := strings.Split(weather, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-weather wants tuples,dims")
		}
		t, err1 := strconv.Atoi(parts[0])
		d, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("-weather wants tuples,dims")
		}
		return ccubing.Weather(1, t, d)
	}
}

func parseSynth(s string) (ccubing.SyntheticConfig, error) {
	cfg := ccubing.SyntheticConfig{T: 10000, D: 6, C: 10, Seed: 1}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("bad synth component %q", kv)
		}
		k, v := parts[0], parts[1]
		var err error
		switch k {
		case "T":
			cfg.T, err = strconv.Atoi(v)
		case "D":
			cfg.D, err = strconv.Atoi(v)
		case "C":
			cfg.C, err = strconv.Atoi(v)
		case "S":
			cfg.Skew, err = strconv.ParseFloat(v, 64)
		case "R":
			cfg.Dependence, err = strconv.ParseFloat(v, 64)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad synth component %q: %v", kv, err)
		}
	}
	return cfg, nil
}

func parseOrder(s string) (ccubing.OrderStrategy, error) {
	switch strings.ToLower(s) {
	case "org", "original":
		return ccubing.OrderOriginal, nil
	case "card", "cardinality":
		return ccubing.OrderByCardinality, nil
	case "entropy":
		return ccubing.OrderByEntropy, nil
	}
	return ccubing.OrderOriginal, fmt.Errorf("unknown order %q", s)
}

func writeCell(w *bufio.Writer, c ccubing.Cell) {
	for _, v := range c.Values {
		if v == ccubing.Star {
			w.WriteByte('*')
		} else {
			w.WriteString(strconv.Itoa(int(v)))
		}
		w.WriteByte(',')
	}
	w.WriteString(strconv.FormatInt(c.Count, 10))
	w.WriteByte('\n')
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccube:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
