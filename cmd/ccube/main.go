// Command ccube computes a (closed) iceberg cube from a CSV file or a
// generated dataset and streams the cells to stdout.
//
// Usage:
//
//	ccube -csv data.csv -minsup 10 -closed -alg stararray
//	ccube -synth T=100000,D=8,C=100,S=1,R=0,seed=1 -minsup 4 -closed -workers -1
//	ccube -weather 100000,8 -minsup 10 -closed -rules
//	ccube -csv data.csv -minsup 10 -store cube.ccube -quiet
//	ccube -csv data.csv -append delta.ndjson -refresh-every 500 -store cube.ccube
//	ccube -csv data.csv -delete gone.ndjson -store cube.ccube
//
// Output rows are "v0,v1,*,v3,count"; a summary line goes to stderr. -store
// materializes the closed cube (implying -closed) and writes a snapshot that
// ccserve -snapshot serves directly. -append streams an NDJSON delta file
// (one tuple per line: an array of labels or coded values, or
// {"row": [...], "aux": x}) into the materialized cube and folds it in with
// partition-scoped incremental refresh before any output; -refresh-every N
// refreshes every N appended rows instead of once at the end. -delete
// streams tombstones in the same format — each tuple removes one matching
// occurrence — and may combine with -append (appends fold first).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ccubing"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "CSV input file (header row = dimension names)")
		synth   = flag.String("synth", "", "synthetic dataset spec: T=..,D=..,C=..,S=..,R=..,seed=..")
		weather = flag.String("weather", "", "weather-like dataset: tuples,dims (e.g. 100000,8)")
		algName = flag.String("alg", "auto", "algorithm: auto|mm|star|stararray|buc|qcdfs|qctree|obbuc")
		minsup  = flag.Int64("minsup", 1, "iceberg threshold on count")
		closed  = flag.Bool("closed", false, "compute the closed iceberg cube")
		ordName = flag.String("order", "Org", "dimension order: Org|Card|Entropy")
		quiet   = flag.Bool("quiet", false, "suppress cell output (timing only)")
		doRules = flag.Bool("rules", false, "mine closed rules from the result (closed mode)")
		workers = flag.Int("workers", 1, "engine goroutines (0/1 = sequential, n>1 = n workers, negative = all CPU cores)")
		store   = flag.String("store", "", "materialize the closed cube and write a snapshot to this path (implies -closed)")
		appnd   = flag.String("append", "", "NDJSON file of rows to append and fold in with incremental refresh before output (implies -closed)")
		del     = flag.String("delete", "", "NDJSON file of tombstones to fold in with incremental refresh before output (implies -closed; each tuple removes one matching occurrence)")
		every   = flag.Int("refresh-every", 0, "with -append: refresh every N appended rows instead of once at the end")
		sel     = flag.String("select", "", "sub-cube selection, one predicate per dimension: * | value | lo..hi | a|b|c (implies -closed; output is the matching closed cells, or aggregate rows with -groupby/-topk)")
		groupBy = flag.String("groupby", "", "comma-separated dimension names (or indices) to group the -select result by")
		topk    = flag.Int("topk", 0, "keep only the k best aggregate rows (with -select)")
		byFlag  = flag.String("by", "count", "top-k ranking measure: count|aux")
	)
	flag.Parse()

	ds, err := loadDataset(*csvPath, *synth, *weather)
	if err != nil {
		fatal(err)
	}
	alg, err := ccubing.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	ord, err := parseOrder(*ordName)
	if err != nil {
		fatal(err)
	}

	if *every != 0 && *appnd == "" {
		fatal(fmt.Errorf("-refresh-every needs -append"))
	}
	opt := ccubing.Options{
		MinSup:    *minsup,
		Closed:    *closed || *store != "" || *sel != "" || *appnd != "" || *del != "",
		Algorithm: alg,
		Order:     ord,
		Workers:   *workers, // library convention: 0/1 sequential, negative = NumCPU
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var cells []ccubing.Cell
	var st ccubing.Stats
	tuples := ds.NumTuples()
	if *store != "" || *sel != "" || *appnd != "" || *del != "" {
		// Materialize into the serving store; snapshot, query and the
		// streamed output (and rule input) all derive from the stored cells.
		cube, err := ccubing.Materialize(ds, opt)
		if err != nil {
			fatal(err)
		}
		if *appnd != "" {
			// Fold the delta in before any output, so the snapshot and the
			// streamed cells describe the refreshed cube.
			if err := runMutate(cube, *appnd, *every, false); err != nil {
				fatal(err)
			}
		}
		if *del != "" {
			if err := runMutate(cube, *del, *every, true); err != nil {
				fatal(err)
			}
		}
		if *store != "" {
			if err := saveCube(cube, *store); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ccube: stored %d closed cells (%d cuboids, %d bytes in memory) in %s\n",
				cube.NumCells(), cube.NumCuboids(), cube.Bytes(), *store)
		}
		if *sel != "" {
			if *doRules {
				fatal(fmt.Errorf("-rules cannot combine with -select"))
			}
			if err := runSelect(w, cube, *sel, *groupBy, *topk, *byFlag, *quiet); err != nil {
				fatal(err)
			}
		} else {
			cube.Cells(func(c ccubing.Cell) bool {
				if !*quiet {
					writeCell(w, c)
				}
				if *doRules {
					cells = append(cells, c)
				}
				return true
			})
		}
		st = cube.Stats()
		if *appnd != "" || *del != "" {
			// The summary describes the refreshed cube, not the initial build.
			tuples = int(cube.SourceRows())
			st.Cells = cube.NumCells()
		}
	} else {
		visit := func(c ccubing.Cell) {
			if !*quiet {
				writeCell(w, c)
			}
			if *doRules {
				vals := make([]int32, len(c.Values))
				copy(vals, c.Values)
				cells = append(cells, ccubing.Cell{Values: vals, Count: c.Count})
			}
		}
		var err error
		st, err = ccubing.Compute(ds, opt, visit)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "ccube: %s  tuples=%d dims=%d minsup=%d closed=%v  cells=%d size=%.2fMB elapsed=%s\n",
		st.Algorithm, tuples, ds.NumDims(), opt.MinSup, opt.Closed, st.Cells, st.MB(), st.Elapsed)

	if *doRules {
		if !opt.Closed {
			fatal(fmt.Errorf("-rules requires -closed"))
		}
		rs, err := ccubing.MineRules(ds, cells)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccube: %d closed rules from %d closed cells (%.1f%%)\n",
			len(rs), len(cells), 100*float64(len(rs))/float64(max(1, len(cells))))
		for _, r := range rs {
			fmt.Fprintln(w, "# rule:", r.String())
		}
	}
}

// runMutate streams the NDJSON delta file into the cube — appended tuples,
// or tombstones with tombstone set — and folds it in: with every > 0 a
// refresh fires inside each batch that reaches that many buffered rows (the
// incremental serving cadence); the final refresh folds the remainder.
// Per-refresh stats go to stderr.
func runMutate(cube *ccubing.Cube, path string, every int, tombstone bool) error {
	if every < 0 {
		return fmt.Errorf("negative -refresh-every %d", every)
	}
	if every > 0 {
		if err := cube.AutoRefresh(ccubing.AutoRefreshOptions{Rows: every}); err != nil {
			return err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gen := cube.Generation()
	verb := "appended"
	var n int
	if tombstone {
		verb = "deleted"
		n, err = cube.DeleteNDJSON(bufio.NewReader(f))
	} else {
		n, err = cube.AppendNDJSON(bufio.NewReader(f))
	}
	if err != nil {
		return err
	}
	st, err := cube.Refresh()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ccube: %s %d rows in %d refreshes; generation=%d partitions=%d/%d retained=%d rebuilt=%d last=%s\n",
		verb, n, st.Generation-gen, st.Generation, st.PartitionsRecomputed, st.PartitionsTotal,
		st.CellsRetained, st.CellsRebuilt, st.Elapsed.Round(time.Microsecond))
	return nil
}

// runSelect executes the -select query over the materialized cube: a
// predicate slice of the closed cells, or — with -groupby/-topk — a group-by
// aggregation, streamed in the same "v0,v1,*,count" row format (suppressed
// by -quiet, summary on stderr either way).
func runSelect(w *bufio.Writer, cube *ccubing.Cube, sel, groupBy string, topk int, by string, quiet bool) error {
	spec, err := cube.ParseSpec(strings.Split(sel, ","))
	if err != nil {
		return err
	}
	orderBy, err := ccubing.ParseOrderBy(by)
	if err != nil {
		return err
	}
	if groupBy == "" && topk == 0 {
		n := 0
		err := cube.Select(spec, func(c ccubing.Cell) bool {
			if !quiet {
				writeCell(w, c)
			}
			n++
			return true
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ccube: select matched %d closed cells\n", n)
		return nil
	}
	opt := ccubing.AggregateOptions{TopK: topk, By: orderBy}
	if groupBy != "" {
		opt.GroupBy = strings.Split(groupBy, ",")
	}
	rows, exact, err := cube.Aggregate(spec, opt)
	if err != nil {
		return err
	}
	if !quiet {
		for _, c := range rows {
			writeCell(w, c)
		}
	}
	note := ""
	if !exact {
		note = " (iceberg cube: counts are lower bounds)"
	}
	fmt.Fprintf(os.Stderr, "ccube: aggregate produced %d rows%s\n", len(rows), note)
	return nil
}

func loadDataset(csvPath, synth, weather string) (*ccubing.Dataset, error) {
	n := 0
	for _, s := range []string{csvPath, synth, weather} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of -csv, -synth, -weather is required")
	}
	switch {
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ccubing.ReadCSV(bufio.NewReader(f))
	case synth != "":
		cfg, err := parseSynth(synth)
		if err != nil {
			return nil, err
		}
		return ccubing.Synthetic(cfg)
	default:
		parts := strings.Split(weather, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-weather wants tuples,dims")
		}
		t, err1 := strconv.Atoi(parts[0])
		d, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("-weather wants tuples,dims")
		}
		return ccubing.Weather(1, t, d)
	}
}

func parseSynth(s string) (ccubing.SyntheticConfig, error) {
	return ccubing.ParseSyntheticSpec(s)
}

func parseOrder(s string) (ccubing.OrderStrategy, error) {
	switch strings.ToLower(s) {
	case "org", "original":
		return ccubing.OrderOriginal, nil
	case "card", "cardinality":
		return ccubing.OrderByCardinality, nil
	case "entropy":
		return ccubing.OrderByEntropy, nil
	}
	return ccubing.OrderOriginal, fmt.Errorf("unknown order %q", s)
}

func writeCell(w *bufio.Writer, c ccubing.Cell) {
	for _, v := range c.Values {
		if v == ccubing.Star {
			w.WriteByte('*')
		} else {
			w.WriteString(strconv.Itoa(int(v)))
		}
		w.WriteByte(',')
	}
	w.WriteString(strconv.FormatInt(c.Count, 10))
	w.WriteByte('\n')
}

// saveCube writes the cube snapshot atomically enough for a CLI: to a temp
// file in the target directory, renamed into place on success.
func saveCube(cube *ccubing.Cube, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if err := cube.Save(f); err != nil {
		f.Close()
		return err
	}
	// CreateTemp uses 0600; give the snapshot normal output-file permissions
	// so another user (e.g. the ccserve process) can read it.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccube:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
