package main

import (
	"io"
	"strings"
	"testing"
)

func mkRef(ns, allocs float64) map[string]bench {
	return map[string]bench{
		"BenchmarkHot": {Name: "BenchmarkHot", NsPerOp: ns, AllocsPerOp: allocs},
	}
}

func mkFresh(ns, allocs float64, iters int64) map[string]bench {
	return map[string]bench{
		"BenchmarkHot": {Name: "BenchmarkHot-8", NsPerOp: ns, AllocsPerOp: allocs, Iterations: iters},
	}
}

func cfg(minIters int64) compareConfig {
	return compareConfig{
		tolerance: 0.20,
		minIters:  minIters,
		gate:      map[string]bool{"BenchmarkHot": true},
		newPath:   "NEW.json",
	}
}

func TestRegressionAboveFloorFails(t *testing.T) {
	res := compare(io.Discard, mkFresh(1500, 0, 100), mkRef(1000, 0), cfg(5))
	if len(res.failures) != 1 || len(res.warnings) != 0 {
		t.Fatalf("want 1 failure, 0 warnings; got %v / %v", res.failures, res.warnings)
	}
	if !strings.Contains(res.failures[0], "ns/op 1000 -> 1500") {
		t.Fatalf("failure does not name the regression: %q", res.failures[0])
	}
}

func TestRegressionBelowFloorDowngradesToWarning(t *testing.T) {
	res := compare(io.Discard, mkFresh(1500, 0, 3), mkRef(1000, 0), cfg(5))
	if len(res.failures) != 0 || len(res.warnings) != 1 {
		t.Fatalf("want 0 failures, 1 warning; got %v / %v", res.failures, res.warnings)
	}
	w := res.warnings[0]
	if !strings.Contains(w, "3 iterations") || !strings.Contains(w, "floor of 5") {
		t.Fatalf("warning does not explain the floor: %q", w)
	}
	if !strings.Contains(w, "rerun standalone") || !strings.Contains(w, "-bench='^BenchmarkHot$'") {
		t.Fatalf("warning lacks the standalone rerun hint: %q", w)
	}
}

func TestFloorDisabledKeepsFailing(t *testing.T) {
	res := compare(io.Discard, mkFresh(1500, 0, 3), mkRef(1000, 0), cfg(0))
	if len(res.failures) != 1 || len(res.warnings) != 0 {
		t.Fatalf("floor 0 must gate as before; got %v / %v", res.failures, res.warnings)
	}
}

func TestAllocsRegressionRespectsFloor(t *testing.T) {
	// +4 allocs from 1: past both the relative tolerance and the +2 flutter
	// band, so it gates — as a warning under the floor, a failure above it.
	res := compare(io.Discard, mkFresh(1000, 5, 3), mkRef(1000, 1), cfg(5))
	if len(res.failures) != 0 || len(res.warnings) != 1 {
		t.Fatalf("below floor: want warning; got %v / %v", res.failures, res.warnings)
	}
	res = compare(io.Discard, mkFresh(1000, 5, 50), mkRef(1000, 1), cfg(5))
	if len(res.failures) != 1 || len(res.warnings) != 0 {
		t.Fatalf("above floor: want failure; got %v / %v", res.failures, res.warnings)
	}
}

func TestWithinToleranceIsClean(t *testing.T) {
	res := compare(io.Discard, mkFresh(1100, 0, 3), mkRef(1000, 0), cfg(5))
	if len(res.failures) != 0 || len(res.warnings) != 0 {
		t.Fatalf("10%% under a 20%% tolerance must pass; got %v / %v", res.failures, res.warnings)
	}
}

func TestMissingCriticalBenchmarkFails(t *testing.T) {
	res := compare(io.Discard, map[string]bench{}, mkRef(1000, 0), cfg(5))
	if len(res.failures) != 1 || !strings.Contains(res.failures[0], "missing from NEW.json") {
		t.Fatalf("missing critical benchmark must fail; got %v", res.failures)
	}
}

func TestRerunHintEscapesRegexpMeta(t *testing.T) {
	name := "BenchmarkCubeQuery/workers=-1"
	fresh := map[string]bench{name: {Name: name, NsPerOp: 2000, Iterations: 2}}
	ref := map[string]bench{name: {Name: name, NsPerOp: 1000}}
	c := cfg(5)
	c.gate = map[string]bool{name: true}
	res := compare(io.Discard, fresh, ref, c)
	if len(res.warnings) != 1 {
		t.Fatalf("want a warning; got %v / %v", res.failures, res.warnings)
	}
	if !strings.Contains(res.warnings[0], "-bench='^BenchmarkCubeQuery/workers=-1$'") {
		t.Fatalf("hint mangled the name: %q", res.warnings[0])
	}
}
