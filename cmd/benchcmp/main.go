// Command benchcmp compares a freshly recorded benchmark JSON (the
// scripts/bench.sh schema) against one or more committed BENCH_*.json
// baselines and fails when a critical benchmark regressed beyond tolerance.
// It is the CI regression gate behind the perf series:
//
//	go run ./cmd/benchcmp -new BENCH_2026-08-08.json BENCH_2026-07-29.json BENCH_2026-07-29.2.json
//
// For every benchmark present in both sides it prints old vs new ns/op and
// allocs/op with the relative change. The reference value is the
// per-benchmark median across all baselines: the series is recorded at 3
// iterations, where µs-scale benchmarks inside the full suite flutter 2×
// on GC interference, so neither the best nor the latest run alone is a
// trustworthy bar. Names are normalized by stripping the -N GOMAXPROCS
// suffix go test appends on multi-core machines, so series recorded on
// different core counts still line up.
//
// Only the critical set gates (default: the serving-path benchmarks named in
// -critical); everything else is informational, since dataset growth and
// intentional trade-offs legitimately move non-critical numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

type benchFile struct {
	Date       string  `json:"date"`
	Go         string  `json:"go"`
	CPUs       int     `json:"cpus"`
	Seed       int64   `json:"seed"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// gomaxprocsSuffix is the "-8" style suffix go test appends to benchmark
// names when GOMAXPROCS > 1; single-core series have none.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	stripped := gomaxprocsSuffix.ReplaceAllString(name, "")
	// Sub-benchmark labels like "workers=-1" also end in -N; the GOMAXPROCS
	// suffix never directly follows '=', so such names keep their tail.
	if strings.HasSuffix(stripped, "=") {
		return name
	}
	return stripped
}

func load(path string) (map[string]bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]bench, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[normalize(b.Name)] = b
	}
	return out, nil
}

func main() {
	newPath := flag.String("new", "", "freshly recorded bench JSON (required)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed relative regression on critical benchmarks")
	critical := flag.String("critical",
		"BenchmarkCubeQuery/sequential,BenchmarkLookupLattice,BenchmarkRefreshAppend",
		"comma-separated benchmarks whose regression fails the run")
	minIters := flag.Int64("min-iters", 5,
		"iteration floor: gated regressions measured from fewer fresh-run iterations downgrade to a warning (0 disables)")
	flag.Parse()
	if *newPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -new NEW.json BASELINE.json [BASELINE.json ...]")
		os.Exit(2)
	}

	fresh, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	// Reference = per-benchmark median across every baseline file (of ns/op
	// and allocs/op independently, each over the runs that recorded it).
	samples := map[string][]bench{}
	for _, path := range flag.Args() {
		base, err := load(path)
		if err != nil {
			fatal(err)
		}
		for name, b := range base {
			samples[name] = append(samples[name], b)
		}
	}
	ref := map[string]bench{}
	for name, runs := range samples {
		ref[name] = bench{
			Name:        name,
			NsPerOp:     median(runs, func(b bench) float64 { return b.NsPerOp }),
			AllocsPerOp: median(runs, func(b bench) float64 { return b.AllocsPerOp }),
		}
	}

	gate := map[string]bool{}
	for _, name := range strings.Split(*critical, ",") {
		if name = strings.TrimSpace(name); name != "" {
			gate[name] = true
		}
	}

	res := compare(os.Stdout, fresh, ref, compareConfig{
		tolerance: *tolerance,
		minIters:  *minIters,
		gate:      gate,
		newPath:   *newPath,
	})
	if len(res.warnings) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchcmp: warnings (below iteration floor, not gating):")
		for _, w := range res.warnings {
			fmt.Fprintln(os.Stderr, "  "+w)
		}
	}
	if len(res.failures) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchcmp: critical regressions:")
		for _, f := range res.failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchcmp: critical benchmarks within tolerance")
}

// median of one metric across recorded runs (mean of the middle pair for an
// even count).
func median(runs []bench, metric func(bench) float64) float64 {
	vals := make([]float64, len(runs))
	for i, b := range runs {
		vals[i] = metric(b)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// rel is (new-old)/old; 0 when the reference is 0 (nothing to regress from).
func rel(old, now float64) float64 {
	if old == 0 {
		return 0
	}
	return (now - old) / old
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
