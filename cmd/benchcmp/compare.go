package main

import (
	"fmt"
	"io"
	"sort"
)

// compareConfig carries the gate policy of one comparison run.
type compareConfig struct {
	// tolerance is the allowed relative ns/op (and allocs/op) regression on
	// gated benchmarks.
	tolerance float64
	// minIters is the iteration floor: a gated regression measured from fewer
	// fresh-run iterations than this downgrades to a warning, because
	// few-iteration numbers inside the full suite flutter on GC interference
	// and fixed setup costs. 0 disables the floor.
	minIters int64
	// gate names the critical benchmarks whose regressions fail the run.
	gate map[string]bool
	// newPath labels the fresh file in missing-benchmark messages.
	newPath string
}

// compareResult splits gate outcomes: failures exit non-zero, warnings are
// advisory (below-floor measurements that need a standalone rerun to trust).
type compareResult struct {
	failures []string
	warnings []string
}

// compare prints the old-vs-new table for every benchmark present on both
// sides and applies the gate policy to the critical set. It is the whole
// comparison pass of the command, separated from flag parsing and process
// exit so the gate semantics are unit-testable.
func compare(w io.Writer, fresh, ref map[string]bench, cfg compareConfig) compareResult {
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if _, ok := ref[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var res compareResult
	fmt.Fprintf(w, "%-55s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	for _, name := range names {
		old, now := ref[name], fresh[name]
		delta := rel(old.NsPerOp, now.NsPerOp)
		adelta := rel(old.AllocsPerOp, now.AllocsPerOp)
		mark := " "
		if cfg.gate[name] {
			mark = "*"
			if delta > cfg.tolerance {
				res.add(name, now, cfg, fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)",
					name, old.NsPerOp, now.NsPerOp, 100*delta, 100*cfg.tolerance))
			}
			// The absolute floor matters on near-zero-alloc benchmarks:
			// identical code measures 3-5 allocs/op run to run when fixed
			// setup costs amortize over a 3-iteration window, so only an
			// increase beyond that flutter is a real regression.
			if adelta > cfg.tolerance && now.AllocsPerOp > old.AllocsPerOp+2 {
				res.add(name, now, cfg, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)",
					name, old.AllocsPerOp, now.AllocsPerOp, 100*adelta, 100*cfg.tolerance))
			}
		}
		fmt.Fprintf(w, "%s%-54s %14.0f %14.0f %+7.1f%% %4.0f→%-4.0f\n",
			mark, name, old.NsPerOp, now.NsPerOp, 100*delta, old.AllocsPerOp, now.AllocsPerOp)
	}
	for _, name := range sortedKeys(cfg.gate) {
		if _, ok := fresh[name]; !ok {
			res.failures = append(res.failures,
				fmt.Sprintf("%s: critical benchmark missing from %s", name, cfg.newPath))
		}
	}
	return res
}

// add records one gated regression, downgrading it to a warning when the
// fresh run sat below the iteration floor: a handful of iterations inside
// the full suite is not a trustworthy measurement, so the finding asks for a
// standalone rerun instead of failing CI.
func (r *compareResult) add(name string, now bench, cfg compareConfig, msg string) {
	if cfg.minIters > 0 && now.Iterations < cfg.minIters {
		r.warnings = append(r.warnings, fmt.Sprintf(
			"%s [measured over %d iterations, below the floor of %d; rerun standalone: go test -run=^$ -bench='^%s$' -benchtime=10x]",
			msg, now.Iterations, cfg.minIters, regexpQuote(name)))
		return
	}
	r.failures = append(r.failures, msg)
}

// regexpQuote escapes a benchmark name for the -bench regexp in the rerun
// hint (names contain '/' sub-benchmark separators, which are regexp-safe,
// but also flag labels like "workers=-1").
func regexpQuote(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		switch c := name[i]; c {
		case '.', '+', '*', '?', '(', ')', '[', ']', '{', '}', '^', '$', '|', '\\':
			out = append(out, '\\', c)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
