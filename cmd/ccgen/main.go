// Command ccgen generates the synthetic and weather-like datasets of the
// paper's evaluation as CSV, for use with ccube or external tools.
//
// Usage:
//
//	ccgen -synth T=100000,D=8,C=100,S=1,R=2,seed=7 -o data.csv
//	ccgen -weather 1002752,8 -o weather.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccubing"
	"ccubing/internal/gen"
	"ccubing/internal/table"
)

func main() {
	var (
		synth   = flag.String("synth", "", "synthetic spec: T=..,D=..,C=..,S=..,R=..,seed=..")
		weather = flag.String("weather", "", "weather-like dataset: tuples,dims")
		out     = flag.String("o", "-", "output file (default stdout)")
	)
	flag.Parse()

	var t *table.Table
	var err error
	switch {
	case *synth != "" && *weather == "":
		t, err = buildSynth(*synth)
	case *weather != "" && *synth == "":
		t, err = buildWeather(*weather)
	default:
		err = fmt.Errorf("exactly one of -synth, -weather is required")
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := table.WriteCSV(bw, t, nil, true); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ccgen: wrote %d tuples, %d dimensions\n", t.NumTuples(), t.NumDims())
}

func buildSynth(s string) (*table.Table, error) {
	cfg, err := ccubing.ParseSyntheticSpec(s)
	if err != nil {
		return nil, err
	}
	ds, err := ccubing.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	return ds.Table(), nil
}

func buildWeather(s string) (*table.Table, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("-weather wants tuples,dims")
	}
	n, err1 := strconv.Atoi(parts[0])
	d, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("-weather wants tuples,dims")
	}
	return gen.Weather(1, n, d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccgen:", err)
	os.Exit(1)
}
