package main

import "testing"

func TestBuildSynth(t *testing.T) {
	tbl, err := buildSynth("T=500,D=4,C=6,S=1,R=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumTuples() != 500 || tbl.NumDims() != 4 {
		t.Fatalf("shape %dx%d", tbl.NumDims(), tbl.NumTuples())
	}
	if _, err := buildSynth("T=bad"); err == nil {
		t.Fatal("bad spec should fail")
	}
	if _, err := buildSynth("X=1"); err == nil {
		t.Fatal("unknown key should fail")
	}
}

func TestBuildWeather(t *testing.T) {
	tbl, err := buildWeather("300,6")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumTuples() != 300 || tbl.NumDims() != 6 {
		t.Fatalf("shape %dx%d", tbl.NumDims(), tbl.NumTuples())
	}
	for _, bad := range []string{"300", "a,b", "300,6,7"} {
		if _, err := buildWeather(bad); err == nil {
			t.Errorf("buildWeather(%q) should fail", bad)
		}
	}
}
