package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ccubing"
)

// server wraps a materialized cube with the HTTP query surface. The cube is
// immutable and concurrency-safe, so handlers need no locking.
type server struct {
	cube *ccubing.Cube
}

// newMux builds the routing table:
//
//	GET  /healthz       liveness probe
//	GET  /v1/cube       cube metadata
//	GET  /v1/query      ?cell=v0,v1,*,v3 (labels when the cube has
//	                    dictionaries, coded values otherwise; * = wildcard)
//	                    or ?values=3,-1,7 (dictionary codes, -1 = wildcard)
//	POST /v1/query      {"cell": ["a","*"]} or {"values": [3,-1]}
//	GET  /v1/slice      ?cell=...&limit=N (or ?values=..., like /v1/query)
//	POST /v1/slice      {"cell": [...], "limit": N}
//	GET  /v1/aggregate  ?where=*,a|b,x..y&group_by=d1,d2&top_k=5&order_by=count
//	POST /v1/aggregate  {"where": [...], "group_by": [...], "top_k": 5,
//	                    "order_by": "count"|"aux", "aux_agg": "sum"|"min"|"max"}
func newMux(cube *ccubing.Cube) *http.ServeMux {
	s := &server{cube: cube}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/cube", s.handleCube)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/slice", s.handleSlice)
	mux.HandleFunc("POST /v1/slice", s.handleSlice)
	mux.HandleFunc("GET /v1/aggregate", s.handleAggregate)
	mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	return mux
}

// queryRequest is the JSON body of /v1/query and /v1/slice. Exactly one of
// Cell (labels, "*" = wildcard) and Values (dictionary codes, -1 = wildcard)
// must be set.
type queryRequest struct {
	Cell   []string `json:"cell,omitempty"`
	Values []int32  `json:"values,omitempty"`
	Limit  int      `json:"limit,omitempty"`
}

type queryResponse struct {
	Found   bool     `json:"found"`
	Count   int64    `json:"count"`
	Closure []string `json:"closure,omitempty"`
	Aux     *float64 `json:"aux,omitempty"`
}

type sliceCell struct {
	Cell  []string `json:"cell"`
	Count int64    `json:"count"`
	Aux   *float64 `json:"aux,omitempty"`
}

type sliceResponse struct {
	Cells     []sliceCell `json:"cells"`
	Truncated bool        `json:"truncated"`
}

type cubeResponse struct {
	Dims     int      `json:"dims"`
	Names    []string `json:"names"`
	Cells    int64    `json:"cells"`
	Cuboids  int      `json:"cuboids"`
	MinSup   int64    `json:"minsup"`
	Labeled  bool     `json:"labeled"`
	Measure  bool     `json:"measure"`
	SizeByte int64    `json:"size_bytes"`
}

func (s *server) handleCube(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cubeResponse{
		Dims:     s.cube.NumDims(),
		Names:    s.cube.Names(),
		Cells:    s.cube.NumCells(),
		Cuboids:  s.cube.NumCuboids(),
		MinSup:   s.cube.MinSup(),
		Labeled:  s.cube.Labeled(),
		Measure:  s.cube.HasMeasure(),
		SizeByte: s.cube.Bytes(),
	})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	_, vals, miss, err := s.parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if miss { // unknown label: the cell is necessarily empty
		writeJSON(w, http.StatusOK, queryResponse{Found: false})
		return
	}
	cell, ok := s.cube.Lookup(vals)
	if !ok {
		writeJSON(w, http.StatusOK, queryResponse{Found: false})
		return
	}
	resp := queryResponse{Found: true, Count: cell.Count, Closure: s.cube.Labels(cell.Values)}
	if s.cube.HasMeasure() {
		aux := cell.Aux
		resp.Aux = &aux
	}
	writeJSON(w, http.StatusOK, resp)
}

const defaultSliceLimit = 1000

func (s *server) handleSlice(w http.ResponseWriter, r *http.Request) {
	req, vals, miss, err := s.parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := defaultSliceLimit
	if req.Limit > 0 {
		limit = req.Limit
	}
	resp := sliceResponse{Cells: []sliceCell{}}
	if !miss {
		s.cube.Slice(vals, func(c ccubing.Cell) bool {
			if len(resp.Cells) >= limit {
				resp.Truncated = true
				return false
			}
			sc := sliceCell{Cell: s.cube.Labels(c.Values), Count: c.Count}
			if s.cube.HasMeasure() {
				aux := c.Aux
				sc.Aux = &aux
			}
			resp.Cells = append(resp.Cells, sc)
			return true
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseRequest resolves the queried cell from either the GET query
// parameters or the JSON body. miss reports an unknown label: a well-formed
// query whose cell is provably empty.
func (s *server) parseRequest(r *http.Request) (req queryRequest, vals []int32, miss bool, err error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		cell, values := q.Get("cell"), q.Get("values")
		if (cell == "") == (values == "") {
			return req, nil, false, fmt.Errorf(`exactly one of the "cell" and "values" parameters is required`)
		}
		if cell != "" {
			req.Cell = strings.Split(cell, ",")
		} else {
			// Coded form, sharing the POST body's validation below.
			for _, part := range strings.Split(values, ",") {
				v, err := strconv.ParseInt(part, 10, 32)
				if err != nil {
					return req, nil, false, fmt.Errorf("bad coded value %q", part)
				}
				req.Values = append(req.Values, int32(v))
			}
		}
		// Same contract as the POST body: negative or non-numeric limits are
		// errors, 0 (or absent) means the default.
		if ls := q.Get("limit"); ls != "" {
			if req.Limit, err = strconv.Atoi(ls); err != nil || req.Limit < 0 {
				return req, nil, false, fmt.Errorf("bad limit %q", ls)
			}
		}
	} else {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, nil, false, fmt.Errorf("bad JSON body: %v", err)
		}
		if (req.Cell == nil) == (req.Values == nil) {
			return req, nil, false, fmt.Errorf(`exactly one of "cell" and "values" is required`)
		}
		if req.Limit < 0 {
			return req, nil, false, fmt.Errorf("bad limit %d", req.Limit)
		}
	}
	if req.Values != nil {
		if err := s.validateValues(req.Values); err != nil {
			return req, nil, false, err
		}
		return req, req.Values, false, nil
	}
	if !s.cube.Labeled() {
		// Coded cube: parse the components as integers ("*" = wildcard).
		if len(req.Cell) != s.cube.NumDims() {
			return req, nil, false, fmt.Errorf("cell has %d components, want %d", len(req.Cell), s.cube.NumDims())
		}
		vals = make([]int32, len(req.Cell))
		for d, c := range req.Cell {
			if c == "*" {
				vals[d] = ccubing.Star
				continue
			}
			v, err := strconv.ParseInt(c, 10, 32)
			if err != nil || v < 0 {
				return req, nil, false, fmt.Errorf("bad value %q for dimension %s", c, s.cube.Names()[d])
			}
			vals[d] = int32(v)
		}
		return req, vals, false, nil
	}
	vals, err = s.cube.ParseCell(req.Cell)
	if err != nil {
		if errors.Is(err, ccubing.ErrUnknownLabel) {
			return req, nil, true, nil
		}
		return req, nil, false, err
	}
	return req, vals, false, nil
}

// validateValues checks a coded cell vector: correct arity, and every entry
// either a non-negative dictionary code or the wildcard sentinel. Arbitrary
// negative entries would silently pack garbage keys and read as misses.
func (s *server) validateValues(vals []int32) error {
	if len(vals) != s.cube.NumDims() {
		return fmt.Errorf("cell has %d values, want %d", len(vals), s.cube.NumDims())
	}
	for d, v := range vals {
		if v < 0 && v != ccubing.Star {
			return fmt.Errorf("bad value %d for dimension %s (codes are non-negative; %d = wildcard)",
				v, s.cube.Names()[d], ccubing.Star)
		}
	}
	return nil
}

// aggregateRequest is the JSON body (and GET parameter set) of /v1/aggregate.
type aggregateRequest struct {
	// Where holds one predicate component per dimension ("*" wildcard, "v"
	// exact, "lo..hi" range, "a|b" set — labels on labeled cubes, codes
	// otherwise); omitted means all wildcards.
	Where   []string `json:"where,omitempty"`
	GroupBy []string `json:"group_by,omitempty"`
	TopK    int      `json:"top_k,omitempty"`
	OrderBy string   `json:"order_by,omitempty"` // "count" (default) or "aux"
	AuxAgg  string   `json:"aux_agg,omitempty"`  // "sum" (default), "min", "max"
}

type aggregateRow struct {
	Cell  []string `json:"cell"`
	Count int64    `json:"count"`
	Aux   *float64 `json:"aux,omitempty"`
}

type aggregateResponse struct {
	Rows []aggregateRow `json:"rows"`
}

func (s *server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req aggregateRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		if where := q.Get("where"); where != "" {
			req.Where = strings.Split(where, ",")
		}
		if gb := q.Get("group_by"); gb != "" {
			req.GroupBy = strings.Split(gb, ",")
		}
		if tk := q.Get("top_k"); tk != "" {
			v, err := strconv.Atoi(tk)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad top_k %q", tk))
				return
			}
			req.TopK = v
		}
		req.OrderBy = q.Get("order_by")
		req.AuxAgg = q.Get("aux_agg")
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad top_k %d", req.TopK))
		return
	}
	opt := ccubing.AggregateOptions{GroupBy: req.GroupBy, TopK: req.TopK}
	var err error
	if opt.By, err = ccubing.ParseOrderBy(req.OrderBy); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if opt.AuxAgg, err = ccubing.ParseAuxAgg(req.AuxAgg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	where := req.Where
	if where == nil {
		where = make([]string, s.cube.NumDims())
		for d := range where {
			where[d] = "*"
		}
	}
	spec, err := s.cube.ParseSpec(where)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows, err := s.cube.Aggregate(spec, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := aggregateResponse{Rows: make([]aggregateRow, 0, len(rows))}
	for _, c := range rows {
		row := aggregateRow{Cell: s.cube.Labels(c.Values), Count: c.Count}
		if s.cube.HasMeasure() {
			aux := c.Aux
			row.Aux = &aux
		}
		resp.Rows = append(resp.Rows, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
