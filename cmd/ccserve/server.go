package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccubing"
)

// server wraps a cube with the HTTP query-and-mutate surface. The cube
// itself swaps its store atomically on refresh; the server-level pointer
// additionally swaps the whole cube on a warm snapshot reload. Handlers load
// the pointer once per request, so every answer comes from one cube and one
// generation.
type server struct {
	cube     atomic.Pointer[ccubing.Cube]
	snapshot string       // -snapshot path, the default /v1/reload source
	start    time.Time    // process start, for /v1/stats uptime
	limiter  *tokenBucket // rate limit on mutating endpoints; nil = unlimited

	// Per-endpoint request counters, exposed by /v1/stats.
	nCube, nQuery, nSlice, nAggregate, nAppend, nDelete, nUpdate, nRefresh, nReload, nStats atomic.Int64
	nRateLimited                                                                            atomic.Int64
}

// tokenBucket rate-limits the mutating endpoints: rate tokens/second refill
// a bucket of burst capacity; a request spends one token or is turned away
// with the time until the next one.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	burst := math.Ceil(rate)
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// take spends one token, or reports how long until one accrues.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// allowMutation gates a mutating request through the token bucket; on
// rejection it writes 429 with a Retry-After hint and counts the turn-away.
func (s *server) allowMutation(w http.ResponseWriter) bool {
	if s.limiter == nil {
		return true
	}
	ok, retry := s.limiter.take()
	if ok {
		return true
	}
	s.nRateLimited.Add(1)
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded; retry in %ds", secs))
	return false
}

// Request-body ceilings: queries are small; appends carry batches of rows.
// Oversized bodies are rejected with 413 via http.MaxBytesReader.
const (
	maxQueryBody  = 1 << 20
	maxAppendBody = 32 << 20
)

// newMux builds the routing table:
//
//	GET  /healthz       liveness probe
//	GET  /v1/cube       cube metadata
//	GET  /v1/query      ?cell=v0,v1,*,v3 (labels when the cube has
//	                    dictionaries, coded values otherwise; * = wildcard)
//	                    or ?values=3,-1,7 (dictionary codes, -1 = wildcard)
//	POST /v1/query      {"cell": ["a","*"]} or {"values": [3,-1]}
//	GET  /v1/slice      ?cell=...&limit=N (or ?values=..., like /v1/query)
//	POST /v1/slice      {"cell": [...], "limit": N}
//	GET  /v1/aggregate  ?where=*,a|b,x..y&group_by=d1,d2&top_k=5&order_by=count
//	POST /v1/aggregate  {"where": [...], "group_by": [...], "top_k": 5,
//	                    "order_by": "count"|"aux", "aux_agg": "sum"|"min"|"max"}
//	POST /v1/append     {"rows": [["a","b"],...]} or {"values": [[1,2],...]},
//	                    optional "aux": [...] and "refresh": true — or an
//	                    application/x-ndjson stream, one tuple per line
//	POST /v1/delete     same body shapes as /v1/append; each tuple is a
//	                    tombstone removing one matching occurrence
//	POST /v1/update     {"old_rows": [...], "new_rows": [...]} (labels) or
//	                    {"old_values": [...], "new_values": [...]} (codes),
//	                    optional "old_aux"/"new_aux" and "refresh": true
//	POST /v1/refresh    fold the buffered delta in (partition-scoped)
//	POST /v1/reload     {"path": "..."} warm snapshot reload (defaults to the
//	                    -snapshot path); validated against the serving cube
//	GET  /v1/stats      generation, backlog, refresh latency, per-endpoint
//	                    query counters
//
// Wrong-method hits on the v1 endpoints get 405 with an Allow header (the
// Go 1.22 ServeMux method-pattern contract). Mutating endpoints (append,
// delete, update, refresh, reload) share a token bucket of rate requests
// per second (0 = unlimited); over-budget requests get 429 with Retry-After.
func newMux(cube *ccubing.Cube, snapshotPath string, rate float64) *http.ServeMux {
	s := &server{snapshot: snapshotPath, start: time.Now()}
	if rate > 0 {
		s.limiter = newTokenBucket(rate)
	}
	s.cube.Store(cube)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/cube", s.handleCube)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/slice", s.handleSlice)
	mux.HandleFunc("POST /v1/slice", s.handleSlice)
	mux.HandleFunc("GET /v1/aggregate", s.handleAggregate)
	mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	mux.HandleFunc("POST /v1/append", s.handleAppend)
	mux.HandleFunc("POST /v1/delete", s.handleDelete)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// registerPprof exposes the net/http/pprof endpoints on the serving mux
// (which is not http.DefaultServeMux, so the package's init registration
// does not apply). Gated behind the -pprof flag: profiling handlers reveal
// internals and cost CPU, so they are opt-in.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// queryRequest is the JSON body of /v1/query and /v1/slice. Exactly one of
// Cell (labels, "*" = wildcard) and Values (dictionary codes, -1 = wildcard)
// must be set.
type queryRequest struct {
	Cell   []string `json:"cell,omitempty"`
	Values []int32  `json:"values,omitempty"`
	Limit  int      `json:"limit,omitempty"`
}

type queryResponse struct {
	Found   bool     `json:"found"`
	Count   int64    `json:"count"`
	Closure []string `json:"closure,omitempty"`
	Aux     *float64 `json:"aux,omitempty"`
}

type sliceCell struct {
	Cell  []string `json:"cell"`
	Count int64    `json:"count"`
	Aux   *float64 `json:"aux,omitempty"`
}

type sliceResponse struct {
	Cells     []sliceCell `json:"cells"`
	Truncated bool        `json:"truncated"`
}

type cubeResponse struct {
	Dims       int      `json:"dims"`
	Names      []string `json:"names"`
	Cells      int64    `json:"cells"`
	Cuboids    int      `json:"cuboids"`
	MinSup     int64    `json:"minsup"`
	Labeled    bool     `json:"labeled"`
	Measure    bool     `json:"measure"`
	SizeByte   int64    `json:"size_bytes"`
	Generation uint64   `json:"generation"`
	SourceRows int64    `json:"source_rows"`
	Live       bool     `json:"live"` // accepts /v1/append + /v1/refresh
}

func (s *server) handleCube(w http.ResponseWriter, r *http.Request) {
	s.nCube.Add(1)
	cube := s.cube.Load()
	writeJSON(w, http.StatusOK, cubeResponse{
		Dims:       cube.NumDims(),
		Names:      cube.Names(),
		Cells:      cube.NumCells(),
		Cuboids:    cube.NumCuboids(),
		MinSup:     cube.MinSup(),
		Labeled:    cube.Labeled(),
		Measure:    cube.HasMeasure(),
		SizeByte:   cube.Bytes(),
		Generation: cube.Generation(),
		SourceRows: cube.SourceRows(),
		Live:       cube.Refreshable(),
	})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.nQuery.Add(1)
	cube := s.cube.Load()
	_, vals, miss, err := parseRequest(cube, w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if miss { // unknown label: the cell is necessarily empty
		writeJSON(w, http.StatusOK, queryResponse{Found: false})
		return
	}
	cell, ok := cube.Lookup(vals)
	if !ok {
		writeJSON(w, http.StatusOK, queryResponse{Found: false})
		return
	}
	resp := queryResponse{Found: true, Count: cell.Count, Closure: cube.Labels(cell.Values)}
	if cube.HasMeasure() {
		aux := cell.Aux
		resp.Aux = &aux
	}
	writeJSON(w, http.StatusOK, resp)
}

const defaultSliceLimit = 1000

func (s *server) handleSlice(w http.ResponseWriter, r *http.Request) {
	s.nSlice.Add(1)
	cube := s.cube.Load()
	req, vals, miss, err := parseRequest(cube, w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	limit := defaultSliceLimit
	if req.Limit > 0 {
		limit = req.Limit
	}
	resp := sliceResponse{Cells: []sliceCell{}}
	if !miss {
		cube.Slice(vals, func(c ccubing.Cell) bool {
			if len(resp.Cells) >= limit {
				resp.Truncated = true
				return false
			}
			sc := sliceCell{Cell: cube.Labels(c.Values), Count: c.Count}
			if cube.HasMeasure() {
				aux := c.Aux
				sc.Aux = &aux
			}
			resp.Cells = append(resp.Cells, sc)
			return true
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseRequest resolves the queried cell from either the GET query
// parameters or the JSON body. miss reports an unknown label: a well-formed
// query whose cell is provably empty.
func parseRequest(cube *ccubing.Cube, w http.ResponseWriter, r *http.Request) (req queryRequest, vals []int32, miss bool, err error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		cell, values := q.Get("cell"), q.Get("values")
		if (cell == "") == (values == "") {
			return req, nil, false, fmt.Errorf(`exactly one of the "cell" and "values" parameters is required`)
		}
		if cell != "" {
			req.Cell = strings.Split(cell, ",")
		} else {
			// Coded form, sharing the POST body's validation below.
			for _, part := range strings.Split(values, ",") {
				v, err := strconv.ParseInt(part, 10, 32)
				if err != nil {
					return req, nil, false, fmt.Errorf("bad coded value %q", part)
				}
				req.Values = append(req.Values, int32(v))
			}
		}
		// Same contract as the POST body: negative or non-numeric limits are
		// errors, 0 (or absent) means the default.
		if ls := q.Get("limit"); ls != "" {
			if req.Limit, err = strconv.Atoi(ls); err != nil || req.Limit < 0 {
				return req, nil, false, fmt.Errorf("bad limit %q", ls)
			}
		}
	} else {
		r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, nil, false, fmt.Errorf("bad JSON body: %w", err)
		}
		if (req.Cell == nil) == (req.Values == nil) {
			return req, nil, false, fmt.Errorf(`exactly one of "cell" and "values" is required`)
		}
		if req.Limit < 0 {
			return req, nil, false, fmt.Errorf("bad limit %d", req.Limit)
		}
	}
	if req.Values != nil {
		if err := validateValues(cube, req.Values); err != nil {
			return req, nil, false, err
		}
		return req, req.Values, false, nil
	}
	if !cube.Labeled() {
		// Coded cube: parse the components as integers ("*" = wildcard).
		if len(req.Cell) != cube.NumDims() {
			return req, nil, false, fmt.Errorf("cell has %d components, want %d", len(req.Cell), cube.NumDims())
		}
		vals = make([]int32, len(req.Cell))
		for d, c := range req.Cell {
			if c == "*" {
				vals[d] = ccubing.Star
				continue
			}
			v, err := strconv.ParseInt(c, 10, 32)
			if err != nil || v < 0 {
				return req, nil, false, fmt.Errorf("bad value %q for dimension %s", c, cube.Names()[d])
			}
			vals[d] = int32(v)
		}
		return req, vals, false, nil
	}
	vals, err = cube.ParseCell(req.Cell)
	if err != nil {
		if errors.Is(err, ccubing.ErrUnknownLabel) {
			return req, nil, true, nil
		}
		return req, nil, false, err
	}
	return req, vals, false, nil
}

// validateValues checks a coded cell vector: correct arity, and every entry
// either a non-negative dictionary code or the wildcard sentinel. Arbitrary
// negative entries would silently pack garbage keys and read as misses.
func validateValues(cube *ccubing.Cube, vals []int32) error {
	if len(vals) != cube.NumDims() {
		return fmt.Errorf("cell has %d values, want %d", len(vals), cube.NumDims())
	}
	for d, v := range vals {
		if v < 0 && v != ccubing.Star {
			return fmt.Errorf("bad value %d for dimension %s (codes are non-negative; %d = wildcard)",
				v, cube.Names()[d], ccubing.Star)
		}
	}
	return nil
}

// aggregateRequest is the JSON body (and GET parameter set) of /v1/aggregate.
type aggregateRequest struct {
	// Where holds one predicate component per dimension ("*" wildcard, "v"
	// exact, "lo..hi" range, "a|b" set — labels on labeled cubes, codes
	// otherwise); omitted means all wildcards.
	Where   []string `json:"where,omitempty"`
	GroupBy []string `json:"group_by,omitempty"`
	TopK    int      `json:"top_k,omitempty"`
	OrderBy string   `json:"order_by,omitempty"` // "count" (default) or "aux"
	AuxAgg  string   `json:"aux_agg,omitempty"`  // "sum" (default), "min", "max"
}

type aggregateRow struct {
	Cell  []string `json:"cell"`
	Count int64    `json:"count"`
	Aux   *float64 `json:"aux,omitempty"`
}

type aggregateResponse struct {
	Rows []aggregateRow `json:"rows"`
	// Exact is false on iceberg cubes (minsup > 1), where combinations below
	// the threshold are absent and every aggregate is a lower bound.
	Exact bool `json:"exact"`
}

func (s *server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	s.nAggregate.Add(1)
	cube := s.cube.Load()
	var req aggregateRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		if where := q.Get("where"); where != "" {
			req.Where = strings.Split(where, ",")
		}
		if gb := q.Get("group_by"); gb != "" {
			req.GroupBy = strings.Split(gb, ",")
		}
		if tk := q.Get("top_k"); tk != "" {
			v, err := strconv.Atoi(tk)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad top_k %q", tk))
				return
			}
			req.TopK = v
		}
		req.OrderBy = q.Get("order_by")
		req.AuxAgg = q.Get("aux_agg")
	} else {
		r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, decodeStatus(err), fmt.Errorf("bad JSON body: %w", err))
			return
		}
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad top_k %d", req.TopK))
		return
	}
	opt := ccubing.AggregateOptions{GroupBy: req.GroupBy, TopK: req.TopK}
	var err error
	if opt.By, err = ccubing.ParseOrderBy(req.OrderBy); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if opt.AuxAgg, err = ccubing.ParseAuxAgg(req.AuxAgg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	where := req.Where
	if where == nil {
		where = make([]string, cube.NumDims())
		for d := range where {
			where[d] = "*"
		}
	}
	spec, err := cube.ParseSpec(where)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows, exact, err := cube.Aggregate(spec, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := aggregateResponse{Rows: make([]aggregateRow, 0, len(rows)), Exact: exact}
	for _, c := range rows {
		row := aggregateRow{Cell: cube.Labels(c.Values), Count: c.Count}
		if cube.HasMeasure() {
			aux := c.Aux
			row.Aux = &aux
		}
		resp.Rows = append(resp.Rows, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

// appendRequest is the JSON body of /v1/append and /v1/delete. Exactly one
// of Rows (labels) and Values (dictionary codes) must be set; Aux carries
// one measure value per row on measure cubes; Refresh folds the delta in
// before responding.
type appendRequest struct {
	Rows    [][]string `json:"rows,omitempty"`
	Values  [][]int32  `json:"values,omitempty"`
	Aux     []float64  `json:"aux,omitempty"`
	Refresh bool       `json:"refresh,omitempty"`
}

type appendResponse struct {
	Appended   int    `json:"appended"`
	Backlog    int    `json:"backlog"`
	Generation uint64 `json:"generation"`
	// Refreshed reports that the call itself published a new generation
	// (explicit "refresh": true or a crossed AutoRefresh row threshold).
	Refreshed bool `json:"refreshed"`
}

type deleteResponse struct {
	Deleted    int    `json:"deleted"`
	Backlog    int    `json:"backlog"`
	Generation uint64 `json:"generation"`
	Refreshed  bool   `json:"refreshed"`
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	s.nAppend.Add(1)
	s.mutateRows(w, r, false)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.nDelete.Add(1)
	s.mutateRows(w, r, true)
}

// mutateRows is the shared body of /v1/append and /v1/delete: same request
// shapes (JSON batch or NDJSON stream), same validation, same size ceiling —
// tombstone selects whether tuples join or leave the relation.
func (s *server) mutateRows(w http.ResponseWriter, r *http.Request, tombstone bool) {
	if !s.allowMutation(w) {
		return
	}
	cube := s.cube.Load()
	if !cube.Refreshable() {
		writeError(w, http.StatusConflict, fmt.Errorf("cube is static (snapshot-loaded); serve from data to mutate"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxAppendBody)
	genBefore := cube.Generation()
	var count int
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "ndjson") {
		var n int
		var err error
		if tombstone {
			n, err = cube.DeleteNDJSON(r.Body)
		} else {
			n, err = cube.AppendNDJSON(r.Body)
		}
		if err != nil {
			writeError(w, decodeStatus(err), err)
			return
		}
		count = n
	} else {
		var req appendRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, decodeStatus(err), fmt.Errorf("bad JSON body: %w", err))
			return
		}
		if (req.Rows == nil) == (req.Values == nil) {
			writeError(w, http.StatusBadRequest, fmt.Errorf(`exactly one of "rows" and "values" is required`))
			return
		}
		var n int
		var err error
		switch {
		case req.Rows != nil && tombstone:
			n, err = cube.DeleteLabels(req.Rows, req.Aux)
		case req.Rows != nil:
			n, err = cube.Append(req.Rows, req.Aux)
		case tombstone:
			n, err = cube.Delete(req.Values, req.Aux)
		default:
			n, err = cube.AppendValues(req.Values, req.Aux)
		}
		if err != nil {
			writeMutateError(w, n, err)
			return
		}
		count = n
		if req.Refresh {
			if _, err := cube.Refresh(); err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
		}
	}
	gen := cube.Generation()
	if tombstone {
		writeJSON(w, http.StatusOK, deleteResponse{
			Deleted:    count,
			Backlog:    cube.Backlog(),
			Generation: gen,
			Refreshed:  gen != genBefore,
		})
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{
		Appended:   count,
		Backlog:    cube.Backlog(),
		Generation: gen,
		Refreshed:  gen != genBefore,
	})
}

// updateRequest is the JSON body of /v1/update: parallel old/new batches in
// exactly one of the labeled (old_rows/new_rows) and coded
// (old_values/new_values) forms, with per-row measure values on measure
// cubes. Each pair atomically replaces one occurrence of the old tuple with
// the new one on the next refresh.
type updateRequest struct {
	OldRows   [][]string `json:"old_rows,omitempty"`
	NewRows   [][]string `json:"new_rows,omitempty"`
	OldValues [][]int32  `json:"old_values,omitempty"`
	NewValues [][]int32  `json:"new_values,omitempty"`
	OldAux    []float64  `json:"old_aux,omitempty"`
	NewAux    []float64  `json:"new_aux,omitempty"`
	Refresh   bool       `json:"refresh,omitempty"`
}

type updateResponse struct {
	Updated    int    `json:"updated"`
	Backlog    int    `json:"backlog"`
	Generation uint64 `json:"generation"`
	Refreshed  bool   `json:"refreshed"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.nUpdate.Add(1)
	if !s.allowMutation(w) {
		return
	}
	cube := s.cube.Load()
	if !cube.Refreshable() {
		writeError(w, http.StatusConflict, fmt.Errorf("cube is static (snapshot-loaded); serve from data to mutate"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxAppendBody)
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("bad JSON body: %w", err))
		return
	}
	labeled := req.OldRows != nil || req.NewRows != nil
	coded := req.OldValues != nil || req.NewValues != nil
	if labeled == coded {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`exactly one of "old_rows"/"new_rows" and "old_values"/"new_values" is required`))
		return
	}
	genBefore := cube.Generation()
	var n int
	var err error
	if labeled {
		n, err = cube.UpdateLabels(req.OldRows, req.NewRows, req.OldAux, req.NewAux)
	} else {
		n, err = cube.Update(req.OldValues, req.NewValues, req.OldAux, req.NewAux)
	}
	if err != nil {
		writeMutateError(w, n, err)
		return
	}
	if req.Refresh {
		if _, err := cube.Refresh(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	gen := cube.Generation()
	writeJSON(w, http.StatusOK, updateResponse{
		Updated:    n,
		Backlog:    cube.Backlog(),
		Generation: gen,
		Refreshed:  gen != genBefore,
	})
}

type refreshResponse struct {
	Generation           uint64  `json:"generation"`
	Appended             int     `json:"appended"`
	Deleted              int     `json:"deleted"`
	PartitionsRecomputed int     `json:"partitions_recomputed"`
	PartitionsTotal      int     `json:"partitions_total"`
	CellsRetained        int64   `json:"cells_retained"`
	CellsRebuilt         int64   `json:"cells_rebuilt"`
	ElapsedMs            float64 `json:"elapsed_ms"`
}

func (s *server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	s.nRefresh.Add(1)
	if !s.allowMutation(w) {
		return
	}
	cube := s.cube.Load()
	if !cube.Refreshable() {
		writeError(w, http.StatusConflict, fmt.Errorf("cube is static (snapshot-loaded); serve from data to refresh"))
		return
	}
	st, err := cube.Refresh()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, refreshResponse{
		Generation:           st.Generation,
		Appended:             st.Appended,
		Deleted:              st.Deleted,
		PartitionsRecomputed: st.PartitionsRecomputed,
		PartitionsTotal:      st.PartitionsTotal,
		CellsRetained:        st.CellsRetained,
		CellsRebuilt:         st.CellsRebuilt,
		ElapsedMs:            float64(st.Elapsed.Microseconds()) / 1000,
	})
}

// reloadRequest is the JSON body of /v1/reload; an empty body reloads the
// path the server was started with (-snapshot). Force is required to reload
// over a live cube with a non-empty append backlog (the buffered rows are
// discarded) — a snapshot-loaded cube is static, so reload also ends the
// append/refresh surface until restart.
type reloadRequest struct {
	Path  string `json:"path,omitempty"`
	Force bool   `json:"force,omitempty"`
}

type reloadResponse struct {
	Path       string `json:"path"`
	Generation uint64 `json:"generation"`
	Cells      int64  `json:"cells"`
	SourceRows int64  `json:"source_rows"`
}

// handleReload swaps the serving cube for one loaded from a snapshot — the
// warm path for picking up an offline rebuild without a restart. The
// snapshot must describe the same cube (dimension names) and must not
// regress the generation; in-flight queries finish on the old cube.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.nReload.Add(1)
	if !s.allowMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, decodeStatus(err), fmt.Errorf("bad JSON body: %w", err))
		return
	}
	path := req.Path
	if path == "" {
		path = s.snapshot
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no snapshot path: pass {\"path\": ...} or start with -snapshot"))
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer f.Close()
	loaded, err := ccubing.LoadCube(bufio.NewReader(f))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cur := s.cube.Load()
	if got, want := strings.Join(loaded.Names(), ","), strings.Join(cur.Names(), ","); got != want {
		writeError(w, http.StatusConflict, fmt.Errorf("snapshot describes a different cube (dimensions %q, serving %q)", got, want))
		return
	}
	if loaded.Generation() < cur.Generation() {
		writeError(w, http.StatusConflict, fmt.Errorf("snapshot generation %d regresses serving generation %d", loaded.Generation(), cur.Generation()))
		return
	}
	if backlog := cur.Backlog(); backlog > 0 && !req.Force {
		writeError(w, http.StatusConflict, fmt.Errorf("serving cube has %d buffered append rows that a reload would discard; POST /v1/refresh first or pass {\"force\": true}", backlog))
		return
	}
	old := s.cube.Swap(loaded)
	_ = old.Close() // stop any auto-refresh timer; queries in flight finish on it
	writeJSON(w, http.StatusOK, reloadResponse{
		Path:       path,
		Generation: loaded.Generation(),
		Cells:      loaded.NumCells(),
		SourceRows: loaded.SourceRows(),
	})
}

type statsResponse struct {
	Generation       uint64           `json:"generation"`
	SourceRows       int64            `json:"source_rows"`
	Backlog          int              `json:"backlog"`
	Cells            int64            `json:"cells"`
	Live             bool             `json:"live"`
	Refreshes        int64            `json:"refreshes"`
	LastRefreshMs    float64          `json:"last_refresh_ms"`
	LastRefreshError string           `json:"last_refresh_error,omitempty"`
	UptimeMs         int64            `json:"uptime_ms"`
	RateLimited      int64            `json:"rate_limited"`
	CacheHits        int64            `json:"cache_hits"`
	CacheMisses      int64            `json:"cache_misses"`
	Requests         map[string]int64 `json:"requests"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.nStats.Add(1)
	cube := s.cube.Load()
	m := cube.RefreshMetrics()
	hits, misses := cube.QueryCacheMetrics()
	writeJSON(w, http.StatusOK, statsResponse{
		Generation:       m.Generation,
		SourceRows:       m.Rows,
		Backlog:          m.Backlog,
		Cells:            cube.NumCells(),
		Live:             cube.Refreshable(),
		Refreshes:        m.Refreshes,
		LastRefreshMs:    float64(m.Last.Elapsed.Microseconds()) / 1000,
		LastRefreshError: m.LastError,
		UptimeMs:         time.Since(s.start).Milliseconds(),
		RateLimited:      s.nRateLimited.Load(),
		CacheHits:        hits,
		CacheMisses:      misses,
		Requests: map[string]int64{
			"cube":      s.nCube.Load(),
			"query":     s.nQuery.Load(),
			"slice":     s.nSlice.Load(),
			"aggregate": s.nAggregate.Load(),
			"append":    s.nAppend.Load(),
			"delete":    s.nDelete.Load(),
			"update":    s.nUpdate.Load(),
			"refresh":   s.nRefresh.Load(),
			"reload":    s.nReload.Load(),
			"stats":     s.nStats.Load(),
		},
	})
}

// writeMutateError reports a failed JSON-batch mutation. Batch validation is
// all-or-nothing, so n > 0 with an error means the rows ARE buffered and the
// failure was the threshold-triggered refresh — a server-side 500 naming the
// buffered count, so clients don't retry and double-buffer the batch. n == 0
// is the usual request rejection.
func writeMutateError(w http.ResponseWriter, n int, err error) {
	if n > 0 {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("%d rows buffered, but the triggered refresh failed (do not resend the batch): %w", n, err))
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// decodeStatus maps a request-parsing error to its HTTP status: 413 when the
// body blew the MaxBytesReader ceiling, 400 otherwise.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
