// Command ccserve materializes a closed cube and serves point and slice
// queries over HTTP: the serving layer the closed cube's lossless-compression
// property makes possible — any cell's count is answered from the closed
// cells, no base-relation rescan.
//
// Usage:
//
//	ccserve -csv data.csv -minsup 10 -addr :8080
//	ccserve -synth T=100000,D=6,C=50,S=1,seed=1 -minsup 4 -workers -1
//	ccserve -snapshot cube.ccube -addr :8080
//	ccserve -csv data.csv -refresh-rows 1000 -refresh-interval 30s -wal delta.wal
//
//	ccserve -csv data.csv -shard 0/2 -addr :8081     # shard worker 0 of 2
//	ccserve -csv data.csv -shard 1/2 -addr :8082     # shard worker 1 of 2
//	ccserve -router localhost:8081,localhost:8082    # scatter-gather front
//
// Endpoints (JSON):
//
//	GET  /healthz
//	GET  /v1/cube                       cube metadata
//	GET  /v1/query?cell=a,*,b           point query ("*" = wildcard)
//	POST /v1/query  {"cell": ["a","*","b"]} or {"values": [3,-1,7]}
//	GET  /v1/slice?cell=a,*,*&limit=50  closed cells inside a sub-cube
//	POST /v1/slice  {"cell": [...], "limit": 50}
//	GET  /v1/aggregate                  predicate group-by / top-k
//	POST /v1/append                     buffer rows for refresh (JSON or NDJSON)
//	POST /v1/delete                     buffer tombstones (same shapes)
//	POST /v1/update                     buffer atomic delete+append pairs
//	POST /v1/refresh                    fold the delta in (partition-scoped)
//	POST /v1/reload                     warm snapshot reload (workers only)
//	GET  /v1/stats                      generation, backlog, latency, counters
//	GET  /v1/health                     role, shard slot, generation, uptime
//	GET  /metrics                       Prometheus text exposition
//
// Every request gets an X-CCubing-Request-ID (inbound values are honored and
// a router forwards them to its workers); -slow-query logs one structured
// line — ID, endpoint, spec, per-stage timings — for requests slower than
// the threshold.
//
// Cubes built from data (-csv/-synth/-weather) are live: /v1/append buffers
// tuples, /v1/delete and /v1/update buffer tombstones and replacements, and
// /v1/refresh (or -refresh-rows / -refresh-interval) folds them in by
// recomputing only the touched leading-dimension partitions and swapping
// the store atomically. -rate bounds the mutating endpoints to that many
// requests per second (token bucket; over-budget calls get 429 with
// Retry-After).
//
// -shard i/n keeps only the tuples whose leading-dimension component hashes
// to slot i of n before materializing — n such workers together hold the
// whole relation, each answering dimension-0-bound queries with globally
// correct counts and closures. -router fronts them with the identical API,
// routing bound queries to their owner and scatter-gathering the rest; it
// takes no data source of its own.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds, then closes the cube — which syncs any
// write-ahead log, so mutations buffered but not yet refreshed survive a
// restart.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ccubing"
	"ccubing/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		csvPath  = flag.String("csv", "", "CSV input file (header row = dimension names)")
		synth    = flag.String("synth", "", "synthetic dataset spec: T=..,D=..,C=..,S=..,seed=..")
		weather  = flag.String("weather", "", "weather-like dataset: tuples,dims (e.g. 100000,8)")
		snapshot = flag.String("snapshot", "", "load a cube snapshot written by ccube -store instead of computing")
		algName  = flag.String("alg", "auto", "algorithm: auto|mm|star|stararray|qcdfs|qctree|obbuc")
		minsup   = flag.Int64("minsup", 1, "iceberg threshold on count")
		workers  = flag.Int("workers", 1, "engine goroutines (0/1 = sequential, n>1 = n workers, negative = all CPU cores)")

		shardSpec = flag.String("shard", "", "serve one shard of an n-way topology: index/count (e.g. 0/2); applies to -csv/-synth/-weather builds")
		routerTo  = flag.String("router", "", "comma-separated shard worker base URLs; serve as a scatter-gather router instead of a cube")

		refreshRows  = flag.Int("refresh-rows", 0, "auto-refresh when the delta backlog reaches this many rows (0 = off)")
		refreshEvery = flag.Duration("refresh-interval", 0, "auto-refresh on this period (0 = off)")
		walPath      = flag.String("wal", "", "write-ahead log for pending (unrefreshed) delta rows; refreshed rows persist only via snapshots")
		rate         = flag.Float64("rate", 0, "token-bucket limit on mutating endpoints (append/delete/update/refresh/reload), requests per second (0 = unlimited)")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/")
		cacheSize    = flag.Int("query-cache", ccubing.DefaultQueryCacheEntries, "query-result cache capacity in entries (0 = disabled)")
		slowQuery    = flag.Duration("slow-query", 0, "log a structured line (request ID, endpoint, spec, stage timings) for requests slower than this (0 = off)")
	)
	flag.Parse()
	if *rate < 0 {
		fatal(fmt.Errorf("negative -rate %g", *rate))
	}
	if *slowQuery < 0 {
		fatal(fmt.Errorf("negative -slow-query %s", *slowQuery))
	}
	logStartup(*addr, *rate, *slowQuery, *cacheSize)

	var shard serve.Shard
	var local *serve.Local
	if *routerTo != "" {
		if *csvPath != "" || *synth != "" || *weather != "" || *snapshot != "" || *shardSpec != "" {
			fatal(errors.New("-router takes no data source: the shard workers hold the cubes"))
		}
		if *refreshRows > 0 || *refreshEvery > 0 || *walPath != "" {
			fatal(errors.New("-refresh-rows/-refresh-interval/-wal belong on the shard workers, not the router"))
		}
		var workers []serve.Shard
		for _, u := range strings.Split(*routerTo, ",") {
			w, err := serve.Dial(strings.TrimSpace(u))
			if err != nil {
				fatal(err)
			}
			workers = append(workers, w)
		}
		router, err := serve.NewRouter(workers)
		if err != nil {
			fatal(err)
		}
		meta, err := router.Meta()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccserve: routing over %d shards (%d closed cells, %d dims, minsup=%d, generation=%d) on %s\n",
			len(workers), meta.Cells, meta.Dims, meta.MinSup, meta.Generation, *addr)
		shard = router
	} else {
		shardIdx, shardCnt, err := parseShardSpec(*shardSpec)
		if err != nil {
			fatal(err)
		}
		cube, err := buildCube(*snapshot, *csvPath, *synth, *weather, *algName, *minsup, *workers, shardIdx, shardCnt)
		if err != nil {
			fatal(err)
		}
		if *refreshRows > 0 || *refreshEvery > 0 || *walPath != "" {
			if !cube.Refreshable() {
				fatal(errors.New("-refresh-rows/-refresh-interval/-wal need a cube built from data (-csv/-synth/-weather), not -snapshot"))
			}
			if err := cube.AutoRefresh(ccubing.AutoRefreshOptions{
				Rows:     *refreshRows,
				Interval: *refreshEvery,
				WAL:      *walPath,
			}); err != nil {
				fatal(err)
			}
		}
		if *cacheSize != ccubing.DefaultQueryCacheEntries {
			cube.SetQueryCache(*cacheSize)
		}
		local = serve.NewLocal(cube)
		local.SetSnapshot(*snapshot)
		if shardCnt > 0 {
			local.SetShard(shardIdx, shardCnt)
			fmt.Fprintf(os.Stderr, "ccserve: serving shard %d/%d\n", shardIdx, shardCnt)
		}
		fmt.Fprintf(os.Stderr, "ccserve: serving %d closed cells (%d dims, %d cuboids, minsup=%d, generation=%d) on %s\n",
			cube.NumCells(), cube.NumDims(), cube.NumCuboids(), cube.MinSup(), cube.Generation(), *addr)
		shard = local
	}

	server := serve.NewServer(shard, serve.Config{Rate: *rate, SlowQuery: *slowQuery})
	if *pprofOn {
		server.EnablePprof()
		fmt.Fprintf(os.Stderr, "ccserve: pprof enabled at http://%s/debug/pprof/\n", *addr)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "ccserve: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fatal(err)
		}
		// Drain complete: no more mutations can arrive. Close the serving cube
		// (via Local, which tracks reloads) so the WAL syncs any still-buffered
		// delta rows to disk before the process exits.
		if local != nil {
			if backlog := local.Cube().Backlog(); backlog > 0 {
				fmt.Fprintf(os.Stderr, "ccserve: flushing %d pending delta rows\n", backlog)
			}
			if err := local.Cube().Close(); err != nil {
				fatal(err)
			}
		}
	}
}

// logStartup records what binary is running and the effective transport
// config, so an operator reading the log of a long-lived server knows what
// it was started as without inspecting the process.
func logStartup(addr string, rate float64, slowQuery time.Duration, cacheSize int) {
	version, vcs := "(devel)", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "+dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			vcs = " rev=" + rev + modified
		}
	}
	fmt.Fprintf(os.Stderr, "ccserve: build version=%s%s %s %s/%s\n",
		version, vcs, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(os.Stderr, "ccserve: config addr=%s rate=%g slow-query=%s query-cache=%d\n",
		addr, rate, slowQuery, cacheSize)
}

// parseShardSpec parses -shard "index/count"; empty means single mode
// (returns count 0).
func parseShardSpec(spec string) (index, count int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	parts := strings.Split(spec, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-shard wants index/count (e.g. 0/2), got %q", spec)
	}
	index, err1 := strconv.Atoi(parts[0])
	count, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard wants index in [0,count), got %q", spec)
	}
	return index, count, nil
}

// buildCube loads a snapshot or materializes a cube from one dataset source,
// optionally keeping only one leading-dimension shard of the relation.
// Snapshots are served as-is — save per-shard snapshots from shard workers
// to restart a sharded topology from disk.
func buildCube(snapshot, csvPath, synth, weather, algName string, minsup int64, workers, shardIdx, shardCnt int) (*ccubing.Cube, error) {
	sources := 0
	for _, s := range []string{snapshot, csvPath, synth, weather} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of -snapshot, -csv, -synth, -weather is required")
	}
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ccubing.LoadCube(bufio.NewReader(f))
	}

	var ds *ccubing.Dataset
	var err error
	switch {
	case csvPath != "":
		var f *os.File
		if f, err = os.Open(csvPath); err != nil {
			return nil, err
		}
		defer f.Close()
		ds, err = ccubing.ReadCSV(bufio.NewReader(f))
	case synth != "":
		var cfg ccubing.SyntheticConfig
		if cfg, err = ccubing.ParseSyntheticSpec(synth); err != nil {
			return nil, err
		}
		ds, err = ccubing.Synthetic(cfg)
	default:
		parts := strings.Split(weather, ",")
		if len(parts) != 2 {
			return nil, errors.New("-weather wants tuples,dims")
		}
		t, err1 := strconv.Atoi(parts[0])
		d, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, errors.New("-weather wants tuples,dims")
		}
		ds, err = ccubing.Weather(1, t, d)
	}
	if err != nil {
		return nil, err
	}
	if shardCnt > 0 {
		if ds, err = ds.Shard(0, shardIdx, shardCnt); err != nil {
			return nil, err
		}
	}
	alg, err := ccubing.ParseAlgorithm(algName)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cube, err := ccubing.Materialize(ds, ccubing.Options{
		MinSup:    minsup,
		Algorithm: alg,
		Workers:   workers,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "ccserve: materialized with %s in %s\n", cube.Algorithm(), time.Since(start).Round(time.Millisecond))
	return cube, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccserve:", err)
	os.Exit(1)
}
