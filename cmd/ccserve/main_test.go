package main

// Tests for the command-line wiring that remains in cmd/ccserve after the
// serving layer moved to internal/serve: cube construction from the data
// source flags and shard-spec parsing.

import (
	"testing"
)

// TestBuildCubeValidation pins source-selection errors.
func TestBuildCubeValidation(t *testing.T) {
	if _, err := buildCube("", "", "", "", "auto", 1, 1, 0, 0); err == nil {
		t.Fatal("no source must fail")
	}
	if _, err := buildCube("x", "y", "", "", "auto", 1, 1, 0, 0); err == nil {
		t.Fatal("two sources must fail")
	}
	if _, err := buildCube("", "", "T=50,D=3,C=4", "", "zigzag", 1, 1, 0, 0); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	cube, err := buildCube("", "", "T=50,D=3,C=4,seed=2", "", "auto", 1, 1, 0, 0)
	if err != nil || cube.NumDims() != 3 {
		t.Fatalf("synth build: %v", err)
	}
	if cube.NumCells() <= 0 {
		t.Fatal("empty cube")
	}
}

// TestParseShardSpec pins the -shard flag grammar: "index/count" with
// 0 <= index < count, empty meaning "the whole relation".
func TestParseShardSpec(t *testing.T) {
	if idx, cnt, err := parseShardSpec(""); err != nil || idx != 0 || cnt != 0 {
		t.Fatalf(`parseShardSpec("") = (%d, %d, %v)`, idx, cnt, err)
	}
	if idx, cnt, err := parseShardSpec("1/4"); err != nil || idx != 1 || cnt != 4 {
		t.Fatalf(`parseShardSpec("1/4") = (%d, %d, %v)`, idx, cnt, err)
	}
	for _, bad := range []string{"4/4", "-1/4", "2", "a/b", "1/0", "1/4/2", "/4", "1/"} {
		if _, _, err := parseShardSpec(bad); err == nil {
			t.Fatalf("parseShardSpec(%q) must fail", bad)
		}
	}
}

// TestBuildCubeSharded checks the worker path: each shard serves a disjoint
// dim0-owned subset and the shard counts sum to the whole relation.
func TestBuildCubeSharded(t *testing.T) {
	whole, err := buildCube("", "", "T=200,D=3,C=6,seed=3", "", "auto", 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 2; i++ {
		shard, err := buildCube("", "", "T=200,D=3,C=6,seed=3", "", "auto", 1, 1, i, 2)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		n, ok := shard.Query([]int32{-1, -1, -1})
		if !ok {
			t.Fatalf("shard %d: no root cell", i)
		}
		total += n
	}
	want, _ := whole.Query([]int32{-1, -1, -1})
	if total != want {
		t.Fatalf("shard tuple counts sum to %d, want %d", total, want)
	}
}
