package main

// End-to-end integration test of the distributed deployment: two real
// ccserve shard-worker processes and one router process on loopback, built
// from this tree and exercised over actual TCP. Gated behind
// CCSERVE_INTEGRATION=1 because it builds a binary and binds ports — CI
// runs it in a dedicated job; locally:
//
//	CCSERVE_INTEGRATION=1 go test -race ./cmd/ccserve/ -run TestDistributedServing -v

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const integrationSynth = "T=400,D=3,C=8,seed=9"

// freeAddr reserves a loopback port and releases it for the child process.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startServe launches one ccserve process and waits for /healthz.
func startServe(t *testing.T, bin, addr string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server on %s never became healthy", addr)
	return nil
}

func fetch(t *testing.T, addr, method, path, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, "http://"+addr+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestDistributedServing boots a 2-shard + router topology from real
// processes and checks the router answers match a single unsharded server
// byte-for-byte on reads, and that routed mutations land on the right
// workers.
func TestDistributedServing(t *testing.T) {
	if os.Getenv("CCSERVE_INTEGRATION") == "" {
		t.Skip("set CCSERVE_INTEGRATION=1 to run the multi-process integration test")
	}

	bin := filepath.Join(t.TempDir(), "ccserve")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Stdout = os.Stderr
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building ccserve: %v", err)
	}

	// One unsharded reference server, two shard workers, one router.
	singleAddr := freeAddr(t)
	shard0Addr := freeAddr(t)
	shard1Addr := freeAddr(t)
	routerAddr := freeAddr(t)
	startServe(t, bin, singleAddr, "-synth", integrationSynth, "-minsup", "1")
	startServe(t, bin, shard0Addr, "-synth", integrationSynth, "-minsup", "1", "-shard", "0/2")
	startServe(t, bin, shard1Addr, "-synth", integrationSynth, "-minsup", "1", "-shard", "1/2")
	startServe(t, bin, routerAddr, "-router", shard0Addr+","+shard1Addr)

	// The workers partition the relation: their tuple counts sum to the
	// whole, and the router's metadata reports the merged topology.
	var meta struct {
		SourceRows int64 `json:"source_rows"`
		Shards     int   `json:"shards"`
	}
	code, body := fetch(t, routerAddr, http.MethodGet, "/v1/cube", "")
	if code != http.StatusOK {
		t.Fatalf("router cube: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.SourceRows != 400 || meta.Shards != 2 {
		t.Fatalf("router meta = %+v, want 400 rows over 2 shards", meta)
	}

	// Reads through the router are byte-identical to the single server:
	// routed (bound dimension 0) and scattered (wildcard) alike.
	compare := func(method, path, reqBody string) {
		t.Helper()
		sc, sb := fetch(t, singleAddr, method, path, reqBody)
		rc, rb := fetch(t, routerAddr, method, path, reqBody)
		if sc != rc || !bytes.Equal(sb, rb) {
			t.Fatalf("divergence on %s %s %s:\n single: %d %s\n routed: %d %s",
				method, path, reqBody, sc, sb, rc, rb)
		}
	}
	for v := 0; v < 8; v++ {
		compare(http.MethodGet, fmt.Sprintf("/v1/query?cell=%d,*,*", v), "")
		compare(http.MethodGet, fmt.Sprintf("/v1/query?cell=*,%d,*", v), "")
		compare(http.MethodGet, fmt.Sprintf("/v1/slice?cell=%d,*,*", v), "")
	}
	compare(http.MethodGet, "/v1/query?cell=*,*,*", "")
	compare(http.MethodGet, "/v1/aggregate?group_by=dim0", "")
	compare(http.MethodGet, "/v1/aggregate?group_by=dim1,dim2&top_k=5", "")
	compare(http.MethodGet, "/v1/aggregate?where=0..3,*,*&group_by=dim0", "")

	// A routed mutation with inline refresh: the rows split across both
	// workers (codes 0 and 1 hash to different owners at n=2), and the
	// router's merged counts move with the single server's.
	mutation := `{"values":[[0,0,0],[1,0,0]],"refresh":true}`
	if sc, sb := fetch(t, singleAddr, http.MethodPost, "/v1/append", mutation); sc != http.StatusOK {
		t.Fatalf("single append: %d %s", sc, sb)
	}
	if rc, rb := fetch(t, routerAddr, http.MethodPost, "/v1/append", mutation); rc != http.StatusOK {
		t.Fatalf("routed append: %d %s", rc, rb)
	}
	compare(http.MethodGet, "/v1/query?cell=0,0,0", "")
	compare(http.MethodGet, "/v1/query?cell=1,0,0", "")
	compare(http.MethodGet, "/v1/query?cell=*,0,0", "")
	compare(http.MethodGet, "/v1/query?cell=*,*,*", "")

	// The router refuses what it cannot answer correctly: wildcard-dim0
	// slices (per-shard closed sets don't merge) — with guidance.
	rc, rb := fetch(t, routerAddr, http.MethodGet, "/v1/slice?cell=*,0,*", "")
	if rc != http.StatusBadRequest || !bytes.Contains(rb, []byte("aggregate")) {
		t.Fatalf("router wildcard slice: %d %s, want 400 pointing at /v1/aggregate", rc, rb)
	}

	// Worker stats ride along under the router's, each entry naming its
	// worker and reporting reachability.
	var stats struct {
		Shards []struct {
			Worker    string `json:"worker"`
			Reachable *bool  `json:"reachable"`
		} `json:"shards"`
	}
	code, body = fetch(t, routerAddr, http.MethodGet, "/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("router stats: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("router stats carries %d shard entries, want 2", len(stats.Shards))
	}
	for i, sh := range stats.Shards {
		if sh.Worker == "" || sh.Reachable == nil || !*sh.Reachable {
			t.Fatalf("stats shard %d = %+v, want a named reachable worker", i, sh)
		}
	}

	// /v1/health answers on every role with the right shape.
	var health struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Shard   string `json:"shard"`
		Workers int    `json:"workers"`
	}
	for _, tc := range []struct {
		addr, role, shard string
		workers           int
	}{
		{singleAddr, "single", "", 0},
		{shard0Addr, "shard", "0/2", 0},
		{shard1Addr, "shard", "1/2", 0},
		{routerAddr, "router", "", 2},
	} {
		code, body := fetch(t, tc.addr, http.MethodGet, "/v1/health", "")
		if code != http.StatusOK {
			t.Fatalf("%s health: %d %s", tc.addr, code, body)
		}
		health = struct {
			Status  string `json:"status"`
			Role    string `json:"role"`
			Shard   string `json:"shard"`
			Workers int    `json:"workers"`
		}{} // omitempty fields would otherwise survive from the previous node
		if err := json.Unmarshal(body, &health); err != nil {
			t.Fatal(err)
		}
		if health.Status != "ok" || health.Role != tc.role || health.Shard != tc.shard || health.Workers != tc.workers {
			t.Fatalf("%s health = %+v, want role=%s shard=%q workers=%d",
				tc.addr, health, tc.role, tc.shard, tc.workers)
		}
	}

	// Every node serves a Prometheus scrape, and the topology's counters are
	// consistent: only this router queries the workers, so the router's
	// worker-call count for the query endpoint equals the sum of the workers'
	// observed query requests.
	scrape := func(addr string) string {
		code, body := fetch(t, addr, http.MethodGet, "/metrics", "")
		if code != http.StatusOK {
			t.Fatalf("%s metrics: %d %s", addr, code, body)
		}
		return string(body)
	}
	series := func(text, name string) float64 {
		idx := strings.Index(text, "\n"+name+" ")
		if idx < 0 {
			t.Fatalf("series %s missing from scrape", name)
		}
		line := text[idx+1:]
		line = line[:strings.IndexByte(line, '\n')]
		var v float64
		if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
			t.Fatalf("series %s: %v", name, err)
		}
		return v
	}
	routerText := scrape(routerAddr)
	for _, name := range []string{
		`ccubing_http_request_seconds_count{endpoint="query"}`,
		"ccubing_router_scatter_seconds_count",
		"ccubing_router_merge_seconds_count",
		"ccubing_uptime_seconds",
	} {
		if v := series(routerText, name); v <= 0 {
			t.Fatalf("router %s = %g, want > 0", name, v)
		}
	}
	workerQueries := 0.0
	for _, addr := range []string{shard0Addr, shard1Addr} {
		text := scrape(addr)
		for _, name := range []string{
			"ccubing_generation",
			"ccubing_cells",
			"ccubing_probe_ops_total",
		} {
			series(text, name) // fatal if absent
		}
		workerQueries += series(text, `ccubing_http_request_seconds_count{endpoint="query"}`)
	}
	routerCalls := series(routerText, `ccubing_router_worker_calls_total{endpoint="query"}`)
	if routerCalls <= 0 || routerCalls != workerQueries {
		t.Fatalf("router issued %g worker query calls but workers observed %g query requests",
			routerCalls, workerQueries)
	}
}
