package ccubing

import (
	"testing"

	"ccubing/internal/refcube"
)

// TestCubeIndexLossless: the index over the closed cube must answer the
// exact count of every iceberg cell, closed or not — the lossless property
// closed cubes exist for.
func TestCubeIndexLossless(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 200, D: 4, C: 4, Skew: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []int64{1, 3} {
		cells, _ := collect(t, ds, Options{MinSup: minsup, Closed: true, Algorithm: AlgStarArray})
		ix, err := NewCubeIndex(ds, cells)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Nodes() == 0 {
			t.Fatal("empty index")
		}
		ice, err := refcube.Iceberg(ds.t, minsup)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(cells)) >= int64(len(ice)) && minsup == 1 {
			t.Fatalf("closed cube not smaller: %d vs %d", len(cells), len(ice))
		}
		for _, cell := range ice {
			got, ok := ix.Query(cell.Values)
			if !ok || got != cell.Count {
				t.Fatalf("min_sup %d: Query(%v) = %d,%v want %d",
					minsup, cell.Values, got, ok, cell.Count)
			}
		}
	}
}

func TestCubeIndexMissingCell(t *testing.T) {
	ds, err := NewDatasetFromValues(nil, [][]int32{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cells, _ := collect(t, ds, Options{MinSup: 2, Closed: true, Algorithm: AlgStar})
	ix, err := NewCubeIndex(ds, cells)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) has count 1 < min_sup: not answerable.
	if _, ok := ix.Query([]int32{0, 0}); ok {
		t.Fatal("sub-threshold cell must answer false")
	}
	// The apex is answerable.
	if c, ok := ix.Query([]int32{Star, Star}); !ok || c != 2 {
		t.Fatalf("apex = %d,%v", c, ok)
	}
}

func TestCubeIndexErrors(t *testing.T) {
	if _, err := NewCubeIndex(nil, nil); err == nil {
		t.Fatal("nil dataset must error")
	}
	ds, err := NewDatasetFromValues(nil, [][]int32{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCubeIndex(ds, []Cell{{Values: []int32{1}}}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}
