package ccubing

// Seeded randomized cross-engine equivalence: beyond parallel_test.go's two
// fixed datasets, this sweeps engines × dimension orders × worker counts ×
// min_sup × closed/iceberg × measures over small random relations, asserting
// every configuration emits the identical sorted cell set (and, for native-
// measure engines, measure values matching the AttachMeasure post-pass).

import (
	"fmt"
	"math/rand"
	"testing"

	"ccubing/internal/core"
)

// randomEquivalenceDataset draws a small relation with random shape.
func randomEquivalenceDataset(t *testing.T, rng *rand.Rand) *Dataset {
	t.Helper()
	nd := 3 + rng.Intn(3)
	cards := make([]int, nd)
	for d := range cards {
		cards[d] = 2 + rng.Intn(8)
	}
	cfg := SyntheticConfig{
		T:     150 + rng.Intn(400),
		Cards: cards,
		Skew:  rng.Float64() * 1.5,
		Seed:  rng.Int63(),
	}
	if rng.Intn(2) == 0 {
		cfg.Dependence = 1 + rng.Float64()*2
	}
	ds, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCrossEngineEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	closedEngines := []Algorithm{AlgMM, AlgStar, AlgStarArray, AlgQCDFS, AlgQCTree, AlgOBBUC}
	icebergEngines := []Algorithm{AlgMM, AlgStar, AlgStarArray, AlgBUC}
	orders := []OrderStrategy{OrderOriginal, OrderByEntropy}
	workerCounts := []int{0, 3}

	for trial := 0; trial < 3; trial++ {
		ds := randomEquivalenceDataset(t, rng)
		minsups := []int64{1, int64(2 + rng.Intn(4))}
		for _, closed := range []bool{true, false} {
			engines := icebergEngines
			reference := AlgBUC
			if closed {
				engines = closedEngines
				reference = AlgQCDFS
			}
			for _, minsup := range minsups {
				want, _, err := ComputeCollect(ds, Options{MinSup: minsup, Closed: closed, Algorithm: reference})
				if err != nil {
					t.Fatal(err)
				}
				for _, alg := range engines {
					for _, ord := range orders {
						for _, w := range workerCounts {
							opt := Options{
								MinSup: minsup, Closed: closed,
								Algorithm: alg, Order: ord, Workers: w,
							}
							name := fmt.Sprintf("trial%d/%v/closed=%v/minsup=%d/%v/workers=%d",
								trial, alg, closed, minsup, ord, w)
							got, _, err := ComputeCollect(ds, opt)
							if err != nil {
								t.Fatalf("%s: %v", name, err)
							}
							if len(got) != len(want) {
								t.Fatalf("%s: %d cells, reference %v has %d",
									name, len(got), reference, len(want))
							}
							got, want = sortedCells(got), sortedCells(want)
							for i := range got {
								if got[i].Count != want[i].Count {
									t.Fatalf("%s: cell %d count %d, want %d (%v)",
										name, i, got[i].Count, want[i].Count, want[i].Values)
								}
								for d := range got[i].Values {
									if got[i].Values[d] != want[i].Values[d] {
										t.Fatalf("%s: cell %d values %v, want %v",
											name, i, got[i].Values, want[i].Values)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestCrossEngineMeasuresRandomized checks the measure dimension of the
// sweep: native aggregation (BUC iceberg, QC-DFS closed) must agree with the
// AttachMeasure post-pass every other engine relies on, across random
// relations and measure kinds.
func TestCrossEngineMeasuresRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(774))
	kinds := []MeasureKind{MeasureSum, MeasureMin, MeasureMax, MeasureAvg}
	for trial := 0; trial < 3; trial++ {
		ds := randomEquivalenceDataset(t, rng)
		aux := make([]float64, ds.NumTuples())
		for i := range aux {
			aux[i] = float64(rng.Intn(64)) / 4
		}
		if err := ds.SetMeasure(aux); err != nil {
			t.Fatal(err)
		}
		kind := kinds[rng.Intn(len(kinds))]
		for _, mode := range []struct {
			alg    Algorithm
			closed bool
		}{{AlgBUC, false}, {AlgQCDFS, true}} {
			opt := Options{MinSup: 2, Closed: mode.closed, Algorithm: mode.alg, Measure: kind}
			native, _, err := ComputeCollect(ds, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Measure = MeasureNone
			post, _, err := ComputeCollect(ds, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := AttachMeasure(ds, post, kind); err != nil {
				t.Fatal(err)
			}
			// AttachMeasure fills stored aggregates (avg as the running sum);
			// Compute presents at egress, so present the oracle the same way.
			for i := range post {
				post[i].Aux = core.Present(kind, post[i].Aux, post[i].Count)
			}
			native, post = sortedCells(native), sortedCells(post)
			if len(native) != len(post) {
				t.Fatalf("trial %d %v: %d native cells vs %d post cells", trial, mode.alg, len(native), len(post))
			}
			for i := range native {
				if native[i].Count != post[i].Count || native[i].Aux != post[i].Aux {
					t.Fatalf("trial %d %v %v: cell %v native (%d,%g), post-pass (%d,%g)",
						trial, mode.alg, kind, native[i].Values,
						native[i].Count, native[i].Aux, post[i].Count, post[i].Aux)
				}
			}
		}
	}
}
