package ccubing

import (
	"fmt"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/partition"
	"ccubing/internal/rules"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// AttachMeasure computes a complex measure (paper Sec. 6.1) for
// already-collected cells, filling each cell's Aux in place with the stored
// aggregate: the sum for MeasureSum and MeasureAvg (avg is the algebraic pair
// (Aux, Count); divide to present), the extremum for MeasureMin/MeasureMax.
// This matches what native-measure engines emit, so attached and native
// aggregates are bit-identical. Lemma 1 guarantees the closed cube on count
// loses no closed cells of any measure, so attaching measures after closed
// cubing is sound. All cells aggregate in one scan per distinct
// fixed-dimension pattern (cuboid) rather than one scan per cell: cost is
// O(T × cuboids + cells), so even full closed-cube outputs are practical.
func AttachMeasure(ds *Dataset, cells []Cell, kind MeasureKind) error {
	if kind == MeasureNone {
		return nil
	}
	if ds.t.Aux == nil {
		return fmt.Errorf("ccubing: dataset has no measure column; call SetMeasure first")
	}
	if len(cells) == 0 {
		return nil
	}
	t := ds.t

	// Group cells by their fixed-dimension pattern and index each group by
	// packed fixed values; a tuple then matches at most one cell per group.
	type cellGroup struct {
		dims  []int            // fixed dimensions of the pattern
		index map[string][]int // packed fixed values -> cell indices
	}
	groups := make(map[uint64]*cellGroup)
	var buf []byte
	for ci := range cells {
		var mask uint64
		for d, v := range cells[ci].Values {
			if v != Star {
				mask |= 1 << uint(d)
			}
		}
		g := groups[mask]
		if g == nil {
			g = &cellGroup{index: make(map[string][]int)}
			for d, v := range cells[ci].Values {
				if v != Star {
					g.dims = append(g.dims, d)
				}
			}
			groups[mask] = g
		}
		buf = buf[:0]
		for _, v := range cells[ci].Values {
			if v != Star {
				buf = core.AppendValue(buf, v)
			}
		}
		g.index[string(buf)] = append(g.index[string(buf)], ci)
	}

	aggs := make([]core.MeasureAgg, len(cells))
	for i := range aggs {
		aggs[i] = core.NewMeasureAgg(kind)
	}
	n := t.NumTuples()
	for _, g := range groups {
		for tid := 0; tid < n; tid++ {
			buf = buf[:0]
			for _, d := range g.dims {
				buf = core.AppendValue(buf, t.Cols[d][tid])
			}
			for _, ci := range g.index[string(buf)] {
				aggs[ci].Add(t.Aux[tid])
			}
		}
	}
	for ci := range cells {
		cells[ci].Aux = aggs[ci].Stored()
	}
	return nil
}

// Rule is a closed rule (paper Sec. 6.2): cells fixing the condition values
// necessarily carry the target values.
type Rule struct {
	CondDims []int
	CondVals []int32
	TargDims []int
	TargVals []int32
	Support  int64
}

// String renders the rule with the dataset-independent d<i>=v notation.
func (r Rule) String() string {
	return rules.Rule{
		CondDims: r.CondDims, CondVals: r.CondVals,
		TargDims: r.TargDims, TargVals: r.TargVals,
		Support: r.Support,
	}.String()
}

// MineRules derives closed rules from closed cells (typically the output of
// a closed-cube computation on this dataset). The result is verified against
// the relation before returning.
func MineRules(ds *Dataset, cells []Cell) ([]Rule, error) {
	ccells := make([]core.Cell, len(cells))
	for i, c := range cells {
		ccells[i] = core.Cell{Values: c.Values, Count: c.Count}
	}
	mined := rules.Mine(ds.t, ccells)
	if err := rules.Verify(ds.t, mined); err != nil {
		return nil, err
	}
	out := make([]Rule, len(mined))
	for i, r := range mined {
		out[i] = Rule{
			CondDims: r.CondDims, CondVals: r.CondVals,
			TargDims: r.TargDims, TargVals: r.TargVals,
			Support: r.Support,
		}
	}
	return out, nil
}

// PartitionOptions configures ComputePartitioned. The zero value picks the
// partitioning dimension automatically.
type PartitionOptions struct {
	// Dim is the 0-based partitioning dimension (paper Sec. 6.3 partitions on
	// the values of one dimension), honored only when ExplicitDim is set and
	// validated against the dataset's dimensionality. Without ExplicitDim the
	// highest-cardinality dimension is picked automatically; a positive Dim
	// without ExplicitDim is rejected (it would silently be ignored), while
	// the historical auto-pick sentinel Dim: -1 remains accepted.
	Dim int
	// ExplicitDim makes Dim authoritative. The flag exists so that the zero
	// value of PartitionOptions auto-picks instead of silently partitioning
	// on dimension 0.
	ExplicitDim bool
	// Buckets bounds the number of partition files (default 16).
	Buckets int
	// TempDir receives partition files (default: the system temp dir).
	TempDir string
}

// resolveDim validates popt against the dataset and returns the partitioning
// dimension.
func (popt PartitionOptions) resolveDim(ds *Dataset) (int, error) {
	nd := ds.t.NumDims()
	if popt.ExplicitDim {
		if popt.Dim < 0 || popt.Dim >= nd {
			return 0, fmt.Errorf("ccubing: partition dimension %d out of range [0,%d)", popt.Dim, nd)
		}
		return popt.Dim, nil
	}
	if popt.Dim > 0 {
		return 0, fmt.Errorf("ccubing: PartitionOptions.Dim %d set without ExplicitDim; set ExplicitDim, or leave Dim zero to auto-pick", popt.Dim)
	}
	dim := 0
	for d := 1; d < nd; d++ {
		if ds.t.Cards[d] > ds.t.Cards[dim] {
			dim = d
		}
	}
	return dim, nil
}

// ComputePartitioned is Compute for relations whose cubing working set
// exceeds memory (paper Sec. 6.3): the relation is spilled into partition
// files on one dimension, partitions are cubed one at a time, and the cells
// collapsing the partition dimension come from one final pass with that
// dimension moved last. The emitted cell set equals Compute's, including
// native measures: partition files carry the aux column, so per-cell
// aggregates survive the spill (cells fixing the partition dimension keep all
// their tuples inside one partition; the final pass sees every tuple). With
// Options.Workers > 1 up to that many partitions are loaded and cubed
// concurrently, trading the one-partition memory bound for a Workers-
// partition bound.
func ComputePartitioned(ds *Dataset, opt Options, popt PartitionOptions, visit func(Cell)) (Stats, error) {
	opt = opt.withDefaults()
	if ds == nil || ds.t == nil {
		return Stats{}, fmt.Errorf("ccubing: nil dataset")
	}
	alg := opt.Algorithm
	if alg == AlgAuto {
		alg = Advise(ds, opt.MinSup, opt.Closed)
	}
	st := Stats{Algorithm: alg}
	eng, ecfg, err := resolveEngine(ds, opt, alg)
	if err != nil {
		return st, err
	}
	dim, err := popt.resolveDim(ds)
	if err != nil {
		return st, err
	}
	out := newVisitSink(visit, identityPerm(ds.t.NumDims()), ds.t.NumDims(), opt, &st)
	run := func(t *table.Table, s sink.Sink) error { return eng.Run(t, ecfg, s) }
	start := time.Now()
	err = partition.Run(ds.t, partition.Config{
		Dim:     dim,
		Buckets: popt.Buckets,
		TempDir: popt.TempDir,
		Workers: resolveWorkers(opt.Workers),
	}, run, out)
	st.Elapsed = time.Since(start)
	return st, err
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
