package ccubing

import (
	"fmt"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/partition"
	"ccubing/internal/rules"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// AttachMeasure computes a complex measure (paper Sec. 6.1) for
// already-collected cells by scanning the relation once per cell, filling
// each cell's Aux in place. Lemma 1 guarantees the closed cube on count
// loses no closed cells of any measure, so attaching measures after closed
// cubing is sound. Cost is O(cells × T × D); intended for analysis-sized
// outputs, not full cubes.
func AttachMeasure(ds *Dataset, cells []Cell, kind MeasureKind) error {
	if kind == MeasureNone {
		return nil
	}
	if ds.t.Aux == nil {
		return fmt.Errorf("ccubing: dataset has no measure column; call SetMeasure first")
	}
	t := ds.t
	n := t.NumTuples()
	for ci := range cells {
		agg := core.NewMeasureAgg(kind)
		vals := cells[ci].Values
		for tid := 0; tid < n; tid++ {
			ok := true
			for d, v := range vals {
				if v != Star && t.Cols[d][tid] != v {
					ok = false
					break
				}
			}
			if ok {
				agg.Add(t.Aux[tid])
			}
		}
		cells[ci].Aux = agg.Value()
	}
	return nil
}

// Rule is a closed rule (paper Sec. 6.2): cells fixing the condition values
// necessarily carry the target values.
type Rule struct {
	CondDims []int
	CondVals []int32
	TargDims []int
	TargVals []int32
	Support  int64
}

// String renders the rule with the dataset-independent d<i>=v notation.
func (r Rule) String() string {
	return rules.Rule{
		CondDims: r.CondDims, CondVals: r.CondVals,
		TargDims: r.TargDims, TargVals: r.TargVals,
		Support: r.Support,
	}.String()
}

// MineRules derives closed rules from closed cells (typically the output of
// a closed-cube computation on this dataset). The result is verified against
// the relation before returning.
func MineRules(ds *Dataset, cells []Cell) ([]Rule, error) {
	ccells := make([]core.Cell, len(cells))
	for i, c := range cells {
		ccells[i] = core.Cell{Values: c.Values, Count: c.Count}
	}
	mined := rules.Mine(ds.t, ccells)
	if err := rules.Verify(ds.t, mined); err != nil {
		return nil, err
	}
	out := make([]Rule, len(mined))
	for i, r := range mined {
		out[i] = Rule{
			CondDims: r.CondDims, CondVals: r.CondVals,
			TargDims: r.TargDims, TargVals: r.TargVals,
			Support: r.Support,
		}
	}
	return out, nil
}

// PartitionOptions configures ComputePartitioned.
type PartitionOptions struct {
	// Dim is the partitioning dimension (paper Sec. 6.3 partitions on the
	// values of one dimension). Defaults to the dimension with the highest
	// cardinality when negative.
	Dim int
	// Buckets bounds the number of partition files (default 16).
	Buckets int
	// TempDir receives partition files (default: the system temp dir).
	TempDir string
}

// ComputePartitioned is Compute for relations whose cubing working set
// exceeds memory (paper Sec. 6.3): the relation is spilled into partition
// files on one dimension, partitions are cubed one at a time, and the cells
// collapsing the partition dimension come from one final pass with that
// dimension moved last. The emitted cell set equals Compute's.
func ComputePartitioned(ds *Dataset, opt Options, popt PartitionOptions, visit func(Cell)) (Stats, error) {
	opt = opt.withDefaults()
	if ds == nil || ds.t == nil {
		return Stats{}, fmt.Errorf("ccubing: nil dataset")
	}
	alg := opt.Algorithm
	if alg == AlgAuto {
		alg = Advise(ds, opt.MinSup, opt.Closed)
	}
	st := Stats{Algorithm: alg}
	if err := checkOptions(ds, opt, alg); err != nil {
		return st, err
	}
	if opt.Measure != MeasureNone {
		return st, fmt.Errorf("ccubing: partitioned runs do not support native measures; use AttachMeasure")
	}
	dim := popt.Dim
	if dim < 0 {
		dim = 0
		for d := 1; d < ds.t.NumDims(); d++ {
			if ds.t.Cards[d] > ds.t.Cards[dim] {
				dim = d
			}
		}
	}
	out := &visitSink{
		visit:   visit,
		perm:    identityPerm(ds.t.NumDims()),
		scratch: make([]core.Value, ds.t.NumDims()),
		stats:   &st,
	}
	engine := func(t *table.Table, s sink.Sink) error { return dispatch(alg, t, opt, s) }
	start := time.Now()
	err := partition.Run(ds.t, partition.Config{Dim: dim, Buckets: popt.Buckets, TempDir: popt.TempDir}, engine, out)
	st.Elapsed = time.Since(start)
	return st, err
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
