package ccubing

import (
	"strings"
	"testing"
)

func TestAttachMeasure(t *testing.T) {
	ds, err := NewDatasetFromValues([]string{"x", "y"}, [][]int32{{0, 0}, {0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	cells, _ := collect(t, ds, Options{MinSup: 1, Closed: true, Algorithm: AlgStar})
	if err := AttachMeasure(ds, cells, MeasureSum); err == nil {
		t.Fatal("AttachMeasure without a measure column must error")
	}
	if err := ds.SetMeasure([]float64{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if err := AttachMeasure(ds, cells, MeasureSum); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Values[0] == Star && c.Values[1] == Star && c.Aux != 7 {
			t.Fatalf("apex sum = %v", c.Aux)
		}
		if c.Values[0] == 0 && c.Values[1] == Star && c.Aux != 3 {
			t.Fatalf("(0,*) sum = %v", c.Aux)
		}
	}
	// MeasureNone is a no-op.
	if err := AttachMeasure(ds, cells, MeasureNone); err != nil {
		t.Fatal(err)
	}
}

// TestAttachMeasureBatched cross-checks the single-scan implementation
// against a naive per-cell rescan on a full closed cube, including duplicate
// cells (which must each receive the same value).
func TestAttachMeasureBatched(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 600, D: 4, C: 7, Skew: 1.2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64((i*31)%17) - 5
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}
	cells, _ := collect(t, ds, Options{MinSup: 1, Closed: true, Algorithm: AlgMM})
	cells = append(cells, cells[0], cells[len(cells)-1]) // duplicates
	for _, kind := range []MeasureKind{MeasureSum, MeasureMin, MeasureMax, MeasureAvg} {
		if err := AttachMeasure(ds, cells, kind); err != nil {
			t.Fatal(err)
		}
		tb := ds.Table()
		for ci, c := range cells {
			agg := newTestAgg(kind)
			for tid := 0; tid < tb.NumTuples(); tid++ {
				match := true
				for d, v := range c.Values {
					if v != Star && tb.Cols[d][tid] != v {
						match = false
						break
					}
				}
				if match {
					agg.add(tb.Aux[tid])
				}
			}
			if got, want := c.Aux, agg.value(); got != want {
				t.Fatalf("%v cell %d (%v): aux %v, want %v", kind, ci, c.Values, got, want)
			}
		}
	}
}

// newTestAgg is an independent reference aggregator for the cross-check.
type testAgg struct {
	kind     MeasureKind
	sum      float64
	min, max float64
	n        int64
}

func newTestAgg(k MeasureKind) *testAgg {
	return &testAgg{kind: k, min: 1e300, max: -1e300}
}

func (a *testAgg) add(x float64) {
	a.sum += x
	a.n++
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// value returns the stored-aggregate form AttachMeasure fills: the running
// sum for avg (the algebraic pair's numerator), extrema/sum otherwise.
func (a *testAgg) value() float64 {
	switch a.kind {
	case MeasureMin:
		return a.min
	case MeasureMax:
		return a.max
	default:
		return a.sum
	}
}

func TestMineRulesEndToEnd(t *testing.T) {
	// Strongly dependent dataset: plant dependence and mine it back.
	ds, err := Synthetic(SyntheticConfig{T: 400, D: 4, C: 6, Skew: 0.5, Dependence: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cells, _ := collect(t, ds, Options{MinSup: 4, Closed: true, Algorithm: AlgStarArray})
	rs, err := MineRules(ds, cells)
	if err != nil {
		t.Fatalf("MineRules: %v", err)
	}
	if len(rs) == 0 {
		t.Fatal("expected rules on dependent data")
	}
	if len(rs) >= len(cells) {
		t.Fatalf("%d rules for %d cells: expected compression", len(rs), len(cells))
	}
	if rs[0].String() == "" {
		t.Fatal("empty rule rendering")
	}
}

func TestComputePartitionedMatchesCompute(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 600, D: 4, C: 8, Skew: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgStarArray, AlgMM} {
		direct, _ := collect(t, ds, Options{MinSup: 2, Closed: true, Algorithm: alg})
		var parted []Cell
		st, err := ComputePartitioned(ds,
			Options{MinSup: 2, Closed: true, Algorithm: alg},
			PartitionOptions{Dim: -1, Buckets: 4, TempDir: t.TempDir()},
			func(c Cell) {
				vals := make([]int32, len(c.Values))
				copy(vals, c.Values)
				parted = append(parted, Cell{Values: vals, Count: c.Count})
			})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !sameCells(direct, parted) {
			t.Fatalf("%v: partitioned output differs (%d vs %d cells)",
				alg, len(parted), len(direct))
		}
		if st.Cells != int64(len(parted)) {
			t.Fatalf("stats cells = %d, emitted %d", st.Cells, len(parted))
		}
	}
}

// TestPartitionOptionsValidation pins the PartitionOptions.Dim contract: the
// zero value auto-picks (no silent dimension-0 partitioning), out-of-range
// explicit dimensions fail with a ccubing:-prefixed error, and a positive Dim
// without ExplicitDim is rejected instead of silently ignored.
func TestPartitionOptionsValidation(t *testing.T) {
	// Cardinalities chosen so auto-pick selects dimension 2, not 0.
	ds, err := Synthetic(SyntheticConfig{T: 400, Cards: []int{3, 4, 9, 5}, Skew: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{MinSup: 2, Closed: true, Algorithm: AlgStarArray}
	run := func(popt PartitionOptions) ([]Cell, error) {
		var got []Cell
		popt.Buckets = 4
		popt.TempDir = t.TempDir()
		_, err := ComputePartitioned(ds, opt, popt, func(c Cell) {
			vals := make([]int32, len(c.Values))
			copy(vals, c.Values)
			got = append(got, Cell{Values: vals, Count: c.Count})
		})
		return got, err
	}

	want, _ := collect(t, ds, opt)

	// Zero value and the historical -1 sentinel both auto-pick; explicit
	// selection of the same dimension agrees cell-for-cell.
	for _, popt := range []PartitionOptions{
		{},
		{Dim: -1},
		{Dim: 2, ExplicitDim: true},
		{Dim: 0, ExplicitDim: true},
	} {
		got, err := run(popt)
		if err != nil {
			t.Fatalf("%+v: %v", popt, err)
		}
		if !sameCells(got, want) {
			t.Fatalf("%+v: partitioned output differs (%d vs %d cells)", popt, len(got), len(want))
		}
	}

	// Out-of-range explicit dimensions: clear facade-level errors.
	for _, popt := range []PartitionOptions{
		{Dim: 4, ExplicitDim: true},
		{Dim: -1, ExplicitDim: true},
	} {
		if _, err := run(popt); err == nil {
			t.Fatalf("%+v: want out-of-range error", popt)
		} else if !strings.HasPrefix(err.Error(), "ccubing:") {
			t.Fatalf("%+v: error %q lacks ccubing: prefix", popt, err)
		}
	}

	// Positive Dim without ExplicitDim: loud rejection, not silent auto-pick.
	if _, err := run(PartitionOptions{Dim: 2}); err == nil {
		t.Fatal("Dim without ExplicitDim: want error")
	} else if !strings.Contains(err.Error(), "ExplicitDim") {
		t.Fatalf("error %q should point at ExplicitDim", err)
	}
}

func TestComputePartitionedNativeMeasure(t *testing.T) {
	// Partition files carry the aux column, so native measures survive the
	// spill: the partitioned run must emit the exact cells (values, counts,
	// measures) of an in-memory run. Integer measure values keep float sums
	// order-independent.
	ds, err := Synthetic(SyntheticConfig{T: 300, D: 3, C: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64((i*13)%23 - 4)
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []MeasureKind{MeasureSum, MeasureMin, MeasureAvg} {
		opt := Options{MinSup: 2, Algorithm: AlgBUC, Measure: kind}
		want, _, err := ComputeCollect(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		var got []Cell
		_, err = ComputePartitioned(ds, opt, PartitionOptions{TempDir: t.TempDir()}, func(c Cell) {
			got = append(got, Cell{Values: append([]int32(nil), c.Values...), Count: c.Count, Aux: c.Aux})
		})
		if err != nil {
			t.Fatal(err)
		}
		want, got = sortedCells(want), sortedCells(got)
		if len(want) != len(got) {
			t.Fatalf("%v: partitioned emitted %d cells, in-memory %d", kind, len(got), len(want))
		}
		for i := range want {
			if want[i].Count != got[i].Count || want[i].Aux != got[i].Aux {
				t.Fatalf("%v cell %v: partitioned (%d,%g), in-memory (%d,%g)",
					kind, want[i].Values, got[i].Count, got[i].Aux, want[i].Count, want[i].Aux)
			}
		}
	}
}

func TestAdviseShape(t *testing.T) {
	// Low-cardinality dataset, closed, min_sup 1: the Star family must win.
	small, err := Synthetic(SyntheticConfig{T: 500, D: 4, C: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a := Advise(small, 1, true); a != AlgStar {
		t.Fatalf("low-card closed full cube: advised %v, want CC(Star)", a)
	}
	// High cardinality: StarArray within the family.
	big, err := Synthetic(SyntheticConfig{T: 2000, D: 3, C: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a := Advise(big, 1, true); a != AlgStarArray {
		t.Fatalf("high-card closed full cube: advised %v, want CC(StarArray)", a)
	}
	// Very high min_sup on independent data: iceberg pruning dominates -> MM.
	if a := Advise(small, 1024, true); a != AlgMM {
		t.Fatalf("high min_sup: advised %v, want CC(MM)", a)
	}
	// Iceberg (non-closed), high min_sup -> MM.
	if a := Advise(small, 64, false); a != AlgMM {
		t.Fatalf("iceberg high min_sup: advised %v, want CC(MM)", a)
	}
}
