package ccubing

// Regression tests for result aliasing: rows handed out by Lookup, Slice and
// Aggregate must be private copies — never views of the pooled probe scratch
// or of slices retained by the query cache. A caller that scribbles on its
// result must not be able to corrupt a later answer. cclint's poolescape
// analyzer guards the scratch side statically; these tests pin the cache
// side end to end, with caching on and off.

import (
	"reflect"
	"testing"
)

// aliasTestCube builds a small measure-bearing cube (cache on by default).
func aliasTestCube(t *testing.T) *Cube {
	t.Helper()
	ds, err := NewDatasetFromValues(nil, [][]int32{
		{0, 0, 0},
		{0, 1, 0},
		{1, 0, 1},
		{1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetMeasure([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func clobber(vals []int32) {
	for i := range vals {
		vals[i] = -99
	}
}

func TestLookupResultIsNotAliased(t *testing.T) {
	for _, cached := range []bool{true, false} {
		t.Run(map[bool]string{true: "cache", false: "nocache"}[cached], func(t *testing.T) {
			cube := aliasTestCube(t)
			if !cached {
				cube.SetQueryCache(0)
			}
			cell := []int32{0, Star, Star}
			first, ok := cube.Lookup(cell)
			if !ok {
				t.Fatal("Lookup missed a present cell")
			}
			want := append([]int32(nil), first.Values...)
			wantCount := first.Count

			clobber(first.Values)

			second, ok := cube.Lookup(cell)
			if !ok {
				t.Fatal("Lookup missed after caller mutation")
			}
			if !reflect.DeepEqual(second.Values, want) || second.Count != wantCount {
				t.Fatalf("mutating a returned row changed a later answer: got %v (count %d), want %v (count %d)",
					second.Values, second.Count, want, wantCount)
			}
		})
	}
}

func TestAggregateResultIsNotAliased(t *testing.T) {
	for _, cached := range []bool{true, false} {
		t.Run(map[bool]string{true: "cache", false: "nocache"}[cached], func(t *testing.T) {
			cube := aliasTestCube(t)
			if !cached {
				cube.SetQueryCache(0)
			}
			spec := make(QuerySpec, cube.NumDims()) // unconstrained
			opt := AggregateOptions{GroupBy: []string{"0"}, AuxAgg: MeasureSum}

			first, _, err := cube.Aggregate(spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(first) == 0 {
				t.Fatal("aggregate returned no rows")
			}
			want := make([]Cell, len(first))
			for i, r := range first {
				want[i] = Cell{Values: append([]int32(nil), r.Values...), Count: r.Count, Aux: r.Aux}
			}

			for i := range first {
				clobber(first[i].Values)
				first[i].Count = -1
			}

			// Re-run twice: the first re-run fills or hits the cache, the
			// second is a guaranteed hit when caching is on — both must be
			// untouched by the clobber above.
			for pass := 0; pass < 2; pass++ {
				again, _, err := cube.Aggregate(spec, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(again, want) {
					t.Fatalf("pass %d: mutating returned rows changed a later answer:\ngot  %+v\nwant %+v",
						pass, again, want)
				}
			}
		})
	}
}

// TestQueryAfterSliceMutation covers the pooled-scratch side dynamically: a
// Slice caller mutating visited cells must not perturb subsequent point
// queries that reuse the same pooled probe scratch.
func TestQueryAfterSliceMutation(t *testing.T) {
	cube := aliasTestCube(t)
	cube.SetQueryCache(0) // force every query through the store's scratch path

	cell := []int32{0, Star, Star}
	wantN, ok := cube.Query(cell)
	if !ok {
		t.Fatal("Query missed a present cell")
	}

	cube.Slice([]int32{Star, Star, Star}, func(c Cell) bool {
		clobber(c.Values)
		return true
	})

	if n, ok := cube.Query(cell); !ok || n != wantN {
		t.Fatalf("Query after Slice-mutation = %d, %v; want %d, true", n, ok, wantN)
	}
}
