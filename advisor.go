package ccubing

import (
	"math"

	"ccubing/internal/core"
	"ccubing/internal/stats"
	"ccubing/internal/table"
)

// Advise picks an engine for the dataset and threshold, encoding the
// paper's empirical findings (Secs. 5.1-5.3, Fig. 15):
//
//   - the Star family wins when closed pruning is significant (low min_sup,
//     or high data dependence, which raises the switch-point);
//   - C-Cubing(MM) wins when iceberg pruning dominates (high min_sup);
//   - within the Star family, low cardinality favors C-Cubing(Star)
//     (multiway aggregation) and high cardinality favors
//     C-Cubing(StarArray) (multiway traversal).
//
// For plain iceberg cubes the same min_sup reasoning applies without the
// dependence boost. The estimates are heuristics, not guarantees.
func Advise(ds *Dataset, minsup int64, closed bool) Algorithm {
	if minsup < 1 {
		minsup = 1
	}
	t := ds.t
	nd := t.NumDims()
	if nd == 0 {
		return AlgMM
	}

	// Effective cardinality decides Star vs StarArray.
	meanCard := 0.0
	for d := 0; d < nd; d++ {
		meanCard += float64(stats.DistinctValues(t, d))
	}
	meanCard /= float64(nd)
	starFamily := AlgStar
	if meanCard > 200 {
		starFamily = AlgStarArray
	}

	if !closed {
		// Iceberg only: MM-Cubing is the paper's adaptive default; tree
		// engines pay off at min_sup 1 on small-cardinality data.
		if minsup == 1 {
			return starFamily
		}
		return AlgMM
	}

	// Closed: the min_sup switch-point grows with data dependence (Fig. 15).
	// Map the [0,1] dependence estimate onto a switch-point between ~8
	// (independent data) and ~512 (strongly dependent data).
	dep := stats.DependenceEstimate(sampleForAdvice(ds))
	switchPoint := 8 * math.Pow(2, 6*clamp01(dep))
	if float64(minsup) < switchPoint {
		return starFamily
	}
	return AlgMM
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// adviceSample bounds the advisor's dependence-estimation cost on large
// relations.
const adviceSample = 20000

// sampleForAdvice returns a prefix view of the relation (shared columns).
func sampleForAdvice(ds *Dataset) *table.Table {
	t := ds.t
	if t.NumTuples() <= adviceSample {
		return t
	}
	s := &table.Table{
		Names: t.Names,
		Cards: t.Cards,
		Cols:  make(core.Columns, t.NumDims()),
	}
	for d := range t.Cols {
		s.Cols[d] = t.Cols[d][:adviceSample]
	}
	return s
}
