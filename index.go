package ccubing

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/qctree"
)

// CubeIndex answers point queries over a closed (iceberg) cube: the count of
// ANY cell — closed or not — is the count of its class's upper bound, so a
// closed cube plus this index is a lossless substitute for the full cube
// (above the iceberg threshold). Internally it is a QC-tree (Lakshmanan et
// al., SIGMOD'03) built from the closed cells.
type CubeIndex struct {
	tree *qctree.Tree
}

// NewCubeIndex indexes the closed cells of ds (typically the output of a
// Compute run with Closed: true).
func NewCubeIndex(ds *Dataset, closedCells []Cell) (*CubeIndex, error) {
	if ds == nil || ds.t == nil {
		return nil, fmt.Errorf("ccubing: nil dataset")
	}
	cc := make([]core.Cell, len(closedCells))
	for i, c := range closedCells {
		cc[i] = core.Cell{Values: c.Values, Count: c.Count}
	}
	tr, err := qctree.FromCells(ds.t.NumDims(), cc)
	if err != nil {
		return nil, err
	}
	return &CubeIndex{tree: tr}, nil
}

// Query returns the count of the cell with the given values (Star for
// aggregated dimensions). The second result is false when the cell is empty
// or fell below the iceberg threshold of the indexed cube.
func (ix *CubeIndex) Query(vals []int32) (int64, bool) {
	return ix.tree.Query(vals)
}

// Nodes reports the size of the index in tree nodes.
func (ix *CubeIndex) Nodes() int64 { return ix.tree.Nodes() }
