package ccubing

// Refresh benchmarks: partition-scoped incremental refresh versus the full
// rebuild it replaces, on a delta touching ≤10% of the leading-dimension
// partitions. scripts/bench.sh records both arms (with -benchmem) into
// BENCH_<date>.json, so the series tracks the refresh advantage over time.

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchRefreshSetup builds the base rows and a delta confined to `touched`
// of the leading dimension's `leadCard` partitions.
func benchRefreshSetup(b *testing.B, touched int) (base, delta [][]int32) {
	b.Helper()
	const (
		baseRows  = 40_000
		deltaRows = 2_000
		leadCard  = 64
	)
	cards := []int{leadCard, 12, 12, 12, 8}
	rng := rand.New(rand.NewSource(benchSeed()))
	rows := func(n int, lead func() int32) [][]int32 {
		out := make([][]int32, n)
		for i := range out {
			row := make([]int32, len(cards))
			row[0] = lead()
			for d := 1; d < len(cards); d++ {
				row[d] = int32(rng.Intn(cards[d]))
			}
			out[i] = row
		}
		return out
	}
	base = rows(baseRows, func() int32 { return int32(rng.Intn(leadCard)) })
	delta = rows(deltaRows, func() int32 { return int32(rng.Intn(touched)) })
	return base, delta
}

// BenchmarkRefresh measures one incremental refresh (append + partition-
// scoped recompute + merge + swap) against materializing the grown relation
// from scratch — the only alternative before the refresh subsystem. The
// delta touches 4 of 64 leading-dimension partitions (~6%), the regime the
// acceptance criterion names.
func BenchmarkRefresh(b *testing.B) {
	const minsup, workers = 4, 4
	base, delta := benchRefreshSetup(b, 4)
	baseDS, err := NewDatasetFromValues(nil, base)
	if err != nil {
		b.Fatal(err)
	}
	full := append(append([][]int32{}, base...), delta...)
	fullDS, err := NewDatasetFromValues(nil, full)
	if err != nil {
		b.Fatal(err)
	}

	b.Run(fmt.Sprintf("incremental/delta=%d", len(delta)), func(b *testing.B) {
		b.ReportAllocs()
		var last RefreshStats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cube, err := Materialize(baseDS, Options{MinSup: minsup, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cube.AppendValues(delta, nil); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if last, err = cube.Refresh(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(last.PartitionsRecomputed), "parts-recomputed/op")
		b.ReportMetric(float64(last.PartitionsTotal), "parts-total/op")
	})
	b.Run(fmt.Sprintf("rebuild/delta=%d", len(delta)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Materialize(fullDS, Options{MinSup: minsup, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRefreshDelete measures a delete-heavy refresh: tombstones for
// ~5% of the relation, confined to 4 of 64 leading-dimension partitions,
// against materializing the shrunken relation from scratch — the tombstone
// mirror of BenchmarkRefresh.
func BenchmarkRefreshDelete(b *testing.B) {
	const minsup, workers = 4, 4
	base, _ := benchRefreshSetup(b, 4)
	baseDS, err := NewDatasetFromValues(nil, base)
	if err != nil {
		b.Fatal(err)
	}
	// Tombstone every copy the delete batch names exactly once: pick rows of
	// the touched partitions, skipping duplicates already chosen.
	var dels [][]int32
	rest := make([][]int32, 0, len(base))
	for _, row := range base {
		if row[0] < 4 && len(dels) < 2_000 {
			dels = append(dels, row)
		} else {
			rest = append(rest, row)
		}
	}
	restDS, err := NewDatasetFromValues(nil, rest)
	if err != nil {
		b.Fatal(err)
	}

	b.Run(fmt.Sprintf("incremental/tombstones=%d", len(dels)), func(b *testing.B) {
		b.ReportAllocs()
		var last RefreshStats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cube, err := Materialize(baseDS, Options{MinSup: minsup, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cube.Delete(dels, nil); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if last, err = cube.Refresh(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(last.PartitionsRecomputed), "parts-recomputed/op")
		b.ReportMetric(float64(last.Deleted), "tombstones/op")
	})
	b.Run(fmt.Sprintf("rebuild/tombstones=%d", len(dels)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Materialize(restDS, Options{MinSup: minsup, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRefreshAppend measures raw delta-log ingestion (no refresh).
func BenchmarkRefreshAppend(b *testing.B) {
	base, delta := benchRefreshSetup(b, 4)
	baseDS, err := NewDatasetFromValues(nil, base)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := Materialize(baseDS, Options{MinSup: 4, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.AppendValues(delta, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(int64(len(delta) * len(delta[0]) * 4))
}
