package ccubing

// Live cube refresh: the facade over internal/refresh. A materialized cube
// accepts appended tuples, buffers them in a write-ahead delta log, and on
// trigger (row threshold, timer, or an explicit Refresh) folds them in by
// recomputing only the leading-dimension partitions the delta touched,
// merging with the untouched closed cells, and publishing the result with an
// atomic snapshot swap. The refreshed cube is exactly the cube a from-scratch
// Materialize of the grown relation would produce.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/refresh"
	"ccubing/internal/table"
)

// RefreshStats describes one refresh; see Cube.Refresh.
type RefreshStats = refresh.Stats

// RefreshMetrics is the cumulative refresh observability view; see
// Cube.RefreshMetrics.
type RefreshMetrics = refresh.Metrics

// Refreshable reports whether the cube carries its source relation and
// accepts appends: true for materialized cubes, false for snapshot-loaded
// ones (re-materialize from data to refresh those).
func (c *Cube) Refreshable() bool { return c.mgr != nil }

// Generation returns the published store generation: 0 at materialization,
// +1 per refresh that folded at least one row. Snapshot-loaded cubes report
// the generation recorded in the snapshot.
func (c *Cube) Generation() uint64 { return c.snap().Generation }

// SourceRows returns the number of relation tuples the published store was
// computed from (0 for version-1 snapshots, which predate the metadata).
func (c *Cube) SourceRows() int64 { return c.snap().Rows }

// Backlog returns the number of appended rows buffered in the delta log,
// awaiting a refresh. Snapshot-loaded cubes report 0.
func (c *Cube) Backlog() int {
	if c.mgr == nil {
		return 0
	}
	return c.mgr.Backlog()
}

// errNotRefreshable reports append/refresh calls on a static cube.
func (c *Cube) errNotRefreshable() error {
	return fmt.Errorf("ccubing: cube was loaded from a snapshot and carries no relation; materialize from data to append")
}

// Append buffers labeled rows for the next refresh. Unseen labels extend the
// dictionaries (published with the refresh; until then they are honest
// misses). aux carries one measure value per row iff the cube was
// materialized with a measure, nil otherwise. Returns the number of rows
// appended; if an AutoRefresh row threshold was crossed, the triggered
// refresh completes before Append returns.
func (c *Cube) Append(rows [][]string, aux []float64) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	n, _, err := c.mgr.AppendLabeled(rows, aux)
	return n, err
}

// AppendValues is Append by coded values. On labeled cubes every value must
// be a code the dictionaries already know; on coded cubes any non-negative
// value is accepted and grows the dimension's domain.
func (c *Cube) AppendValues(rows [][]int32, aux []float64) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	crows := make([][]core.Value, len(rows))
	for i, r := range rows {
		crows[i] = r
	}
	n, _, err := c.mgr.Append(crows, aux)
	return n, err
}

// Delete buffers tombstones for coded tuples: on the next refresh each row
// removes one matching occurrence from the relation. Matching is by the
// full tuple — and, on measure cubes, the measure value, so aux is required
// there exactly as in AppendValues (two tuples agreeing on every dimension
// but carrying different measures are distinct occurrences). A tombstone
// for a tuple not present in the relation plus the pending delta is
// rejected with the whole batch. Returns the number of tombstones buffered;
// a crossed AutoRefresh row threshold refreshes before Delete returns.
func (c *Cube) Delete(rows [][]int32, aux []float64) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	crows := make([][]core.Value, len(rows))
	for i, r := range rows {
		crows[i] = r
	}
	n, _, err := c.mgr.Delete(crows, aux)
	return n, err
}

// DeleteLabels is Delete by labels. Every label must already be in the
// dictionaries — an unknown label names a tuple that was never in the
// relation, reported as an error rather than coded.
func (c *Cube) DeleteLabels(rows [][]string, aux []float64) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	n, _, err := c.mgr.DeleteLabeled(rows, aux)
	return n, err
}

// Update buffers coded update pairs: on the next refresh each old row's
// occurrence is removed and the paired new row added, atomically (one
// crash-safe WAL record). Old rows follow the Delete contract, new rows the
// AppendValues contract. Returns the number of pairs buffered.
func (c *Cube) Update(oldRows, newRows [][]int32, oldAux, newAux []float64) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	co := make([][]core.Value, len(oldRows))
	for i, r := range oldRows {
		co[i] = r
	}
	cn := make([][]core.Value, len(newRows))
	for i, r := range newRows {
		cn[i] = r
	}
	n, _, err := c.mgr.Update(co, cn, oldAux, newAux)
	return n, err
}

// UpdateLabels is Update by labels: old rows must use known labels; new
// rows may introduce labels, published with the next refresh. A rejected
// batch leaves no phantom labels behind.
func (c *Cube) UpdateLabels(oldRows, newRows [][]string, oldAux, newAux []float64) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	n, _, err := c.mgr.UpdateLabeled(oldRows, newRows, oldAux, newAux)
	return n, err
}

// AppendNDJSON streams newline-delimited JSON rows into the delta log, one
// tuple per line:
//
//	["oslo","pen","2025"]             labels (labeled cubes)
//	[3,0,1]                           coded values (coded cubes)
//	{"row": [...], "aux": 12.5}       either form plus a measure value
//	{"values": [...], "aux": 12.5}    coded synonym
//
// Blank lines are skipped. Rows append in batches, so AutoRefresh row
// thresholds fire mid-stream. Returns the number of rows appended; on a
// malformed line the rows of previous batches stay appended and the error
// names the line.
func (c *Cube) AppendNDJSON(r io.Reader) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	return c.streamNDJSON(r, func(labels [][]string, values [][]core.Value, aux []float64) (int, error) {
		if labels != nil {
			n, _, err := c.mgr.AppendLabeled(labels, aux)
			return n, err
		}
		n, _, err := c.mgr.Append(values, aux)
		return n, err
	})
}

// DeleteNDJSON streams newline-delimited JSON tombstones — same line format
// as AppendNDJSON — into the delta log: each tuple removes one matching
// occurrence on the next refresh, under the Delete/DeleteLabels contract.
func (c *Cube) DeleteNDJSON(r io.Reader) (int, error) {
	if c.mgr == nil {
		return 0, c.errNotRefreshable()
	}
	return c.streamNDJSON(r, func(labels [][]string, values [][]core.Value, aux []float64) (int, error) {
		if labels != nil {
			n, _, err := c.mgr.DeleteLabeled(labels, aux)
			return n, err
		}
		n, _, err := c.mgr.Delete(values, aux)
		return n, err
	})
}

// streamNDJSON scans NDJSON tuples and hands them to apply in batches —
// exactly one of labels and values is non-nil per call, matching the cube's
// form. Shared by the append and delete streaming paths.
func (c *Cube) streamNDJSON(r io.Reader, apply func(labels [][]string, values [][]core.Value, aux []float64) (int, error)) (int, error) {
	labeled := c.snap().Dicts != nil
	hasAux := c.HasMeasure()
	// Rows batch up; when an AutoRefresh row threshold is set, the batch
	// aligns to it so the refresh cadence matches the threshold instead of
	// the batch size.
	batchRows := 1024
	if rt := c.mgr.RowThreshold(); rt > 0 && rt < batchRows {
		batchRows = rt
	}
	var (
		total   int
		labels  [][]string
		values  [][]core.Value
		auxVals []float64
	)
	flush := func() error {
		var n int
		var err error
		var aux []float64
		if hasAux {
			aux = auxVals
		}
		if labeled {
			n, err = apply(labels, nil, aux)
		} else {
			n, err = apply(nil, values, aux)
		}
		total += n
		labels, values, auxVals = labels[:0], values[:0], auxVals[:0]
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(bytes.TrimSpace(text)) == 0 {
			continue
		}
		row, aux, err := parseNDJSONRow(text, labeled)
		if err != nil {
			if ferr := flush(); ferr != nil {
				return total, ferr
			}
			return total, fmt.Errorf("ccubing: ndjson line %d: %w", line, err)
		}
		if hasAux {
			auxVals = append(auxVals, aux)
		}
		if labeled {
			labels = append(labels, row.labels)
		} else {
			values = append(values, row.values)
		}
		if len(labels)+len(values) >= batchRows {
			if err := flush(); err != nil {
				return total, fmt.Errorf("ccubing: ndjson line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return total, fmt.Errorf("ccubing: ndjson: %w", err)
	}
	if err := flush(); err != nil {
		return total, fmt.Errorf("ccubing: ndjson: %w", err)
	}
	return total, nil
}

// ParseNDJSONRow parses one line of the NDJSON mutation format (see
// AppendNDJSON): a bare JSON array, or an object carrying "row"/"values"
// plus an optional "aux" measure value. Exactly one of labels and values is
// non-nil, per the labeled flag. Exported for the serving router, which must
// parse each line to route it to the shard owning its leading-dimension
// component.
func ParseNDJSONRow(line []byte, labeled bool) (labels []string, values []int32, aux float64, err error) {
	if len(bytes.TrimSpace(line)) == 0 {
		return nil, nil, 0, fmt.Errorf("ccubing: ndjson: empty line")
	}
	row, aux, err := parseNDJSONRow(line, labeled)
	if err != nil {
		return nil, nil, 0, err
	}
	return row.labels, row.values, aux, nil
}

// ndjsonRow is one parsed tuple in whichever form the cube takes.
type ndjsonRow struct {
	labels []string
	values []core.Value
}

func parseNDJSONRow(text []byte, labeled bool) (ndjsonRow, float64, error) {
	text = bytes.TrimSpace(text)
	var rawRow json.RawMessage
	var aux float64
	if text[0] == '{' {
		var obj struct {
			Row    json.RawMessage `json:"row"`
			Values json.RawMessage `json:"values"`
			Aux    float64         `json:"aux"`
		}
		if err := json.Unmarshal(text, &obj); err != nil {
			return ndjsonRow{}, 0, err
		}
		switch {
		case obj.Row != nil && obj.Values == nil:
			rawRow = obj.Row
		case obj.Values != nil && obj.Row == nil:
			rawRow = obj.Values
		default:
			return ndjsonRow{}, 0, fmt.Errorf(`exactly one of "row" and "values" is required`)
		}
		aux = obj.Aux
	} else {
		rawRow = json.RawMessage(text)
	}
	if labeled {
		var labels []string
		if err := json.Unmarshal(rawRow, &labels); err != nil {
			return ndjsonRow{}, 0, fmt.Errorf("want a JSON array of labels: %w", err)
		}
		return ndjsonRow{labels: labels}, aux, nil
	}
	var vals []core.Value
	if err := json.Unmarshal(rawRow, &vals); err != nil {
		return ndjsonRow{}, 0, fmt.Errorf("want a JSON array of coded values: %w", err)
	}
	return ndjsonRow{values: vals}, aux, nil
}

// Refresh folds the buffered delta into the cube: only the leading-dimension
// partitions with appended rows are recomputed (plus the wildcard slice);
// everything else is carried over; the merged store is published atomically.
// An empty backlog is a cheap no-op that keeps the current generation.
// Concurrent queries are answered from the old store until the swap and are
// never torn across generations.
func (c *Cube) Refresh() (RefreshStats, error) {
	if c.mgr == nil {
		return RefreshStats{}, c.errNotRefreshable()
	}
	return c.mgr.Flush()
}

// AutoRefreshOptions configures automatic refresh triggers.
type AutoRefreshOptions struct {
	// Rows, when positive, refreshes synchronously inside the append whose
	// backlog reaches this many rows.
	Rows int
	// Interval, when positive, refreshes from a background goroutine on this
	// period; stop it with Close.
	Interval time.Duration
	// WAL, when non-empty, persists *pending* (not yet refreshed) appends to
	// this file so they survive a restart against the same base relation.
	// Rows a refresh has folded in leave the log — the refreshed store lives
	// in memory only until you Save a snapshot, so pair the WAL with
	// periodic snapshots (and ccserve's /v1/reload) for full durability.
	WAL string
}

// AutoRefresh enables automatic refresh triggers (either or both of a row
// threshold and a timer) and, optionally, a write-ahead log for pending
// appends. Call before appending; the timer (if any) runs until Close.
func (c *Cube) AutoRefresh(opt AutoRefreshOptions) error {
	if c.mgr == nil {
		return c.errNotRefreshable()
	}
	if opt.WAL != "" {
		if err := c.mgr.EnableWAL(opt.WAL); err != nil {
			return err
		}
	}
	return c.mgr.AutoRefresh(opt.Rows, opt.Interval)
}

// Close stops the AutoRefresh timer goroutine (if running) and closes the
// write-ahead log. The cube remains queryable. Static cubes are a no-op.
func (c *Cube) Close() error {
	if c.mgr == nil {
		return nil
	}
	return c.mgr.Close()
}

// RefreshMetrics returns cumulative refresh counters: current generation,
// delta backlog, refresh count, and the latest refresh's statistics. Static
// cubes report their snapshot's generation with zero counters.
func (c *Cube) RefreshMetrics() RefreshMetrics {
	if c.mgr == nil {
		st := c.snap()
		return RefreshMetrics{Generation: st.Generation, Rows: st.Rows}
	}
	return c.mgr.Metrics()
}

// attachMeasureCore adapts AttachMeasure to the refresh manager's hook: it
// fills the Aux of recomputed cells from the relation's measure column.
func attachMeasureCore(t *table.Table, cells []core.Cell, kind MeasureKind) error {
	if len(cells) == 0 {
		return nil
	}
	fcells := make([]Cell, len(cells))
	for i := range cells {
		fcells[i] = Cell{Values: cells[i].Values, Count: cells[i].Count}
	}
	if err := AttachMeasure(&Dataset{t: t}, fcells, kind); err != nil {
		return err
	}
	for i := range cells {
		cells[i].Aux = fcells[i].Aux
	}
	return nil
}
