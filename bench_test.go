package ccubing

// One benchmark family per figure of the paper's evaluation (Figs. 3-18),
// sharing the experiment definitions in internal/expt with cmd/ccbench, plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// Scale: tuple counts are multiplied by CCUBING_BENCH_SCALE (default 0.005,
// i.e. 1K-5K tuples per dataset) so `go test -bench=.` completes in minutes.
// Run cmd/ccbench -scale 0.1 (or 1.0 for paper scale) for the full sweeps;
// EXPERIMENTS.md records the shapes at larger scales.

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"ccubing/internal/expt"
	"ccubing/internal/gen"
	"ccubing/internal/mmcubing"
	"ccubing/internal/sink"
	"ccubing/internal/stararray"
	"ccubing/internal/startree"
	"ccubing/internal/table"
)

func benchScale() float64 {
	if s := os.Getenv("CCUBING_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.005
}

// benchFigure runs every (point, algorithm) pair of one figure as a
// sub-benchmark. Dataset generation happens outside the timer and is
// memoized across figures.
func benchFigure(b *testing.B, id string) {
	f, err := expt.Find(id, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range f.Points {
		tbl := p.Data()
		for _, a := range p.Algos {
			b.Run(p.Label+"/"+a.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var ns sink.Null
					if err := a.Run(tbl, &ns); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig03Tuples(b *testing.B)           { benchFigure(b, "fig03") }
func BenchmarkFig04Dimensions(b *testing.B)       { benchFigure(b, "fig04") }
func BenchmarkFig05Cardinality(b *testing.B)      { benchFigure(b, "fig05") }
func BenchmarkFig06Skew(b *testing.B)             { benchFigure(b, "fig06") }
func BenchmarkFig07Weather(b *testing.B)          { benchFigure(b, "fig07") }
func BenchmarkFig08Minsup(b *testing.B)           { benchFigure(b, "fig08") }
func BenchmarkFig09IcebergSkew(b *testing.B)      { benchFigure(b, "fig09") }
func BenchmarkFig10IcebergCard(b *testing.B)      { benchFigure(b, "fig10") }
func BenchmarkFig11WeatherMinsup(b *testing.B)    { benchFigure(b, "fig11") }
func BenchmarkFig12Dependence(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkFig13CubeSizeDep(b *testing.B)      { benchFigure(b, "fig13") }
func BenchmarkFig14CubeSizeMinsup(b *testing.B)   { benchFigure(b, "fig14") }
func BenchmarkFig15Switchpoint(b *testing.B)      { benchFigure(b, "fig15") }
func BenchmarkFig16MMOverhead(b *testing.B)       { benchFigure(b, "fig16") }
func BenchmarkFig17StarArrayPruning(b *testing.B) { benchFigure(b, "fig17") }
func BenchmarkFig18DimOrder(b *testing.B)         { benchFigure(b, "fig18") }

// BenchmarkParallelWorkers records the wall-clock speedup of the sharded
// parallel driver over the sequential path: a 200k-tuple skewed synthetic
// relation, closed cube, per engine and worker count. Workers=1 is the
// direct sequential engine run; higher counts go through internal/parallel.
// The dataset is intentionally NOT scaled by CCUBING_BENCH_SCALE so the
// numbers are comparable across machines; expect the speedup to track
// physical cores (on a single-core machine the parallel rows regress, since
// the decomposition does ~1.5x the sequential work).
func BenchmarkParallelWorkers(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("GOMAXPROCS=1: every worker count serializes onto one core, so the " +
			"parallel rows only measure the ~1.5x decomposition overhead, not speedup; " +
			"re-run with GOMAXPROCS>1 (or on a multi-core machine) for meaningful numbers")
	}
	ds, err := Synthetic(SyntheticConfig{T: 200_000, D: 6, C: 50, Skew: 1.2, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(counts)
	for _, alg := range []Algorithm{AlgStarArray, AlgMM} {
		prev := 0
		for _, w := range counts {
			if w == prev {
				continue // dedup when NumCPU is 1, 2 or 4
			}
			prev = w
			b.Run(fmt.Sprintf("%v/workers=%d", alg, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opt := Options{MinSup: 8, Closed: true, Algorithm: alg, Workers: w}
					if _, err := Compute(ds, opt, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ablationData is a dependent, mildly skewed dataset where closed pruning
// matters — the regime the Lemma 5/6 prunings target.
func ablationData() *table.Table {
	cards := []int{20, 20, 20, 20, 20, 20}
	return gen.MustSynthetic(gen.Config{
		T: int(40000 * benchScale() * 20), Cards: cards, S: 1, Seed: 3,
		Rules: gen.RulesForDependence(2, cards, 4),
	})
}

// BenchmarkAblationLemma5 measures Lemma 5 (closed-mask) pruning in
// C-Cubing(Star) and C-Cubing(StarArray).
func BenchmarkAblationLemma5(b *testing.B) {
	tbl := ablationData()
	run := func(b *testing.B, f func() error) {
		for i := 0; i < b.N; i++ {
			if err := f(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Star/on", func(b *testing.B) {
		run(b, func() error {
			var ns sink.Null
			return startree.Run(tbl, startree.Config{MinSup: 4, Closed: true}, &ns)
		})
	})
	b.Run("Star/off", func(b *testing.B) {
		run(b, func() error {
			var ns sink.Null
			return startree.Run(tbl, startree.Config{MinSup: 4, Closed: true, DisableLemma5: true}, &ns)
		})
	})
	b.Run("StarArray/on", func(b *testing.B) {
		run(b, func() error {
			var ns sink.Null
			return stararray.Run(tbl, stararray.Config{MinSup: 4, Closed: true}, &ns)
		})
	})
	b.Run("StarArray/off", func(b *testing.B) {
		run(b, func() error {
			var ns sink.Null
			return stararray.Run(tbl, stararray.Config{MinSup: 4, Closed: true, DisableLemma5: true}, &ns)
		})
	})
}

// BenchmarkAblationLemma6 measures the single-path pruning.
func BenchmarkAblationLemma6(b *testing.B) {
	tbl := ablationData()
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ns sink.Null
				err := startree.Run(tbl, startree.Config{MinSup: 4, Closed: true, DisableLemma6: off}, &ns)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationShortcut measures C-Cubing(MM)'s partition==min_sup
// closed-cell shortcut (the device behind its Fig. 16 low-min_sup win).
func BenchmarkAblationShortcut(b *testing.B) {
	tbl := ablationData()
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ns sink.Null
				err := mmcubing.Run(tbl, mmcubing.Config{MinSup: 2, Closed: true, DisableShortcut: off}, &ns)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStarReduction measures star reduction in iceberg mode.
func BenchmarkAblationStarReduction(b *testing.B) {
	tbl := ablationData()
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ns sink.Null
				err := startree.Run(tbl, startree.Config{MinSup: 8, NoStarReduction: off}, &ns)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDenseBudget sweeps the MM-Cubing dense array budget.
func BenchmarkAblationDenseBudget(b *testing.B) {
	tbl := ablationData()
	for _, budget := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		b.Run(strconv.Itoa(budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ns sink.Null
				err := mmcubing.Run(tbl, mmcubing.Config{MinSup: 4, Closed: true, DenseBudget: budget}, &ns)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
