// Package ccubing computes closed and iceberg data cubes, implementing
// "C-Cubing: Efficient Computation of Closed Cubes by Aggregation-Based
// Checking" (Xin, Shao, Han, Liu; ICDE 2006).
//
// A data cube materializes every group-by of a relation. An iceberg cube
// keeps the cells whose count reaches a threshold; a closed cube losslessly
// compresses a cube by keeping only closed cells — cells not covered by a
// more specific cell with the same measure. This package provides:
//
//   - C-Cubing(MM), C-Cubing(Star) and C-Cubing(StarArray): the paper's
//     three closed-cubing algorithms, built on aggregation-based closedness
//     checking (a closedness measure aggregated like count, rather than
//     output-index checks or raw-data rescans);
//   - their iceberg bases MM-Cubing, Star-Cubing and StarArray, plus BUC and
//     the QC-DFS closed-cubing baseline, for comparison;
//   - dataset helpers (CSV and in-memory construction, synthetic and
//     weather-like generators), dimension-ordering strategies, closed-rule
//     mining, an out-of-core partition driver, and an algorithm advisor.
//
// Quick start:
//
//	ds, _ := ccubing.ReadCSV(file)
//	cells, stats, _ := ccubing.ComputeCollect(ds, ccubing.Options{MinSup: 10, Closed: true})
package ccubing

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/engine"
	"ccubing/internal/gen"
	"ccubing/internal/order"
	"ccubing/internal/parallel"
	"ccubing/internal/route"
	"ccubing/internal/sink"
	"ccubing/internal/table"

	// The engine packages register themselves into internal/engine's
	// registry; the facade dispatches through it.
	_ "ccubing/internal/buc"
	_ "ccubing/internal/mmcubing"
	_ "ccubing/internal/obcheck"
	_ "ccubing/internal/qcdfs"
	_ "ccubing/internal/qctree"
	_ "ccubing/internal/stararray"
	_ "ccubing/internal/startree"
)

// Star marks a wildcard (aggregated-over) dimension in a cell's Values.
const Star int32 = -1

// MaxDims is the largest supported dimensionality.
const MaxDims = core.MaxDims

// Algorithm selects a cubing engine.
type Algorithm int

const (
	// AlgAuto lets the library pick an engine via Advise.
	AlgAuto Algorithm = iota
	// AlgMM is MM-Cubing / C-Cubing(MM): lattice-space factorization with
	// MultiWay array aggregation in dense subspaces. Strong when iceberg
	// pruning dominates (high min_sup).
	AlgMM
	// AlgStar is Star-Cubing / C-Cubing(Star): star-tree computation with
	// simultaneous child-tree aggregation. Strong at low min_sup and low
	// cardinality.
	AlgStar
	// AlgStarArray is StarArray / C-Cubing(StarArray): the hybrid tree +
	// tuple-ID-pool structure with multiway traversal. Strong at low
	// min_sup and high cardinality.
	AlgStarArray
	// AlgBUC is BUC, iceberg only.
	AlgBUC
	// AlgQCDFS is the Quotient Cube DFS baseline, closed mode only.
	AlgQCDFS
	// AlgQCTree is QC-DFS plus QC-tree materialization — the full work the
	// original Quotient Cube system performs. Closed mode only.
	AlgQCTree
	// AlgOBBUC is output-based closedness checking (closed-pattern-mining
	// style, paper Sec. 2.2.2): BUC enumeration with an in-memory index of
	// previous outputs. Closed mode only.
	AlgOBBUC
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "Auto"
	case AlgMM:
		return "CC(MM)"
	case AlgStar:
		return "CC(Star)"
	case AlgStarArray:
		return "CC(StarArray)"
	case AlgBUC:
		return "BUC"
	case AlgQCDFS:
		return "QC-DFS"
	case AlgQCTree:
		return "QC-Tree"
	case AlgOBBUC:
		return "OB-BUC"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves a command-line name to an algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "auto", "Auto":
		return AlgAuto, nil
	case "mm", "MM", "CC(MM)", "cc-mm":
		return AlgMM, nil
	case "star", "Star", "CC(Star)", "cc-star":
		return AlgStar, nil
	case "stararray", "StarArray", "CC(StarArray)", "cc-stararray":
		return AlgStarArray, nil
	case "buc", "BUC":
		return AlgBUC, nil
	case "qcdfs", "QC-DFS", "qc-dfs":
		return AlgQCDFS, nil
	case "qctree", "QC-Tree", "qc-tree":
		return AlgQCTree, nil
	case "obbuc", "OB-BUC", "ob-buc":
		return AlgOBBUC, nil
	}
	return AlgAuto, fmt.Errorf("ccubing: unknown algorithm %q", s)
}

// OrderStrategy re-exports the dimension-ordering strategies of paper
// Sec. 5.5 (meaningful for the tree engines; MM-Cubing is order-free).
type OrderStrategy = order.Strategy

const (
	// OrderOriginal keeps the dataset's dimension order.
	OrderOriginal = order.Original
	// OrderByCardinality sorts dimensions by cardinality descending.
	OrderByCardinality = order.ByCardinality
	// OrderByEntropy sorts dimensions by the paper's entropy measure
	// descending (the recommended strategy).
	OrderByEntropy = order.ByEntropy
)

// MeasureKind re-exports the complex-measure kinds (paper Sec. 6.1).
type MeasureKind = core.MeasureKind

const (
	MeasureNone = core.MeasureNone
	MeasureSum  = core.MeasureSum
	MeasureMin  = core.MeasureMin
	MeasureMax  = core.MeasureMax
	MeasureAvg  = core.MeasureAvg
)

// Options configures a cube computation.
type Options struct {
	// MinSup is the iceberg threshold on count; 1 computes the full
	// (closed) cube. Defaults to 1 when zero.
	MinSup int64
	// Closed computes the closed (iceberg) cube; false computes the plain
	// iceberg cube.
	Closed bool
	// Algorithm picks the engine; AlgAuto consults Advise.
	Algorithm Algorithm
	// Order applies a dimension-ordering strategy before tree-based engines
	// run. Emitted cells are always in the dataset's original dimension
	// order.
	Order OrderStrategy
	// Measure attaches a complex measure, aggregated over Dataset.Aux during
	// the cubing pass itself. Supported natively by AlgBUC, AlgQCDFS, AlgMM,
	// AlgStar and AlgStarArray (and hence by every engine AlgAuto selects);
	// the remaining baselines (AlgQCTree, AlgOBBUC) return an error — use
	// AttachMeasure as a post-pass there. Compute presents MeasureAvg cells
	// as the mean; Materialize stores the algebraic (sum, count) pair.
	Measure MeasureKind
	// DenseBudget overrides the MM-Cubing dense array budget, in cells.
	DenseBudget int
	// DisableLemma5, DisableLemma6 and DisableShortcut switch off individual
	// closed-pruning devices for ablation studies; outputs are unaffected.
	DisableLemma5   bool
	DisableLemma6   bool
	DisableShortcut bool
	// Workers sets how many goroutines cube concurrently. 0 and 1 compute
	// sequentially; larger values shard the relation on one dimension and
	// cube the shards across that many workers (the in-memory analogue of
	// the paper's Sec. 6.3 partitioning); negative values use
	// runtime.NumCPU(). With Workers > 1 the visit callback still runs
	// serialized, but on worker goroutines and in nondeterministic order.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MinSup <= 0 {
		o.MinSup = 1
	}
	return o
}

// Cell is one output cell: Values has one entry per dimension (Star for
// aggregated dimensions), Count the count measure, and Aux the complex
// measure when one was requested.
type Cell struct {
	Values []int32
	Count  int64
	Aux    float64
}

// Stats summarizes a computation.
type Stats struct {
	// Algorithm is the engine that actually ran (resolved from AlgAuto).
	Algorithm Algorithm
	// Cells is the number of emitted cells.
	Cells int64
	// Bytes is the serialized cube size (4 bytes per dimension plus an
	// 8-byte count per cell, plus an 8-byte measure value when a complex
	// measure was computed), the accounting used by the paper's cube-size
	// experiments.
	Bytes int64
	// Elapsed is the wall-clock computation time.
	Elapsed time.Duration
}

// MB returns the cube size in binary megabytes.
func (s Stats) MB() float64 { return float64(s.Bytes) / (1 << 20) }

// Compute runs the configured algorithm over the dataset and calls visit for
// every output cell. The Cell passed to visit reuses its Values buffer
// between calls; copy it to retain. With Options.Workers > 1 the computation
// is sharded across goroutines; visit calls stay serialized but arrive on
// worker goroutines in nondeterministic order.
func Compute(ds *Dataset, opt Options, visit func(Cell)) (Stats, error) {
	opt = opt.withDefaults()
	plan, err := planCompute(ds, opt)
	if err != nil {
		return Stats{Algorithm: plan.alg}, err
	}
	st := Stats{Algorithm: plan.alg}
	out := newVisitSink(visit, plan.perm, plan.t.NumDims(), opt, &st)
	start := time.Now()
	err = plan.run(out)
	st.Elapsed = time.Since(start)
	return st, err
}

// computePlan is one resolved cube execution: the engine and its config, the
// (possibly reordered) relation, the permutation mapping engine dimension
// positions back to dataset positions, and the worker count.
type computePlan struct {
	alg     Algorithm
	eng     engine.Engine
	ecfg    engine.Config
	t       *table.Table
	perm    []int
	workers int
}

// planCompute resolves options to a runnable plan: engine selection and
// validation, dimension ordering, worker count. Shared by Compute and the
// direct-to-builder path of Materialize.
func planCompute(ds *Dataset, opt Options) (computePlan, error) {
	if ds == nil || ds.t == nil {
		return computePlan{}, fmt.Errorf("ccubing: nil dataset")
	}
	alg := opt.Algorithm
	if alg == AlgAuto {
		alg = Advise(ds, opt.MinSup, opt.Closed)
	}
	plan := computePlan{alg: alg, workers: resolveWorkers(opt.Workers)}
	eng, ecfg, err := resolveEngine(ds, opt, alg)
	if err != nil {
		return plan, err
	}
	plan.eng, plan.ecfg = eng, ecfg
	plan.t = ds.t
	plan.perm = order.Permutation(plan.t, OrderOriginal)
	if opt.Order != OrderOriginal && eng.Capabilities().OrderSensitive {
		plan.t, plan.perm, err = order.Apply(ds.t, opt.Order)
		if err != nil {
			return plan, err
		}
	}
	return plan, nil
}

// run executes the plan into out, sharded across workers when more than one.
func (p computePlan) run(out sink.Sink) error {
	if p.workers > 1 {
		return parallel.Run(p.t, p.eng, p.ecfg, parallel.Config{Workers: p.workers, Dim: -1}, out)
	}
	return p.eng.Run(p.t, p.ecfg, out)
}

// identity reports whether the plan's permutation is the identity, i.e. cells
// arrive in dataset dimension order and need no remapping.
func (p computePlan) identity() bool {
	for i, d := range p.perm {
		if i != d {
			return false
		}
	}
	return true
}

// resolveEngine looks the algorithm up in the engine registry and validates
// the requested options against its declared capabilities.
func resolveEngine(ds *Dataset, opt Options, alg Algorithm) (engine.Engine, engine.Config, error) {
	eng, ok := engine.Lookup(alg.String())
	if !ok {
		return nil, engine.Config{}, fmt.Errorf("ccubing: unknown algorithm %v", alg)
	}
	ecfg := engine.Config{
		MinSup:          opt.MinSup,
		Closed:          opt.Closed,
		Measure:         opt.Measure,
		DenseBudget:     opt.DenseBudget,
		DisableLemma5:   opt.DisableLemma5,
		DisableLemma6:   opt.DisableLemma6,
		DisableShortcut: opt.DisableShortcut,
	}
	if err := engine.Validate(eng, ds.t.Aux != nil, ecfg); err != nil {
		return nil, engine.Config{}, fmt.Errorf("ccubing: %w", err)
	}
	return eng, ecfg, nil
}

// resolveWorkers maps Options.Workers to a goroutine count: sequential for 0
// and 1, NumCPU for negative values.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.NumCPU()
	}
	if w == 0 {
		return 1
	}
	return w
}

// visitSink adapts a visit callback to the engine sink interface, remapping
// dimension positions when the table was reordered. Engines deliver stored
// aggregates (avg as the running sum); the sink presents them — avg divides
// by count — so visit always sees the user-facing measure value.
type visitSink struct {
	visit   func(Cell)
	perm    []int
	scratch []core.Value
	stats   *Stats
	cell    Cell
	kind    MeasureKind
	// cellBytes is the serialized size of one cell: 4 bytes per dimension,
	// an 8-byte count, and another 8-byte value when a complex measure was
	// computed.
	cellBytes int64
}

func newVisitSink(visit func(Cell), perm []int, nd int, opt Options, st *Stats) *visitSink {
	cellBytes := int64(4*nd) + 8
	if opt.Measure != MeasureNone {
		cellBytes += 8
	}
	return &visitSink{
		visit:     visit,
		perm:      perm,
		scratch:   make([]core.Value, nd),
		stats:     st,
		kind:      opt.Measure,
		cellBytes: cellBytes,
	}
}

func (v *visitSink) Emit(vals []core.Value, count int64) { v.emit(vals, count, 0) }

func (v *visitSink) EmitAux(vals []core.Value, count int64, aux float64) {
	v.emit(vals, count, aux)
}

// EmitBatch satisfies sink.BatchSink so batched flushes from the parallel
// merger reach the callback without falling back to per-cell emission
// upstream; each batched cell still pays the remap, but the flush lock is
// taken once per batch.
func (v *visitSink) EmitBatch(arena []core.Value, cells []sink.BatchCell) {
	for _, c := range cells {
		v.emit(arena[c.Off:c.Off+c.Width], c.Count, c.Aux)
	}
}

func (v *visitSink) emit(vals []core.Value, count int64, aux float64) {
	v.stats.Cells++
	v.stats.Bytes += v.cellBytes
	for i, val := range vals {
		v.scratch[v.perm[i]] = val
	}
	if v.visit == nil {
		return
	}
	v.cell.Values = v.scratch
	v.cell.Count = count
	if v.kind != MeasureNone {
		aux = core.Present(v.kind, aux, count)
	}
	v.cell.Aux = aux
	v.visit(v.cell)
}

// ComputeCollect is Compute retaining every cell.
func ComputeCollect(ds *Dataset, opt Options) ([]Cell, Stats, error) {
	var cells []Cell
	st, err := Compute(ds, opt, func(c Cell) {
		vals := make([]int32, len(c.Values))
		copy(vals, c.Values)
		cells = append(cells, Cell{Values: vals, Count: c.Count, Aux: c.Aux})
	})
	return cells, st, err
}

// Dataset is a dictionary-encoded relation ready for cubing.
type Dataset struct {
	t     *table.Table
	dicts []*table.Dict
}

// NumDims returns the number of dimensions.
func (ds *Dataset) NumDims() int { return ds.t.NumDims() }

// NumTuples returns the number of tuples.
func (ds *Dataset) NumTuples() int { return ds.t.NumTuples() }

// Names returns the dimension names.
func (ds *Dataset) Names() []string { return ds.t.Names }

// Cardinalities returns the per-dimension dictionary sizes.
func (ds *Dataset) Cardinalities() []int { return ds.t.Cards }

// SetMeasure attaches a per-tuple numeric measure column for complex
// measures (paper Sec. 6.1).
func (ds *Dataset) SetMeasure(vals []float64) error {
	if len(vals) != ds.t.NumTuples() {
		return fmt.Errorf("ccubing: measure column has %d values, want %d", len(vals), ds.t.NumTuples())
	}
	ds.t.Aux = vals
	return nil
}

// FormatCell renders a cell using the dataset's dictionaries (or raw codes
// when the dataset was built from coded values).
func (ds *Dataset) FormatCell(c Cell) string {
	var b strings.Builder
	b.WriteByte('(')
	for d, v := range c.Values {
		if d > 0 {
			b.WriteString(", ")
		}
		switch {
		case v == Star:
			b.WriteByte('*')
		case ds.dicts != nil:
			b.WriteString(ds.dicts[d].Name(v))
		default:
			b.WriteString(ds.t.Names[d])
			b.WriteByte('=')
			b.WriteString(strconv.Itoa(int(v)))
		}
	}
	b.WriteString(" : ")
	b.WriteString(strconv.FormatInt(c.Count, 10))
	b.WriteByte(')')
	return b.String()
}

// ReadCSV loads a dataset from CSV with a header row of dimension names.
func ReadCSV(r io.Reader) (*Dataset, error) {
	t, dicts, err := table.ReadCSV(r, true)
	if err != nil {
		return nil, err
	}
	if err := validateDims(t); err != nil {
		return nil, err
	}
	return &Dataset{t: t, dicts: dicts}, nil
}

// NewDataset builds a dataset from string-valued rows, dictionary-encoding
// every field. names supplies one label per dimension.
func NewDataset(names []string, rows [][]string) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ccubing: no rows")
	}
	nd := len(names)
	dicts := make([]*table.Dict, nd)
	for d := range dicts {
		dicts[d] = table.NewDict()
	}
	t := table.New(nd, len(rows))
	copy(t.Names, names)
	for i, row := range rows {
		if len(row) != nd {
			return nil, fmt.Errorf("ccubing: row %d has %d fields, want %d", i, len(row), nd)
		}
		for d, s := range row {
			t.Cols[d][i] = dicts[d].Code(s)
		}
	}
	for d := range dicts {
		t.Cards[d] = dicts[d].Len()
	}
	if err := validateDims(t); err != nil {
		return nil, err
	}
	return &Dataset{t: t, dicts: dicts}, nil
}

// NewDatasetFromValues builds a dataset from already-encoded rows (values in
// [0, card) per dimension; cardinalities inferred).
func NewDatasetFromValues(names []string, rows [][]int32) (*Dataset, error) {
	vrows := make([][]core.Value, len(rows))
	for i, r := range rows {
		vrows[i] = r
	}
	t, err := table.FromRows(vrows)
	if err != nil {
		return nil, err
	}
	if names != nil {
		if len(names) != t.NumDims() {
			return nil, fmt.Errorf("ccubing: %d names for %d dimensions", len(names), t.NumDims())
		}
		copy(t.Names, names)
	}
	if err := validateDims(t); err != nil {
		return nil, err
	}
	return &Dataset{t: t}, nil
}

// Shard returns the subset of the dataset owned by shard index out of count,
// routing each tuple by its dim component: the label on labeled datasets,
// the decimal value otherwise, hashed with the same FNV-1a mapping the
// serving router uses (internal/route). Sharding the relation this way makes
// the paper's Sec. 6.3 partition argument hold across processes — every
// closed cell fixing dim aggregates tuples of exactly one shard — so a
// scatter-gather router over per-shard cubes answers dim-bound queries from
// one worker. The measure column, when set, is carried along.
//
// A shard owning no tuples is an error: a cube cannot materialize over an
// empty relation, so such a topology needs fewer shards (or a different
// routing dimension).
func (ds *Dataset) Shard(dim, index, count int) (*Dataset, error) {
	if dim < 0 || dim >= ds.NumDims() {
		return nil, fmt.Errorf("ccubing: shard: dimension %d out of range [0,%d)", dim, ds.NumDims())
	}
	if count < 1 || index < 0 || index >= count {
		return nil, fmt.Errorf("ccubing: shard: index %d of %d out of range", index, count)
	}
	var keep []int
	var comp string
	for tid := 0; tid < ds.t.NumTuples(); tid++ {
		v := ds.t.Cols[dim][tid]
		if ds.dicts != nil {
			comp = ds.dicts[dim].Name(v)
		} else {
			comp = strconv.Itoa(int(v))
		}
		if route.Owner(comp, count) == index {
			keep = append(keep, tid)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("ccubing: shard %d/%d owns no tuples on dimension %q", index, count, ds.t.Names[dim])
	}
	var out *Dataset
	var err error
	if ds.dicts != nil {
		rows := make([][]string, len(keep))
		for i, tid := range keep {
			row := make([]string, ds.NumDims())
			for d := 0; d < ds.NumDims(); d++ {
				row[d] = ds.dicts[d].Name(ds.t.Cols[d][tid])
			}
			rows[i] = row
		}
		out, err = NewDataset(ds.t.Names, rows)
	} else {
		rows := make([][]int32, len(keep))
		for i, tid := range keep {
			rows[i] = append([]int32(nil), ds.t.Row(core.TID(tid), nil)...)
		}
		out, err = NewDatasetFromValues(ds.t.Names, rows)
	}
	if err != nil {
		return nil, err
	}
	if ds.t.Aux != nil {
		aux := make([]float64, len(keep))
		for i, tid := range keep {
			aux[i] = ds.t.Aux[tid]
		}
		if err := out.SetMeasure(aux); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func validateDims(t *table.Table) error {
	if t.NumDims() > core.MaxDims {
		return fmt.Errorf("ccubing: %d dimensions exceed the supported %d", t.NumDims(), core.MaxDims)
	}
	return nil
}

// SyntheticConfig describes a synthetic dataset in the paper's vocabulary.
type SyntheticConfig struct {
	T          int     // tuples
	D          int     // dimensions
	C          int     // cardinality per dimension
	Cards      []int   // per-dimension cardinalities (overrides D, C)
	Skew       float64 // Zipf exponent, 0 = uniform
	Dependence float64 // target dependence R (paper Sec. 5.3); 0 = none
	Seed       int64
}

// ParseSyntheticSpec parses the command-line synthetic dataset notation
// shared by ccube, ccgen and ccserve: comma-separated key=value pairs over
// T, D, C, S (skew), R (dependence) and seed, e.g.
// "T=100000,D=8,C=100,S=1,R=0,seed=1". Omitted keys keep the defaults
// T=10000, D=6, C=10, seed=1.
func ParseSyntheticSpec(s string) (SyntheticConfig, error) {
	cfg := SyntheticConfig{T: 10000, D: 6, C: 10, Seed: 1}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("ccubing: bad synth component %q", kv)
		}
		k, v := parts[0], parts[1]
		var err error
		switch k {
		case "T":
			cfg.T, err = strconv.Atoi(v)
		case "D":
			cfg.D, err = strconv.Atoi(v)
		case "C":
			cfg.C, err = strconv.Atoi(v)
		case "S":
			cfg.Skew, err = strconv.ParseFloat(v, 64)
		case "R":
			cfg.Dependence, err = strconv.ParseFloat(v, 64)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("ccubing: bad synth component %q: %v", kv, err)
		}
	}
	return cfg, nil
}

// Synthetic generates a dataset (deterministic per config).
func Synthetic(cfg SyntheticConfig) (*Dataset, error) {
	gcfg := gen.Config{T: cfg.T, D: cfg.D, C: cfg.C, Cards: cfg.Cards, S: cfg.Skew, Seed: cfg.Seed}
	if cfg.Dependence > 0 {
		cards := cfg.Cards
		if cards == nil {
			cards = make([]int, cfg.D)
			for i := range cards {
				cards[i] = cfg.C
			}
		}
		gcfg.Rules = gen.RulesForDependence(cfg.Dependence, cards, cfg.Seed+1)
	}
	t, err := gen.Synthetic(gcfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{t: t}, nil
}

// Weather synthesizes the weather-like dataset standing in for the paper's
// SEP83L relation: n tuples over the first nd of its 8 dimensions (pass
// nd <= 0 for all 8, n <= 0 for the full 1,002,752 tuples). See DESIGN.md
// for the substitution rationale.
func Weather(seed int64, n, nd int) (*Dataset, error) {
	t, err := gen.Weather(seed, n, nd)
	if err != nil {
		return nil, err
	}
	return &Dataset{t: t}, nil
}

// Table exposes the underlying relation to sibling internal packages (the
// experiment harness); external users should not need it.
func (ds *Dataset) Table() *table.Table { return ds.t }
