package ccubing

// Tests for deletions and updates in the live refresh path: the facade
// mirror of internal/refresh's tombstone tests. The load-bearing property
// is unchanged from appends — after any interleaving of appends, deletes
// and updates, the refreshed cube is byte-identical to a from-scratch
// Materialize of the edited relation — plus the serving contracts: static
// cubes reject mutations, NDJSON tombstone streaming, and generation-
// consistent answers while deletes race queries.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// editedRow is one live tuple of the test-side model: values plus measure.
type editedRow struct {
	vals []int32
	aux  float64
}

// TestDeleteUpdateMatchesMaterialize is the tentpole acceptance criterion at
// the facade layer: random interleavings of AppendValues/Delete/Update,
// refreshed, match a from-scratch Materialize of the edited relation byte
// for byte — at minsup 1 and on iceberg cubes, with and without measures.
func TestDeleteUpdateMatchesMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cards := []int{6, 5, 4}
	for _, minsup := range []int64{1, 4} {
		for _, withAux := range []bool{false, true} {
			for trial := 0; trial < 4; trial++ {
				live := make([]editedRow, 0, 500)
				for i := 0; i < 350+rng.Intn(150); i++ {
					row := make([]int32, len(cards))
					for d := range cards {
						row[d] = int32(rng.Intn(cards[d]))
					}
					live = append(live, editedRow{vals: row, aux: float64(rng.Intn(1000)) / 8})
				}
				cube := materializeRows(t, live, withAux, minsup)

				nOps := 3 + rng.Intn(3)
				for op := 0; op < nOps; op++ {
					k := 3 + rng.Intn(12)
					switch rng.Intn(3) {
					case 0: // append
						rows := make([][]int32, k)
						var aux []float64
						for j := range rows {
							row := make([]int32, len(cards))
							row[0] = int32(rng.Intn(cards[0] + 1)) // occasionally a new partition
							for d := 1; d < len(cards); d++ {
								row[d] = int32(rng.Intn(cards[d]))
							}
							rows[j] = row
							a := float64(rng.Intn(1000)) / 8
							if withAux {
								aux = append(aux, a)
							}
							live = append(live, editedRow{vals: row, aux: a})
						}
						if _, err := cube.AppendValues(rows, aux); err != nil {
							t.Fatal(err)
						}
					case 1: // delete
						rows := make([][]int32, 0, k)
						var aux []float64
						for j := 0; j < k && len(live) > 0; j++ {
							i := rng.Intn(len(live))
							rows = append(rows, live[i].vals)
							if withAux {
								aux = append(aux, live[i].aux)
							}
							live = append(live[:i], live[i+1:]...)
						}
						if _, err := cube.Delete(rows, aux); err != nil {
							t.Fatal(err)
						}
					case 2: // update
						olds := make([][]int32, 0, k)
						news := make([][]int32, 0, k)
						var oldAux, newAux []float64
						for j := 0; j < k && len(live) > 0; j++ {
							i := rng.Intn(len(live))
							olds = append(olds, live[i].vals)
							if withAux {
								oldAux = append(oldAux, live[i].aux)
							}
							live = append(live[:i], live[i+1:]...)
							row := make([]int32, len(cards))
							for d := range cards {
								row[d] = int32(rng.Intn(cards[d]))
							}
							a := float64(rng.Intn(1000)) / 8
							news = append(news, row)
							if withAux {
								newAux = append(newAux, a)
							}
							live = append(live, editedRow{vals: row, aux: a})
						}
						if _, err := cube.Update(olds, news, oldAux, newAux); err != nil {
							t.Fatal(err)
						}
					}
				}
				if _, err := cube.Refresh(); err != nil {
					t.Fatal(err)
				}
				want := materializeRows(t, live, withAux, minsup)
				if !bytes.Equal(refreshStoreBytes(t, cube), refreshStoreBytes(t, want)) {
					t.Fatalf("minsup=%d aux=%v trial=%d: edited store differs from from-scratch materialize (%d vs %d cells)",
						minsup, withAux, trial, cube.NumCells(), want.NumCells())
				}
				if cube.SourceRows() != int64(len(live)) {
					t.Fatalf("source rows = %d, want %d", cube.SourceRows(), len(live))
				}
			}
		}
	}
}

func materializeRows(t *testing.T, rows []editedRow, withAux bool, minsup int64) *Cube {
	t.Helper()
	vals := make([][]int32, len(rows))
	aux := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r.vals
		aux[i] = r.aux
	}
	ds, err := NewDatasetFromValues(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{MinSup: minsup, Workers: 2}
	if withAux {
		if err := ds.SetMeasure(aux); err != nil {
			t.Fatal(err)
		}
		opt.Measure = MeasureSum
	}
	cube, err := Materialize(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// TestDeletePartitionShrinksToEmpty removes every tuple of one leading-
// dimension partition through the facade: its cells vanish and the cube
// matches a rebuild of the smaller relation.
func TestDeletePartitionShrinksToEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cards := []int{5, 4, 3}
	base := randomRows(rng, cards, 300, nil)
	ds, err := NewDatasetFromValues(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim := base[0][0]
	var dels, rest [][]int32
	for _, r := range base {
		if r[0] == victim {
			dels = append(dels, r)
		} else {
			rest = append(rest, r)
		}
	}
	if _, err := cube.Delete(dels, nil); err != nil {
		t.Fatal(err)
	}
	st, err := cube.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != len(dels) {
		t.Fatalf("refresh stats = %+v, want %d deleted", st, len(dels))
	}
	if count, ok := cube.Query([]int32{victim, Star, Star}); ok {
		t.Fatalf("vanished partition still answers %d", count)
	}
	restDS, err := NewDatasetFromValues(nil, rest)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Materialize(restDS, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refreshStoreBytes(t, cube), refreshStoreBytes(t, want)) {
		t.Fatal("shrunk store differs from from-scratch materialize")
	}
}

// TestDeleteLabeled drives tombstones and updates by label, including an
// update that introduces a brand-new label, comparing the edited cube
// cell-by-cell (labels, counts) against a from-scratch build of the edited
// relation — label coding may legitimately differ, bytes may not be
// compared.
func TestDeleteLabeled(t *testing.T) {
	baseRows := [][]string{
		{"oslo", "pen"}, {"oslo", "ink"}, {"paris", "pen"},
		{"oslo", "pen"}, {"paris", "ink"}, {"rome", "pen"},
	}
	ds, err := NewDataset([]string{"city", "product"}, baseRows)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown labels name tuples that never existed: a clear error.
	if _, err := cube.DeleteLabels([][]string{{"ghost", "pen"}}, nil); err == nil {
		t.Fatal("unknown-label delete must fail")
	}
	// Delete one of the two (oslo,pen) occurrences; update (rome,pen) to the
	// brand-new city bergen.
	if _, err := cube.DeleteLabels([][]string{{"oslo", "pen"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.UpdateLabels([][]string{{"rome", "pen"}}, [][]string{{"bergen", "pen"}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	edited := [][]string{
		{"oslo", "ink"}, {"paris", "pen"}, {"oslo", "pen"},
		{"paris", "ink"}, {"bergen", "pen"},
	}
	editedDS, err := NewDataset([]string{"city", "product"}, edited)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Materialize(editedDS, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotCells := labeledCellSet(t, cube)
	wantCells := labeledCellSet(t, want)
	if gotCells != wantCells {
		t.Fatalf("edited labeled cube differs from from-scratch build:\ngot  %s\nwant %s", gotCells, wantCells)
	}
	if count, ok, err := cube.QueryLabels([]string{"rome", "*"}); err != nil || ok || count != 0 {
		t.Fatalf("rome after update-away = (%d,%v,%v), want miss", count, ok, err)
	}
	if count, ok, err := cube.QueryLabels([]string{"bergen", "pen"}); err != nil || !ok || count != 1 {
		t.Fatalf("bergen = (%d,%v,%v), want 1", count, ok, err)
	}
}

// labeledCellSet canonicalizes a cube as sorted "label,...=count" lines.
func labeledCellSet(t *testing.T, c *Cube) string {
	t.Helper()
	var lines []string
	c.Cells(func(cell Cell) bool {
		lines = append(lines, fmt.Sprintf("%s=%d", strings.Join(c.Labels(cell.Values), ","), cell.Count))
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// TestDeleteNDJSON streams tombstones in the shared NDJSON forms.
func TestDeleteNDJSON(t *testing.T) {
	cds, err := NewDatasetFromValues(nil, [][]int32{{0, 0}, {1, 1}, {0, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cds.SetMeasure([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(cds, Options{MinSup: 1, Measure: MeasureSum})
	if err != nil {
		t.Fatal(err)
	}
	// Tombstones match on (values, aux): remove the aux=4 copy of (0,0).
	n, err := cube.DeleteNDJSON(strings.NewReader(`{"values":[0,0],"aux":4}` + "\n"))
	if err != nil || n != 1 {
		t.Fatalf("ndjson delete = (%d, %v), want 1 row", n, err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	cell, ok := cube.Lookup([]int32{0, 0})
	if !ok || cell.Count != 1 || cell.Aux != 1 {
		t.Fatalf("cell (0,0) = (%+v,%v), want count 1 aux 1", cell, ok)
	}
	// A tombstone for a missing (values, aux) pair fails the stream.
	if _, err := cube.DeleteNDJSON(strings.NewReader(`{"values":[1,1],"aux":99}` + "\n")); err == nil {
		t.Fatal("tombstone with wrong aux must fail")
	}
}

// TestMutateStaticCube pins the static-cube contract for the new mutation
// surface: snapshot-loaded cubes reject deletes and updates like appends.
func TestMutateStaticCube(t *testing.T) {
	ds, err := NewDatasetFromValues(nil, [][]int32{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Delete([][]int32{{0, 0}}, nil); err == nil {
		t.Fatal("delete on a static cube must fail")
	}
	if _, err := loaded.DeleteLabels([][]string{{"a", "b"}}, nil); err == nil {
		t.Fatal("labeled delete on a static cube must fail")
	}
	if _, err := loaded.Update([][]int32{{0, 0}}, [][]int32{{1, 0}}, nil, nil); err == nil {
		t.Fatal("update on a static cube must fail")
	}
	if _, err := loaded.UpdateLabels([][]string{{"a"}}, [][]string{{"b"}}, nil, nil); err == nil {
		t.Fatal("labeled update on a static cube must fail")
	}
	if _, err := loaded.DeleteNDJSON(strings.NewReader("[0,0]\n")); err == nil {
		t.Fatal("ndjson delete on a static cube must fail")
	}
}

// TestConcurrentQueriesDuringDeleteRefresh is the -race hammer the issue
// names: goroutines spin on Query and Aggregate while the main goroutine
// interleaves deletes (and appends) across generation swaps. Every answer
// must be consistent with exactly one generation — never a torn mix.
func TestConcurrentQueriesDuringDeleteRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	cards := []int{8, 5, 4}
	base := randomRows(rng, cards, 500, nil)

	brute := func(rows [][]int32, q []int32) int64 {
		var n int64
		for _, r := range rows {
			ok := true
			for d, v := range q {
				if v != Star && r[d] != v {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		return n
	}
	const nProbes = 40
	probes := make([][]int32, nProbes)
	for i := range probes {
		q := make([]int32, len(cards))
		for d := range q {
			switch rng.Intn(3) {
			case 0:
				q[d] = Star
			default:
				q[d] = int32(rng.Intn(cards[d]))
			}
		}
		probes[i] = q
	}

	// Generations: start, then per chunk either an append batch or a delete
	// batch (sampled from the live rows). Record each generation's truth.
	rows := append([][]int32{}, base...)
	allowed := make([]map[int64]bool, nProbes)
	for i := range allowed {
		allowed[i] = map[int64]bool{brute(rows, probes[i]): true}
	}
	totals := map[int64]bool{int64(len(rows)): true}
	const chunks = 4
	type chunk struct {
		appends [][]int32
		deletes [][]int32
	}
	plan := make([]chunk, chunks)
	for k := range plan {
		if k%2 == 0 { // delete chunk
			dels := make([][]int32, 0, 60)
			for j := 0; j < 60 && len(rows) > 0; j++ {
				i := rng.Intn(len(rows))
				dels = append(dels, rows[i])
				rows = append(rows[:i], rows[i+1:]...)
			}
			plan[k].deletes = dels
		} else {
			app := randomRows(rng, cards, 50, []int32{int32(k % cards[0])})
			plan[k].appends = app
			rows = append(rows, app...)
		}
		for i := range allowed {
			allowed[i][brute(rows, probes[i])] = true
		}
		totals[int64(len(rows))] = true
	}

	ds, err := NewDatasetFromValues(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	grandSpec := make(QuerySpec, len(cards))

	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(format string, args ...any) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				i := rng.Intn(nProbes)
				count, ok := cube.Query(probes[i])
				if !ok {
					count = 0
				}
				if !allowed[i][count] {
					fail("query %v = %d, not any generation's count %v", probes[i], count, allowed[i])
					return
				}
				if rng.Intn(8) == 0 {
					rows, exact, err := cube.Aggregate(grandSpec, AggregateOptions{})
					if err != nil || len(rows) != 1 || !exact {
						fail("aggregate: %d rows, exact=%v, err %v", len(rows), exact, err)
						return
					}
					if !totals[rows[0].Count] {
						fail("grand total %d, not any generation's size %v", rows[0].Count, totals)
						return
					}
				}
			}
		}(int64(w))
	}
	for _, c := range plan {
		if c.deletes != nil {
			if _, err := cube.Delete(c.deletes, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := cube.AppendValues(c.appends, nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := cube.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if g := cube.Generation(); g != chunks {
		t.Fatalf("generation = %d, want %d", g, chunks)
	}
}
