package ccubing

// Parallel-vs-sequential equivalence via the public API: for every engine,
// the cube computed with Workers > 1 must be cell-for-cell identical to the
// sequential cube, on both a skewed and a dependent relation (the two
// regimes where closed pruning and shard imbalance bite). Run under -race
// these tests also exercise the merging sink and worker pool for data races.

import (
	"fmt"
	"sort"
	"testing"
)

// parallelTestDatasets builds the skewed and dependent relations.
func parallelTestDatasets(t testing.TB) map[string]*Dataset {
	t.Helper()
	skewed, err := Synthetic(SyntheticConfig{T: 1500, Cards: []int{17, 9, 7, 5, 11}, Skew: 1.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dependent, err := Synthetic(SyntheticConfig{T: 1500, Cards: []int{17, 9, 7, 5, 11}, Skew: 0.6, Dependence: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Dataset{"skewed": skewed, "dependent": dependent}
}

// sortedCells canonicalizes a cell slice for comparison.
func sortedCells(cells []Cell) []Cell {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		for d := range a.Values {
			if a.Values[d] != b.Values[d] {
				return a.Values[d] < b.Values[d]
			}
		}
		return false
	})
	return cells
}

func diffCellSlices(t *testing.T, got, want []Cell) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	got, want = sortedCells(got), sortedCells(want)
	for i := range got {
		if got[i].Count != want[i].Count {
			t.Fatalf("cell %d: count %d, want %d (%v)", i, got[i].Count, want[i].Count, want[i].Values)
		}
		for d := range got[i].Values {
			if got[i].Values[d] != want[i].Values[d] {
				t.Fatalf("cell %d: values %v, want %v", i, got[i].Values, want[i].Values)
			}
		}
	}
}

// TestParallelMatchesSequential covers all seven engines in every mode they
// support.
func TestParallelMatchesSequential(t *testing.T) {
	type mode struct {
		alg    Algorithm
		closed bool
	}
	modes := []mode{
		{AlgMM, true}, {AlgMM, false},
		{AlgStar, true}, {AlgStar, false},
		{AlgStarArray, true}, {AlgStarArray, false},
		{AlgBUC, false},
		{AlgQCDFS, true},
		{AlgQCTree, true},
		{AlgOBBUC, true},
	}
	for dsName, ds := range parallelTestDatasets(t) {
		for _, m := range modes {
			for _, minsup := range []int64{1, 3} {
				opt := Options{MinSup: minsup, Closed: m.closed, Algorithm: m.alg}
				t.Run(fmt.Sprintf("%s/%v/closed=%v/minsup=%d", dsName, m.alg, m.closed, minsup), func(t *testing.T) {
					want, wantSt, err := ComputeCollect(ds, opt)
					if err != nil {
						t.Fatal(err)
					}
					popt := opt
					popt.Workers = 4
					got, gotSt, err := ComputeCollect(ds, popt)
					if err != nil {
						t.Fatal(err)
					}
					diffCellSlices(t, got, want)
					if gotSt.Cells != wantSt.Cells || gotSt.Bytes != wantSt.Bytes {
						t.Fatalf("stats cells=%d bytes=%d, want cells=%d bytes=%d",
							gotSt.Cells, gotSt.Bytes, wantSt.Cells, wantSt.Bytes)
					}
				})
			}
		}
	}
}

// TestParallelWithOrderStrategy checks the dimension-order permutation is
// still remapped correctly when the ordered table is cubed in parallel.
func TestParallelWithOrderStrategy(t *testing.T) {
	ds := parallelTestDatasets(t)["skewed"]
	for _, ord := range []OrderStrategy{OrderByCardinality, OrderByEntropy} {
		opt := Options{MinSup: 2, Closed: true, Algorithm: AlgStarArray, Order: ord}
		want, _, err := ComputeCollect(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = 3
		got, _, err := ComputeCollect(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		diffCellSlices(t, got, want)
	}
}

// TestParallelNativeMeasure checks native measure aggregation survives the
// parallel decomposition end to end.
func TestParallelNativeMeasure(t *testing.T) {
	ds := parallelTestDatasets(t)["skewed"]
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64(i%7) * 0.5
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{MinSup: 2, Algorithm: AlgBUC, Measure: MeasureSum},
		{MinSup: 2, Closed: true, Algorithm: AlgQCDFS, Measure: MeasureAvg},
	} {
		want, _, err := ComputeCollect(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = 4
		got, _, err := ComputeCollect(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		diffCellSlices(t, got, want)
		wantAux := map[string]float64{}
		for _, c := range want {
			wantAux[fmt.Sprint(c.Values)] = c.Aux
		}
		for _, c := range got {
			if w, ok := wantAux[fmt.Sprint(c.Values)]; !ok || c.Aux != w {
				t.Fatalf("cell %v: aux %g, want %g", c.Values, c.Aux, w)
			}
		}
	}
}

// TestPartitionedParallel checks the out-of-core driver with concurrent
// bucket cubing still matches the in-memory sequential cube.
func TestPartitionedParallel(t *testing.T) {
	for dsName, ds := range parallelTestDatasets(t) {
		opt := Options{MinSup: 2, Closed: true, Algorithm: AlgStarArray}
		want, _, err := ComputeCollect(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = 3
		var got []Cell
		_, err = ComputePartitioned(ds, opt, PartitionOptions{Dim: -1, Buckets: 5, TempDir: t.TempDir()}, func(c Cell) {
			vals := make([]int32, len(c.Values))
			copy(vals, c.Values)
			got = append(got, Cell{Values: vals, Count: c.Count})
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("%s: no cells", dsName)
		}
		diffCellSlices(t, got, want)
	}
}

// TestWorkersResolution pins the Workers semantics: 0 and 1 sequential,
// negative = NumCPU (observable only via identical results, so this is a
// smoke test over the boundary values).
func TestWorkersResolution(t *testing.T) {
	ds := parallelTestDatasets(t)["skewed"]
	opt := Options{MinSup: 2, Closed: true, Algorithm: AlgMM}
	want, _, err := ComputeCollect(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{-1, 0, 2, 16} {
		opt.Workers = w
		got, _, err := ComputeCollect(ds, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		diffCellSlices(t, got, want)
	}
}
