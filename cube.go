package ccubing

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/table"
)

// Cube is a materialized closed (iceberg) cube ready for serving: an
// immutable, concurrency-safe index over the closed cells that answers point
// and slice queries for ANY cell — closed or not — by resolving the cell to
// its closure (quotient-cube semantics, the lossless-compression property of
// the closed cube). Built by Materialize or loaded from a snapshot with
// LoadCube; safe for concurrent readers.
type Cube struct {
	store  *cubestore.Store
	names  []string
	dicts  []*table.Dict // nil when the cube was built from coded values
	minSup int64
	alg    Algorithm
	stats  Stats
}

// Materialize computes the closed iceberg cube of ds and freezes it into a
// queryable Cube. Options are interpreted as in Compute, except that Closed
// is implied (the closed cube is the lossless serving form; Options.Closed
// is ignored). A complex Measure is supported for every engine: engines
// without native measure aggregation get the AttachMeasure post-pass.
func Materialize(ds *Dataset, opt Options) (*Cube, error) {
	if ds == nil || ds.t == nil {
		return nil, fmt.Errorf("ccubing: nil dataset")
	}
	opt.Closed = true
	opt = opt.withDefaults()
	hasAux := opt.Measure != MeasureNone
	b := cubestore.NewBuilder(ds.NumDims(), hasAux)
	var st Stats
	if hasAux {
		kind := opt.Measure
		copt := opt
		copt.Measure = MeasureNone
		cells, cst, err := ComputeCollect(ds, copt)
		if err != nil {
			return nil, err
		}
		if err := AttachMeasure(ds, cells, kind); err != nil {
			return nil, err
		}
		for _, c := range cells {
			b.Add(c.Values, c.Count, c.Aux)
		}
		st = cst
	} else {
		cst, err := Compute(ds, opt, func(c Cell) { b.Add(c.Values, c.Count, 0) })
		if err != nil {
			return nil, err
		}
		st = cst
	}
	store, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("ccubing: materialize: %w", err)
	}
	cube := &Cube{
		store:  store,
		names:  append([]string(nil), ds.t.Names...),
		minSup: opt.MinSup,
		alg:    st.Algorithm,
		stats:  st,
	}
	if ds.dicts != nil {
		cube.dicts = make([]*table.Dict, len(ds.dicts))
		for d, dict := range ds.dicts {
			cube.dicts[d] = table.DictFromNames(dict.Names())
		}
	}
	return cube, nil
}

// NumDims returns the cube's dimensionality.
func (c *Cube) NumDims() int { return c.store.NumDims() }

// Names returns the dimension names (treat as read-only).
func (c *Cube) Names() []string { return c.names }

// NumCells returns the number of stored closed cells.
func (c *Cube) NumCells() int64 { return c.store.NumCells() }

// NumCuboids returns the number of non-empty cuboids (distinct
// fixed-dimension patterns) among the closed cells.
func (c *Cube) NumCuboids() int { return c.store.NumCuboids() }

// MinSup returns the iceberg threshold the cube was computed with: queries
// for cells below it miss.
func (c *Cube) MinSup() int64 { return c.minSup }

// Algorithm returns the engine that computed the cube (zero for loaded
// snapshots saved before computation metadata existed).
func (c *Cube) Algorithm() Algorithm { return c.alg }

// HasMeasure reports whether cells carry a complex-measure value.
func (c *Cube) HasMeasure() bool { return c.store.HasAux() }

// Labeled reports whether the cube carries dictionaries, i.e. was built from
// a labeled dataset (CSV or NewDataset) and answers queries by label.
func (c *Cube) Labeled() bool { return c.dicts != nil }

// Stats returns the build statistics (zero for loaded snapshots).
func (c *Cube) Stats() Stats { return c.stats }

// Bytes returns the approximate in-memory size of the cell store.
func (c *Cube) Bytes() int64 { return c.store.Bytes() }

// Query returns the count of an arbitrary cell (Star marks wildcard
// dimensions). The second result is false when the cell is empty or fell
// below the cube's iceberg threshold. Cost is bounded by binary-search
// probes of the covering cuboids — no base-relation rescan, no exponential
// tree walk. Safe for concurrent use. Like Lookup and Slice, it panics when
// vals does not have exactly NumDims entries (a shape bug, not a miss).
func (c *Cube) Query(vals []int32) (int64, bool) {
	return c.store.Query(vals)
}

// Lookup resolves an arbitrary cell to its closure: the most specific closed
// cell covering it, which carries the cell's own count (and measure value).
// ok is false when the cell is empty or below the iceberg threshold.
func (c *Cube) Lookup(vals []int32) (Cell, bool) {
	cc, ok := c.store.Lookup(vals)
	if !ok {
		return Cell{}, false
	}
	return Cell{Values: cc.Values, Count: cc.Count, Aux: cc.Aux}, true
}

// Slice visits every stored closed cell inside the sub-cube the query pins
// down (cells matching the bound values and fixing at least those
// dimensions). Return false from visit to stop early. Panics on wrong-arity
// vals, like Query.
func (c *Cube) Slice(vals []int32, visit func(Cell) bool) {
	c.store.Slice(vals, func(cc core.Cell) bool {
		return visit(Cell{Values: cc.Values, Count: cc.Count, Aux: cc.Aux})
	})
}

// Cells visits every stored closed cell (cuboid mask ascending, packed key
// ascending within a cuboid).
func (c *Cube) Cells(visit func(Cell) bool) {
	c.store.Walk(func(cc core.Cell) bool {
		return visit(Cell{Values: cc.Values, Count: cc.Count, Aux: cc.Aux})
	})
}

// ErrUnknownLabel reports a query label that never occurred in the relation
// the cube was built from; the queried cell is necessarily empty.
var ErrUnknownLabel = errors.New("unknown label")

// ParseCell maps one label per dimension ("*" = wildcard) to coded values
// for Query/Lookup/Slice. Unknown labels return an error wrapping
// ErrUnknownLabel; cubes built from coded values (no dictionaries) reject
// label queries outright.
func (c *Cube) ParseCell(labels []string) ([]int32, error) {
	if c.dicts == nil {
		return nil, fmt.Errorf("ccubing: cube has no dictionaries; query by coded values")
	}
	if len(labels) != c.NumDims() {
		return nil, fmt.Errorf("ccubing: cell has %d labels, want %d", len(labels), c.NumDims())
	}
	vals := make([]int32, len(labels))
	for d, s := range labels {
		if s == "*" {
			vals[d] = Star
			continue
		}
		code, ok := c.dicts[d].Lookup(s)
		if !ok {
			return nil, fmt.Errorf("ccubing: %w %q on dimension %s", ErrUnknownLabel, s, c.names[d])
		}
		vals[d] = code
	}
	return vals, nil
}

// Labels renders coded values as labels ("*" for Star). For cubes without
// dictionaries it falls back to decimal codes.
func (c *Cube) Labels(vals []int32) []string {
	out := make([]string, len(vals))
	for d, v := range vals {
		switch {
		case v == Star:
			out[d] = "*"
		case c.dicts != nil:
			out[d] = c.dicts[d].Name(v)
		default:
			out[d] = fmt.Sprintf("%d", v)
		}
	}
	return out
}

// QueryLabels is Query by dictionary labels ("*" = wildcard). Unknown labels
// are honest misses (the cell is empty), not errors; the error reports
// structural misuse (wrong arity, cube without dictionaries).
func (c *Cube) QueryLabels(labels []string) (int64, bool, error) {
	vals, err := c.ParseCell(labels)
	if err != nil {
		if errors.Is(err, ErrUnknownLabel) {
			return 0, false, nil
		}
		return 0, false, err
	}
	count, ok := c.Query(vals)
	return count, ok, nil
}

// Cube snapshot format: a metadata header (length-prefixed, CRC-protected)
// followed by the cell-store payload (internal/cubestore's versioned,
// checksummed snapshot). The header holds the iceberg threshold, computing
// algorithm, dimension names and, when present, the per-dimension
// dictionaries, so CSV-built cubes answer label queries after a round trip.
const cubeMagic = "CCUBE\x00\x00"

// CubeSnapshotVersion is the current Cube snapshot format version.
const CubeSnapshotVersion = 1

// Save writes a snapshot of the cube to w. Output is deterministic: saving,
// loading and saving again produces identical bytes.
func (c *Cube) Save(w io.Writer) error {
	var head bytes.Buffer
	putUvarint := func(v uint64) {
		var b [binary.MaxVarintLen64]byte
		head.Write(b[:binary.PutUvarint(b[:], v)])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		head.WriteString(s)
	}
	putUvarint(uint64(c.minSup))
	head.WriteByte(byte(c.alg))
	putUvarint(uint64(len(c.names)))
	for _, n := range c.names {
		putString(n)
	}
	if c.dicts == nil {
		head.WriteByte(0)
	} else {
		head.WriteByte(1)
		for _, d := range c.dicts {
			names := d.Names()
			putUvarint(uint64(len(names)))
			for _, n := range names {
				putString(n)
			}
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(cubeMagic); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	if err := bw.WriteByte(CubeSnapshotVersion); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	var b [binary.MaxVarintLen64]byte
	if _, err := bw.Write(b[:binary.PutUvarint(b[:], uint64(head.Len()))]); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	if _, err := bw.Write(head.Bytes()); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	binary.LittleEndian.PutUint32(b[:4], crc32.ChecksumIEEE(head.Bytes()))
	if _, err := bw.Write(b[:4]); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	return c.store.Save(w)
}

// LoadCube reads a snapshot written by Cube.Save, validating versions and
// checksums. The loaded cube answers queries identically to the saved one.
func LoadCube(r io.Reader) (*Cube, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(cubeMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("ccubing: load: %w", err)
	}
	if string(head[:len(cubeMagic)]) != cubeMagic {
		return nil, fmt.Errorf("ccubing: load: not a cube snapshot (magic %q)", head[:len(cubeMagic)])
	}
	if head[len(cubeMagic)] != CubeSnapshotVersion {
		return nil, fmt.Errorf("ccubing: load: unsupported snapshot version %d (want %d)", head[len(cubeMagic)], CubeSnapshotVersion)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: %w", err)
	}
	if hlen > 1<<30 {
		return nil, fmt.Errorf("ccubing: load: implausible header size %d", hlen)
	}
	// Chunked read: a corrupt length prefix fails on EOF instead of
	// pre-allocating the declared size.
	hbuf, err := cubestore.ReadAllChunked(br, int(hlen))
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(br, crcBytes[:]); err != nil {
		return nil, fmt.Errorf("ccubing: load: header checksum: %w", err)
	}
	if got, want := binary.LittleEndian.Uint32(crcBytes[:]), crc32.ChecksumIEEE(hbuf); got != want {
		return nil, fmt.Errorf("ccubing: load: header checksum mismatch (%#x != %#x)", got, want)
	}

	hr := bytes.NewReader(hbuf)
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(hr)
		if err != nil {
			return "", err
		}
		if n > uint64(hr.Len()) {
			return "", fmt.Errorf("string length %d exceeds header", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(hr, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	minSup, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	algByte, err := hr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	nd, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	if nd == 0 || nd > uint64(MaxDims) {
		return nil, fmt.Errorf("ccubing: load: %d dimensions out of range", nd)
	}
	cube := &Cube{minSup: int64(minSup), alg: Algorithm(algByte)}
	cube.names = make([]string, nd)
	for d := range cube.names {
		if cube.names[d], err = readString(); err != nil {
			return nil, fmt.Errorf("ccubing: load: names: %w", err)
		}
	}
	hasDicts, err := hr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	switch hasDicts {
	case 0:
	case 1:
		cube.dicts = make([]*table.Dict, nd)
		for d := range cube.dicts {
			n, err := binary.ReadUvarint(hr)
			if err != nil {
				return nil, fmt.Errorf("ccubing: load: dictionaries: %w", err)
			}
			// Each label costs at least one length byte, so a count beyond
			// the remaining header is corruption — reject before allocating.
			if n > uint64(hr.Len()) {
				return nil, fmt.Errorf("ccubing: load: dictionary %d: implausible label count %d", d, n)
			}
			names := make([]string, n)
			for i := range names {
				if names[i], err = readString(); err != nil {
					return nil, fmt.Errorf("ccubing: load: dictionaries: %w", err)
				}
			}
			cube.dicts[d] = table.DictFromNames(names)
		}
	default:
		return nil, fmt.Errorf("ccubing: load: bad dictionary flag %d", hasDicts)
	}
	store, err := cubestore.Load(br)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: %w", err)
	}
	if store.NumDims() != int(nd) {
		return nil, fmt.Errorf("ccubing: load: store has %d dimensions, header %d", store.NumDims(), nd)
	}
	cube.store = store
	cube.stats = Stats{Algorithm: cube.alg, Cells: store.NumCells()}
	return cube, nil
}

// FormatCell renders a cell with the cube's dictionaries, mirroring
// Dataset.FormatCell for serving-side output.
func (c *Cube) FormatCell(cell Cell) string {
	var b bytes.Buffer
	b.WriteByte('(')
	for d, s := range c.Labels(cell.Values) {
		if d > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s)
	}
	fmt.Fprintf(&b, " : %d)", cell.Count)
	return b.String()
}
