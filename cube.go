package ccubing

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/engine"
	"ccubing/internal/qcache"
	"ccubing/internal/refresh"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Cube is a materialized closed (iceberg) cube ready for serving: a
// concurrency-safe index over the closed cells that answers point and slice
// queries for ANY cell — closed or not — by resolving the cell to its
// closure (quotient-cube semantics, the lossless-compression property of the
// closed cube). Built by Materialize or loaded from a snapshot with
// LoadCube; safe for concurrent readers.
//
// A materialized cube is live: it keeps its source relation and accepts
// appended tuples (Append, AppendValues, AppendNDJSON) that fold in on
// Refresh — or automatically, see AutoRefresh — by recomputing only the
// partitions the delta touched and publishing the rebuilt store with an
// atomic snapshot swap. Queries in flight during a refresh finish on the old
// store; each answer is always consistent with exactly one generation of the
// relation. Snapshot-loaded cubes are static (Refreshable reports false).
type Cube struct {
	names   []string
	minSup  int64
	alg     Algorithm
	measure MeasureKind
	// auxStored reports that cell aux values are stored aggregates (avg as
	// the running sum, divided at query egress). False only for legacy
	// snapshots (version <= 3), whose avg cells hold the presented mean.
	auxStored bool
	stats     Stats
	mgr     *refresh.Manager                 // live cubes: owns the serving snapshot
	static  atomic.Pointer[refresh.Snapshot] // snapshot-loaded cubes
	// cache memoizes query results keyed by (generation, normalized query);
	// a refresh bumps the generation, so stale answers are unreachable and
	// age out of the LRU. Nil when caching is disabled (SetQueryCache(0)).
	cache atomic.Pointer[qcache.Cache]
}

// DefaultQueryCacheEntries is the query-result cache capacity cubes start
// with; SetQueryCache resizes or disables it.
const DefaultQueryCacheEntries = 4096

// SetQueryCache resizes the cube's query-result cache to hold up to n entries
// (point lookups and aggregate results); n <= 0 disables caching. The cache
// is replaced wholesale, dropping cached entries and resetting hit/miss
// counters. Safe to call concurrently with queries.
func (c *Cube) SetQueryCache(n int) { c.cache.Store(qcache.New(n)) }

// QueryCacheMetrics reports the cumulative hit and miss counts of the current
// query-result cache; zeros when caching is disabled.
func (c *Cube) QueryCacheMetrics() (hits, misses int64) {
	return c.cache.Load().Metrics()
}

// QueryCacheEvictions reports the cumulative capacity evictions of the
// current query-result cache; zero when caching is disabled.
func (c *Cube) QueryCacheEvictions() int64 {
	return c.cache.Load().Evictions()
}

// snap returns the current serving snapshot with one atomic load. Every
// query method loads it exactly once, so one answer never mixes generations.
func (c *Cube) snap() *refresh.Snapshot {
	if c.mgr != nil {
		return c.mgr.Snapshot()
	}
	return c.static.Load()
}

// Materialize computes the closed iceberg cube of ds and freezes it into a
// queryable Cube. Options are interpreted as in Compute, except that Closed
// is implied (the closed cube is the lossless serving form; Options.Closed
// is ignored). A complex Measure is supported for every engine: the native
// engines (every Algorithm AlgAuto selects) aggregate it during the cubing
// pass itself — one scan, avg stored as the algebraic (sum, count) pair —
// and the remaining baselines fall back to the AttachMeasure post-pass,
// which fills the identical stored aggregates.
//
// A cube materialized with MinSup > 1 additionally carries the residual
// summary of the pruned mass (one scan of the relation), so Aggregate
// answers exactly — not as a lower bound — at any threshold.
func Materialize(ds *Dataset, opt Options) (*Cube, error) {
	if ds == nil || ds.t == nil {
		return nil, fmt.Errorf("ccubing: nil dataset")
	}
	opt.Closed = true
	opt = opt.withDefaults()
	hasAux := opt.Measure != MeasureNone
	native := hasAux && nativeMeasureAlg(ds, opt)
	b := cubestore.NewBuilder(ds.NumDims(), hasAux)
	var st Stats
	if hasAux && !native {
		// Fallback for engines without native measure aggregation: count-only
		// compute, then the AttachMeasure post-pass (which fills the same
		// stored aggregates the native path emits).
		kind := opt.Measure
		copt := opt
		copt.Measure = MeasureNone
		cells, cst, err := ComputeCollect(ds, copt)
		if err != nil {
			return nil, err
		}
		if err := AttachMeasure(ds, cells, kind); err != nil {
			return nil, err
		}
		for _, c := range cells {
			b.Add(c.Values, c.Count, c.Aux)
		}
		st = cst
	} else {
		plan, err := planCompute(ds, opt)
		if err != nil {
			return nil, err
		}
		st.Algorithm = plan.alg
		cellBytes := int64(4*ds.NumDims()) + 8
		if hasAux {
			cellBytes += 8
		}
		start := time.Now()
		if plan.identity() {
			// Zero-copy path: cells arrive in dataset dimension order, so the
			// engine (and, under Workers>1, the merger's batched flushes) feed
			// the store builder directly — no per-cell callback or remap.
			// Native measure aggregates ride along in stored form.
			bs := &cubestore.BuilderSink{B: b}
			if err := plan.run(bs); err != nil {
				return nil, err
			}
			st.Cells = bs.Cells
		} else {
			// Reordered dimensions: remap positions, still keeping measure
			// aggregates in stored form (presentation happens at query egress).
			ss := &storeSink{b: b, perm: plan.perm, scratch: make([]core.Value, ds.NumDims())}
			if err := plan.run(ss); err != nil {
				return nil, err
			}
			st.Cells = ss.cells
		}
		st.Bytes = st.Cells * cellBytes
		st.Elapsed = time.Since(start)
	}
	if opt.MinSup > 1 {
		// The residual summary of the iceberg-pruned mass: what Aggregate
		// needs to answer exactly below the threshold.
		var auxCol []float64
		if hasAux {
			auxCol = ds.t.Aux
		}
		if err := b.SetResidual(cubestore.ComputeResidual(ds.t.Cols, auxCol, opt.MinSup, opt.Measure)); err != nil {
			return nil, fmt.Errorf("ccubing: materialize: %w", err)
		}
	}
	store, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("ccubing: materialize: %w", err)
	}
	cube := &Cube{
		names:     append([]string(nil), ds.t.Names...),
		minSup:    opt.MinSup,
		alg:       st.Algorithm,
		measure:   opt.Measure,
		auxStored: true,
		stats:     st,
	}
	cube.cache.Store(qcache.New(DefaultQueryCacheEntries))
	var dicts []*table.Dict
	if ds.dicts != nil {
		dicts = make([]*table.Dict, len(ds.dicts))
		for d, dict := range ds.dicts {
			dicts[d] = table.DictFromNames(dict.Names())
		}
	}
	// Attach the live-refresh manager: the cube keeps the relation so appends
	// can fold in incrementally. The refresh recompute reuses the engine the
	// build resolved to, with measures aggregated natively when the engine
	// supports it (the AttachMeasure post-pass remains the fallback), so a
	// refreshed store is byte-identical to a from-scratch rebuild.
	ropt := opt
	if !native {
		ropt.Measure = MeasureNone
	}
	eng, ecfg, err := resolveEngine(ds, ropt, st.Algorithm)
	if err != nil {
		return nil, err
	}
	mcfg := refresh.Config{
		Eng:     eng,
		ECfg:    ecfg,
		Workers: resolveWorkers(opt.Workers),
		Measure: opt.Measure,
	}
	if hasAux && !native {
		kind := opt.Measure
		mcfg.AttachAux = func(t *table.Table, cells []core.Cell) error {
			return attachMeasureCore(t, cells, kind)
		}
	}
	cube.mgr, err = refresh.NewManager(ds.t, store, dicts, mcfg)
	if err != nil {
		return nil, fmt.Errorf("ccubing: materialize: %w", err)
	}
	return cube, nil
}

// nativeMeasureAlg reports whether the engine opt resolves to aggregates the
// measure natively (during the cubing pass, via sink.AuxSink) — the condition
// for Materialize to skip the AttachMeasure post-pass.
func nativeMeasureAlg(ds *Dataset, opt Options) bool {
	if ds.t.Aux == nil {
		return false
	}
	alg := opt.Algorithm
	if alg == AlgAuto {
		alg = Advise(ds, opt.MinSup, opt.Closed)
	}
	eng, ok := engine.Lookup(alg.String())
	return ok && eng.Capabilities().NativeMeasure
}

// storeSink feeds engine output into a store builder, remapping reordered
// dimension positions. Measure aggregates pass through in stored form (avg as
// the running sum) — presentation happens at query egress, never at rest.
type storeSink struct {
	b       *cubestore.Builder
	perm    []int
	scratch []core.Value
	cells   int64
}

func (s *storeSink) Emit(vals []core.Value, count int64) { s.EmitAux(vals, count, 0) }

func (s *storeSink) EmitAux(vals []core.Value, count int64, aux float64) {
	for i, v := range vals {
		s.scratch[s.perm[i]] = v
	}
	s.b.Add(s.scratch, count, aux)
	s.cells++
}

// EmitBatch keeps the parallel merger's batched flushes on the batch
// interface; each cell still pays the remap.
func (s *storeSink) EmitBatch(arena []core.Value, cells []sink.BatchCell) {
	for _, c := range cells {
		s.EmitAux(arena[c.Off:c.Off+c.Width], c.Count, c.Aux)
	}
}

// NumDims returns the cube's dimensionality.
func (c *Cube) NumDims() int { return len(c.names) }

// Names returns the dimension names (treat as read-only).
func (c *Cube) Names() []string { return c.names }

// NumCells returns the number of stored closed cells.
func (c *Cube) NumCells() int64 { return c.snap().Store.NumCells() }

// NumCuboids returns the number of non-empty cuboids (distinct
// fixed-dimension patterns) among the closed cells.
func (c *Cube) NumCuboids() int { return c.snap().Store.NumCuboids() }

// MinSup returns the iceberg threshold the cube was computed with: queries
// for cells below it miss.
func (c *Cube) MinSup() int64 { return c.minSup }

// Algorithm returns the engine that computed the cube (zero for loaded
// snapshots saved before computation metadata existed).
func (c *Cube) Algorithm() Algorithm { return c.alg }

// HasMeasure reports whether cells carry a complex-measure value.
func (c *Cube) HasMeasure() bool { return c.snap().Store.HasAux() }

// Measure returns the kind of the complex measure the cube was materialized
// with (MeasureNone when the cube has none, or for snapshots saved before
// the measure kind was recorded). Distributed serving needs it: a router can
// only merge per-shard measure values when it knows how they combine.
func (c *Cube) Measure() MeasureKind { return c.measure }

// AuxStored reports whether the cube's measure values are held in stored
// (mergeable) form — running sums on avg cubes — and presented only at query
// egress. False only for legacy snapshots (format < 4) whose avg cells hold
// the already-presented mean; those values cannot be recombined across
// shards, so a router falls back to routing instead of merging them.
func (c *Cube) AuxStored() bool { return c.auxStored }

// Labeled reports whether the cube carries dictionaries, i.e. was built from
// a labeled dataset (CSV or NewDataset) and answers queries by label.
func (c *Cube) Labeled() bool { return c.snap().Dicts != nil }

// Stats returns the statistics of the initial build (zero for loaded
// snapshots); refreshes do not update it — see RefreshMetrics.
func (c *Cube) Stats() Stats { return c.stats }

// Bytes returns the approximate in-memory size of the cell store.
func (c *Cube) Bytes() int64 { return c.snap().Store.Bytes() }

// Query returns the count of an arbitrary cell (Star marks wildcard
// dimensions). The second result is false when the cell is empty or fell
// below the cube's iceberg threshold. Cost is bounded by binary-search
// probes of the covering cuboids — no base-relation rescan, no exponential
// tree walk. Safe for concurrent use. Like Lookup and Slice, it panics when
// vals does not have exactly NumDims entries (a shape bug, not a miss).
//
//ccubing:hotpath
func (c *Cube) Query(vals []int32) (int64, bool) {
	st := c.snap()
	qc := c.cache.Load()
	if qc == nil {
		start := time.Now()
		n, ok := st.Store.Query(vals)
		probeSeconds.Observe(time.Since(start))
		return n, ok
	}
	e := cachedLookup(qc, st, vals)
	return e.count, e.ok
}

// Lookup resolves an arbitrary cell to its closure: the most specific closed
// cell covering it, which carries the cell's own count (and measure value).
// ok is false when the cell is empty or below the iceberg threshold.
func (c *Cube) Lookup(vals []int32) (Cell, bool) {
	cell, ok := c.LookupStored(vals)
	if ok {
		cell.Aux = c.presentAux(cell.Aux, cell.Count)
	}
	return cell, ok
}

// LookupStored is Lookup without measure presentation: the returned Aux is
// the stored mergeable aggregate (the running sum on avg cubes) rather than
// the user-facing value. Shard routers combine per-shard stored values
// exactly and present once after the merge; everything else wants Lookup.
func (c *Cube) LookupStored(vals []int32) (Cell, bool) {
	st := c.snap()
	qc := c.cache.Load()
	if qc == nil {
		start := time.Now()
		cc, ok := st.Store.Lookup(vals)
		probeSeconds.Observe(time.Since(start))
		if !ok {
			return Cell{}, false
		}
		return Cell{Values: cc.Values, Count: cc.Count, Aux: cc.Aux}, true
	}
	e := cachedLookup(qc, st, vals)
	if !e.ok {
		return Cell{}, false
	}
	// Hits hand out a copy: the cached closure values are shared by every
	// future hit of this entry and must stay immutable.
	return Cell{Values: append([]int32(nil), e.vals...), Count: e.count, Aux: e.aux}, true
}

// PresentAux converts a stored measure aggregate — a LookupStored result, or
// an AuxAgg-sum aggregate over an avg cube — to the user-facing value: the
// mean on avg cubes with stored aggregates, the value itself otherwise.
func (c *Cube) PresentAux(aux float64, count int64) float64 {
	return c.presentAux(aux, count)
}

// presentAux converts a stored measure aggregate to the user-facing value at
// query egress: avg divides the stored sum by the count; every other kind is
// already presented. Legacy snapshots (auxStored false) hold presented values
// at rest and pass through.
func (c *Cube) presentAux(aux float64, count int64) float64 {
	if c.auxStored && c.measure == MeasureAvg {
		return core.Present(core.MeasureAvg, aux, count)
	}
	return aux
}

// Cache key kinds, one per query form sharing the cache.
const (
	cacheKindLookup = 1 // point query / closure lookup, payload = packed cell values
	cacheKindAgg    = 2 // aggregate query, payload = normalized spec + options
)

// lookupEntry is the cached resolution of one cell: its closure (values,
// count, measure) or a definitive miss. Both Query and Lookup share it — a
// cell queried then looked up costs one store probe, not two.
type lookupEntry struct {
	vals  []int32 // closure values; nil on miss
	count int64
	aux   float64
	ok    bool
}

// cacheKey starts a cache key: generation, kind byte, then the caller's
// payload. The generation prefix is the invalidation mechanism — refreshed
// cubes never see pre-refresh entries.
func cacheKey(gen uint64, kind byte, payload int) []byte {
	key := make([]byte, 0, 9+payload)
	key = binary.BigEndian.AppendUint64(key, gen)
	return append(key, kind)
}

// cachedLookup resolves vals through the cache, filling on miss. Negative
// answers are cached too: an empty cell stays empty for the generation.
func cachedLookup(qc *qcache.Cache, st *refresh.Snapshot, vals []int32) lookupEntry {
	start := time.Now()
	key := cacheKey(st.Generation, cacheKindLookup, 4*len(vals))
	for _, v := range vals {
		key = binary.BigEndian.AppendUint32(key, uint32(v))
	}
	if v, hit := qc.Get(key); hit {
		cacheHitSeconds.Observe(time.Since(start))
		return v.(lookupEntry)
	}
	pstart := time.Now()
	cc, ok := st.Store.Lookup(vals)
	probeSeconds.Observe(time.Since(pstart))
	e := lookupEntry{count: cc.Count, aux: cc.Aux, ok: ok}
	if ok {
		e.vals = cc.Values
	}
	qc.Put(key, e)
	return e
}

// Slice visits every stored closed cell inside the sub-cube the query pins
// down (cells matching the bound values and fixing at least those
// dimensions). Return false from visit to stop early. Panics on wrong-arity
// vals, like Query.
func (c *Cube) Slice(vals []int32, visit func(Cell) bool) {
	c.snap().Store.Slice(vals, func(cc core.Cell) bool {
		return visit(Cell{Values: cc.Values, Count: cc.Count, Aux: c.presentAux(cc.Aux, cc.Count)})
	})
}

// Cells visits every stored closed cell (cuboid mask ascending, packed key
// ascending within a cuboid).
func (c *Cube) Cells(visit func(Cell) bool) {
	c.snap().Store.Walk(func(cc core.Cell) bool {
		return visit(Cell{Values: cc.Values, Count: cc.Count, Aux: c.presentAux(cc.Aux, cc.Count)})
	})
}

// ErrUnknownLabel reports a query label that never occurred in the relation
// the cube was built from; the queried cell is necessarily empty.
var ErrUnknownLabel = errors.New("unknown label")

// ParseCell maps one label per dimension ("*" = wildcard) to coded values
// for Query/Lookup/Slice. Unknown labels return an error wrapping
// ErrUnknownLabel; cubes built from coded values (no dictionaries) reject
// label queries outright.
func (c *Cube) ParseCell(labels []string) ([]int32, error) {
	return c.parseCell(c.snap(), labels)
}

func (c *Cube) parseCell(st *refresh.Snapshot, labels []string) ([]int32, error) {
	if st.Dicts == nil {
		return nil, fmt.Errorf("ccubing: cube has no dictionaries; query by coded values")
	}
	if len(labels) != c.NumDims() {
		return nil, fmt.Errorf("ccubing: cell has %d labels, want %d", len(labels), c.NumDims())
	}
	vals := make([]int32, len(labels))
	for d, s := range labels {
		if s == "*" {
			vals[d] = Star
			continue
		}
		code, ok := st.Dicts[d].Lookup(s)
		if !ok {
			return nil, fmt.Errorf("ccubing: %w %q on dimension %s", ErrUnknownLabel, s, c.names[d])
		}
		vals[d] = code
	}
	return vals, nil
}

// Labels renders coded values as labels ("*" for Star). For cubes without
// dictionaries it falls back to decimal codes.
func (c *Cube) Labels(vals []int32) []string {
	return labelsWith(c.snap(), vals)
}

func labelsWith(st *refresh.Snapshot, vals []int32) []string {
	out := make([]string, len(vals))
	for d, v := range vals {
		switch {
		case v == Star:
			out[d] = "*"
		case st.Dicts != nil:
			out[d] = st.Dicts[d].Name(v)
		default:
			out[d] = fmt.Sprintf("%d", v)
		}
	}
	return out
}

// QueryLabels is Query by dictionary labels ("*" = wildcard). Unknown labels
// are honest misses (the cell is empty), not errors; the error reports
// structural misuse (wrong arity, cube without dictionaries).
func (c *Cube) QueryLabels(labels []string) (int64, bool, error) {
	st := c.snap()
	vals, err := c.parseCell(st, labels)
	if err != nil {
		if errors.Is(err, ErrUnknownLabel) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if qc := c.cache.Load(); qc != nil {
		e := cachedLookup(qc, st, vals)
		return e.count, e.ok, nil
	}
	count, ok := st.Store.Query(vals)
	return count, ok, nil
}

// Cube snapshot format: a metadata header (length-prefixed, CRC-protected)
// followed by the cell-store payload (internal/cubestore's versioned,
// checksummed snapshot, which carries the iceberg residual when the store
// has one). The header holds the iceberg threshold, computing algorithm, the
// measure kind and aux form (version 4 — whether avg cells hold the stored
// running sum or, in legacy snapshots, the presented mean; version 3
// recorded only the kind, needed by routers to merge scatter-gather
// answers), the refresh generation and source-row count (version 2 — used
// to validate warm snapshot reloads), dimension names and, when present,
// the per-dimension dictionaries, so CSV-built cubes answer label queries
// after a round trip.
const cubeMagic = "CCUBE\x00\x00"

// CubeSnapshotVersion is the current Cube snapshot format version. Version 1
// (no generation / source-row metadata), version 2 (no measure kind) and
// version 3 (no aux-form flag, no store residual) snapshots still load.
const CubeSnapshotVersion = 4

// Save writes a snapshot of the cube to w. Output is deterministic: saving,
// loading and saving again produces identical bytes. The snapshot captures
// the current serving state — a cube saved after a refresh records the
// refreshed cells, generation and row count.
func (c *Cube) Save(w io.Writer) error {
	st := c.snap()
	var head bytes.Buffer
	putUvarint := func(v uint64) {
		var b [binary.MaxVarintLen64]byte
		head.Write(b[:binary.PutUvarint(b[:], v)])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		head.WriteString(s)
	}
	putUvarint(uint64(c.minSup))
	head.WriteByte(byte(c.alg))
	head.WriteByte(byte(c.measure))
	if c.auxStored {
		head.WriteByte(1)
	} else {
		head.WriteByte(0)
	}
	putUvarint(st.Generation)
	putUvarint(uint64(st.Rows))
	putUvarint(uint64(len(c.names)))
	for _, n := range c.names {
		putString(n)
	}
	if st.Dicts == nil {
		head.WriteByte(0)
	} else {
		head.WriteByte(1)
		for _, d := range st.Dicts {
			names := d.Names()
			putUvarint(uint64(len(names)))
			for _, n := range names {
				putString(n)
			}
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(cubeMagic); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	if err := bw.WriteByte(CubeSnapshotVersion); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	var b [binary.MaxVarintLen64]byte
	if _, err := bw.Write(b[:binary.PutUvarint(b[:], uint64(head.Len()))]); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	if _, err := bw.Write(head.Bytes()); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	binary.LittleEndian.PutUint32(b[:4], crc32.ChecksumIEEE(head.Bytes()))
	if _, err := bw.Write(b[:4]); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ccubing: save: %w", err)
	}
	return st.Store.Save(w)
}

// LoadCube reads a snapshot written by Cube.Save, validating versions and
// checksums. The loaded cube answers queries identically to the saved one.
func LoadCube(r io.Reader) (*Cube, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(cubeMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("ccubing: load: %w", err)
	}
	if string(head[:len(cubeMagic)]) != cubeMagic {
		return nil, fmt.Errorf("ccubing: load: not a cube snapshot (magic %q)", head[:len(cubeMagic)])
	}
	version := head[len(cubeMagic)]
	if version < 1 || version > CubeSnapshotVersion {
		return nil, fmt.Errorf("ccubing: load: unsupported snapshot version %d (want 1..%d)", version, CubeSnapshotVersion)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: %w", err)
	}
	if hlen > 1<<30 {
		return nil, fmt.Errorf("ccubing: load: implausible header size %d", hlen)
	}
	// Chunked read: a corrupt length prefix fails on EOF instead of
	// pre-allocating the declared size.
	hbuf, err := cubestore.ReadAllChunked(br, int(hlen))
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(br, crcBytes[:]); err != nil {
		return nil, fmt.Errorf("ccubing: load: header checksum: %w", err)
	}
	if got, want := binary.LittleEndian.Uint32(crcBytes[:]), crc32.ChecksumIEEE(hbuf); got != want {
		return nil, fmt.Errorf("ccubing: load: header checksum mismatch (%#x != %#x)", got, want)
	}

	hr := bytes.NewReader(hbuf)
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(hr)
		if err != nil {
			return "", err
		}
		if n > uint64(hr.Len()) {
			return "", fmt.Errorf("string length %d exceeds header", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(hr, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	minSup, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	algByte, err := hr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	// Version 3 adds the measure kind; older snapshots load as MeasureNone
	// (their cells still carry aux values — only the combining rule is
	// unknown, which matters to scatter-gather merging, not local serving).
	var measure MeasureKind
	var auxStored bool
	if version >= 3 {
		mb, err := hr.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("ccubing: load: header: %w", err)
		}
		if MeasureKind(mb) > MeasureAvg {
			return nil, fmt.Errorf("ccubing: load: unknown measure kind %d", mb)
		}
		measure = MeasureKind(mb)
	}
	// Version 4 adds the aux form. Older avg snapshots hold the presented
	// mean at rest, so egress must not divide again — auxStored stays false.
	if version >= 4 {
		fb, err := hr.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("ccubing: load: header: %w", err)
		}
		if fb > 1 {
			return nil, fmt.Errorf("ccubing: load: bad aux-form flag %d", fb)
		}
		auxStored = fb == 1
	}
	// Version 2 adds the refresh generation and the source relation's row
	// count (warm-reload validation metadata); version 1 predates both.
	var generation, rows uint64
	if version >= 2 {
		if generation, err = binary.ReadUvarint(hr); err != nil {
			return nil, fmt.Errorf("ccubing: load: header: %w", err)
		}
		if rows, err = binary.ReadUvarint(hr); err != nil {
			return nil, fmt.Errorf("ccubing: load: header: %w", err)
		}
	}
	nd, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	if nd == 0 || nd > uint64(MaxDims) {
		return nil, fmt.Errorf("ccubing: load: %d dimensions out of range", nd)
	}
	cube := &Cube{minSup: int64(minSup), alg: Algorithm(algByte), measure: measure, auxStored: auxStored}
	cube.cache.Store(qcache.New(DefaultQueryCacheEntries))
	cube.names = make([]string, nd)
	for d := range cube.names {
		if cube.names[d], err = readString(); err != nil {
			return nil, fmt.Errorf("ccubing: load: names: %w", err)
		}
	}
	hasDicts, err := hr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: header: %w", err)
	}
	var dicts []*table.Dict
	switch hasDicts {
	case 0:
	case 1:
		dicts = make([]*table.Dict, nd)
		for d := range dicts {
			n, err := binary.ReadUvarint(hr)
			if err != nil {
				return nil, fmt.Errorf("ccubing: load: dictionaries: %w", err)
			}
			// Each label costs at least one length byte, so a count beyond
			// the remaining header is corruption — reject before allocating.
			if n > uint64(hr.Len()) {
				return nil, fmt.Errorf("ccubing: load: dictionary %d: implausible label count %d", d, n)
			}
			names := make([]string, n)
			for i := range names {
				if names[i], err = readString(); err != nil {
					return nil, fmt.Errorf("ccubing: load: dictionaries: %w", err)
				}
			}
			dicts[d] = table.DictFromNames(names)
		}
	default:
		return nil, fmt.Errorf("ccubing: load: bad dictionary flag %d", hasDicts)
	}
	store, err := cubestore.Load(br)
	if err != nil {
		return nil, fmt.Errorf("ccubing: load: %w", err)
	}
	if store.NumDims() != int(nd) {
		return nil, fmt.Errorf("ccubing: load: store has %d dimensions, header %d", store.NumDims(), nd)
	}
	cube.static.Store(&refresh.Snapshot{
		Store:      store,
		Dicts:      dicts,
		Generation: generation,
		Rows:       int64(rows),
	})
	cube.stats = Stats{Algorithm: cube.alg, Cells: store.NumCells()}
	return cube, nil
}

// PredOp discriminates the per-dimension predicate forms of a QuerySpec.
type PredOp int

const (
	// PredAny matches every value (wildcard dimension).
	PredAny PredOp = iota
	// PredEq matches exactly Value.
	PredEq
	// PredRange matches coded values in the inclusive interval [Lo, Hi].
	PredRange
	// PredIn matches any coded value in Set; an empty set matches nothing.
	PredIn
)

// Predicate constrains one dimension of a sub-cube selection.
type Predicate struct {
	Op     PredOp
	Value  int32   // PredEq
	Lo, Hi int32   // PredRange, inclusive
	Set    []int32 // PredIn
}

// QuerySpec is a conjunctive sub-cube selection: one predicate per dimension,
// the cube algebra's sub-cube operation (predicates over dimensions) rather
// than a single cell. Build one directly or parse it with Cube.ParseSpec.
type QuerySpec []Predicate

// OrderBy ranks aggregate rows for top-k truncation.
type OrderBy int

const (
	// ByCount ranks by aggregated count, descending.
	ByCount OrderBy = iota
	// ByAux ranks by the aggregated measure value, descending.
	ByAux
)

// AggregateOptions configures Cube.Aggregate.
type AggregateOptions struct {
	// GroupBy lists dimensions (by name, or decimal index for nameless data)
	// whose value combinations form the result rows; empty computes one
	// grand-total row under the predicates.
	GroupBy []string
	// TopK keeps only the k best rows by By; 0 keeps every group.
	TopK int
	// By picks the top-k ranking measure.
	By OrderBy
	// AuxAgg picks how measure values combine across a group: MeasureSum,
	// MeasureMin, MeasureMax, or MeasureAvg — the last only on cubes
	// materialized with MeasureAvg, whose cells store the algebraic
	// (sum, count) pair: group sums are added and divided by the group count.
	// MeasureNone defaults to the combiner matching the cube's own measure
	// (avg for avg cubes, sum otherwise). It must match the measure the cube
	// was materialized with for the aggregated Aux to be meaningful.
	AuxAgg MeasureKind
}

// ParseOrderBy resolves the ranking names shared by the serving surfaces
// (ccserve's order_by, ccube's -by): "count" (or empty) and "aux" (alias
// "measure").
func ParseOrderBy(s string) (OrderBy, error) {
	switch s {
	case "", "count":
		return ByCount, nil
	case "aux", "measure":
		return ByAux, nil
	}
	return ByCount, fmt.Errorf("ccubing: unknown order-by %q (want count or aux)", s)
}

// ParseAuxAgg resolves the measure-combiner names shared by the serving
// surfaces: "sum", "min", "max" and "avg" (empty defaults to the cube's own
// measure combiner — see AggregateOptions.AuxAgg).
func ParseAuxAgg(s string) (MeasureKind, error) {
	switch s {
	case "":
		return MeasureNone, nil
	case "sum":
		return MeasureSum, nil
	case "min":
		return MeasureMin, nil
	case "max":
		return MeasureMax, nil
	case "avg":
		return MeasureAvg, nil
	}
	return MeasureNone, fmt.Errorf("ccubing: unknown aux-agg %q (want sum, min, max or avg)", s)
}

// ParseSpec builds a QuerySpec from one component per dimension, label-aware
// for cubes with dictionaries and coded otherwise:
//
//	"*" or ""       wildcard
//	"v"             exact value
//	"lo..hi"        inclusive range — numeric on coded cubes, lexicographic
//	                over dictionary labels on labeled cubes
//	"a|b|c"         value set
//
// Unknown labels are honest misses, not errors: they resolve to predicates
// matching nothing (the cell set is provably empty), mirroring QueryLabels.
// Labels containing "|" or ".." cannot be expressed in this syntax; build the
// QuerySpec directly for those.
func (c *Cube) ParseSpec(components []string) (QuerySpec, error) {
	if len(components) != c.NumDims() {
		return nil, fmt.Errorf("ccubing: spec has %d components, want %d", len(components), c.NumDims())
	}
	st := c.snap()
	spec := make(QuerySpec, len(components))
	for d, comp := range components {
		p, err := c.parsePred(st, d, comp)
		if err != nil {
			return nil, err
		}
		spec[d] = p
	}
	return spec, nil
}

func (c *Cube) parsePred(st *refresh.Snapshot, d int, comp string) (Predicate, error) {
	switch {
	case comp == "*" || comp == "":
		return Predicate{Op: PredAny}, nil
	case strings.Contains(comp, ".."):
		parts := strings.SplitN(comp, "..", 2)
		lo, hi := parts[0], parts[1]
		if st.Dicts == nil {
			l, err1 := parseCode(lo)
			h, err2 := parseCode(hi)
			if err1 != nil || err2 != nil {
				return Predicate{}, fmt.Errorf("ccubing: bad range %q on dimension %s", comp, c.names[d])
			}
			return Predicate{Op: PredRange, Lo: l, Hi: h}, nil
		}
		// Labeled: a lexicographic label interval resolves to the set of
		// dictionary codes whose label falls inside it (dictionary codes are
		// assigned in first-occurrence order, so a code range is meaningless).
		var set []int32
		for code, name := range st.Dicts[d].Names() {
			if name >= lo && name <= hi {
				set = append(set, int32(code))
			}
		}
		return Predicate{Op: PredIn, Set: set}, nil
	case strings.Contains(comp, "|"):
		var set []int32
		for _, part := range strings.Split(comp, "|") {
			if st.Dicts == nil {
				v, err := parseCode(part)
				if err != nil {
					return Predicate{}, fmt.Errorf("ccubing: bad value %q on dimension %s", part, c.names[d])
				}
				set = append(set, v)
			} else if code, ok := st.Dicts[d].Lookup(part); ok {
				set = append(set, code) // unknown labels match nothing: drop
			}
		}
		return Predicate{Op: PredIn, Set: set}, nil
	default:
		if st.Dicts == nil {
			v, err := parseCode(comp)
			if err != nil {
				return Predicate{}, fmt.Errorf("ccubing: bad value %q on dimension %s", comp, c.names[d])
			}
			return Predicate{Op: PredEq, Value: v}, nil
		}
		code, ok := st.Dicts[d].Lookup(comp)
		if !ok {
			return Predicate{Op: PredIn}, nil // empty set: provably empty
		}
		return Predicate{Op: PredEq, Value: code}, nil
	}
}

// parseCode parses a non-negative coded dimension value.
func parseCode(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad coded value %q", s)
	}
	return int32(v), nil
}

// storeSpec validates a QuerySpec and lowers it to the store's form.
func (c *Cube) storeSpec(spec QuerySpec) (cubestore.Spec, error) {
	if len(spec) != c.NumDims() {
		return cubestore.Spec{}, fmt.Errorf("ccubing: spec has %d predicates, want %d", len(spec), c.NumDims())
	}
	out := cubestore.Spec{Preds: make([]cubestore.Pred, len(spec))}
	for d, p := range spec {
		sp := cubestore.Pred{Val: p.Value, Lo: p.Lo, Hi: p.Hi, Set: p.Set}
		switch p.Op {
		case PredAny:
			sp.Kind = cubestore.PredAny
		case PredEq:
			sp.Kind = cubestore.PredEq
		case PredRange:
			sp.Kind = cubestore.PredRange
		case PredIn:
			sp.Kind = cubestore.PredIn
		default:
			return cubestore.Spec{}, fmt.Errorf("ccubing: unknown predicate op %d on dimension %s", p.Op, c.names[d])
		}
		out.Preds[d] = sp
	}
	return out, nil
}

// Select visits every stored closed cell matching the spec — the predicate
// generalization of Slice: each constrained dimension must be fixed by the
// cell to a satisfying value. Exact at any iceberg threshold. Return false
// from visit to stop early.
func (c *Cube) Select(spec QuerySpec, visit func(Cell) bool) error {
	ss, err := c.storeSpec(spec)
	if err != nil {
		return err
	}
	c.snap().Store.Select(ss, func(cc core.Cell) bool {
		return visit(Cell{Values: cc.Values, Count: cc.Count, Aux: c.presentAux(cc.Aux, cc.Count)})
	})
	return nil
}

// Aggregate answers a group-by query under per-dimension predicates: one row
// per distinct value combination on the GroupBy dimensions among matching
// tuples, carrying the aggregated count (and measure, combined per AuxAgg).
// Rows fix exactly the GroupBy dimensions and arrive ranked best first (ties
// by value, so results are deterministic); TopK truncates.
//
// The exact result reports whether the aggregates are exact. It is true for
// cubes materialized at MinSup 1 and for iceberg cubes whose store carries
// the residual summary of the pruned mass (every cube Materialize builds at
// MinSup > 1): the residual folds the sub-threshold combinations back in, so
// the aggregates equal a MinSup-1 recomputation. Only legacy snapshots
// without a residual degrade to exact=false, where every aggregate is a
// lower bound. Serving surfaces forward the flag so clients never mistake a
// bound for a total. See the cubestore documentation for the closure-dedup
// execution.
func (c *Cube) Aggregate(spec QuerySpec, opt AggregateOptions) (rows []Cell, exact bool, err error) {
	ss, err := c.storeSpec(spec)
	if err != nil {
		return nil, false, err
	}
	if opt.TopK < 0 {
		return nil, false, fmt.Errorf("ccubing: negative top-k %d", opt.TopK)
	}
	st := c.snap()
	sopt := cubestore.AggOptions{TopK: opt.TopK}
	switch opt.By {
	case ByCount:
		sopt.By = cubestore.ByCount
	case ByAux:
		if !st.Store.HasAux() {
			return nil, false, fmt.Errorf("ccubing: cube has no measure to rank by")
		}
		sopt.By = cubestore.ByAux
	default:
		return nil, false, fmt.Errorf("ccubing: unknown order-by %d", opt.By)
	}
	auxAgg := opt.AuxAgg
	if auxAgg == MeasureNone && c.measure == MeasureAvg && c.auxStored {
		// Default the combiner to the cube's own measure: avg cubes average.
		auxAgg = MeasureAvg
	}
	avgAux := false
	switch auxAgg {
	case MeasureNone, MeasureSum:
		sopt.AuxAgg = cubestore.AuxSum
	case MeasureMin:
		sopt.AuxAgg = cubestore.AuxMin
	case MeasureMax:
		sopt.AuxAgg = cubestore.AuxMax
	case MeasureAvg:
		if c.measure != MeasureAvg || !c.auxStored {
			return nil, false, fmt.Errorf("ccubing: aux-agg avg needs a cube materialized with MeasureAvg (this cube carries %v)", c.measure)
		}
		// Algebraic: sum the stored per-cell sums, divide by the group count
		// once the groups are final.
		avgAux = true
		sopt.AuxAgg = cubestore.AuxSum
	default:
		return nil, false, fmt.Errorf("ccubing: measure kind %v cannot aggregate over closed cells", opt.AuxAgg)
	}
	if avgAux && sopt.By == cubestore.ByAux {
		// The store would rank raw sums; the caller asked for means. Fetch
		// every group, divide, then rank and truncate here.
		sopt.TopK = 0
	}
	seen := make(map[int]bool, len(opt.GroupBy))
	for _, name := range opt.GroupBy {
		d, err := c.resolveDim(name)
		if err != nil {
			return nil, false, err
		}
		if !seen[d] {
			seen[d] = true
			sopt.GroupBy = append(sopt.GroupBy, d)
		}
	}
	exact = c.minSup <= 1 || st.Store.HasResidual()
	qc := c.cache.Load()
	var key []byte
	if qc != nil {
		key = appendAggKey(cacheKey(st.Generation, cacheKindAgg, 8*c.NumDims()), ss, sopt)
		if avgAux {
			// The avg presentation changes the rows (and possibly the
			// truncation), so it must not share entries with plain sum.
			key = append(key, 1)
			key = binary.BigEndian.AppendUint32(key, uint32(opt.TopK))
		}
		if v, hit := qc.Get(key); hit {
			e := v.(aggEntry)
			return copyCells(e.rows), e.exact, nil
		}
	}
	srows := st.Store.Aggregate(ss, sopt)
	out := make([]Cell, len(srows))
	for i, r := range srows {
		out[i] = Cell{Values: r.Values, Count: r.Count, Aux: r.Aux}
	}
	if avgAux {
		for i := range out {
			out[i].Aux = core.Present(core.MeasureAvg, out[i].Aux, out[i].Count)
		}
		if sopt.By == cubestore.ByAux {
			sortAggRows(out, opt.By)
			if opt.TopK > 0 && len(out) > opt.TopK {
				out = out[:opt.TopK]
			}
		}
	}
	if qc != nil {
		// The cached rows become shared; hand the caller a copy, like the hit
		// path does.
		qc.Put(key, aggEntry{rows: out, exact: exact})
		return copyCells(out), exact, nil
	}
	return out, exact, nil
}

// sortAggRows ranks aggregate rows best first, mirroring the store's order:
// rank descending, ties by values ascending (Star sorts last, matching the
// packed-key comparison).
func sortAggRows(rows []Cell, by OrderBy) {
	rank := func(c Cell) float64 {
		if by == ByAux {
			return c.Aux
		}
		return float64(c.Count)
	}
	sort.Slice(rows, func(i, j int) bool {
		ri, rj := rank(rows[i]), rank(rows[j])
		if ri != rj {
			return ri > rj
		}
		for d := range rows[i].Values {
			if rows[i].Values[d] != rows[j].Values[d] {
				return uint32(rows[i].Values[d]) < uint32(rows[j].Values[d])
			}
		}
		return false
	})
}

// aggEntry is one cached aggregate result.
type aggEntry struct {
	rows  []Cell
	exact bool
}

// copyCells deep-copies result rows so cached entries stay immutable.
func copyCells(rows []Cell) []Cell {
	out := make([]Cell, len(rows))
	for i, r := range rows {
		out[i] = Cell{Values: append([]int32(nil), r.Values...), Count: r.Count, Aux: r.Aux}
	}
	return out
}

// appendAggKey serializes a lowered aggregate query in normalized form:
// predicate sets and group-by dimensions are order-insensitive in the result,
// so both are sorted before packing — equivalent queries share one entry.
func appendAggKey(key []byte, ss cubestore.Spec, sopt cubestore.AggOptions) []byte {
	for _, p := range ss.Preds {
		key = append(key, byte(p.Kind))
		switch p.Kind {
		case cubestore.PredEq:
			key = binary.BigEndian.AppendUint32(key, uint32(p.Val))
		case cubestore.PredRange:
			key = binary.BigEndian.AppendUint32(key, uint32(p.Lo))
			key = binary.BigEndian.AppendUint32(key, uint32(p.Hi))
		case cubestore.PredIn:
			set := append([]int32(nil), p.Set...)
			sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
			key = binary.BigEndian.AppendUint32(key, uint32(len(set)))
			for _, v := range set {
				key = binary.BigEndian.AppendUint32(key, uint32(v))
			}
		}
	}
	key = append(key, byte(sopt.By), byte(sopt.AuxAgg))
	key = binary.BigEndian.AppendUint32(key, uint32(sopt.TopK))
	gb := append([]int(nil), sopt.GroupBy...)
	sort.Ints(gb)
	key = binary.BigEndian.AppendUint32(key, uint32(len(gb)))
	for _, d := range gb {
		key = binary.BigEndian.AppendUint32(key, uint32(d))
	}
	return key
}

// resolveDim maps a dimension name (or decimal index) to its position.
func (c *Cube) resolveDim(name string) (int, error) {
	for d, n := range c.names {
		if n == name {
			return d, nil
		}
	}
	if d, err := strconv.Atoi(name); err == nil && d >= 0 && d < c.NumDims() {
		return d, nil
	}
	return 0, fmt.Errorf("ccubing: unknown dimension %q", name)
}

// FormatCell renders a cell with the cube's dictionaries, mirroring
// Dataset.FormatCell for serving-side output.
func (c *Cube) FormatCell(cell Cell) string {
	var b bytes.Buffer
	b.WriteByte('(')
	for d, s := range labelsWith(c.snap(), cell.Values) {
		if d > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s)
	}
	fmt.Fprintf(&b, " : %d)", cell.Count)
	return b.String()
}
