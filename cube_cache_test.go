package ccubing

// Tests for the generation-keyed query-result cache: correctness of hits,
// invalidation across refresh (the cached answer must change when the
// underlying cell changes), isolation of cached entries from caller
// mutation, and the disable switch.

import (
	"reflect"
	"testing"
)

// cacheTestCube builds a small live cube from coded rows with caching on.
func cacheTestCube(t *testing.T, rows [][]int32) *Cube {
	t.Helper()
	ds, err := NewDatasetFromValues(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// TestQueryCacheInvalidationAcrossRefresh is the cache's acceptance test: a
// cached answer must change after an append+refresh touching the queried
// cell, because the new generation keys miss the old entries.
func TestQueryCacheInvalidationAcrossRefresh(t *testing.T) {
	cube := cacheTestCube(t, [][]int32{{0, 0}, {0, 1}, {1, 0}})
	cell := []int32{0, Star}

	if n, ok := cube.Query(cell); !ok || n != 2 {
		t.Fatalf("Query(0,*) = %d, %v; want 2, true", n, ok)
	}
	// Second query must come from the cache.
	if n, ok := cube.Query(cell); !ok || n != 2 {
		t.Fatalf("cached Query(0,*) = %d, %v; want 2, true", n, ok)
	}
	hits, misses := cube.QueryCacheMetrics()
	if hits < 1 || misses < 1 {
		t.Fatalf("cache metrics after repeat query: hits=%d misses=%d; want both >= 1", hits, misses)
	}

	// Grow the queried cell and refresh: the generation bumps, so the stale
	// entry is unreachable and the fresh store answers.
	if _, err := cube.AppendValues([][]int32{{0, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	if n, ok := cube.Query(cell); !ok || n != 3 {
		t.Fatalf("Query(0,*) after refresh = %d, %v; want 3, true (stale cache served?)", n, ok)
	}
	// And the post-refresh answer caches under the new generation.
	h0, _ := cube.QueryCacheMetrics()
	if n, ok := cube.Query(cell); !ok || n != 3 {
		t.Fatalf("cached Query(0,*) after refresh = %d, %v; want 3, true", n, ok)
	}
	if h1, _ := cube.QueryCacheMetrics(); h1 != h0+1 {
		t.Fatalf("post-refresh repeat was not a cache hit: hits %d -> %d", h0, h1)
	}
}

// TestQueryCacheNegativeAnswers checks misses are cached and stay correct:
// an empty cell must remain a miss on the hit path.
func TestQueryCacheNegativeAnswers(t *testing.T) {
	cube := cacheTestCube(t, [][]int32{{0, 0}, {1, 1}})
	empty := []int32{0, 1}
	for i := 0; i < 2; i++ {
		if n, ok := cube.Query(empty); ok || n != 0 {
			t.Fatalf("pass %d: Query(empty) = %d, %v; want 0, false", i, n, ok)
		}
		if _, ok := cube.Lookup(empty); ok {
			t.Fatalf("pass %d: Lookup(empty) found a cell", i)
		}
	}
}

// TestQueryCacheLookupIsolation checks a Lookup hit hands out values the
// caller may mutate without corrupting the cached entry.
func TestQueryCacheLookupIsolation(t *testing.T) {
	cube := cacheTestCube(t, [][]int32{{0, 0}, {0, 0}, {1, 1}})
	cell := []int32{0, 0}
	first, ok := cube.Lookup(cell)
	if !ok {
		t.Fatal("Lookup missed a stored cell")
	}
	first.Values[0] = 99 // caller scribbles on its copy
	second, ok := cube.Lookup(cell)
	if !ok {
		t.Fatal("cached Lookup missed")
	}
	if second.Values[0] != 0 || second.Count != 2 {
		t.Fatalf("cached entry corrupted by caller mutation: %+v", second)
	}
}

// TestQueryCacheAggregate checks aggregate results cache (same rows on the
// hit path, counted as a hit) and that hit rows are mutation-isolated too.
func TestQueryCacheAggregate(t *testing.T) {
	cube := cacheTestCube(t, [][]int32{{0, 0}, {0, 1}, {1, 0}})
	spec := QuerySpec{{Op: PredAny}, {Op: PredAny}}
	opt := AggregateOptions{GroupBy: []string{"0"}}

	rows1, exact, err := cube.Aggregate(spec, opt)
	if err != nil || !exact {
		t.Fatalf("Aggregate: rows=%v exact=%v err=%v", rows1, exact, err)
	}
	h0, _ := cube.QueryCacheMetrics()
	rows2, _, err := cube.Aggregate(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if h1, _ := cube.QueryCacheMetrics(); h1 != h0+1 {
		t.Fatalf("repeat aggregate was not a cache hit: hits %d -> %d", h0, h1)
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatalf("cached aggregate differs:\nfirst  %v\nsecond %v", rows1, rows2)
	}
	rows2[0].Values[0] = 77
	rows3, _, err := cube.Aggregate(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, rows3) {
		t.Fatalf("cached aggregate corrupted by caller mutation: %v", rows3)
	}

	// Refresh invalidates aggregates too.
	if _, err := cube.AppendValues([][]int32{{0, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	rows4, _, err := cube.Aggregate(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rows4[0].Count != 3 {
		t.Fatalf("aggregate after refresh = %v; want group 0 count 3", rows4)
	}
}

// TestQueryCacheDisable checks SetQueryCache(0) turns caching off: metrics
// stay zero and answers remain correct.
func TestQueryCacheDisable(t *testing.T) {
	cube := cacheTestCube(t, [][]int32{{0, 0}, {0, 1}})
	cube.SetQueryCache(0)
	for i := 0; i < 2; i++ {
		if n, ok := cube.Query([]int32{0, Star}); !ok || n != 2 {
			t.Fatalf("Query with cache off = %d, %v; want 2, true", n, ok)
		}
	}
	if h, m := cube.QueryCacheMetrics(); h != 0 || m != 0 {
		t.Fatalf("disabled cache reported traffic: hits=%d misses=%d", h, m)
	}
}
