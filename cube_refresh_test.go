package ccubing

// Tests for live cube refresh: delta ingestion, partition-scoped recompute,
// and the atomic snapshot swap. The load-bearing property is equivalence —
// a refreshed cube is byte-identical (same groups, keys, counts) to a
// from-scratch Materialize of the grown relation — plus the concurrency
// contract: queries racing a refresh always answer from exactly one
// generation.

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// refreshStoreBytes canonicalizes the cube's published store (payload only,
// excluding the facade header whose generation legitimately differs between
// a refreshed cube and a from-scratch build).
func refreshStoreBytes(t testing.TB, c *Cube) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.snap().Store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomRows draws n coded rows; leading-dimension values are confined to
// lead when non-nil (the delta's touched partitions).
func randomRows(rng *rand.Rand, cards []int, n int, lead []int32) [][]int32 {
	rows := make([][]int32, n)
	for i := range rows {
		row := make([]int32, len(cards))
		if lead != nil {
			row[0] = lead[rng.Intn(len(lead))]
		} else {
			row[0] = int32(rng.Intn(cards[0]))
		}
		for d := 1; d < len(cards); d++ {
			row[d] = int32(rng.Intn(cards[d]))
		}
		rows[i] = row
	}
	return rows
}

// TestRefreshMatchesMaterialize is the acceptance criterion: for randomized
// relations and appended deltas, Refresh produces a store byte-identical to
// a from-scratch Materialize of the full relation, at minsup 1 and on
// iceberg cubes.
func TestRefreshMatchesMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cards := []int{7, 5, 4, 3}
	for _, minsup := range []int64{1, 4} {
		for trial := 0; trial < 5; trial++ {
			base := randomRows(rng, cards, 400, nil)
			// The delta touches two partitions, one possibly brand new.
			lead := []int32{int32(rng.Intn(cards[0])), int32(cards[0])}
			delta := randomRows(rng, cards, 60, lead)

			ds, err := NewDatasetFromValues(nil, base)
			if err != nil {
				t.Fatal(err)
			}
			cube, err := Materialize(ds, Options{MinSup: minsup, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !cube.Refreshable() || cube.Generation() != 0 {
				t.Fatalf("materialized cube: refreshable=%v generation=%d", cube.Refreshable(), cube.Generation())
			}
			if _, err := cube.AppendValues(delta, nil); err != nil {
				t.Fatal(err)
			}
			if got := cube.Backlog(); got != len(delta) {
				t.Fatalf("backlog = %d, want %d", got, len(delta))
			}
			st, err := cube.Refresh()
			if err != nil {
				t.Fatal(err)
			}
			if st.Generation != 1 || st.Appended != len(delta) {
				t.Fatalf("refresh stats = %+v", st)
			}
			if st.PartitionsRecomputed >= st.PartitionsTotal {
				t.Fatalf("refresh was not partition-scoped: %d of %d", st.PartitionsRecomputed, st.PartitionsTotal)
			}

			fullDS, err := NewDatasetFromValues(nil, append(append([][]int32{}, base...), delta...))
			if err != nil {
				t.Fatal(err)
			}
			want, err := Materialize(fullDS, Options{MinSup: minsup, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refreshStoreBytes(t, cube), refreshStoreBytes(t, want)) {
				t.Fatalf("minsup=%d trial=%d: refreshed store differs from from-scratch materialize (%d vs %d cells)",
					minsup, trial, cube.NumCells(), want.NumCells())
			}
			if cube.SourceRows() != int64(fullDS.NumTuples()) {
				t.Fatalf("source rows = %d, want %d", cube.SourceRows(), fullDS.NumTuples())
			}
		}
	}
}

// TestRefreshLabeledNewLabels appends rows with labels the dictionaries have
// never seen: they are honest misses until the refresh publishes the grown
// dictionaries, and afterwards the cube matches a from-scratch build with
// identical label coding.
func TestRefreshLabeledNewLabels(t *testing.T) {
	baseRows := [][]string{
		{"oslo", "pen"}, {"oslo", "ink"}, {"paris", "pen"},
		{"oslo", "pen"}, {"paris", "ink"}, {"rome", "pen"},
	}
	delta := [][]string{
		{"berlin", "pen"}, {"berlin", "brush"}, {"oslo", "brush"},
	}
	ds, err := NewDataset([]string{"city", "product"}, baseRows)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Append(delta, nil); err != nil {
		t.Fatal(err)
	}
	// Pre-refresh: the new label is a provably-empty cell, not an error.
	if count, ok, err := cube.QueryLabels([]string{"berlin", "*"}); err != nil || ok || count != 0 {
		t.Fatalf("pre-refresh berlin = (%d,%v,%v), want miss", count, ok, err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	if count, ok, err := cube.QueryLabels([]string{"berlin", "*"}); err != nil || !ok || count != 2 {
		t.Fatalf("post-refresh berlin = (%d,%v,%v), want (2,true)", count, ok, err)
	}

	fullDS, err := NewDataset([]string{"city", "product"}, append(append([][]string{}, baseRows...), delta...))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Materialize(fullDS, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refreshStoreBytes(t, cube), refreshStoreBytes(t, want)) {
		t.Fatal("refreshed labeled store differs from from-scratch materialize")
	}
	// Dictionaries must have coded the delta's labels identically.
	for d := range cube.snap().Dicts {
		got := strings.Join(cube.snap().Dicts[d].Names(), ",")
		exp := strings.Join(want.snap().Dicts[d].Names(), ",")
		if got != exp {
			t.Fatalf("dimension %d dictionaries diverge: %q vs %q", d, got, exp)
		}
	}
}

// TestRefreshWithMeasure checks the complex-measure post-pass on the refresh
// path: aux values of retained and rebuilt cells match a from-scratch build
// bit for bit.
func TestRefreshWithMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cards := []int{6, 4, 3}
	base := randomRows(rng, cards, 300, nil)
	delta := randomRows(rng, cards, 40, []int32{2})
	baseAux := make([]float64, len(base))
	for i := range baseAux {
		baseAux[i] = float64(rng.Intn(1000)) / 8
	}
	deltaAux := make([]float64, len(delta))
	for i := range deltaAux {
		deltaAux[i] = float64(rng.Intn(1000)) / 8
	}

	ds, err := NewDatasetFromValues(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetMeasure(baseAux); err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 2, Measure: MeasureSum})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.AppendValues(delta, deltaAux); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}

	fullDS, err := NewDatasetFromValues(nil, append(append([][]int32{}, base...), delta...))
	if err != nil {
		t.Fatal(err)
	}
	if err := fullDS.SetMeasure(append(append([]float64{}, baseAux...), deltaAux...)); err != nil {
		t.Fatal(err)
	}
	want, err := Materialize(fullDS, Options{MinSup: 2, Measure: MeasureSum})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refreshStoreBytes(t, cube), refreshStoreBytes(t, want)) {
		t.Fatal("refreshed measure store differs from from-scratch materialize")
	}
}

// TestRefreshMeasureResidualExact drives the full native-measure refresh
// path on an avg iceberg cube: the refreshed store (stored running sums plus
// the residual of the recomputed partitions) is byte-identical to a
// from-scratch build, and post-refresh aggregates stay exact — equal to a
// MinSup-1 materialization of the grown relation.
func TestRefreshMeasureResidualExact(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cards := []int{6, 5, 4}
	base := randomRows(rng, cards, 350, nil)
	delta := randomRows(rng, cards, 50, []int32{1, int32(cards[0])})
	// Integer aux keeps float sums exact, so equality can be byte-strict.
	baseAux := make([]float64, len(base))
	for i := range baseAux {
		baseAux[i] = float64(rng.Intn(40) - 10)
	}
	deltaAux := make([]float64, len(delta))
	for i := range deltaAux {
		deltaAux[i] = float64(rng.Intn(40) - 10)
	}

	ds, err := NewDatasetFromValues(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetMeasure(baseAux); err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 3, Measure: MeasureAvg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.AppendValues(delta, deltaAux); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !cube.snap().Store.HasResidual() {
		t.Fatal("refresh dropped the residual")
	}
	if !cube.AuxStored() {
		t.Fatal("refresh dropped the stored aux form")
	}

	fullRows := append(append([][]int32{}, base...), delta...)
	fullAux := append(append([]float64{}, baseAux...), deltaAux...)
	fullDS, err := NewDatasetFromValues(nil, fullRows)
	if err != nil {
		t.Fatal(err)
	}
	if err := fullDS.SetMeasure(fullAux); err != nil {
		t.Fatal(err)
	}
	want, err := Materialize(fullDS, Options{MinSup: 3, Measure: MeasureAvg})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refreshStoreBytes(t, cube), refreshStoreBytes(t, want)) {
		t.Fatal("refreshed avg store (cells + residual) differs from from-scratch materialize")
	}

	// Exactness after refresh: identical to a lossless MinSup-1 cube.
	oracle, err := Materialize(fullDS, Options{MinSup: 1, Measure: MeasureAvg})
	if err != nil {
		t.Fatal(err)
	}
	names := fullDS.Names()
	for i := 0; i < 40; i++ {
		spec := randomFacadeSpec(rng, cards)
		groupBy := []string{names[rng.Intn(len(names))]}
		got, exact, err := cube.Aggregate(spec, AggregateOptions{GroupBy: groupBy})
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatalf("spec %d: refreshed iceberg cube must stay exact", i)
		}
		wantRows, _, err := oracle.Aggregate(spec, AggregateOptions{GroupBy: groupBy})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantRows) {
			t.Fatalf("spec %d: %d rows, oracle has %d", i, len(got), len(wantRows))
		}
		for j := range got {
			if got[j].Count != wantRows[j].Count || got[j].Aux != wantRows[j].Aux {
				t.Fatalf("spec %d row %d: refreshed %+v, oracle %+v", i, j, got[j], wantRows[j])
			}
		}
	}
}

// TestRefreshSnapshotMetadata round-trips generation and source-row count
// through the version-2 snapshot format.
func TestRefreshSnapshotMetadata(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cards := []int{5, 4, 3}
	ds, err := NewDatasetFromValues(nil, randomRows(rng, cards, 200, nil))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.AppendValues(randomRows(rng, cards, 20, []int32{1}), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Generation() != 1 || loaded.SourceRows() != 220 {
		t.Fatalf("loaded generation=%d rows=%d, want 1/220", loaded.Generation(), loaded.SourceRows())
	}
	if loaded.Refreshable() {
		t.Fatal("snapshot-loaded cube must be static")
	}
	if _, err := loaded.AppendValues([][]int32{{0, 0, 0}}, nil); err == nil {
		t.Fatal("append on a static cube must fail")
	}
	// Save → Load → Save stays byte-identical under the v2 header.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("v2 snapshot not byte-identical after round trip")
	}
}

// TestAppendNDJSON drives the streamed ingestion forms: label arrays on a
// labeled cube, value arrays and aux objects on a coded measure cube.
func TestAppendNDJSON(t *testing.T) {
	ds, err := NewDataset([]string{"a", "b"}, [][]string{{"x", "u"}, {"y", "v"}, {"x", "v"}})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := cube.AppendNDJSON(strings.NewReader("[\"x\",\"u\"]\n\n[\"z\",\"u\"]\n"))
	if err != nil || n != 2 {
		t.Fatalf("ndjson append = (%d, %v), want 2 rows", n, err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	if count, ok, err := cube.QueryLabels([]string{"x", "u"}); err != nil || !ok || count != 2 {
		t.Fatalf("x,u = (%d,%v,%v), want 2", count, ok, err)
	}
	if count, ok, err := cube.QueryLabels([]string{"z", "*"}); err != nil || !ok || count != 1 {
		t.Fatalf("z,* = (%d,%v,%v), want 1", count, ok, err)
	}
	// Malformed line: rows before it stay appended, the error names the line.
	if _, err := cube.AppendNDJSON(strings.NewReader("[\"x\",\"u\"]\n{oops\n")); err == nil {
		t.Fatal("malformed ndjson must fail")
	}

	// Coded cube with measure: object form carries aux.
	cds, err := NewDatasetFromValues(nil, [][]int32{{0, 0}, {1, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cds.SetMeasure([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ccube, err := Materialize(cds, Options{MinSup: 1, Measure: MeasureSum})
	if err != nil {
		t.Fatal(err)
	}
	n, err = ccube.AppendNDJSON(strings.NewReader(`{"values":[0,0],"aux":4.5}` + "\n" + `{"row":[1,0],"aux":0.5}` + "\n"))
	if err != nil || n != 2 {
		t.Fatalf("coded ndjson append = (%d, %v), want 2 rows", n, err)
	}
	if _, err := ccube.Refresh(); err != nil {
		t.Fatal(err)
	}
	cell, ok := ccube.Lookup([]int32{0, 0})
	if !ok || cell.Count != 2 || cell.Aux != 5.5 {
		t.Fatalf("cell (0,0) = (%+v,%v), want count 2 aux 5.5", cell, ok)
	}
}

// TestAutoRefreshRowThreshold exercises the facade trigger path end to end,
// including the write-ahead log option.
func TestAutoRefreshRowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cards := []int{5, 4, 3}
	ds, err := NewDatasetFromValues(nil, randomRows(rng, cards, 150, nil))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(t.TempDir(), "pending.wal")
	if err := cube.AutoRefresh(AutoRefreshOptions{Rows: 8, WAL: wal}); err != nil {
		t.Fatal(err)
	}
	defer cube.Close()
	if _, err := cube.AppendValues(randomRows(rng, cards, 5, []int32{0}), nil); err != nil {
		t.Fatal(err)
	}
	if cube.Generation() != 0 || cube.Backlog() != 5 {
		t.Fatalf("below threshold: generation=%d backlog=%d", cube.Generation(), cube.Backlog())
	}
	if _, err := cube.AppendValues(randomRows(rng, cards, 5, []int32{0}), nil); err != nil {
		t.Fatal(err)
	}
	if cube.Generation() != 1 || cube.Backlog() != 0 {
		t.Fatalf("at threshold: generation=%d backlog=%d", cube.Generation(), cube.Backlog())
	}
	m := cube.RefreshMetrics()
	if m.Refreshes != 1 || m.Last.Appended != 10 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestConcurrentQueriesDuringRefresh is the -race acceptance test: N
// goroutines hammer Query and Aggregate while the main goroutine swaps
// generations; every answer must be consistent with exactly one generation
// of the relation — never a torn mix.
func TestConcurrentQueriesDuringRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	cards := []int{8, 5, 4}
	base := randomRows(rng, cards, 500, nil)
	const chunks = 4
	deltas := make([][][]int32, chunks)
	for k := range deltas {
		deltas[k] = randomRows(rng, cards, 40, []int32{int32(k % cards[0]), int32(cards[0] + k)})
	}

	// Per-generation ground truth for a probe set and for the grand total.
	brute := func(rows [][]int32, q []int32) int64 {
		var n int64
		for _, r := range rows {
			ok := true
			for d, v := range q {
				if v != Star && r[d] != v {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		return n
	}
	const nProbes = 40
	probes := make([][]int32, nProbes)
	for i := range probes {
		q := make([]int32, len(cards))
		for d := range q {
			switch rng.Intn(3) {
			case 0:
				q[d] = Star
			default:
				q[d] = int32(rng.Intn(cards[d] + 1))
			}
		}
		probes[i] = q
	}
	allowed := make([]map[int64]bool, nProbes)
	totals := map[int64]bool{}
	rows := append([][]int32{}, base...)
	for i := range allowed {
		allowed[i] = map[int64]bool{brute(rows, probes[i]): true}
	}
	totals[int64(len(rows))] = true
	for _, d := range deltas {
		rows = append(rows, d...)
		for i := range allowed {
			allowed[i][brute(rows, probes[i])] = true
		}
		totals[int64(len(rows))] = true
	}

	ds, err := NewDatasetFromValues(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	grandSpec := make(QuerySpec, len(cards))

	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(format string, args ...any) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				i := rng.Intn(nProbes)
				count, ok := cube.Query(probes[i])
				if !ok {
					count = 0
				}
				if !allowed[i][count] {
					fail("query %v = %d, not any generation's count %v", probes[i], count, allowed[i])
					return
				}
				if rng.Intn(8) == 0 {
					rows, _, err := cube.Aggregate(grandSpec, AggregateOptions{})
					if err != nil || len(rows) != 1 {
						fail("aggregate: %v rows, err %v", len(rows), err)
						return
					}
					if !totals[rows[0].Count] {
						fail("grand total %d, not any generation's size %v", rows[0].Count, totals)
						return
					}
				}
			}
		}(int64(w))
	}
	for _, d := range deltas {
		if _, err := cube.AppendValues(d, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := cube.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if g := cube.Generation(); g != chunks {
		t.Fatalf("generation = %d, want %d", g, chunks)
	}
}
