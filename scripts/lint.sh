#!/usr/bin/env bash
# Runs the repo's static-analysis suite:
#
#   cclint       — the in-tree go/analysis suite (lockorder, poolescape,
#                  storemut, hotpathalloc) enforcing the concurrency and
#                  hot-path invariants; always runs, no network needed.
#   staticcheck  — general Go correctness/simplification checks.
#   govulncheck  — known-vulnerability scan of the dependency graph.
#
# The last two are skipped with a notice when the tool is not installed
# (offline development containers); CI installs pinned versions and runs all
# three. Any finding fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== cclint (go vet -vettool)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/cclint" ./cmd/cclint
go vet -vettool="$tmp/cclint" ./... || status=1

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./... || status=1
else
    echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1)"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./... || status=1
else
    echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@v1.1.4)"
fi

exit $status
