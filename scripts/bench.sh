#!/usr/bin/env bash
# Runs the key benchmarks with -benchmem and records the results as
# BENCH_<iso-date>.json in the repo root, so the performance trajectory
# accumulates over time. Invoked on demand from CI (workflow_dispatch) or
# locally:
#
#   ./scripts/bench.sh                 # default benchtime (3x)
#   BENCHTIME=10x ./scripts/bench.sh   # longer runs
#   BENCH_FILTER='BenchmarkCubeQuery' ./scripts/bench.sh
#   BENCH_SEED=42 ./scripts/bench.sh   # alternate dataset seed
#
# The dataset seed is pinned (CCUBING_BENCH_SEED, default 23) so runs are
# comparable across the series; it is recorded in the output.
#
# Output schema: {"date", "go", "cpus", "seed", "benchmarks": [{"name",
# "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op", "mb_per_s"}]}.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
export CCUBING_BENCH_SEED="${BENCH_SEED:-23}"
filter="${BENCH_FILTER:-BenchmarkCubeQuery|BenchmarkStoreBuild|BenchmarkBuildComparison|BenchmarkMaterialize|BenchmarkCubeSnapshot|BenchmarkParallelWorkers|BenchmarkLookupLattice|BenchmarkAggregateGroupBy|BenchmarkAggregateIcebergResidual|BenchmarkRefresh|BenchmarkRefreshDelete|BenchmarkRouterAggregate|BenchmarkObsRecord}"
# Never overwrite an earlier run: same-day runs get a .2, .3, ... suffix so
# the series keeps every data point.
out="BENCH_$(date -u +%Y-%m-%d).json"
n=2
while [ -e "$out" ]; do
    out="BENCH_$(date -u +%Y-%m-%d).$n.json"
    n=$((n + 1))
done
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" ./... | tee "$raw" >&2

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version | awk '{print $3}')" -v cpus="$(nproc 2>/dev/null || echo 0)" -v seed="$CCUBING_BENCH_SEED" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpus\": %s,\n  \"seed\": %s,\n  \"benchmarks\": [", date, gover, cpus, seed
    first = 1
}
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""; mbs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "MB/s")      mbs = $i
    }
    if (ns == "") next
    if (!first) printf ","
    first = 0
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (mbs != "")    printf ", \"mb_per_s\": %s", mbs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2
