package ccubing

// Serving-layer benchmarks: concurrent Cube.Query throughput and the cost of
// freezing closed cells into the cubestore versus building the QC-tree
// baseline from the same cells. scripts/bench.sh records these (with
// -benchmem) into BENCH_<date>.json.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/qctree"
)

// benchSeed pins the dataset seed of every facade benchmark so runs are
// comparable across the BENCH_<date>.json series. scripts/bench.sh exports
// CCUBING_BENCH_SEED (default 23) and records it in the output.
func benchSeed() int64 {
	if s := os.Getenv("CCUBING_BENCH_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 23
}

// benchCubeDataset is sized for stable serving benchmarks: ~50k tuples,
// moderate cardinality, mild skew.
func benchCubeDataset(b *testing.B) *Dataset {
	b.Helper()
	ds, err := Synthetic(SyntheticConfig{T: 50_000, D: 6, C: 20, Skew: 1.1, Seed: benchSeed()})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkCubeQuery measures point-query throughput on a materialized cube,
// sequentially and with RunParallel across GOMAXPROCS goroutines (the store
// is immutable, so concurrent readers share it lock-free). The result cache
// is disabled so both arms measure the raw probe path, comparable with the
// pre-cache BENCH_*.json baselines.
//
// Why the parallel arm used to LOSE to sequential (~2x at the 2026-07-29
// baseline): every probe bumped one shared atomic probe counter, so
// concurrent readers serialized on a single contended cache line, and each
// probe allocated its prefix/rest scratch, serializing further on the
// allocator. Both are gone — probe counters are striped across padded cache
// lines and the probe scratch is pooled per store — so the parallel arm now
// degrades only by scheduling overhead on single-core machines instead of
// inter-core bouncing.
func BenchmarkCubeQuery(b *testing.B) {
	ds := benchCubeDataset(b)
	cube, err := Materialize(ds, Options{MinSup: 8, Workers: -1})
	if err != nil {
		b.Fatal(err)
	}
	cube.SetQueryCache(0)
	tb := ds.Table()
	// Pre-draw a query mix: full points, partial cells, sparse cells.
	const nq = 4096
	queries := make([][]int32, nq)
	rng := rand.New(rand.NewSource(1))
	for i := range queries {
		q := make([]int32, tb.NumDims())
		for d := range q {
			if rng.Intn(3) == 0 {
				q[d] = Star
			} else {
				q[d] = tb.Cols[d][rng.Intn(tb.NumTuples())]
			}
		}
		queries[i] = q
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cube.Query(queries[i%nq])
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := rand.Int()
			for pb.Next() {
				cube.Query(queries[i%nq])
				i++
			}
		})
	})
}

// BenchmarkCubeQueryCached measures what the generation-keyed result cache
// buys on a repeating query mix: cold is the raw probe path (cache
// disabled), warm answers every query from the primed cache. The mix is the
// same 4096 queries as BenchmarkCubeQuery, so cold here tracks
// BenchmarkCubeQuery/sequential.
func BenchmarkCubeQueryCached(b *testing.B) {
	ds := benchCubeDataset(b)
	cube, err := Materialize(ds, Options{MinSup: 8, Workers: -1})
	if err != nil {
		b.Fatal(err)
	}
	tb := ds.Table()
	const nq = 4096
	queries := make([][]int32, nq)
	rng := rand.New(rand.NewSource(1))
	for i := range queries {
		q := make([]int32, tb.NumDims())
		for d := range q {
			if rng.Intn(3) == 0 {
				q[d] = Star
			} else {
				q[d] = tb.Cols[d][rng.Intn(tb.NumTuples())]
			}
		}
		queries[i] = q
	}
	b.Run("cold", func(b *testing.B) {
		cube.SetQueryCache(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cube.Query(queries[i%nq])
		}
	})
	b.Run("warm", func(b *testing.B) {
		cube.SetQueryCache(2 * nq) // fits the whole mix
		for _, q := range queries {
			cube.Query(q)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cube.Query(queries[i%nq])
		}
	})
}

// BenchmarkStoreBuild compares freezing an already-computed closed cell set
// into the cubestore against qctree.FromCells from the same cells. Note the
// qctree arm builds tree + its cubestore query index (what Tree.Query needs
// since this release): it is the queryable-to-queryable comparison. For the
// bare tree structure the original Quotient Cube system built, see
// internal/qctree's BenchmarkBuildComparison.
func BenchmarkStoreBuild(b *testing.B) {
	ds := benchCubeDataset(b)
	for _, minsup := range []int64{32, 8} {
		cells, _, err := ComputeCollect(ds, Options{MinSup: minsup, Closed: true, Workers: -1})
		if err != nil {
			b.Fatal(err)
		}
		ccells := make([]core.Cell, len(cells))
		for i, c := range cells {
			ccells[i] = core.Cell{Values: c.Values, Count: c.Count}
		}
		b.Run(fmt.Sprintf("cubestore/cells=%d", len(cells)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sb := cubestore.NewBuilder(ds.NumDims(), false)
				for _, c := range ccells {
					sb.Add(c.Values, c.Count, 0)
				}
				if _, err := sb.Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("qctree/cells=%d", len(cells)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := qctree.FromCells(ds.NumDims(), ccells); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaterialize measures the full pipeline: compute + freeze + the
// snapshot round trip cost is covered by BenchmarkCubeSnapshot.
func BenchmarkMaterialize(b *testing.B) {
	ds := benchCubeDataset(b)
	for _, w := range []int{1, -1} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Materialize(ds, Options{MinSup: 8, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaterializeNativeMeasure compares the two ways a measure cube can
// be built: the native path (engines fold the stored aggregate during
// aggregation-based checking, one scan) against the legacy AttachMeasure
// post-pass (count-only compute, then a second cuboid-grouped scan, then the
// freeze). Both produce bit-identical stores; native should win by roughly
// the cost of the second scan.
func BenchmarkMaterializeNativeMeasure(b *testing.B) {
	ds := benchCubeDataset(b)
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64(i%97) - 11
	}
	if err := ds.SetMeasure(aux); err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Materialize(ds, Options{MinSup: 8, Measure: MeasureSum, Workers: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("postpass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cells, _, err := ComputeCollect(ds, Options{MinSup: 8, Closed: true, Workers: -1})
			if err != nil {
				b.Fatal(err)
			}
			if err := AttachMeasure(ds, cells, MeasureSum); err != nil {
				b.Fatal(err)
			}
			sb := cubestore.NewBuilder(ds.NumDims(), true)
			for _, c := range cells {
				sb.Add(c.Values, c.Count, c.Aux)
			}
			if _, err := sb.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAggregateIcebergResidual measures group-by aggregation on an
// iceberg cube whose store carries the residual of the pruned mass — the
// price of exactness — against the same queries on a lossless minsup-1 cube
// (no residual to fold, but far more stored cells to enumerate). The result
// cache is disabled; every op pays the full enumeration + residual pass.
func BenchmarkAggregateIcebergResidual(b *testing.B) {
	ds := benchCubeDataset(b)
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64(i%97) - 11
	}
	if err := ds.SetMeasure(aux); err != nil {
		b.Fatal(err)
	}
	names := ds.Names()
	const nspec = 256
	specs := make([]QuerySpec, nspec)
	groups := make([][]string, nspec)
	rng := rand.New(rand.NewSource(benchSeed()))
	for i := range specs {
		spec := make(QuerySpec, ds.NumDims())
		for d := range spec {
			if rng.Intn(3) == 0 {
				spec[d] = Predicate{Op: PredEq, Value: int32(rng.Intn(20))}
			}
		}
		specs[i] = spec
		groups[i] = []string{names[rng.Intn(len(names))]}
	}
	for _, minsup := range []int64{1, 8} {
		cube, err := Materialize(ds, Options{MinSup: minsup, Measure: MeasureSum, Workers: -1})
		if err != nil {
			b.Fatal(err)
		}
		cube.SetQueryCache(0)
		label := fmt.Sprintf("minsup=%d/cells=%d", minsup, cube.NumCells())
		if minsup > 1 {
			label += fmt.Sprintf("/residual=%d", cube.snap().Store.ResidualRows())
		}
		b.Run(label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, exact, err := cube.Aggregate(specs[i%nspec], AggregateOptions{GroupBy: groups[i%nspec]})
				if err != nil {
					b.Fatal(err)
				}
				if !exact || rows == nil && i == 0 {
					b.Fatal("iceberg aggregate must stay exact")
				}
			}
		})
	}
}

// BenchmarkCubeSnapshot measures Save and Load of a materialized cube.
func BenchmarkCubeSnapshot(b *testing.B) {
	ds := benchCubeDataset(b)
	cube, err := Materialize(ds, Options{MinSup: 8, Workers: -1})
	if err != nil {
		b.Fatal(err)
	}
	var buf discardCounter
	if err := cube.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.Run("save", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(buf.n)
		for i := 0; i < b.N; i++ {
			var d discardCounter
			if err := cube.Save(&d); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Load needs real bytes.
	var blob bytes.Buffer
	if err := cube.Save(&blob); err != nil {
		b.Fatal(err)
	}
	b.Run("load", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(blob.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := LoadCube(bytes.NewReader(blob.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type discardCounter struct{ n int64 }

func (d *discardCounter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}
