// Package stats computes dataset properties used by the dimension-ordering
// heuristics (paper Sec. 5.5) and the algorithm advisor: per-dimension value
// histograms, entropy measures, sparsity, and a dependence estimate.
package stats

import (
	"math"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

// Histogram returns the value-frequency vector of dimension d.
func Histogram(t *table.Table, d int) []int64 {
	h := make([]int64, t.Cards[d])
	for _, v := range t.Cols[d] {
		h[v]++
	}
	return h
}

// Histograms returns one histogram per dimension.
func Histograms(t *table.Table) [][]int64 {
	hs := make([][]int64, t.NumDims())
	for d := range hs {
		hs[d] = Histogram(t, d)
	}
	return hs
}

// Entropy computes the Shannon entropy of dimension d in nats:
// -Σ (|aᵢ|/T) · ln(|aᵢ|/T).
func Entropy(t *table.Table, d int) float64 {
	n := float64(t.NumTuples())
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, c := range Histogram(t, d) {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		e -= p * math.Log(p)
	}
	return e
}

// EntropyMeasure computes the paper's comparison measure
// E(A) = -Σ |aᵢ|·log(|aᵢ|), the entropy with the constant terms dropped
// (Sec. 5.5). Dimensions are ordered by E descending: more uniform
// distributions have larger E.
func EntropyMeasure(t *table.Table, d int) float64 {
	e := 0.0
	for _, c := range Histogram(t, d) {
		if c == 0 {
			continue
		}
		e -= float64(c) * math.Log(float64(c))
	}
	return e
}

// DistinctValues counts the values that actually occur on dimension d (the
// effective cardinality, at most t.Cards[d]).
func DistinctValues(t *table.Table, d int) int {
	n := 0
	for _, c := range Histogram(t, d) {
		if c > 0 {
			n++
		}
	}
	return n
}

// Sparsity returns log10(feature-space size) - log10(T): how many orders of
// magnitude larger the cross-product of cardinalities is than the relation.
// Positive values mean sparse data (paper Sec. 5.3: "the feature space size
// is much larger than the number of tuples").
func Sparsity(t *table.Table) float64 {
	logSpace := 0.0
	for d := range t.Cols {
		logSpace += math.Log10(float64(max(1, DistinctValues(t, d))))
	}
	return logSpace - math.Log10(float64(max(1, t.NumTuples())))
}

// DependenceEstimate samples pairs of dimensions and estimates how
// functionally determined the dataset is: for random dimension pairs (A, B)
// it measures 1 - H(B|A)/H(B), averaged. 0 means independent, 1 means B is a
// function of A for all sampled pairs. It is a cheap proxy for the paper's
// rule-count dependence R, used only by the advisor.
func DependenceEstimate(t *table.Table) float64 {
	nd := t.NumDims()
	if nd < 2 || t.NumTuples() == 0 {
		return 0
	}
	total, pairs := 0.0, 0
	for a := 0; a < nd; a++ {
		for b := 0; b < nd; b++ {
			if a == b {
				continue
			}
			hb := Entropy(t, b)
			if hb == 0 {
				continue
			}
			total += 1 - conditionalEntropy(t, b, a)/hb
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// conditionalEntropy computes H(B|A) in nats.
func conditionalEntropy(t *table.Table, b, a int) float64 {
	n := t.NumTuples()
	joint := make(map[[2]core.Value]int64, 64)
	for i := 0; i < n; i++ {
		joint[[2]core.Value{t.Cols[a][i], t.Cols[b][i]}]++
	}
	ha := Histogram(t, a)
	e := 0.0
	for k, c := range joint {
		pa := float64(ha[k[0]])
		e -= float64(c) / float64(n) * math.Log(float64(c)/pa)
	}
	return e
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
