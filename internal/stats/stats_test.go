package stats

import (
	"math"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

func tbl(t *testing.T, rows [][]core.Value) *table.Table {
	t.Helper()
	tb, err := table.FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return tb
}

func TestHistogram(t *testing.T) {
	tb := tbl(t, [][]core.Value{{0}, {1}, {1}, {2}})
	h := Histogram(tb, 0)
	want := []int64{1, 2, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
	hs := Histograms(tb)
	if len(hs) != 1 || hs[0][1] != 2 {
		t.Fatalf("Histograms = %v", hs)
	}
}

func TestEntropyUniformVsConstant(t *testing.T) {
	uniform := tbl(t, [][]core.Value{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	eU := Entropy(uniform, 0)
	if math.Abs(eU-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want ln 4", eU)
	}
	if e := Entropy(uniform, 1); e != 0 {
		t.Fatalf("constant dim entropy = %v, want 0", e)
	}
}

func TestEntropyMeasureOrdersUniformFirst(t *testing.T) {
	// Dim 0: uniform over 2 values; dim 1: heavily skewed over 2 values.
	// Same cardinality, so the paper's E must rank dim 0 higher.
	tb := tbl(t, [][]core.Value{
		{0, 0}, {0, 0}, {0, 0}, {1, 0}, {1, 0}, {1, 1},
	})
	if EntropyMeasure(tb, 0) <= EntropyMeasure(tb, 1) {
		t.Fatalf("uniform dim should have larger E: %v vs %v",
			EntropyMeasure(tb, 0), EntropyMeasure(tb, 1))
	}
}

func TestDistinctValues(t *testing.T) {
	tb := tbl(t, [][]core.Value{{0}, {5}})
	if DistinctValues(tb, 0) != 2 {
		t.Fatalf("distinct = %d", DistinctValues(tb, 0))
	}
}

func TestSparsity(t *testing.T) {
	// 4 tuples over a 4x4 space with all values distinct: space 16, T 4 ->
	// sparsity log10(16/4) = log10(4).
	tb := tbl(t, [][]core.Value{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	got := Sparsity(tb)
	if math.Abs(got-math.Log10(4)) > 1e-12 {
		t.Fatalf("sparsity = %v", got)
	}
}

func TestDependenceEstimate(t *testing.T) {
	// dim1 = dim0 (perfect dependence) vs independent columns.
	dep := tbl(t, [][]core.Value{{0, 0}, {1, 1}, {2, 2}, {0, 0}, {1, 1}, {2, 2}})
	ind := tbl(t, [][]core.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	dDep := DependenceEstimate(dep)
	dInd := DependenceEstimate(ind)
	if dDep < 0.99 {
		t.Fatalf("functional pair should estimate ~1, got %v", dDep)
	}
	if math.Abs(dInd) > 1e-9 {
		t.Fatalf("independent pair should estimate ~0, got %v", dInd)
	}
	single := tbl(t, [][]core.Value{{0}})
	if DependenceEstimate(single) != 0 {
		t.Fatal("single dimension has no dependence")
	}
}
