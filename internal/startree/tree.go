package startree

import (
	"ccubing/internal/core"
	"ccubing/internal/psort"
	"ccubing/internal/table"
)

// tree is one cuboid tree: a prefix tree over dims (indices into the base
// relation, in tree order) restricted to the tuples of the spawning
// partition, with treeMask recording every dimension collapsed on the
// derivation path from the base tree (paper Sec. 4.3).
type tree struct {
	dims []int
	tm   core.Mask // tree mask
	root *node
	ar   arena
}

// depth returns the number of tree dimensions.
func (tr *tree) depth() int { return len(tr.dims) }

// buildBase constructs the base star tree over all tuples of t: tuples are
// LexSorted (star-reduced values grouped last per dimension) and inserted
// along shared prefixes. Per-level closedness masks are partial — structural
// bits for the path dimensions — except at star nodes, whose merged values
// force representative-value checks (see DESIGN.md: star reduction ×
// closedness). When measure is active, every node additionally aggregates
// the stored measure of its tuples (t.Aux must be set).
func buildBase(t *table.Table, minsup int64, closed bool, noStars bool, measure core.MeasureKind, pool *[][]node) *tree {
	nd := t.NumDims()
	tr := &tree{dims: make([]int, nd)}
	tr.ar.pool = pool
	for d := range tr.dims {
		tr.dims[d] = d
	}
	n := t.NumTuples()

	// Star reduction table: value v on dimension d collapses into the star
	// node iff its global frequency is below min_sup (paper Sec. 2.1.2).
	var starred [][]bool
	if minsup > 1 && !noStars {
		starred = make([][]bool, nd)
		for d := 0; d < nd; d++ {
			f := make([]int64, t.Cards[d])
			for _, v := range t.Cols[d] {
				f[v]++
			}
			flags := make([]bool, t.Cards[d])
			any := false
			for v, c := range f {
				if c > 0 && c < minsup {
					flags[v] = true
					any = true
				}
			}
			if any {
				starred[d] = flags
			}
		}
	}
	view := func(d int, v core.Value) core.Value {
		if starred != nil && starred[d] != nil && starred[d][v] {
			return core.Value(t.Cards[d]) // stars group last
		}
		return v
	}

	tids := make([]core.TID, n)
	for i := range tids {
		tids[i] = core.TID(i)
	}
	psort.LexSort(tids, t.Cols, tr.dims, t.Cards, view)

	// Structural masks per level: bits of dims[0..l-1].
	structMask := make([]core.Mask, nd+1)
	for l := 1; l <= nd; l++ {
		structMask[l] = structMask[l-1].With(tr.dims[l-1])
	}

	root := tr.ar.alloc()
	root.val = rootVal
	root.cls = core.Closedness{Rep: core.NilTID, Mask: 0}
	root.aux = core.StoredIdentity(measure)
	tr.root = root
	hasAux := measure != core.MeasureNone

	path := make([]*node, nd+1)
	path[0] = root
	psm := make([]core.Mask, nd+1) // star-dims-in-path mask per level
	mapped := make([]core.Value, nd)
	prev := make([]core.Value, nd)
	common := 0 // levels of path valid for the previous tuple

	for ti, tid := range tids {
		for l := 0; l < nd; l++ {
			d := tr.dims[l]
			v := t.Cols[d][tid]
			if starred != nil && starred[d] != nil && starred[d][v] {
				mapped[l] = core.StarNode
			} else {
				mapped[l] = v
			}
		}
		share := 0
		if ti > 0 {
			for share < common && mapped[share] == prev[share] {
				share++
			}
		}
		root.count++
		if closed && root.cls.Rep == core.NilTID {
			root.cls.Rep = tid
		}
		if hasAux {
			root.aux = core.CombineStored(measure, root.aux, t.Aux[tid])
		}
		for l := 1; l <= nd; l++ {
			d := tr.dims[l-1]
			if l-1 < share {
				x := path[l]
				x.count++
				if closed {
					x.cls.MergeTuple(tid, psm[l], t.Cols)
				}
				if hasAux {
					x.aux = core.CombineStored(measure, x.aux, t.Aux[tid])
				}
				continue
			}
			x, created := path[l-1].findOrAddSon(&tr.ar, mapped[l-1])
			if !created {
				// Sorted input guarantees divergence creates fresh nodes.
				panic("startree: unsorted base-tree insertion")
			}
			x.count = 1
			if hasAux {
				x.aux = t.Aux[tid]
			}
			psm[l] = psm[l-1]
			if mapped[l-1] == core.StarNode {
				psm[l] = psm[l].With(d)
			}
			if closed {
				x.cls = core.Closedness{Rep: tid, Mask: structMask[l]}
			}
			path[l] = x
		}
		copy(prev, mapped)
		common = nd
	}
	return tr
}
