// Package startree implements Star-Cubing (Xin, Han, Li, Wah; VLDB'03) and
// its closed extension C-Cubing(Star) (paper Sec. 4).
//
// A base star tree is built over the (star-reduced) relation; one depth-first
// traversal of each tree simultaneously aggregates all of its child trees —
// one per node, collapsing the dimension below that node ("multiway
// aggregation", Sec. 4.2) — which are then processed recursively, walking a
// spanning tree of the cuboid lattice. Iceberg (Apriori) pruning skips child
// trees of sub-min_sup nodes; cells are emitted at the last two levels of
// each tree.
//
// C-Cubing(Star) stores the closedness measure (Representative Tuple ID +
// partial Closed Mask) in every node, maintains it through child-tree
// aggregation with the Tree Mask combine rule, and prunes with:
//
//   - Lemma 5: a node whose Closed Mask intersects the Tree Mask (all its
//     tuples share a value on some collapsed dimension) can produce only
//     non-closed cells — skip its outputs and child trees. (The paper's
//     statement reads "C&TM = 0" but its rationale describes C&TM ≠ 0; we
//     implement the rationale.)
//   - Lemma 6: a node with a single (non-star) son spawns only non-closed
//     child-tree cells — skip the spawn.
package startree

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a run.
type Config struct {
	// MinSup is the iceberg threshold on count.
	MinSup int64
	// Closed selects C-Cubing(Star); false runs plain Star-Cubing.
	Closed bool
	// DisableLemma5 and DisableLemma6 turn off the closed prunings
	// (ablations; output must not change, only the work done).
	DisableLemma5 bool
	DisableLemma6 bool
	// NoStarReduction disables star reduction (ablation).
	NoStarReduction bool
	// Measure optionally aggregates the table's Aux column per output cell
	// through the tree aggregation itself (paper Sec. 6.1): nodes carry the
	// stored aggregate (core.MeasureAgg.Stored) and child-tree merges combine
	// it exactly like count. Delivered through sink.AuxSink.
	Measure core.MeasureKind
}

type runner struct {
	t        *table.Table
	cfg      Config
	out      sink.Sink
	auxOut   sink.AuxSink // set when cfg.Measure is active and out accepts aux
	cols     core.Columns
	vals     []core.Value
	slabPool [][]node   // recycled node slabs
	ctFree   []*ctBuild // recycled child-tree builders
}

// emit delivers one cell, with the node's stored measure aggregate when a
// native measure is active.
func (r *runner) emit(n *node) {
	if r.auxOut != nil {
		r.auxOut.EmitAux(r.vals, n.count, n.aux)
		return
	}
	r.out.Emit(r.vals, n.count)
}

// ctBuild tracks one child tree under simultaneous construction during its
// parent's DFS. Builders and their tree's node slabs are pooled by the
// runner: cubing creates and destroys one child tree per eligible node.
type ctBuild struct {
	tr      tree
	anchorL int         // anchor level in the parent tree
	cursors []*node     // cursor per child-tree depth for the current path
	psms    []core.Mask // star-dims-in-path mask per child-tree depth
}

// spawnCT prepares a (pooled) child-tree builder for anchor n at level l of
// tr, collapsing tr.dims[l].
func (r *runner) spawnCT(tr *tree, l int) *ctBuild {
	var ct *ctBuild
	if k := len(r.ctFree); k > 0 {
		ct = r.ctFree[k-1]
		r.ctFree = r.ctFree[:k-1]
	} else {
		ct = &ctBuild{
			cursors: make([]*node, r.t.NumDims()+1),
			psms:    make([]core.Mask, r.t.NumDims()+1),
		}
		ct.tr.ar.pool = &r.slabPool
	}
	ct.anchorL = l
	ct.tr.dims = tr.dims[l+1:]
	ct.tr.tm = tr.tm.With(tr.dims[l])
	root := ct.tr.ar.alloc()
	root.val = rootVal
	root.cls = core.EmptyClosedness()
	root.aux = core.StoredIdentity(r.cfg.Measure)
	ct.tr.root = root
	return ct
}

// retireCT releases the child tree's nodes and recycles the builder.
func (r *runner) retireCT(ct *ctBuild) {
	ct.tr.ar.release()
	ct.tr.root = nil
	r.ctFree = append(r.ctFree, ct)
}

// Run computes the (closed) iceberg cube of t and emits cells into out.
func Run(t *table.Table, cfg Config, out sink.Sink) error {
	if cfg.MinSup < 1 {
		return fmt.Errorf("startree: min_sup %d < 1", cfg.MinSup)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("startree: %w", err)
	}
	if t.NumDims() < 1 {
		return fmt.Errorf("startree: table has no dimensions")
	}
	if cfg.Measure != core.MeasureNone && t.Aux == nil {
		return fmt.Errorf("startree: measure %v requested but table has no aux column", cfg.Measure)
	}
	if int64(t.NumTuples()) < cfg.MinSup {
		return nil
	}
	r := &runner{
		t:    t,
		cfg:  cfg,
		out:  out,
		cols: t.Cols,
		vals: make([]core.Value, t.NumDims()),
	}
	if a, ok := out.(sink.AuxSink); ok && cfg.Measure != core.MeasureNone {
		r.auxOut = a
	}
	for d := range r.vals {
		r.vals[d] = core.Star
	}
	measure := core.MeasureNone
	if r.auxOut != nil {
		measure = cfg.Measure
	}
	base := buildBase(t, cfg.MinSup, cfg.Closed, cfg.NoStarReduction, measure, &r.slabPool)
	r.process(base)
	base.ar.release()
	return nil
}

// process runs the DFS of one tree. The caller guarantees r.vals already
// holds the tree's fixed prefix values.
func (r *runner) process(tr *tree) {
	r.dfs(tr, tr.root, 0, nil, false, false)
}

// dfs visits node n at level l of tr (root = level 0; a node at level l has
// a value on tr.dims[l-1]). acts holds the child trees of the current path
// still under construction; stars and prune carry path state (a star node on
// the path; Lemma 5 fired on the path).
func (r *runner) dfs(tr *tree, n *node, l int, acts []*ctBuild, stars, prune bool) {
	m := tr.depth()
	d := -1
	if l >= 1 {
		d = tr.dims[l-1]
		// Feed n into every active child tree of the path.
		for _, ct := range acts {
			depth := l - 1 - ct.anchorL
			if depth == 0 {
				root := ct.tr.root
				root.count += n.count
				if r.cfg.Closed {
					root.cls.Merge(n.cls, ct.tr.tm, r.cols)
				}
				if r.auxOut != nil {
					root.aux = core.CombineStored(r.cfg.Measure, root.aux, n.aux)
				}
				ct.cursors[0] = root
				ct.psms[0] = 0
			} else {
				parent := ct.cursors[depth-1]
				psm := ct.psms[depth-1]
				if n.val == core.StarNode {
					psm = psm.With(ct.tr.dims[depth-1])
				}
				x, created := parent.findOrAddSon(&ct.tr.ar, n.val)
				if created {
					x.count = n.count
					x.cls = n.cls
					x.aux = n.aux
				} else {
					x.count += n.count
					if r.cfg.Closed {
						x.cls.Merge(n.cls, ct.tr.tm|psm, r.cols)
					}
					if r.auxOut != nil {
						x.aux = core.CombineStored(r.cfg.Measure, x.aux, n.aux)
					}
				}
				ct.cursors[depth] = x
				ct.psms[depth] = psm
			}
		}
		r.vals[d] = n.val
		if n.val == core.StarNode {
			stars = true
		}
	}

	if r.cfg.Closed && !r.cfg.DisableLemma5 && n.cls.Mask&tr.tm != 0 {
		prune = true // Lemma 5: everything below is non-closed
	}

	switch {
	case l == m:
		// Leaf: emit the full cell of this tree's cuboid.
		if n.count >= r.cfg.MinSup && !stars &&
			(!r.cfg.Closed || n.cls.Mask&tr.tm == 0) {
			r.emit(n)
		}
	case l == m-1:
		// Last-second level: emit the cell collapsing the leaf dimension.
		// Its closedness bit for that dimension is the single-son test.
		if n.count >= r.cfg.MinSup && !stars && !prune {
			if !r.cfg.Closed ||
				(n.cls.Mask&tr.tm == 0 && !n.singleNonStarSon()) {
				r.emit(n)
			}
		}
		for s := n.child; s != nil; s = s.sib {
			r.dfs(tr, s, l+1, acts, stars, prune)
		}
	default:
		// Internal node: spawn the child tree collapsing tr.dims[l], then
		// walk the sons (feeding it), then process it.
		var ct *ctBuild
		if n.count >= r.cfg.MinSup && !stars && !prune &&
			!(r.cfg.Closed && !r.cfg.DisableLemma6 && n.singleNonStarSon()) {
			ct = r.spawnCT(tr, l)
			acts = append(acts, ct)
		}
		for s := n.child; s != nil; s = s.sib {
			r.dfs(tr, s, l+1, acts, stars, prune)
		}
		if ct != nil {
			r.process(&ct.tr)
			r.retireCT(ct)
		}
	}

	if l >= 1 {
		r.vals[d] = core.Star
	}
}
