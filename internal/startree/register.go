package startree

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// ccStar adapts this package to the engine registry as C-Cubing(Star) /
// Star-Cubing (the Closed flag selects which).
type ccStar struct{}

func (ccStar) Name() string { return "CC(Star)" }

func (ccStar) Capabilities() engine.Capabilities {
	return engine.Capabilities{Closed: true, Iceberg: true, OrderSensitive: true}
}

func (ccStar) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, Config{
		MinSup:        cfg.MinSup,
		Closed:        cfg.Closed,
		DisableLemma5: cfg.DisableLemma5,
		DisableLemma6: cfg.DisableLemma6,
	}, out)
}

func init() { engine.Register(ccStar{}) }
