package startree

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// ccStar adapts this package to the engine registry as C-Cubing(Star) /
// Star-Cubing (the Closed flag selects which).
type ccStar struct{}

func (ccStar) Name() string { return "CC(Star)" }

func (ccStar) Capabilities() engine.Capabilities {
	// Measures ride the tree aggregation itself: nodes carry the stored
	// aggregate and child-tree merges combine it exactly like count.
	return engine.Capabilities{Closed: true, Iceberg: true, NativeMeasure: true, OrderSensitive: true}
}

func (ccStar) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, Config{
		MinSup:        cfg.MinSup,
		Closed:        cfg.Closed,
		DisableLemma5: cfg.DisableLemma5,
		DisableLemma6: cfg.DisableLemma6,
		Measure:       cfg.Measure,
	}, out)
}

func init() { engine.Register(ccStar{}) }
