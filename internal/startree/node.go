package startree

import "ccubing/internal/core"

// rootVal marks a tree root; roots carry no dimension value.
const rootVal core.Value = -99

// node is a star-tree node. Sons form a singly-linked list (unsorted; new
// sons are prepended); lastSon caches the most recently touched son, which
// makes the value-run locality of LexSorted feeds O(1) per insertion.
type node struct {
	val     core.Value // dimension value, or core.StarNode for a star node
	count   int64
	aux     float64 // stored measure aggregate (native measures only)
	cls     core.Closedness
	child   *node // first son
	sib     *node // next sibling
	lastSon *node
	nsons   int32
}

// arena allocates nodes in slabs. Child trees are created and destroyed
// constantly during cubing, so slabs recycle through a shared pool (owned by
// the runner) instead of churning the garbage collector: release returns a
// dead tree's slabs, and alloc clears each node before handing it out.
type arena struct {
	slab []node
	used [][]node
	pool *[][]node
}

const arenaSlab = 1024

func (a *arena) alloc() *node {
	if len(a.slab) == 0 {
		if a.pool != nil && len(*a.pool) > 0 {
			p := *a.pool
			a.slab = p[len(p)-1]
			*a.pool = p[:len(p)-1]
		} else {
			a.slab = make([]node, arenaSlab)
		}
		a.used = append(a.used, a.slab[:arenaSlab])
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	*n = node{} // recycled slabs carry stale nodes
	return n
}

// release returns every slab of this arena to the shared pool. The caller
// guarantees no node of the tree is referenced anymore.
func (a *arena) release() {
	if a.pool == nil {
		return
	}
	*a.pool = append(*a.pool, a.used...)
	a.used = nil
	a.slab = nil
}

// sortKey orders son values: concrete values ascending, the star node last
// (matching the LexSort view used to build base trees, so sorted-order feeds
// resume at the lastSon hint in O(1)).
func sortKey(v core.Value) core.Value {
	if v == core.StarNode {
		return 1 << 30
	}
	return v
}

// findOrAddSon returns the son of p holding value v, creating it in sorted
// position when absent. The second result reports creation. The lastSon hint
// makes ascending access sequences (sorted base-tree builds, per-branch
// child-tree feeds) O(1) amortized.
func (p *node) findOrAddSon(a *arena, v core.Value) (*node, bool) {
	if p.lastSon != nil && p.lastSon.val == v {
		return p.lastSon, false
	}
	key := sortKey(v)
	var prev *node
	start := p.child
	if p.lastSon != nil && sortKey(p.lastSon.val) < key {
		// Everything before lastSon has a smaller key; resume there.
		prev = p.lastSon
		start = p.lastSon.sib
	}
	for s := start; s != nil && sortKey(s.val) <= key; s = s.sib {
		if s.val == v {
			p.lastSon = s
			return s, false
		}
		prev = s
	}
	n := a.alloc()
	n.val = v
	if prev == nil {
		n.sib = p.child
		p.child = n
	} else {
		n.sib = prev.sib
		prev.sib = n
	}
	p.lastSon = n
	p.nsons++
	return n, true
}

// singleNonStarSon reports whether p has exactly one son and it is not a
// star node: the condition under which all of p's tuples share one value on
// the sons' dimension (Lemma 6 and the last-second-level closedness bit).
// A single star son merges at least two distinct sub-min_sup values whenever
// the node is output-eligible, so it never reports true sharing.
func (p *node) singleNonStarSon() bool {
	return p.nsons == 1 && p.child.val != core.StarNode
}
