package startree

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func run(t *testing.T, tb *table.Table, cfg Config) *sink.Collector {
	t.Helper()
	var c sink.Collector
	d := &sink.Dedup{Next: &c}
	if err := Run(tb, cfg, d); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Dup != 0 {
		t.Fatalf("Star-Cubing emitted %d duplicate cells", d.Dup)
	}
	return &c
}

func paperTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

var oracleCases = []struct {
	cfg    gen.Config
	minsup int64
}{
	{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 1}, 1},
	{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 2}, 4},
	{gen.Config{T: 200, D: 3, C: 8, S: 2, Seed: 3}, 2},
	{gen.Config{T: 100, D: 5, C: 2, S: 1, Seed: 4}, 3},
	{gen.Config{T: 300, D: 2, C: 20, S: 0.5, Seed: 5}, 5},
	{gen.Config{T: 120, D: 6, C: 2, S: 0, Seed: 6}, 2},
	{gen.Config{T: 80, D: 4, C: 10, S: 3, Seed: 7}, 1},
	{gen.Config{T: 250, D: 4, C: 6, S: 1.5, Seed: 8}, 6},
	{gen.Config{T: 400, D: 3, C: 30, S: 1, Seed: 9}, 7},
}

func TestIcebergMatchesOracle(t *testing.T) {
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Iceberg(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: c.minsup})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

func TestClosedMatchesOracle(t *testing.T) {
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Closed(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: c.minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

// TestPruningNeutral: Lemma 5/6 pruning and star reduction must never change
// the output, only the work performed.
func TestPruningNeutral(t *testing.T) {
	variants := []Config{
		{Closed: true, DisableLemma5: true},
		{Closed: true, DisableLemma6: true},
		{Closed: true, DisableLemma5: true, DisableLemma6: true},
		{Closed: true, NoStarReduction: true},
	}
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		baseline := run(t, tb, Config{MinSup: c.minsup, Closed: true})
		for vi, v := range variants {
			v.MinSup = c.minsup
			got := run(t, tb, v)
			if diff := sink.DiffCells(got.Cells, baseline.Cells, 8); diff != "" {
				t.Fatalf("case %d variant %d changed output:\n%s", i, vi, diff)
			}
		}
		// Star reduction neutrality for plain iceberg cubing too.
		icebergBase := run(t, tb, Config{MinSup: c.minsup})
		icebergNoStar := run(t, tb, Config{MinSup: c.minsup, NoStarReduction: true})
		if diff := sink.DiffCells(icebergNoStar.Cells, icebergBase.Cells, 8); diff != "" {
			t.Fatalf("case %d star reduction changed iceberg output:\n%s", i, diff)
		}
	}
}

func TestPaperExample1(t *testing.T) {
	got := run(t, paperTable(t), Config{MinSup: 2, Closed: true})
	if len(got.Cells) != 2 {
		t.Fatalf("cells:\n%s", sink.FormatCells(got.Cells))
	}
	m, _ := got.ByKey()
	if m[core.CellKey([]core.Value{0, 0, 0, core.Star})] != 2 ||
		m[core.CellKey([]core.Value{0, core.Star, core.Star, core.Star})] != 3 {
		t.Fatalf("wrong closed cells:\n%s", sink.FormatCells(got.Cells))
	}
}

func TestDependenceData(t *testing.T) {
	cards := []int{5, 5, 5, 5, 5}
	rules := gen.RulesForDependence(2, cards, 41)
	tb := gen.MustSynthetic(gen.Config{T: 300, Cards: cards, S: 0.5, Seed: 42, Rules: rules})
	for _, minsup := range []int64{1, 4, 16} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d:\n%s", minsup, diff)
		}
	}
}

func TestSingleDimension(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 100, D: 1, C: 5, S: 1, Seed: 50})
	for _, minsup := range []int64{1, 10} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d:\n%s", minsup, diff)
		}
	}
}

func TestDuplicateTuples(t *testing.T) {
	rows := [][]core.Value{}
	for i := 0; i < 30; i++ {
		rows = append(rows, []core.Value{core.Value(i % 2), core.Value(i % 3), 1})
	}
	tb, err := table.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []int64{1, 5} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d:\n%s", minsup, diff)
		}
	}
}

func TestErrors(t *testing.T) {
	tb := paperTable(t)
	var c sink.Collector
	if err := Run(tb, Config{MinSup: 0}, &c); err == nil {
		t.Fatal("min_sup 0 must error")
	}
	bad := table.New(1, 2)
	bad.Cols[0][0] = 9
	if err := Run(bad, Config{MinSup: 1}, &c); err == nil {
		t.Fatal("invalid table must error")
	}
}

func TestMinsupAboveTotal(t *testing.T) {
	got := run(t, paperTable(t), Config{MinSup: 4, Closed: true})
	if len(got.Cells) != 0 {
		t.Fatalf("cells above T:\n%s", sink.FormatCells(got.Cells))
	}
}

// TestHeavyStarReduction uses a shape where most values fall below min_sup,
// exercising star nodes against the closedness machinery.
func TestHeavyStarReduction(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 120, D: 3, C: 40, S: 0, Seed: 60})
	for _, minsup := range []int64{2, 4, 8} {
		wantClosed, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		gotClosed := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(gotClosed.Cells, wantClosed, 8); diff != "" {
			t.Fatalf("closed min_sup %d:\n%s", minsup, diff)
		}
		wantIce, err := refcube.Iceberg(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		gotIce := run(t, tb, Config{MinSup: minsup})
		if diff := sink.DiffCells(gotIce.Cells, wantIce, 8); diff != "" {
			t.Fatalf("iceberg min_sup %d:\n%s", minsup, diff)
		}
	}
}
