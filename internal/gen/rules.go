package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

// Rule is a dependence rule in the sense of paper Sec. 5.3: when every
// condition dimension carries its condition value, the target dimension is
// forced to the target value. The paper's example is (a1, b1) -> c1.
type Rule struct {
	CondDims  []int
	CondVals  []core.Value
	TargetDim int
	TargetVal core.Value
}

// Matches reports whether tuple tid of t satisfies the rule's condition.
func (r Rule) Matches(t *table.Table, tid core.TID) bool {
	for i, d := range r.CondDims {
		if t.Cols[d][tid] != r.CondVals[i] {
			return false
		}
	}
	return true
}

// PruningPower estimates the fraction of cube cells the rule removes,
// following the paper's estimate for a rule (a1, b1) -> c1:
//
//	Card(C) / (Card(A) × Card(B) × (Card(C)+1))
//
// generalized to k condition dimensions.
func (r Rule) PruningPower(cards []int) float64 {
	denom := 1.0
	for _, d := range r.CondDims {
		denom *= float64(cards[d])
	}
	ct := float64(cards[r.TargetDim])
	return ct / (denom * (ct + 1))
}

// Validate checks the rule against a dimension/cardinality layout.
func (r Rule) Validate(cards []int) error {
	if len(r.CondDims) == 0 || len(r.CondDims) != len(r.CondVals) {
		return fmt.Errorf("gen: rule has %d condition dims and %d values", len(r.CondDims), len(r.CondVals))
	}
	seen := map[int]bool{r.TargetDim: true}
	if r.TargetDim < 0 || r.TargetDim >= len(cards) {
		return fmt.Errorf("gen: rule target dim %d out of range", r.TargetDim)
	}
	if r.TargetVal < 0 || int(r.TargetVal) >= cards[r.TargetDim] {
		return fmt.Errorf("gen: rule target value %d out of range", r.TargetVal)
	}
	for i, d := range r.CondDims {
		if d < 0 || d >= len(cards) {
			return fmt.Errorf("gen: rule condition dim %d out of range", d)
		}
		if seen[d] {
			return fmt.Errorf("gen: rule reuses dim %d", d)
		}
		seen[d] = true
		if r.CondVals[i] < 0 || int(r.CondVals[i]) >= cards[d] {
			return fmt.Errorf("gen: rule condition value %d out of range on dim %d", r.CondVals[i], d)
		}
	}
	return nil
}

// Dependence measures a rule set's combined dependence as in the paper:
// R = -Σ log10(1 - pruning_power(rule_i)). Larger R means a more dependent
// dataset.
func Dependence(rules []Rule, cards []int) float64 {
	r := 0.0
	for _, rule := range rules {
		r += -math.Log10(1 - rule.PruningPower(cards))
	}
	return r
}

// RulesForDependence builds a random rule set whose combined dependence
// reaches at least target (stopping as soon as it does). Rules use two
// condition dimensions, mirroring the paper's examples. A zero or negative
// target yields no rules.
func RulesForDependence(target float64, cards []int, seed int64) []Rule {
	if target <= 0 {
		return nil
	}
	if len(cards) < 3 {
		panic("gen: dependence rules need at least 3 dimensions")
	}
	rng := rand.New(rand.NewSource(seed))
	var rules []Rule
	got := 0.0
	for got < target {
		dims := rng.Perm(len(cards))[:3]
		r := Rule{
			CondDims:  []int{dims[0], dims[1]},
			CondVals:  []core.Value{core.Value(rng.Intn(cards[dims[0]])), core.Value(rng.Intn(cards[dims[1]]))},
			TargetDim: dims[2],
			TargetVal: core.Value(rng.Intn(cards[dims[2]])),
		}
		rules = append(rules, r)
		got += -math.Log10(1 - r.PruningPower(cards))
	}
	return rules
}

// ApplyRules rewrites the relation so that every rule holds: for each tuple
// matching a rule's condition, the target dimension is set to the target
// value. Rules are applied in order, so later rules win on conflicts, and a
// fixed point over one pass is what the paper's generator produces.
func ApplyRules(t *table.Table, rules []Rule) error {
	for i, r := range rules {
		if err := r.Validate(t.Cards); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	n := t.NumTuples()
	for _, r := range rules {
		target := t.Cols[r.TargetDim]
		for tid := 0; tid < n; tid++ {
			if r.Matches(t, core.TID(tid)) {
				target[tid] = r.TargetVal
			}
		}
	}
	return nil
}
