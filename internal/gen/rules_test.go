package gen

import (
	"math"
	"testing"

	"ccubing/internal/core"
)

func TestRulePruningPowerPaperFormula(t *testing.T) {
	// Rule (a,b) -> c over cards A=4, B=5, C=3:
	// power = 3 / (4*5*(3+1)) = 3/80.
	r := Rule{CondDims: []int{0, 1}, CondVals: []core.Value{0, 0}, TargetDim: 2, TargetVal: 0}
	got := r.PruningPower([]int{4, 5, 3})
	if math.Abs(got-3.0/80) > 1e-12 {
		t.Fatalf("pruning power = %v, want %v", got, 3.0/80)
	}
}

func TestDependenceAccumulates(t *testing.T) {
	cards := []int{4, 5, 3}
	r := Rule{CondDims: []int{0, 1}, CondVals: []core.Value{0, 0}, TargetDim: 2, TargetVal: 0}
	one := Dependence([]Rule{r}, cards)
	two := Dependence([]Rule{r, r}, cards)
	if math.Abs(two-2*one) > 1e-12 {
		t.Fatalf("dependence not additive: %v vs %v", two, 2*one)
	}
	if Dependence(nil, cards) != 0 {
		t.Fatal("no rules should mean zero dependence")
	}
}

func TestRulesForDependenceReachesTarget(t *testing.T) {
	cards := []int{20, 20, 20, 20, 20, 20, 20, 20}
	for _, target := range []float64{0.5, 1, 2, 3} {
		rules := RulesForDependence(target, cards, 11)
		got := Dependence(rules, cards)
		if got < target {
			t.Fatalf("target %v: got dependence %v with %d rules", target, got, len(rules))
		}
		for i, r := range rules {
			if err := r.Validate(cards); err != nil {
				t.Fatalf("rule %d invalid: %v", i, err)
			}
		}
	}
	if RulesForDependence(0, cards, 1) != nil {
		t.Fatal("target 0 must produce no rules")
	}
}

func TestApplyRulesForcesTargets(t *testing.T) {
	tbl := MustSynthetic(Config{T: 2000, D: 4, C: 6, S: 0, Seed: 3})
	r := Rule{CondDims: []int{0, 1}, CondVals: []core.Value{2, 3}, TargetDim: 2, TargetVal: 5}
	if err := ApplyRules(tbl, []Rule{r}); err != nil {
		t.Fatalf("ApplyRules: %v", err)
	}
	matched := 0
	for tid := 0; tid < tbl.NumTuples(); tid++ {
		if tbl.Cols[0][tid] == 2 && tbl.Cols[1][tid] == 3 {
			matched++
			if tbl.Cols[2][tid] != 5 {
				t.Fatalf("tuple %d matches but target not forced", tid)
			}
		}
	}
	if matched == 0 {
		t.Fatal("test vacuous: no tuple matched the rule condition")
	}
}

func TestRuleValidate(t *testing.T) {
	cards := []int{4, 4, 4}
	bad := []Rule{
		{CondDims: nil, TargetDim: 0, TargetVal: 0},
		{CondDims: []int{0}, CondVals: []core.Value{0, 1}, TargetDim: 1, TargetVal: 0},
		{CondDims: []int{0}, CondVals: []core.Value{0}, TargetDim: 0, TargetVal: 0},       // target in condition
		{CondDims: []int{0}, CondVals: []core.Value{9}, TargetDim: 1, TargetVal: 0},       // value out of card
		{CondDims: []int{7}, CondVals: []core.Value{0}, TargetDim: 1, TargetVal: 0},       // dim out of range
		{CondDims: []int{0}, CondVals: []core.Value{0}, TargetDim: 1, TargetVal: 9},       // target value out
		{CondDims: []int{0, 0}, CondVals: []core.Value{0, 0}, TargetDim: 1, TargetVal: 0}, // dup dim
	}
	for i, r := range bad {
		if err := r.Validate(cards); err == nil {
			t.Errorf("rule %d should be invalid", i)
		}
	}
	ok := Rule{CondDims: []int{0, 2}, CondVals: []core.Value{1, 2}, TargetDim: 1, TargetVal: 3}
	if err := ok.Validate(cards); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestSyntheticWithRulesEndToEnd(t *testing.T) {
	cards := []int{10, 10, 10, 10}
	rules := RulesForDependence(1.5, cards, 9)
	tbl := MustSynthetic(Config{T: 1000, Cards: cards, S: 0, Seed: 4, Rules: rules})
	// Every rule must hold on the generated data (later rules win conflicts,
	// and rule application is ordered, so verify in reverse order stopping at
	// the first rule whose target was overwritten by a later one).
	last := rules[len(rules)-1]
	for tid := 0; tid < tbl.NumTuples(); tid++ {
		if last.Matches(tbl, core.TID(tid)) && tbl.Cols[last.TargetDim][tid] != last.TargetVal {
			t.Fatalf("last rule violated at tuple %d", tid)
		}
	}
}
