package gen

import "math"

// powNeg computes x^(-s) for x >= 1, s >= 0.
func powNeg(x, s float64) float64 { return math.Pow(x, -s) }
