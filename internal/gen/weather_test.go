package gen

import (
	"testing"

	"ccubing/internal/core"
)

func TestWeatherShape(t *testing.T) {
	tbl := MustWeather(1, 5000, 8)
	if tbl.NumDims() != 8 || tbl.NumTuples() != 5000 {
		t.Fatalf("shape = %dx%d", tbl.NumDims(), tbl.NumTuples())
	}
	for d, wd := range WeatherDims {
		if tbl.Cards[d] != wd.Card {
			t.Fatalf("dim %d card = %d, want %d", d, tbl.Cards[d], wd.Card)
		}
		if tbl.Names[d] != wd.Name {
			t.Fatalf("dim %d name = %q, want %q", d, tbl.Names[d], wd.Name)
		}
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestWeatherSelectDims(t *testing.T) {
	tbl := MustWeather(1, 1000, 5)
	if tbl.NumDims() != 5 {
		t.Fatalf("dims = %d", tbl.NumDims())
	}
	if tbl.Names[4] != "weather" {
		t.Fatalf("5th dim = %q", tbl.Names[4])
	}
}

func TestWeatherDeterminism(t *testing.T) {
	a := MustWeather(7, 2000, 8)
	b := MustWeather(7, 2000, 8)
	for d := range a.Cols {
		for i := range a.Cols[d] {
			if a.Cols[d][i] != b.Cols[d][i] {
				t.Fatalf("seeded weather not deterministic at dim %d tuple %d", d, i)
			}
		}
	}
}

// TestWeatherDependence verifies the planted functional dependencies: the
// properties the paper's experiments need from this dataset.
func TestWeatherDependence(t *testing.T) {
	tbl := MustWeather(3, 20000, 8)
	// station -> latitude should hold for the large majority of reports
	// (ships drift occasionally).
	lat := map[core.Value]core.Value{}
	agree, total := 0, 0
	for i := 0; i < tbl.NumTuples(); i++ {
		st := tbl.Cols[3][i]
		l := tbl.Cols[1][i]
		if prev, ok := lat[st]; ok {
			total++
			if prev == l {
				agree++
			}
		} else {
			lat[st] = l
		}
	}
	if total == 0 || float64(agree)/float64(total) < 0.9 {
		t.Fatalf("station->latitude agreement %d/%d too weak", agree, total)
	}
	// (time bucket, latitude) -> solar altitude must be exactly functional.
	solar := map[[2]core.Value]core.Value{}
	for i := 0; i < tbl.NumTuples(); i++ {
		k := [2]core.Value{tbl.Cols[0][i], tbl.Cols[1][i]}
		s := tbl.Cols[6][i]
		if prev, ok := solar[k]; ok && prev != s {
			t.Fatalf("(time,lat) -> solar violated at tuple %d", i)
		}
		solar[k] = s
	}
}

func TestWeatherSkewOnStations(t *testing.T) {
	tbl := MustWeather(5, 30000, 8)
	f := map[core.Value]int{}
	for _, v := range tbl.Cols[3] {
		f[v]++
	}
	max := 0
	for _, c := range f {
		if c > max {
			max = c
		}
	}
	// Busy stations must report far above the mean rate.
	mean := float64(tbl.NumTuples()) / float64(len(f))
	if float64(max) < 10*mean {
		t.Fatalf("station skew too weak: max %d vs mean %.1f", max, mean)
	}
}

func TestWeatherDefaults(t *testing.T) {
	tbl := MustWeather(1, -1, -1)
	if tbl.NumDims() != 8 {
		t.Fatalf("default dims = %d", tbl.NumDims())
	}
	if tbl.NumTuples() != WeatherTuples {
		t.Fatalf("default tuples = %d", tbl.NumTuples())
	}
}
