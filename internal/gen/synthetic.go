package gen

import (
	"fmt"
	"math/rand"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

// Config describes a synthetic relation in the paper's vocabulary:
// T tuples, D dimensions, cardinality C (or per-dimension Cards), Zipf skew
// S applied to every dimension (or per-dimension Skews), and an optional set
// of dependence rules (Sec. 5.3).
type Config struct {
	T     int       // number of tuples
	D     int       // number of dimensions (ignored when Cards is set)
	C     int       // cardinality per dimension (ignored when Cards is set)
	Cards []int     // per-dimension cardinalities; overrides D and C
	S     float64   // Zipf skew for all dimensions (0 = uniform)
	Skews []float64 // per-dimension skew; overrides S
	Rules []Rule    // dependence rules applied after value sampling
	Seed  int64     // RNG seed; equal configs generate equal tables
}

// cards resolves the per-dimension cardinality vector.
func (c Config) cards() ([]int, error) {
	if c.Cards != nil {
		for d, card := range c.Cards {
			if card < 1 {
				return nil, fmt.Errorf("gen: dimension %d has cardinality %d", d, card)
			}
		}
		return c.Cards, nil
	}
	if c.D < 1 || c.D > core.MaxDims {
		return nil, fmt.Errorf("gen: D=%d out of range", c.D)
	}
	if c.C < 1 {
		return nil, fmt.Errorf("gen: C=%d out of range", c.C)
	}
	cards := make([]int, c.D)
	for d := range cards {
		cards[d] = c.C
	}
	return cards, nil
}

func (c Config) skews(nd int) ([]float64, error) {
	if c.Skews != nil {
		if len(c.Skews) != nd {
			return nil, fmt.Errorf("gen: %d skews for %d dimensions", len(c.Skews), nd)
		}
		return c.Skews, nil
	}
	sk := make([]float64, nd)
	for d := range sk {
		sk[d] = c.S
	}
	return sk, nil
}

// Synthetic generates a relation per the config. Values are sampled
// independently per dimension from a Zipf(s) distribution over [0, C), with
// value ranks shuffled per dimension (so the frequent values are not always
// the numerically small codes), then dependence rules are applied in order.
func Synthetic(cfg Config) (*table.Table, error) {
	if cfg.T < 1 {
		return nil, fmt.Errorf("gen: T=%d out of range", cfg.T)
	}
	cards, err := cfg.cards()
	if err != nil {
		return nil, err
	}
	skews, err := cfg.skews(len(cards))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nd := len(cards)
	t := table.New(nd, cfg.T)
	copy(t.Cards, cards)

	for d := 0; d < nd; d++ {
		z := NewZipf(rng, skews[d], cards[d])
		perm := rng.Perm(cards[d]) // rank -> value code
		col := t.Cols[d]
		for i := range col {
			col[i] = core.Value(perm[z.Next()])
		}
	}
	if err := ApplyRules(t, cfg.Rules); err != nil {
		return nil, err
	}
	return t, nil
}

// MustSynthetic is Synthetic for known-good configs (tests, benchmarks).
func MustSynthetic(cfg Config) *table.Table {
	t, err := Synthetic(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
