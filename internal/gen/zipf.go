// Package gen produces the synthetic and simulated datasets of the paper's
// evaluation (Sec. 5): uniform and Zipf-skewed relations, relations with
// injected dependence rules (Sec. 5.3), and a simulator standing in for the
// SEP83L weather dataset (see DESIGN.md for the substitution rationale).
// All generators are deterministic given a seed.
package gen

import "math/rand"

// Zipf samples values in [0, n) with P(k) proportional to 1/(k+1)^s. Unlike
// math/rand.Zipf it accepts any s >= 0 (the paper sweeps skew 0..3, and 0
// must mean uniform), using a precomputed CDF and binary search.
type Zipf struct {
	cdf []float64 // cdf[k] = P(value <= k)
	rng *rand.Rand
}

// NewZipf builds a sampler over n values with exponent s using rng.
// It panics if n < 1 or s < 0.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n < 1 {
		panic("gen: Zipf needs n >= 1")
	}
	if s < 0 {
		panic("gen: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += zipfWeight(k, s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

func zipfWeight(k int, s float64) float64 {
	if s == 0 {
		return 1
	}
	return powNeg(float64(k+1), s)
}

// Next samples one value.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of distinct values the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
