package gen

import (
	"math/rand"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

// WeatherDims is the dimension roster of the paper's weather dataset
// (SEP83L.DAT, Hahn et al., as selected in Sec. 5): name and cardinality.
// The real file is not redistributable/reachable offline, so Weather below
// synthesizes a relation with the same roster and the same *dependence
// structure* the paper relies on; see DESIGN.md §4.
var WeatherDims = []struct {
	Name string
	Card int
}{
	{"ymdh", 238},       // year-month-day-hour bucket
	{"latitude", 5260},  //
	{"longitude", 6187}, //
	{"station", 6515},   //
	{"weather", 100},    // present weather code
	{"change", 110},     // change code
	{"solar", 1535},     // solar altitude
	{"lunar", 155},      // relative lunar illuminance
}

// WeatherTuples is the tuple count of the paper's weather dataset.
const WeatherTuples = 1002752

// Weather synthesizes a weather-like relation with n tuples over the first
// nd dimensions of WeatherDims (the paper selects 5..8). The generator
// plants the functional dependencies the paper calls out:
//
//   - station determines latitude and longitude (a ship/land station sits at
//     a fixed grid cell, with occasional ship drift noise);
//   - solar altitude is a function of the (time bucket, latitude band) pair —
//     the paper's own dependence example — discretized to 1535 codes;
//   - the change code is correlated with the present-weather code;
//   - weather codes are Zipf-skewed (a few synoptic codes dominate), and
//     station reports are Zipf-skewed (busy stations report often).
//
// The result is large, high-cardinality and highly dependent — the data
// properties Figs. 7, 11, 16, 17 exercise.
func Weather(seed int64, n, nd int) (*table.Table, error) {
	if nd < 1 {
		nd = len(WeatherDims)
	}
	if nd > len(WeatherDims) {
		nd = len(WeatherDims)
	}
	if n < 1 {
		n = WeatherTuples
	}
	rng := rand.New(rand.NewSource(seed))
	full := len(WeatherDims)
	t := table.New(full, n)
	for d, wd := range WeatherDims {
		t.Names[d] = wd.Name
		t.Cards[d] = wd.Card
	}

	const (
		cYmdh    = 238
		cLat     = 5260
		cLon     = 6187
		cStation = 6515
		cWeather = 100
		cChange  = 110
		cSolar   = 1535
		cLunar   = 155
	)

	// Fixed per-station geography (functional dependency station -> lat/lon).
	stLat := make([]core.Value, cStation)
	stLon := make([]core.Value, cStation)
	stShip := make([]bool, cStation)
	for s := range stLat {
		stLat[s] = core.Value(rng.Intn(cLat))
		stLon[s] = core.Value(rng.Intn(cLon))
		stShip[s] = rng.Float64() < 0.2 // ships drift; land stations do not
	}

	stationZ := NewZipf(rng, 1.1, cStation)
	weatherZ := NewZipf(rng, 1.4, cWeather)
	timeZ := NewZipf(rng, 0.3, cYmdh)

	for i := 0; i < n; i++ {
		st := stationZ.Next()
		tm := timeZ.Next()
		lat := stLat[st]
		lon := stLon[st]
		if stShip[st] && rng.Float64() < 0.15 {
			// Ship drift: small positional jitter keeps the dependence
			// strong but not perfectly functional, like the real data.
			lat = core.Value((int(lat) + 1 + rng.Intn(3)) % cLat)
			lon = core.Value((int(lon) + 1 + rng.Intn(3)) % cLon)
		}
		wx := core.Value(weatherZ.Next())
		// Change code tracks the weather code: the synoptic "change" is
		// mostly determined by what the present weather is.
		ch := core.Value((int(wx)*7 + rng.Intn(8)) % cChange)
		// Solar altitude: deterministic in (time bucket, latitude band);
		// the paper: "when a certain weather condition appears at the same
		// time of the day, there is always a unique value for solar
		// altitude". Latitude bands of ~50 codes give plentiful repeats.
		band := int(lat) / 50
		solar := core.Value((tm*131 + band*17) % cSolar)
		// Lunar illuminance: a slow function of the time bucket plus noise.
		lunar := core.Value((tm/2 + rng.Intn(12)) % cLunar)

		t.Cols[0][i] = core.Value(tm)
		t.Cols[1][i] = lat
		t.Cols[2][i] = lon
		t.Cols[3][i] = core.Value(st)
		t.Cols[4][i] = wx
		t.Cols[5][i] = ch
		t.Cols[6][i] = solar
		t.Cols[7][i] = lunar
	}
	if nd == full {
		return t, nil
	}
	return t.SelectDims(nd)
}

// MustWeather is Weather for known-good arguments.
func MustWeather(seed int64, n, nd int) *table.Table {
	t, err := Weather(seed, n, nd)
	if err != nil {
		panic(err)
	}
	return t
}
