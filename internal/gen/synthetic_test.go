package gen

import (
	"testing"

	"ccubing/internal/core"
)

func TestSyntheticShapeAndDeterminism(t *testing.T) {
	cfg := Config{T: 500, D: 4, C: 10, S: 1, Seed: 42}
	a := MustSynthetic(cfg)
	b := MustSynthetic(cfg)
	if a.NumDims() != 4 || a.NumTuples() != 500 {
		t.Fatalf("shape = %dx%d", a.NumDims(), a.NumTuples())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for d := range a.Cols {
		for i := range a.Cols[d] {
			if a.Cols[d][i] != b.Cols[d][i] {
				t.Fatalf("same seed produced different data at dim %d tuple %d", d, i)
			}
		}
	}
	c := MustSynthetic(Config{T: 500, D: 4, C: 10, S: 1, Seed: 43})
	same := true
	for d := range a.Cols {
		for i := range a.Cols[d] {
			if a.Cols[d][i] != c.Cols[d][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticPerDimCards(t *testing.T) {
	tbl := MustSynthetic(Config{T: 200, Cards: []int{2, 50}, Seed: 1})
	if tbl.Cards[0] != 2 || tbl.Cards[1] != 50 {
		t.Fatalf("cards = %v", tbl.Cards)
	}
	for _, v := range tbl.Cols[0] {
		if v < 0 || v > 1 {
			t.Fatalf("value %d beyond card 2", v)
		}
	}
}

func TestSyntheticPerDimSkews(t *testing.T) {
	tbl := MustSynthetic(Config{T: 20000, Cards: []int{100, 100}, Skews: []float64{0, 3}, Seed: 7})
	// Max frequency on the skewed dimension must far exceed the uniform one.
	maxFreq := func(d int) int {
		f := make(map[core.Value]int)
		for _, v := range tbl.Cols[d] {
			f[v]++
		}
		max := 0
		for _, c := range f {
			if c > max {
				max = c
			}
		}
		return max
	}
	if u, s := maxFreq(0), maxFreq(1); s < 4*u {
		t.Fatalf("skewed max freq %d not >> uniform max freq %d", s, u)
	}
}

func TestSyntheticErrors(t *testing.T) {
	cases := []Config{
		{T: 0, D: 3, C: 5},
		{T: 10, D: 0, C: 5},
		{T: 10, D: 3, C: 0},
		{T: 10, D: 65, C: 2},
		{T: 10, Cards: []int{5, 0}},
		{T: 10, D: 2, C: 5, Skews: []float64{1}},
	}
	for i, cfg := range cases {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSyntheticSkewZeroIsRoughlyUniform(t *testing.T) {
	tbl := MustSynthetic(Config{T: 50000, D: 1, C: 10, S: 0, Seed: 5})
	f := make(map[core.Value]int)
	for _, v := range tbl.Cols[0] {
		f[v]++
	}
	for v, c := range f {
		if c < 4000 || c > 6000 {
			t.Fatalf("value %d count %d; uniform expected ~5000", v, c)
		}
	}
}
