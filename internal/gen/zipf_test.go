package gen

import (
	"math/rand"
	"testing"
)

func TestZipfUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 0, 10)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for v, c := range counts {
		// Each value should land near n/10; allow generous slack.
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("uniform zipf: value %d drawn %d times (expected ~%d)", v, c, n/10)
		}
	}
}

func TestZipfSkewOrdersFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 2, 8)
	counts := make([]int, 8)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	// With s=2, frequencies must be (weakly) decreasing in rank, and rank 0
	// must dominate heavily (>50% of mass for n=8, s=2).
	for k := 1; k < len(counts); k++ {
		if counts[k] > counts[k-1]+200 {
			t.Fatalf("rank %d drawn more than rank %d: %v", k, k-1, counts)
		}
	}
	if counts[0] < 25000 {
		t.Fatalf("rank 0 should dominate at s=2: %v", counts)
	}
}

func TestZipfCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1, 5)
	if z.N() != 5 {
		t.Fatalf("N = %d", z.N())
	}
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 5 {
			t.Fatalf("value %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d of 5 values drawn", len(seen))
	}
}

func TestZipfSingleValue(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(4)), 3, 1)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("n=1 sampler must always return 0")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		s float64
		n int
	}{{-1, 5}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%v,n=%d) did not panic", c.s, c.n)
				}
			}()
			NewZipf(rand.New(rand.NewSource(1)), c.s, c.n)
		}()
	}
}
