package psort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccubing/internal/core"
)

// TestPartitionPropertiesQuick validates the partition contract over random
// inputs: the TID multiset is preserved, buckets are contiguous and ordered
// by value, and bucket contents match the column.
func TestPartitionPropertiesQuick(t *testing.T) {
	f := func(seed int64, nRaw, cardRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%64 + 1
		card := int(cardRaw)%300 + 1
		col := make([]core.Value, n)
		for i := range col {
			col[i] = core.Value(rng.Intn(card))
		}
		tids := make([]core.TID, n)
		seen := make([]int, n)
		for i := range tids {
			tids[i] = core.TID(i)
		}
		var p Partitioner
		b := p.Partition(tids, col, card)

		// Multiset preserved.
		for _, tid := range tids {
			seen[tid]++
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// Buckets contiguous, values ascending, contents correct.
		if b.Off[0] != 0 || b.Off[len(b.Vals)] != n {
			return false
		}
		for i, v := range b.Vals {
			if i > 0 && b.Vals[i-1] >= v {
				return false
			}
			for _, tid := range tids[b.Off[i]:b.Off[i+1]] {
				if col[tid] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionStableQuick: equal-valued TIDs keep their relative order
// (counting sort must be stable; pool ordering in StarArray relies on it).
func TestPartitionStableQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		col := make([]core.Value, n)
		for i := range col {
			col[i] = core.Value(rng.Intn(5))
		}
		tids := make([]core.TID, n)
		for i := range tids {
			tids[i] = core.TID(i)
		}
		var p Partitioner
		b := p.Partition(tids, col, 5)
		for i := range b.Vals {
			bucket := tids[b.Off[i]:b.Off[i+1]]
			for j := 1; j < len(bucket); j++ {
				if bucket[j-1] >= bucket[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
