// Package psort provides the tuple-ID partitioning and sorting primitives
// shared by the cubing engines: counting-sort partitioning of a TID range by
// one dimension (BUC, QC-DFS) and stable LSD radix sort of TIDs by a
// dimension sequence (star-tree and StarArray construction, pool ordering).
package psort

import (
	"sort"

	"ccubing/internal/core"
)

// Buckets describes the result of partitioning a TID range by one dimension:
// for each distinct value present, the half-open range of positions it
// occupies after the sort.
type Buckets struct {
	// Vals lists the distinct values present, ascending.
	Vals []core.Value
	// Off[i]..Off[i+1] is the range of Vals[i]; len(Off) == len(Vals)+1.
	Off []int
}

// Partitioner counting-sorts TID ranges by a dimension. It owns reusable
// scratch so repeated partitioning does not allocate. A Partitioner is not
// safe for concurrent use.
type Partitioner struct {
	counts []int64
	tmp    []core.TID
	b      Buckets
}

// Partition stably counting-sorts tids (in place) by col and returns the
// value buckets. card bounds the values in col. The returned Buckets is
// valid until the next Partition call.
//
// Large partitions pay O(len(tids) + card) — the authentic BUC cost profile
// the paper discusses for high-cardinality data. Partitions much smaller
// than the cardinality skip the full-card scan: distinct values are gathered
// from the data and the count array is cleaned touched-entries-only, so deep
// recursions over tiny partitions stay O(len(tids) log len(tids)).
func (p *Partitioner) Partition(tids []core.TID, col []core.Value, card int) Buckets {
	if cap(p.counts) < card {
		p.counts = make([]int64, card)
		// Fresh array is already zero; the invariant below keeps it zero
		// between calls.
	}
	counts := p.counts[:card]
	if cap(p.tmp) < len(tids) {
		p.tmp = make([]core.TID, len(tids))
	}
	tmp := p.tmp[:len(tids)]
	p.b.Vals = p.b.Vals[:0]
	p.b.Off = p.b.Off[:0]
	p.b.Off = append(p.b.Off, 0)

	// counts[] is all-zero on entry (maintained below), so only touched
	// entries need attention in either path.
	if len(tids)*8 < card {
		// Sparse path: collect distinct values from the data.
		for _, t := range tids {
			v := col[t]
			if counts[v] == 0 {
				p.b.Vals = append(p.b.Vals, v)
			}
			counts[v]++
		}
		sort.Slice(p.b.Vals, func(i, j int) bool { return p.b.Vals[i] < p.b.Vals[j] })
		pos := 0
		for _, v := range p.b.Vals {
			c := counts[v]
			pos += int(c)
			p.b.Off = append(p.b.Off, pos)
			counts[v] = int64(pos) - c
		}
	} else {
		for _, t := range tids {
			counts[col[t]]++
		}
		pos := 0
		for v := 0; v < card; v++ {
			c := counts[v]
			if c == 0 {
				continue
			}
			p.b.Vals = append(p.b.Vals, core.Value(v))
			pos += int(c)
			p.b.Off = append(p.b.Off, pos)
			counts[v] = int64(pos) - c // bucket write cursor start
		}
	}
	for _, t := range tids {
		v := col[t]
		tmp[counts[v]] = t
		counts[v]++
	}
	copy(tids, tmp)
	// Restore the all-zero invariant touching only used entries.
	for _, v := range p.b.Vals {
		counts[v] = 0
	}
	return p.b
}

// LexSort stably sorts tids by the given dimension sequence (most-significant
// dimension first) using LSD radix passes of counting sort, O(Σ(card_d) +
// len(dims)·len(tids)). Values are compared through view, which maps a
// (dim, value) pair to a sort key in [0, cards[d]+1) — engines use it to fold
// star reduction into the order (mapping infrequent values to the extra key
// cards[d], so they group last); pass nil to sort by raw values.
func LexSort(tids []core.TID, cols core.Columns, dims []int, cards []int, view func(d int, v core.Value) core.Value) {
	if len(tids) < 2 {
		return
	}
	var p Partitioner
	tmp := make([]core.TID, len(tids))
	// LSD: least-significant dimension first; each pass is a stable counting
	// sort, so after the final (most-significant) pass the order is
	// lexicographic.
	for i := len(dims) - 1; i >= 0; i-- {
		d := dims[i]
		card := cards[d] + 1 // +1 headroom for star-mapped keys
		if cap(p.counts) < card {
			p.counts = make([]int64, card)
		}
		counts := p.counts[:card]
		for j := range counts {
			counts[j] = 0
		}
		col := cols[d]
		if view == nil {
			for _, t := range tids {
				counts[col[t]]++
			}
		} else {
			for _, t := range tids {
				counts[view(d, col[t])]++
			}
		}
		sum := int64(0)
		for v := range counts {
			counts[v], sum = sum, sum+counts[v]
		}
		if view == nil {
			for _, t := range tids {
				v := col[t]
				tmp[counts[v]] = t
				counts[v]++
			}
		} else {
			for _, t := range tids {
				v := view(d, col[t])
				tmp[counts[v]] = t
				counts[v]++
			}
		}
		copy(tids, tmp)
	}
}
