package psort

import (
	"math/rand"
	"sort"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
)

func TestPartitionBasic(t *testing.T) {
	col := []core.Value{2, 0, 2, 1, 0}
	tids := []core.TID{0, 1, 2, 3, 4}
	var p Partitioner
	b := p.Partition(tids, col, 3)
	if len(b.Vals) != 3 {
		t.Fatalf("vals = %v", b.Vals)
	}
	// Values ascending; stable within bucket.
	wantVals := []core.Value{0, 1, 2}
	wantTids := []core.TID{1, 4, 3, 0, 2}
	for i := range wantVals {
		if b.Vals[i] != wantVals[i] {
			t.Fatalf("vals = %v", b.Vals)
		}
	}
	for i := range wantTids {
		if tids[i] != wantTids[i] {
			t.Fatalf("tids = %v, want %v", tids, wantTids)
		}
	}
	if b.Off[0] != 0 || b.Off[3] != 5 {
		t.Fatalf("off = %v", b.Off)
	}
	// Bucket of value 1 is tids[2:3].
	if got := tids[b.Off[1]:b.Off[2]]; len(got) != 1 || got[0] != 3 {
		t.Fatalf("bucket(1) = %v", got)
	}
}

func TestPartitionEmptyAndSingle(t *testing.T) {
	var p Partitioner
	b := p.Partition(nil, []core.Value{}, 4)
	if len(b.Vals) != 0 || len(b.Off) != 1 {
		t.Fatalf("empty partition = %+v", b)
	}
	col := []core.Value{3}
	tids := []core.TID{0}
	b = p.Partition(tids, col, 4)
	if len(b.Vals) != 1 || b.Vals[0] != 3 || b.Off[1] != 1 {
		t.Fatalf("single partition = %+v", b)
	}
}

func TestPartitionReuse(t *testing.T) {
	var p Partitioner
	colA := []core.Value{1, 0}
	tidsA := []core.TID{0, 1}
	p.Partition(tidsA, colA, 2)
	colB := []core.Value{0, 0, 1}
	tidsB := []core.TID{0, 1, 2}
	b := p.Partition(tidsB, colB, 2)
	if len(b.Vals) != 2 || b.Off[1] != 2 {
		t.Fatalf("reuse partition = %+v", b)
	}
}

func TestLexSortMatchesComparator(t *testing.T) {
	tbl := gen.MustSynthetic(gen.Config{T: 500, D: 4, C: 7, S: 1, Seed: 10})
	dims := []int{2, 0, 3}
	tids := make([]core.TID, tbl.NumTuples())
	for i := range tids {
		tids[i] = core.TID(i)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(tids), func(i, j int) { tids[i], tids[j] = tids[j], tids[i] })

	want := append([]core.TID(nil), tids...)
	sort.SliceStable(want, func(i, j int) bool {
		a, b := want[i], want[j]
		for _, d := range dims {
			va, vb := tbl.Cols[d][a], tbl.Cols[d][b]
			if va != vb {
				return va < vb
			}
		}
		return false
	})

	LexSort(tids, tbl.Cols, dims, tbl.Cards, nil)
	for i := range want {
		if tids[i] != want[i] {
			t.Fatalf("position %d: got %d want %d", i, tids[i], want[i])
		}
	}
}

func TestLexSortWithView(t *testing.T) {
	// View maps value 2 on dim 0 to the star key (card), grouping it last.
	cols := core.Columns{{2, 0, 2, 1}}
	cards := []int{3}
	tids := []core.TID{0, 1, 2, 3}
	view := func(d int, v core.Value) core.Value {
		if v == 2 {
			return core.Value(cards[d])
		}
		return v
	}
	LexSort(tids, cols, []int{0}, cards, view)
	want := []core.TID{1, 3, 0, 2}
	for i := range want {
		if tids[i] != want[i] {
			t.Fatalf("tids = %v, want %v", tids, want)
		}
	}
}

func TestLexSortShortInput(t *testing.T) {
	tids := []core.TID{5}
	LexSort(tids, core.Columns{{1}}, []int{0}, []int{2}, nil)
	if tids[0] != 5 {
		t.Fatal("single-element sort changed data")
	}
	LexSort(nil, core.Columns{{1}}, []int{0}, []int{2}, nil) // must not panic
}
