// Package mmcubing implements MM-Cubing (Shao, Han & Xin, SSDBM'04) and its
// closed extension C-Cubing(MM) (paper Sec. 3).
//
// MM-Cubing factorizes the lattice space by value frequency: per recursion
// level it picks per-dimension dense value sets small enough for an in-memory
// aggregation array, computes every cell made of dense values and wildcards
// by MultiWay simultaneous aggregation, and recurses on the partition of each
// remaining ("sparse") frequent value with that value fixed. To avoid
// duplicate outputs across sparse partitions, the sparse values of earlier
// dimensions are masked while later dimensions' partitions are processed —
// the paper's "special identifier" trick. This implementation never rewrites
// tuples: it keeps a Value Mask table (paper Sec. 3.3) consulted during
// grouping, so the original values stay available to the closedness measure.
//
// C-Cubing(MM) additionally aggregates the closedness measure through the
// dense arrays and tests it before each output, plus one shortcut the paper
// credits for its low-min_sup wins: when a partition's size equals min_sup,
// the only possible closed iceberg output is the closure of the whole
// partition, which is emitted directly without enumerating the subspace.
package mmcubing

import (
	"fmt"
	"sort"

	"ccubing/internal/core"
	"ccubing/internal/multiway"
	"ccubing/internal/psort"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// DefaultDenseBudget bounds the dense aggregation array, in cells. With
// ~20 bytes per cell this is the paper's "aggregation table ... generally
// limited to 4MB".
const DefaultDenseBudget = 200 << 10

// Config parameterizes a run.
type Config struct {
	// MinSup is the iceberg threshold on count.
	MinSup int64
	// Closed selects C-Cubing(MM): emit only closed cells. False runs plain
	// MM-Cubing (all iceberg cells).
	Closed bool
	// DenseBudget overrides DefaultDenseBudget when positive.
	DenseBudget int
	// DisableShortcut turns off the partition-size==min_sup closed-cell
	// shortcut (ablation; Closed mode only).
	DisableShortcut bool
	// Measure optionally aggregates the table's Aux column per output cell
	// during the dense-array and shortcut aggregation (paper Sec. 6.1),
	// delivering stored aggregates (core.MeasureAgg.Stored) through
	// sink.AuxSink.
	Measure core.MeasureKind
}

type runner struct {
	t      *table.Table
	cfg    Config
	out    sink.Sink
	auxOut sink.AuxSink // set when cfg.Measure is active and out accepts aux
	nd     int
	cols   core.Columns
	full   core.Mask
	budget int

	vals      []core.Value
	fixedMask core.Mask
	masked    [][]bool  // the Value Mask table: [dim][value]
	freq      [][]int64 // per-dim counting scratch, kept all-zero between uses
	part      psort.Partitioner
}

// vf pairs a distinct value with its frequency in the current partition.
type vf struct {
	v core.Value
	f int64
}

// Run computes the (closed) iceberg cube of t and emits cells into out.
func Run(t *table.Table, cfg Config, out sink.Sink) error {
	if cfg.MinSup < 1 {
		return fmt.Errorf("mmcubing: min_sup %d < 1", cfg.MinSup)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("mmcubing: %w", err)
	}
	if cfg.Measure != core.MeasureNone && t.Aux == nil {
		return fmt.Errorf("mmcubing: measure %v requested but table has no aux column", cfg.Measure)
	}
	n := t.NumTuples()
	if int64(n) < cfg.MinSup {
		return nil
	}
	r := &runner{
		t:      t,
		cfg:    cfg,
		out:    out,
		nd:     t.NumDims(),
		cols:   t.Cols,
		full:   core.LowBits(t.NumDims()),
		budget: cfg.DenseBudget,
		vals:   make([]core.Value, t.NumDims()),
		masked: make([][]bool, t.NumDims()),
		freq:   make([][]int64, t.NumDims()),
	}
	if a, ok := out.(sink.AuxSink); ok && cfg.Measure != core.MeasureNone {
		r.auxOut = a
	}
	if r.budget <= 0 {
		r.budget = DefaultDenseBudget
	}
	if r.budget < 2 {
		r.budget = 2
	}
	for d := range r.vals {
		r.vals[d] = core.Star
		r.masked[d] = make([]bool, t.Cards[d])
		r.freq[d] = make([]int64, t.Cards[d])
	}
	tids := make([]core.TID, n)
	for i := range tids {
		tids[i] = core.TID(i)
	}
	active := make([]int, r.nd)
	for i := range active {
		active[i] = i
	}
	r.mm(tids, active)
	return nil
}

// mm processes one subspace: the tuples in tids with the dimensions in
// active unfixed (r.vals holds the fixed values of all other dimensions).
func (r *runner) mm(tids []core.TID, active []int) {
	if r.cfg.Closed && !r.cfg.DisableShortcut && int64(len(tids)) == r.cfg.MinSup {
		r.shortcut(tids, active)
		return
	}

	// Frequencies per active dimension: count into the pooled per-dim
	// arrays (all-zero between uses), then move the distinct (value, freq)
	// pairs out, restoring the zeros. Cost is O(|tids| · |active|),
	// independent of cardinalities.
	dvals := make([][]vf, len(active))
	for ai, d := range active {
		f := r.freq[d]
		col := r.cols[d]
		for _, tid := range tids {
			f[col[tid]]++
		}
		list := make([]vf, 0, 16)
		for _, tid := range tids {
			v := col[tid]
			if f[v] > 0 {
				list = append(list, vf{v, f[v]})
				f[v] = 0
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i].v < list[j].v })
		dvals[ai] = list
	}

	// Dense value selection: frequent unmasked values, greedily by frequency
	// while the array space fits both the configured budget and a bound
	// proportional to the partition (a dense array far larger than the data
	// cannot pay for its own initialization).
	type cand struct {
		ai int
		v  core.Value
		f  int64
	}
	var cands []cand
	for ai, d := range active {
		for _, e := range dvals[ai] {
			if e.f >= r.cfg.MinSup && !r.masked[d][e.v] {
				cands = append(cands, cand{ai, e.v, e.f})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].f != cands[j].f {
			return cands[i].f > cands[j].f
		}
		if cands[i].ai != cands[j].ai {
			return cands[i].ai < cands[j].ai
		}
		return cands[i].v < cands[j].v
	})
	budget := r.budget
	if rel := 8 * len(tids); rel < budget {
		budget = rel
	}
	if budget < 2 {
		budget = 2
	}
	denseVals := make([][]core.Value, len(active))
	size := 1
	for _, c := range cands {
		cur := len(denseVals[c.ai])
		var nsize int
		if cur == 0 {
			nsize = size * 2
		} else {
			nsize = size / (cur + 1) * (cur + 2)
		}
		if nsize > budget {
			continue
		}
		size = nsize
		denseVals[c.ai] = append(denseVals[c.ai], c.v)
	}

	// Dense phase: MultiWay over the array space.
	r.densePhase(tids, active, denseVals)

	// Sparse phase: one partition per frequent non-dense unmasked value,
	// masking each dimension's sparse values before later dimensions run.
	type dv struct {
		d int
		v core.Value
	}
	var maskedHere []dv
	for ai, d := range active {
		var sparse []core.Value
		dense := denseVals[ai] // sorted by densePhase
		for _, e := range dvals[ai] {
			if e.f >= r.cfg.MinSup && !r.masked[d][e.v] && !containsValue(dense, e.v) {
				sparse = append(sparse, e.v)
			}
		}
		if len(sparse) > 0 {
			b := r.part.Partition(tids, r.cols[d], r.t.Cards[d])
			// Copy boundaries: nested recursion reuses the partitioner.
			bVals := append([]core.Value(nil), b.Vals...)
			bOff := append([]int(nil), b.Off...)
			childActive := make([]int, 0, len(active)-1)
			childActive = append(childActive, active[:ai]...)
			childActive = append(childActive, active[ai+1:]...)
			si := 0
			for i, v := range bVals {
				for si < len(sparse) && sparse[si] < v {
					si++
				}
				if si == len(sparse) || sparse[si] != v {
					continue
				}
				r.vals[d] = v
				r.fixedMask = r.fixedMask.With(d)
				r.mm(tids[bOff[i]:bOff[i+1]], childActive)
				r.vals[d] = core.Star
				r.fixedMask = r.fixedMask.Without(d)
			}
		}
		// Mask this dimension's sparse values for the later dimensions.
		for _, v := range sparse {
			r.masked[d][v] = true
			maskedHere = append(maskedHere, dv{d, v})
		}
	}
	for _, m := range maskedHere {
		r.masked[m.d][m.v] = false
	}
}

// containsValue reports membership in a sorted value slice.
func containsValue(sorted []core.Value, v core.Value) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}

// densePhase aggregates the dense subspace and emits its qualifying cells.
func (r *runner) densePhase(tids []core.TID, active []int, denseVals [][]core.Value) {
	var dims []multiway.Dim
	for ai, dvs := range denseVals {
		if len(dvs) == 0 {
			continue
		}
		sort.Slice(dvs, func(i, j int) bool { return dvs[i] < dvs[j] })
		dims = append(dims, multiway.Dim{D: active[ai], Vals: dvs})
	}
	space, err := multiway.NewSpace(dims, r.t.Cards, r.cfg.Closed, r.cols, r.budget)
	if err != nil {
		// The greedy selection respects the budget; any failure here is a
		// programming error.
		panic(err)
	}
	if r.auxOut != nil {
		space.SetMeasure(r.cfg.Measure, r.t.Aux)
	}
	for _, tid := range tids {
		space.Add(tid)
	}
	activeMask := r.full &^ r.fixedMask
	space.Process(func(members []multiway.Dim, dimVals []core.Value, count int64, cls core.Closedness, aux float64) {
		if count < r.cfg.MinSup {
			return
		}
		allMask := activeMask
		for i := range members {
			r.vals[members[i].D] = dimVals[i]
			allMask = allMask.Without(members[i].D)
		}
		if !r.cfg.Closed || cls.Closed(allMask) {
			if r.auxOut != nil {
				r.auxOut.EmitAux(r.vals, count, aux)
			} else {
				r.out.Emit(r.vals, count)
			}
		}
		for i := range members {
			r.vals[members[i].D] = core.Star
		}
	})
}

// shortcut handles a partition whose size equals min_sup in closed mode: the
// only candidate output is the closure of the whole partition; it is emitted
// iff no masked value blocks a shared dimension (in which case the covering
// cell belongs to another partition and this one's cells are all non-closed).
func (r *runner) shortcut(tids []core.TID, active []int) {
	c := core.ExactClosedness(tids, r.cols)
	for _, d := range active {
		if c.Mask.Has(d) && r.masked[d][r.cols[d][c.Rep]] {
			return
		}
	}
	fixed := 0
	for _, d := range active {
		if c.Mask.Has(d) {
			r.vals[d] = r.cols[d][c.Rep]
			fixed++
		}
	}
	if r.auxOut != nil {
		aux := core.StoredIdentity(r.cfg.Measure)
		for _, tid := range tids {
			aux = core.CombineStored(r.cfg.Measure, aux, r.t.Aux[tid])
		}
		r.auxOut.EmitAux(r.vals, int64(len(tids)), aux)
	} else {
		r.out.Emit(r.vals, int64(len(tids)))
	}
	for _, d := range active {
		if c.Mask.Has(d) {
			r.vals[d] = core.Star
		}
	}
}
