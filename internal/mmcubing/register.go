package mmcubing

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// ccMM adapts this package to the engine registry as C-Cubing(MM) /
// MM-Cubing (the Closed flag selects which).
type ccMM struct{}

func (ccMM) Name() string { return "CC(MM)" }

func (ccMM) Capabilities() engine.Capabilities {
	// MM-Cubing factorizes the lattice space and is insensitive to
	// dimension order. Measures aggregate natively through the dense arrays
	// and the shortcut (paper Sec. 6.1).
	return engine.Capabilities{Closed: true, Iceberg: true, NativeMeasure: true}
}

func (ccMM) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, Config{
		MinSup:          cfg.MinSup,
		Closed:          cfg.Closed,
		DenseBudget:     cfg.DenseBudget,
		DisableShortcut: cfg.DisableShortcut,
		Measure:         cfg.Measure,
	}, out)
}

func init() { engine.Register(ccMM{}) }
