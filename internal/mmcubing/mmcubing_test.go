package mmcubing

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func run(t *testing.T, tb *table.Table, cfg Config) *sink.Collector {
	t.Helper()
	var c sink.Collector
	d := &sink.Dedup{Next: &c}
	if err := Run(tb, cfg, d); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Dup != 0 {
		t.Fatalf("MM-Cubing emitted %d duplicate cells", d.Dup)
	}
	return &c
}

func paperTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

var oracleCases = []struct {
	cfg    gen.Config
	minsup int64
}{
	{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 1}, 1},
	{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 2}, 4},
	{gen.Config{T: 200, D: 3, C: 8, S: 2, Seed: 3}, 2},
	{gen.Config{T: 100, D: 5, C: 2, S: 1, Seed: 4}, 3},
	{gen.Config{T: 300, D: 2, C: 20, S: 0.5, Seed: 5}, 5},
	{gen.Config{T: 120, D: 6, C: 2, S: 0, Seed: 6}, 2},
	{gen.Config{T: 80, D: 4, C: 10, S: 3, Seed: 7}, 1},
	{gen.Config{T: 250, D: 4, C: 6, S: 1.5, Seed: 8}, 6},
}

// TestIcebergMatchesOracle: plain MM-Cubing must produce exactly the iceberg
// cube across dataset shapes.
func TestIcebergMatchesOracle(t *testing.T) {
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Iceberg(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: c.minsup})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

// TestClosedMatchesOracle: C-Cubing(MM) must produce exactly the closed
// iceberg cube.
func TestClosedMatchesOracle(t *testing.T) {
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Closed(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: c.minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

// TestClosedShortcutNeutral: the partition==min_sup shortcut must not change
// the output, only the work done.
func TestClosedShortcutNeutral(t *testing.T) {
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		fast := run(t, tb, Config{MinSup: c.minsup, Closed: true})
		slow := run(t, tb, Config{MinSup: c.minsup, Closed: true, DisableShortcut: true})
		if diff := sink.DiffCells(fast.Cells, slow.Sorted(), 8); diff != "" {
			t.Fatalf("case %d shortcut changed output:\n%s", i, diff)
		}
	}
}

// TestTinyDenseBudget forces nearly everything through the sparse recursion;
// output must be unchanged.
func TestTinyDenseBudget(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 4, C: 4, S: 1, Seed: 9})
	for _, minsup := range []int64{1, 3} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true, DenseBudget: 2})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d mismatch:\n%s", minsup, diff)
		}
		wantIce, err := refcube.Iceberg(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		gotIce := run(t, tb, Config{MinSup: minsup, DenseBudget: 2})
		if diff := sink.DiffCells(gotIce.Cells, wantIce, 8); diff != "" {
			t.Fatalf("iceberg min_sup %d mismatch:\n%s", minsup, diff)
		}
	}
}

// TestHugeDenseBudget pushes everything through the dense MultiWay arrays.
func TestHugeDenseBudget(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 4, C: 4, S: 0, Seed: 10})
	want, err := refcube.Closed(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, tb, Config{MinSup: 1, Closed: true, DenseBudget: 1 << 22})
	if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
		t.Fatalf("mismatch:\n%s", diff)
	}
}

func TestPaperExample1(t *testing.T) {
	got := run(t, paperTable(t), Config{MinSup: 2, Closed: true})
	if len(got.Cells) != 2 {
		t.Fatalf("cells:\n%s", sink.FormatCells(got.Cells))
	}
	m, _ := got.ByKey()
	if m[core.CellKey([]core.Value{0, 0, 0, core.Star})] != 2 ||
		m[core.CellKey([]core.Value{0, core.Star, core.Star, core.Star})] != 3 {
		t.Fatalf("wrong closed cells:\n%s", sink.FormatCells(got.Cells))
	}
}

func TestDependenceData(t *testing.T) {
	cards := []int{5, 5, 5, 5, 5}
	rules := gen.RulesForDependence(2, cards, 31)
	tb := gen.MustSynthetic(gen.Config{T: 300, Cards: cards, S: 0.5, Seed: 32, Rules: rules})
	for _, minsup := range []int64{1, 8} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d:\n%s", minsup, diff)
		}
	}
}

func TestErrors(t *testing.T) {
	tb := paperTable(t)
	var c sink.Collector
	if err := Run(tb, Config{MinSup: 0}, &c); err == nil {
		t.Fatal("min_sup 0 must error")
	}
	bad := table.New(1, 2)
	bad.Cols[0][0] = 9
	if err := Run(bad, Config{MinSup: 1}, &c); err == nil {
		t.Fatal("invalid table must error")
	}
}

func TestMinsupAboveTotal(t *testing.T) {
	got := run(t, paperTable(t), Config{MinSup: 4, Closed: true})
	if len(got.Cells) != 0 {
		t.Fatalf("cells above T:\n%s", sink.FormatCells(got.Cells))
	}
}
