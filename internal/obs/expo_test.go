package obs

import (
	"strings"
	"testing"
	"time"
)

// TestWriteTextGolden pins the exposition byte-for-byte: family ordering,
// series ordering, label rendering, histogram cumulative buckets, and the
// shortest-round-trip float forms.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", "endpoint", "query").Add(5)
	r.Counter("test_requests_total", "Requests served.", "endpoint", "slice").Add(2)
	r.Gauge("test_backlog_rows", "Rows buffered.").Set(17)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	r.CounterFunc("test_probes_total", "Probes.", func() int64 { return 9 })
	h := r.Histogram("test_latency_seconds", "Latency.")
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(5 * time.Second)

	want := `# HELP test_backlog_rows Rows buffered.
# TYPE test_backlog_rows gauge
test_backlog_rows 17
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1e-06"} 1
test_latency_seconds_bucket{le="2e-06"} 1
test_latency_seconds_bucket{le="4e-06"} 2
test_latency_seconds_bucket{le="8e-06"} 2
test_latency_seconds_bucket{le="1.6e-05"} 2
test_latency_seconds_bucket{le="3.2e-05"} 2
test_latency_seconds_bucket{le="6.4e-05"} 2
test_latency_seconds_bucket{le="0.000128"} 2
test_latency_seconds_bucket{le="0.000256"} 2
test_latency_seconds_bucket{le="0.000512"} 2
test_latency_seconds_bucket{le="0.001024"} 2
test_latency_seconds_bucket{le="0.002048"} 2
test_latency_seconds_bucket{le="0.004096"} 2
test_latency_seconds_bucket{le="0.008192"} 2
test_latency_seconds_bucket{le="0.016384"} 2
test_latency_seconds_bucket{le="0.032768"} 2
test_latency_seconds_bucket{le="0.065536"} 2
test_latency_seconds_bucket{le="0.131072"} 2
test_latency_seconds_bucket{le="0.262144"} 2
test_latency_seconds_bucket{le="0.524288"} 2
test_latency_seconds_bucket{le="1.048576"} 2
test_latency_seconds_bucket{le="2.097152"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.0000035
test_latency_seconds_count 3
# HELP test_probes_total Probes.
# TYPE test_probes_total counter
test_probes_total 9
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{endpoint="query"} 5
test_requests_total{endpoint="slice"} 2
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 1.5
`
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteTextMergesRegistries checks that the same family name appearing
// in two registries renders under one # HELP/# TYPE header.
func TestWriteTextMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("shared_total", "Shared.", "src", "a").Add(1)
	b.Counter("shared_total", "Shared.", "src", "b").Add(2)
	var sb strings.Builder
	if err := WriteText(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if strings.Count(got, "# TYPE shared_total counter") != 1 {
		t.Fatalf("want one TYPE header, got:\n%s", got)
	}
	for _, line := range []string{`shared_total{src="a"} 1`, `shared_total{src="b"} 2`} {
		if !strings.Contains(got, line) {
			t.Fatalf("missing %q in:\n%s", line, got)
		}
	}
}

// TestLabeledHistogram checks the le label composes with series labels.
func TestLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("w_seconds", "Per-worker.", "worker", "0").Observe(time.Millisecond)
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, line := range []string{
		`w_seconds_bucket{worker="0",le="0.001024"} 1`,
		`w_seconds_bucket{worker="0",le="+Inf"} 1`,
		`w_seconds_sum{worker="0"} 0.001`,
		`w_seconds_count{worker="0"} 1`,
	} {
		if !strings.Contains(got, line) {
			t.Fatalf("missing %q in:\n%s", line, got)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Escapes.", "path", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("missing %q in:\n%s", want, sb.String())
	}
}
