package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed exponential duration buckets, 1µs doubling
// up to ~2.1s, then +Inf. Fixed bounds keep Observe branch-free (the bucket
// index is a bit-length, not a search over configured bounds) and make every
// histogram in the process mergeable and comparable. The range brackets the
// serving stack: sub-µs cache hits land in the first bucket, and anything
// beyond 2s is tail enough that +Inf suffices.
const (
	histBuckets = 22 // finite buckets: le = 1µs << i, i = 0..21
	histStripes = 4  // fewer than counters: Observe touches 2 words, not 1
)

// histStripe is one stripe of a histogram: bucket counts plus the running
// sum of observed nanoseconds. 24 atomic words = 192 bytes = 3 cache lines
// exactly, so consecutive stripes in the array never share a line.
type histStripe struct {
	counts [histBuckets + 1]atomic.Int64 // [histBuckets] is +Inf
	sum    atomic.Int64                  // nanoseconds
}

// Histogram is a latency histogram with fixed exponential buckets, striped
// for concurrent recording. The zero value is ready to use.
type Histogram struct {
	s [histStripes]histStripe
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 1µs<<i, or the +Inf slot. Non-positive durations land in bucket 0.
//
//ccubing:hotpath
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	us := (uint64(d) + 999) / 1000 // ceil to microseconds
	i := bits.Len64(us - 1)        // smallest i with us <= 1<<i
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// Observe records one duration: two atomic adds on a stack-picked stripe,
// no allocation, no lock.
//
//ccubing:hotpath
func (h *Histogram) Observe(d time.Duration) {
	st := &h.s[stripeIndex()&(histStripes-1)]
	st.counts[bucketIndex(d)].Add(1)
	st.sum.Add(int64(d))
}

// snapshot sums the stripes into per-bucket (non-cumulative) counts and the
// total observed nanoseconds. Concurrent Observes may straddle the reads;
// each bucket read is itself atomic, so the result is a consistent-enough
// scrape, never a torn value.
func (h *Histogram) snapshot() (counts [histBuckets + 1]int64, sumNanos int64) {
	for i := range h.s {
		st := &h.s[i]
		for j := range st.counts {
			counts[j] += st.counts[j].Load()
		}
		sumNanos += st.sum.Load()
	}
	return counts, sumNanos
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.s {
		st := &h.s[i]
		for j := range st.counts {
			total += st.counts[j].Load()
		}
	}
	return total
}

// histLe holds the rendered upper bounds in seconds ("1e-06", "2e-06", ...),
// computed once: exposition never formats floats per scrape line.
var histLe = func() [histBuckets]string {
	var le [histBuckets]string
	for i := range le {
		le[i] = strconv.FormatFloat(float64(uint64(1000)<<i)/1e9, 'g', -1, 64)
	}
	return le
}()
