package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registries' metrics in the Prometheus text format,
// families sorted by name and series by label set. Families with the same
// name across registries merge under the first one's # HELP/# TYPE header —
// the layering contract is that a name means one thing process-wide.
func WriteText(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	written := make(map[string]bool)
	for _, r := range regs {
		for _, f := range r.snapshot() {
			header := !written[f.name]
			written[f.name] = true
			writeFamily(bw, f, header)
		}
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, f famView, header bool) {
	if header {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(f.help)
		w.WriteString("\n# TYPE ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(f.typ)
		w.WriteByte('\n')
	}
	for _, s := range f.series {
		switch {
		case s.c != nil:
			writeSample(w, f.name, "", s.labels, "", formatInt(s.c.Value()))
		case s.cf != nil:
			writeSample(w, f.name, "", s.labels, "", formatInt(s.cf()))
		case s.g != nil:
			writeSample(w, f.name, "", s.labels, "", formatInt(s.g.Value()))
		case s.gf != nil:
			writeSample(w, f.name, "", s.labels, "", formatFloat(s.gf()))
		case s.h != nil:
			writeHistogram(w, f.name, s)
		}
	}
}

// writeHistogram renders one histogram series: cumulative _bucket lines with
// the le label appended to the series labels, then _sum (seconds) and
// _count.
func writeHistogram(w *bufio.Writer, name string, s *series) {
	counts, sumNanos := s.h.snapshot()
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		writeSample(w, name, "_bucket", s.labels, histLe[i], formatInt(cum))
	}
	cum += counts[histBuckets]
	writeSample(w, name, "_bucket", s.labels, "+Inf", formatInt(cum))
	writeSample(w, name, "_sum", s.labels, "", formatFloat(float64(sumNanos)/1e9))
	writeSample(w, name, "_count", s.labels, "", formatInt(cum))
}

// writeSample emits one line: name+suffix, the label block (series labels
// plus an optional le), and the value.
func writeSample(w *bufio.Writer, name, suffix, labels, le, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" || le != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if le != "" {
			if labels != "" {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat uses the shortest round-trip form, like encoding/json — "0.25"
// stays "0.25", integral floats render without an exponent where possible.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registries as a GET /metrics endpoint.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = WriteText(w, regs...)
	})
}
