package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStriping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(23)
	if got := c.Value(); got != 123 {
		t.Fatalf("Value() = %d, want 123", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value() = %d, want 4", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help", "k", "v")
	b := r.Counter("c_total", "other help ignored", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("c_total", "help", "k", "w")
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	h1 := r.Histogram("h_seconds", "help")
	h2 := r.Histogram("h_seconds", "help")
	if h1 != h2 {
		t.Fatal("same histogram name returned distinct histograms")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter series as CounterFunc did not panic")
		}
	}()
	r.CounterFunc("m_total", "help", func() int64 { return 0 })
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},      // 1024µs bound = bucket 10
		{2 * time.Millisecond, 11},  // 2048µs
		{time.Second, 20},           // ~1.05s bound = 2^20 µs
		{2 * time.Second, 21},       // ~2.1s bound = 2^21 µs
		{3 * time.Second, histBuckets},  // +Inf
		{10 * time.Minute, histBuckets}, // +Inf
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramObserveAndCount(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond / 2)
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Hour)
	counts, sum := h.snapshot()
	if counts[0] != 1 || counts[2] != 1 || counts[histBuckets] != 1 {
		t.Fatalf("bucket counts = %v", counts)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3", got)
	}
	wantSum := int64(time.Microsecond/2 + 3*time.Microsecond + time.Hour)
	if sum != wantSum {
		t.Fatalf("sum = %d ns, want %d", sum, wantSum)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace("abc-1")
	tr.Observe("probe", 1500*time.Microsecond)
	tr.Observe("merge", 20*time.Microsecond)
	got := tr.Stages()
	if len(got) != 2 || got[0].Name != "probe" || got[1].Name != "merge" {
		t.Fatalf("Stages() = %v", got)
	}
	if s := tr.String(); s != "probe=1.5ms merge=20µs" {
		t.Fatalf("String() = %q", s)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Observe("x", time.Second) // must not panic
	if tr.Stages() != nil || tr.String() != "" {
		t.Fatal("nil trace leaked state")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("abc-2")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Observe("w", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Stages()); got != 800 {
		t.Fatalf("recorded %d stages, want 800", got)
	}
}

func TestNewIDUnique(t *testing.T) {
	a, b := NewID(), NewID()
	if a == b {
		t.Fatalf("NewID() repeated %q", a)
	}
	if !strings.Contains(a, "-") {
		t.Fatalf("NewID() = %q, want prefix-seq form", a)
	}
}

// TestConcurrentRecordHammer exercises the striped record paths and the
// exposition reader concurrently; run under -race this is the data-race
// check, and the final totals prove no increment is lost.
func TestConcurrentRecordHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "help")
	g := r.Gauge("hammer_gauge", "help")
	h := r.Histogram("hammer_seconds", "help")
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = WriteText(discard{}, r)
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	time.Sleep(time.Millisecond)
	close(stop)
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
