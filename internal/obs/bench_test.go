package obs

import (
	"testing"
	"time"
)

// BenchmarkObsRecord measures the per-event cost of the instrumentation the
// serving hot paths pay: one counter increment plus one histogram
// observation. Parallel, because striping exists exactly to keep concurrent
// recorders off each other's cache lines.
func BenchmarkObsRecord(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "help")
	h := r.Histogram("bench_seconds", "help")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
			h.Observe(1500 * time.Nanosecond)
		}
	})
}
