package obs

// Steady-state allocation regression for the record path: Counter.Add,
// Gauge.Set and Histogram.Observe sit on the query hot path (cube probes,
// cache hits), so they must be pure atomic arithmetic — zero allocations
// per record, no pool involved, hence a strict zero bound.

import (
	"testing"
	"time"
)

func TestRecordAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the record path; counts are not meaningful")
	}
	r := NewRegistry()
	c := r.Counter("alloc_total", "help")
	g := r.Gauge("alloc_gauge", "help")
	h := r.Histogram("alloc_seconds", "help")
	c.Inc()
	g.Set(1)
	h.Observe(time.Millisecond)

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n > 0 {
		t.Fatalf("Counter.Inc allocates %v per op; want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n > 0 {
		t.Fatalf("Counter.Add allocates %v per op; want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n > 0 {
		t.Fatalf("Gauge.Set allocates %v per op; want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(137 * time.Microsecond) }); n > 0 {
		t.Fatalf("Histogram.Observe allocates %v per op; want 0", n)
	}
}
