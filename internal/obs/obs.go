// Package obs is the serving stack's metrics core: atomic counters, gauges
// and fixed-bucket latency histograms, a registry that renders them in the
// Prometheus text exposition format, and the per-request trace that carries
// one request ID and its stage timings through router and workers.
//
// The design constraint is the same one the probe counters in cubestore
// live under: recording on the query hot path must not allocate and must
// not serialize concurrent probes on one cache line. Counters and histogram
// stripes are therefore striped across padded cache lines (see stripeIndex),
// and Observe/Add are pure atomic arithmetic — no maps, no interfaces, no
// time formatting. Everything slow (label rendering, sorting, text output)
// happens at registration or exposition time, off the hot path.
//
// The package is stdlib-only on purpose: the serving binary stays
// dependency-free, and the exposition writer emits the subset of the
// Prometheus text format (version 0.0.4) that scrapers actually parse.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterStripes spreads one logical counter across this many cache lines,
// like cubestore's probe-counter stripes: concurrent recorders land on
// different lines instead of bouncing one hot word between cores. Power of
// two so the stripe pick is a mask.
const counterStripes = 8

// counterStripe is one cache-line-sized slot of a striped counter. The
// padding keeps neighboring stripes out of each other's line.
type counterStripe struct {
	n atomic.Int64
	_ [56]byte
}

// stripeIndex derives a stripe from the address of its own stack frame:
// goroutines live on distinct stacks, so concurrent recorders spread across
// stripes, while a single goroutine keeps hitting the same (warm) one. The
// Fibonacci multiplier mixes all address bits into the top three, so stacks
// allocated a power-of-two apart do not alias onto one stripe. Converting
// the pointer TO uintptr is the safe direction; the address never escapes.
//
//ccubing:hotpath
func stripeIndex() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32((uint64(p) * 0x9e3779b97f4a7c15) >> 61)
}

// Counter is a monotonically increasing metric, striped for concurrent
// recording. The zero value is ready to use; registry-created counters are
// shared by name, so the same series can be recorded from several sites.
type Counter struct {
	s [counterStripes]counterStripe
}

// Inc adds one.
//
//ccubing:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers keep counters monotonic; the registry does not check).
//
//ccubing:hotpath
func (c *Counter) Add(n int64) {
	c.s[stripeIndex()].n.Add(n)
}

// Value sums the stripes.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.s {
		total += c.s[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. Gauges record state transitions
// (generation, backlog), not per-probe events, so one atomic word suffices.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//ccubing:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta.
//
//ccubing:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Metric type names, as exposed in the # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a family: exactly one of the value
// fields is set, fixed at registration.
type series struct {
	labels string // rendered `k="v",k2="v2"` inner block; "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() int64   // counter read from an external source
	gf     func() float64 // gauge read from an external source
}

// family is all series sharing one metric name, help string and type.
type family struct {
	name, help, typ string
	series          map[string]*series
}

// Registry is a set of metric families. Registration is get-or-create: two
// calls with the same name and labels return the same instrument, so
// instrumentation sites do not need to coordinate who registers first. A
// name registered with a conflicting type or value kind panics — that is a
// programming error, not a runtime condition.
//
// Servers hold one registry per instance (per-endpoint latencies on a
// worker must not merge with the router's), and package-global
// instrumentation records into Default; the exposition writer merges any
// set of registries into one scrape.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// Default is the process-wide registry for package-global instrumentation
// (probe latency, WAL latency): layers that do not know which server fronts
// them record here, and every /metrics handler includes it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns alternating key/value arguments into the canonical
// inner label block, escaping values per the text format.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key/value pairs)", kv))
	}
	var sb strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register resolves (name, labels) to its series, creating family and
// series as needed. fill populates a fresh series; check validates that an
// existing one was registered with the same value kind.
func (r *Registry) register(name, help, typ string, kv []string, fill func(*series), check func(*series) bool) *series {
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		fill(s)
		f.series[labels] = s
	} else if !check(s) {
		panic(fmt.Sprintf("obs: metric %s{%s} re-registered with a different value kind", name, labels))
	}
	return s
}

// Counter returns the counter series (name, labels), creating it on first
// use. Labels are alternating key/value arguments.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	s := r.register(name, help, typeCounter, kv,
		func(s *series) { s.c = &Counter{} },
		func(s *series) bool { return s.c != nil })
	return s.c
}

// CounterFunc registers a counter whose value is read from f at exposition
// time — the bridge for counters that already exist elsewhere (cubestore's
// probe stripes, the query cache's hit counts).
func (r *Registry) CounterFunc(name, help string, f func() int64, kv ...string) {
	r.register(name, help, typeCounter, kv,
		func(s *series) { s.cf = f },
		func(s *series) bool { return s.cf != nil })
}

// Gauge returns the gauge series (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	s := r.register(name, help, typeGauge, kv,
		func(s *series) { s.g = &Gauge{} },
		func(s *series) bool { return s.g != nil })
	return s.g
}

// GaugeFunc registers a gauge read from f at exposition time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, kv ...string) {
	r.register(name, help, typeGauge, kv,
		func(s *series) { s.gf = f },
		func(s *series) bool { return s.gf != nil })
}

// Histogram returns the histogram series (name, labels), creating it on
// first use. Durations land in fixed exponential buckets (see histogram.go);
// by convention names end in _seconds and the exposition renders bounds in
// seconds.
func (r *Registry) Histogram(name, help string, kv ...string) *Histogram {
	s := r.register(name, help, typeHistogram, kv,
		func(s *series) { s.h = &Histogram{} },
		func(s *series) bool { return s.h != nil })
	return s.h
}

// famView is an exposition-time copy of a family: metadata plus the series
// list frozen under the registry lock. The series pointers themselves are
// stable after creation and their values are read atomically, so only the
// map iteration needs the lock.
type famView struct {
	name, help, typ string
	series          []*series
}

// snapshot returns the families sorted by name, each with series sorted by
// label block — the deterministic exposition order.
func (r *Registry) snapshot() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]famView, 0, len(r.fams))
	for _, f := range r.fams {
		fv := famView{name: f.name, help: f.help, typ: f.typ,
			series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			fv.series = append(fv.series, s)
		}
		sort.Slice(fv.series, func(i, j int) bool { return fv.series[i].labels < fv.series[j].labels })
		fams = append(fams, fv)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
