package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries one request's ID across the serving topology: a
// router honors an inbound value (or mints one), echoes it on its response,
// and forwards it on every worker call it makes for that request — so one
// grep over router and worker logs follows a single scattered request end
// to end.
const RequestIDHeader = "X-CCubing-Request-ID"

// idPrefix distinguishes processes: IDs minted by a router and a worker for
// unrelated requests must not collide in merged logs. Random once at start.
var idPrefix = func() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// fixed prefix rather than failing to serve.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var idSeq atomic.Uint64

// NewID mints a request ID: a per-process random prefix and a sequence
// number, e.g. "9f1c02ab-2a". Cheap (one atomic add, one small allocation)
// and unique enough to join log lines across processes.
func NewID() string {
	return idPrefix + "-" + strconv.FormatUint(idSeq.Add(1), 16)
}

// Stage is one timed step of a request: a router's per-worker calls and
// merge, a worker's probe, and so on.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace accumulates one request's stage timings under its ID. A nil *Trace
// is a valid no-op sink, so instrumentation sites need no enabled-check;
// Observe is safe for concurrent use (scattered worker calls record from
// their own goroutines).
//
// Note is a free-form request summary (the parsed spec) set once by the
// handler before fan-out and read after completion — handler-goroutine only.
type Trace struct {
	ID   string
	Note string

	mu     sync.Mutex
	stages []Stage
}

// NewTrace starts a trace for one request.
func NewTrace(id string) *Trace { return &Trace{ID: id} }

// Observe appends one named stage duration.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Dur: d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stages in record order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// String renders the stages as "name=dur name=dur" for the slow-query log.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for i, s := range t.stages {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(s.Name)
		sb.WriteByte('=')
		sb.WriteString(s.Dur.String())
	}
	return sb.String()
}
