//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in. The
// allocation regression test skips under -race: the instrumentation itself
// allocates, so AllocsPerRun would measure the detector, not Record.
const raceEnabled = true
