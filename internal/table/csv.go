package table

import (
	"encoding/csv"
	"fmt"
	"io"

	"ccubing/internal/core"
)

// ReadCSV loads a relation from CSV. When header is true the first record
// supplies dimension names. Every field is dictionary-encoded; the returned
// dictionaries decode cell values back to labels.
func ReadCSV(r io.Reader, header bool) (*Table, []*Dict, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true

	var names []string
	var dicts []*Dict
	var cols []([]core.Value)
	n := 0

	rec, err := cr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("table: empty CSV input")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading CSV: %w", err)
	}
	start := rec
	if header {
		names = append([]string(nil), rec...)
		start = nil
	}
	initDims := func(nd int) {
		dicts = make([]*Dict, nd)
		cols = make([][]core.Value, nd)
		for d := range dicts {
			dicts[d] = NewDict()
		}
		if names == nil {
			names = make([]string, nd)
			for d := range names {
				names[d] = fmt.Sprintf("dim%d", d)
			}
		}
	}
	addRow := func(rec []string) error {
		if cols == nil {
			initDims(len(rec))
		}
		if len(rec) != len(cols) {
			return fmt.Errorf("table: CSV row %d has %d fields, want %d", n+1, len(rec), len(cols))
		}
		for d, f := range rec {
			cols[d] = append(cols[d], dicts[d].Code(f))
		}
		n++
		return nil
	}
	if start != nil {
		if err := addRow(start); err != nil {
			return nil, nil, err
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("table: reading CSV: %w", err)
		}
		if err := addRow(rec); err != nil {
			return nil, nil, err
		}
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("table: CSV has no data rows")
	}
	t := &Table{Names: names, Cards: make([]int, len(cols)), Cols: cols}
	for d := range cols {
		t.Cards[d] = dicts[d].Len()
	}
	return t, dicts, nil
}

// WriteCSV writes the relation as CSV, decoding values through dicts when
// provided (pass nil to write raw codes). A header row with dimension names
// is written when header is true.
func WriteCSV(w io.Writer, t *Table, dicts []*Dict, header bool) error {
	cw := csv.NewWriter(w)
	if header {
		if err := cw.Write(t.Names); err != nil {
			return fmt.Errorf("table: writing CSV header: %w", err)
		}
	}
	rec := make([]string, t.NumDims())
	for i := 0; i < t.NumTuples(); i++ {
		for d := range rec {
			v := t.Cols[d][i]
			if dicts != nil {
				rec[d] = dicts[d].Name(v)
			} else {
				rec[d] = fmt.Sprintf("%d", v)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
