package table

import "ccubing/internal/core"

// Dict is a per-dimension string dictionary mapping raw labels to dense
// value codes and back.
type Dict struct {
	codes map[string]core.Value
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]core.Value)}
}

// Code returns the code for label s, assigning the next free code on first
// sight.
func (d *Dict) Code(s string) core.Value {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := core.Value(len(d.names))
	d.codes[s] = c
	d.names = append(d.names, s)
	return c
}

// Lookup returns the code for label s without assigning, and whether it
// exists.
func (d *Dict) Lookup(s string) (core.Value, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Name returns the label for code c; for out-of-range codes (including
// core.Star) it returns "*".
func (d *Dict) Name(c core.Value) string {
	if c < 0 || int(c) >= len(d.names) {
		return "*"
	}
	return d.names[c]
}

// Len returns the number of distinct labels seen.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the labels in code order (code i maps to Names()[i]). The
// returned slice is a copy.
func (d *Dict) Names() []string {
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// DictFromNames rebuilds a dictionary from labels in code order, the inverse
// of Names. Duplicate labels keep their first code.
func DictFromNames(names []string) *Dict {
	d := NewDict()
	for _, s := range names {
		d.Code(s)
	}
	return d
}
