// Package table provides the dictionary-encoded, in-memory relation all
// cubing engines operate on. Dimension values are dense int32 codes assigned
// per dimension; the engines never see raw strings. Storage is column-major:
// Cols[d][t] is the value of tuple t on dimension d, which suits the
// counting-sort partitioning of BUC/QC-DFS and the per-dimension scans of the
// closedness machinery.
package table

import (
	"fmt"

	"ccubing/internal/core"
)

// Table is a dictionary-encoded relation.
type Table struct {
	// Names holds one label per dimension (may be synthesized).
	Names []string
	// Cards holds the dictionary size (cardinality bound) per dimension:
	// every value on dimension d is in [0, Cards[d]).
	Cards []int
	// Cols is the column-major value store: Cols[d][t].
	Cols core.Columns
	// Aux optionally holds a per-tuple numeric measure input for complex
	// measures (paper Sec. 6.1); nil when the cube is count-only.
	Aux []float64
}

// New allocates a table with nd dimensions and n tuples, all values zero.
// Cards are initialized to 1 and must be raised by the caller (or use
// Recount) before handing the table to an engine.
func New(nd, n int) *Table {
	t := &Table{
		Names: make([]string, nd),
		Cards: make([]int, nd),
		Cols:  make(core.Columns, nd),
	}
	for d := 0; d < nd; d++ {
		t.Names[d] = fmt.Sprintf("dim%d", d)
		t.Cards[d] = 1
		t.Cols[d] = make([]core.Value, n)
	}
	return t
}

// FromRows builds a table from row-major values, inferring cardinalities as
// max+1 per dimension. It returns an error on ragged rows or negative values.
func FromRows(rows [][]core.Value) (*Table, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("table: no rows")
	}
	nd := len(rows[0])
	t := New(nd, len(rows))
	for i, r := range rows {
		if len(r) != nd {
			return nil, fmt.Errorf("table: row %d has %d values, want %d", i, len(r), nd)
		}
		for d, v := range r {
			if v < 0 {
				return nil, fmt.Errorf("table: row %d dim %d: negative value %d", i, d, v)
			}
			t.Cols[d][i] = v
			if int(v)+1 > t.Cards[d] {
				t.Cards[d] = int(v) + 1
			}
		}
	}
	return t, nil
}

// NumDims returns the number of dimensions.
func (t *Table) NumDims() int { return len(t.Cols) }

// NumTuples returns the number of tuples.
func (t *Table) NumTuples() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.Cols[0])
}

// Value returns the value of tuple tid on dimension d.
func (t *Table) Value(tid core.TID, d int) core.Value { return t.Cols[d][tid] }

// Row copies tuple tid into dst (allocating when dst is too short) and
// returns it.
func (t *Table) Row(tid core.TID, dst []core.Value) []core.Value {
	nd := t.NumDims()
	if cap(dst) < nd {
		dst = make([]core.Value, nd)
	}
	dst = dst[:nd]
	for d := 0; d < nd; d++ {
		dst[d] = t.Cols[d][tid]
	}
	return dst
}

// Recount recomputes Cards as max value + 1 per dimension. Useful after
// direct writes into Cols.
func (t *Table) Recount() {
	for d := range t.Cols {
		max := core.Value(0)
		for _, v := range t.Cols[d] {
			if v > max {
				max = v
			}
		}
		t.Cards[d] = int(max) + 1
	}
}

// Validate checks structural invariants: equal column lengths, values within
// cardinality bounds, dimension count within core.MaxDims.
func (t *Table) Validate() error {
	if t.NumDims() > core.MaxDims {
		return fmt.Errorf("table: %d dimensions exceed the %d supported", t.NumDims(), core.MaxDims)
	}
	n := t.NumTuples()
	for d, col := range t.Cols {
		if len(col) != n {
			return fmt.Errorf("table: column %d has %d tuples, want %d", d, len(col), n)
		}
		for i, v := range col {
			if v < 0 || int(v) >= t.Cards[d] {
				return fmt.Errorf("table: tuple %d dim %d: value %d outside [0,%d)", i, d, v, t.Cards[d])
			}
		}
	}
	if t.Aux != nil && len(t.Aux) != n {
		return fmt.Errorf("table: aux measure has %d entries, want %d", len(t.Aux), n)
	}
	return nil
}

// Reorder returns a copy of the table with dimensions permuted so that new
// dimension i is old dimension perm[i]. Used by the dimension-ordering
// strategies (paper Sec. 5.5). The tuple order is unchanged; Aux is shared.
func (t *Table) Reorder(perm []int) (*Table, error) {
	if len(perm) != t.NumDims() {
		return nil, fmt.Errorf("table: permutation has %d entries, want %d", len(perm), t.NumDims())
	}
	seen := make([]bool, len(perm))
	nt := &Table{
		Names: make([]string, len(perm)),
		Cards: make([]int, len(perm)),
		Cols:  make(core.Columns, len(perm)),
		Aux:   t.Aux,
	}
	for i, d := range perm {
		if d < 0 || d >= len(perm) || seen[d] {
			return nil, fmt.Errorf("table: invalid permutation %v", perm)
		}
		seen[d] = true
		nt.Names[i] = t.Names[d]
		nt.Cards[i] = t.Cards[d]
		nt.Cols[i] = t.Cols[d] // columns are immutable under cubing; share
	}
	return nt, nil
}

// Project returns a table view keeping only the given dimensions, in order.
// Columns are shared, not copied. Duplicate or out-of-range dimensions are
// rejected.
func (t *Table) Project(dims []int) (*Table, error) {
	seen := make([]bool, t.NumDims())
	nt := &Table{
		Names: make([]string, len(dims)),
		Cards: make([]int, len(dims)),
		Cols:  make(core.Columns, len(dims)),
		Aux:   t.Aux,
	}
	for i, d := range dims {
		if d < 0 || d >= t.NumDims() || seen[d] {
			return nil, fmt.Errorf("table: invalid projection %v", dims)
		}
		seen[d] = true
		nt.Names[i] = t.Names[d]
		nt.Cards[i] = t.Cards[d]
		nt.Cols[i] = t.Cols[d]
	}
	return nt, nil
}

// SelectDims returns a copy restricted to the first nd dimensions; the
// weather experiments (paper Figs. 7, 11) sweep the dimension count this way.
func (t *Table) SelectDims(nd int) (*Table, error) {
	if nd < 1 || nd > t.NumDims() {
		return nil, fmt.Errorf("table: cannot select %d of %d dimensions", nd, t.NumDims())
	}
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = i
	}
	return t.Project(dims)
}

// Subset returns a new table holding only the given tuples (copied), used by
// the out-of-core partition driver.
func (t *Table) Subset(tids []core.TID) *Table {
	nt := New(t.NumDims(), len(tids))
	copy(nt.Names, t.Names)
	copy(nt.Cards, t.Cards)
	for d := range t.Cols {
		for i, tid := range tids {
			nt.Cols[d][i] = t.Cols[d][tid]
		}
	}
	if t.Aux != nil {
		nt.Aux = make([]float64, len(tids))
		for i, tid := range tids {
			nt.Aux[i] = t.Aux[tid]
		}
	}
	return nt
}
