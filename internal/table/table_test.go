package table

import (
	"testing"

	"ccubing/internal/core"
)

func mustFromRows(t *testing.T, rows [][]core.Value) *Table {
	t.Helper()
	tbl, err := FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return tbl
}

func TestFromRowsBasics(t *testing.T) {
	tbl := mustFromRows(t, [][]core.Value{
		{0, 2, 1},
		{1, 0, 1},
	})
	if tbl.NumDims() != 3 || tbl.NumTuples() != 2 {
		t.Fatalf("dims=%d tuples=%d", tbl.NumDims(), tbl.NumTuples())
	}
	if tbl.Cards[0] != 2 || tbl.Cards[1] != 3 || tbl.Cards[2] != 2 {
		t.Fatalf("cards = %v", tbl.Cards)
	}
	if tbl.Value(1, 1) != 0 {
		t.Fatalf("Value(1,1) = %d", tbl.Value(1, 1))
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows must error")
	}
	if _, err := FromRows([][]core.Value{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := FromRows([][]core.Value{{-1}}); err == nil {
		t.Fatal("negative value must error")
	}
}

func TestRow(t *testing.T) {
	tbl := mustFromRows(t, [][]core.Value{{3, 1}, {0, 2}})
	r := tbl.Row(1, nil)
	if r[0] != 0 || r[1] != 2 {
		t.Fatalf("Row = %v", r)
	}
	// Reuses capacity.
	buf := make([]core.Value, 0, 2)
	r2 := tbl.Row(0, buf)
	if &r2[0] != &buf[:1][0] {
		t.Fatal("Row did not reuse provided buffer")
	}
}

func TestRecount(t *testing.T) {
	tbl := New(2, 3)
	tbl.Cols[0][2] = 5
	tbl.Recount()
	if tbl.Cards[0] != 6 || tbl.Cards[1] != 1 {
		t.Fatalf("cards after Recount = %v", tbl.Cards)
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	tbl := New(1, 2)
	tbl.Cols[0][0] = 4 // cards still 1
	if err := tbl.Validate(); err == nil {
		t.Fatal("Validate must reject value beyond cardinality")
	}
	tbl.Recount()
	if err := tbl.Validate(); err != nil {
		t.Fatalf("Validate after Recount: %v", err)
	}
}

func TestValidateAuxLength(t *testing.T) {
	tbl := New(1, 2)
	tbl.Aux = []float64{1}
	if err := tbl.Validate(); err == nil {
		t.Fatal("Validate must reject mismatched aux length")
	}
}

func TestReorder(t *testing.T) {
	tbl := mustFromRows(t, [][]core.Value{{0, 1, 2}, {1, 2, 0}})
	tbl.Names = []string{"A", "B", "C"}
	r, err := tbl.Reorder([]int{2, 0, 1})
	if err != nil {
		t.Fatalf("Reorder: %v", err)
	}
	if r.Names[0] != "C" || r.Names[1] != "A" {
		t.Fatalf("names = %v", r.Names)
	}
	if r.Value(0, 0) != 2 || r.Value(1, 0) != 0 {
		t.Fatalf("values not permuted: %v", r.Cols)
	}
	if _, err := tbl.Reorder([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate permutation must error")
	}
	if _, err := tbl.Reorder([]int{0}); err == nil {
		t.Fatal("short permutation must error")
	}
}

func TestSelectDims(t *testing.T) {
	tbl := mustFromRows(t, [][]core.Value{{0, 1, 2}})
	s, err := tbl.SelectDims(2)
	if err != nil {
		t.Fatalf("SelectDims: %v", err)
	}
	if s.NumDims() != 2 || s.Value(0, 1) != 1 {
		t.Fatalf("selected table wrong: %v", s.Cols)
	}
	if _, err := tbl.SelectDims(0); err == nil {
		t.Fatal("SelectDims(0) must error")
	}
	if _, err := tbl.SelectDims(4); err == nil {
		t.Fatal("SelectDims beyond dims must error")
	}
}

func TestSubset(t *testing.T) {
	tbl := mustFromRows(t, [][]core.Value{{0, 0}, {1, 1}, {2, 2}})
	tbl.Aux = []float64{10, 20, 30}
	s := tbl.Subset([]core.TID{2, 0})
	if s.NumTuples() != 2 || s.Value(0, 0) != 2 || s.Value(1, 0) != 0 {
		t.Fatalf("subset = %v", s.Cols)
	}
	if s.Aux[0] != 30 || s.Aux[1] != 10 {
		t.Fatalf("subset aux = %v", s.Aux)
	}
	// Mutating the subset must not touch the parent.
	s.Cols[0][0] = 0
	if tbl.Value(2, 0) != 2 {
		t.Fatal("Subset must copy columns")
	}
}
