package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVWithHeader(t *testing.T) {
	in := "city,product\nNY,phone\nSF,phone\nNY,laptop\n"
	tbl, dicts, err := ReadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tbl.NumDims() != 2 || tbl.NumTuples() != 3 {
		t.Fatalf("dims=%d tuples=%d", tbl.NumDims(), tbl.NumTuples())
	}
	if tbl.Names[0] != "city" || tbl.Names[1] != "product" {
		t.Fatalf("names = %v", tbl.Names)
	}
	if tbl.Cards[0] != 2 || tbl.Cards[1] != 2 {
		t.Fatalf("cards = %v", tbl.Cards)
	}
	// Dictionary-encoding assigns codes in first-seen order.
	if dicts[0].Name(0) != "NY" || dicts[0].Name(1) != "SF" {
		t.Fatalf("dict names: %q %q", dicts[0].Name(0), dicts[0].Name(1))
	}
	if tbl.Value(2, 0) != 0 || tbl.Value(2, 1) != 1 {
		t.Fatalf("row 2 = %d,%d", tbl.Value(2, 0), tbl.Value(2, 1))
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tbl, _, err := ReadCSV(strings.NewReader("a,b\nc,d\n"), false)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tbl.NumTuples() != 2 {
		t.Fatalf("tuples = %d", tbl.NumTuples())
	}
	if tbl.Names[0] != "dim0" {
		t.Fatalf("synthesized name = %q", tbl.Names[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, _, err := ReadCSV(strings.NewReader(""), false); err == nil {
		t.Fatal("empty input must error")
	}
	if _, _, err := ReadCSV(strings.NewReader("h1,h2\n"), true); err == nil {
		t.Fatal("header-only input must error")
	}
	// encoding/csv itself rejects ragged rows.
	if _, _, err := ReadCSV(strings.NewReader("a,b\nc\n"), false); err == nil {
		t.Fatal("ragged rows must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := "d0,d1\nx,p\ny,q\nx,q\n"
	tbl, dicts, err := ReadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl, dicts, true); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if buf.String() != in {
		t.Fatalf("round trip mismatch:\n got %q\nwant %q", buf.String(), in)
	}
}

func TestWriteCSVRawCodes(t *testing.T) {
	tbl, _, err := ReadCSV(strings.NewReader("x,p\ny,q\n"), false)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl, nil, false); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if buf.String() != "0,0\n1,1\n" {
		t.Fatalf("raw codes = %q", buf.String())
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Code("alpha")
	b := d.Code("beta")
	if a == b {
		t.Fatal("distinct labels share a code")
	}
	if d.Code("alpha") != a {
		t.Fatal("repeat label changed code")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got, ok := d.Lookup("beta"); !ok || got != b {
		t.Fatalf("Lookup beta = %d,%v", got, ok)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup of unseen label must fail")
	}
	if d.Name(a) != "alpha" {
		t.Fatalf("Name = %q", d.Name(a))
	}
	if d.Name(-1) != "*" || d.Name(99) != "*" {
		t.Fatal("out-of-range Name must be *")
	}
}
