package refcube

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/table"
)

// paperTable is Table 1 of the paper: 3 tuples over dims A,B,C,D.
//
//	a1 b1 c1 d1
//	a1 b1 c1 d3
//	a1 b2 c2 d2
//
// Codes: a1=0; b1=0,b2=1; c1=0,c2=1; d1=0,d3=2,d2=1.
func paperTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestPaperExample1 checks the worked example of the paper: with count >= 2,
// (a1,b1,c1,*):2 and (a1,*,*,*):3 are closed iceberg cells; (a1,*,c1,*):2 is
// not closed; (a1,b2,c2,d2):1 fails the iceberg constraint.
func TestPaperExample1(t *testing.T) {
	tb := paperTable(t)
	ice, closed, err := Cube(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantClosed := map[string]int64{
		core.CellKey([]core.Value{0, 0, 0, core.Star}):                 2,
		core.CellKey([]core.Value{0, core.Star, core.Star, core.Star}): 3,
	}
	if len(closed) != len(wantClosed) {
		t.Fatalf("closed cells = %v", closed)
	}
	for _, c := range closed {
		if wantClosed[c.Key()] != c.Count {
			t.Fatalf("unexpected closed cell %v", c)
		}
	}
	// The non-closed iceberg cell (a1,*,c1,*):2 must be in the iceberg cube.
	found := false
	for _, c := range ice {
		if c.Key() == core.CellKey([]core.Value{0, core.Star, 0, core.Star}) {
			found = true
			if c.Count != 2 {
				t.Fatalf("(a1,*,c1,*) count = %d", c.Count)
			}
		}
		if c.Count < 2 {
			t.Fatalf("iceberg cube contains sub-threshold cell %v", c)
		}
	}
	if !found {
		t.Fatal("(a1,*,c1,*) missing from iceberg cube")
	}
}

func TestClosedSubsetOfIceberg(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 4, C: 4, S: 1, Seed: 8})
	ice, closed, err := Cube(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	im := map[string]int64{}
	for _, c := range ice {
		im[c.Key()] = c.Count
	}
	for _, c := range closed {
		if im[c.Key()] != c.Count {
			t.Fatalf("closed cell %v not in iceberg cube", c)
		}
	}
	if len(closed) == 0 || len(closed) >= len(ice) {
		t.Fatalf("suspicious sizes: closed=%d iceberg=%d", len(closed), len(ice))
	}
}

// TestClosedCellsAreClosedByDefinition re-verifies the oracle against the
// rawest possible implementation of Def. 3: a cell is non-closed iff some
// one-dimension refinement has the same count.
func TestClosedCellsAreClosedByDefinition(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 60, D: 3, C: 3, S: 0.5, Seed: 9})
	ice, closed, err := Cube(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, c := range ice {
		counts[c.Key()] = c.Count
	}
	closedSet := map[string]bool{}
	for _, c := range closed {
		closedSet[c.Key()] = true
	}
	for _, c := range ice {
		// Compute definitional closedness.
		isClosed := true
		for d := range c.Values {
			if c.Values[d] != core.Star {
				continue
			}
			for v := 0; v < tb.Cards[d]; v++ {
				ref := append([]core.Value(nil), c.Values...)
				ref[d] = core.Value(v)
				if counts[core.CellKey(ref)] == c.Count {
					isClosed = false
				}
			}
		}
		if isClosed != closedSet[c.Key()] {
			t.Fatalf("cell %v: oracle says closed=%v, definition says %v",
				c, closedSet[c.Key()], isClosed)
		}
	}
}

func TestApexAlwaysPresent(t *testing.T) {
	tb := paperTable(t)
	ice, _, err := Cube(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	apex := core.CellKey([]core.Value{core.Star, core.Star, core.Star, core.Star})
	for _, c := range ice {
		if c.Key() == apex {
			if c.Count != 3 {
				t.Fatalf("apex count = %d", c.Count)
			}
			return
		}
	}
	t.Fatal("apex cell missing")
}

func TestHighMinsupEmptiesCube(t *testing.T) {
	tb := paperTable(t)
	ice, closed, err := Cube(tb, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ice) != 0 || len(closed) != 0 {
		t.Fatalf("cube above T must be empty: %d/%d", len(ice), len(closed))
	}
}

func TestErrors(t *testing.T) {
	tb := paperTable(t)
	if _, _, err := Cube(tb, 0); err == nil {
		t.Fatal("min_sup 0 must error")
	}
	wide := table.New(21, 1)
	if _, _, err := Cube(wide, 1); err == nil {
		t.Fatal("too many dimensions must error")
	}
}

func TestWrappers(t *testing.T) {
	tb := paperTable(t)
	ice, err := Iceberg(tb, 1)
	if err != nil || len(ice) == 0 {
		t.Fatalf("Iceberg: %v %d", err, len(ice))
	}
	cl, err := Closed(tb, 1)
	if err != nil || len(cl) == 0 {
		t.Fatalf("Closed: %v %d", err, len(cl))
	}
	if len(cl) > len(ice) {
		t.Fatal("closed larger than iceberg")
	}
}
