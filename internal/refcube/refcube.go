// Package refcube is the definitional oracle for iceberg and closed iceberg
// cubes. It enumerates every group-by cell of every cuboid by brute force and
// decides closedness straight from Def. 3 of the paper (equivalently: a cell
// is closed iff on no wildcard dimension do all of its tuples share a single
// value). It is exponential in the dimension count and exists to verify the
// real engines on small inputs.
package refcube

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

// maxDims caps the oracle's dimensionality: 2^D cells per tuple.
const maxDims = 20

// mixed marks a dimension on which the cell's tuples disagree.
const mixed core.Value = -3

type agg struct {
	count  int64
	shared []core.Value // per dim: the common value, or mixed
}

// Cube computes both the iceberg cube and the closed iceberg cube of t at
// the given min_sup in one enumeration pass.
func Cube(t *table.Table, minsup int64) (iceberg, closed []core.Cell, err error) {
	nd := t.NumDims()
	if nd > maxDims {
		return nil, nil, fmt.Errorf("refcube: %d dimensions exceed oracle limit %d", nd, maxDims)
	}
	if minsup < 1 {
		return nil, nil, fmt.Errorf("refcube: min_sup %d < 1", minsup)
	}
	n := t.NumTuples()
	cells := make(map[string]*agg)
	vals := make([]core.Value, nd)
	row := make([]core.Value, nd)

	for tid := 0; tid < n; tid++ {
		for d := 0; d < nd; d++ {
			row[d] = t.Cols[d][tid]
		}
		for mask := 0; mask < 1<<nd; mask++ {
			for d := 0; d < nd; d++ {
				if mask&(1<<d) != 0 {
					vals[d] = row[d]
				} else {
					vals[d] = core.Star
				}
			}
			k := core.CellKey(vals)
			a := cells[k]
			if a == nil {
				a = &agg{shared: append([]core.Value(nil), row...)}
				cells[k] = a
			} else {
				for d := 0; d < nd; d++ {
					if a.shared[d] != mixed && a.shared[d] != row[d] {
						a.shared[d] = mixed
					}
				}
			}
			a.count++
		}
	}

	for k, a := range cells {
		if a.count < minsup {
			continue
		}
		cell := core.Cell{Values: decodeKey(k, nd), Count: a.count}
		iceberg = append(iceberg, cell)
		isClosed := true
		for d, v := range cell.Values {
			if v == core.Star && a.shared[d] != mixed {
				isClosed = false
				break
			}
		}
		if isClosed {
			closed = append(closed, cell)
		}
	}
	core.SortCells(iceberg)
	core.SortCells(closed)
	return iceberg, closed, nil
}

// Iceberg returns only the iceberg cube cells.
func Iceberg(t *table.Table, minsup int64) ([]core.Cell, error) {
	ice, _, err := Cube(t, minsup)
	return ice, err
}

// Closed returns only the closed iceberg cube cells.
func Closed(t *table.Table, minsup int64) ([]core.Cell, error) {
	_, cl, err := Cube(t, minsup)
	return cl, err
}

func decodeKey(k string, nd int) []core.Value {
	vals := make([]core.Value, nd)
	for d := 0; d < nd; d++ {
		v := uint32(k[4*d]) | uint32(k[4*d+1])<<8 | uint32(k[4*d+2])<<16 | uint32(k[4*d+3])<<24
		vals[d] = core.Value(v)
	}
	return vals
}
