package stararray

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// ccStarArray adapts this package to the engine registry as
// C-Cubing(StarArray) / StarArray (the Closed flag selects which).
type ccStarArray struct{}

func (ccStarArray) Name() string { return "CC(StarArray)" }

func (ccStarArray) Capabilities() engine.Capabilities {
	// Measures ride the multiway traversal: merged nodes and pool folds
	// carry the stored aggregate exactly like count.
	return engine.Capabilities{Closed: true, Iceberg: true, NativeMeasure: true, OrderSensitive: true}
}

func (ccStarArray) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, Config{
		MinSup:        cfg.MinSup,
		Closed:        cfg.Closed,
		DisableLemma5: cfg.DisableLemma5,
		DisableLemma6: cfg.DisableLemma6,
		Measure:       cfg.Measure,
	}, out)
}

func init() { engine.Register(ccStarArray{}) }
