// Package stararray implements the StarArray extension of Star-Cubing and
// its closed version C-Cubing(StarArray) (paper Sec. 4).
//
// A StarArray is the pair <A, T>: a partial cuboid tree whose sub-min_sup
// branches are truncated into pools of tuple IDs sorted by the remaining
// dimensions (Sec. 4.1). Child trees are built by "multiway traversal"
// (Sec. 4.2): for each child tree, the branches under the anchor are
// traversed simultaneously — a k-way merge synchronized on node values —
// so every child-tree node is created with its final aggregate known, and
// the child tree is traversed exactly once during construction. Pools merge
// by order-preserving multiway merge on the remaining dimensions. With
// min_sup 1 no pools arise and the structure degenerates to a star tree, as
// the paper notes.
//
// C-Cubing(StarArray) carries the closedness measure through the merges
// (exact masks at pool boundaries, partial masks in the tree) and applies
// the Lemma 5 (mask) and Lemma 6 (single-son) prunings.
package stararray

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a run.
type Config struct {
	// MinSup is the iceberg threshold on count.
	MinSup int64
	// Closed selects C-Cubing(StarArray); false runs the plain (non-closed)
	// StarArray iceberg engine.
	Closed bool
	// DisableLemma5 and DisableLemma6 turn off the closed prunings
	// (ablations; output must not change).
	DisableLemma5 bool
	DisableLemma6 bool
	// Measure optionally aggregates the table's Aux column per output cell
	// through the multiway traversal itself (paper Sec. 6.1): nodes and pool
	// merges carry the stored aggregate (core.MeasureAgg.Stored). Delivered
	// through sink.AuxSink.
	Measure core.MeasureKind
}

type runner struct {
	t        *table.Table
	cfg      Config
	out      sink.Sink
	auxOut   sink.AuxSink // set when cfg.Measure is active and out accepts aux
	measure  core.MeasureKind
	cols     core.Columns
	vals     []core.Value
	slabPool [][]saNode
}

// emit delivers one cell, with the node's stored measure aggregate when a
// native measure is active.
func (r *runner) emit(n *saNode) {
	if r.auxOut != nil {
		r.auxOut.EmitAux(r.vals, n.count, n.aux)
		return
	}
	r.out.Emit(r.vals, n.count)
}

// Run computes the (closed) iceberg cube of t and emits cells into out.
func Run(t *table.Table, cfg Config, out sink.Sink) error {
	if cfg.MinSup < 1 {
		return fmt.Errorf("stararray: min_sup %d < 1", cfg.MinSup)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("stararray: %w", err)
	}
	if t.NumDims() < 1 {
		return fmt.Errorf("stararray: table has no dimensions")
	}
	if cfg.Measure != core.MeasureNone && t.Aux == nil {
		return fmt.Errorf("stararray: measure %v requested but table has no aux column", cfg.Measure)
	}
	if int64(t.NumTuples()) < cfg.MinSup {
		return nil
	}
	r := &runner{
		t:    t,
		cfg:  cfg,
		out:  out,
		cols: t.Cols,
		vals: make([]core.Value, t.NumDims()),
	}
	if a, ok := out.(sink.AuxSink); ok && cfg.Measure != core.MeasureNone {
		r.auxOut = a
		r.measure = cfg.Measure
	}
	for d := range r.vals {
		r.vals[d] = core.Star
	}
	base := buildBase(t, cfg.MinSup, cfg.Closed, r.measure, &r.slabPool)
	r.process(base)
	base.ar.release()
	return nil
}

func (r *runner) process(tr *saTree) { r.dfs(tr, tr.root, 0, false) }

// dfs walks tree tr emitting cells at the last two levels and spawning one
// child tree per eligible internal node (multiway traversal builds it in one
// pass). prune carries Lemma 5 state down the path.
func (r *runner) dfs(tr *saTree, n *saNode, l int, prune bool) {
	m := tr.depth()
	d := -1
	if l >= 1 {
		d = tr.dims[l-1]
		r.vals[d] = n.val
	}
	if r.cfg.Closed && !r.cfg.DisableLemma5 && n.cls.Mask&tr.tm != 0 {
		prune = true
	}
	switch {
	case l == m:
		if n.count >= r.cfg.MinSup &&
			(!r.cfg.Closed || n.cls.Mask&tr.tm == 0) {
			r.emit(n)
		}
	case n.isPool:
		// Truncated branch: count < min_sup, nothing below can be output.
	case l == m-1:
		if n.count >= r.cfg.MinSup && !prune {
			if !r.cfg.Closed ||
				(n.cls.Mask&tr.tm == 0 && n.nsons != 1) {
				r.emit(n)
			}
		}
		for s := n.child; s != nil; s = s.sib {
			r.dfs(tr, s, l+1, prune)
		}
	default:
		if n.count >= r.cfg.MinSup && !prune &&
			!(r.cfg.Closed && !r.cfg.DisableLemma6 && n.nsons == 1) {
			ct := r.buildCT(tr, n, l)
			r.process(ct)
			ct.ar.release()
		}
		for s := n.child; s != nil; s = s.sib {
			r.dfs(tr, s, l+1, prune)
		}
	}
	if l >= 1 {
		r.vals[d] = core.Star
	}
}

// cursor points at a subtree or pool segment whose children are merged at
// the current depth: exactly one of n (an internal node whose sons are the
// children) or pool (TIDs sorted by tr.dims[d:], whose value runs on
// tr.dims[d] are the children) is set.
type cursor struct {
	n    *saNode
	pool []core.TID
}

// buildCT builds the child tree of anchor n (at level l of tr) by collapsing
// tr.dims[l]: the anchor's son subtrees are merged in one synchronized pass.
func (r *runner) buildCT(tr *saTree, n *saNode, l int) *saTree {
	sub := &saTree{dims: tr.dims[l+1:], tm: tr.tm.With(tr.dims[l])}
	sub.ar.pool = &r.slabPool
	root := sub.ar.alloc()
	root.val = rootVal
	root.count = n.count
	root.aux = n.aux
	if r.cfg.Closed {
		root.cls = core.EmptyClosedness()
		for s := n.child; s != nil; s = s.sib {
			root.cls.Merge(s.cls, sub.tm, r.cols)
		}
	}
	curs := make([]cursor, 0, n.nsons)
	for s := n.child; s != nil; s = s.sib {
		curs = append(curs, asCursor(s))
	}
	root.child, root.nsons = r.mergeChildren(sub, curs, 0)
	sub.root = root
	return sub
}

func asCursor(s *saNode) cursor {
	if s.isPool {
		return cursor{pool: s.pool}
	}
	return cursor{n: s}
}

// member is one source of a value group during a merge step: either a node
// (internal or pool leaf) or a raw pool run.
type member struct {
	node *saNode
	run  []core.TID
}

func (mb member) count() int64 {
	if mb.node != nil {
		return mb.node.count
	}
	return int64(len(mb.run))
}

// aux returns the member's stored measure aggregate: the node's own, or the
// fold over a raw pool run.
func (mb member) aux(kind core.MeasureKind, auxIn []float64) float64 {
	if mb.node != nil {
		return mb.node.aux
	}
	acc := core.StoredIdentity(kind)
	for _, tid := range mb.run {
		acc = core.CombineStored(kind, acc, auxIn[tid])
	}
	return acc
}

func (mb member) closedness(cols core.Columns) core.Closedness {
	if mb.node != nil {
		return mb.node.cls
	}
	return core.ExactClosedness(mb.run, cols)
}

func (mb member) asCursor() cursor {
	if mb.node != nil {
		return asCursor(mb.node)
	}
	return cursor{pool: mb.run}
}

// stream iterates the children of one cursor during a merge step.
type stream struct {
	c    cursor
	next *saNode // next son (node cursors)
	pos  int     // next pool position (pool cursors)
}

func (s *stream) head(col []core.Value) (core.Value, bool) {
	if s.c.n != nil {
		if s.next == nil {
			return 0, false
		}
		return s.next.val, true
	}
	if s.pos >= len(s.c.pool) {
		return 0, false
	}
	return col[s.c.pool[s.pos]], true
}

func (s *stream) take(col []core.Value) member {
	if s.c.n != nil {
		mb := member{node: s.next}
		s.next = s.next.sib
		return mb
	}
	v := col[s.c.pool[s.pos]]
	end := s.pos + 1
	for end < len(s.c.pool) && col[s.c.pool[end]] == v {
		end++
	}
	mb := member{run: s.c.pool[s.pos:end]}
	s.pos = end
	return mb
}

// streamHeap is a min-heap of streams keyed by head value, so a merge step
// over k streams costs O(log k) per advanced stream rather than O(k) per
// produced group.
type streamHeap struct {
	s    []*stream
	keys []core.Value
}

func (h *streamHeap) push(st *stream, key core.Value) {
	h.s = append(h.s, st)
	h.keys = append(h.keys, key)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.s[p], h.s[i] = h.s[i], h.s[p]
		h.keys[p], h.keys[i] = h.keys[i], h.keys[p]
		i = p
	}
}

func (h *streamHeap) pop() *stream {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0], h.keys[0] = h.s[last], h.keys[last]
	h.s, h.keys = h.s[:last], h.keys[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < len(h.s) && h.keys[l] < h.keys[small] {
			small = l
		}
		if rr < len(h.s) && h.keys[rr] < h.keys[small] {
			small = rr
		}
		if small == i {
			return top
		}
		h.s[i], h.s[small] = h.s[small], h.s[i]
		h.keys[i], h.keys[small] = h.keys[small], h.keys[i]
		i = small
	}
}

// mergeChildren produces the merged, aggregated children on tr.dims[d] of
// the given cursors (nodes at level d whose sons carry values on tr.dims[d],
// or pools sorted by tr.dims[d:]). Children come out as a sorted son chain.
func (r *runner) mergeChildren(tr *saTree, curs []cursor, d int) (*saNode, int32) {
	col := r.cols[tr.dims[d]]
	var h streamHeap
	streams := make([]stream, len(curs))
	for i := range curs {
		streams[i] = stream{c: curs[i], next: curs[i].n.childOrNil()}
		if v, ok := streams[i].head(col); ok {
			h.push(&streams[i], v)
		}
	}
	var first, tail *saNode
	var nsons int32
	var members []member
	for len(h.s) > 0 {
		vmin := h.keys[0]
		members = members[:0]
		var cnt int64
		aux := core.StoredIdentity(r.measure)
		for len(h.s) > 0 && h.keys[0] == vmin {
			st := h.pop()
			mb := st.take(col)
			members = append(members, mb)
			cnt += mb.count()
			if r.auxOut != nil {
				aux = core.CombineStored(r.measure, aux, mb.aux(r.measure, r.t.Aux))
			}
			if v, ok := st.head(col); ok {
				h.push(st, v)
			}
		}
		x := r.buildMerged(tr, vmin, cnt, aux, members, d)
		if tail == nil {
			first = x
		} else {
			tail.sib = x
		}
		tail = x
		nsons++
	}
	return first, nsons
}

// childOrNil tolerates pool cursors (whose n is nil).
func (n *saNode) childOrNil() *saNode {
	if n == nil {
		return nil
	}
	return n.child
}

// buildMerged assembles the merged child node for one value group.
func (r *runner) buildMerged(tr *saTree, v core.Value, cnt int64, aux float64, members []member, d int) *saNode {
	m := tr.depth()
	x := tr.ar.alloc()
	x.val = v
	x.count = cnt
	x.aux = aux
	switch {
	case d+1 == m: // full-depth leaf
		if r.cfg.Closed {
			x.cls = r.fold(members, tr.tm)
		}
	case cnt < r.cfg.MinSup: // truncate into a pool
		x.isPool = true
		x.pool = r.gather(tr, members, d+1)
		if r.cfg.Closed {
			// Every member is itself a pool or run (its count is below
			// min_sup too), so all masks are exact and a full-mask fold
			// keeps the pool's measure exact.
			x.cls = r.fold(members, ^core.Mask(0))
		}
	default: // internal
		if r.cfg.Closed {
			x.cls = r.fold(members, tr.tm)
		}
		subCurs := make([]cursor, len(members))
		for i, mb := range members {
			subCurs[i] = mb.asCursor()
		}
		x.child, x.nsons = r.mergeChildren(tr, subCurs, d+1)
	}
	return x
}

// fold combines the members' closedness measures under the given check mask.
func (r *runner) fold(members []member, check core.Mask) core.Closedness {
	c := core.EmptyClosedness()
	for _, mb := range members {
		c.Merge(mb.closedness(r.cols), check, r.cols)
	}
	return c
}

// gather merges the members' tuple pools into one pool sorted by
// tr.dims[d:] (the multiway merge sort of Sec. 4.2). All members are pools
// or runs already sorted by those dimensions; a single member is shared
// without copying.
func (r *runner) gather(tr *saTree, members []member, d int) []core.TID {
	pools := make([][]core.TID, 0, len(members))
	for _, mb := range members {
		p := mb.run
		if mb.node != nil {
			p = mb.node.pool
		}
		pools = append(pools, p)
	}
	if len(pools) == 1 {
		return pools[0]
	}
	dims := tr.dims[d:]
	less := func(a, b core.TID) bool {
		for _, dd := range dims {
			va, vb := r.cols[dd][a], r.cols[dd][b]
			if va != vb {
				return va < vb
			}
		}
		return a < b
	}
	// Balanced pairwise merging: O(total · log k) comparisons.
	for len(pools) > 1 {
		merged := make([][]core.TID, 0, (len(pools)+1)/2)
		for i := 0; i+1 < len(pools); i += 2 {
			a, b := pools[i], pools[i+1]
			out := make([]core.TID, 0, len(a)+len(b))
			for len(a) > 0 && len(b) > 0 {
				if less(b[0], a[0]) {
					out = append(out, b[0])
					b = b[1:]
				} else {
					out = append(out, a[0])
					a = a[1:]
				}
			}
			out = append(out, a...)
			out = append(out, b...)
			merged = append(merged, out)
		}
		if len(pools)%2 == 1 {
			merged = append(merged, pools[len(pools)-1])
		}
		pools = merged
	}
	return pools[0]
}
