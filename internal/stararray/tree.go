package stararray

import (
	"ccubing/internal/core"
	"ccubing/internal/psort"
	"ccubing/internal/table"
)

// rootVal marks a tree root; roots carry no dimension value.
const rootVal core.Value = -99

// saNode is a StarArray node. A node is exactly one of:
//
//   - internal: count >= min_sup, sons materialized (first-child/next-sibling
//     chain, sorted ascending by value);
//   - pool leaf: count < min_sup, subtree truncated into pool — the tuple IDs
//     of the node, sorted by the remaining dimensions (paper Sec. 4.1);
//   - full-depth leaf: no dimensions remain below.
//
// Pool leaves carry an exact closedness measure (full mask over all base
// dimensions, computed at pool creation); internal nodes carry the partial
// per-level measure of Sec. 4.3.
type saNode struct {
	val    core.Value
	count  int64
	aux    float64 // stored measure aggregate (native measures only)
	cls    core.Closedness
	child  *saNode
	sib    *saNode
	nsons  int32
	isPool bool
	pool   []core.TID
}

// sonSlice materializes the son chain; test helper.
func (n *saNode) sonSlice() []*saNode {
	var out []*saNode
	for s := n.child; s != nil; s = s.sib {
		out = append(out, s)
	}
	return out
}

// arena allocates nodes in recycled slabs (see startree's arena for the
// rationale: child trees are created and destroyed per anchor node, and the
// garbage collector should not pay for that).
type arena struct {
	slab []saNode
	used [][]saNode
	pool *[][]saNode
}

const arenaSlab = 1024

func (a *arena) alloc() *saNode {
	if len(a.slab) == 0 {
		if a.pool != nil && len(*a.pool) > 0 {
			p := *a.pool
			a.slab = p[len(p)-1]
			*a.pool = p[:len(p)-1]
		} else {
			a.slab = make([]saNode, arenaSlab)
		}
		a.used = append(a.used, a.slab[:arenaSlab])
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	*n = saNode{}
	return n
}

func (a *arena) release() {
	if a.pool == nil {
		return
	}
	*a.pool = append(*a.pool, a.used...)
	a.used = nil
	a.slab = nil
}

// saTree is one cuboid tree of the StarArray computation: the pair <A, T> of
// the paper, with A distributed over the pool slices of the truncated leaves.
type saTree struct {
	dims []int
	tm   core.Mask // tree mask: dimensions collapsed on the derivation path
	root *saNode
	ar   arena
}

func (tr *saTree) depth() int { return len(tr.dims) }

// buildBase constructs the base StarArray over all tuples: tuples are
// LexSorted over every dimension, so each pool leaf references a subrange of
// the one sorted TID array with no copying, already ordered by its remaining
// dimensions.
// buildBase constructs the base StarArray; when measure is active every node
// (including pool leaves) carries the stored measure aggregate of its tuples.
func buildBase(t *table.Table, minsup int64, closed bool, measure core.MeasureKind, pool *[][]saNode) *saTree {
	nd := t.NumDims()
	tr := &saTree{dims: make([]int, nd)}
	tr.ar.pool = pool
	for d := range tr.dims {
		tr.dims[d] = d
	}
	n := t.NumTuples()
	tids := make([]core.TID, n)
	for i := range tids {
		tids[i] = core.TID(i)
	}
	psort.LexSort(tids, t.Cols, tr.dims, t.Cards, nil)

	structMask := make([]core.Mask, nd+1)
	for l := 1; l <= nd; l++ {
		structMask[l] = structMask[l-1].With(tr.dims[l-1])
	}

	b := &baseBuilder{
		t: t, tr: tr, tids: tids, minsup: minsup,
		closed: closed, measure: measure, structMask: structMask,
	}
	tr.root = b.build(0, n, 0, rootVal)
	return tr
}

type baseBuilder struct {
	t          *table.Table
	tr         *saTree
	tids       []core.TID
	minsup     int64
	closed     bool
	measure    core.MeasureKind
	structMask []core.Mask
}

// auxRange aggregates the stored measure of the sorted-TID range [lo,hi).
func (b *baseBuilder) auxRange(lo, hi int) float64 {
	acc := core.StoredIdentity(b.measure)
	for _, tid := range b.tids[lo:hi] {
		acc = core.CombineStored(b.measure, acc, b.t.Aux[tid])
	}
	return acc
}

// build creates the node covering the sorted TID range [lo,hi) at level l
// (values fixed on dims[0..l-1], the node's own value being val).
func (b *baseBuilder) build(lo, hi, l int, val core.Value) *saNode {
	x := b.tr.ar.alloc()
	x.val = val
	x.count = int64(hi - lo)
	if b.measure != core.MeasureNone {
		x.aux = b.auxRange(lo, hi)
	}
	m := b.tr.depth()
	switch {
	case l == m: // full-depth leaf: a group of identical tuples
		if b.closed {
			x.cls = core.Closedness{Rep: minTID(b.tids[lo:hi]), Mask: ^core.Mask(0)}
		}
	case x.count < b.minsup: // truncate: pool leaf
		x.isPool = true
		x.pool = b.tids[lo:hi]
		if b.closed {
			x.cls = core.ExactClosednessRange(b.tids, lo, hi, b.t.Cols)
		}
	default: // internal: split the range into value runs on dims[l]
		col := b.t.Cols[b.tr.dims[l]]
		var tail *saNode
		for rlo := lo; rlo < hi; {
			v := col[b.tids[rlo]]
			rhi := rlo + 1
			for rhi < hi && col[b.tids[rhi]] == v {
				rhi++
			}
			son := b.build(rlo, rhi, l+1, v)
			if tail == nil {
				x.child = son
			} else {
				tail.sib = son
			}
			tail = son
			x.nsons++
			rlo = rhi
		}
		if b.closed {
			x.cls = core.Closedness{Rep: core.NilTID, Mask: b.structMask[l]}
			for s := x.child; s != nil; s = s.sib {
				if x.cls.Rep == core.NilTID || s.cls.Rep < x.cls.Rep {
					x.cls.Rep = s.cls.Rep
				}
			}
		}
	}
	return x
}

func minTID(tids []core.TID) core.TID {
	m := tids[0]
	for _, t := range tids[1:] {
		if t < m {
			m = t
		}
	}
	return m
}
