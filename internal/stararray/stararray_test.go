package stararray

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func run(t *testing.T, tb *table.Table, cfg Config) *sink.Collector {
	t.Helper()
	var c sink.Collector
	d := &sink.Dedup{Next: &c}
	if err := Run(tb, cfg, d); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Dup != 0 {
		t.Fatalf("StarArray emitted %d duplicate cells", d.Dup)
	}
	return &c
}

func paperTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

var oracleCases = []struct {
	cfg    gen.Config
	minsup int64
}{
	{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 1}, 1},
	{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 2}, 4},
	{gen.Config{T: 200, D: 3, C: 8, S: 2, Seed: 3}, 2},
	{gen.Config{T: 100, D: 5, C: 2, S: 1, Seed: 4}, 3},
	{gen.Config{T: 300, D: 2, C: 20, S: 0.5, Seed: 5}, 5},
	{gen.Config{T: 120, D: 6, C: 2, S: 0, Seed: 6}, 2},
	{gen.Config{T: 80, D: 4, C: 10, S: 3, Seed: 7}, 1},
	{gen.Config{T: 250, D: 4, C: 6, S: 1.5, Seed: 8}, 6},
	{gen.Config{T: 400, D: 3, C: 30, S: 1, Seed: 9}, 7},
	// High cardinality relative to T: lots of pools.
	{gen.Config{T: 200, D: 4, C: 25, S: 0, Seed: 10}, 3},
}

func TestIcebergMatchesOracle(t *testing.T) {
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Iceberg(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: c.minsup})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

func TestClosedMatchesOracle(t *testing.T) {
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Closed(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: c.minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

func TestPruningNeutral(t *testing.T) {
	variants := []Config{
		{Closed: true, DisableLemma5: true},
		{Closed: true, DisableLemma6: true},
		{Closed: true, DisableLemma5: true, DisableLemma6: true},
	}
	for i, c := range oracleCases {
		tb := gen.MustSynthetic(c.cfg)
		baseline := run(t, tb, Config{MinSup: c.minsup, Closed: true})
		for vi, v := range variants {
			v.MinSup = c.minsup
			got := run(t, tb, v)
			if diff := sink.DiffCells(got.Cells, baseline.Cells, 8); diff != "" {
				t.Fatalf("case %d variant %d changed output:\n%s", i, vi, diff)
			}
		}
	}
}

func TestPaperExample1(t *testing.T) {
	got := run(t, paperTable(t), Config{MinSup: 2, Closed: true})
	if len(got.Cells) != 2 {
		t.Fatalf("cells:\n%s", sink.FormatCells(got.Cells))
	}
	m, _ := got.ByKey()
	if m[core.CellKey([]core.Value{0, 0, 0, core.Star})] != 2 ||
		m[core.CellKey([]core.Value{0, core.Star, core.Star, core.Star})] != 3 {
		t.Fatalf("wrong closed cells:\n%s", sink.FormatCells(got.Cells))
	}
}

// TestPoolsSortedInvariant verifies the structural invariant of Sec. 4.1:
// every pool is sorted by the tree's remaining dimensions.
func TestPoolsSortedInvariant(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 300, D: 4, C: 12, S: 1, Seed: 77})
	tr := buildBase(tb, 5, true, core.MeasureNone, nil)
	var walk func(n *saNode, l int)
	walk = func(n *saNode, l int) {
		if n.isPool {
			dims := tr.dims[l:]
			for i := 1; i < len(n.pool); i++ {
				a, b := n.pool[i-1], n.pool[i]
				for _, d := range dims {
					va, vb := tb.Cols[d][a], tb.Cols[d][b]
					if va < vb {
						break
					}
					if va > vb {
						t.Fatalf("pool not sorted at level %d: tids %d,%d on dim %d", l, a, b, d)
					}
				}
			}
			if int64(len(n.pool)) >= 5 {
				t.Fatalf("pool leaf with count %d >= min_sup", len(n.pool))
			}
			return
		}
		for _, s := range n.sonSlice() {
			walk(s, l+1)
		}
	}
	walk(tr.root, 0)
}

// TestSonsSortedInvariant: internal nodes keep sons sorted by value, which
// the merge construction relies on.
func TestSonsSortedInvariant(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 300, D: 4, C: 8, S: 1, Seed: 78})
	tr := buildBase(tb, 3, true, core.MeasureNone, nil)
	var walk func(n *saNode)
	walk = func(n *saNode) {
		sons := n.sonSlice()
		if int32(len(sons)) != n.nsons {
			t.Fatalf("nsons=%d but chain has %d", n.nsons, len(sons))
		}
		for i := 1; i < len(sons); i++ {
			if sons[i-1].val >= sons[i].val {
				t.Fatalf("sons out of order: %d then %d", sons[i-1].val, sons[i].val)
			}
		}
		for _, s := range sons {
			walk(s)
		}
	}
	walk(tr.root)
}

// TestMinsupOneHasNoPools: the paper notes StarArray with min_sup 1 is
// identical to a star tree — no truncation can occur.
func TestMinsupOneHasNoPools(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 100, D: 3, C: 10, S: 0, Seed: 79})
	tr := buildBase(tb, 1, false, core.MeasureNone, nil)
	var walk func(n *saNode)
	walk = func(n *saNode) {
		if n.isPool {
			t.Fatal("pool found at min_sup 1")
		}
		for _, s := range n.sonSlice() {
			walk(s)
		}
	}
	walk(tr.root)
}

func TestDependenceData(t *testing.T) {
	cards := []int{5, 5, 5, 5, 5}
	rules := gen.RulesForDependence(2, cards, 81)
	tb := gen.MustSynthetic(gen.Config{T: 300, Cards: cards, S: 0.5, Seed: 82, Rules: rules})
	for _, minsup := range []int64{1, 4, 16} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d:\n%s", minsup, diff)
		}
	}
}

func TestSingleDimension(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 100, D: 1, C: 5, S: 1, Seed: 50})
	for _, minsup := range []int64{1, 10} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d:\n%s", minsup, diff)
		}
	}
}

func TestErrors(t *testing.T) {
	tb := paperTable(t)
	var c sink.Collector
	if err := Run(tb, Config{MinSup: 0}, &c); err == nil {
		t.Fatal("min_sup 0 must error")
	}
	bad := table.New(1, 2)
	bad.Cols[0][0] = 9
	if err := Run(bad, Config{MinSup: 1}, &c); err == nil {
		t.Fatal("invalid table must error")
	}
}

func TestMinsupAboveTotal(t *testing.T) {
	got := run(t, paperTable(t), Config{MinSup: 4, Closed: true})
	if len(got.Cells) != 0 {
		t.Fatalf("cells above T:\n%s", sink.FormatCells(got.Cells))
	}
}

// TestAgreesWithDuplicates: duplicate-heavy data exercises full-depth leaf
// groups.
func TestAgreesWithDuplicates(t *testing.T) {
	rows := [][]core.Value{}
	for i := 0; i < 40; i++ {
		rows = append(rows, []core.Value{core.Value(i % 2), core.Value(i % 4), 2})
	}
	tb, err := table.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []int64{1, 5, 11} {
		want, err := refcube.Closed(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, Config{MinSup: minsup, Closed: true})
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d:\n%s", minsup, diff)
		}
	}
}
