package refresh

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/engine"
	"ccubing/internal/gen"
	"ccubing/internal/sink"
	"ccubing/internal/table"

	_ "ccubing/internal/qcdfs" // closed-mode engine for the tests
)

// testEngine resolves the registered QC-DFS engine.
func testEngine(t testing.TB) engine.Engine {
	t.Helper()
	eng, ok := engine.Lookup("QC-DFS")
	if !ok {
		t.Fatal("QC-DFS engine not registered")
	}
	return eng
}

// buildStoreFor computes the closed iceberg cube of tbl and freezes it.
func buildStoreFor(t testing.TB, tbl *table.Table, minsup int64) *cubestore.Store {
	t.Helper()
	eng := testEngine(t)
	col := &sink.AuxCollector{}
	if err := eng.Run(tbl, engine.Config{MinSup: minsup, Closed: true}, col); err != nil {
		t.Fatal(err)
	}
	s, err := buildStore(tbl.NumDims(), false, col.Cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testManager(t testing.TB, tbl *table.Table, minsup int64, cfg Config) *Manager {
	t.Helper()
	cfg.Eng = testEngine(t)
	cfg.ECfg = engine.Config{MinSup: minsup, Closed: true}
	m, err := NewManager(tbl, buildStoreFor(t, tbl, minsup), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomTable(t testing.TB, n int, cards []int, seed int64) *table.Table {
	t.Helper()
	tbl, err := gen.Synthetic(gen.Config{T: n, Cards: cards, S: 0.9, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// randomDelta draws delta rows whose leading-dimension values come from a
// small touched set (occasionally a brand-new partition value).
func randomDelta(rng *rand.Rand, cards []int, n int) [][]core.Value {
	touched := []core.Value{core.Value(rng.Intn(cards[0]))}
	if rng.Intn(2) == 0 {
		touched = append(touched, core.Value(cards[0])) // new partition
	}
	rows := make([][]core.Value, n)
	for i := range rows {
		row := make([]core.Value, len(cards))
		row[0] = touched[rng.Intn(len(touched))]
		for d := 1; d < len(cards); d++ {
			row[d] = core.Value(rng.Intn(cards[d]))
		}
		rows[i] = row
	}
	return rows
}

func snapshotBytes(t testing.TB, s *cubestore.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFlushMatchesRebuild is the package-level acceptance criterion: over
// randomized relations and deltas, at minsup 1 and on iceberg cubes, the
// refreshed store is byte-identical to one materialized from scratch over
// the grown relation.
func TestFlushMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, minsup := range []int64{1, 3} {
		for _, workers := range []int{1, 4} {
			for trial := 0; trial < 6; trial++ {
				cards := []int{5 + rng.Intn(4), 5, 4, 3}
				base := randomTable(t, 250+rng.Intn(250), cards, int64(trial)+17*minsup)
				m := testManager(t, base, minsup, Config{Workers: workers})
				delta := randomDelta(rng, cards, 20+rng.Intn(40))
				if _, _, err := m.Append(delta, nil); err != nil {
					t.Fatal(err)
				}
				st, err := m.Flush()
				if err != nil {
					t.Fatal(err)
				}
				if st.Generation != 1 || st.Appended != len(delta) {
					t.Fatalf("stats = %+v, want generation 1 appending %d", st, len(delta))
				}
				if st.PartitionsRecomputed >= st.PartitionsTotal {
					t.Fatalf("recomputed %d of %d partitions: delta was not partition-scoped",
						st.PartitionsRecomputed, st.PartitionsTotal)
				}

				full := appendRows(base, flatten(delta), nil, nil)
				want := buildStoreFor(t, full, minsup)
				got := m.Snapshot().Store
				if !bytes.Equal(snapshotBytes(t, got), snapshotBytes(t, want)) {
					t.Fatalf("minsup=%d workers=%d trial=%d: refreshed store differs from rebuild (%d vs %d cells)",
						minsup, workers, trial, got.NumCells(), want.NumCells())
				}
				if m.Snapshot().Rows != int64(full.NumTuples()) {
					t.Fatalf("snapshot rows = %d, want %d", m.Snapshot().Rows, full.NumTuples())
				}
			}
		}
	}
}

func flatten(rows [][]core.Value) []core.Value {
	var out []core.Value
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

// TestFlushEmptyDelta pins the no-op contract: same snapshot, same
// generation.
func TestFlushEmptyDelta(t *testing.T) {
	base := randomTable(t, 200, []int{5, 4, 3}, 3)
	m := testManager(t, base, 1, Config{})
	before := m.Snapshot()
	st, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 0 || st.Appended != 0 {
		t.Fatalf("no-op stats = %+v", st)
	}
	if m.Snapshot() != before {
		t.Fatal("no-op flush must not publish a new snapshot")
	}
}

// TestRowThresholdTrigger checks the synchronous row-count trigger: the
// append crossing the threshold refreshes before returning.
func TestRowThresholdTrigger(t *testing.T) {
	base := randomTable(t, 200, []int{5, 4, 3}, 5)
	m := testManager(t, base, 1, Config{})
	if err := m.AutoRefresh(10, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if _, flushed, err := m.Append(randomDelta(rng, []int{5, 4, 3}, 6), nil); err != nil || flushed {
		t.Fatalf("below threshold: flushed=%v err=%v", flushed, err)
	}
	if m.Snapshot().Generation != 0 {
		t.Fatal("refresh fired below the threshold")
	}
	if _, flushed, err := m.Append(randomDelta(rng, []int{5, 4, 3}, 6), nil); err != nil || !flushed {
		t.Fatalf("at threshold: flushed=%v err=%v", flushed, err)
	}
	if g := m.Snapshot().Generation; g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	if m.Backlog() != 0 {
		t.Fatalf("backlog = %d after refresh", m.Backlog())
	}
}

// TestTimerTrigger checks the background interval trigger.
func TestTimerTrigger(t *testing.T) {
	base := randomTable(t, 150, []int{4, 4, 3}, 11)
	m := testManager(t, base, 1, Config{})
	rng := rand.New(rand.NewSource(13))
	if _, _, err := m.Append(randomDelta(rng, []int{4, 4, 3}, 8), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AutoRefresh(0, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	deadline := time.Now().Add(5 * time.Second)
	for m.Snapshot().Generation == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer refresh never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.Backlog() != 0 {
		t.Fatalf("backlog = %d after timer refresh", m.Backlog())
	}
}

// TestWALReplay checks pending appends survive a restart: a manager with a
// WAL is closed before flushing; a fresh manager over the same base replays
// the delta and its refresh matches a from-scratch rebuild.
func TestWALReplay(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "delta.wal")
	cards := []int{5, 4, 3}
	base := randomTable(t, 200, cards, 21)
	rng := rand.New(rand.NewSource(23))
	delta := randomDelta(rng, cards, 25)

	m1 := testManager(t, base, 1, Config{WAL: wal})
	if _, _, err := m1.Append(delta, nil); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := testManager(t, base, 1, Config{WAL: wal})
	defer m2.Close()
	if got := m2.Backlog(); got != len(delta) {
		t.Fatalf("replayed backlog = %d, want %d", got, len(delta))
	}
	if _, err := m2.Flush(); err != nil {
		t.Fatal(err)
	}
	full := appendRows(base, flatten(delta), nil, nil)
	want := buildStoreFor(t, full, 1)
	if !bytes.Equal(snapshotBytes(t, m2.Snapshot().Store), snapshotBytes(t, want)) {
		t.Fatal("replayed refresh differs from rebuild")
	}
	// The WAL is drained once the delta is folded in.
	m3 := testManager(t, full, 1, Config{WAL: wal})
	defer m3.Close()
	if got := m3.Backlog(); got != 0 {
		t.Fatalf("backlog after drain = %d, want 0", got)
	}
}

// TestAppendValidation pins the append error contract.
func TestAppendValidation(t *testing.T) {
	base := randomTable(t, 100, []int{4, 3}, 31)
	m := testManager(t, base, 1, Config{})
	if _, _, err := m.Append([][]core.Value{{1}}, nil); err == nil {
		t.Fatal("wrong arity must fail")
	}
	if _, _, err := m.Append([][]core.Value{{-1, 0}}, nil); err == nil {
		t.Fatal("negative value must fail")
	}
	if _, _, err := m.Append([][]core.Value{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("aux without a measure column must fail")
	}
	if _, _, err := m.AppendLabeled([][]string{{"a", "b"}}, nil); err == nil {
		t.Fatal("labeled append on a coded relation must fail")
	}
	if m.Backlog() != 0 {
		t.Fatalf("failed appends left %d rows buffered", m.Backlog())
	}

	// A value beyond the cardinality growth bound is rejected — a hostile
	// near-MaxInt32 value must not force cardinality-sized allocations.
	ms := testManager(t, base, 1, Config{CardSlack: 8})
	if _, _, err := ms.Append([][]core.Value{{4 + 8, 0}}, nil); err == nil {
		t.Fatal("value beyond card+slack must fail")
	}
	if _, _, err := ms.Append([][]core.Value{{4 + 7, 0}}, nil); err != nil {
		t.Fatalf("value within the slack must append: %v", err)
	}
}

// TestAppendLabeledValidatesBeforeCoding pins the phantom-label guard: a
// batch rejected for arity must not grow the staging dictionaries.
func TestAppendLabeledValidatesBeforeCoding(t *testing.T) {
	tbl, err := gen.Synthetic(gen.Config{T: 50, Cards: []int{3, 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dicts := []*table.Dict{table.DictFromNames([]string{"a0", "a1", "a2"}), table.DictFromNames([]string{"b0", "b1", "b2"})}
	eng := testEngine(t)
	m, err := NewManager(tbl, buildStoreFor(t, tbl, 1), dicts, Config{
		Eng: eng, ECfg: engine.Config{MinSup: 1, Closed: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AppendLabeled([][]string{{"new-a", "b0"}, {"short"}}, nil); err == nil {
		t.Fatal("ragged batch must fail")
	}
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	if got := m.dicts[0].Len(); got != 3 {
		t.Fatalf("rejected batch grew dimension 0's dictionary to %d labels", got)
	}
}

// TestSequentialRefreshes folds several deltas one refresh at a time and
// compares the final store to a single from-scratch rebuild.
func TestSequentialRefreshes(t *testing.T) {
	cards := []int{6, 5, 4}
	base := randomTable(t, 300, cards, 37)
	m := testManager(t, base, 2, Config{Workers: 2})
	rng := rand.New(rand.NewSource(39))
	full := base
	for k := 0; k < 4; k++ {
		delta := randomDelta(rng, cards, 15)
		if _, _, err := m.Append(delta, nil); err != nil {
			t.Fatal(err)
		}
		st, err := m.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if st.Generation != uint64(k+1) {
			t.Fatalf("generation = %d after %d refreshes", st.Generation, k+1)
		}
		full = appendRows(full, flatten(delta), nil, nil)
	}
	want := buildStoreFor(t, full, 2)
	if !bytes.Equal(snapshotBytes(t, m.Snapshot().Store), snapshotBytes(t, want)) {
		t.Fatal("chained refreshes diverge from rebuild")
	}
	met := m.Metrics()
	if met.Refreshes != 4 || met.Generation != 4 || met.Backlog != 0 {
		t.Fatalf("metrics = %+v", met)
	}
}
