package refresh

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/engine"
	"ccubing/internal/gen"
	"ccubing/internal/table"
)

// tableRows extracts a table's tuples as row slices (the test-side multiset
// model the fuzz keeps in sync with the manager).
func tableRows(t *table.Table) [][]core.Value {
	rows := make([][]core.Value, t.NumTuples())
	for tid := range rows {
		rows[tid] = t.Row(core.TID(tid), nil)
	}
	return rows
}

func tableFromRows(t *testing.T, rows [][]core.Value, minCards []int) *table.Table {
	t.Helper()
	tbl, err := table.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for d, c := range minCards {
		if tbl.Cards[d] < c {
			tbl.Cards[d] = c
		}
	}
	return tbl
}

// TestFlushDeleteUpdateMatchesRebuild is the tentpole acceptance criterion
// at the manager layer: after a random interleaving of appends, deletes and
// updates, the refreshed store is byte-identical to a from-scratch
// computation over the edited relation — at minsup 1 and on iceberg cubes.
func TestFlushDeleteUpdateMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cards := []int{6, 5, 4}
	for _, minsup := range []int64{1, 3} {
		for _, workers := range []int{1, 4} {
			for trial := 0; trial < 6; trial++ {
				base := randomTable(t, 250+rng.Intn(200), cards, int64(trial)+31*minsup)
				m := testManager(t, base, minsup, Config{Workers: workers})
				live := tableRows(base) // the expected multiset, kept in sync

				randomRow := func() []core.Value {
					row := make([]core.Value, len(cards))
					for d := range cards {
						row[d] = core.Value(rng.Intn(cards[d]))
					}
					return row
				}
				nOps := 3 + rng.Intn(4)
				for op := 0; op < nOps; op++ {
					switch rng.Intn(3) {
					case 0: // append batch
						delta := randomDelta(rng, cards, 5+rng.Intn(15))
						if _, _, err := m.Append(delta, nil); err != nil {
							t.Fatal(err)
						}
						live = append(live, delta...)
					case 1: // delete batch: existing tuples, multiset semantics
						if len(live) == 0 {
							continue
						}
						k := 1 + rng.Intn(min(8, len(live)))
						dels := make([][]core.Value, 0, k)
						for j := 0; j < k && len(live) > 0; j++ {
							i := rng.Intn(len(live))
							dels = append(dels, live[i])
							live = append(live[:i], live[i+1:]...)
						}
						if _, _, err := m.Delete(dels, nil); err != nil {
							t.Fatal(err)
						}
					case 2: // update batch
						if len(live) == 0 {
							continue
						}
						k := 1 + rng.Intn(min(5, len(live)))
						olds := make([][]core.Value, 0, k)
						news := make([][]core.Value, 0, k)
						for j := 0; j < k && len(live) > 0; j++ {
							i := rng.Intn(len(live))
							olds = append(olds, live[i])
							live = append(live[:i], live[i+1:]...)
							nr := randomRow()
							news = append(news, nr)
							live = append(live, nr)
						}
						if _, _, err := m.Update(olds, news, nil, nil); err != nil {
							t.Fatal(err)
						}
					}
				}
				st, err := m.Flush()
				if err != nil {
					t.Fatal(err)
				}
				if st.Appended+st.Deleted == 0 {
					continue
				}
				want := buildStoreFor(t, tableFromRows(t, live, cards), minsup)
				got := m.Snapshot().Store
				if !bytes.Equal(snapshotBytes(t, got), snapshotBytes(t, want)) {
					t.Fatalf("minsup=%d workers=%d trial=%d: edited store differs from rebuild (%d vs %d cells)",
						minsup, workers, trial, got.NumCells(), want.NumCells())
				}
				if m.Snapshot().Rows != int64(len(live)) {
					t.Fatalf("snapshot rows = %d, want %d", m.Snapshot().Rows, len(live))
				}
			}
		}
	}
}

// TestFlushPartitionShrinksToEmpty deletes every tuple of one partition: its
// closed cells must vanish from the merged store, matching a rebuild of the
// smaller relation.
func TestFlushPartitionShrinksToEmpty(t *testing.T) {
	cards := []int{5, 4, 3}
	base := randomTable(t, 300, cards, 51)
	m := testManager(t, base, 1, Config{Workers: 2})

	victim := base.Cols[0][0]
	var dels [][]core.Value
	var live [][]core.Value
	for _, row := range tableRows(base) {
		if row[0] == victim {
			dels = append(dels, row)
		} else {
			live = append(live, row)
		}
	}
	if len(dels) == 0 || len(live) == 0 {
		t.Fatal("bad fixture: partition empty or total")
	}
	if _, _, err := m.Delete(dels, nil); err != nil {
		t.Fatal(err)
	}
	st, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != len(dels) || st.Appended != 0 {
		t.Fatalf("stats = %+v, want %d deleted", st, len(dels))
	}
	got := m.Snapshot().Store
	want := buildStoreFor(t, tableFromRows(t, live, cards), 1)
	if !bytes.Equal(snapshotBytes(t, got), snapshotBytes(t, want)) {
		t.Fatal("partition-shrinks-to-empty store differs from rebuild")
	}
	// No cell fixes the vanished partition value anymore.
	probe := []core.Value{victim, core.Star, core.Star}
	if _, ok := got.Query(probe); ok {
		t.Fatalf("partition %d still answers after all its tuples were deleted", victim)
	}
}

// TestFlushDeleteEverything empties the relation entirely: the published
// store has zero cells, and the cube comes back when tuples are appended
// again.
func TestFlushDeleteEverything(t *testing.T) {
	cards := []int{4, 3, 3}
	base := randomTable(t, 120, cards, 53)
	m := testManager(t, base, 1, Config{})
	if _, _, err := m.Delete(tableRows(base), nil); err != nil {
		t.Fatal(err)
	}
	st, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != base.NumTuples() {
		t.Fatalf("deleted %d, want %d", st.Deleted, base.NumTuples())
	}
	if got := m.Snapshot().Store.NumCells(); got != 0 {
		t.Fatalf("emptied relation serves %d cells, want 0", got)
	}
	if m.Snapshot().Rows != 0 {
		t.Fatalf("rows = %d, want 0", m.Snapshot().Rows)
	}

	// The cube is not dead: appends to the empty relation refresh normally.
	delta := [][]core.Value{{1, 2, 1}, {1, 2, 1}, {3, 0, 2}}
	if _, _, err := m.Append(delta, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	want := buildStoreFor(t, tableFromRows(t, delta, cards), 1)
	if !bytes.Equal(snapshotBytes(t, m.Snapshot().Store), snapshotBytes(t, want)) {
		t.Fatal("refresh from an emptied relation differs from rebuild")
	}
}

// TestDeleteValidation pins the tombstone error contract: deletes must name
// tuples present in base + pending delta, and a rejected batch buffers
// nothing.
func TestDeleteValidation(t *testing.T) {
	rows := [][]core.Value{{0, 0}, {0, 0}, {1, 2}}
	base := tableFromRows(t, rows, nil)
	m := testManager(t, base, 1, Config{})

	if _, _, err := m.Delete([][]core.Value{{3, 3}}, nil); err == nil || !strings.Contains(err.Error(), "not present") {
		t.Fatalf("deleting an absent tuple: err = %v", err)
	}
	// Multiplicity: two copies of (0,0) exist; a third tombstone overdraws.
	if _, _, err := m.Delete([][]core.Value{{0, 0}, {0, 0}, {0, 0}}, nil); err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("overdrawn multiplicity: err = %v", err)
	}
	if m.Backlog() != 0 {
		t.Fatalf("rejected batches left %d rows buffered", m.Backlog())
	}
	// A pending append satisfies a later tombstone...
	if _, _, err := m.Append([][]core.Value{{2, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Delete([][]core.Value{{2, 1}}, nil); err != nil {
		t.Fatalf("deleting a pending append: %v", err)
	}
	// ...and a pending tombstone blocks a second delete of the same tuple.
	if _, _, err := m.Delete([][]core.Value{{1, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Delete([][]core.Value{{1, 2}}, nil); err == nil {
		t.Fatal("second tombstone for a single occurrence must fail")
	}
	// The append+delete pair nets out; flushing the remainder matches a
	// rebuild of rows minus (1,2).
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	want := buildStoreFor(t, tableFromRows(t, [][]core.Value{{0, 0}, {0, 0}}, base.Cards), 1)
	if !bytes.Equal(snapshotBytes(t, m.Snapshot().Store), snapshotBytes(t, want)) {
		t.Fatal("cancelled append+delete store differs from rebuild")
	}

	// Update structural validation.
	if _, _, err := m.Update([][]core.Value{{0, 0}}, nil, nil, nil); err == nil {
		t.Fatal("mismatched update arities must fail")
	}
	if _, _, err := m.Update([][]core.Value{{7, 7}}, [][]core.Value{{1, 1}}, nil, nil); err == nil {
		t.Fatal("updating an absent tuple must fail")
	}
	// An update chain inside one batch: (0,0) -> (3,3), then (3,3) -> (1,1).
	if _, _, err := m.Update([][]core.Value{{0, 0}, {3, 3}}, [][]core.Value{{3, 3}, {1, 1}}, nil, nil); err != nil {
		t.Fatalf("sequential update chain: %v", err)
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	want = buildStoreFor(t, tableFromRows(t, [][]core.Value{{0, 0}, {1, 1}}, base.Cards), 1)
	if !bytes.Equal(snapshotBytes(t, m.Snapshot().Store), snapshotBytes(t, want)) {
		t.Fatal("update-chain store differs from rebuild")
	}
}

// TestDeleteLabeledValidation pins the labeled tombstone contract: unknown
// labels are "no such tuple" errors and never grow the staging dictionaries;
// a rejected UpdateLabeled batch leaves no phantom labels either.
func TestDeleteLabeledValidation(t *testing.T) {
	tbl, err := gen.Synthetic(gen.Config{T: 60, Cards: []int{3, 3}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dicts := []*table.Dict{
		table.DictFromNames([]string{"a0", "a1", "a2"}),
		table.DictFromNames([]string{"b0", "b1", "b2"}),
	}
	m, err := NewManager(tbl, buildStoreFor(t, tbl, 1), dicts, Config{
		Eng: testEngine(t), ECfg: engine.Config{MinSup: 1, Closed: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.DeleteLabeled([][]string{{"ghost", "b0"}}, nil); err == nil || !strings.Contains(err.Error(), "no such tuple") {
		t.Fatalf("unknown label delete: err = %v", err)
	}
	// A failing UpdateLabeled batch must not stage its new labels: overdraw
	// (a0,b0) far beyond any possible multiplicity so the batch is rejected.
	before := m.dicts[0].Len()
	many := make([][]string, 100)
	news := make([][]string, 100)
	for i := range many {
		many[i] = []string{"a0", "b0"}
		news[i] = []string{"brand-new", "b0"}
	}
	if _, _, err := m.UpdateLabeled(many, news, nil, nil); err == nil {
		t.Fatal("overdrawn labeled update must fail")
	}
	m.appendMu.Lock()
	after := m.dicts[0].Len()
	m.appendMu.Unlock()
	if after != before {
		t.Fatalf("rejected UpdateLabeled grew dictionary from %d to %d labels", before, after)
	}
	if m.Backlog() != 0 {
		t.Fatalf("rejected batches left %d rows buffered", m.Backlog())
	}
}

// TestUpdateLabeledWALFailureNoPhantomLabels pins the commit ordering: when
// the WAL write fails, the batch is rejected AND its new labels must not
// have reached the staging dictionaries.
func TestUpdateLabeledWALFailureNoPhantomLabels(t *testing.T) {
	tbl, err := gen.Synthetic(gen.Config{T: 40, Cards: []int{3, 3}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dicts := []*table.Dict{
		table.DictFromNames([]string{"a0", "a1", "a2"}),
		table.DictFromNames([]string{"b0", "b1", "b2"}),
	}
	wal := filepath.Join(t.TempDir(), "fail.wal")
	m, err := NewManager(tbl, buildStoreFor(t, tbl, 1), dicts, Config{
		Eng: testEngine(t), ECfg: engine.Config{MinSup: 1, Closed: true}, WAL: wal,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a tuple that exists so availability passes and the failure comes
	// from the WAL write alone.
	old := []string{"a" + string('0'+byte(tbl.Cols[0][0])), "b" + string('0'+byte(tbl.Cols[1][0]))}
	m.appendMu.Lock()
	m.log.w.(*fileWAL).f.Close() // sabotage the descriptor; close() would nil it out
	m.appendMu.Unlock()
	if _, _, err := m.UpdateLabeled([][]string{old}, [][]string{{"phantom", "b0"}}, nil, nil); err == nil {
		t.Fatal("update over a broken WAL must fail")
	}
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	m.log.w = nil
	if got := m.dicts[0].Len(); got != 3 {
		t.Fatalf("failed WAL write staged phantom labels: dictionary has %d entries, want 3", got)
	}
	if m.log.rows() != 0 {
		t.Fatalf("failed WAL write left %d rows buffered", m.log.rows())
	}
}

// TestWALReplayWithTombstones checks pending deletes and updates survive a
// restart: a manager with a WAL is closed before flushing; a fresh manager
// over the same base replays them and its refresh matches a rebuild.
func TestWALReplayWithTombstones(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "delta.wal")
	cards := []int{5, 4, 3}
	base := randomTable(t, 200, cards, 61)
	live := tableRows(base)

	m1 := testManager(t, base, 1, Config{WAL: wal})
	appends := [][]core.Value{{1, 1, 1}, {2, 3, 2}}
	if _, _, err := m1.Append(appends, nil); err != nil {
		t.Fatal(err)
	}
	live = append(live, appends...)
	dels := [][]core.Value{live[0], live[3]}
	if _, _, err := m1.Delete(dels, nil); err != nil {
		t.Fatal(err)
	}
	live = append(live[1:3], live[4:]...)
	oldRow, newRow := live[5], []core.Value{0, 0, 2}
	if _, _, err := m1.Update([][]core.Value{oldRow}, [][]core.Value{newRow}, nil, nil); err != nil {
		t.Fatal(err)
	}
	live = append(append(live[:5], live[6:]...), newRow)
	wantBacklog := m1.Backlog()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := testManager(t, base, 1, Config{WAL: wal})
	defer m2.Close()
	if got := m2.Backlog(); got != wantBacklog {
		t.Fatalf("replayed backlog = %d, want %d", got, wantBacklog)
	}
	st, err := m2.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 3 || st.Appended != 3 {
		t.Fatalf("stats = %+v, want 3 appended, 3 deleted", st)
	}
	want := buildStoreFor(t, tableFromRows(t, live, cards), 1)
	if !bytes.Equal(snapshotBytes(t, m2.Snapshot().Store), snapshotBytes(t, want)) {
		t.Fatal("replayed tombstone refresh differs from rebuild")
	}
}

// TestMergeToleratesEmptyPartitionReplacement drives MergePartitions through
// the manager in the regime the tentpole names: a replaced partition with no
// fresh cells at all (every tuple deleted, iceberg pruning the rest).
func TestMergeToleratesEmptyPartitionReplacement(t *testing.T) {
	// Partition 0 holds a single tuple; minsup 2 means even before the
	// delete, no cell fixes partition 0. Deleting the tuple leaves the
	// partition both empty and iceberg-pruned.
	rows := [][]core.Value{
		{0, 1, 1},
		{1, 1, 1}, {1, 1, 1},
		{2, 0, 1}, {2, 0, 1}, {2, 2, 2},
	}
	base := tableFromRows(t, rows, nil)
	m := testManager(t, base, 2, Config{})
	if _, _, err := m.Delete([][]core.Value{{0, 1, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	want := buildStoreFor(t, tableFromRows(t, rows[1:], base.Cards), 2)
	if !bytes.Equal(snapshotBytes(t, m.Snapshot().Store), snapshotBytes(t, want)) {
		t.Fatal("empty-replacement merge differs from rebuild")
	}
}
