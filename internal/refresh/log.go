package refresh

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"ccubing/internal/core"
)

// Log is the write-ahead delta buffer of a refresh Manager: appended tuples
// accumulate in memory — and, when a WAL path is configured, in an on-disk
// log — until a refresh folds them into the relation. The WAL makes pending
// (not yet refreshed) appends survive a process restart: a new Manager over
// the same base relation replays them into the buffer.
//
// File format: "CCWAL\x00" magic, version byte, nd byte, hasAux byte, then
// one record per tuple — nd little-endian uint32 values, plus a float64 bit
// pattern when hasAux. A partial trailing record (a crash mid-append) is
// dropped on replay, the usual write-ahead-log recovery contract. A Log is
// not goroutine-safe; the Manager serializes access.
type deltaLog struct {
	nd     int
	hasAux bool
	vals   []core.Value // flattened, nd per row
	aux    []float64    // parallel to rows when hasAux
	f      *os.File
}

const walMagic = "CCWAL\x00"

// walVersion is the WAL file format version.
const walVersion = 1

func newDeltaLog(nd int, hasAux bool) *deltaLog {
	return &deltaLog{nd: nd, hasAux: hasAux}
}

// recordSize returns the byte size of one tuple record.
func (l *deltaLog) recordSize() int {
	n := 4 * l.nd
	if l.hasAux {
		n += 8
	}
	return n
}

// openWAL attaches an on-disk log at path, replaying any pending records
// into the in-memory buffer (dropping a partial trailing record), and leaves
// the file open for appends. It returns the number of replayed rows.
func (l *deltaLog) openWAL(path string) (int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("refresh: wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, fmt.Errorf("refresh: wal: %w", err)
	}
	l.f = f
	if info.Size() == 0 {
		if err := l.writeHeader(); err != nil {
			return 0, err
		}
		return 0, nil
	}
	head := make([]byte, len(walMagic)+3)
	if _, err := io.ReadFull(f, head); err != nil {
		return 0, fmt.Errorf("refresh: wal header: %w", err)
	}
	if string(head[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("refresh: wal: bad magic %q", head[:len(walMagic)])
	}
	if head[len(walMagic)] != walVersion {
		return 0, fmt.Errorf("refresh: wal: unsupported version %d (want %d)", head[len(walMagic)], walVersion)
	}
	if int(head[len(walMagic)+1]) != l.nd {
		return 0, fmt.Errorf("refresh: wal: %d dimensions, relation has %d", head[len(walMagic)+1], l.nd)
	}
	if (head[len(walMagic)+2] == 1) != l.hasAux {
		return 0, fmt.Errorf("refresh: wal: measure flag mismatch")
	}
	body, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("refresh: wal: %w", err)
	}
	rec := l.recordSize()
	n := len(body) / rec // partial tail (crash mid-append) is dropped
	for i := 0; i < n; i++ {
		off := i * rec
		for d := 0; d < l.nd; d++ {
			l.vals = append(l.vals, core.Value(binary.LittleEndian.Uint32(body[off+4*d:])))
		}
		if l.hasAux {
			l.aux = append(l.aux, math.Float64frombits(binary.LittleEndian.Uint64(body[off+4*l.nd:])))
		}
	}
	if len(body)%rec != 0 {
		// Truncate the torn record so subsequent appends extend a valid log.
		if err := f.Truncate(int64(len(head) + n*rec)); err != nil {
			return n, fmt.Errorf("refresh: wal: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			return n, fmt.Errorf("refresh: wal: %w", err)
		}
	}
	return n, nil
}

func (l *deltaLog) writeHeader() error {
	head := append([]byte(walMagic), walVersion, byte(l.nd), 0)
	if l.hasAux {
		head[len(head)-1] = 1
	}
	if _, err := l.f.Write(head); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	return nil
}

// append buffers flattened rows (len a multiple of nd), writing them through
// to the WAL first when one is attached.
func (l *deltaLog) append(rows []core.Value, aux []float64) error {
	if l.f != nil {
		buf := make([]byte, 0, len(rows)/l.nd*l.recordSize())
		for i := 0; i < len(rows)/l.nd; i++ {
			for d := 0; d < l.nd; d++ {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(rows[i*l.nd+d]))
			}
			if l.hasAux {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(aux[i]))
			}
		}
		if _, err := l.f.Write(buf); err != nil {
			return fmt.Errorf("refresh: wal: %w", err)
		}
	}
	l.vals = append(l.vals, rows...)
	if l.hasAux {
		l.aux = append(l.aux, aux...)
	}
	return nil
}

// rows returns the number of buffered tuples.
func (l *deltaLog) rows() int {
	if l.nd == 0 {
		return 0
	}
	return len(l.vals) / l.nd
}

// steal hands the buffered delta to a refresh and resets the buffer. The WAL
// file is untouched until rewrite confirms the refresh published.
func (l *deltaLog) steal() ([]core.Value, []float64) {
	vals, aux := l.vals, l.aux
	l.vals, l.aux = nil, nil
	return vals, aux
}

// unsteal puts a stolen batch back in front of the buffer after a failed
// refresh, so the delta is retried rather than lost.
func (l *deltaLog) unsteal(rows []core.Value, aux []float64) {
	l.vals = append(rows, l.vals...)
	if l.hasAux {
		l.aux = append(aux, l.aux...)
	}
}

// rewrite rewrites the WAL to hold exactly the current buffer (the rows that
// arrived during the refresh), dropping the folded prefix. Called after a
// refresh publishes.
func (l *deltaLog) rewrite() error {
	if l.f == nil {
		return nil
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	if err := l.writeHeader(); err != nil {
		return err
	}
	if len(l.vals) == 0 {
		return nil
	}
	vals, aux := l.vals, l.aux
	l.vals, l.aux = nil, nil
	return l.append(vals, aux)
}

func (l *deltaLog) close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
