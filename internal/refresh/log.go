package refresh

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"ccubing/internal/core"
)

// Log is the write-ahead delta buffer of a refresh Manager: pending delta
// operations — appended tuples, delete tombstones, and update pairs —
// accumulate in memory and, when a WAL path is configured, in an on-disk
// log, until a refresh folds them into the relation. The WAL makes pending
// (not yet refreshed) operations survive a process restart: a new Manager
// over the same base relation replays them into the buffer.
//
// File format v2: "CCWAL\x00" magic, version byte, nd byte, hasAux byte,
// then CRC-framed typed records. Each record is a type byte (recAppend,
// recDelete, recUpdate), a payload of one tuple (nd little-endian uint32
// values plus a float64 bit pattern when hasAux) — two tuples for recUpdate,
// old then new, so an update pair is crash-atomic — and a little-endian
// CRC32 (IEEE) of the type byte and payload. Replay stops at the first
// record that is truncated, fails its checksum, or carries an unknown type,
// and truncates the file there: the usual write-ahead-log recovery contract,
// extended from "drop the torn tail" to "drop the corrupt tail".
//
// Version-1 files (fixed-size append-only records, no CRC) still replay;
// the Manager rewrites them in the v2 format immediately after attach. A
// Log is not goroutine-safe; the Manager serializes access.
//
// The log does not touch storage directly: it frames, checksums and replays
// records over a WAL (raw byte storage), so the same recovery machinery
// runs against a local file (the default LocalBackend) or whatever a
// Backend supplies.
type deltaLog struct {
	nd     int
	hasAux bool
	vals   []core.Value // flattened, nd per row
	aux    []float64    // parallel to rows when hasAux
	kinds  []byte       // parallel op kinds, one of op*
	w      WAL
}

// In-memory op kinds, one per buffered row. An update is buffered as an
// adjacent (opUpdateOld, opUpdateNew) pair and journaled as one recUpdate
// record.
const (
	opAppend byte = iota // tuple joins the relation
	opDelete             // tombstone: one matching occurrence leaves
	opUpdateOld
	opUpdateNew
)

// WAL v2 record types.
const (
	recAppend byte = 1
	recDelete byte = 2
	recUpdate byte = 3
)

const walMagic = "CCWAL\x00"

// walVersion is the current WAL file format version.
const walVersion = 2

// walVersionV1 is the legacy append-only format, still replayable.
const walVersionV1 = 1

func newDeltaLog(nd int, hasAux bool) *deltaLog {
	return &deltaLog{nd: nd, hasAux: hasAux}
}

// tupleSize returns the byte size of one encoded tuple.
func (l *deltaLog) tupleSize() int {
	n := 4 * l.nd
	if l.hasAux {
		n += 8
	}
	return n
}

// openWAL attaches a local on-disk log at path; see attach.
func (l *deltaLog) openWAL(path string) (int, error) {
	w, err := OpenFileWAL(path)
	if err != nil {
		return 0, err
	}
	return l.attach(w)
}

// attach takes ownership of w, replaying any pending records into the
// in-memory buffer (dropping a torn or corrupt tail, which is truncated
// away so subsequent appends extend a valid log). It returns the number of
// replayed rows. A nil w leaves the log memory-only.
func (l *deltaLog) attach(w WAL) (int, error) {
	if w == nil {
		return 0, nil
	}
	l.w = w
	contents, err := w.Load()
	if err != nil {
		return 0, err
	}
	if len(contents) == 0 {
		return 0, l.writeHeader()
	}
	headLen := len(walMagic) + 3
	if len(contents) < headLen {
		return 0, fmt.Errorf("refresh: wal header: truncated (%d bytes)", len(contents))
	}
	head := contents[:headLen]
	if string(head[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("refresh: wal: bad magic %q", head[:len(walMagic)])
	}
	version := head[len(walMagic)]
	if version != walVersion && version != walVersionV1 {
		return 0, fmt.Errorf("refresh: wal: unsupported version %d (want %d or %d)", version, walVersionV1, walVersion)
	}
	if int(head[len(walMagic)+1]) != l.nd {
		return 0, fmt.Errorf("refresh: wal: %d dimensions, relation has %d", head[len(walMagic)+1], l.nd)
	}
	if (head[len(walMagic)+2] == 1) != l.hasAux {
		return 0, fmt.Errorf("refresh: wal: measure flag mismatch")
	}
	body := contents[headLen:]
	var good int // bytes of body holding fully valid records
	var rows int
	if version == walVersionV1 {
		good, rows = l.replayV1(body)
	} else {
		good, rows = l.replayV2(body)
	}
	if good < len(body) {
		// Truncate the torn/corrupt tail so subsequent appends extend a valid
		// log.
		if err := w.Truncate(int64(headLen + good)); err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// replayV1 decodes the legacy fixed-size append-only record stream,
// returning the length of the valid prefix and the rows buffered.
func (l *deltaLog) replayV1(body []byte) (good, rows int) {
	rec := l.tupleSize()
	n := len(body) / rec // partial tail (crash mid-append) is dropped
	for i := 0; i < n; i++ {
		l.decodeTuple(body[i*rec:])
		l.kinds = append(l.kinds, opAppend)
	}
	return n * rec, n
}

// replayV2 decodes the CRC-framed typed record stream, returning the length
// of the valid prefix and the rows buffered. Decoding stops at the first
// truncated record, checksum mismatch, or unknown record type.
func (l *deltaLog) replayV2(body []byte) (good, rows int) {
	ts := l.tupleSize()
	off := 0
	for off < len(body) {
		var payload int
		switch body[off] {
		case recAppend, recDelete:
			payload = ts
		case recUpdate:
			payload = 2 * ts
		default:
			return off, rows // unknown type: corrupt tail
		}
		end := off + 1 + payload + 4
		if end > len(body) {
			return off, rows // truncated record
		}
		sum := crc32.ChecksumIEEE(body[off : off+1+payload])
		if sum != binary.LittleEndian.Uint32(body[off+1+payload:]) {
			return off, rows // torn or corrupt record
		}
		switch body[off] {
		case recAppend:
			l.decodeTuple(body[off+1:])
			l.kinds = append(l.kinds, opAppend)
			rows++
		case recDelete:
			l.decodeTuple(body[off+1:])
			l.kinds = append(l.kinds, opDelete)
			rows++
		case recUpdate:
			l.decodeTuple(body[off+1:])
			l.decodeTuple(body[off+1+ts:])
			l.kinds = append(l.kinds, opUpdateOld, opUpdateNew)
			rows += 2
		}
		off = end
	}
	return off, rows
}

// decodeTuple appends one encoded tuple (values, then the aux bit pattern
// when hasAux) to the in-memory buffer.
func (l *deltaLog) decodeTuple(b []byte) {
	for d := 0; d < l.nd; d++ {
		l.vals = append(l.vals, core.Value(binary.LittleEndian.Uint32(b[4*d:])))
	}
	if l.hasAux {
		l.aux = append(l.aux, math.Float64frombits(binary.LittleEndian.Uint64(b[4*l.nd:])))
	}
}

// header encodes the WAL file header for this log's shape.
func (l *deltaLog) header() []byte {
	head := append([]byte(walMagic), walVersion, byte(l.nd), 0)
	if l.hasAux {
		head[len(head)-1] = 1
	}
	return head
}

func (l *deltaLog) writeHeader() error {
	return l.w.Reset(l.header())
}

// encodeTuple appends one tuple's payload bytes to buf.
func (l *deltaLog) encodeTuple(buf []byte, row int, vals []core.Value, aux []float64) []byte {
	for d := 0; d < l.nd; d++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(vals[row*l.nd+d]))
	}
	if l.hasAux {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(aux[row]))
	}
	return buf
}

// encodeRecords frames the given rows as v2 records: one recAppend or
// recDelete per row, with adjacent (opUpdateOld, opUpdateNew) pairs fused
// into a single crash-atomic recUpdate.
func (l *deltaLog) encodeRecords(rows []core.Value, aux []float64, kinds []byte) []byte {
	ts := l.tupleSize()
	buf := make([]byte, 0, len(kinds)*(1+ts+4))
	for i := 0; i < len(kinds); i++ {
		start := len(buf)
		switch kinds[i] {
		case opAppend:
			buf = append(buf, recAppend)
			buf = l.encodeTuple(buf, i, rows, aux)
		case opDelete:
			buf = append(buf, recDelete)
			buf = l.encodeTuple(buf, i, rows, aux)
		case opUpdateOld:
			buf = append(buf, recUpdate)
			buf = l.encodeTuple(buf, i, rows, aux)
			i++ // the paired opUpdateNew row
			buf = l.encodeTuple(buf, i, rows, aux)
		}
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	}
	return buf
}

// append buffers flattened rows (len a multiple of nd) with their op kinds
// (one per row; nil means all opAppend), writing them through to the WAL
// first when one is attached. An update pair must arrive as adjacent
// (opUpdateOld, opUpdateNew) rows.
func (l *deltaLog) append(rows []core.Value, aux []float64, kinds []byte) error {
	n := len(rows) / l.nd
	if kinds == nil {
		kinds = make([]byte, n)
	}
	if l.w != nil {
		start := time.Now()
		err := l.w.Append(l.encodeRecords(rows, aux, kinds))
		walAppendSeconds.Observe(time.Since(start))
		if err != nil {
			return err
		}
	}
	l.vals = append(l.vals, rows...)
	if l.hasAux {
		l.aux = append(l.aux, aux...)
	}
	l.kinds = append(l.kinds, kinds...)
	return nil
}

// rows returns the number of buffered delta rows (an update pair counts as
// two).
func (l *deltaLog) rows() int {
	return len(l.kinds)
}

// steal hands the buffered delta to a refresh and resets the buffer. The WAL
// file is untouched until rewrite confirms the refresh published.
func (l *deltaLog) steal() ([]core.Value, []float64, []byte) {
	vals, aux, kinds := l.vals, l.aux, l.kinds
	l.vals, l.aux, l.kinds = nil, nil, nil
	return vals, aux, kinds
}

// unsteal puts a stolen batch back in front of the buffer after a failed
// refresh, so the delta is retried rather than lost.
func (l *deltaLog) unsteal(rows []core.Value, aux []float64, kinds []byte) {
	l.vals = append(rows, l.vals...)
	if l.hasAux {
		l.aux = append(aux, l.aux...)
	}
	l.kinds = append(kinds, l.kinds...)
}

// rewrite rewrites the WAL to hold exactly the current buffer (the rows that
// arrived during the refresh), dropping the folded prefix. Called after a
// refresh publishes. The in-memory buffer is never touched: if the write
// fails, the buffered rows stay intact for the next refresh (and the error
// is surfaced so the operator knows the on-disk log lags the buffer).
func (l *deltaLog) rewrite() error {
	if l.w == nil {
		return nil
	}
	contents := l.header()
	if len(l.kinds) > 0 {
		contents = append(contents, l.encodeRecords(l.vals, l.aux, l.kinds)...)
	}
	start := time.Now()
	err := l.w.Reset(contents)
	walRewriteSeconds.Observe(time.Since(start))
	return err
}

// sync forces appended records to durable storage (graceful shutdown: the
// buffered delta must survive the process).
func (l *deltaLog) sync() error {
	if l.w == nil {
		return nil
	}
	start := time.Now()
	err := l.w.Sync()
	walSyncSeconds.Observe(time.Since(start))
	return err
}

func (l *deltaLog) close() error {
	if l.w == nil {
		return nil
	}
	err := l.w.Close()
	l.w = nil
	return err
}
