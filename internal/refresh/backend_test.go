package refresh

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccubing/internal/core"
)

// memWAL is an in-memory WAL: the simplest non-file backend, and the test
// double proving the delta log's replay / append / rewrite cycle never
// depends on *os.File semantics.
type memWAL struct {
	b      []byte
	syncs  int
	closed bool
	fail   error // when set, every mutation returns it
}

func (w *memWAL) Load() ([]byte, error) { return append([]byte(nil), w.b...), nil }

func (w *memWAL) Append(b []byte) error {
	if w.fail != nil {
		return w.fail
	}
	w.b = append(w.b, b...)
	return nil
}

func (w *memWAL) Reset(b []byte) error {
	if w.fail != nil {
		return w.fail
	}
	w.b = append(w.b[:0:0], b...)
	return nil
}

func (w *memWAL) Truncate(n int64) error {
	if w.fail != nil {
		return w.fail
	}
	w.b = w.b[:n]
	return nil
}

func (w *memWAL) Sync() error  { w.syncs++; return nil }
func (w *memWAL) Close() error { w.closed = true; return nil }

// memBackend pairs a memWAL with a recorder of published snapshots.
type memBackend struct {
	wal       *memWAL
	published []*Snapshot
	pubErr    error
}

func (b *memBackend) OpenWAL() (WAL, error) { return b.wal, nil }

func (b *memBackend) Publish(s *Snapshot) error {
	b.published = append(b.published, s)
	return b.pubErr
}

// TestMemoryBackendParity drives identical mutation sequences through a
// manager on the default file backend and one on the in-memory backend: the
// WAL bytes must be identical at every step, and a "crash" (new manager
// replaying the surviving bytes) must restore the same backlog and flush to
// a byte-identical store on both.
func TestMemoryBackendParity(t *testing.T) {
	tbl := randomTable(t, 120, []int{4, 3, 3}, 5)
	path := filepath.Join(t.TempDir(), "parity.wal")
	mem := &memBackend{wal: &memWAL{}}

	mFile := testManager(t, tbl, 1, Config{WAL: path})
	mMem := testManager(t, tbl, 1, Config{Backend: mem})

	rows := [][]core.Value{{0, 1, 2}, {1, 0, 0}, {0, 2, 1}}
	for _, m := range []*Manager{mFile, mMem} {
		if _, _, err := m.Append(rows, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Delete([][]core.Value{append([]core.Value(nil), tbl.Row(0, nil)...)}, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Update(
			[][]core.Value{{0, 1, 2}}, [][]core.Value{{1, 1, 2}}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	fileBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileBytes, mem.wal.b) {
		t.Fatalf("WAL bytes diverge: file %d bytes, memory %d bytes", len(fileBytes), len(mem.wal.b))
	}

	// Crash both: fresh managers over the same base replay the pending delta.
	mem2 := &memBackend{wal: &memWAL{b: append([]byte(nil), mem.wal.b...)}}
	rFile := testManager(t, tbl, 1, Config{WAL: path})
	rMem := testManager(t, tbl, 1, Config{Backend: mem2})
	if rFile.Backlog() != rMem.Backlog() || rMem.Backlog() == 0 {
		t.Fatalf("replayed backlog: file %d, memory %d", rFile.Backlog(), rMem.Backlog())
	}
	sf, err := rFile.Flush()
	if err != nil {
		t.Fatal(err)
	}
	sm, err := rMem.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if sf.Generation != sm.Generation {
		t.Fatalf("generations diverge: %d vs %d", sf.Generation, sm.Generation)
	}
	if !bytes.Equal(snapshotBytes(t, rFile.Snapshot().Store), snapshotBytes(t, rMem.Snapshot().Store)) {
		t.Fatal("flushed stores diverge between file and memory backends")
	}
	// The flush rewrote the memory WAL down to a bare header.
	if len(mem2.wal.b) != len(walMagic)+3 {
		t.Fatalf("memory WAL holds %d bytes after flush, want bare header", len(mem2.wal.b))
	}
	if err := rMem.Close(); err != nil {
		t.Fatal(err)
	}
	if mem2.wal.syncs == 0 || !mem2.wal.closed {
		t.Fatalf("Close must sync then close the WAL (syncs=%d closed=%v)", mem2.wal.syncs, mem2.wal.closed)
	}
	rFile.Close()
	mFile.Close()
	mMem.Close()
}

// TestBackendPublishHook pins the publication contract: every flush that
// folds rows hands the just-published snapshot to the backend, in
// generation order; a publish error is surfaced (return and Metrics) but
// the snapshot still serves.
func TestBackendPublishHook(t *testing.T) {
	tbl := randomTable(t, 100, []int{4, 3, 3}, 6)
	be := &memBackend{wal: &memWAL{}}
	m := testManager(t, tbl, 1, Config{Backend: be})
	defer m.Close()

	for i := 0; i < 2; i++ {
		if _, _, err := m.Append([][]core.Value{{core.Value(i), 1, 1}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// An empty flush publishes nothing.
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(be.published) != 2 {
		t.Fatalf("published %d snapshots, want 2", len(be.published))
	}
	for i, s := range be.published {
		if s.Generation != uint64(i+1) {
			t.Fatalf("publication %d carries generation %d", i, s.Generation)
		}
		if s.Store == nil || s.Rows == 0 {
			t.Fatalf("publication %d is incomplete: %+v", i, s)
		}
	}

	be.pubErr = errors.New("router unreachable")
	if _, _, err := m.Append([][]core.Value{{0, 0, 0}}, nil); err != nil {
		t.Fatal(err)
	}
	st, err := m.Flush()
	if err == nil || !strings.Contains(err.Error(), "router unreachable") {
		t.Fatalf("flush error = %v, want publish failure surfaced", err)
	}
	if st.Generation != 3 || m.Snapshot().Generation != 3 {
		t.Fatalf("snapshot not published despite publish error: stats gen %d, snap gen %d", st.Generation, m.Snapshot().Generation)
	}
	if got := m.Metrics().LastError; !strings.Contains(got, "router unreachable") {
		t.Fatalf("Metrics.LastError = %q, want publish failure", got)
	}
}

// TestWALAppendFailureSurfaces pins write-through honesty on the interface
// path: when the backend's WAL rejects an append, the mutation fails and
// nothing is buffered.
func TestWALAppendFailureSurfaces(t *testing.T) {
	tbl := randomTable(t, 80, []int{3, 3, 3}, 7)
	be := &memBackend{wal: &memWAL{}}
	m := testManager(t, tbl, 1, Config{Backend: be})
	defer m.Close()

	be.wal.fail = fmt.Errorf("disk full")
	if _, _, err := m.Append([][]core.Value{{0, 1, 1}}, nil); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("append over a failing WAL = %v, want disk full", err)
	}
	if m.Backlog() != 0 {
		t.Fatalf("failed append left %d rows buffered", m.Backlog())
	}
}
