package refresh

import (
	"fmt"
	"io"
	"os"
)

// Backend abstracts where a Manager's durable state lives: the write-ahead
// delta log it replays on startup, and where freshly published snapshots
// go. The Manager core is backend-agnostic — the same refresh machinery
// runs against local disk (the default), an in-memory test double, or a
// shard worker's transport that ships partition snapshots to a router.
type Backend interface {
	// OpenWAL opens the durable delta log, or returns (nil, nil) when the
	// backend keeps no log (pending deltas then live in memory only and die
	// with the process).
	OpenWAL() (WAL, error)
	// Publish is called after each refresh swaps in a new snapshot. The
	// snapshot is already serving when Publish runs; an error is surfaced to
	// the caller (and in Metrics.LastError) without unpublishing.
	Publish(*Snapshot) error
}

// WAL is the raw storage under the delta log: an append-only byte sequence
// with whole-log replace and prefix-truncate, enough for the log's replay /
// append / rewrite cycle. Record framing, checksums, and corrupt-tail
// recovery live in deltaLog, not here — a WAL only moves bytes.
//
// Implementations need not be goroutine-safe; the Manager serializes access
// under its append lock.
type WAL interface {
	// Load returns the entire current contents.
	Load() ([]byte, error)
	// Append appends b at the end.
	Append(b []byte) error
	// Reset replaces the entire contents with b.
	Reset(b []byte) error
	// Truncate drops everything past the first n bytes.
	Truncate(n int64) error
	// Sync forces written bytes to durable storage.
	Sync() error
	// Close releases the log; no calls may follow.
	Close() error
}

// LocalBackend is the default Backend: a WAL file on local disk (none when
// Path is empty) and no snapshot publication — serving reads the snapshot
// straight from the Manager's atomic pointer.
type LocalBackend struct {
	// Path names the WAL file; empty means no durable log.
	Path string
}

// OpenWAL implements Backend.
func (b LocalBackend) OpenWAL() (WAL, error) {
	if b.Path == "" {
		return nil, nil
	}
	return OpenFileWAL(b.Path)
}

// Publish implements Backend: local serving needs no publication step.
func (LocalBackend) Publish(*Snapshot) error { return nil }

// fileWAL is the local-disk WAL: one regular file, opened read-write and
// created on demand.
type fileWAL struct {
	f *os.File
}

// OpenFileWAL opens (creating if absent) the WAL file at path.
func OpenFileWAL(path string) (WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("refresh: wal: %w", err)
	}
	return &fileWAL{f: f}, nil
}

func (w *fileWAL) Load() ([]byte, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("refresh: wal: %w", err)
	}
	b, err := io.ReadAll(w.f)
	if err != nil {
		return nil, fmt.Errorf("refresh: wal: %w", err)
	}
	return b, nil
}

func (w *fileWAL) Append(b []byte) error {
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	return nil
}

func (w *fileWAL) Reset(b []byte) error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	return nil
}

func (w *fileWAL) Truncate(n int64) error {
	if err := w.f.Truncate(n); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	return nil
}

func (w *fileWAL) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("refresh: wal: %w", err)
	}
	return nil
}

func (w *fileWAL) Close() error { return w.f.Close() }
