package refresh

// Process-wide refresh instrumentation, recorded into obs.Default: every
// Manager in the process shares these series (one ccserve process serves one
// cube), and the /metrics handler exposes them alongside the serving-layer
// registries. Gauges with per-Manager identity (generation, backlog) are
// registered by the serving layer against its own cube instead.

import "ccubing/internal/obs"

var (
	walAppendSeconds = obs.Default.Histogram("ccubing_wal_append_seconds",
		"Latency of appending one encoded delta batch to the WAL (write, no fsync).")
	walSyncSeconds = obs.Default.Histogram("ccubing_wal_sync_seconds",
		"Latency of an explicit WAL fsync (shutdown and snapshot barriers).")
	walRewriteSeconds = obs.Default.Histogram("ccubing_wal_rewrite_seconds",
		"Latency of the post-refresh WAL rewrite that drops the folded prefix.")
	refreshSeconds = obs.Default.Histogram("ccubing_refresh_seconds",
		"Wall-clock duration of a refresh: delta fold, partition recompute, merge and publish.")
)
