// Package refresh keeps a served closed cube fresh as its relation mutates:
// appended tuples, delete tombstones, and update pairs buffer in a
// write-ahead delta log and, on trigger (row threshold, timer, or explicit
// flush), a refresh recomputes only the partitions of the leading
// (partition) dimension whose values appear in the delta, merges the
// rebuilt closed-cell groups with the untouched ones into a fresh
// cubestore.Store, and publishes the result with an atomic pointer swap —
// in-flight queries finish on the old store while new queries see the new
// one.
//
// Correctness rests on the partition invariant shared with internal/parallel
// and internal/partition (paper Sec. 6.3): a closed cell fixing the
// partition dimension aggregates tuples of exactly one partition, so cells
// of untouched partitions are byte-identical before and after the edit and
// can be retained; cells of touched partitions are recomputed from those
// partitions' (possibly smaller) tuple sets; and cells with a wildcard on
// the partition dimension — which any edit may change — are rebuilt from
// the projection cube plus the aggregation-based agreement check of
// parallel.ClosedSurvivors. The check is direction-agnostic: it knows
// nothing about whether the relation grew or shrank, so the same machinery
// serves appends, deletes, and updates, including partitions that shrink to
// empty (their cells simply vanish from the merge). The refreshed store is
// canonical: byte-identical to a from-scratch materialization of the edited
// relation.
package refresh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/engine"
	"ccubing/internal/parallel"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a Manager.
type Config struct {
	// Dim is the partition dimension; refreshes recompute only the partitions
	// (values of this dimension) the delta touches. Defaults to 0, the
	// leading dimension.
	Dim int
	// Eng and ECfg run the recomputation; ECfg.Closed must be set (the
	// serving store holds the closed cube).
	Eng  engine.Engine
	ECfg engine.Config
	// Workers bounds the recompute goroutines; values below 1 run
	// sequentially.
	Workers int
	// Shards bounds how many shards the touched partitions split into;
	// defaults to 4×Workers, capped by the number of touched partitions.
	Shards int
	// AttachAux, when set, fills the Aux of freshly recomputed cells from the
	// relation (the facade's complex-measure post-pass for engines without
	// native measures; native runs set ECfg.Measure instead and leave this
	// nil).
	AttachAux func(*table.Table, []core.Cell) error
	// Measure is the measure kind the store's aux values were aggregated with,
	// used to aggregate residual rows during partition-scoped recompute. It
	// matters only for stores carrying a residual and defaults to
	// ECfg.Measure, so native-measure runs need not set it; AttachAux-based
	// runs on measure-bearing stores must.
	Measure core.MeasureKind
	// Generation seeds the published snapshot's generation counter.
	Generation uint64
	// WAL, when non-empty, persists pending (unrefreshed) appends to this
	// file; a new Manager over the same base relation replays them. Rows a
	// refresh has folded in leave the WAL — durability of the refreshed
	// store is the snapshot's job (save one after refreshing), not the
	// log's. Ignored when Backend is set.
	WAL string
	// Backend supplies the durable delta log and receives published
	// snapshots. Nil defaults to LocalBackend{Path: WAL}: a WAL file on
	// local disk and no publication step.
	Backend Backend
	// CardSlack bounds how far a coded append may grow a dimension's domain
	// beyond the published cardinality (defaults to 4096 when zero). Without
	// a bound, one hostile row fixing a value near MaxInt32 would force
	// cardinality-sized allocations on refresh.
	CardSlack int
}

// defaultCardSlack is the Config.CardSlack default.
const defaultCardSlack = 4096

// Snapshot is one published serving state: an immutable store, the frozen
// dictionaries that decode it (nil for coded relations), and the metadata
// that identifies it. Readers obtain it from Manager.Snapshot with one
// atomic load; every field is immutable from then on.
type Snapshot struct {
	Store *cubestore.Store
	Dicts []*table.Dict
	// Generation counts published refreshes; it increases by exactly one per
	// refresh that folded at least one row.
	Generation uint64
	// Rows is the number of tuples of the relation this snapshot serves.
	Rows int64
}

// Stats describes one refresh.
type Stats struct {
	// Generation is the generation the refresh published (unchanged when the
	// delta was empty).
	Generation uint64
	// Appended is the number of delta rows added to the relation (an update
	// contributes its replacement tuple here).
	Appended int
	// Deleted is the number of tombstones folded in: tuples removed from the
	// relation (an update contributes its old tuple here).
	Deleted int
	// PartitionsRecomputed and PartitionsTotal count the touched and total
	// distinct partition-dimension values; their ratio is the work saved
	// versus a full rebuild.
	PartitionsRecomputed int
	PartitionsTotal      int
	// CellsRetained and CellsRebuilt split the published store's cells into
	// those copied from the previous store and those recomputed.
	CellsRetained int64
	CellsRebuilt  int64
	// Elapsed is the wall-clock refresh time.
	Elapsed time.Duration
}

// Metrics is the cumulative observability view served by /v1/stats.
type Metrics struct {
	Generation uint64
	Rows       int64
	Backlog    int
	Refreshes  int64
	Last       Stats
	LastError  string
}

// Manager owns the live-refresh state of one cube: the current relation, the
// delta log, and the published snapshot. Appends and refreshes may run
// concurrently with any number of snapshot readers; appends are serialized
// with each other, refreshes with each other. A delta arriving while a
// refresh is computing stays buffered for the next refresh.
//
// Lock order: a goroutine that needs both locks takes flushMu first
// (Fold/Flush do); appendMu is the innermost lock and nothing blocks under it.
//
//ccubing:lockorder flushMu < appendMu
type Manager struct {
	cfg     Config
	nd      int
	hasAux  bool    // the relation carries a measure column
	backend Backend // never nil; set once in NewManager

	appendMu sync.Mutex // guards log, dicts, cards, autoRows
	log      *deltaLog
	dicts    []*table.Dict // staging dictionaries, grown by labeled appends
	cards    []int         // published per-dimension cardinalities (append validation)
	autoRows int

	flushMu sync.Mutex // serializes refreshes and delete validation; guards base
	base    *table.Table
	// baseCounts is the lazily built tuple multiset of base (guarded by
	// flushMu, invalidated when a refresh replaces base): delete validation
	// checks tombstones against it plus the pending delta.
	baseCounts map[string]int

	snap atomic.Pointer[Snapshot]

	statsMu   sync.Mutex
	last      Stats
	refreshes int64
	lastErr   string

	timerMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewManager wraps a materialized store and its source relation. base is
// retained (appends never mutate it — refreshes copy); dicts, when the
// relation is labeled, become the published snapshot's frozen dictionaries
// and must not be mutated by the caller afterwards. When cfg.WAL names a
// file with pending appends, they are replayed into the delta log.
func NewManager(base *table.Table, store *cubestore.Store, dicts []*table.Dict, cfg Config) (*Manager, error) {
	if base == nil || store == nil {
		return nil, fmt.Errorf("refresh: nil relation or store")
	}
	if base.NumDims() != store.NumDims() {
		return nil, fmt.Errorf("refresh: relation has %d dimensions, store %d", base.NumDims(), store.NumDims())
	}
	if cfg.Eng == nil || !cfg.ECfg.Closed {
		return nil, fmt.Errorf("refresh: a closed-mode engine is required")
	}
	if cfg.Dim < 0 || cfg.Dim >= base.NumDims() {
		return nil, fmt.Errorf("refresh: partition dimension %d out of range", cfg.Dim)
	}
	if cfg.CardSlack <= 0 {
		cfg.CardSlack = defaultCardSlack
	}
	m := &Manager{
		cfg:    cfg,
		nd:     base.NumDims(),
		hasAux: base.Aux != nil,
		base:   base,
		cards:  append([]int(nil), base.Cards...),
	}
	m.log = newDeltaLog(m.nd, m.hasAux)
	m.backend = cfg.Backend
	if m.backend == nil {
		m.backend = LocalBackend{Path: cfg.WAL}
	}
	if dicts != nil {
		m.dicts = make([]*table.Dict, len(dicts))
		for d, dict := range dicts {
			m.dicts[d] = table.DictFromNames(dict.Names())
		}
	}
	w, err := m.backend.OpenWAL()
	if err != nil {
		return nil, err
	}
	if w != nil {
		if err := m.attach(w); err != nil {
			return nil, err
		}
	}
	m.snap.Store(&Snapshot{
		Store:      store,
		Dicts:      dicts,
		Generation: cfg.Generation,
		Rows:       int64(base.NumTuples()),
	})
	return m, nil
}

// Snapshot returns the current serving state with one atomic load.
func (m *Manager) Snapshot() *Snapshot { return m.snap.Load() }

// attach hands the opened write-ahead log to the delta log (replaying
// pending records), then persists any rows that were buffered before the
// log was attached. Caller must not hold appendMu.
func (m *Manager) attach(w WAL) error {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	if m.log.w != nil {
		return fmt.Errorf("refresh: wal already attached")
	}
	if _, err := m.log.attach(w); err != nil {
		return err
	}
	// Replayed labeled rows must decode with the dictionaries we have; codes
	// the staging dictionaries have never assigned would serve phantom
	// labels.
	if m.dicts != nil {
		for i := 0; i < m.log.rows(); i++ {
			for d := 0; d < m.nd; d++ {
				if v := m.log.vals[i*m.nd+d]; int(v) >= m.dicts[d].Len() {
					return fmt.Errorf("refresh: wal row %d: code %d unknown to dimension %d's dictionary (replay needs the original base relation)", i, v, d)
				}
			}
		}
	}
	// Rows appended before the WAL existed are in memory only; rewrite the
	// file so it holds the full pending delta.
	return m.log.rewrite()
}

// EnableWAL attaches a local-disk write-ahead log after construction (the
// facade's AutoRefresh path), replaying any pending rows it holds.
func (m *Manager) EnableWAL(path string) error {
	w, err := OpenFileWAL(path)
	if err != nil {
		return err
	}
	return m.attach(w)
}

// RowThreshold returns the configured auto-refresh row threshold (0 = off).
func (m *Manager) RowThreshold() int {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	return m.autoRows
}

// Backlog returns the number of buffered delta rows awaiting a refresh.
func (m *Manager) Backlog() int {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	return m.log.rows()
}

// Append buffers coded rows. For labeled relations every value must be a
// code the dictionaries know (append by label instead to introduce new
// ones); for coded relations values may exceed the published cardinality by
// at most CardSlack — new values grow the dimension's domain on refresh,
// the bound keeps a hostile value from forcing cardinality-sized
// allocations. aux carries one measure value per row iff the relation has a
// measure column. It returns the number of rows appended and whether the
// append triggered a synchronous refresh (the configured row threshold was
// reached).
func (m *Manager) Append(rows [][]core.Value, aux []float64) (int, bool, error) {
	if err := m.validateAux(len(rows), aux); err != nil {
		return 0, false, err
	}
	m.appendMu.Lock()
	flat := make([]core.Value, 0, len(rows)*m.nd)
	for i, row := range rows {
		if err := m.validateRow(i, row, false); err != nil {
			m.appendMu.Unlock()
			return 0, false, err
		}
		flat = append(flat, row...)
	}
	return m.appendLocked(flat, aux)
}

// AppendLabeled buffers labeled rows, dictionary-coding each field; unseen
// labels extend the staging dictionaries and are published with the next
// refresh. The whole batch is validated before any label is coded, so a
// rejected batch leaves no phantom labels behind.
func (m *Manager) AppendLabeled(rows [][]string, aux []float64) (int, bool, error) {
	if err := m.validateAux(len(rows), aux); err != nil {
		return 0, false, err
	}
	m.appendMu.Lock()
	if m.dicts == nil {
		m.appendMu.Unlock()
		return 0, false, fmt.Errorf("refresh: relation has no dictionaries; append coded values")
	}
	for i, row := range rows {
		if len(row) != m.nd {
			m.appendMu.Unlock()
			return 0, false, fmt.Errorf("refresh: row %d has %d fields, want %d", i, len(row), m.nd)
		}
	}
	flat := make([]core.Value, 0, len(rows)*m.nd)
	for _, row := range rows {
		for d, s := range row {
			flat = append(flat, m.dicts[d].Code(s))
		}
	}
	return m.appendLocked(flat, aux)
}

func (m *Manager) validateAux(rows int, aux []float64) error {
	if m.hasAux && len(aux) != rows {
		return fmt.Errorf("refresh: relation has a measure column; %d aux values for %d rows", len(aux), rows)
	}
	if !m.hasAux && aux != nil {
		return fmt.Errorf("refresh: relation has no measure column; aux values not accepted")
	}
	return nil
}

// appendLocked finishes an append: the caller holds appendMu, which is
// released here. The row-threshold trigger flushes synchronously, outside
// the append lock, so appends on other goroutines keep flowing into the next
// delta while the refresh computes.
//
//ccubing:releases appendMu
func (m *Manager) appendLocked(flat []core.Value, aux []float64) (int, bool, error) {
	n := len(flat) / m.nd
	if err := m.log.append(flat, aux, nil); err != nil {
		m.appendMu.Unlock()
		return 0, false, err
	}
	trigger := m.autoRows > 0 && m.log.rows() >= m.autoRows
	m.appendMu.Unlock()
	if !trigger {
		return n, false, nil
	}
	if _, err := m.Flush(); err != nil {
		return n, false, fmt.Errorf("refresh: threshold refresh: %w", err)
	}
	return n, true, nil
}

// rowKey packs one tuple into a multiset key. On measure relations the
// measure value participates: two tuples agreeing on every dimension but
// carrying different measures are distinct occurrences, and a tombstone
// names exactly which one leaves.
func rowKey(buf []byte, vals []core.Value, aux float64, hasAux bool) string {
	buf = buf[:0]
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	if hasAux {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(aux))
	}
	return string(buf)
}

// baseCountsLocked returns the tuple multiset of the base relation, building
// it on first use after each refresh. Caller holds flushMu.
func (m *Manager) baseCountsLocked() map[string]int {
	if m.baseCounts != nil {
		return m.baseCounts
	}
	counts := make(map[string]int, m.base.NumTuples())
	buf := make([]byte, 0, 4*m.nd+8)
	row := make([]core.Value, m.nd)
	for tid := 0; tid < m.base.NumTuples(); tid++ {
		var aux float64
		if m.hasAux {
			aux = m.base.Aux[tid]
		}
		counts[rowKey(buf, m.base.Row(core.TID(tid), row), aux, m.hasAux)]++
	}
	m.baseCounts = counts
	return counts
}

// deltaOp is one validated delta row awaiting enqueue: its flattened
// position is implicit in order; kind discriminates tombstones from adds.
type deltaOp struct {
	key  string
	kind byte
}

// checkAvailable verifies that every tombstone in ops (processed in order)
// targets a tuple present at that point: present in the base relation, plus
// the net effect of the already-buffered delta, plus earlier ops of this
// batch. Caller holds flushMu and appendMu. Returns the index of the first
// unsatisfiable tombstone, or -1.
func (m *Manager) checkAvailable(ops []deltaOp) int {
	base := m.baseCountsLocked()
	// Net effect of the pending log, restricted to the keys this batch
	// touches (the log is a bounded backlog; one linear scan).
	want := make(map[string]bool, len(ops))
	for _, op := range ops {
		if op.kind == opDelete || op.kind == opUpdateOld {
			want[op.key] = true
		}
	}
	net := make(map[string]int, len(want))
	buf := make([]byte, 0, 4*m.nd+8)
	for i := 0; i < m.log.rows(); i++ {
		var aux float64
		if m.hasAux {
			aux = m.log.aux[i]
		}
		k := rowKey(buf, m.log.vals[i*m.nd:(i+1)*m.nd], aux, m.hasAux)
		if !want[k] {
			continue
		}
		switch m.log.kinds[i] {
		case opAppend, opUpdateNew:
			net[k]++
		case opDelete, opUpdateOld:
			net[k]--
		}
	}
	for i, op := range ops {
		switch op.kind {
		case opAppend, opUpdateNew:
			if want[op.key] {
				net[op.key]++
			}
		case opDelete, opUpdateOld:
			if base[op.key]+net[op.key] <= 0 {
				return i
			}
			net[op.key]--
		}
	}
	return -1
}

// validateRow checks one coded row's shape and values against the append
// contract; tombstones skip the cardinality-growth bound (the tuple must
// already exist, so its values cannot grow a domain). Caller holds
// appendMu: the dictionaries and cardinalities it reads move under it.
func (m *Manager) validateRow(i int, row []core.Value, tombstone bool) error {
	if len(row) != m.nd {
		return fmt.Errorf("refresh: row %d has %d values, want %d", i, len(row), m.nd)
	}
	for d, v := range row {
		if v < 0 {
			return fmt.Errorf("refresh: row %d dimension %d: negative value %d", i, d, v)
		}
		if m.dicts != nil && int(v) >= m.dicts[d].Len() {
			if tombstone {
				return fmt.Errorf("refresh: row %d dimension %d: code %d unknown to the dictionary; no such tuple to delete", i, d, v)
			}
			return fmt.Errorf("refresh: row %d dimension %d: code %d unknown to the dictionary (append by label to add it)", i, d, v)
		}
		if m.dicts == nil && !tombstone && int64(v) >= int64(m.cards[d])+int64(m.cfg.CardSlack) {
			return fmt.Errorf("refresh: row %d dimension %d: value %d exceeds cardinality %d by more than the growth bound %d",
				i, d, v, m.cards[d], m.cfg.CardSlack)
		}
	}
	return nil
}

// tombstoneBatch is one resolved delete/update batch awaiting enqueue:
// parallel flat/aux/kinds (update pairs adjacent), plus an optional commit
// hook that runs — still under the locks — once availability validation
// passes (UpdateLabeled publishes its new labels there, so a rejected batch
// leaves no phantom labels).
type tombstoneBatch struct {
	flat   []core.Value
	aux    []float64
	kinds  []byte
	commit func()
}

// enqueueTombstones validates and buffers a batch that contains tombstones
// (deletes, or update pairs). It takes flushMu (delete validation reads the
// base relation) then appendMu, calls build to resolve the batch under both
// locks, checks every tombstone against base + pending delta, and appends to
// the log; the threshold-triggered refresh runs after both locks are
// released. Returns the number of delta rows buffered (an update pair counts
// as two).
func (m *Manager) enqueueTombstones(build func() (tombstoneBatch, error)) (int, bool, error) {
	m.flushMu.Lock()
	m.appendMu.Lock()
	batch, err := build()
	if err != nil {
		m.appendMu.Unlock()
		m.flushMu.Unlock()
		return 0, false, err
	}
	n := len(batch.kinds)
	ops := make([]deltaOp, n)
	buf := make([]byte, 0, 4*m.nd+8)
	for i := 0; i < n; i++ {
		var a float64
		if m.hasAux {
			a = batch.aux[i]
		}
		ops[i] = deltaOp{key: rowKey(buf, batch.flat[i*m.nd:(i+1)*m.nd], a, m.hasAux), kind: batch.kinds[i]}
	}
	if bad := m.checkAvailable(ops); bad >= 0 {
		m.appendMu.Unlock()
		m.flushMu.Unlock()
		return 0, false, fmt.Errorf("refresh: row %d: tuple %v not present in the relation plus the pending delta; nothing to delete",
			bad, batch.flat[bad*m.nd:(bad+1)*m.nd])
	}
	err = m.log.append(batch.flat, batch.aux, batch.kinds)
	if err == nil && batch.commit != nil {
		// Publish staged state (UpdateLabeled's new labels) only once the
		// batch is durably buffered — a failed WAL write must leave no
		// phantom labels.
		batch.commit()
	}
	trigger := err == nil && m.autoRows > 0 && m.log.rows() >= m.autoRows
	m.appendMu.Unlock()
	m.flushMu.Unlock()
	if err != nil {
		return 0, false, err
	}
	if !trigger {
		return n, false, nil
	}
	if _, err := m.Flush(); err != nil {
		return n, false, fmt.Errorf("refresh: threshold refresh: %w", err)
	}
	return n, true, nil
}

// Delete buffers tombstones for coded tuples: on the next refresh each row
// removes one matching occurrence from the relation (match is by the full
// tuple — and, on measure relations, the measure value, so aux is required
// there exactly as in Append). A tombstone for a tuple not present in the
// base relation plus the pending delta is rejected, and the whole batch with
// it. Returns the number of tombstones buffered and whether the call
// triggered a synchronous refresh.
func (m *Manager) Delete(rows [][]core.Value, aux []float64) (int, bool, error) {
	if err := m.validateAux(len(rows), aux); err != nil {
		return 0, false, err
	}
	return m.enqueueTombstones(func() (tombstoneBatch, error) {
		flat := make([]core.Value, 0, len(rows)*m.nd)
		for i, row := range rows {
			if err := m.validateRow(i, row, true); err != nil {
				return tombstoneBatch{}, err
			}
			flat = append(flat, row...)
		}
		kinds := make([]byte, len(rows))
		for i := range kinds {
			kinds[i] = opDelete
		}
		return tombstoneBatch{flat: flat, aux: aux, kinds: kinds}, nil
	})
}

// DeleteLabeled is Delete by labels. Every label must already be in the
// dictionaries — an unknown label names a tuple that was never in the
// relation, a clear miss rather than a new code.
func (m *Manager) DeleteLabeled(rows [][]string, aux []float64) (int, bool, error) {
	if err := m.validateAux(len(rows), aux); err != nil {
		return 0, false, err
	}
	return m.enqueueTombstones(func() (tombstoneBatch, error) {
		flat, err := m.codeTombstonesLocked(rows)
		if err != nil {
			return tombstoneBatch{}, err
		}
		kinds := make([]byte, len(rows))
		for i := range kinds {
			kinds[i] = opDelete
		}
		return tombstoneBatch{flat: flat, aux: aux, kinds: kinds}, nil
	})
}

// codeTombstonesLocked resolves labeled tombstone rows against the staging
// dictionaries without growing them. Caller holds appendMu.
func (m *Manager) codeTombstonesLocked(rows [][]string) ([]core.Value, error) {
	if m.dicts == nil {
		return nil, fmt.Errorf("refresh: relation has no dictionaries; delete coded values")
	}
	flat := make([]core.Value, 0, len(rows)*m.nd)
	for i, row := range rows {
		if len(row) != m.nd {
			return nil, fmt.Errorf("refresh: row %d has %d fields, want %d", i, len(row), m.nd)
		}
		for d, s := range row {
			code, ok := m.dicts[d].Lookup(s)
			if !ok {
				return nil, fmt.Errorf("refresh: row %d dimension %d: label %q never occurred; no such tuple to delete", i, d, s)
			}
			flat = append(flat, code)
		}
	}
	return flat, nil
}

// Update buffers coded update pairs: on the next refresh each old row's
// occurrence is removed and the paired new row added, atomically (a single
// crash-safe WAL record). Old rows follow the Delete contract (must be
// present), new rows the Append contract (may grow a coded dimension's
// domain within the slack). oldAux/newAux are required iff the relation has
// a measure column. Returns the number of update pairs buffered.
func (m *Manager) Update(oldRows, newRows [][]core.Value, oldAux, newAux []float64) (int, bool, error) {
	if len(oldRows) != len(newRows) {
		return 0, false, fmt.Errorf("refresh: update has %d old rows and %d new rows", len(oldRows), len(newRows))
	}
	if err := m.validateAux(len(oldRows), oldAux); err != nil {
		return 0, false, err
	}
	if err := m.validateAux(len(newRows), newAux); err != nil {
		return 0, false, err
	}
	n, trigger, err := m.enqueueTombstones(func() (tombstoneBatch, error) {
		batch := tombstoneBatch{
			flat:  make([]core.Value, 0, 2*len(oldRows)*m.nd),
			kinds: make([]byte, 0, 2*len(oldRows)),
		}
		if m.hasAux {
			batch.aux = make([]float64, 0, 2*len(oldRows))
		}
		for i := range oldRows {
			if err := m.validateRow(i, oldRows[i], true); err != nil {
				return tombstoneBatch{}, err
			}
			if err := m.validateRow(i, newRows[i], false); err != nil {
				return tombstoneBatch{}, err
			}
			batch.flat = append(batch.flat, oldRows[i]...)
			batch.flat = append(batch.flat, newRows[i]...)
			if m.hasAux {
				batch.aux = append(batch.aux, oldAux[i], newAux[i])
			}
			batch.kinds = append(batch.kinds, opUpdateOld, opUpdateNew)
		}
		return batch, nil
	})
	return n / 2, trigger, err
}

// UpdateLabeled is Update by labels: old rows must use labels the
// dictionaries already know (they name existing tuples); new rows may
// introduce labels, which extend the staging dictionaries only after the
// whole batch validates — a rejected batch leaves no phantom labels. A label
// introduced by one pair cannot be referenced by a later pair's old row in
// the same batch; split such chains across calls.
func (m *Manager) UpdateLabeled(oldRows, newRows [][]string, oldAux, newAux []float64) (int, bool, error) {
	if len(oldRows) != len(newRows) {
		return 0, false, fmt.Errorf("refresh: update has %d old rows and %d new rows", len(oldRows), len(newRows))
	}
	if err := m.validateAux(len(oldRows), oldAux); err != nil {
		return 0, false, err
	}
	if err := m.validateAux(len(newRows), newAux); err != nil {
		return 0, false, err
	}
	n, trigger, err := m.enqueueTombstones(func() (tombstoneBatch, error) {
		oldFlat, err := m.codeTombstonesLocked(oldRows)
		if err != nil {
			return tombstoneBatch{}, err
		}
		for i, row := range newRows {
			if len(row) != m.nd {
				return tombstoneBatch{}, fmt.Errorf("refresh: row %d has %d fields, want %d", i, len(row), m.nd)
			}
		}
		// Code new rows tentatively: unseen labels get the codes they WILL
		// receive (dictionaries grow densely in first-occurrence order), but
		// the dictionaries themselves only grow in the commit hook, after the
		// whole batch validates. Holding appendMu across tentative coding,
		// validation and commit keeps the assignment stable.
		fresh := make([]map[string]core.Value, m.nd)
		freshOrder := make([][]string, m.nd)
		newFlat := make([]core.Value, 0, len(newRows)*m.nd)
		for _, row := range newRows {
			for d, s := range row {
				code, ok := m.dicts[d].Lookup(s)
				if !ok {
					if fresh[d] == nil {
						fresh[d] = make(map[string]core.Value)
					}
					code, ok = fresh[d][s]
					if !ok {
						code = core.Value(m.dicts[d].Len() + len(freshOrder[d]))
						fresh[d][s] = code
						freshOrder[d] = append(freshOrder[d], s)
					}
				}
				newFlat = append(newFlat, code)
			}
		}
		batch := tombstoneBatch{
			flat:  make([]core.Value, 0, 2*len(oldRows)*m.nd),
			kinds: make([]byte, 0, 2*len(oldRows)),
			commit: func() {
				for d, labels := range freshOrder {
					for _, s := range labels {
						m.dicts[d].Code(s)
					}
				}
			},
		}
		if m.hasAux {
			batch.aux = make([]float64, 0, 2*len(oldRows))
		}
		for i := range oldRows {
			batch.flat = append(batch.flat, oldFlat[i*m.nd:(i+1)*m.nd]...)
			batch.flat = append(batch.flat, newFlat[i*m.nd:(i+1)*m.nd]...)
			if m.hasAux {
				batch.aux = append(batch.aux, oldAux[i], newAux[i])
			}
			batch.kinds = append(batch.kinds, opUpdateOld, opUpdateNew)
		}
		return batch, nil
	})
	return n / 2, trigger, err
}

// AutoRefresh configures the refresh triggers: rows > 0 flushes
// synchronously inside the append that reaches that backlog; interval > 0
// starts a background timer flushing on that period (stop it with Close).
// Either may be zero to disable that trigger.
func (m *Manager) AutoRefresh(rows int, interval time.Duration) error {
	if rows < 0 {
		return fmt.Errorf("refresh: negative row threshold %d", rows)
	}
	m.appendMu.Lock()
	m.autoRows = rows
	m.appendMu.Unlock()
	if interval <= 0 {
		return nil
	}
	m.timerMu.Lock()
	defer m.timerMu.Unlock()
	if m.stop != nil {
		return fmt.Errorf("refresh: timer already running")
	}
	stop := make(chan struct{})
	m.stop = stop
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := m.Flush(); err != nil {
					m.statsMu.Lock()
					m.lastErr = err.Error()
					m.statsMu.Unlock()
				}
			}
		}
	}()
	return nil
}

// Close stops the timer goroutine (flushing nothing), syncs any buffered
// WAL records to durable storage, and closes the WAL.
func (m *Manager) Close() error {
	m.timerMu.Lock()
	if m.stop != nil {
		close(m.stop)
		m.stop = nil
	}
	m.timerMu.Unlock()
	m.wg.Wait()
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	return errors.Join(m.log.sync(), m.log.close())
}

// Metrics returns the cumulative refresh counters.
func (m *Manager) Metrics() Metrics {
	s := m.Snapshot()
	backlog := m.Backlog()
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return Metrics{
		Generation: s.Generation,
		Rows:       s.Rows,
		Backlog:    backlog,
		Refreshes:  m.refreshes,
		Last:       m.last,
		LastError:  m.lastErr,
	}
}

// Flush folds the buffered delta — appends, tombstones, and update pairs —
// into the relation, recomputes the touched partitions and the wildcard
// slice, merges with the untouched cells, and publishes the new snapshot. An
// empty delta is a no-op that keeps the current generation. On error the
// delta is returned to the buffer for a later retry and the published
// snapshot is unchanged.
func (m *Manager) Flush() (Stats, error) {
	m.flushMu.Lock()
	defer m.flushMu.Unlock()
	start := time.Now()

	m.appendMu.Lock()
	rows, aux, kinds := m.log.steal()
	var frozen []*table.Dict
	if m.dicts != nil {
		frozen = make([]*table.Dict, len(m.dicts))
		for d, dict := range m.dicts {
			frozen[d] = table.DictFromNames(dict.Names())
		}
	}
	m.appendMu.Unlock()

	cur := m.snap.Load()
	n := len(rows) / m.nd
	if n == 0 {
		return Stats{Generation: cur.Generation}, nil
	}

	newBase, nAppended, nDeleted, err := applyDelta(m.base, rows, aux, kinds, frozen)
	if err == nil {
		dim := m.cfg.Dim
		affected := make(map[core.Value]bool)
		for i := 0; i < n; i++ {
			affected[rows[i*m.nd+dim]] = true
		}
		var newStore *cubestore.Store
		var rebuilt int64
		newStore, rebuilt, err = m.rebuild(cur.Store, newBase, affected)
		if err == nil {
			next := &Snapshot{
				Store:      newStore,
				Dicts:      frozen,
				Generation: cur.Generation + 1,
				Rows:       int64(newBase.NumTuples()),
			}
			m.snap.Store(next)
			m.base = newBase
			m.baseCounts = nil // delete validation rebuilds over the new base

			m.appendMu.Lock()
			werr := m.log.rewrite()
			copy(m.cards, newBase.Cards) // published cardinalities bound future appends
			m.appendMu.Unlock()

			// The snapshot is serving; hand it to the backend (a no-op
			// locally, a partition-snapshot ship for a shard worker). Failure
			// is surfaced like a WAL rewrite failure: visible, not unpublished.
			werr = errors.Join(werr, m.backend.Publish(next))

			st := Stats{
				Generation:           next.Generation,
				Appended:             nAppended,
				Deleted:              nDeleted,
				PartitionsRecomputed: len(affected),
				PartitionsTotal:      distinctValues(newBase, dim),
				CellsRetained:        newStore.NumCells() - rebuilt,
				CellsRebuilt:         rebuilt,
				Elapsed:              time.Since(start),
			}
			return m.finishFlush(st, werr)
		}
	}
	m.appendMu.Lock()
	m.log.unsteal(rows, aux, kinds)
	m.appendMu.Unlock()
	return Stats{}, err
}

// finishFlush records the published refresh's stats and surfaces a WAL
// rewrite or backend publication failure without unpublishing.
func (m *Manager) finishFlush(st Stats, werr error) (Stats, error) {
	refreshSeconds.Observe(st.Elapsed)
	m.statsMu.Lock()
	m.last = st
	m.refreshes++
	m.lastErr = ""
	if werr != nil {
		// The refresh published, but the on-disk log no longer matches the
		// buffer; keep that visible in Metrics, not just in this one return.
		m.lastErr = werr.Error()
	}
	m.statsMu.Unlock()
	if werr != nil {
		return st, fmt.Errorf("refresh: published generation %d but backend persistence failed: %w", st.Generation, werr)
	}
	return st, nil
}

// rebuild computes the new store for the edited relation: partition-scoped
// recompute plus group-level merge, or a full recompute when the relation
// cannot be decomposed (fewer than two dimensions). A relation whose every
// tuple was deleted has no cells at all — the engines assume at least one
// tuple, so that degenerate cube is built directly.
//
// The iceberg residual follows the store: when the old store carries one, the
// replacement partitions' residual is recomputed from their tuples and merged
// group-style (full rebuild paths recompute it over the whole relation). When
// the old store lacks one — a legacy snapshot — the refreshed store stays
// residual-free, so it never claims an exactness it cannot prove.
func (m *Manager) rebuild(old *cubestore.Store, t *table.Table, affected map[core.Value]bool) (*cubestore.Store, int64, error) {
	carry := old.HasResidual()
	if t.NumTuples() == 0 || m.nd < 2 {
		var fresh []core.Cell
		if t.NumTuples() > 0 {
			var err error
			if fresh, err = m.computeAll(t); err != nil {
				return nil, 0, err
			}
		}
		var res *cubestore.Residual
		if carry {
			res = cubestore.ComputeResidual(t.Cols, t.Aux, m.cfg.ECfg.MinSup, m.measureKind())
		}
		s, err := buildStore(m.nd, old.HasAux(), fresh, res)
		return s, int64(len(fresh)), err
	}
	fresh, sub, err := m.recompute(t, affected)
	if err != nil {
		return nil, 0, err
	}
	var freshRes *cubestore.Residual
	if carry {
		// Residual rows fix every dimension, so their multiplicities within the
		// touched partitions' tuples are already globally correct.
		freshRes = cubestore.ComputeResidual(sub.Cols, sub.Aux, m.cfg.ECfg.MinSup, m.measureKind())
	}
	s, err := old.MergePartitions(m.cfg.Dim, func(v core.Value) bool { return affected[v] }, fresh, freshRes)
	return s, int64(len(fresh)), err
}

// measureKind resolves the measure kind residual aggregates are combined
// with: Config.Measure when set, else the engine's native measure.
func (m *Manager) measureKind() core.MeasureKind {
	if m.cfg.Measure != core.MeasureNone {
		return m.cfg.Measure
	}
	return m.cfg.ECfg.Measure
}

// recompute produces the replacement cells of a refresh: the closed cells
// fixing the partition dimension to a touched value (cubed shard-by-shard
// over the touched partitions' tuples only) and the whole wildcard slice
// (projection cube plus the agreement check). The engine runs on up to
// Workers goroutines. The returned sub-relation holds exactly the touched
// partitions' tuples (the fresh residual's source).
func (m *Manager) recompute(t *table.Table, affected map[core.Value]bool) ([]core.Cell, *table.Table, error) {
	dim := m.cfg.Dim
	workers := m.cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// Sub-relation: every tuple of a touched partition. Cells fixing dim to a
	// touched value aggregate only these tuples, so cubing the sub-relation
	// yields their globally correct counts and closedness.
	var tids []core.TID
	col := t.Cols[dim]
	for tid := 0; tid < t.NumTuples(); tid++ {
		if affected[col[tid]] {
			tids = append(tids, core.TID(tid))
		}
	}
	sub := t.Subset(tids)
	ns := m.cfg.Shards
	if ns <= 0 {
		ns = 4 * workers
	}
	if ns > len(affected) {
		ns = len(affected)
	}
	if ns < 1 {
		ns = 1
	}
	shards := parallel.ShardTables(sub, dim, ns)

	projDims := make([]int, 0, m.nd-1)
	for d := 0; d < m.nd; d++ {
		if d != dim {
			projDims = append(projDims, d)
		}
	}
	proj, err := t.Project(projDims)
	if err != nil {
		return nil, nil, err
	}

	var mu sync.Mutex
	var fresh []core.Cell
	var scan *parallel.AgreementScan
	// The projection pass sees every tuple and is usually the longest job; it
	// goes first so the pool stays busy, and the moment it finishes it
	// submits the agreement scan's chunk jobs back into the pool, overlapping
	// the closedness check with shard jobs still running.
	pool := parallel.NewPool(workers)
	pool.Submit(func() error {
		c := &sink.AuxCollector{}
		if err := m.cfg.Eng.Run(proj, m.cfg.ECfg, c); err != nil {
			return fmt.Errorf("refresh: projection pass: %w", err)
		}
		scan = parallel.NewAgreementScan(t, dim, projDims, c.Cells, workers)
		if scan != nil {
			for _, job := range scan.Jobs() {
				pool.Submit(job)
			}
		}
		return nil
	})
	for _, st := range shards {
		st := st
		pool.Submit(func() error {
			c := &sink.AuxCollector{}
			if err := m.cfg.Eng.Run(st, m.cfg.ECfg, &fixedOnly{next: c, dim: dim}); err != nil {
				return fmt.Errorf("refresh: partition shard: %w", err)
			}
			mu.Lock()
			fresh = append(fresh, c.Cells...)
			mu.Unlock()
			return nil
		})
	}
	if err := pool.Wait(); err != nil {
		return nil, nil, err
	}
	if scan != nil {
		col := &sink.AuxCollector{Cells: fresh}
		scan.EmitSurvivors(col)
		fresh = col.Cells
	}
	if m.cfg.AttachAux != nil {
		if err := m.cfg.AttachAux(t, fresh); err != nil {
			return nil, nil, err
		}
	}
	return fresh, sub, nil
}

// computeAll cubes the whole relation (the non-decomposable fallback).
func (m *Manager) computeAll(t *table.Table) ([]core.Cell, error) {
	c := &sink.AuxCollector{}
	if err := m.cfg.Eng.Run(t, m.cfg.ECfg, c); err != nil {
		return nil, fmt.Errorf("refresh: %w", err)
	}
	if m.cfg.AttachAux != nil {
		if err := m.cfg.AttachAux(t, c.Cells); err != nil {
			return nil, err
		}
	}
	return c.Cells, nil
}

// fixedOnly keeps cells fixing the partition dimension (shard runs), the
// filter of internal/parallel's shard jobs.
type fixedOnly struct {
	next sink.AuxSink
	dim  int
}

//ccubing:hotpath
func (f *fixedOnly) Emit(vals []core.Value, count int64) { f.EmitAux(vals, count, 0) }

//ccubing:hotpath
func (f *fixedOnly) EmitAux(vals []core.Value, count int64, aux float64) {
	if vals[f.dim] != core.Star {
		f.next.EmitAux(vals, count, aux)
	}
}

// appendRows builds the grown relation from an append-only delta; see
// applyDelta for the general (tombstone-bearing) form.
func appendRows(t *table.Table, rows []core.Value, aux []float64, dicts []*table.Dict) *table.Table {
	nt, _, _, err := applyDelta(t, rows, aux, nil, dicts)
	if err != nil {
		panic(err) // unreachable: an append-only delta cannot leave unmatched tombstones
	}
	return nt
}

// applyDelta builds the edited relation: base's surviving tuples followed by
// the delta's surviving appends, columns copied (the base table is never
// mutated — it may be shared with the caller's dataset). kinds discriminates
// the delta rows (nil = all appends); each tombstone row removes one
// occurrence matching on every dimension and, when the relation has a
// measure, the measure value — from the base relation or from an append in
// the same delta (an appended-then-deleted tuple nets out). Cardinalities
// never shrink: they grow to cover the delta's values and the staging
// dictionaries, so deleting a dimension's maximum value keeps the published
// coding stable. Returns the new relation and the appended/deleted counts;
// a tombstone with no match is an error (enqueue-time validation makes that
// unreachable short of a corrupted WAL).
func applyDelta(t *table.Table, rows []core.Value, aux []float64, kinds []byte, dicts []*table.Dict) (*table.Table, int, int, error) {
	nd := t.NumDims()
	dn := len(rows) / nd
	hasAux := t.Aux != nil

	// The tombstone multiset, keyed like delete validation.
	var dels map[string]int
	nDeleted := 0
	buf := make([]byte, 0, 4*nd+8)
	for i := 0; i < dn; i++ {
		if kinds == nil || (kinds[i] != opDelete && kinds[i] != opUpdateOld) {
			continue
		}
		if dels == nil {
			dels = make(map[string]int)
		}
		var a float64
		if hasAux {
			a = aux[i]
		}
		dels[rowKey(buf, rows[i*nd:(i+1)*nd], a, hasAux)]++
		nDeleted++
	}

	// Survivors: base tuples, then delta appends, each consuming a matching
	// tombstone when one is pending.
	keepBase := make([]core.TID, 0, t.NumTuples())
	row := make([]core.Value, nd)
	for tid := 0; tid < t.NumTuples(); tid++ {
		if dels != nil {
			var a float64
			if hasAux {
				a = t.Aux[tid]
			}
			k := rowKey(buf, t.Row(core.TID(tid), row), a, hasAux)
			if dels[k] > 0 {
				dels[k]--
				continue
			}
		}
		keepBase = append(keepBase, core.TID(tid))
	}
	keepDelta := make([]int, 0, dn)
	for i := 0; i < dn; i++ {
		if kinds != nil && (kinds[i] == opDelete || kinds[i] == opUpdateOld) {
			continue
		}
		if dels != nil {
			var a float64
			if hasAux {
				a = aux[i]
			}
			k := rowKey(buf, rows[i*nd:(i+1)*nd], a, hasAux)
			if dels[k] > 0 {
				dels[k]--
				continue
			}
		}
		keepDelta = append(keepDelta, i)
	}
	for k, left := range dels {
		if left > 0 {
			return nil, 0, 0, fmt.Errorf("refresh: %d tombstone(s) for tuple %x match nothing in the relation or delta", left, k)
		}
	}

	n := len(keepBase)
	nt := table.New(nd, n+len(keepDelta))
	copy(nt.Names, t.Names)
	for d := 0; d < nd; d++ {
		col := nt.Cols[d]
		for i, tid := range keepBase {
			col[i] = t.Cols[d][tid]
		}
		card := t.Cards[d]
		for i, di := range keepDelta {
			v := rows[di*nd+d]
			col[n+i] = v
			if int(v)+1 > card {
				card = int(v) + 1
			}
		}
		// Tombstoned appends never materialize, but their values were accepted
		// into the delta's domain; growing over them too keeps cards monotone
		// regardless of cancellation order.
		for i := 0; i < dn; i++ {
			if v := rows[i*nd+d]; int(v)+1 > card {
				card = int(v) + 1
			}
		}
		if dicts != nil && dicts[d].Len() > card {
			card = dicts[d].Len()
		}
		nt.Cards[d] = card
	}
	if hasAux {
		nt.Aux = make([]float64, n+len(keepDelta))
		for i, tid := range keepBase {
			nt.Aux[i] = t.Aux[tid]
		}
		for i, di := range keepDelta {
			nt.Aux[n+i] = aux[di]
		}
	}
	nAppended := dn - nDeleted
	return nt, nAppended, nDeleted, nil
}

// buildStore freezes cells into a store from scratch, attaching res when
// non-nil.
func buildStore(nd int, hasAux bool, cells []core.Cell, res *cubestore.Residual) (*cubestore.Store, error) {
	b := cubestore.NewBuilder(nd, hasAux)
	for _, c := range cells {
		b.Add(c.Values, c.Count, c.Aux)
	}
	if res != nil {
		if err := b.SetResidual(res); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// distinctValues counts the distinct values of one dimension.
func distinctValues(t *table.Table, dim int) int {
	seen := make([]bool, t.Cards[dim])
	n := 0
	for _, v := range t.Cols[dim] {
		if !seen[v] {
			seen[v] = true
			n++
		}
	}
	return n
}
