// Package refresh keeps a served closed cube fresh as its relation grows:
// appended tuples buffer in a write-ahead delta log and, on trigger (row
// threshold, timer, or explicit flush), a refresh recomputes only the
// partitions of the leading (partition) dimension whose values appear in
// the delta, merges the rebuilt closed-cell groups with the untouched ones
// into a fresh cubestore.Store, and publishes the result with an atomic
// pointer swap — in-flight queries finish on the old store while new
// queries see the new one.
//
// Correctness rests on the partition invariant shared with internal/parallel
// and internal/partition (paper Sec. 6.3): a closed cell fixing the
// partition dimension aggregates tuples of exactly one partition, so cells
// of untouched partitions are byte-identical before and after the append and
// can be retained; cells of touched partitions are recomputed from those
// partitions' tuples; and cells with a wildcard on the partition dimension —
// which any append may change — are rebuilt from the projection cube plus
// the aggregation-based agreement check of parallel.ClosedSurvivors. The
// refreshed store is canonical: byte-identical to a from-scratch
// materialization of the grown relation.
package refresh

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/engine"
	"ccubing/internal/parallel"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a Manager.
type Config struct {
	// Dim is the partition dimension; refreshes recompute only the partitions
	// (values of this dimension) the delta touches. Defaults to 0, the
	// leading dimension.
	Dim int
	// Eng and ECfg run the recomputation; ECfg.Closed must be set (the
	// serving store holds the closed cube).
	Eng  engine.Engine
	ECfg engine.Config
	// Workers bounds the recompute goroutines; values below 1 run
	// sequentially.
	Workers int
	// Shards bounds how many shards the touched partitions split into;
	// defaults to 4×Workers, capped by the number of touched partitions.
	Shards int
	// AttachAux, when set, fills the Aux of freshly recomputed cells from the
	// relation (the facade's complex-measure post-pass).
	AttachAux func(*table.Table, []core.Cell) error
	// Generation seeds the published snapshot's generation counter.
	Generation uint64
	// WAL, when non-empty, persists pending (unrefreshed) appends to this
	// file; a new Manager over the same base relation replays them. Rows a
	// refresh has folded in leave the WAL — durability of the refreshed
	// store is the snapshot's job (save one after refreshing), not the
	// log's.
	WAL string
	// CardSlack bounds how far a coded append may grow a dimension's domain
	// beyond the published cardinality (defaults to 4096 when zero). Without
	// a bound, one hostile row fixing a value near MaxInt32 would force
	// cardinality-sized allocations on refresh.
	CardSlack int
}

// defaultCardSlack is the Config.CardSlack default.
const defaultCardSlack = 4096

// Snapshot is one published serving state: an immutable store, the frozen
// dictionaries that decode it (nil for coded relations), and the metadata
// that identifies it. Readers obtain it from Manager.Snapshot with one
// atomic load; every field is immutable from then on.
type Snapshot struct {
	Store *cubestore.Store
	Dicts []*table.Dict
	// Generation counts published refreshes; it increases by exactly one per
	// refresh that folded at least one row.
	Generation uint64
	// Rows is the number of tuples of the relation this snapshot serves.
	Rows int64
}

// Stats describes one refresh.
type Stats struct {
	// Generation is the generation the refresh published (unchanged when the
	// delta was empty).
	Generation uint64
	// Appended is the number of delta rows folded in.
	Appended int
	// PartitionsRecomputed and PartitionsTotal count the touched and total
	// distinct partition-dimension values; their ratio is the work saved
	// versus a full rebuild.
	PartitionsRecomputed int
	PartitionsTotal      int
	// CellsRetained and CellsRebuilt split the published store's cells into
	// those copied from the previous store and those recomputed.
	CellsRetained int64
	CellsRebuilt  int64
	// Elapsed is the wall-clock refresh time.
	Elapsed time.Duration
}

// Metrics is the cumulative observability view served by /v1/stats.
type Metrics struct {
	Generation uint64
	Rows       int64
	Backlog    int
	Refreshes  int64
	Last       Stats
	LastError  string
}

// Manager owns the live-refresh state of one cube: the current relation, the
// delta log, and the published snapshot. Appends and refreshes may run
// concurrently with any number of snapshot readers; appends are serialized
// with each other, refreshes with each other. A delta arriving while a
// refresh is computing stays buffered for the next refresh.
type Manager struct {
	cfg    Config
	nd     int
	hasAux bool // the relation carries a measure column

	appendMu sync.Mutex // guards log, dicts, cards, autoRows
	log      *deltaLog
	dicts    []*table.Dict // staging dictionaries, grown by labeled appends
	cards    []int         // published per-dimension cardinalities (append validation)
	autoRows int

	flushMu sync.Mutex // serializes refreshes; guards base
	base    *table.Table

	snap atomic.Pointer[Snapshot]

	statsMu   sync.Mutex
	last      Stats
	refreshes int64
	lastErr   string

	timerMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewManager wraps a materialized store and its source relation. base is
// retained (appends never mutate it — refreshes copy); dicts, when the
// relation is labeled, become the published snapshot's frozen dictionaries
// and must not be mutated by the caller afterwards. When cfg.WAL names a
// file with pending appends, they are replayed into the delta log.
func NewManager(base *table.Table, store *cubestore.Store, dicts []*table.Dict, cfg Config) (*Manager, error) {
	if base == nil || store == nil {
		return nil, fmt.Errorf("refresh: nil relation or store")
	}
	if base.NumDims() != store.NumDims() {
		return nil, fmt.Errorf("refresh: relation has %d dimensions, store %d", base.NumDims(), store.NumDims())
	}
	if cfg.Eng == nil || !cfg.ECfg.Closed {
		return nil, fmt.Errorf("refresh: a closed-mode engine is required")
	}
	if cfg.Dim < 0 || cfg.Dim >= base.NumDims() {
		return nil, fmt.Errorf("refresh: partition dimension %d out of range", cfg.Dim)
	}
	if cfg.CardSlack <= 0 {
		cfg.CardSlack = defaultCardSlack
	}
	m := &Manager{
		cfg:    cfg,
		nd:     base.NumDims(),
		hasAux: base.Aux != nil,
		base:   base,
		cards:  append([]int(nil), base.Cards...),
	}
	m.log = newDeltaLog(m.nd, m.hasAux)
	if dicts != nil {
		m.dicts = make([]*table.Dict, len(dicts))
		for d, dict := range dicts {
			m.dicts[d] = table.DictFromNames(dict.Names())
		}
	}
	if cfg.WAL != "" {
		if err := m.attachWAL(cfg.WAL); err != nil {
			return nil, err
		}
	}
	m.snap.Store(&Snapshot{
		Store:      store,
		Dicts:      dicts,
		Generation: cfg.Generation,
		Rows:       int64(base.NumTuples()),
	})
	return m, nil
}

// Snapshot returns the current serving state with one atomic load.
func (m *Manager) Snapshot() *Snapshot { return m.snap.Load() }

// attachWAL opens (and replays) the write-ahead log at path, then persists
// any rows that were buffered before the log was attached. Caller must not
// hold appendMu.
func (m *Manager) attachWAL(path string) error {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	if m.log.f != nil {
		return fmt.Errorf("refresh: wal already attached")
	}
	if _, err := m.log.openWAL(path); err != nil {
		return err
	}
	// Replayed labeled rows must decode with the dictionaries we have; codes
	// the staging dictionaries have never assigned would serve phantom
	// labels.
	if m.dicts != nil {
		for i := 0; i < m.log.rows(); i++ {
			for d := 0; d < m.nd; d++ {
				if v := m.log.vals[i*m.nd+d]; int(v) >= m.dicts[d].Len() {
					return fmt.Errorf("refresh: wal row %d: code %d unknown to dimension %d's dictionary (replay needs the original base relation)", i, v, d)
				}
			}
		}
	}
	// Rows appended before the WAL existed are in memory only; rewrite the
	// file so it holds the full pending delta.
	return m.log.rewrite()
}

// EnableWAL attaches a write-ahead log after construction (the facade's
// AutoRefresh path), replaying any pending rows it holds.
func (m *Manager) EnableWAL(path string) error { return m.attachWAL(path) }

// RowThreshold returns the configured auto-refresh row threshold (0 = off).
func (m *Manager) RowThreshold() int {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	return m.autoRows
}

// Backlog returns the number of buffered delta rows awaiting a refresh.
func (m *Manager) Backlog() int {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	return m.log.rows()
}

// Append buffers coded rows. For labeled relations every value must be a
// code the dictionaries know (append by label instead to introduce new
// ones); for coded relations values may exceed the published cardinality by
// at most CardSlack — new values grow the dimension's domain on refresh,
// the bound keeps a hostile value from forcing cardinality-sized
// allocations. aux carries one measure value per row iff the relation has a
// measure column. It returns the number of rows appended and whether the
// append triggered a synchronous refresh (the configured row threshold was
// reached).
func (m *Manager) Append(rows [][]core.Value, aux []float64) (int, bool, error) {
	if err := m.validateAux(len(rows), aux); err != nil {
		return 0, false, err
	}
	m.appendMu.Lock()
	flat := make([]core.Value, 0, len(rows)*m.nd)
	for i, row := range rows {
		if len(row) != m.nd {
			m.appendMu.Unlock()
			return 0, false, fmt.Errorf("refresh: row %d has %d values, want %d", i, len(row), m.nd)
		}
		for d, v := range row {
			if v < 0 {
				m.appendMu.Unlock()
				return 0, false, fmt.Errorf("refresh: row %d dimension %d: negative value %d", i, d, v)
			}
			if m.dicts != nil && int(v) >= m.dicts[d].Len() {
				m.appendMu.Unlock()
				return 0, false, fmt.Errorf("refresh: row %d dimension %d: code %d unknown to the dictionary (append by label to add it)", i, d, v)
			}
			if m.dicts == nil && int64(v) >= int64(m.cards[d])+int64(m.cfg.CardSlack) {
				m.appendMu.Unlock()
				return 0, false, fmt.Errorf("refresh: row %d dimension %d: value %d exceeds cardinality %d by more than the growth bound %d",
					i, d, v, m.cards[d], m.cfg.CardSlack)
			}
		}
		flat = append(flat, row...)
	}
	return m.appendLocked(flat, aux)
}

// AppendLabeled buffers labeled rows, dictionary-coding each field; unseen
// labels extend the staging dictionaries and are published with the next
// refresh. The whole batch is validated before any label is coded, so a
// rejected batch leaves no phantom labels behind.
func (m *Manager) AppendLabeled(rows [][]string, aux []float64) (int, bool, error) {
	if err := m.validateAux(len(rows), aux); err != nil {
		return 0, false, err
	}
	m.appendMu.Lock()
	if m.dicts == nil {
		m.appendMu.Unlock()
		return 0, false, fmt.Errorf("refresh: relation has no dictionaries; append coded values")
	}
	for i, row := range rows {
		if len(row) != m.nd {
			m.appendMu.Unlock()
			return 0, false, fmt.Errorf("refresh: row %d has %d fields, want %d", i, len(row), m.nd)
		}
	}
	flat := make([]core.Value, 0, len(rows)*m.nd)
	for _, row := range rows {
		for d, s := range row {
			flat = append(flat, m.dicts[d].Code(s))
		}
	}
	return m.appendLocked(flat, aux)
}

func (m *Manager) validateAux(rows int, aux []float64) error {
	if m.hasAux && len(aux) != rows {
		return fmt.Errorf("refresh: relation has a measure column; %d aux values for %d rows", len(aux), rows)
	}
	if !m.hasAux && aux != nil {
		return fmt.Errorf("refresh: relation has no measure column; aux values not accepted")
	}
	return nil
}

// appendLocked finishes an append: the caller holds appendMu, which is
// released here. The row-threshold trigger flushes synchronously, outside
// the append lock, so appends on other goroutines keep flowing into the next
// delta while the refresh computes.
func (m *Manager) appendLocked(flat []core.Value, aux []float64) (int, bool, error) {
	n := len(flat) / m.nd
	if err := m.log.append(flat, aux); err != nil {
		m.appendMu.Unlock()
		return 0, false, err
	}
	trigger := m.autoRows > 0 && m.log.rows() >= m.autoRows
	m.appendMu.Unlock()
	if !trigger {
		return n, false, nil
	}
	if _, err := m.Flush(); err != nil {
		return n, false, fmt.Errorf("refresh: threshold refresh: %w", err)
	}
	return n, true, nil
}

// AutoRefresh configures the refresh triggers: rows > 0 flushes
// synchronously inside the append that reaches that backlog; interval > 0
// starts a background timer flushing on that period (stop it with Close).
// Either may be zero to disable that trigger.
func (m *Manager) AutoRefresh(rows int, interval time.Duration) error {
	if rows < 0 {
		return fmt.Errorf("refresh: negative row threshold %d", rows)
	}
	m.appendMu.Lock()
	m.autoRows = rows
	m.appendMu.Unlock()
	if interval <= 0 {
		return nil
	}
	m.timerMu.Lock()
	defer m.timerMu.Unlock()
	if m.stop != nil {
		return fmt.Errorf("refresh: timer already running")
	}
	stop := make(chan struct{})
	m.stop = stop
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := m.Flush(); err != nil {
					m.statsMu.Lock()
					m.lastErr = err.Error()
					m.statsMu.Unlock()
				}
			}
		}
	}()
	return nil
}

// Close stops the timer goroutine (flushing nothing) and closes the WAL.
func (m *Manager) Close() error {
	m.timerMu.Lock()
	if m.stop != nil {
		close(m.stop)
		m.stop = nil
	}
	m.timerMu.Unlock()
	m.wg.Wait()
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	return m.log.close()
}

// Metrics returns the cumulative refresh counters.
func (m *Manager) Metrics() Metrics {
	s := m.Snapshot()
	backlog := m.Backlog()
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return Metrics{
		Generation: s.Generation,
		Rows:       s.Rows,
		Backlog:    backlog,
		Refreshes:  m.refreshes,
		Last:       m.last,
		LastError:  m.lastErr,
	}
}

// Flush folds the buffered delta into the relation, recomputes the touched
// partitions and the wildcard slice, merges with the untouched cells, and
// publishes the new snapshot. An empty delta is a no-op that keeps the
// current generation. On error the delta is returned to the buffer for a
// later retry and the published snapshot is unchanged.
func (m *Manager) Flush() (Stats, error) {
	m.flushMu.Lock()
	defer m.flushMu.Unlock()
	start := time.Now()

	m.appendMu.Lock()
	rows, aux := m.log.steal()
	var frozen []*table.Dict
	if m.dicts != nil {
		frozen = make([]*table.Dict, len(m.dicts))
		for d, dict := range m.dicts {
			frozen[d] = table.DictFromNames(dict.Names())
		}
	}
	m.appendMu.Unlock()

	cur := m.snap.Load()
	n := len(rows) / m.nd
	if n == 0 {
		return Stats{Generation: cur.Generation}, nil
	}

	newBase := appendRows(m.base, rows, aux, frozen)
	dim := m.cfg.Dim
	affected := make(map[core.Value]bool)
	for i := 0; i < n; i++ {
		affected[rows[i*m.nd+dim]] = true
	}

	newStore, rebuilt, err := m.rebuild(cur.Store, newBase, affected)
	if err != nil {
		m.appendMu.Lock()
		m.log.unsteal(rows, aux)
		m.appendMu.Unlock()
		return Stats{}, err
	}

	next := &Snapshot{
		Store:      newStore,
		Dicts:      frozen,
		Generation: cur.Generation + 1,
		Rows:       int64(newBase.NumTuples()),
	}
	m.snap.Store(next)
	m.base = newBase

	m.appendMu.Lock()
	werr := m.log.rewrite()
	copy(m.cards, newBase.Cards) // published cardinalities bound future appends
	m.appendMu.Unlock()

	st := Stats{
		Generation:           next.Generation,
		Appended:             n,
		PartitionsRecomputed: len(affected),
		PartitionsTotal:      distinctValues(newBase, dim),
		CellsRetained:        newStore.NumCells() - rebuilt,
		CellsRebuilt:         rebuilt,
		Elapsed:              time.Since(start),
	}
	m.statsMu.Lock()
	m.last = st
	m.refreshes++
	m.lastErr = ""
	if werr != nil {
		// The refresh published, but the on-disk log no longer matches the
		// buffer; keep that visible in Metrics, not just in this one return.
		m.lastErr = werr.Error()
	}
	m.statsMu.Unlock()
	if werr != nil {
		return st, fmt.Errorf("refresh: published generation %d but wal rewrite failed: %w", st.Generation, werr)
	}
	return st, nil
}

// rebuild computes the new store for the grown relation: partition-scoped
// recompute plus group-level merge, or a full recompute when the relation
// cannot be decomposed (fewer than two dimensions).
func (m *Manager) rebuild(old *cubestore.Store, t *table.Table, affected map[core.Value]bool) (*cubestore.Store, int64, error) {
	if m.nd < 2 {
		fresh, err := m.computeAll(t)
		if err != nil {
			return nil, 0, err
		}
		s, err := buildStore(m.nd, old.HasAux(), fresh)
		return s, int64(len(fresh)), err
	}
	fresh, err := m.recompute(t, affected)
	if err != nil {
		return nil, 0, err
	}
	s, err := old.MergePartitions(m.cfg.Dim, func(v core.Value) bool { return affected[v] }, fresh)
	return s, int64(len(fresh)), err
}

// recompute produces the replacement cells of a refresh: the closed cells
// fixing the partition dimension to a touched value (cubed shard-by-shard
// over the touched partitions' tuples only) and the whole wildcard slice
// (projection cube plus the agreement check). The engine runs on up to
// Workers goroutines.
func (m *Manager) recompute(t *table.Table, affected map[core.Value]bool) ([]core.Cell, error) {
	dim := m.cfg.Dim
	workers := m.cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// Sub-relation: every tuple of a touched partition. Cells fixing dim to a
	// touched value aggregate only these tuples, so cubing the sub-relation
	// yields their globally correct counts and closedness.
	var tids []core.TID
	col := t.Cols[dim]
	for tid := 0; tid < t.NumTuples(); tid++ {
		if affected[col[tid]] {
			tids = append(tids, core.TID(tid))
		}
	}
	sub := t.Subset(tids)
	ns := m.cfg.Shards
	if ns <= 0 {
		ns = 4 * workers
	}
	if ns > len(affected) {
		ns = len(affected)
	}
	if ns < 1 {
		ns = 1
	}
	shards := parallel.ShardTables(sub, dim, ns)

	projDims := make([]int, 0, m.nd-1)
	for d := 0; d < m.nd; d++ {
		if d != dim {
			projDims = append(projDims, d)
		}
	}
	proj, err := t.Project(projDims)
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	var fresh []core.Cell
	var candidates []core.Cell
	// The projection pass sees every tuple and is usually the longest job; it
	// goes first so the pool stays busy.
	jobs := make([]func() error, 0, len(shards)+1)
	jobs = append(jobs, func() error {
		c := &sink.AuxCollector{}
		if err := m.cfg.Eng.Run(proj, m.cfg.ECfg, c); err != nil {
			return fmt.Errorf("refresh: projection pass: %w", err)
		}
		mu.Lock()
		candidates = c.Cells
		mu.Unlock()
		return nil
	})
	for _, st := range shards {
		st := st
		jobs = append(jobs, func() error {
			c := &sink.AuxCollector{}
			if err := m.cfg.Eng.Run(st, m.cfg.ECfg, &fixedOnly{next: c, dim: dim}); err != nil {
				return fmt.Errorf("refresh: partition shard: %w", err)
			}
			mu.Lock()
			fresh = append(fresh, c.Cells...)
			mu.Unlock()
			return nil
		})
	}
	if err := parallel.RunPool(workers, jobs); err != nil {
		return nil, err
	}
	fresh = append(fresh, parallel.ClosedSurvivors(t, dim, projDims, candidates, workers)...)
	if m.cfg.AttachAux != nil {
		if err := m.cfg.AttachAux(t, fresh); err != nil {
			return nil, err
		}
	}
	return fresh, nil
}

// computeAll cubes the whole relation (the non-decomposable fallback).
func (m *Manager) computeAll(t *table.Table) ([]core.Cell, error) {
	c := &sink.AuxCollector{}
	if err := m.cfg.Eng.Run(t, m.cfg.ECfg, c); err != nil {
		return nil, fmt.Errorf("refresh: %w", err)
	}
	if m.cfg.AttachAux != nil {
		if err := m.cfg.AttachAux(t, c.Cells); err != nil {
			return nil, err
		}
	}
	return c.Cells, nil
}

// fixedOnly keeps cells fixing the partition dimension (shard runs), the
// filter of internal/parallel's shard jobs.
type fixedOnly struct {
	next sink.AuxSink
	dim  int
}

func (f *fixedOnly) Emit(vals []core.Value, count int64) { f.EmitAux(vals, count, 0) }

func (f *fixedOnly) EmitAux(vals []core.Value, count int64, aux float64) {
	if vals[f.dim] != core.Star {
		f.next.EmitAux(vals, count, aux)
	}
}

// appendRows builds the grown relation: base's tuples followed by the delta,
// columns copied (the base table is never mutated — it may be shared with
// the caller's dataset). Cardinalities grow to cover the delta's values and
// the staging dictionaries.
func appendRows(t *table.Table, rows []core.Value, aux []float64, dicts []*table.Dict) *table.Table {
	nd := t.NumDims()
	n := t.NumTuples()
	dn := len(rows) / nd
	nt := table.New(nd, n+dn)
	copy(nt.Names, t.Names)
	for d := 0; d < nd; d++ {
		copy(nt.Cols[d], t.Cols[d])
		card := t.Cards[d]
		for i := 0; i < dn; i++ {
			v := rows[i*nd+d]
			nt.Cols[d][n+i] = v
			if int(v)+1 > card {
				card = int(v) + 1
			}
		}
		if dicts != nil && dicts[d].Len() > card {
			card = dicts[d].Len()
		}
		nt.Cards[d] = card
	}
	if t.Aux != nil {
		nt.Aux = make([]float64, n+dn)
		copy(nt.Aux, t.Aux)
		copy(nt.Aux[n:], aux)
	}
	return nt
}

// buildStore freezes cells into a store from scratch.
func buildStore(nd int, hasAux bool, cells []core.Cell) (*cubestore.Store, error) {
	b := cubestore.NewBuilder(nd, hasAux)
	for _, c := range cells {
		b.Add(c.Values, c.Count, c.Aux)
	}
	return b.Build()
}

// distinctValues counts the distinct values of one dimension.
func distinctValues(t *table.Table, dim int) int {
	seen := make([]bool, t.Cards[dim])
	n := 0
	for _, v := range t.Cols[dim] {
		if !seen[v] {
			seen[v] = true
			n++
		}
	}
	return n
}
