package refresh

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ccubing/internal/core"
)

// logRow is one op for the log tests: values, aux, and the op kind.
type logRow struct {
	vals []core.Value
	aux  float64
	kind byte
}

// appendOps buffers rows into l, fusing adjacent update pairs exactly as the
// Manager does.
func appendOps(t *testing.T, l *deltaLog, rows []logRow) {
	t.Helper()
	var flat []core.Value
	var aux []float64
	var kinds []byte
	for _, r := range rows {
		flat = append(flat, r.vals...)
		if l.hasAux {
			aux = append(aux, r.aux)
		}
		kinds = append(kinds, r.kind)
	}
	if err := l.append(flat, aux, kinds); err != nil {
		t.Fatal(err)
	}
}

func logState(l *deltaLog) ([]core.Value, []float64, []byte) {
	return append([]core.Value(nil), l.vals...), append([]float64(nil), l.aux...), append([]byte(nil), l.kinds...)
}

// mixedOps is a delta exercising every record type, with update pairs.
func mixedOps() []logRow {
	return []logRow{
		{vals: []core.Value{1, 2}, aux: 1.5, kind: opAppend},
		{vals: []core.Value{3, 0}, aux: -2.25, kind: opDelete},
		{vals: []core.Value{5, 1}, aux: 7, kind: opUpdateOld},
		{vals: []core.Value{5, 2}, aux: 8, kind: opUpdateNew},
		{vals: []core.Value{0, 0}, aux: 0, kind: opAppend},
		{vals: []core.Value{9, 9}, aux: 3.125, kind: opUpdateOld},
		{vals: []core.Value{9, 8}, aux: 3.25, kind: opUpdateNew},
		{vals: []core.Value{4, 4}, aux: -0.5, kind: opDelete},
	}
}

// TestWALv2RoundTrip pins the v2 format: mixed typed records (with and
// without a measure column) survive close/reopen byte-exactly.
func TestWALv2RoundTrip(t *testing.T) {
	for _, hasAux := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "v2.wal")
		l := newDeltaLog(2, hasAux)
		if _, err := l.openWAL(path); err != nil {
			t.Fatal(err)
		}
		appendOps(t, l, mixedOps())
		wantVals, wantAux, wantKinds := logState(l)
		if err := l.close(); err != nil {
			t.Fatal(err)
		}

		r := newDeltaLog(2, hasAux)
		n, err := r.openWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.close()
		if n != len(wantKinds) {
			t.Fatalf("hasAux=%v: replayed %d rows, want %d", hasAux, n, len(wantKinds))
		}
		gotVals, gotAux, gotKinds := logState(r)
		if !reflect.DeepEqual(gotVals, wantVals) || !reflect.DeepEqual(gotKinds, wantKinds) {
			t.Fatalf("hasAux=%v: replay mismatch:\nvals  %v vs %v\nkinds %v vs %v", hasAux, gotVals, wantVals, gotKinds, wantKinds)
		}
		if hasAux && !reflect.DeepEqual(gotAux, wantAux) {
			t.Fatalf("aux mismatch: %v vs %v", gotAux, wantAux)
		}
	}
}

// TestWALv2CrashFuzz truncates a mixed v2 log at every byte offset: replay
// must never error, must recover exactly the records wholly contained in the
// prefix (an update pair is all-or-nothing), and the truncated-then-repaired
// log must accept appends and replay consistently afterwards.
func TestWALv2CrashFuzz(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	l := newDeltaLog(3, true)
	if _, err := l.openWAL(full); err != nil {
		t.Fatal(err)
	}
	ops := []logRow{
		{vals: []core.Value{1, 2, 3}, aux: 1, kind: opAppend},
		{vals: []core.Value{4, 5, 6}, aux: 2, kind: opDelete},
		{vals: []core.Value{7, 8, 9}, aux: 3, kind: opUpdateOld},
		{vals: []core.Value{7, 8, 0}, aux: 4, kind: opUpdateNew},
		{vals: []core.Value{2, 2, 2}, aux: 5, kind: opAppend},
	}
	appendOps(t, l, ops)
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries (cumulative row counts at each valid prefix length).
	headLen := len(walMagic) + 3
	ts := 3*4 + 8
	recLens := []int{1 + ts + 4, 1 + ts + 4, 1 + 2*ts + 4, 1 + ts + 4} // append, delete, update(pair), append
	rowsAt := func(bodyLen int) int {
		rows, off := 0, 0
		for i, rl := range recLens {
			if off+rl > bodyLen {
				break
			}
			off += rl
			if i == 2 {
				rows += 2 // the update pair
			} else {
				rows++
			}
		}
		return rows
	}

	for cut := len(img); cut >= headLen; cut-- {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r := newDeltaLog(3, true)
		n, err := r.openWAL(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if want := rowsAt(cut - headLen); n != want {
			r.close()
			t.Fatalf("cut=%d: replayed %d rows, want %d", cut, n, want)
		}
		// The torn tail was truncated; the log must extend cleanly.
		appendOps(t, r, []logRow{{vals: []core.Value{6, 6, 6}, aux: 9, kind: opDelete}})
		wantRows := n + 1
		if err := r.close(); err != nil {
			t.Fatal(err)
		}
		r2 := newDeltaLog(3, true)
		n2, err := r2.openWAL(path)
		if err != nil {
			t.Fatalf("cut=%d reopen: %v", cut, err)
		}
		if n2 != wantRows {
			t.Fatalf("cut=%d reopen: %d rows, want %d", cut, n2, wantRows)
		}
		r2.close()
	}

	// A flipped byte inside the final record fails its CRC: replay drops
	// exactly that record.
	tear := append([]byte(nil), img...)
	tear[len(tear)-6] ^= 0xff
	path := filepath.Join(dir, "torn.wal")
	if err := os.WriteFile(path, tear, 0o644); err != nil {
		t.Fatal(err)
	}
	r := newDeltaLog(3, true)
	n, err := r.openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if want := rowsAt(len(img)-headLen) - 1; n != want {
		t.Fatalf("corrupt tail: replayed %d rows, want %d", n, want)
	}
}

// TestWALv2UnknownRecordType pins the corrupt-tail contract for garbage
// record types: replay stops there and truncates.
func TestWALv2UnknownRecordType(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	l := newDeltaLog(2, false)
	if _, err := l.openWAL(path); err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, []logRow{{vals: []core.Value{1, 1}, kind: opAppend}})
	// A record with an undefined type byte but otherwise valid framing.
	if _, err := l.w.(*fileWAL).f.Write([]byte{0x7f, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	r := newDeltaLog(2, false)
	n, err := r.openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if n != 1 {
		t.Fatalf("replayed %d rows, want 1 (unknown-type tail dropped)", n)
	}
}

// writeV1WAL crafts a legacy version-1 file: fixed-size append records, no
// CRC framing.
func writeV1WAL(t *testing.T, path string, nd int, rows [][]core.Value, tornTail bool) {
	t.Helper()
	buf := append([]byte(walMagic), walVersionV1, byte(nd), 0)
	for _, r := range rows {
		for _, v := range r {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	if tornTail {
		buf = append(buf, 0xde, 0xad) // crash mid-append
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWALv1Replay pins backward compatibility: version-1 logs replay as
// appends (torn tail dropped), and a rewrite upgrades the file to v2.
func TestWALv1Replay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.wal")
	rows := [][]core.Value{{1, 2}, {3, 4}, {0, 5}}
	writeV1WAL(t, path, 2, rows, true)

	l := newDeltaLog(2, false)
	n, err := l.openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("replayed %d rows, want %d", n, len(rows))
	}
	for _, k := range l.kinds {
		if k != opAppend {
			t.Fatalf("v1 replay produced kind %d, want opAppend", k)
		}
	}
	// The attach path rewrites immediately; the file becomes v2.
	if err := l.rewrite(); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if img[len(walMagic)] != walVersion {
		t.Fatalf("rewritten version = %d, want %d", img[len(walMagic)], walVersion)
	}
	r := newDeltaLog(2, false)
	n2, err := r.openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if n2 != len(rows) {
		t.Fatalf("v2 reopen replayed %d rows, want %d", n2, len(rows))
	}
}

// TestRewriteKeepsBufferOnError is the regression test for the buffer-loss
// bug: when the WAL rewrite fails (the file is gone from under the log), the
// in-memory rows must survive — they are the only copy of the pending delta.
func TestRewriteKeepsBufferOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fail.wal")
	l := newDeltaLog(2, false)
	if _, err := l.openWAL(path); err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, []logRow{
		{vals: []core.Value{1, 2}, kind: opAppend},
		{vals: []core.Value{3, 4}, kind: opDelete},
	})
	wantVals, _, wantKinds := logState(l)
	// Sabotage the descriptor so every file operation fails.
	if err := l.w.(*fileWAL).f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.rewrite(); err == nil {
		t.Fatal("rewrite on a closed file must fail")
	}
	gotVals, _, gotKinds := logState(l)
	if !reflect.DeepEqual(gotVals, wantVals) || !reflect.DeepEqual(gotKinds, wantKinds) {
		t.Fatalf("failed rewrite lost the buffer: vals %v vs %v, kinds %v vs %v", gotVals, wantVals, gotKinds, wantKinds)
	}
	if l.rows() != 2 {
		t.Fatalf("rows = %d, want 2", l.rows())
	}
	l.w = nil // already closed
}
