package serve

import "sort"

// Canonical result ordering. The store ranks rows by packed cell keys, and
// packed keys are built from dictionary codes — which are shard-local on
// labeled cubes (each worker assigns codes in its own first-occurrence
// order). For a router's merged answer to be byte-identical to a single
// store's, ties must break on something every node agrees on: the rendered
// label strings. Both Local and Router therefore re-sort results with the
// comparators here before truncating, in single-shard and scatter mode
// alike.

// lessLabels orders label tuples ascending, element-wise string compare.
func lessLabels(a, b []string) bool {
	for d := range a {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return false
}

// sortAggRows ranks aggregate rows best-first: descending by the requested
// measure (aux when byAux, count otherwise), ties by label tuple ascending.
func sortAggRows(rows []aggregateRow, byAux bool) {
	auxOf := func(r aggregateRow) float64 {
		if r.Aux == nil {
			return 0
		}
		return *r.Aux
	}
	sort.Slice(rows, func(i, j int) bool {
		if byAux {
			if ai, aj := auxOf(rows[i]), auxOf(rows[j]); ai != aj {
				return ai > aj
			}
		}
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return lessLabels(rows[i].Cell, rows[j].Cell)
	})
}

// cellMask packs which dimensions a cell fixes (non-"*") into a bitmask, the
// serve-layer analogue of the store's cuboid mask.
func cellMask(cell []string) uint64 {
	var m uint64
	for d, s := range cell {
		if s != "*" {
			m |= 1 << uint(d)
		}
	}
	return m
}

// sortSliceCells orders slice results by cuboid (fixed-dimension mask
// ascending), then label tuple ascending — deterministic and
// dictionary-independent, so truncation at a limit keeps the same cells on
// every topology.
func sortSliceCells(cells []sliceCell) {
	sort.Slice(cells, func(i, j int) bool {
		if mi, mj := cellMask(cells[i].Cell), cellMask(cells[j].Cell); mi != mj {
			return mi < mj
		}
		return lessLabels(cells[i].Cell, cells[j].Cell)
	})
}
