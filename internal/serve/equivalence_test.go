package serve

// The routed-vs-single equivalence suite: a fuzzed workload of queries,
// slices, aggregates and interleaved mutations runs against one server over
// the whole relation and against a router over N shard workers (real HTTP on
// loopback via httptest, workers Dial'd like production), and every read
// response must match BYTE-identically — counts, closures, measure values,
// canonical row order and the exact flags alike. At minsup 1 no iceberg
// suppression exists anywhere; at minsup > 1 every store carries its
// residual summary, so scattered aggregates must additionally stay exact —
// byte-identical to a minsup-1 oracle server over the same live relation,
// with "exact": true throughout the mutation interleavings.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"ccubing"
)

// fuzzCities covers every shard owner for n ∈ {1, 2, 4} (see routerDataset).
var fuzzCities = []string{"oslo", "paris", "rome", "lima", "cairo", "tokyo", "sydney", "quito"}
var fuzzProds = []string{"pen", "ink", "clip", "tape"}
var fuzzYears = []string{"2022", "2023", "2024", "2025"}

type fuzzTuple struct {
	row []string
	aux float64
}

func TestRouterEquivalenceFuzz(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			fuzzEquivalence(t, n, 1, ccubing.MeasureSum)
		})
	}
}

// TestRouterIcebergExactFuzz is the iceberg regime of the same suite: every
// cube is materialized at minsup 3 (2 for the extremum kinds), so shard
// stores carry residual summaries and scattered aggregates must stay exact.
// Sum covers the plain merge, avg the stored-sum (aux_raw) merge with the
// single post-merge division, min/max the extremum merge; each run also
// fronts a minsup-1 oracle that aggregate answers must match byte for byte.
func TestRouterIcebergExactFuzz(t *testing.T) {
	cases := []struct {
		n      int
		minsup int64
		kind   ccubing.MeasureKind
	}{
		{1, 3, ccubing.MeasureSum},
		{2, 3, ccubing.MeasureSum},
		{4, 3, ccubing.MeasureSum},
		{1, 3, ccubing.MeasureAvg},
		{2, 3, ccubing.MeasureAvg},
		{4, 3, ccubing.MeasureAvg},
		{2, 2, ccubing.MeasureMin},
		{2, 2, ccubing.MeasureMax},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("shards=%d/minsup=%d/%v", c.n, c.minsup, c.kind), func(t *testing.T) {
			fuzzEquivalence(t, c.n, c.minsup, c.kind)
		})
	}
}

// rawDo issues one request and returns the status and raw body bytes.
func rawDo(t *testing.T, ts *httptest.Server, method, path, contentType, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func fuzzEquivalence(t *testing.T, n int, minsup int64, kind ccubing.MeasureKind) {
	rng := rand.New(rand.NewSource(int64(1000+n) + 100*minsup + 10000*int64(kind)))

	// Aux combiners whose scatter merge is well-defined for this measure
	// kind: the cube's own combiner (explicitly and as the "" default), plus
	// plain sums of the stored values where those are sums themselves. The
	// extremum kinds skip "" — its sum-of-stored default would sum per-shard
	// minima, which no partition of the tuples can merge.
	var aggs []string
	switch kind {
	case ccubing.MeasureAvg:
		aggs = []string{"", "avg", "sum"}
	case ccubing.MeasureMin:
		aggs = []string{"min"}
	case ccubing.MeasureMax:
		aggs = []string{"max"}
	default:
		aggs = []string{"", "sum"}
	}

	// Base relation: ~150 tuples with an integer-valued sum measure (integer
	// aux keeps float arithmetic exact, so shard-order summation cannot
	// perturb the encoded bytes).
	var live []fuzzTuple
	for i := 0; i < 150; i++ {
		live = append(live, fuzzTuple{
			row: []string{
				fuzzCities[rng.Intn(len(fuzzCities))],
				fuzzProds[rng.Intn(len(fuzzProds))],
				fuzzYears[rng.Intn(len(fuzzYears))],
			},
			aux: float64(1 + rng.Intn(9)),
		})
	}
	buildDS := func() *ccubing.Dataset {
		rows := make([][]string, len(live))
		aux := make([]float64, len(live))
		for i, tp := range live {
			rows[i] = tp.row
			aux[i] = tp.aux
		}
		ds, err := ccubing.NewDataset([]string{"city", "product", "year"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.SetMeasure(aux); err != nil {
			t.Fatal(err)
		}
		return ds
	}
	opts := ccubing.Options{MinSup: minsup, Measure: kind}

	ds := buildDS()
	globalCube, err := ccubing.Materialize(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(newMux(globalCube, "", 0))
	defer single.Close()

	// Iceberg runs front a minsup-1 oracle over the same live relation:
	// residual-backed aggregates must match it byte for byte, which also
	// pins "exact": true (the oracle has nothing to be inexact about).
	var oracle *httptest.Server
	if minsup > 1 {
		oracleCube, err := ccubing.Materialize(buildDS(), ccubing.Options{MinSup: 1, Measure: kind})
		if err != nil {
			t.Fatal(err)
		}
		oracle = httptest.NewServer(newMux(oracleCube, "", 0))
		defer oracle.Close()
	}

	// N shard workers behind real HTTP, Dial'd like production.
	workers := make([]Shard, n)
	for i := 0; i < n; i++ {
		sub, err := ds.Shard(0, i, n)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		cube, err := ccubing.Materialize(sub, opts)
		if err != nil {
			t.Fatal(err)
		}
		l := NewLocal(cube)
		l.SetShard(i, n)
		ws := httptest.NewServer(NewServer(l, Config{}).Handler())
		defer ws.Close()
		sh, err := Dial(ws.URL)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = sh
	}
	router, err := NewRouter(workers)
	if err != nil {
		t.Fatal(err)
	}
	routed := httptest.NewServer(NewServer(router, Config{}).Handler())
	defer routed.Close()

	// compare issues the same read to both servers and requires byte-equal
	// bodies: the sharded deployment must be indistinguishable.
	compare := func(method, path, body string) {
		t.Helper()
		ct := ""
		if method == http.MethodPost {
			ct = "application/json"
		}
		sc, sb := rawDo(t, single, method, path, ct, body)
		rc, rb := rawDo(t, routed, method, path, ct, body)
		if sc != rc || !bytes.Equal(sb, rb) {
			t.Fatalf("divergence on %s %s %s:\n single: %d %s\n routed: %d %s",
				method, path, body, sc, sb, rc, rb)
		}
	}
	// mutate applies the same mutation to both servers; responses carry
	// deployment-shaped fields (per-shard backlogs), so only success must
	// agree — the read equivalence above is the real check.
	mutate := func(path, body string) {
		t.Helper()
		sc, sb := rawDo(t, single, http.MethodPost, path, "application/json", body)
		rc, rb := rawDo(t, routed, http.MethodPost, path, "application/json", body)
		if sc != http.StatusOK || rc != http.StatusOK {
			t.Fatalf("mutation %s %s: single %d %s, routed %d %s", path, body, sc, sb, rc, rb)
		}
		if oracle != nil {
			if oc, ob := rawDo(t, oracle, http.MethodPost, path, "application/json", body); oc != http.StatusOK {
				t.Fatalf("oracle mutation %s %s: %d %s", path, body, oc, ob)
			}
		}
	}

	randCell := func() []string {
		cell := make([]string, 3)
		pools := [][]string{fuzzCities, fuzzProds, fuzzYears}
		for d := range cell {
			switch rng.Intn(4) {
			case 0:
				cell[d] = "*"
			case 1:
				if d == 0 {
					cell[d] = "atlantis" // unknown label: a miss, not an error
				} else {
					cell[d] = pools[d][rng.Intn(len(pools[d]))]
				}
			default:
				cell[d] = pools[d][rng.Intn(len(pools[d]))]
			}
		}
		return cell
	}
	randWhere := func() string {
		parts := make([]string, 3)
		pools := [][]string{fuzzCities, fuzzProds, fuzzYears}
		for d := range parts {
			pool := pools[d]
			switch rng.Intn(4) {
			case 0:
				parts[d] = pool[rng.Intn(len(pool))]
			case 1:
				parts[d] = pool[rng.Intn(len(pool))] + "|" + pool[rng.Intn(len(pool))]
			case 2:
				lo, hi := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
				if lo > hi {
					lo, hi = hi, lo
				}
				parts[d] = lo + ".." + hi
			default:
				parts[d] = "*"
			}
		}
		return strings.Join(parts, ",")
	}
	groupBys := []string{"", "city", "product", "year", "city,year", "product,year", "city,product,year"}

	checkReads := func() {
		t.Helper()
		for q := 0; q < 8; q++ {
			cell := randCell()
			if minsup > 1 && cell[0] == "*" {
				// Scattered point queries on iceberg cubes stay per-shard lower
				// bounds (Lookup does not consult residuals — only aggregates
				// fold them), so byte-identity holds only for dim-0-bound ones.
				cell[0] = fuzzCities[rng.Intn(len(fuzzCities))]
			}
			compare(http.MethodGet, "/v1/query?cell="+url.QueryEscape(strings.Join(cell, ",")), "")
		}
		for s := 0; s < 3; s++ {
			cell := randCell()
			cell[0] = fuzzCities[rng.Intn(len(fuzzCities))] // slices must bind dim 0 through a router
			path := "/v1/slice?cell=" + url.QueryEscape(strings.Join(cell, ","))
			if rng.Intn(3) == 0 {
				path += fmt.Sprintf("&limit=%d", 1+rng.Intn(6))
			}
			compare(http.MethodGet, path, "")
		}
		for a := 0; a < 4; a++ {
			v := url.Values{}
			if rng.Intn(3) > 0 {
				v.Set("where", randWhere())
			}
			if gb := groupBys[rng.Intn(len(groupBys))]; gb != "" {
				v.Set("group_by", gb)
			}
			if rng.Intn(2) == 0 {
				v.Set("top_k", fmt.Sprint(1+rng.Intn(8)))
			}
			if rng.Intn(3) == 0 {
				v.Set("order_by", "aux")
			}
			if agg := aggs[rng.Intn(len(aggs))]; agg != "" {
				v.Set("aux_agg", agg)
			}
			path := "/v1/aggregate?" + v.Encode()
			compare(http.MethodGet, path, "")
			if oracle != nil {
				// Residual-backed iceberg aggregates equal the minsup-1 answer
				// entirely: rows, measures, ranking and the exact flag.
				sc, sb := rawDo(t, single, http.MethodGet, path, "", "")
				oc, ob := rawDo(t, oracle, http.MethodGet, path, "", "")
				if sc != oc || !bytes.Equal(sb, ob) {
					t.Fatalf("iceberg aggregate diverges from minsup-1 oracle on %s:\n iceberg: %d %s\n  oracle: %d %s",
						path, sc, sb, oc, ob)
				}
				if !strings.Contains(string(sb), `"exact":true`) {
					t.Fatalf("iceberg aggregate not exact on %s: %s", path, sb)
				}
			}
		}
	}

	rowJSON := func(rows [][]string, aux []float64, refresh bool) string {
		var b strings.Builder
		b.WriteString(`{"rows":[`)
		for i, r := range rows {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `["%s"]`, strings.Join(r, `","`))
		}
		b.WriteString(`],"aux":[`)
		for i, a := range aux {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%g", a)
		}
		b.WriteString(`]`)
		if refresh {
			b.WriteString(`,"refresh":true`)
		}
		b.WriteString(`}`)
		return b.String()
	}

	checkReads()
	for round := 0; round < 25; round++ {
		refresh := rng.Intn(3) > 0
		switch rng.Intn(3) {
		case 0: // append 1–4 rows, occasionally introducing a new label
			k := 1 + rng.Intn(4)
			rows := make([][]string, k)
			aux := make([]float64, k)
			for i := range rows {
				city := fuzzCities[rng.Intn(len(fuzzCities))]
				if rng.Intn(8) == 0 {
					city = fmt.Sprintf("newcity%d", rng.Intn(4))
				}
				rows[i] = []string{city, fuzzProds[rng.Intn(len(fuzzProds))], fuzzYears[rng.Intn(len(fuzzYears))]}
				aux[i] = float64(1 + rng.Intn(9))
				live = append(live, fuzzTuple{row: rows[i], aux: aux[i]})
			}
			mutate("/v1/append", rowJSON(rows, aux, refresh))
		case 1: // delete 1–2 live tuples (aux must match on a measure cube)
			k := 1 + rng.Intn(2)
			var rows [][]string
			var aux []float64
			for i := 0; i < k && len(live) > 20; i++ {
				j := rng.Intn(len(live))
				rows = append(rows, live[j].row)
				aux = append(aux, live[j].aux)
				live = append(live[:j], live[j+1:]...)
			}
			if rows == nil {
				continue
			}
			mutate("/v1/delete", rowJSON(rows, aux, refresh))
		default: // update one tuple, cross-shard moves included
			j := rng.Intn(len(live))
			old := live[j]
			nw := fuzzTuple{
				row: []string{fuzzCities[rng.Intn(len(fuzzCities))], fuzzProds[rng.Intn(len(fuzzProds))], fuzzYears[rng.Intn(len(fuzzYears))]},
				aux: float64(1 + rng.Intn(9)),
			}
			live[j] = nw
			body := fmt.Sprintf(`{"old_rows":[["%s"]],"new_rows":[["%s"]],"old_aux":[%g],"new_aux":[%g]`,
				strings.Join(old.row, `","`), strings.Join(nw.row, `","`), old.aux, nw.aux)
			if refresh {
				body += `,"refresh":true`
			}
			body += `}`
			mutate("/v1/update", body)
		}
		if !refresh && rng.Intn(2) == 0 {
			mutate("/v1/refresh", "")
		}
		checkReads()
	}

	// The router's deliberate divergences: wildcard-dim0 slices and coded
	// mutations are rejected rather than silently wrong.
	if rc, rb := rawDo(t, routed, http.MethodGet, "/v1/slice?cell="+url.QueryEscape("*,pen,*"), "", ""); rc != http.StatusBadRequest {
		t.Fatalf("router wildcard slice: %d %s, want 400", rc, rb)
	}
	if rc, rb := rawDo(t, routed, http.MethodPost, "/v1/query", "application/json", `{"values":[0,-1,-1]}`); rc != http.StatusBadRequest {
		t.Fatalf("router coded query on labeled cube: %d %s, want 400", rc, rb)
	}
}
