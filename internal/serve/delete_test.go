package serve

// Tests for the mutation serving surface: /v1/delete and /v1/update (shared
// append body validation, NDJSON streaming, static-cube conflicts, stats
// counters) and the token-bucket rate limit on mutating endpoints. Moved
// from cmd/ccserve when the server split into this package.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// TestDeleteUpdateEndpoints drives delete → update → refresh over HTTP and
// checks the served counts track the edited relation.
func TestDeleteUpdateEndpoints(t *testing.T) {
	cube, _ := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()

	// The fixture holds three (oslo,pen,2025) tuples; tombstone one.
	var dr deleteResponse
	if resp := postJSON(t, ts, "/v1/delete", appendRequest{
		Rows: [][]string{{"oslo", "pen", "2025"}},
	}, &dr); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if dr.Deleted != 1 || dr.Backlog != 1 || dr.Refreshed {
		t.Fatalf("delete = %+v", dr)
	}
	// Update one (paris,ink,2025) to (paris,ink,2024), with inline refresh.
	var ur updateResponse
	if resp := postJSON(t, ts, "/v1/update", updateRequest{
		OldRows: [][]string{{"paris", "ink", "2025"}},
		NewRows: [][]string{{"paris", "ink", "2024"}},
		Refresh: true,
	}, &ur); resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	if ur.Updated != 1 || !ur.Refreshed || ur.Generation != 1 || ur.Backlog != 0 {
		t.Fatalf("update = %+v", ur)
	}

	var qr queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,pen,2025"), &qr)
	if !qr.Found || qr.Count != 2 {
		t.Fatalf("oslo,pen,2025 after delete = %+v, want 2", qr)
	}
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("paris,ink,2024"), &qr)
	if !qr.Found || qr.Count != 1 {
		t.Fatalf("paris,ink,2024 after update = %+v, want 1", qr)
	}
	// The fixture held two (paris,ink,2025) tuples; one was updated away.
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("paris,ink,2025"), &qr)
	if !qr.Found || qr.Count != 1 {
		t.Fatalf("paris,ink,2025 after update = %+v, want 1", qr)
	}

	// NDJSON tombstone stream, same format as /v1/append.
	resp, err := ts.Client().Post(ts.URL+"/v1/delete", "application/x-ndjson",
		strings.NewReader("[\"rome\",\"pen\",\"2024\"]\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || dr.Deleted != 1 || dr.Backlog != 1 {
		t.Fatalf("ndjson delete: status=%d resp=%+v", resp.StatusCode, dr)
	}
	// The refresh response reports the tombstones it folded.
	var rr refreshResponse
	postJSON(t, ts, "/v1/refresh", struct{}{}, &rr)
	if rr.Deleted != 1 || rr.Appended != 0 {
		t.Fatalf("refresh after tombstone = %+v, want 1 deleted", rr)
	}

	// Shared validation with /v1/append: both or neither body form is 400,
	// and a tombstone for an absent tuple is 400 with a clear error.
	if resp := postJSON(t, ts, "/v1/delete", appendRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty delete body: %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts, "/v1/delete", appendRequest{
		Rows:   [][]string{{"oslo", "pen", "2025"}},
		Values: [][]int32{{0, 0, 0}},
	}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both-forms delete body: %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if resp := postJSON(t, ts, "/v1/delete", appendRequest{
		Rows: [][]string{{"oslo", "pen", "1999"}},
	}, &er); resp.StatusCode != http.StatusBadRequest || !strings.Contains(er.Error, "no such tuple") {
		t.Fatalf("absent tombstone: %d %q, want 400 naming the miss", resp.StatusCode, er.Error)
	}
	if resp := postJSON(t, ts, "/v1/update", updateRequest{
		OldRows:   [][]string{{"oslo", "pen", "2025"}},
		NewRows:   [][]string{{"oslo", "pen", "2026"}},
		OldValues: [][]int32{{0, 0, 0}},
		NewValues: [][]int32{{0, 0, 1}},
	}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed-form update body: %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts, "/v1/update", updateRequest{
		OldRows: [][]string{{"oslo", "pen", "2025"}},
		NewRows: [][]string{},
	}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched update arity: %d, want 400", resp.StatusCode)
	}

	// Stats count the new endpoints and no rate limiting happened.
	var st statsResponse
	getJSON(t, ts, "/v1/stats", &st)
	if st.Requests["delete"] != 5 || st.Requests["update"] != 3 {
		t.Fatalf("request counters = %+v", st.Requests)
	}
	if st.RateLimited != 0 {
		t.Fatalf("rate_limited = %d on an unlimited server", st.RateLimited)
	}
}

// TestMutateStaticCubeConflict pins 409 for delete/update against a
// snapshot-loaded cube, like append.
func TestMutateStaticCubeConflict(t *testing.T) {
	cube, _ := testCube(t, 1)
	path := saveTo(t, cube)
	loaded := loadCube(t, path)
	ts := httptest.NewServer(newMux(loaded, path, 0))
	defer ts.Close()
	if resp := postJSON(t, ts, "/v1/delete", appendRequest{Rows: [][]string{{"oslo", "pen", "2025"}}}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete on static cube: %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, ts, "/v1/update", updateRequest{
		OldRows: [][]string{{"oslo", "pen", "2025"}},
		NewRows: [][]string{{"oslo", "ink", "2025"}},
	}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("update on static cube: %d, want 409", resp.StatusCode)
	}
}

// TestRateLimit pins the token bucket on mutating endpoints: burst spends,
// over-budget mutations get 429 with a Retry-After hint, read endpoints
// stay unlimited, and /v1/stats counts the turn-aways.
func TestRateLimit(t *testing.T) {
	cube, _ := testCube(t, 1)
	// 0.001 tokens/second, burst 1: the first mutation passes, every further
	// one inside the test window is turned away.
	ts := httptest.NewServer(newMux(cube, "", 0.001))
	defer ts.Close()

	if resp := postJSON(t, ts, "/v1/refresh", struct{}{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first mutation: %d, want 200 (burst)", resp.StatusCode)
	}
	rejected := 0
	for _, call := range []func() *http.Response{
		func() *http.Response { return postJSON(t, ts, "/v1/refresh", struct{}{}, nil) },
		func() *http.Response {
			return postJSON(t, ts, "/v1/append", appendRequest{Rows: [][]string{{"oslo", "pen", "2025"}}}, nil)
		},
		func() *http.Response {
			return postJSON(t, ts, "/v1/delete", appendRequest{Rows: [][]string{{"oslo", "pen", "2025"}}}, nil)
		},
		func() *http.Response {
			return postJSON(t, ts, "/v1/update", updateRequest{
				OldRows: [][]string{{"oslo", "pen", "2025"}}, NewRows: [][]string{{"oslo", "ink", "2025"}},
			}, nil)
		},
		func() *http.Response { return postJSON(t, ts, "/v1/reload", reloadRequest{}, nil) },
	} {
		resp := call()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-budget mutation: %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		rejected++
	}
	// Reads are never limited.
	for i := 0; i < 5; i++ {
		var qr queryResponse
		if resp := getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,*,*"), &qr); resp.StatusCode != http.StatusOK {
			t.Fatalf("read under rate limit: %d", resp.StatusCode)
		}
	}
	var st statsResponse
	getJSON(t, ts, "/v1/stats", &st)
	if st.RateLimited != int64(rejected) {
		t.Fatalf("rate_limited = %d, want %d", st.RateLimited, rejected)
	}
	// The bucket's arithmetic: a sub-token balance reports the wait until
	// the next whole token.
	b := newTokenBucket(2)
	for ok := true; ok; ok, _ = b.take() {
	}
	if ok, retry := b.take(); ok || retry <= 0 {
		t.Fatalf("drained bucket take = (%v, %v), want a positive wait", ok, retry)
	}
}
