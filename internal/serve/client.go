package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"ccubing/internal/obs"
)

// httpShard is a Shard backed by a remote ccserve worker over its own HTTP
// API: exactly what a router needs to stand in front of workers it did not
// start. Responses decode into the shared wire types and re-encode on the
// router's side of the wire byte-identically (encoding/json's shortest
// round-trip float form is stable through a decode/encode cycle), which is
// what keeps routed single-shard answers indistinguishable from the worker's
// own.
type httpShard struct {
	base   string // "http://host:port", no trailing slash
	client *http.Client
}

// Dial wraps a worker's base URL as a Shard. The scheme defaults to http://
// when absent; no request is made — NewRouter's metadata fetch is the
// reachability check.
func Dial(baseURL string) (Shard, error) {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("bad shard URL %q: %w", baseURL, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("bad shard URL %q: no host", baseURL)
	}
	return &httpShard{
		base:   strings.TrimRight(u.String(), "/"),
		client: &http.Client{Timeout: 60 * time.Second},
	}, nil
}

// Addr reports the worker's base URL — the router's stats name each worker
// entry with it.
func (h *httpShard) Addr() string { return h.base }

// traceID extracts the request ID to forward; "" (no header sent) when the
// call is not part of a traced request.
func traceID(tr *obs.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.ID
}

// do runs one request against the worker and decodes the answer into out. A
// non-empty rid rides the X-CCubing-Request-ID header, so the worker joins
// the router's trace instead of minting a fresh ID. A transport failure is a
// 502 (the worker is unreachable, not wrong); a non-200 worker answer
// decodes back into a StatusError carrying the worker's status and message,
// so shard-side validation and conflicts surface to the router's caller
// unchanged.
func (h *httpShard) do(method, path string, body io.Reader, contentType, rid string, out any) error {
	req, err := http.NewRequest(method, h.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if rid != "" {
		req.Header.Set(obs.RequestIDHeader, rid)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return statusErrorf(http.StatusBadGateway, "shard %s: %v", h.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
			e.Error = fmt.Sprintf("shard %s: HTTP %d", h.base, resp.StatusCode)
		}
		return &StatusError{Code: resp.StatusCode, Msg: e.Error}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return statusErrorf(http.StatusBadGateway, "shard %s: bad response: %v", h.base, err)
	}
	return nil
}

func (h *httpShard) postJSON(path, rid string, in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return h.do(http.MethodPost, path, bytes.NewReader(b), "application/json", rid, out)
}

func (h *httpShard) Meta() (cubeResponse, error) {
	var out cubeResponse
	err := h.do(http.MethodGet, "/v1/cube", nil, "", "", &out)
	return out, err
}

func (h *httpShard) Query(req queryRequest) (queryResponse, error) {
	var out queryResponse
	err := h.postJSON("/v1/query", traceID(req.trace), req, &out)
	return out, err
}

func (h *httpShard) Slice(req queryRequest) (sliceResponse, error) {
	var out sliceResponse
	err := h.postJSON("/v1/slice", traceID(req.trace), req, &out)
	return out, err
}

func (h *httpShard) Aggregate(req aggregateRequest) (aggregateResponse, error) {
	var out aggregateResponse
	err := h.postJSON("/v1/aggregate", traceID(req.trace), req, &out)
	return out, err
}

func (h *httpShard) Append(req appendRequest) (appendResponse, error) {
	var out appendResponse
	err := h.postJSON("/v1/append", traceID(req.trace), req, &out)
	return out, err
}

func (h *httpShard) Delete(req appendRequest) (deleteResponse, error) {
	var out deleteResponse
	err := h.postJSON("/v1/delete", traceID(req.trace), req, &out)
	return out, err
}

func (h *httpShard) Update(req updateRequest) (updateResponse, error) {
	var out updateResponse
	err := h.postJSON("/v1/update", traceID(req.trace), req, &out)
	return out, err
}

func (h *httpShard) AppendStream(r io.Reader) (appendResponse, error) {
	var out appendResponse
	err := h.do(http.MethodPost, "/v1/append", r, "application/x-ndjson", "", &out)
	return out, err
}

func (h *httpShard) DeleteStream(r io.Reader) (deleteResponse, error) {
	var out deleteResponse
	err := h.do(http.MethodPost, "/v1/delete", r, "application/x-ndjson", "", &out)
	return out, err
}

func (h *httpShard) Refresh() (refreshResponse, error) {
	var out refreshResponse
	err := h.do(http.MethodPost, "/v1/refresh", nil, "", "", &out)
	return out, err
}

func (h *httpShard) Stats() (statsResponse, error) {
	var out statsResponse
	err := h.do(http.MethodGet, "/v1/stats", nil, "", "", &out)
	return out, err
}
