package serve

// Tests for the live-refresh serving surface: /v1/append, /v1/refresh,
// /v1/reload, /v1/stats, plus request hygiene (405 with an Allow header on
// wrong-method hits, 413 on oversized bodies). Moved from cmd/ccserve when
// the server split into this package.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccubing"
)

// TestAppendRefreshEndToEnd drives append → refresh → query over HTTP and
// checks the served counts track the grown relation.
func TestAppendRefreshEndToEnd(t *testing.T) {
	cube, _ := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()

	var before queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,*,*"), &before)
	if !before.Found || before.Count != 6 {
		t.Fatalf("pre-append oslo = %+v", before)
	}

	// Batch append by labels, new city included; backlog grows, store not yet.
	var ar appendResponse
	postJSON(t, ts, "/v1/append", appendRequest{
		Rows: [][]string{{"oslo", "pen", "2026"}, {"lisbon", "ink", "2026"}},
	}, &ar)
	if ar.Appended != 2 || ar.Backlog != 2 || ar.Refreshed || ar.Generation != 0 {
		t.Fatalf("append = %+v", ar)
	}
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,*,*"), &before)
	if before.Count != 6 {
		t.Fatalf("append must not change served counts before refresh: %+v", before)
	}

	// Refresh folds the delta in; the response carries the partition split.
	var rr refreshResponse
	postJSON(t, ts, "/v1/refresh", struct{}{}, &rr)
	if rr.Generation != 1 || rr.Appended != 2 {
		t.Fatalf("refresh = %+v", rr)
	}
	if rr.PartitionsRecomputed >= rr.PartitionsTotal {
		t.Fatalf("refresh recomputed every partition: %+v", rr)
	}
	var after queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,*,*"), &after)
	if !after.Found || after.Count != 7 {
		t.Fatalf("post-refresh oslo = %+v, want 7", after)
	}
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("lisbon,*,*"), &after)
	if !after.Found || after.Count != 1 {
		t.Fatalf("post-refresh lisbon = %+v, want 1", after)
	}

	// Append with inline refresh: one round trip.
	postJSON(t, ts, "/v1/append", appendRequest{
		Rows:    [][]string{{"lisbon", "pen", "2026"}},
		Refresh: true,
	}, &ar)
	if !ar.Refreshed || ar.Generation != 2 || ar.Backlog != 0 {
		t.Fatalf("append+refresh = %+v", ar)
	}

	// Metadata and stats reflect the live state.
	var meta cubeResponse
	getJSON(t, ts, "/v1/cube", &meta)
	if meta.Generation != 2 || !meta.Live || meta.SourceRows != 16 {
		t.Fatalf("metadata = %+v", meta)
	}
	var st statsResponse
	getJSON(t, ts, "/v1/stats", &st)
	if st.Generation != 2 || st.Refreshes != 2 || st.Backlog != 0 || !st.Live {
		t.Fatalf("stats = %+v", st)
	}
	if st.Requests["query"] == 0 || st.Requests["append"] != 2 || st.Requests["refresh"] != 1 {
		t.Fatalf("request counters = %+v", st.Requests)
	}
	if st.LastRefreshMs < 0 {
		t.Fatalf("refresh latency = %v", st.LastRefreshMs)
	}
}

// TestAppendNDJSONEndpoint streams NDJSON rows through /v1/append.
func TestAppendNDJSONEndpoint(t *testing.T) {
	cube, _ := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()
	body := "[\"oslo\",\"pen\",\"2025\"]\n[\"oslo\",\"pen\",\"2025\"]\n"
	resp, err := ts.Client().Post(ts.URL+"/v1/append", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar appendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ar.Appended != 2 || ar.Backlog != 2 {
		t.Fatalf("ndjson append: status=%d resp=%+v", resp.StatusCode, ar)
	}
	var rr refreshResponse
	postJSON(t, ts, "/v1/refresh", struct{}{}, &rr)
	var qr queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,pen,2025"), &qr)
	if qr.Count != 5 { // 3 in the base relation + 2 appended
		t.Fatalf("oslo,pen,2025 = %+v, want 5", qr)
	}
}

// TestStaticCubeConflicts pins 409 on append/refresh against a
// snapshot-loaded cube.
func TestStaticCubeConflicts(t *testing.T) {
	cube, _ := testCube(t, 1)
	path := saveTo(t, cube)
	loaded := loadCube(t, path)
	ts := httptest.NewServer(newMux(loaded, path, 0))
	defer ts.Close()
	if resp := postJSON(t, ts, "/v1/append", appendRequest{Values: [][]int32{{0, 0, 0}}}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("append on static cube: %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, ts, "/v1/refresh", struct{}{}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("refresh on static cube: %d, want 409", resp.StatusCode)
	}
}

// TestReloadEndpoint covers the warm snapshot reload path: a refreshed cube
// is saved, a server over the stale snapshot reloads it, and validation
// rejects foreign snapshots and generation regressions.
func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "stale.ccube")
	fresher := filepath.Join(dir, "fresh.ccube")

	cube, _ := testCube(t, 1)
	save := func(c *ccubing.Cube, path string) {
		t.Helper()
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	save(cube, stale)
	if _, err := cube.Append([][]string{{"oslo", "pen", "2030"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Refresh(); err != nil {
		t.Fatal(err)
	}
	save(cube, fresher)

	served := loadCube(t, stale)
	ts := httptest.NewServer(newMux(served, stale, 0))
	defer ts.Close()

	// Reload the fresher snapshot by explicit path.
	var rl reloadResponse
	if resp := postJSON(t, ts, "/v1/reload", reloadRequest{Path: fresher}, &rl); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d", resp.StatusCode)
	}
	if rl.Generation != 1 || rl.SourceRows != 14 {
		t.Fatalf("reload = %+v", rl)
	}
	var qr queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,pen,2030"), &qr)
	if !qr.Found || qr.Count != 1 {
		t.Fatalf("reloaded cube misses the refreshed cell: %+v", qr)
	}

	// Generation regression (back to the stale gen-0 snapshot) is rejected.
	if resp := postJSON(t, ts, "/v1/reload", reloadRequest{Path: stale}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("regressing reload: %d, want 409", resp.StatusCode)
	}

	// A reload over a live cube with buffered appends is rejected without
	// force (the backlog would be silently discarded).
	liveTS := httptest.NewServer(newMux(cube, fresher, 0))
	defer liveTS.Close()
	var ar appendResponse
	postJSON(t, liveTS, "/v1/append", appendRequest{Rows: [][]string{{"oslo", "pen", "2031"}}}, &ar)
	if ar.Backlog != 1 {
		t.Fatalf("backlog = %d, want 1", ar.Backlog)
	}
	if resp := postJSON(t, liveTS, "/v1/reload", reloadRequest{Path: fresher}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload over backlog: %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, liveTS, "/v1/reload", reloadRequest{Path: fresher, Force: true}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("forced reload over backlog: %d, want 200", resp.StatusCode)
	}

	// A snapshot of a different cube is rejected.
	other, err := ccubing.NewDataset([]string{"x", "y"}, [][]string{{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	otherCube, err := ccubing.Materialize(other, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "foreign.ccube")
	save(otherCube, foreign)
	if resp := postJSON(t, ts, "/v1/reload", reloadRequest{Path: foreign}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign reload: %d, want 409", resp.StatusCode)
	}

	// Empty body defaults to the startup snapshot path... which now regresses.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/reload", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("default-path reload: %d, want 409 (stale snapshot)", resp.StatusCode)
	}
}

// TestMethodNotAllowed pins 405 + Allow on wrong-method hits for every v1
// endpoint.
func TestMethodNotAllowed(t *testing.T) {
	cube, _ := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()
	for _, tc := range []struct{ method, path string }{
		{http.MethodDelete, "/v1/query"},
		{http.MethodPut, "/v1/slice"},
		{http.MethodDelete, "/v1/aggregate"},
		{http.MethodGet, "/v1/append"},
		{http.MethodGet, "/v1/delete"},
		{http.MethodGet, "/v1/update"},
		{http.MethodGet, "/v1/refresh"},
		{http.MethodGet, "/v1/reload"},
		{http.MethodPost, "/v1/stats"},
		{http.MethodPost, "/v1/cube"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") == "" {
			t.Fatalf("%s %s: 405 without an Allow header", tc.method, tc.path)
		}
	}
}

// TestOversizedBody pins 413 via http.MaxBytesReader on the POST endpoints.
func TestOversizedBody(t *testing.T) {
	cube, _ := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()
	// A > 1 MiB query body blows the ceiling mid-decode.
	big := `{"cell": ["` + strings.Repeat("x", maxQueryBody+1024) + `","*","*"]}`
	for _, path := range []string{"/v1/query", "/v1/slice", "/v1/aggregate"} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with %d bytes: %d, want 413", path, len(big), resp.StatusCode)
		}
	}
}
