package serve

// Shared test fixtures and HTTP helpers for the serving-layer tests.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"ccubing"
)

// newMux serves a single in-process cube — the classic ccserve wiring the
// pre-split tests were written against.
func newMux(cube *ccubing.Cube, snapshot string, rate float64) http.Handler {
	l := NewLocal(cube)
	l.SetSnapshot(snapshot)
	return NewServer(l, Config{Rate: rate}).Handler()
}

// testCube materializes a small labeled cube.
func testCube(t *testing.T, minsup int64) (*ccubing.Cube, *ccubing.Dataset) {
	t.Helper()
	rows := [][]string{}
	for _, city := range []string{"oslo", "oslo", "oslo", "paris", "paris", "rome"} {
		for _, prod := range []string{"pen", "ink"} {
			rows = append(rows, []string{city, prod, "2025"})
		}
	}
	rows = append(rows, []string{"rome", "pen", "2024"})
	ds, err := ccubing.NewDataset([]string{"city", "product", "year"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: minsup})
	if err != nil {
		t.Fatal(err)
	}
	return cube, ds
}

// loadCube reads a cube snapshot back from disk (yielding a static cube,
// like ccserve -snapshot).
func loadCube(t *testing.T, path string) *ccubing.Cube {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cube, err := ccubing.LoadCube(bufio.NewReader(f))
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// saveTo writes a cube snapshot into a temp file and returns the path.
func saveTo(t *testing.T, cube *ccubing.Cube) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "cube*.ccube")
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Name()
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
	return resp
}

func mustCode(t *testing.T, cube *ccubing.Cube, dim int, label string) int32 {
	t.Helper()
	labels := make([]string, cube.NumDims())
	for i := range labels {
		labels[i] = "*"
	}
	labels[dim] = label
	vals, err := cube.ParseCell(labels)
	if err != nil {
		t.Fatal(err)
	}
	return vals[dim]
}

func mustVals(t *testing.T, cube *ccubing.Cube, labels ...string) []int32 {
	t.Helper()
	vals, err := cube.ParseCell(labels)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}
