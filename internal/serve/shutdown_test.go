package serve

// Regression test for graceful-shutdown durability: ccserve's shutdown path
// (cmd/ccserve main) drains in-flight requests, then closes the served cube,
// which syncs the write-ahead log — so delta rows accepted over HTTP but not
// yet folded by a refresh survive a restart against the same base relation.

import (
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"ccubing"
)

func TestShutdownPersistsBacklog(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "delta.wal")

	// boot materializes the same base relation and attaches the same WAL —
	// exactly what restarting `ccserve -csv ... -wal delta.wal` does.
	boot := func() *ccubing.Cube {
		t.Helper()
		cube, _ := testCube(t, 1)
		if err := cube.AutoRefresh(ccubing.AutoRefreshOptions{WAL: wal}); err != nil {
			t.Fatal(err)
		}
		return cube
	}

	cube := boot()
	ts := httptest.NewServer(newMux(cube, "", 0))
	// The WAL logs coded rows, so replay needs labels the base relation's
	// dictionaries already know (novel labels live only in the in-memory
	// dictionary that dies with the process).
	var ar appendResponse
	postJSON(t, ts, "/v1/append", appendRequest{
		Rows: [][]string{{"oslo", "pen", "2024"}, {"rome", "ink", "2025"}},
	}, &ar)
	if ar.Appended != 2 || ar.Backlog != 2 || ar.Refreshed {
		t.Fatalf("append = %+v", ar)
	}

	// Graceful shutdown: the HTTP server drains first, then the cube closes,
	// syncing the buffered rows to the WAL (the ccserve SIGTERM sequence).
	ts.Close()
	if err := cube.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the pending rows come back as backlog, and a refresh folds
	// them into served counts.
	reborn := boot()
	defer reborn.Close()
	ts2 := httptest.NewServer(newMux(reborn, "", 0))
	defer ts2.Close()
	var st statsResponse
	getJSON(t, ts2, "/v1/stats", &st)
	if st.Backlog != 2 {
		t.Fatalf("backlog after restart = %d, want 2", st.Backlog)
	}
	var rr refreshResponse
	postJSON(t, ts2, "/v1/refresh", struct{}{}, &rr)
	if rr.Appended != 2 {
		t.Fatalf("refresh after restart = %+v, want 2 appended", rr)
	}
	// The fixture holds one (rome,ink,2025) tuple; the replayed row makes 2.
	var qr queryResponse
	getJSON(t, ts2, "/v1/query?cell="+url.QueryEscape("rome,ink,2025"), &qr)
	if !qr.Found || qr.Count != 2 {
		t.Fatalf("rome,ink,2025 after restart+refresh = %+v, want 2", qr)
	}
}
