package serve

// Unit tests for the scatter-gather router over in-process shard workers:
// topology validation, route-vs-scatter decisions, merge semantics, mutation
// splitting, and the partial-failure contract.

import (
	"net/http"
	"strings"
	"testing"

	"ccubing"
	"ccubing/internal/route"
)

// routerDataset builds a labeled relation over 8 cities whose dimension-0
// owners cover every shard for n ∈ {1, 2, 4} (verified against route.Owner:
// paris→0, tokyo→1, oslo→2, cairo→3 at n=4). City i contributes i+1 tuples,
// so per-city counts are distinct and rankings deterministic.
func routerDataset(t *testing.T) *ccubing.Dataset {
	t.Helper()
	cities := []string{"oslo", "paris", "rome", "lima", "cairo", "tokyo", "sydney", "quito"}
	prods := []string{"pen", "ink"}
	years := []string{"2024", "2025"}
	var rows [][]string
	for i, city := range cities {
		for j := 0; j <= i; j++ {
			rows = append(rows, []string{city, prods[j%2], years[(i+j)%2]})
		}
	}
	ds, err := ccubing.NewDataset([]string{"city", "product", "year"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// shardedLocals splits ds by dimension-0 ownership into n in-process workers.
func shardedLocals(t *testing.T, ds *ccubing.Dataset, minsup int64, n int) []Shard {
	t.Helper()
	shards := make([]Shard, n)
	for i := range shards {
		sub, err := ds.Shard(0, i, n)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		cube, err := ccubing.Materialize(sub, ccubing.Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLocal(cube)
		l.SetShard(i, n)
		shards[i] = l
	}
	return shards
}

func newTestRouter(t *testing.T, ds *ccubing.Dataset, minsup int64, n int) *Router {
	t.Helper()
	rt, err := NewRouter(shardedLocals(t, ds, minsup, n))
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// globalLocal serves the unsharded relation — the reference answers.
func globalLocal(t *testing.T, ds *ccubing.Dataset, minsup int64) *Local {
	t.Helper()
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: minsup})
	if err != nil {
		t.Fatal(err)
	}
	return NewLocal(cube)
}

// TestNewRouterValidation pins topology-mismatch rejection.
func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(nil); err == nil {
		t.Fatal("empty shard list must fail")
	}
	ds := routerDataset(t)
	shards := shardedLocals(t, ds, 1, 2)

	// A worker at a different iceberg threshold cannot merge.
	sub, err := ds.Shard(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cube2, err := ccubing.Materialize(sub, ccubing.Options{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter([]Shard{shards[0], NewLocal(cube2)}); err == nil || !strings.Contains(err.Error(), "minsup") {
		t.Fatalf("minsup mismatch: %v", err)
	}

	// A coded worker next to a labeled one cannot merge.
	coded, err := ccubing.Synthetic(ccubing.SyntheticConfig{T: 100, D: 3, C: 4, Skew: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	codedCube, err := ccubing.Materialize(coded, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter([]Shard{shards[0], NewLocal(codedCube)}); err == nil {
		t.Fatal("labeled/coded mismatch must fail")
	}

	// Different dimension names cannot merge.
	other, err := ccubing.NewDataset([]string{"a", "b", "c"}, [][]string{{"x", "y", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	otherCube, err := ccubing.Materialize(other, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter([]Shard{shards[0], NewLocal(otherCube)}); err == nil || !strings.Contains(err.Error(), "dimensions") {
		t.Fatalf("dimension mismatch: %v", err)
	}
}

// TestRouterQuery checks routed and scattered point queries agree with the
// unsharded store, closure merge included.
func TestRouterQuery(t *testing.T) {
	ds := routerDataset(t)
	global := globalLocal(t, ds, 1)
	for _, n := range []int{1, 2, 4} {
		rt := newTestRouter(t, ds, 1, n)
		for _, cell := range [][]string{
			{"oslo", "*", "*"}, // routed: single-tuple city, closure fully bound
			{"cairo", "pen", "*"},
			{"*", "pen", "*"}, // scattered: every shard holds pens
			{"*", "*", "2024"},
			{"*", "ink", "2025"},
			{"*", "*", "*"},
			{"quito", "*", "2024"},
			{"atlantis", "*", "*"}, // routed miss
			{"*", "quill", "*"},    // scattered miss
		} {
			want, werr := global.Query(queryRequest{Cell: cell})
			got, gerr := rt.Query(queryRequest{Cell: cell})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("n=%d %v: err %v vs %v", n, cell, gerr, werr)
			}
			if got.Found != want.Found || got.Count != want.Count {
				t.Fatalf("n=%d %v = %+v, want %+v", n, cell, got, want)
			}
			if strings.Join(got.Closure, ",") != strings.Join(want.Closure, ",") {
				t.Fatalf("n=%d %v closure = %v, want %v", n, cell, got.Closure, want.Closure)
			}
		}
	}
}

// TestRouterSlice pins the routing-dimension contract: bound slices route and
// match the unsharded store; wildcard slices are rejected with guidance.
func TestRouterSlice(t *testing.T) {
	ds := routerDataset(t)
	global := globalLocal(t, ds, 1)
	rt := newTestRouter(t, ds, 1, 2)

	for _, city := range []string{"quito", "sydney", "rome"} {
		req := queryRequest{Cell: []string{city, "*", "*"}}
		want, err := global.Slice(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.Slice(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cells) != len(want.Cells) {
			t.Fatalf("%s slice: %d cells, want %d", city, len(got.Cells), len(want.Cells))
		}
		for i := range want.Cells {
			if strings.Join(got.Cells[i].Cell, ",") != strings.Join(want.Cells[i].Cell, ",") ||
				got.Cells[i].Count != want.Cells[i].Count {
				t.Fatalf("%s slice cell %d = %+v, want %+v", city, i, got.Cells[i], want.Cells[i])
			}
		}
	}

	_, err := rt.Slice(queryRequest{Cell: []string{"*", "pen", "*"}})
	if err == nil || !strings.Contains(err.Error(), "aggregate") {
		t.Fatalf("wildcard-dim0 slice: %v, want rejection pointing at /v1/aggregate", err)
	}
}

// TestRouterCodedValuesRejected pins the labeled-cube contract: dictionary
// codes are shard-local, so the coded forms cannot be routed.
func TestRouterCodedValuesRejected(t *testing.T) {
	rt := newTestRouter(t, routerDataset(t), 1, 2)
	if _, err := rt.Query(queryRequest{Values: []int32{0, ccubing.Star, ccubing.Star}}); err == nil || !strings.Contains(err.Error(), "shard-local") {
		t.Fatalf("coded query: %v", err)
	}
	if _, err := rt.Append(appendRequest{Values: [][]int32{{0, 0, 0}}}); err == nil || !strings.Contains(err.Error(), "shard-local") {
		t.Fatalf("coded append: %v", err)
	}
	if _, err := rt.Update(updateRequest{OldValues: [][]int32{{0, 0, 0}}, NewValues: [][]int32{{0, 0, 1}}}); err == nil || !strings.Contains(err.Error(), "shard-local") {
		t.Fatalf("coded update: %v", err)
	}
}

// TestRouterAggregate checks scattered rollups merge into the unsharded
// answers — keyed count summation, canonical ranking, and post-merge top-k.
func TestRouterAggregate(t *testing.T) {
	ds := routerDataset(t)
	global := globalLocal(t, ds, 1)
	for _, n := range []int{2, 4} {
		rt := newTestRouter(t, ds, 1, n)
		for _, req := range []aggregateRequest{
			{GroupBy: []string{"city"}},
			{GroupBy: []string{"product", "year"}},
			{Where: []string{"*", "pen|ink", "2024..2025"}, GroupBy: []string{"city"}},
			{Where: []string{"oslo|cairo", "*", "*"}, GroupBy: []string{"city"}}, // set on dim0 scatters
			{GroupBy: []string{"city"}, TopK: 3},
			{Where: []string{"tokyo", "*", "*"}, GroupBy: []string{"year"}}, // exact dim0 routes
			{},
		} {
			want, err := global.Aggregate(req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.Aggregate(req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Exact != want.Exact || len(got.Rows) != len(want.Rows) {
				t.Fatalf("n=%d %+v: %+v, want %+v", n, req, got, want)
			}
			for i := range want.Rows {
				if strings.Join(got.Rows[i].Cell, ",") != strings.Join(want.Rows[i].Cell, ",") ||
					got.Rows[i].Count != want.Rows[i].Count {
					t.Fatalf("n=%d %+v row %d = %+v, want %+v", n, req, i, got.Rows[i], want.Rows[i])
				}
			}
		}
	}
}

// TestRouterMutations drives append/delete/update through a 2-shard router,
// cross-shard update pairs included, and checks served counts after refresh.
func TestRouterMutations(t *testing.T) {
	rt := newTestRouter(t, routerDataset(t), 1, 2)

	// Append two rows owned by different shards (oslo→0, cairo→1 at n=2).
	ar, err := rt.Append(appendRequest{Rows: [][]string{{"oslo", "ink", "2025"}, {"cairo", "ink", "2025"}}})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 2 || ar.Backlog != 2 || ar.Refreshed {
		t.Fatalf("append = %+v", ar)
	}

	// Update with one same-shard pair (paris→rome, both shard 0) and one
	// cross-shard pair (oslo→cairo): the latter splits into delete+append.
	if route.Owner("paris", 2) != route.Owner("rome", 2) || route.Owner("oslo", 2) == route.Owner("cairo", 2) {
		t.Fatal("fixture owners moved; update test assumptions broken")
	}
	ur, err := rt.Update(updateRequest{
		OldRows: [][]string{{"paris", "pen", "2025"}, {"oslo", "pen", "2024"}},
		NewRows: [][]string{{"rome", "pen", "2025"}, {"cairo", "pen", "2024"}},
		Refresh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ur.Updated != 2 || !ur.Refreshed || ur.Backlog != 0 {
		t.Fatalf("update = %+v", ur)
	}

	// After the refresh: oslo lost its pen-2024 tuple but gained ink-2025;
	// cairo gained both an append and the moved tuple.
	check := func(cell []string, want int64, wantFound bool) {
		t.Helper()
		qr, err := rt.Query(queryRequest{Cell: cell})
		if err != nil {
			t.Fatal(err)
		}
		if qr.Found != wantFound || qr.Count != want {
			t.Fatalf("%v = %+v, want (%d,%v)", cell, qr, want, wantFound)
		}
	}
	check([]string{"oslo", "*", "*"}, 1, true)  // 1 base - 1 moved + 1 appended
	check([]string{"cairo", "*", "*"}, 7, true) // 5 base + 1 appended + 1 moved in
	check([]string{"paris", "*", "*"}, 1, true) // 2 base - 1 updated away
	check([]string{"rome", "*", "*"}, 4, true)  // 3 base + 1 updated in
	check([]string{"*", "*", "*"}, 38, true)    // 36 base + 2 appended

	// Delete the appended rows through the router, with inline refresh.
	dr, err := rt.Delete(appendRequest{
		Rows:    [][]string{{"oslo", "ink", "2025"}, {"cairo", "ink", "2025"}},
		Refresh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Deleted != 2 || !dr.Refreshed || dr.Backlog != 0 {
		t.Fatalf("delete = %+v", dr)
	}
	check([]string{"*", "*", "*"}, 36, true)
}

// TestRouterPartialFailure pins the mutation error contract: a scatter where
// some shard batches applied is a 500 naming the partial state; a scatter
// where every batch failed surfaces the shard's own error.
func TestRouterPartialFailure(t *testing.T) {
	ds := routerDataset(t)
	shards := shardedLocals(t, ds, 1, 2)

	// Replace shard 1 with a static (snapshot-loaded) twin: mutations 409.
	liveShard1 := shards[1].(*Local)
	staticCube := loadCube(t, saveTo(t, liveShard1.Cube()))
	shards[1] = NewLocal(staticCube)
	rt, err := NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}

	// Both-shard batch: shard 0 applies, shard 1 refuses → partial 500.
	_, err = rt.Append(appendRequest{Rows: [][]string{{"oslo", "pen", "2030"}, {"cairo", "pen", "2030"}}})
	if err == nil || !strings.Contains(err.Error(), "partial mutation") {
		t.Fatalf("partial append: %v", err)
	}
	if httpStatus(err) != http.StatusInternalServerError {
		t.Fatalf("partial append status = %d, want 500", httpStatus(err))
	}

	// Static-shard-only batch: every batch failed → the shard's 409 verbatim.
	_, err = rt.Append(appendRequest{Rows: [][]string{{"cairo", "pen", "2030"}}})
	if err == nil || httpStatus(err) != http.StatusConflict {
		t.Fatalf("all-failed append: %v (status %d), want the shard's 409", err, httpStatus(err))
	}
}

// TestRouterNDJSON pins the router's all-or-nothing stream contract: any bad
// line rejects the whole stream before a single row is forwarded.
func TestRouterNDJSON(t *testing.T) {
	rt := newTestRouter(t, routerDataset(t), 1, 2)

	_, err := rt.AppendStream(strings.NewReader("[\"oslo\",\"pen\",\"2025\"]\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad stream: %v, want a line-2 reject", err)
	}
	st, err := rt.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Backlog != 0 {
		t.Fatalf("backlog = %d after a rejected stream, want 0", st.Backlog)
	}
	if _, err := rt.AppendStream(strings.NewReader("\n\n")); err == nil {
		t.Fatal("empty stream must fail")
	}

	ar, err := rt.AppendStream(strings.NewReader("[\"oslo\",\"pen\",\"2025\"]\n[\"cairo\",\"pen\",\"2025\"]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 2 || ar.Backlog != 2 {
		t.Fatalf("stream append = %+v", ar)
	}
	dr, err := rt.DeleteStream(strings.NewReader("[\"oslo\",\"pen\",\"2025\"]\n[\"cairo\",\"pen\",\"2025\"]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if dr.Deleted != 2 {
		t.Fatalf("stream delete = %+v", dr)
	}
	if _, err := rt.Refresh(); err != nil {
		t.Fatal(err)
	}
	qr, err := rt.Query(queryRequest{Cell: []string{"*", "*", "*"}})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Count != 36 {
		t.Fatalf("net count after stream append+delete = %d, want 36", qr.Count)
	}
}

// TestRouterMetaStats checks the merged metadata: cells and rows sum,
// generation is the lagging shard's, and per-worker stats ride along.
func TestRouterMetaStats(t *testing.T) {
	ds := routerDataset(t)
	rt := newTestRouter(t, ds, 1, 4)
	meta, err := rt.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.SourceRows != int64(ds.NumTuples()) || meta.Shards != 4 || !meta.Live || meta.Generation != 0 {
		t.Fatalf("meta = %+v", meta)
	}
	st, err := rt.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 || st.SourceRows != int64(ds.NumTuples()) {
		t.Fatalf("stats = %+v", st)
	}

	// Refresh one shard directly: the router's generation stays at the
	// lagging shards' 0.
	if _, err := rt.shards[0].Append(appendRequest{Rows: [][]string{{"paris", "pen", "2024"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.shards[0].Refresh(); err != nil {
		t.Fatal(err)
	}
	meta, err = rt.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 0 {
		t.Fatalf("generation = %d after one shard refreshed, want the lagging 0", meta.Generation)
	}
}

// BenchmarkRouterAggregate measures the scatter-merge path: a group-by over
// 4 in-process shards, merged and re-ranked by the router.
func BenchmarkRouterAggregate(b *testing.B) {
	cities := []string{"oslo", "paris", "rome", "lima", "cairo", "tokyo", "sydney", "quito"}
	prods := []string{"pen", "ink", "clip", "tape"}
	years := []string{"2022", "2023", "2024", "2025"}
	var rows [][]string
	for i := 0; i < 4096; i++ {
		rows = append(rows, []string{cities[i%len(cities)], prods[(i/3)%len(prods)], years[(i/7)%len(years)]})
	}
	ds, err := ccubing.NewDataset([]string{"city", "product", "year"}, rows)
	if err != nil {
		b.Fatal(err)
	}
	const n = 4
	shards := make([]Shard, n)
	for i := range shards {
		sub, err := ds.Shard(0, i, n)
		if err != nil {
			b.Fatal(err)
		}
		cube, err := ccubing.Materialize(sub, ccubing.Options{MinSup: 1})
		if err != nil {
			b.Fatal(err)
		}
		shards[i] = NewLocal(cube)
	}
	rt, err := NewRouter(shards)
	if err != nil {
		b.Fatal(err)
	}
	req := aggregateRequest{GroupBy: []string{"city", "product"}, TopK: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := rt.Aggregate(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Rows) != 10 {
			b.Fatalf("rows = %d", len(resp.Rows))
		}
	}
}
