// Package serve is ccserve's serving layer, factored out of the command so
// one HTTP surface runs in three roles:
//
//   - single: a Local shard over one in-process cube — the classic ccserve;
//   - shard worker: the same Local over a cube materialized from one shard
//     of the relation (Dataset.Shard), owning the leading-dimension
//     components that hash to it;
//   - router: a Router scatter-gathering over shard workers, answering the
//     identical HTTP API.
//
// The split rests on the paper's Sec. 6.3 partition argument: sharding
// tuples on one dimension makes every closed cell that fixes the dimension
// shard-local, so queries binding it route to one worker and answer
// byte-identically to a single store. Only wildcard-on-the-routing-dimension
// work scatters.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"ccubing/internal/obs"
)

// Shard is the serving surface the HTTP layer runs over: one in-process cube
// (Local), a remote worker (Dial), or a scatter-gather router over many
// (Router). Methods speak the wire types directly, so a Server can front any
// of them and a Router can treat its backends uniformly.
//
// Errors returned by a Shard may be *StatusError to pick the HTTP status;
// anything else maps to 400 (or 413 for a body-limit breach).
type Shard interface {
	Meta() (cubeResponse, error)
	Query(queryRequest) (queryResponse, error)
	Slice(queryRequest) (sliceResponse, error)
	Aggregate(aggregateRequest) (aggregateResponse, error)
	Append(appendRequest) (appendResponse, error)
	Delete(appendRequest) (deleteResponse, error)
	Update(updateRequest) (updateResponse, error)
	// AppendStream and DeleteStream consume the NDJSON mutation format (one
	// tuple per line, see ccubing.AppendNDJSON).
	AppendStream(io.Reader) (appendResponse, error)
	DeleteStream(io.Reader) (deleteResponse, error)
	Refresh() (refreshResponse, error)
	Stats() (statsResponse, error)
}

// reloader is the optional warm snapshot-reload surface: only Local
// implements it (a router has no single snapshot to load); the Server
// type-asserts and answers 501 otherwise.
type reloader interface {
	Reload(reloadRequest) (reloadResponse, error)
}

// metricsProvider is the optional per-shard metrics surface: a Local or
// Router that owns an obs.Registry exposes it here, and the Server's
// /metrics handler merges it into the scrape alongside the transport
// registry and obs.Default.
type metricsProvider interface {
	MetricsRegistry() *obs.Registry
}

// healther is the optional shard-role health surface behind GET /v1/health.
// The Server fills the transport fields (status, uptime, Go version); the
// shard reports what it is.
type healther interface {
	Health() healthResponse
}

// addresser identifies a remote shard by its base URL — implemented by
// Dial'd workers, used by the router's stats to name each worker entry.
type addresser interface {
	Addr() string
}

// StatusError is an error carrying the HTTP status it should be served
// with. Shards return it to make validation (400), conflicts (409), refresh
// failures (500), unreachable workers (502) and unsupported router
// operations (501) survive the Shard interface — and a round trip through a
// remote worker, whose non-2xx responses decode back into a StatusError.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string { return e.Msg }

// statusErrorf builds a StatusError like fmt.Errorf.
func statusErrorf(code int, format string, args ...any) *StatusError {
	return &StatusError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// httpStatus maps a Shard error to its HTTP status: an explicit
// StatusError's code, 413 when the request body blew the MaxBytesReader
// ceiling, 400 otherwise.
func httpStatus(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// mutateError wraps a failed JSON-batch mutation. Batch validation is
// all-or-nothing, so n > 0 with an error means the rows ARE buffered and the
// failure was the triggered refresh — a server-side 500 naming the buffered
// count, so clients don't retry and double-buffer the batch. n == 0 is the
// usual request rejection.
func mutateError(n int, err error) error {
	if n > 0 {
		return statusErrorf(http.StatusInternalServerError,
			"%d rows buffered, but the triggered refresh failed (do not resend the batch): %v", n, err)
	}
	return err
}

// queryRequest is the JSON body of /v1/query and /v1/slice. Exactly one of
// Cell (labels, "*" = wildcard) and Values (dictionary codes, -1 = wildcard)
// must be set.
type queryRequest struct {
	Cell   []string `json:"cell,omitempty"`
	Values []int32  `json:"values,omitempty"`
	Limit  int      `json:"limit,omitempty"`

	// trace carries the request's ID and stage timings through the shard
	// stack in-process. Unexported: it never crosses the wire as JSON — a
	// remote worker gets the ID via the X-CCubing-Request-ID header instead
	// (see httpShard.do) and starts its own trace for its local stages.
	trace *obs.Trace
}

type queryResponse struct {
	Found   bool     `json:"found"`
	Count   int64    `json:"count"`
	Closure []string `json:"closure,omitempty"`
	Aux     *float64 `json:"aux,omitempty"`
	// AuxRaw is the stored mergeable form of the measure, set only where it
	// differs from Aux: on avg cubes with stored aggregates it is the running
	// sum whose presented mean is Aux. Routers merge shard answers through
	// AuxRaw (sums add exactly; means do not) and present once at the end.
	AuxRaw *float64 `json:"aux_raw,omitempty"`
}

type sliceCell struct {
	Cell  []string `json:"cell"`
	Count int64    `json:"count"`
	Aux   *float64 `json:"aux,omitempty"`
}

type sliceResponse struct {
	Cells     []sliceCell `json:"cells"`
	Truncated bool        `json:"truncated"`
}

type cubeResponse struct {
	Dims        int      `json:"dims"`
	Names       []string `json:"names"`
	Cells       int64    `json:"cells"`
	Cuboids     int      `json:"cuboids"`
	MinSup      int64    `json:"minsup"`
	Labeled     bool     `json:"labeled"`
	Measure     bool     `json:"measure"`
	MeasureKind string   `json:"measure_kind"`
	SizeByte    int64    `json:"size_bytes"`
	Generation  uint64   `json:"generation"`
	SourceRows  int64    `json:"source_rows"`
	Live        bool     `json:"live"` // accepts /v1/append + /v1/refresh
	// Shard is "index/count" on a worker serving one shard of a topology.
	Shard string `json:"shard,omitempty"`
	// Shards is the topology width on a router.
	Shards int `json:"shards,omitempty"`
}

// aggregateRequest is the JSON body (and GET parameter set) of /v1/aggregate.
type aggregateRequest struct {
	// Where holds one predicate component per dimension ("*" wildcard, "v"
	// exact, "lo..hi" range, "a|b" set — labels on labeled cubes, codes
	// otherwise); omitted means all wildcards.
	Where   []string `json:"where,omitempty"`
	GroupBy []string `json:"group_by,omitempty"`
	TopK    int      `json:"top_k,omitempty"`
	OrderBy string   `json:"order_by,omitempty"` // "count" (default) or "aux"
	// AuxAgg combines measure values across the grouped cells: "sum", "min",
	// "max" or "avg"; empty defaults to the cube's own combiner (avg on avg
	// cubes with stored aggregates, sum otherwise).
	AuxAgg string `json:"aux_agg,omitempty"`

	trace *obs.Trace // in-process stage accounting; see queryRequest.trace
}

type aggregateRow struct {
	Cell  []string `json:"cell"`
	Count int64    `json:"count"`
	Aux   *float64 `json:"aux,omitempty"`
	// AuxRaw is the stored mergeable form of Aux, set only on avg
	// aggregations: the group's running sum, whose presented mean is Aux.
	// Routers merge shard rows through AuxRaw and re-present after the merge.
	AuxRaw *float64 `json:"aux_raw,omitempty"`
}

type aggregateResponse struct {
	Rows []aggregateRow `json:"rows"`
	// Exact reports that the answer equals the minsup-1 ground truth. It is
	// true on minsup-1 cubes and on iceberg cubes whose store carries the
	// residual summary of below-threshold mass; it is false only for legacy
	// snapshots saved without residuals, where absent combinations make every
	// aggregate a lower bound. A router reports the AND of its shards' flags.
	Exact bool `json:"exact"`
}

// appendRequest is the JSON body of /v1/append and /v1/delete. Exactly one
// of Rows (labels) and Values (dictionary codes) must be set; Aux carries
// one measure value per row on measure cubes; Refresh folds the delta in
// before responding.
type appendRequest struct {
	Rows    [][]string `json:"rows,omitempty"`
	Values  [][]int32  `json:"values,omitempty"`
	Aux     []float64  `json:"aux,omitempty"`
	Refresh bool       `json:"refresh,omitempty"`

	trace *obs.Trace // in-process stage accounting; see queryRequest.trace
}

type appendResponse struct {
	Appended   int    `json:"appended"`
	Backlog    int    `json:"backlog"`
	Generation uint64 `json:"generation"`
	// Refreshed reports that the call itself published a new generation
	// (explicit "refresh": true or a crossed AutoRefresh row threshold).
	Refreshed bool `json:"refreshed"`
}

type deleteResponse struct {
	Deleted    int    `json:"deleted"`
	Backlog    int    `json:"backlog"`
	Generation uint64 `json:"generation"`
	Refreshed  bool   `json:"refreshed"`
}

// updateRequest is the JSON body of /v1/update: parallel old/new batches in
// exactly one of the labeled (old_rows/new_rows) and coded
// (old_values/new_values) forms, with per-row measure values on measure
// cubes. Each pair atomically replaces one occurrence of the old tuple with
// the new one on the next refresh. Routed through a Router, a pair whose old
// and new tuples hash to different shards is split into a delete and an
// append — atomic within each worker's delta, but not across the two.
type updateRequest struct {
	OldRows   [][]string `json:"old_rows,omitempty"`
	NewRows   [][]string `json:"new_rows,omitempty"`
	OldValues [][]int32  `json:"old_values,omitempty"`
	NewValues [][]int32  `json:"new_values,omitempty"`
	OldAux    []float64  `json:"old_aux,omitempty"`
	NewAux    []float64  `json:"new_aux,omitempty"`
	Refresh   bool       `json:"refresh,omitempty"`

	trace *obs.Trace // in-process stage accounting; see queryRequest.trace
}

type updateResponse struct {
	Updated    int    `json:"updated"`
	Backlog    int    `json:"backlog"`
	Generation uint64 `json:"generation"`
	Refreshed  bool   `json:"refreshed"`
}

type refreshResponse struct {
	Generation           uint64  `json:"generation"`
	Appended             int     `json:"appended"`
	Deleted              int     `json:"deleted"`
	PartitionsRecomputed int     `json:"partitions_recomputed"`
	PartitionsTotal      int     `json:"partitions_total"`
	CellsRetained        int64   `json:"cells_retained"`
	CellsRebuilt         int64   `json:"cells_rebuilt"`
	ElapsedMs            float64 `json:"elapsed_ms"`
}

// reloadRequest is the JSON body of /v1/reload; an empty body reloads the
// path the server was started with (-snapshot). Force is required to reload
// over a live cube with a non-empty append backlog (the buffered rows are
// discarded) — a snapshot-loaded cube is static, so reload also ends the
// append/refresh surface until restart.
type reloadRequest struct {
	Path  string `json:"path,omitempty"`
	Force bool   `json:"force,omitempty"`
}

type reloadResponse struct {
	Path       string `json:"path"`
	Generation uint64 `json:"generation"`
	Cells      int64  `json:"cells"`
	SourceRows int64  `json:"source_rows"`
}

type statsResponse struct {
	Generation       uint64           `json:"generation"`
	SourceRows       int64            `json:"source_rows"`
	Backlog          int              `json:"backlog"`
	Cells            int64            `json:"cells"`
	Live             bool             `json:"live"`
	Refreshes        int64            `json:"refreshes"`
	LastRefreshMs    float64          `json:"last_refresh_ms"`
	LastRefreshError string           `json:"last_refresh_error,omitempty"`
	UptimeMs         int64            `json:"uptime_ms"`
	RateLimited      int64            `json:"rate_limited"`
	CacheHits        int64            `json:"cache_hits"`
	CacheMisses      int64            `json:"cache_misses"`
	Requests         map[string]int64 `json:"requests,omitempty"`
	// Shards carries the per-worker stats on a router (each entry is the
	// worker's own /v1/stats answer, request counters included). The router
	// fills Worker/Reachable/Error per entry: an unreachable worker keeps its
	// slot with Reachable=false and the error, instead of failing the whole
	// stats call — so a dead worker is distinguishable from a zero-traffic
	// one, and the merged totals cover exactly the reachable workers.
	Shards []statsResponse `json:"shards,omitempty"`

	// Per-worker identity fields, set only on entries of a router's Shards.
	Worker    string `json:"worker,omitempty"`    // worker base URL (or #index)
	Reachable *bool  `json:"reachable,omitempty"` // nil outside router entries
	Error     string `json:"error,omitempty"`     // transport/stats failure
}

// healthResponse is the body of GET /v1/health: cheap enough for a
// load-balancer check on any role. The Server fills Status, UptimeMs and
// GoVersion; the shard behind it fills the role fields. A router reports its
// worker count without fanning out — per-worker generations come from the
// workers' own /v1/health or the router's /v1/stats.
type healthResponse struct {
	Status     string `json:"status"`
	Role       string `json:"role"`              // "single", "shard" or "router"
	Shard      string `json:"shard,omitempty"`   // "index/count" on a shard worker
	Workers    int    `json:"workers,omitempty"` // topology width on a router
	Generation uint64 `json:"generation"`
	Backlog    int    `json:"backlog"`
	UptimeMs   int64  `json:"uptime_ms"`
	GoVersion  string `json:"go_version,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}
