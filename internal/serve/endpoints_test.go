package serve

// Tests for the query serving surface, moved here from cmd/ccserve when the
// server split into the reusable serving layer.

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"ccubing"
)

// TestServeEndToEnd answers point queries over HTTP against a live server —
// the integration path of the acceptance criteria.
func TestServeEndToEnd(t *testing.T) {
	cube, ds := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()

	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	var meta cubeResponse
	getJSON(t, ts, "/v1/cube", &meta)
	if meta.Dims != 3 || !meta.Labeled || meta.Cells != cube.NumCells() || meta.MinSup != 1 {
		t.Fatalf("metadata = %+v", meta)
	}
	if meta.MeasureKind != "none" || meta.Shard != "" || meta.Shards != 0 {
		t.Fatalf("single-cube metadata carries topology fields: %+v", meta)
	}

	// GET point query by label, wildcard included. oslo appears in 6 rows.
	var qr queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,*,*"), &qr)
	if !qr.Found || qr.Count != 6 {
		t.Fatalf("oslo,*,* = %+v", qr)
	}
	if len(qr.Closure) != 3 || qr.Closure[0] != "oslo" {
		t.Fatalf("closure = %v", qr.Closure)
	}
	// (oslo,*,*) is not closed: all oslo rows share year 2025, so the
	// closure must bind it.
	if qr.Closure[2] != "2025" {
		t.Fatalf("closure should bind year 2025, got %v", qr.Closure)
	}

	// POST by labels and by coded values agree with the library.
	for _, labels := range [][]string{
		{"rome", "pen", "*"},
		{"*", "ink", "2025"},
		{"paris", "*", "2025"},
	} {
		var want int64
		wantOK := false
		if vals, err := cube.ParseCell(labels); err == nil {
			want, wantOK = cube.Query(vals)
		}
		var pr queryResponse
		postJSON(t, ts, "/v1/query", queryRequest{Cell: labels}, &pr)
		if pr.Found != wantOK || pr.Count != want {
			t.Fatalf("POST %v = %+v, want (%d,%v)", labels, pr, want, wantOK)
		}
	}
	vals, err := cube.ParseCell([]string{"rome", "*", "2024"})
	if err != nil {
		t.Fatal(err)
	}
	var pr queryResponse
	postJSON(t, ts, "/v1/query", queryRequest{Values: vals}, &pr)
	if !pr.Found || pr.Count != 1 {
		t.Fatalf("values query = %+v", pr)
	}

	// Unknown label: found=false, not an error.
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("atlantis,*,*"), &qr)
	if qr.Found {
		t.Fatalf("atlantis = %+v", qr)
	}

	// Slice: every closed cell under city=oslo.
	var sr sliceResponse
	getJSON(t, ts, "/v1/slice?cell="+url.QueryEscape("oslo,*,*"), &sr)
	if len(sr.Cells) == 0 || sr.Truncated {
		t.Fatalf("slice = %+v", sr)
	}
	for _, c := range sr.Cells {
		if c.Cell[0] != "oslo" {
			t.Fatalf("slice cell %v escapes the slice", c.Cell)
		}
	}
	var sr1 sliceResponse
	getJSON(t, ts, "/v1/slice?cell="+url.QueryEscape("oslo,*,*")+"&limit=1", &sr1)
	if len(sr1.Cells) != 1 || !sr1.Truncated {
		t.Fatalf("limited slice = %+v", sr1)
	}
	// limit=0 means "default", matching the POST body contract.
	var sr0 sliceResponse
	getJSON(t, ts, "/v1/slice?cell="+url.QueryEscape("oslo,*,*")+"&limit=0", &sr0)
	if len(sr0.Cells) != len(sr.Cells) {
		t.Fatalf("limit=0 slice = %d cells, want default %d", len(sr0.Cells), len(sr.Cells))
	}

	// Bad requests are 400 with a JSON error.
	for _, path := range []string{
		"/v1/query",          // missing cell
		"/v1/query?cell=a,b", // wrong arity
		"/v1/slice?cell=a&limit=x",
	} {
		resp := getJSON(t, ts, path, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: %d, want 400", path, resp.StatusCode)
		}
	}
	if resp := postJSON(t, ts, "/v1/query", map[string]any{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty POST: %d, want 400", resp.StatusCode)
	}

	// Cross-check a brute-force count through the full HTTP path.
	tb := ds.Table()
	var rome2025 int64
	for tid := 0; tid < tb.NumTuples(); tid++ {
		if tb.Cols[0][tid] == mustCode(t, cube, 0, "rome") && tb.Cols[2][tid] == mustCode(t, cube, 2, "2025") {
			rome2025++
		}
	}
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("rome,*,2025"), &qr)
	if !qr.Found || qr.Count != rome2025 {
		t.Fatalf("rome,*,2025 = %+v, want %d", qr, rome2025)
	}
}

// TestServeFromSnapshot serves a cube loaded from a ccube -store snapshot.
func TestServeFromSnapshot(t *testing.T) {
	cube, _ := testCube(t, 2)
	path := saveTo(t, cube)

	loaded := loadCube(t, path)
	ts := httptest.NewServer(newMux(loaded, "", 0))
	defer ts.Close()
	var qr queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("oslo,pen,*"), &qr)
	want, ok := cube.Query(mustVals(t, cube, "oslo", "pen", "*"))
	if qr.Found != ok || qr.Count != want {
		t.Fatalf("snapshot-served query = %+v, want (%d,%v)", qr, want, ok)
	}
	// minsup survives the round trip.
	var meta cubeResponse
	getJSON(t, ts, "/v1/cube", &meta)
	if meta.MinSup != 2 {
		t.Fatalf("minsup = %d, want 2", meta.MinSup)
	}
}

// TestServeCodedCube queries a dictionary-less cube by coded values.
func TestServeCodedCube(t *testing.T) {
	ds, err := ccubing.Synthetic(ccubing.SyntheticConfig{T: 300, D: 3, C: 5, Skew: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()
	var qr queryResponse
	getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("0,*,*"), &qr)
	want, ok := cube.Query([]int32{0, ccubing.Star, ccubing.Star})
	if qr.Found != ok || qr.Count != want {
		t.Fatalf("coded query = %+v, want (%d,%v)", qr, want, ok)
	}
	if resp := getJSON(t, ts, "/v1/query?cell="+url.QueryEscape("x,*,*"), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric coded query: %d, want 400", resp.StatusCode)
	}
}

// TestAggregateEndpoint drives /v1/aggregate — range + set predicates,
// group-by and top-k — against brute-force recomputation over the relation,
// the integration path of the acceptance criteria.
func TestAggregateEndpoint(t *testing.T) {
	cube, ds := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()
	tb := ds.Table()

	// Brute force: count tuples per city among (pen|ink, 2024..2025) rows.
	codeOf := func(dim int, label string) int32 { return mustCode(t, cube, dim, label) }
	match := func(tid int) bool {
		p := tb.Cols[1][tid]
		y := tb.Cols[2][tid]
		return (p == codeOf(1, "pen") || p == codeOf(1, "ink")) &&
			(y == codeOf(2, "2024") || y == codeOf(2, "2025"))
	}
	wantByCity := map[string]int64{}
	var total int64
	for tid := 0; tid < tb.NumTuples(); tid++ {
		if match(tid) {
			wantByCity[cube.Labels([]int32{tb.Cols[0][tid], ccubing.Star, ccubing.Star})[0]]++
			total++
		}
	}

	// POST: group-by city under the predicates.
	var ar aggregateResponse
	postJSON(t, ts, "/v1/aggregate", aggregateRequest{
		Where:   []string{"*", "pen|ink", "2024..2025"},
		GroupBy: []string{"city"},
	}, &ar)
	if len(ar.Rows) != len(wantByCity) {
		t.Fatalf("aggregate rows = %+v, want %d groups", ar.Rows, len(wantByCity))
	}
	if !ar.Exact {
		t.Fatal("minsup-1 aggregate must report exact")
	}
	for _, row := range ar.Rows {
		if want := wantByCity[row.Cell[0]]; row.Count != want {
			t.Fatalf("group %v = %d, want %d", row.Cell, row.Count, want)
		}
	}
	for i := 1; i < len(ar.Rows); i++ {
		if ar.Rows[i].Count > ar.Rows[i-1].Count {
			t.Fatalf("rows not ranked: %+v", ar.Rows)
		}
	}

	// GET with top_k=1: the single best group.
	var top aggregateResponse
	getJSON(t, ts, "/v1/aggregate?where="+url.QueryEscape("*,pen|ink,2024..2025")+"&group_by=city&top_k=1&order_by=count", &top)
	if len(top.Rows) != 1 || top.Rows[0].Count != ar.Rows[0].Count {
		t.Fatalf("top-1 = %+v, want %+v", top.Rows, ar.Rows[0])
	}

	// No group-by: one grand-total row under the range predicate.
	var tot aggregateResponse
	postJSON(t, ts, "/v1/aggregate", aggregateRequest{Where: []string{"*", "pen|ink", "2024..2025"}}, &tot)
	if len(tot.Rows) != 1 || tot.Rows[0].Count != total {
		t.Fatalf("grand total = %+v, want %d", tot.Rows, total)
	}

	// On an iceberg cube the same query stays exact: the store carries a
	// residual summary of the below-threshold mass, so aggregates fold the
	// pruned tuples back in and match the minsup-1 cube row for row.
	iceberg, _ := testCube(t, 3)
	its := httptest.NewServer(newMux(iceberg, "", 0))
	defer its.Close()
	var iar, full aggregateResponse
	postJSON(t, its, "/v1/aggregate", aggregateRequest{GroupBy: []string{"city"}}, &iar)
	postJSON(t, ts, "/v1/aggregate", aggregateRequest{GroupBy: []string{"city"}}, &full)
	if !iar.Exact {
		t.Fatal("iceberg aggregate with residuals must report exact=true")
	}
	if len(iar.Rows) != len(full.Rows) {
		t.Fatalf("iceberg aggregate rows = %+v, minsup-1 rows = %+v", iar.Rows, full.Rows)
	}
	for i := range iar.Rows {
		if iar.Rows[i].Count != full.Rows[i].Count || !equalLabels(iar.Rows[i].Cell, full.Rows[i].Cell) {
			t.Fatalf("iceberg row %d = %+v, minsup-1 row = %+v", i, iar.Rows[i], full.Rows[i])
		}
	}

	// Bad requests are 400.
	for _, path := range []string{
		"/v1/aggregate?where=a,b",       // wrong arity
		"/v1/aggregate?group_by=nope",   // unknown dimension
		"/v1/aggregate?top_k=-1",        // negative top-k
		"/v1/aggregate?order_by=zigzag", // unknown ranking
		"/v1/aggregate?order_by=aux",    // no measure to rank by
		"/v1/aggregate?aux_agg=avg",     // avg needs an avg-measure cube
	} {
		if resp := getJSON(t, ts, path, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestCanonicalOrdering pins the serve-layer result order: aggregate rows
// rank by count descending with ties broken by label tuple ascending, and
// slice cells order by fixed-dimension mask then labels — both independent
// of dictionary insertion order, so routed and single-store answers align.
func TestCanonicalOrdering(t *testing.T) {
	cube, _ := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()

	// oslo=6, paris=4, rome=3 — distinct counts rank by count. Group by
	// product: pen=7, ink=6.
	var ar aggregateResponse
	postJSON(t, ts, "/v1/aggregate", aggregateRequest{GroupBy: []string{"city"}}, &ar)
	for i := 1; i < len(ar.Rows); i++ {
		prev, cur := ar.Rows[i-1], ar.Rows[i]
		if cur.Count > prev.Count {
			t.Fatalf("rows not ranked by count: %+v", ar.Rows)
		}
		if cur.Count == prev.Count && !lessLabels(prev.Cell, cur.Cell) {
			t.Fatalf("tied rows not in label order: %+v", ar.Rows)
		}
	}

	// Group by year: 2025=12, 2024=1. Equal-count ties exercise the label
	// tie-break deterministically across repeated calls.
	var first sliceResponse
	getJSON(t, ts, "/v1/slice?cell="+url.QueryEscape("oslo,*,*"), &first)
	for i := 1; i < len(first.Cells); i++ {
		prev, cur := first.Cells[i-1], first.Cells[i]
		pm, cm := cellMask(prev.Cell), cellMask(cur.Cell)
		if cm < pm || (cm == pm && lessLabels(cur.Cell, prev.Cell)) {
			t.Fatalf("slice cells out of canonical order: %v before %v", prev.Cell, cur.Cell)
		}
	}
	var again sliceResponse
	getJSON(t, ts, "/v1/slice?cell="+url.QueryEscape("oslo,*,*"), &again)
	for i := range first.Cells {
		if !equalLabels(first.Cells[i].Cell, again.Cells[i].Cell) {
			t.Fatalf("slice order unstable: %v vs %v", first.Cells[i].Cell, again.Cells[i].Cell)
		}
	}
}

func equalLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestValuesValidation pins the coded-values contract on both methods:
// arbitrary negative entries are rejected with 400 (only Star marks a
// wildcard), and GET accepts the values= form sharing that validation.
func TestValuesValidation(t *testing.T) {
	ds, err := ccubing.Synthetic(ccubing.SyntheticConfig{T: 300, D: 3, C: 5, Skew: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()

	// POST with a negative non-Star entry: 400, not a silent miss.
	for _, vals := range [][]int32{
		{-2, 0, 1},
		{0, -7, ccubing.Star},
	} {
		if resp := postJSON(t, ts, "/v1/query", queryRequest{Values: vals}, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST values %v: %d, want 400", vals, resp.StatusCode)
		}
		if resp := postJSON(t, ts, "/v1/slice", queryRequest{Values: vals}, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST slice values %v: %d, want 400", vals, resp.StatusCode)
		}
	}

	// GET values= answers like the library (Star = -1 wildcard).
	var qr queryResponse
	getJSON(t, ts, "/v1/query?values=0,-1,2", &qr)
	want, ok := cube.Query([]int32{0, ccubing.Star, 2})
	if qr.Found != ok || qr.Count != want {
		t.Fatalf("GET values query = %+v, want (%d,%v)", qr, want, ok)
	}
	var sr sliceResponse
	getJSON(t, ts, "/v1/slice?values=0,-1,-1", &sr)
	wantCells := 0
	cube.Slice([]int32{0, ccubing.Star, ccubing.Star}, func(ccubing.Cell) bool { wantCells++; return true })
	if len(sr.Cells) != wantCells {
		t.Fatalf("GET values slice = %d cells, want %d", len(sr.Cells), wantCells)
	}

	// GET validation shares the POST contract.
	for _, path := range []string{
		"/v1/query?values=0,-2,1",           // negative non-Star
		"/v1/query?values=0,1",              // wrong arity
		"/v1/query?values=0,x,1",            // non-numeric
		"/v1/query?cell=0,1,2&values=0,1,2", // both forms
	} {
		if resp := getJSON(t, ts, path, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: %d, want 400", path, resp.StatusCode)
		}
	}
}
