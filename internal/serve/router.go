package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccubing"
	"ccubing/internal/obs"
	"ccubing/internal/route"
)

// Router is a Shard that scatter-gathers over shard workers. The topology
// invariant (paper Sec. 6.3): tuples are partitioned by their leading-
// dimension component — worker i holds exactly the tuples whose dimension-0
// component hashes to i (route.Owner) — so every closed cell that fixes
// dimension 0 lives whole on one worker, with its global count and closure.
// Work that binds dimension 0 routes to that one worker and is byte-identical
// to a single store at any iceberg threshold; work that leaves it wildcard
// scatters to all workers and merges. Scattered aggregates are exact at any
// threshold when every worker's store carries its residual summary of
// iceberg-pruned mass (each reports exact=true): per-shard answers then
// include the below-threshold tuples the shard owns, and sums of exact shard
// answers are the exact global answer.
type Router struct {
	shards []Shard
	// Topology-constant metadata, validated identical across workers at
	// construction: routing and merging decisions read these instead of
	// re-fetching worker metas per request.
	dims    int
	names   []string
	labeled bool
	measure bool
	kind    string // measure kind name: "none", "sum", "min", "max", "avg"

	// reg holds the scatter-gather metrics below; the Server's /metrics
	// merges it into the router's scrape.
	reg *obs.Registry
	met routerMetrics
}

// routerMetrics is the router's view of its topology: how often it scatters
// versus routes whole, how long each worker takes from the router's side of
// the wire, and what the gather-side merge costs.
type routerMetrics struct {
	scatterSeconds *obs.Histogram // full fan-out wait; the slowest worker gates it
	mergeSeconds   *obs.Histogram // router-side merge over gathered answers
	scatters       *obs.Counter   // calls fanned out to every worker
	fanout         *obs.Counter   // worker calls issued by scatters
	routed         *obs.Counter   // calls routed whole to one owning worker
	workerSeconds  []*obs.Histogram
	workerErrors   []*obs.Counter
	// workerCalls counts worker calls by originating endpoint, pre-created so
	// the request path never takes the registry lock.
	workerCalls map[string]*obs.Counter
	stageNames  []string // "worker0", "worker1", ... trace stage labels
}

// NewRouter builds a router over the given workers (typically Dial'd shard
// workers, in shard order: worker i must serve shard i of the topology). It
// fetches every worker's metadata and refuses mismatched topologies —
// different dimensions, iceberg thresholds or measure configurations cannot
// merge into one coherent cube.
func NewRouter(shards []Shard) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router needs at least one shard")
	}
	metas := make([]cubeResponse, len(shards))
	for i, sh := range shards {
		m, err := sh.Meta()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		metas[i] = m
	}
	m0 := metas[0]
	for i, m := range metas[1:] {
		switch {
		case m.Dims != m0.Dims || strings.Join(m.Names, ",") != strings.Join(m0.Names, ","):
			return nil, fmt.Errorf("shard %d dimensions %v differ from shard 0's %v", i+1, m.Names, m0.Names)
		case m.MinSup != m0.MinSup:
			return nil, fmt.Errorf("shard %d minsup %d differs from shard 0's %d", i+1, m.MinSup, m0.MinSup)
		case m.Labeled != m0.Labeled:
			return nil, fmt.Errorf("shard %d labeled=%v differs from shard 0's %v", i+1, m.Labeled, m0.Labeled)
		case m.Measure != m0.Measure || m.MeasureKind != m0.MeasureKind:
			return nil, fmt.Errorf("shard %d measure %q differs from shard 0's %q", i+1, m.MeasureKind, m0.MeasureKind)
		}
	}
	rt := &Router{
		shards:  shards,
		dims:    m0.Dims,
		names:   m0.Names,
		labeled: m0.Labeled,
		measure: m0.Measure,
		kind:    m0.MeasureKind,
		reg:     obs.NewRegistry(),
	}
	rt.reg.GaugeFunc("ccubing_router_workers", "Workers in the routing topology.",
		func() float64 { return float64(len(rt.shards)) })
	rt.met.scatterSeconds = rt.reg.Histogram("ccubing_router_scatter_seconds",
		"Full fan-out latency of scattered calls (the slowest worker gates it).")
	rt.met.mergeSeconds = rt.reg.Histogram("ccubing_router_merge_seconds",
		"Router-side merge time over gathered worker answers.")
	rt.met.scatters = rt.reg.Counter("ccubing_router_scatters_total",
		"Calls fanned out to every worker.")
	rt.met.fanout = rt.reg.Counter("ccubing_router_fanout_total",
		"Worker calls issued by scatters; divided by scatters_total this is the fan-out width.")
	rt.met.routed = rt.reg.Counter("ccubing_router_routed_total",
		"Calls routed whole to the one worker owning the bound routing component.")
	for i := range shards {
		w := strconv.Itoa(i)
		rt.met.workerSeconds = append(rt.met.workerSeconds, rt.reg.Histogram(
			"ccubing_router_worker_seconds", "Per-worker call latency as seen by the router.", "worker", w))
		rt.met.workerErrors = append(rt.met.workerErrors, rt.reg.Counter(
			"ccubing_router_worker_errors_total", "Per-worker call failures as seen by the router.", "worker", w))
		rt.met.stageNames = append(rt.met.stageNames, "worker"+w)
	}
	rt.met.workerCalls = make(map[string]*obs.Counter)
	for _, op := range []string{"query", "slice", "aggregate", "append", "delete", "update", "refresh", "meta", "stats"} {
		rt.met.workerCalls[op] = rt.reg.Counter("ccubing_router_worker_calls_total",
			"Worker calls issued by this router, by originating endpoint.", "endpoint", op)
	}
	return rt, nil
}

// MetricsRegistry exposes the scatter-gather registry to the Server's
// /metrics.
func (rt *Router) MetricsRegistry() *obs.Registry { return rt.reg }

// Health reports the router role without fanning out — the answer must stay
// load-balancer cheap even with a dead worker. Per-worker generations come
// from the workers' own /v1/health or this router's /v1/stats.
func (rt *Router) Health() healthResponse {
	return healthResponse{Role: "router", Workers: len(rt.shards)}
}

// workerName identifies worker i in stats entries: its base URL when Dial'd,
// a positional #i otherwise (in-process shards in tests).
func (rt *Router) workerName(i int) string {
	if a, ok := rt.shards[i].(addresser); ok {
		return a.Addr()
	}
	return "#" + strconv.Itoa(i)
}

// observeWorker records one worker call: its latency into the per-worker
// histogram and the request trace, and any failure into the error counter.
func (rt *Router) observeWorker(i int, tr *obs.Trace, start time.Time, err error) {
	d := time.Since(start)
	rt.met.workerSeconds[i].Observe(d)
	tr.Observe(rt.met.stageNames[i], d)
	if err != nil {
		rt.met.workerErrors[i].Inc()
	}
}

// observeMerge records the gather-side merge once a scattered call's answers
// are combined.
func (rt *Router) observeMerge(tr *obs.Trace, start time.Time) {
	d := time.Since(start)
	rt.met.mergeSeconds.Observe(d)
	tr.Observe("merge", d)
}

// scatterCall fans one call out to every shard concurrently and collects the
// results in shard order, recording per-worker and whole-scatter latency
// under op's worker-call counter (tr may be nil for untraced internal
// scatters). Errors are deterministic: the lowest-index failing shard's
// error wins, regardless of completion order.
func scatterCall[T any](rt *Router, op string, tr *obs.Trace, call func(Shard) (T, error)) ([]T, error) {
	shards := rt.shards
	out := make([]T, len(shards))
	errs := make([]error, len(shards))
	start := time.Now()
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := time.Now()
			out[i], errs[i] = call(sh)
			rt.observeWorker(i, tr, ws, errs[i])
		}()
	}
	wg.Wait()
	d := time.Since(start)
	rt.met.scatters.Inc()
	rt.met.fanout.Add(int64(len(shards)))
	rt.met.scatterSeconds.Observe(d)
	tr.Observe("scatter", d)
	rt.met.workerCalls[op].Add(int64(len(shards)))
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// routedCall runs one call against the single owning worker, with the same
// accounting as a scatter's per-worker leg.
func routedCall[T any](rt *Router, op string, tr *obs.Trace, owner int, call func(Shard) (T, error)) (T, error) {
	start := time.Now()
	out, err := call(rt.shards[owner])
	rt.observeWorker(owner, tr, start, err)
	rt.met.routed.Inc()
	rt.met.workerCalls[op].Add(1)
	return out, err
}

// ownerIndex returns the worker index owning a dimension-0 component.
func (rt *Router) ownerIndex(component string) int {
	return route.Owner(component, len(rt.shards))
}

// avgKind reports an avg-measure topology. Presented means do not combine
// across shards, so avg merges go through the wire rows' AuxRaw stored sums;
// legacyAvgErr is the answer when a worker (serving a legacy snapshot without
// stored aggregates) cannot supply them.
func (rt *Router) avgKind() bool {
	return rt.kind == ccubing.MeasureAvg.String()
}

func (rt *Router) legacyAvgErr() *StatusError {
	return statusErrorf(http.StatusNotImplemented,
		"avg measure from a legacy snapshot (no stored aggregates) cannot be merged across shards; bind dimension %s to route to one shard", rt.names[0])
}

// routeQuery decides where a query/slice request goes: the dimension-0
// component's owner when the request binds it, everywhere when it is
// wildcard. Coded components are normalized to canonical decimal strings so
// "07" and "7" hash alike (and like mutation routing, which renders stored
// values with strconv).
func (rt *Router) routeQuery(req queryRequest) (comp string, scatter bool, err error) {
	if (req.Cell == nil) == (req.Values == nil) {
		return "", false, fmt.Errorf(`exactly one of "cell" and "values" is required`)
	}
	if req.Limit < 0 {
		return "", false, fmt.Errorf("bad limit %d", req.Limit)
	}
	if req.Values != nil {
		if rt.labeled {
			return "", false, fmt.Errorf("coded-values queries cannot be routed: dictionary codes are shard-local; query by labels")
		}
		if len(req.Values) != rt.dims {
			return "", false, fmt.Errorf("cell has %d values, want %d", len(req.Values), rt.dims)
		}
		v := req.Values[0]
		if v == ccubing.Star {
			return "", true, nil
		}
		if v < 0 {
			return "", false, fmt.Errorf("bad value %d for dimension %s (codes are non-negative; %d = wildcard)",
				v, rt.names[0], ccubing.Star)
		}
		return strconv.Itoa(int(v)), false, nil
	}
	if len(req.Cell) != rt.dims {
		return "", false, fmt.Errorf("cell has %d components, want %d", len(req.Cell), rt.dims)
	}
	c0 := req.Cell[0]
	if c0 == "*" {
		return "", true, nil
	}
	if rt.labeled {
		return c0, false, nil
	}
	v, err := strconv.ParseInt(c0, 10, 32)
	if err != nil || v < 0 {
		return "", false, fmt.Errorf("bad value %q for dimension %s", c0, rt.names[0])
	}
	return strconv.FormatInt(v, 10), false, nil
}

func (rt *Router) Query(req queryRequest) (queryResponse, error) {
	comp, scatter, err := rt.routeQuery(req)
	if err != nil {
		return queryResponse{}, err
	}
	if !scatter {
		return routedCall(rt, "query", req.trace, rt.ownerIndex(comp), func(sh Shard) (queryResponse, error) {
			return sh.Query(req)
		})
	}
	resps, err := scatterCall(rt, "query", req.trace, func(sh Shard) (queryResponse, error) {
		return sh.Query(req)
	})
	if err != nil {
		return queryResponse{}, err
	}
	mstart := time.Now()
	defer rt.observeMerge(req.trace, mstart)
	var found []queryResponse
	for _, r := range resps {
		if r.Found {
			found = append(found, r)
		}
	}
	if len(found) == 0 {
		return queryResponse{Found: false}, nil
	}
	if len(found) == 1 {
		// One shard holds every matching tuple: its answer IS the global one
		// (count, closure and measure alike, whatever the measure kind).
		return found[0], nil
	}
	merged := queryResponse{Found: true}
	for _, r := range found {
		merged.Count += r.Count
	}
	// The closure is the component-wise meet: a dimension stays fixed only if
	// every shard's matching tuples agree on the same label — exactly the
	// global all-tuples-agree condition, since the shards partition them.
	closure := append([]string(nil), found[0].Closure...)
	for _, r := range found[1:] {
		for d := range closure {
			if d >= len(r.Closure) || closure[d] != r.Closure[d] {
				closure[d] = "*"
			}
		}
	}
	merged.Closure = closure
	if rt.measure {
		aux := 0.0
		for i, r := range found {
			v := 0.0
			switch {
			case rt.avgKind():
				// Merge the stored sums, not the presented means.
				if r.AuxRaw == nil {
					return queryResponse{}, rt.legacyAvgErr()
				}
				v = *r.AuxRaw
			case r.Aux != nil:
				v = *r.Aux
			}
			switch {
			case i == 0:
				aux = v
			case rt.kind == ccubing.MeasureMin.String():
				aux = min(aux, v)
			case rt.kind == ccubing.MeasureMax.String():
				aux = max(aux, v)
			default: // sum and avg (the cube's stored measure is a per-cell sum)
				aux += v
			}
		}
		if rt.avgKind() {
			// The same stored/count division a single worker performs, so the
			// merged mean is byte-identical to an unsharded store's.
			mean := aux / float64(merged.Count)
			merged.Aux = &mean
			merged.AuxRaw = &aux
		} else {
			merged.Aux = &aux
		}
	}
	return merged, nil
}

func (rt *Router) Slice(req queryRequest) (sliceResponse, error) {
	comp, scatter, err := rt.routeQuery(req)
	if err != nil {
		return sliceResponse{}, err
	}
	if scatter {
		// A wildcard-dimension-0 slice enumerates closed cells that do not fix
		// the routing dimension — cells whose closure depends on tuples from
		// every shard, so the per-shard closed-cell sets do not union into the
		// global one. /v1/aggregate answers those questions mergeably.
		return sliceResponse{}, fmt.Errorf(
			"slice must bind the routing dimension %s (its first component cannot be \"*\" through a router); use /v1/aggregate for cross-shard rollups", rt.names[0])
	}
	return routedCall(rt, "slice", req.trace, rt.ownerIndex(comp), func(sh Shard) (sliceResponse, error) {
		return sh.Slice(req)
	})
}

func (rt *Router) Aggregate(req aggregateRequest) (aggregateResponse, error) {
	if req.TopK < 0 {
		return aggregateResponse{}, fmt.Errorf("bad top_k %d", req.TopK)
	}
	by, err := ccubing.ParseOrderBy(req.OrderBy)
	if err != nil {
		return aggregateResponse{}, err
	}
	if _, err := ccubing.ParseAuxAgg(req.AuxAgg); err != nil {
		return aggregateResponse{}, err
	}
	// An exact-value predicate on dimension 0 pins the whole selection to one
	// shard; anything else (wildcard, set, range) can span them.
	if len(req.Where) > 0 {
		if c0 := req.Where[0]; c0 != "*" && c0 != "" && !strings.Contains(c0, "|") && !strings.Contains(c0, "..") {
			comp := c0
			if !rt.labeled {
				v, err := strconv.ParseInt(c0, 10, 32)
				if err != nil || v < 0 {
					return aggregateResponse{}, fmt.Errorf("bad value %q for dimension %s", c0, rt.names[0])
				}
				comp = strconv.FormatInt(v, 10)
			}
			return routedCall(rt, "aggregate", req.trace, rt.ownerIndex(comp), func(sh Shard) (aggregateResponse, error) {
				return sh.Aggregate(req)
			})
		}
	}
	// Scatter with top-k stripped: a shard's local top k can miss rows whose
	// global rank only emerges after cross-shard summation. Rank and truncate
	// here, after the merge.
	fwd := req
	fwd.TopK = 0
	resps, err := scatterCall(rt, "aggregate", req.trace, func(sh Shard) (aggregateResponse, error) {
		return sh.Aggregate(fwd)
	})
	if err != nil {
		return aggregateResponse{}, err
	}
	mstart := time.Now()
	defer rt.observeMerge(req.trace, mstart)
	// Merge rows keyed by their label tuple. Shards partition the tuples, so
	// counts sum; the measure combines per the requested aggregator (a
	// shard-level sum of sums is the global sum, min of mins the global min).
	// Avg rows combine through their AuxRaw stored sums and are presented —
	// divided by the merged count — once, after every shard is folded in.
	auxAgg, _ := ccubing.ParseAuxAgg(req.AuxAgg)
	avgAgg := auxAgg == ccubing.MeasureAvg || (auxAgg == ccubing.MeasureNone && rt.avgKind())
	merged := make(map[string]*aggregateRow)
	var order []string
	exact := true
	for _, r := range resps {
		exact = exact && r.Exact
		for _, row := range r.Rows {
			if avgAgg && row.Aux != nil && row.AuxRaw == nil {
				return aggregateResponse{}, rt.legacyAvgErr()
			}
			key := strings.Join(row.Cell, "\x00")
			m, ok := merged[key]
			if !ok {
				cp := row
				cp.Cell = append([]string(nil), row.Cell...)
				if row.Aux != nil {
					aux := *row.Aux
					cp.Aux = &aux
				}
				if row.AuxRaw != nil {
					raw := *row.AuxRaw
					cp.AuxRaw = &raw
				}
				merged[key] = &cp
				order = append(order, key)
				continue
			}
			m.Count += row.Count
			switch {
			case m.AuxRaw != nil && row.AuxRaw != nil:
				*m.AuxRaw += *row.AuxRaw // avg: stored sums add
			case m.Aux != nil && row.Aux != nil:
				switch auxAgg {
				case ccubing.MeasureMin:
					if *row.Aux < *m.Aux {
						*m.Aux = *row.Aux
					}
				case ccubing.MeasureMax:
					if *row.Aux > *m.Aux {
						*m.Aux = *row.Aux
					}
				default: // MeasureSum (and the MeasureNone default)
					*m.Aux += *row.Aux
				}
			}
		}
	}
	resp := aggregateResponse{Rows: make([]aggregateRow, 0, len(merged)), Exact: exact}
	for _, key := range order {
		m := merged[key]
		if m.AuxRaw != nil {
			// The same stored/count division a single worker performs, so
			// merged rows are byte-identical to an unsharded store's.
			mean := *m.AuxRaw / float64(m.Count)
			m.Aux = &mean
		}
		resp.Rows = append(resp.Rows, *m)
	}
	sortAggRows(resp.Rows, by == ccubing.ByAux)
	if req.TopK > 0 && len(resp.Rows) > req.TopK {
		resp.Rows = resp.Rows[:req.TopK]
	}
	return resp, nil
}

// mutationBatch is the per-shard split of one routed mutation request.
type mutationBatch struct {
	rows   [][]string
	values [][]int32
	aux    []float64
}

// splitRows partitions a mutation batch by each row's dimension-0 owner.
// aux may be nil (measureless cubes); rows and values are the two request
// forms, exactly one non-nil.
func (rt *Router) splitRows(rows [][]string, values [][]int32, aux []float64) (map[int]*mutationBatch, error) {
	if (rows == nil) == (values == nil) {
		return nil, fmt.Errorf(`exactly one of "rows" and "values" is required`)
	}
	n := len(rows) + len(values) // one of the two is empty
	if aux != nil && len(aux) != n {
		return nil, fmt.Errorf("aux has %d values, want %d", len(aux), n)
	}
	out := make(map[int]*mutationBatch)
	add := func(owner int) *mutationBatch {
		b := out[owner]
		if b == nil {
			b = &mutationBatch{}
			out[owner] = b
		}
		return b
	}
	if rows != nil {
		if !rt.labeled {
			return nil, fmt.Errorf("cube has no dictionaries; send coded values")
		}
		for i, row := range rows {
			if len(row) != rt.dims {
				return nil, fmt.Errorf("row %d has %d components, want %d", i, len(row), rt.dims)
			}
			b := add(route.Owner(row[0], len(rt.shards)))
			b.rows = append(b.rows, row)
			if aux != nil {
				b.aux = append(b.aux, aux[i])
			}
		}
		return out, nil
	}
	if rt.labeled {
		return nil, fmt.Errorf("coded-values mutations cannot be routed: dictionary codes are shard-local; send labeled rows")
	}
	for i, row := range values {
		if len(row) != rt.dims {
			return nil, fmt.Errorf("row %d has %d values, want %d", i, len(row), rt.dims)
		}
		if row[0] < 0 {
			return nil, fmt.Errorf("row %d has negative value %d on routing dimension %s", i, row[0], rt.names[0])
		}
		b := add(route.Owner(strconv.Itoa(int(row[0])), len(rt.shards)))
		b.values = append(b.values, row)
		if aux != nil {
			b.aux = append(b.aux, aux[i])
		}
	}
	return out, nil
}

// shardsOf lists the batch owners in shard order, for deterministic
// iteration over a split.
func shardsOf(batches map[int]*mutationBatch, n int) []int {
	var idx []int
	for i := 0; i < n; i++ {
		if batches[i] != nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// partialMutation reports a scatter where some shard batches applied and
// others failed: the applied rows are buffered on their shards, so resending
// the whole batch would double-apply them.
func partialMutation(applied, total int, err error) error {
	return statusErrorf(http.StatusInternalServerError,
		"partial mutation: %d of %d shard batches applied and remain buffered on their shards — do not resend the whole batch: %v",
		applied, total, err)
}

// runMutation executes one call per owned batch concurrently, with the
// all-failed/partial-failure error contract above. ok holds the successful
// responses in shard order.
func runMutation[T any](rt *Router, op string, tr *obs.Trace, owners []int, call func(owner int) (T, error)) (ok []T, err error) {
	resps := make([]T, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, owner := range owners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := time.Now()
			resps[i], errs[i] = call(owner)
			rt.observeWorker(owner, tr, ws, errs[i])
		}()
	}
	wg.Wait()
	rt.met.workerCalls[op].Add(int64(len(owners)))
	var firstErr error
	applied := 0
	for i := range owners {
		if errs[i] == nil {
			ok = append(ok, resps[i])
			applied++
		} else if firstErr == nil {
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		if applied > 0 {
			return nil, partialMutation(applied, len(owners), firstErr)
		}
		return nil, firstErr
	}
	return ok, nil
}

// broadcastRefresh folds every worker's delta in, for mutation requests
// carrying "refresh": true: one logical refresh of the whole relation, so
// even workers that received no rows this call publish a new generation.
func (rt *Router) broadcastRefresh(tr *obs.Trace) ([]refreshResponse, error) {
	return scatterCall(rt, "refresh", tr, func(sh Shard) (refreshResponse, error) {
		return sh.Refresh()
	})
}

func (rt *Router) Append(req appendRequest) (appendResponse, error) {
	batches, err := rt.splitRows(req.Rows, req.Values, req.Aux)
	if err != nil {
		return appendResponse{}, err
	}
	owners := shardsOf(batches, len(rt.shards))
	oks, err := runMutation(rt, "append", req.trace, owners, func(owner int) (appendResponse, error) {
		b := batches[owner]
		return rt.shards[owner].Append(appendRequest{Rows: b.rows, Values: b.values, Aux: b.aux})
	})
	if err != nil {
		return appendResponse{}, err
	}
	resp := appendResponse{}
	for i, r := range oks {
		resp.Appended += r.Appended
		resp.Backlog += r.Backlog
		resp.Refreshed = resp.Refreshed || r.Refreshed
		if i == 0 || r.Generation < resp.Generation {
			resp.Generation = r.Generation
		}
	}
	if req.Refresh {
		rr, err := rt.broadcastRefresh(req.trace)
		if err != nil {
			return appendResponse{}, statusErrorf(http.StatusInternalServerError,
				"rows buffered but the triggered refresh failed on a shard (do not resend the batch): %v", err)
		}
		resp.Backlog = 0
		resp.Refreshed = true
		for i, r := range rr {
			if i == 0 || r.Generation < resp.Generation {
				resp.Generation = r.Generation
			}
		}
	}
	return resp, nil
}

func (rt *Router) Delete(req appendRequest) (deleteResponse, error) {
	batches, err := rt.splitRows(req.Rows, req.Values, req.Aux)
	if err != nil {
		return deleteResponse{}, err
	}
	owners := shardsOf(batches, len(rt.shards))
	oks, err := runMutation(rt, "delete", req.trace, owners, func(owner int) (deleteResponse, error) {
		b := batches[owner]
		return rt.shards[owner].Delete(appendRequest{Rows: b.rows, Values: b.values, Aux: b.aux})
	})
	if err != nil {
		return deleteResponse{}, err
	}
	resp := deleteResponse{}
	for i, r := range oks {
		resp.Deleted += r.Deleted
		resp.Backlog += r.Backlog
		resp.Refreshed = resp.Refreshed || r.Refreshed
		if i == 0 || r.Generation < resp.Generation {
			resp.Generation = r.Generation
		}
	}
	if req.Refresh {
		rr, err := rt.broadcastRefresh(req.trace)
		if err != nil {
			return deleteResponse{}, statusErrorf(http.StatusInternalServerError,
				"tombstones buffered but the triggered refresh failed on a shard (do not resend the batch): %v", err)
		}
		resp.Backlog = 0
		resp.Refreshed = true
		for i, r := range rr {
			if i == 0 || r.Generation < resp.Generation {
				resp.Generation = r.Generation
			}
		}
	}
	return resp, nil
}

// shardUpdate is one worker's share of a routed update: same-shard pairs
// stay atomic update pairs; a pair whose old and new tuples hash apart is
// split into a tombstone on the old owner and an append on the new one —
// applied atomically within each worker's delta, but not across the two
// (a refresh racing between them can briefly serve neither tuple or both).
type shardUpdate struct {
	oldRows, newRows     [][]string
	oldValues, newValues [][]int32
	oldAux, newAux       []float64
	del, app             mutationBatch
}

func (rt *Router) Update(req updateRequest) (updateResponse, error) {
	labeled := req.OldRows != nil || req.NewRows != nil
	coded := req.OldValues != nil || req.NewValues != nil
	if labeled == coded {
		return updateResponse{}, fmt.Errorf(`exactly one of "old_rows"/"new_rows" and "old_values"/"new_values" is required`)
	}
	if labeled && !rt.labeled {
		return updateResponse{}, fmt.Errorf("cube has no dictionaries; send coded values")
	}
	if coded && rt.labeled {
		return updateResponse{}, fmt.Errorf("coded-values mutations cannot be routed: dictionary codes are shard-local; send labeled rows")
	}
	nPairs := len(req.OldRows) + len(req.OldValues)
	if len(req.NewRows)+len(req.NewValues) != nPairs {
		return updateResponse{}, fmt.Errorf("update wants matching old/new batches (%d old, %d new)",
			nPairs, len(req.NewRows)+len(req.NewValues))
	}
	if req.OldAux != nil && len(req.OldAux) != nPairs {
		return updateResponse{}, fmt.Errorf("old_aux has %d values, want %d", len(req.OldAux), nPairs)
	}
	if req.NewAux != nil && len(req.NewAux) != nPairs {
		return updateResponse{}, fmt.Errorf("new_aux has %d values, want %d", len(req.NewAux), nPairs)
	}

	// Component of a pair side, for routing.
	comp := func(row []string, vals []int32, i int) (string, error) {
		if labeled {
			if len(row) != rt.dims {
				return "", fmt.Errorf("row %d has %d components, want %d", i, len(row), rt.dims)
			}
			return row[0], nil
		}
		if len(vals) != rt.dims {
			return "", fmt.Errorf("row %d has %d values, want %d", i, len(vals), rt.dims)
		}
		if vals[0] < 0 {
			return "", fmt.Errorf("row %d has negative value %d on routing dimension %s", i, vals[0], rt.names[0])
		}
		return strconv.Itoa(int(vals[0])), nil
	}
	side := func(rows [][]string, vals [][]int32, i int) ([]string, []int32) {
		if labeled {
			return rows[i], nil
		}
		return nil, vals[i]
	}

	shards := make(map[int]*shardUpdate)
	at := func(owner int) *shardUpdate {
		u := shards[owner]
		if u == nil {
			u = &shardUpdate{}
			shards[owner] = u
		}
		return u
	}
	splitPairs := 0
	for i := 0; i < nPairs; i++ {
		oldRow, oldVals := side(req.OldRows, req.OldValues, i)
		newRow, newVals := side(req.NewRows, req.NewValues, i)
		oc, err := comp(oldRow, oldVals, i)
		if err != nil {
			return updateResponse{}, fmt.Errorf("old %w", err)
		}
		nc, err := comp(newRow, newVals, i)
		if err != nil {
			return updateResponse{}, fmt.Errorf("new %w", err)
		}
		oOwn, nOwn := route.Owner(oc, len(rt.shards)), route.Owner(nc, len(rt.shards))
		if oOwn == nOwn {
			u := at(oOwn)
			if labeled {
				u.oldRows = append(u.oldRows, oldRow)
				u.newRows = append(u.newRows, newRow)
			} else {
				u.oldValues = append(u.oldValues, oldVals)
				u.newValues = append(u.newValues, newVals)
			}
			if req.OldAux != nil {
				u.oldAux = append(u.oldAux, req.OldAux[i])
			}
			if req.NewAux != nil {
				u.newAux = append(u.newAux, req.NewAux[i])
			}
			continue
		}
		splitPairs++
		del, app := &at(oOwn).del, &at(nOwn).app
		if labeled {
			del.rows = append(del.rows, oldRow)
			app.rows = append(app.rows, newRow)
		} else {
			del.values = append(del.values, oldVals)
			app.values = append(app.values, newVals)
		}
		if req.OldAux != nil {
			del.aux = append(del.aux, req.OldAux[i])
		}
		if req.NewAux != nil {
			app.aux = append(app.aux, req.NewAux[i])
		}
	}

	owners := make([]int, 0, len(shards))
	for i := 0; i < len(rt.shards); i++ {
		if shards[i] != nil {
			owners = append(owners, i)
		}
	}
	type shardResult struct {
		backlog    int
		generation uint64
		refreshed  bool
		updated    int
	}
	oks, err := runMutation(rt, "update", req.trace, owners, func(owner int) (shardResult, error) {
		u := shards[owner]
		sh := rt.shards[owner]
		var res shardResult
		if u.oldRows != nil || u.oldValues != nil {
			r, err := sh.Update(updateRequest{
				OldRows: u.oldRows, NewRows: u.newRows,
				OldValues: u.oldValues, NewValues: u.newValues,
				OldAux: u.oldAux, NewAux: u.newAux,
			})
			if err != nil {
				return res, err
			}
			res = shardResult{backlog: r.Backlog, generation: r.Generation, refreshed: r.Refreshed, updated: r.Updated}
		}
		if u.del.rows != nil || u.del.values != nil {
			r, err := sh.Delete(appendRequest{Rows: u.del.rows, Values: u.del.values, Aux: u.del.aux})
			if err != nil {
				return res, err
			}
			res.backlog, res.generation = r.Backlog, r.Generation
			res.refreshed = res.refreshed || r.Refreshed
		}
		if u.app.rows != nil || u.app.values != nil {
			r, err := sh.Append(appendRequest{Rows: u.app.rows, Values: u.app.values, Aux: u.app.aux})
			if err != nil {
				return res, err
			}
			res.backlog, res.generation = r.Backlog, r.Generation
			res.refreshed = res.refreshed || r.Refreshed
		}
		return res, nil
	})
	if err != nil {
		return updateResponse{}, err
	}
	resp := updateResponse{Updated: splitPairs}
	for i, r := range oks {
		resp.Updated += r.updated
		resp.Backlog += r.backlog
		resp.Refreshed = resp.Refreshed || r.refreshed
		if i == 0 || r.generation < resp.Generation {
			resp.Generation = r.generation
		}
	}
	if req.Refresh {
		rr, err := rt.broadcastRefresh(req.trace)
		if err != nil {
			return updateResponse{}, statusErrorf(http.StatusInternalServerError,
				"updates buffered but the triggered refresh failed on a shard (do not resend the batch): %v", err)
		}
		resp.Backlog = 0
		resp.Refreshed = true
		for i, r := range rr {
			if i == 0 || r.Generation < resp.Generation {
				resp.Generation = r.Generation
			}
		}
	}
	return resp, nil
}

// parseStream reads a whole NDJSON mutation stream into a batch request.
// Routing needs every line parsed before anything is forwarded, so — unlike
// a single server, which buffers rows as it streams and keeps the prefix on
// a malformed line — a router rejects the entire stream if any line is bad.
func (rt *Router) parseStream(r io.Reader) (appendRequest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return appendRequest{}, err
	}
	var req appendRequest
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if strings.TrimSpace(line) == "" {
			continue
		}
		labels, values, aux, err := ccubing.ParseNDJSONRow([]byte(line), rt.labeled)
		if err != nil {
			return appendRequest{}, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if rt.labeled {
			req.Rows = append(req.Rows, labels)
		} else {
			req.Values = append(req.Values, values)
		}
		if rt.measure {
			req.Aux = append(req.Aux, aux)
		}
	}
	return req, nil
}

func (rt *Router) AppendStream(r io.Reader) (appendResponse, error) {
	req, err := rt.parseStream(r)
	if err != nil {
		return appendResponse{}, err
	}
	if len(req.Rows) == 0 && len(req.Values) == 0 {
		return appendResponse{}, fmt.Errorf("empty NDJSON stream")
	}
	return rt.Append(req)
}

func (rt *Router) DeleteStream(r io.Reader) (deleteResponse, error) {
	req, err := rt.parseStream(r)
	if err != nil {
		return deleteResponse{}, err
	}
	if len(req.Rows) == 0 && len(req.Values) == 0 {
		return deleteResponse{}, fmt.Errorf("empty NDJSON stream")
	}
	return rt.Delete(req)
}

func (rt *Router) Refresh() (refreshResponse, error) {
	rr, err := rt.broadcastRefresh(nil)
	if err != nil {
		return refreshResponse{}, err
	}
	resp := refreshResponse{}
	for i, r := range rr {
		if i == 0 || r.Generation < resp.Generation {
			resp.Generation = r.Generation
		}
		resp.Appended += r.Appended
		resp.Deleted += r.Deleted
		resp.PartitionsRecomputed += r.PartitionsRecomputed
		resp.PartitionsTotal += r.PartitionsTotal
		resp.CellsRetained += r.CellsRetained
		resp.CellsRebuilt += r.CellsRebuilt
		if r.ElapsedMs > resp.ElapsedMs { // workers refresh in parallel
			resp.ElapsedMs = r.ElapsedMs
		}
	}
	return resp, nil
}

func (rt *Router) Meta() (cubeResponse, error) {
	metas, err := scatterCall(rt, "meta", nil, func(sh Shard) (cubeResponse, error) {
		return sh.Meta()
	})
	if err != nil {
		return cubeResponse{}, err
	}
	resp := cubeResponse{
		Dims:        rt.dims,
		Names:       rt.names,
		MinSup:      metas[0].MinSup,
		Labeled:     rt.labeled,
		Measure:     rt.measure,
		MeasureKind: rt.kind,
		Cuboids:     metas[0].Cuboids,
		Live:        true,
		Shards:      len(rt.shards),
	}
	for i, m := range metas {
		resp.Cells += m.Cells
		resp.SizeByte += m.SizeByte
		resp.SourceRows += m.SourceRows
		resp.Live = resp.Live && m.Live
		if m.Cuboids > resp.Cuboids {
			resp.Cuboids = m.Cuboids
		}
		if i == 0 || m.Generation < resp.Generation {
			resp.Generation = m.Generation
		}
	}
	return resp, nil
}

// Stats gathers every worker's stats without failing wholesale: an
// unreachable worker keeps its slot in Shards with Reachable=false and the
// transport error, so a dead worker is distinguishable from one that simply
// saw no traffic (whose counters are zero but Reachable is true). The merged
// totals cover exactly the reachable workers; any dead worker marks the
// topology not Live.
func (rt *Router) Stats() (statsResponse, error) {
	stats := make([]statsResponse, len(rt.shards))
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := time.Now()
			stats[i], errs[i] = sh.Stats()
			rt.observeWorker(i, nil, ws, errs[i])
		}()
	}
	wg.Wait()
	rt.met.workerCalls["stats"].Add(int64(len(rt.shards)))
	resp := statsResponse{Live: true}
	merged := 0
	for i := range stats {
		reachable := errs[i] == nil
		if !reachable {
			resp.Live = false
			resp.Shards = append(resp.Shards, statsResponse{
				Worker:    rt.workerName(i),
				Reachable: &reachable,
				Error:     errs[i].Error(),
			})
			continue
		}
		st := stats[i]
		st.Worker = rt.workerName(i)
		st.Reachable = &reachable
		resp.Shards = append(resp.Shards, st)
		resp.SourceRows += st.SourceRows
		resp.Backlog += st.Backlog
		resp.Cells += st.Cells
		resp.Live = resp.Live && st.Live
		resp.Refreshes += st.Refreshes
		resp.CacheHits += st.CacheHits
		resp.CacheMisses += st.CacheMisses
		if st.LastRefreshMs > resp.LastRefreshMs {
			resp.LastRefreshMs = st.LastRefreshMs
		}
		if st.LastRefreshError != "" && resp.LastRefreshError == "" {
			resp.LastRefreshError = st.LastRefreshError
		}
		if merged == 0 || st.Generation < resp.Generation {
			resp.Generation = st.Generation
		}
		merged++
	}
	return resp, nil
}
