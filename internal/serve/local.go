package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ccubing"
	"ccubing/internal/obs"
)

// Local serves one in-process cube: the whole relation in single mode, or
// one leading-dimension shard of it on a worker. The cube itself swaps its
// store atomically on refresh; the Local-level pointer additionally swaps
// the whole cube on a warm snapshot reload. Methods load the pointer once
// per call, so every answer comes from one cube and one generation.
type Local struct {
	cube     atomic.Pointer[ccubing.Cube]
	snapshot string // default Reload source; set before serving starts
	shard    string // "index/count" on a shard worker; set before serving starts

	// reg exposes the serving cube's state as gauges and counters, read at
	// scrape time through the atomic pointer — so a Reload swaps what the
	// metrics describe along with what the queries answer from.
	reg *obs.Registry
}

// NewLocal wraps a cube as a Shard. The caller keeps ownership of the cube's
// lifecycle except after Reload, which closes the replaced cube itself.
func NewLocal(cube *ccubing.Cube) *Local {
	l := &Local{reg: obs.NewRegistry()}
	l.cube.Store(cube)
	l.reg.GaugeFunc("ccubing_generation", "Generation of the serving cube.",
		func() float64 { return float64(l.cube.Load().Generation()) })
	l.reg.GaugeFunc("ccubing_backlog_rows", "Buffered delta rows awaiting the next refresh.",
		func() float64 { return float64(l.cube.Load().Backlog()) })
	l.reg.GaugeFunc("ccubing_cells", "Closed cells in the serving store.",
		func() float64 { return float64(l.cube.Load().NumCells()) })
	l.reg.GaugeFunc("ccubing_source_rows", "Source relation rows folded into the serving cube.",
		func() float64 { return float64(l.cube.Load().SourceRows()) })
	l.reg.CounterFunc("ccubing_cache_hits_total", "Point queries answered from the query-result cache.",
		func() int64 { hits, _ := l.cube.Load().QueryCacheMetrics(); return hits })
	l.reg.CounterFunc("ccubing_cache_misses_total", "Point queries that missed the query-result cache.",
		func() int64 { _, misses := l.cube.Load().QueryCacheMetrics(); return misses })
	l.reg.CounterFunc("ccubing_cache_evictions_total", "Query-result cache entries evicted to make room.",
		func() int64 { return l.cube.Load().QueryCacheEvictions() })
	l.reg.CounterFunc("ccubing_refreshes_total", "Published refresh generations since start.",
		func() int64 { return l.cube.Load().RefreshMetrics().Refreshes })
	return l
}

// MetricsRegistry exposes the cube-state registry to the Server's /metrics.
func (l *Local) MetricsRegistry() *obs.Registry { return l.reg }

// Health reports this node's role for GET /v1/health.
func (l *Local) Health() healthResponse {
	cube := l.cube.Load()
	role := "single"
	if l.shard != "" {
		role = "shard"
	}
	return healthResponse{
		Role:       role,
		Shard:      l.shard,
		Generation: cube.Generation(),
		Backlog:    cube.Backlog(),
	}
}

// SetSnapshot sets the default snapshot path for Reload (the -snapshot
// flag). Call before serving starts; not synchronized.
func (l *Local) SetSnapshot(path string) { l.snapshot = path }

// SetShard marks this Local as worker index of a count-wide topology, so
// Meta advertises its slot. Call before serving starts; not synchronized.
func (l *Local) SetShard(index, count int) { l.shard = fmt.Sprintf("%d/%d", index, count) }

// Cube returns the currently serving cube — for process shutdown, which
// closes it to sync the WAL and stop auto-refresh.
func (l *Local) Cube() *ccubing.Cube { return l.cube.Load() }

func (l *Local) Meta() (cubeResponse, error) {
	cube := l.cube.Load()
	return cubeResponse{
		Dims:        cube.NumDims(),
		Names:       cube.Names(),
		Cells:       cube.NumCells(),
		Cuboids:     cube.NumCuboids(),
		MinSup:      cube.MinSup(),
		Labeled:     cube.Labeled(),
		Measure:     cube.HasMeasure(),
		MeasureKind: cube.Measure().String(),
		SizeByte:    cube.Bytes(),
		Generation:  cube.Generation(),
		SourceRows:  cube.SourceRows(),
		Live:        cube.Refreshable(),
		Shard:       l.shard,
	}, nil
}

// resolveCell maps a queryRequest to coded values against the serving cube.
// miss reports an unknown label: a well-formed query whose cell is provably
// empty.
func resolveCell(cube *ccubing.Cube, req queryRequest) (vals []int32, miss bool, err error) {
	if (req.Cell == nil) == (req.Values == nil) {
		return nil, false, fmt.Errorf(`exactly one of "cell" and "values" is required`)
	}
	if req.Limit < 0 {
		return nil, false, fmt.Errorf("bad limit %d", req.Limit)
	}
	if req.Values != nil {
		if err := validateValues(cube, req.Values); err != nil {
			return nil, false, err
		}
		return req.Values, false, nil
	}
	if !cube.Labeled() {
		// Coded cube: parse the components as integers ("*" = wildcard).
		if len(req.Cell) != cube.NumDims() {
			return nil, false, fmt.Errorf("cell has %d components, want %d", len(req.Cell), cube.NumDims())
		}
		vals = make([]int32, len(req.Cell))
		for d, c := range req.Cell {
			if c == "*" {
				vals[d] = ccubing.Star
				continue
			}
			v, err := strconv.ParseInt(c, 10, 32)
			if err != nil || v < 0 {
				return nil, false, fmt.Errorf("bad value %q for dimension %s", c, cube.Names()[d])
			}
			vals[d] = int32(v)
		}
		return vals, false, nil
	}
	vals, err = cube.ParseCell(req.Cell)
	if err != nil {
		if errors.Is(err, ccubing.ErrUnknownLabel) {
			return nil, true, nil
		}
		return nil, false, err
	}
	return vals, false, nil
}

// validateValues checks a coded cell vector: correct arity, and every entry
// either a non-negative dictionary code or the wildcard sentinel. Arbitrary
// negative entries would silently pack garbage keys and read as misses.
func validateValues(cube *ccubing.Cube, vals []int32) error {
	if len(vals) != cube.NumDims() {
		return fmt.Errorf("cell has %d values, want %d", len(vals), cube.NumDims())
	}
	for d, v := range vals {
		if v < 0 && v != ccubing.Star {
			return fmt.Errorf("bad value %d for dimension %s (codes are non-negative; %d = wildcard)",
				v, cube.Names()[d], ccubing.Star)
		}
	}
	return nil
}

func (l *Local) Query(req queryRequest) (queryResponse, error) {
	cube := l.cube.Load()
	start := time.Now()
	vals, miss, err := resolveCell(cube, req)
	req.trace.Observe("resolve", time.Since(start))
	if err != nil {
		return queryResponse{}, err
	}
	if miss { // unknown label: the cell is necessarily empty
		return queryResponse{Found: false}, nil
	}
	start = time.Now()
	cell, ok := cube.LookupStored(vals)
	req.trace.Observe("probe", time.Since(start))
	if !ok {
		return queryResponse{Found: false}, nil
	}
	resp := queryResponse{Found: true, Count: cell.Count, Closure: cube.Labels(cell.Values)}
	if cube.HasMeasure() {
		aux := cube.PresentAux(cell.Aux, cell.Count)
		resp.Aux = &aux
		if avgStored(cube) {
			raw := cell.Aux
			resp.AuxRaw = &raw
		}
	}
	return resp, nil
}

// avgStored reports an avg cube holding stored (mergeable) sums — the one
// measure configuration whose presented values cannot be recombined across
// shards, so shard answers carry the raw sum alongside the mean.
func avgStored(cube *ccubing.Cube) bool {
	return cube.Measure() == ccubing.MeasureAvg && cube.AuxStored()
}

const defaultSliceLimit = 1000

func (l *Local) Slice(req queryRequest) (sliceResponse, error) {
	cube := l.cube.Load()
	start := time.Now()
	vals, miss, err := resolveCell(cube, req)
	req.trace.Observe("resolve", time.Since(start))
	if err != nil {
		return sliceResponse{}, err
	}
	limit := defaultSliceLimit
	if req.Limit > 0 {
		limit = req.Limit
	}
	resp := sliceResponse{Cells: []sliceCell{}}
	if miss {
		return resp, nil
	}
	// Collect every matching cell, order canonically, then truncate: the
	// store's visit order ties break on shard-local packed keys, so cutting
	// off mid-walk would keep different cells on different topologies.
	start = time.Now()
	defer func() { req.trace.Observe("slice", time.Since(start)) }()
	cube.Slice(vals, func(c ccubing.Cell) bool {
		sc := sliceCell{Cell: cube.Labels(c.Values), Count: c.Count}
		if cube.HasMeasure() {
			aux := c.Aux
			sc.Aux = &aux
		}
		resp.Cells = append(resp.Cells, sc)
		return true
	})
	sortSliceCells(resp.Cells)
	if len(resp.Cells) > limit {
		resp.Cells = resp.Cells[:limit]
		resp.Truncated = true
	}
	return resp, nil
}

func (l *Local) Aggregate(req aggregateRequest) (aggregateResponse, error) {
	cube := l.cube.Load()
	if req.TopK < 0 {
		return aggregateResponse{}, fmt.Errorf("bad top_k %d", req.TopK)
	}
	// TopK stays out of the store call: collect every group, rank with the
	// canonical label tie-break, then truncate (see canon.go).
	opt := ccubing.AggregateOptions{GroupBy: req.GroupBy}
	var err error
	if opt.By, err = ccubing.ParseOrderBy(req.OrderBy); err != nil {
		return aggregateResponse{}, err
	}
	if opt.AuxAgg, err = ccubing.ParseAuxAgg(req.AuxAgg); err != nil {
		return aggregateResponse{}, err
	}
	// Avg aggregations fetch the raw group sums and present (divide) here, so
	// the wire carries both the mergeable sum and the client-facing mean.
	avgMode := avgStored(cube) &&
		(opt.AuxAgg == ccubing.MeasureNone || opt.AuxAgg == ccubing.MeasureAvg)
	if avgMode {
		opt.AuxAgg = ccubing.MeasureSum
	}
	where := req.Where
	if where == nil {
		where = make([]string, cube.NumDims())
		for d := range where {
			where[d] = "*"
		}
	}
	start := time.Now()
	spec, err := cube.ParseSpec(where)
	req.trace.Observe("resolve", time.Since(start))
	if err != nil {
		return aggregateResponse{}, err
	}
	start = time.Now()
	rows, exact, err := cube.Aggregate(spec, opt)
	req.trace.Observe("aggregate", time.Since(start))
	if err != nil {
		return aggregateResponse{}, err
	}
	resp := aggregateResponse{Rows: make([]aggregateRow, 0, len(rows)), Exact: exact}
	for _, c := range rows {
		row := aggregateRow{Cell: cube.Labels(c.Values), Count: c.Count}
		if cube.HasMeasure() {
			aux := c.Aux
			if avgMode {
				raw := c.Aux
				row.AuxRaw = &raw
				aux = cube.PresentAux(raw, c.Count)
			}
			row.Aux = &aux
		}
		resp.Rows = append(resp.Rows, row)
	}
	sortAggRows(resp.Rows, opt.By == ccubing.ByAux)
	if req.TopK > 0 && len(resp.Rows) > req.TopK {
		resp.Rows = resp.Rows[:req.TopK]
	}
	return resp, nil
}

// errStatic rejects mutations against a snapshot-loaded cube.
func errStatic(verb string) error {
	return statusErrorf(http.StatusConflict, "cube is static (snapshot-loaded); serve from data to %s", verb)
}

func (l *Local) Append(req appendRequest) (appendResponse, error) {
	cube := l.cube.Load()
	if !cube.Refreshable() {
		return appendResponse{}, errStatic("mutate")
	}
	if (req.Rows == nil) == (req.Values == nil) {
		return appendResponse{}, fmt.Errorf(`exactly one of "rows" and "values" is required`)
	}
	genBefore := cube.Generation()
	var n int
	var err error
	if req.Rows != nil {
		n, err = cube.Append(req.Rows, req.Aux)
	} else {
		n, err = cube.AppendValues(req.Values, req.Aux)
	}
	if err != nil {
		return appendResponse{}, mutateError(n, err)
	}
	if req.Refresh {
		if _, err := cube.Refresh(); err != nil {
			return appendResponse{}, statusErrorf(http.StatusInternalServerError, "%v", err)
		}
	}
	gen := cube.Generation()
	return appendResponse{
		Appended:   n,
		Backlog:    cube.Backlog(),
		Generation: gen,
		Refreshed:  gen != genBefore,
	}, nil
}

func (l *Local) Delete(req appendRequest) (deleteResponse, error) {
	cube := l.cube.Load()
	if !cube.Refreshable() {
		return deleteResponse{}, errStatic("mutate")
	}
	if (req.Rows == nil) == (req.Values == nil) {
		return deleteResponse{}, fmt.Errorf(`exactly one of "rows" and "values" is required`)
	}
	genBefore := cube.Generation()
	var n int
	var err error
	if req.Rows != nil {
		n, err = cube.DeleteLabels(req.Rows, req.Aux)
	} else {
		n, err = cube.Delete(req.Values, req.Aux)
	}
	if err != nil {
		return deleteResponse{}, mutateError(n, err)
	}
	if req.Refresh {
		if _, err := cube.Refresh(); err != nil {
			return deleteResponse{}, statusErrorf(http.StatusInternalServerError, "%v", err)
		}
	}
	gen := cube.Generation()
	return deleteResponse{
		Deleted:    n,
		Backlog:    cube.Backlog(),
		Generation: gen,
		Refreshed:  gen != genBefore,
	}, nil
}

func (l *Local) Update(req updateRequest) (updateResponse, error) {
	cube := l.cube.Load()
	if !cube.Refreshable() {
		return updateResponse{}, errStatic("mutate")
	}
	labeled := req.OldRows != nil || req.NewRows != nil
	coded := req.OldValues != nil || req.NewValues != nil
	if labeled == coded {
		return updateResponse{}, fmt.Errorf(`exactly one of "old_rows"/"new_rows" and "old_values"/"new_values" is required`)
	}
	genBefore := cube.Generation()
	var n int
	var err error
	if labeled {
		n, err = cube.UpdateLabels(req.OldRows, req.NewRows, req.OldAux, req.NewAux)
	} else {
		n, err = cube.Update(req.OldValues, req.NewValues, req.OldAux, req.NewAux)
	}
	if err != nil {
		return updateResponse{}, mutateError(n, err)
	}
	if req.Refresh {
		if _, err := cube.Refresh(); err != nil {
			return updateResponse{}, statusErrorf(http.StatusInternalServerError, "%v", err)
		}
	}
	gen := cube.Generation()
	return updateResponse{
		Updated:    n,
		Backlog:    cube.Backlog(),
		Generation: gen,
		Refreshed:  gen != genBefore,
	}, nil
}

func (l *Local) AppendStream(r io.Reader) (appendResponse, error) {
	cube := l.cube.Load()
	if !cube.Refreshable() {
		return appendResponse{}, errStatic("mutate")
	}
	genBefore := cube.Generation()
	n, err := cube.AppendNDJSON(r)
	if err != nil {
		return appendResponse{}, err
	}
	gen := cube.Generation()
	return appendResponse{
		Appended:   n,
		Backlog:    cube.Backlog(),
		Generation: gen,
		Refreshed:  gen != genBefore,
	}, nil
}

func (l *Local) DeleteStream(r io.Reader) (deleteResponse, error) {
	cube := l.cube.Load()
	if !cube.Refreshable() {
		return deleteResponse{}, errStatic("mutate")
	}
	genBefore := cube.Generation()
	n, err := cube.DeleteNDJSON(r)
	if err != nil {
		return deleteResponse{}, err
	}
	gen := cube.Generation()
	return deleteResponse{
		Deleted:    n,
		Backlog:    cube.Backlog(),
		Generation: gen,
		Refreshed:  gen != genBefore,
	}, nil
}

func (l *Local) Refresh() (refreshResponse, error) {
	cube := l.cube.Load()
	if !cube.Refreshable() {
		return refreshResponse{}, errStatic("refresh")
	}
	st, err := cube.Refresh()
	if err != nil {
		return refreshResponse{}, statusErrorf(http.StatusInternalServerError, "%v", err)
	}
	return refreshResponse{
		Generation:           st.Generation,
		Appended:             st.Appended,
		Deleted:              st.Deleted,
		PartitionsRecomputed: st.PartitionsRecomputed,
		PartitionsTotal:      st.PartitionsTotal,
		CellsRetained:        st.CellsRetained,
		CellsRebuilt:         st.CellsRebuilt,
		ElapsedMs:            float64(st.Elapsed.Microseconds()) / 1000,
	}, nil
}

func (l *Local) Stats() (statsResponse, error) {
	cube := l.cube.Load()
	m := cube.RefreshMetrics()
	hits, misses := cube.QueryCacheMetrics()
	return statsResponse{
		Generation:       m.Generation,
		SourceRows:       m.Rows,
		Backlog:          m.Backlog,
		Cells:            cube.NumCells(),
		Live:             cube.Refreshable(),
		Refreshes:        m.Refreshes,
		LastRefreshMs:    float64(m.Last.Elapsed.Microseconds()) / 1000,
		LastRefreshError: m.LastError,
		CacheHits:        hits,
		CacheMisses:      misses,
	}, nil
}

// Reload swaps the serving cube for one loaded from a snapshot — the warm
// path for picking up an offline rebuild without a restart. The snapshot
// must describe the same cube (dimension names) and must not regress the
// generation; in-flight queries finish on the old cube.
func (l *Local) Reload(req reloadRequest) (reloadResponse, error) {
	path := req.Path
	if path == "" {
		path = l.snapshot
	}
	if path == "" {
		return reloadResponse{}, fmt.Errorf("no snapshot path: pass {\"path\": ...} or start with -snapshot")
	}
	f, err := os.Open(path)
	if err != nil {
		return reloadResponse{}, err
	}
	defer f.Close()
	loaded, err := ccubing.LoadCube(bufio.NewReader(f))
	if err != nil {
		return reloadResponse{}, err
	}
	cur := l.cube.Load()
	if got, want := strings.Join(loaded.Names(), ","), strings.Join(cur.Names(), ","); got != want {
		return reloadResponse{}, statusErrorf(http.StatusConflict,
			"snapshot describes a different cube (dimensions %q, serving %q)", got, want)
	}
	if loaded.Generation() < cur.Generation() {
		return reloadResponse{}, statusErrorf(http.StatusConflict,
			"snapshot generation %d regresses serving generation %d", loaded.Generation(), cur.Generation())
	}
	if backlog := cur.Backlog(); backlog > 0 && !req.Force {
		return reloadResponse{}, statusErrorf(http.StatusConflict,
			"serving cube has %d buffered append rows that a reload would discard; POST /v1/refresh first or pass {\"force\": true}", backlog)
	}
	old := l.cube.Swap(loaded)
	_ = old.Close() // stop any auto-refresh timer; queries in flight finish on it
	return reloadResponse{
		Path:       path,
		Generation: loaded.Generation(),
		Cells:      loaded.NumCells(),
		SourceRows: loaded.SourceRows(),
	}, nil
}
