package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccubing/internal/obs"
)

// Server is the HTTP transport over a Shard: it owns request parsing (GET
// parameters and JSON bodies), body-size ceilings, mutation rate limiting
// and per-endpoint counters, and delegates every semantic decision —
// validation against the cube, routing, merging — to the Shard. The same
// Server therefore fronts a single cube, a shard worker and a router.
type Server struct {
	shard   Shard
	start   time.Time    // construction time, for /v1/stats uptime
	limiter *tokenBucket // rate limit on mutating endpoints; nil = unlimited
	mux     *http.ServeMux

	// reg holds this server's transport metrics (per-endpoint latency
	// histograms, rate-limit turn-aways, uptime); GET /metrics merges it
	// with the shard's registry and obs.Default.
	reg     *obs.Registry
	slow    time.Duration // slow-query log threshold; 0 = disabled
	slowLog *log.Logger

	// Per-endpoint request counters, exposed by /v1/stats.
	nCube, nQuery, nSlice, nAggregate, nAppend, nDelete, nUpdate, nRefresh, nReload, nStats atomic.Int64
	nRateLimited                                                                            atomic.Int64
}

// Config carries the transport-level knobs.
type Config struct {
	// Rate bounds the mutating endpoints (append/delete/update/refresh/
	// reload) to this many requests per second via a shared token bucket;
	// 0 = unlimited.
	Rate float64
	// SlowQuery logs one structured line (request ID, endpoint, spec,
	// per-stage timings) for every request slower than this; 0 disables.
	SlowQuery time.Duration
	// SlowLog receives the slow-query lines; nil logs to stderr.
	SlowLog *log.Logger
}

// tokenBucket rate-limits the mutating endpoints: rate tokens/second refill
// a bucket of burst capacity; a request spends one token or is turned away
// with the time until the next one.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	burst := math.Ceil(rate)
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// take spends one token, or reports how long until one accrues.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// allowMutation gates a mutating request through the token bucket; on
// rejection it writes 429 with a Retry-After hint and counts the turn-away.
func (s *Server) allowMutation(w http.ResponseWriter) bool {
	if s.limiter == nil {
		return true
	}
	ok, retry := s.limiter.take()
	if ok {
		return true
	}
	s.nRateLimited.Add(1)
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded; retry in %ds", secs))
	return false
}

// Request-body ceilings: queries are small; appends carry batches of rows.
// Oversized bodies are rejected with 413 via http.MaxBytesReader.
const (
	maxQueryBody  = 1 << 20
	maxAppendBody = 32 << 20
)

// NewServer builds the HTTP surface over a shard. The routing table:
//
//	GET  /healthz       liveness probe
//	GET  /v1/cube       cube metadata
//	GET  /v1/query      ?cell=v0,v1,*,v3 (labels when the cube has
//	                    dictionaries, coded values otherwise; * = wildcard)
//	                    or ?values=3,-1,7 (dictionary codes, -1 = wildcard)
//	POST /v1/query      {"cell": ["a","*"]} or {"values": [3,-1]}
//	GET  /v1/slice      ?cell=...&limit=N (or ?values=..., like /v1/query)
//	POST /v1/slice      {"cell": [...], "limit": N}
//	GET  /v1/aggregate  ?where=*,a|b,x..y&group_by=d1,d2&top_k=5&order_by=count
//	POST /v1/aggregate  {"where": [...], "group_by": [...], "top_k": 5,
//	                    "order_by": "count"|"aux", "aux_agg": "sum"|"min"|"max"}
//	POST /v1/append     {"rows": [["a","b"],...]} or {"values": [[1,2],...]},
//	                    optional "aux": [...] and "refresh": true — or an
//	                    application/x-ndjson stream, one tuple per line
//	POST /v1/delete     same body shapes as /v1/append; each tuple is a
//	                    tombstone removing one matching occurrence
//	POST /v1/update     {"old_rows": [...], "new_rows": [...]} (labels) or
//	                    {"old_values": [...], "new_values": [...]} (codes),
//	                    optional "old_aux"/"new_aux" and "refresh": true
//	POST /v1/refresh    fold the buffered delta in (partition-scoped)
//	POST /v1/reload     {"path": "..."} warm snapshot reload (defaults to the
//	                    -snapshot path); 501 on shards without one (routers)
//	GET  /v1/stats      generation, backlog, refresh latency, per-endpoint
//	                    query counters (plus per-worker stats on a router)
//	GET  /v1/health     role, shard slot or worker count, generation,
//	                    backlog, uptime — the load-balancer check
//	GET  /metrics       Prometheus text exposition: transport, shard and
//	                    process metrics merged into one scrape
//
// Every v1 endpoint echoes an X-CCubing-Request-ID header (honoring an
// inbound one), which a router propagates to its workers — one ID follows a
// request across the topology. Wrong-method hits on the v1 endpoints get 405
// with an Allow header (the Go 1.22 ServeMux method-pattern contract).
// Mutating endpoints share the Config.Rate token bucket; over-budget
// requests get 429 with Retry-After.
func NewServer(shard Shard, cfg Config) *Server {
	s := &Server{
		shard:   shard,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		reg:     obs.NewRegistry(),
		slow:    cfg.SlowQuery,
		slowLog: cfg.SlowLog,
	}
	if s.slowLog == nil {
		s.slowLog = log.New(os.Stderr, "", log.LstdFlags)
	}
	if cfg.Rate > 0 {
		s.limiter = newTokenBucket(cfg.Rate)
	}
	s.reg.GaugeFunc("ccubing_uptime_seconds", "Seconds since this server was built.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.CounterFunc("ccubing_rate_limited_total", "Mutating requests turned away by the rate limiter.",
		func() int64 { return s.nRateLimited.Load() })
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/cube", s.wrap("cube", &s.nCube, s.handleCube))
	s.mux.HandleFunc("GET /v1/query", s.wrap("query", &s.nQuery, s.handleQuery))
	s.mux.HandleFunc("POST /v1/query", s.wrap("query", &s.nQuery, s.handleQuery))
	s.mux.HandleFunc("GET /v1/slice", s.wrap("slice", &s.nSlice, s.handleSlice))
	s.mux.HandleFunc("POST /v1/slice", s.wrap("slice", &s.nSlice, s.handleSlice))
	s.mux.HandleFunc("GET /v1/aggregate", s.wrap("aggregate", &s.nAggregate, s.handleAggregate))
	s.mux.HandleFunc("POST /v1/aggregate", s.wrap("aggregate", &s.nAggregate, s.handleAggregate))
	s.mux.HandleFunc("POST /v1/append", s.wrap("append", &s.nAppend, s.handleAppend))
	s.mux.HandleFunc("POST /v1/delete", s.wrap("delete", &s.nDelete, s.handleDelete))
	s.mux.HandleFunc("POST /v1/update", s.wrap("update", &s.nUpdate, s.handleUpdate))
	s.mux.HandleFunc("POST /v1/refresh", s.wrap("refresh", &s.nRefresh, s.handleRefresh))
	s.mux.HandleFunc("POST /v1/reload", s.wrap("reload", &s.nReload, s.handleReload))
	s.mux.HandleFunc("GET /v1/stats", s.wrap("stats", &s.nStats, s.handleStats))
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// wrap is the per-endpoint middleware: it counts the request, assigns or
// honors the request ID (echoed on the response and carried by the trace to
// every stage, including a router's worker calls), times the request into
// the endpoint's latency histogram, and emits the slow-query log line when
// the request crosses the configured threshold. Scrape and liveness
// endpoints stay unwrapped — they are not request traffic.
func (s *Server) wrap(endpoint string, count *atomic.Int64, fn func(http.ResponseWriter, *http.Request, *obs.Trace)) http.HandlerFunc {
	hist := s.reg.Histogram("ccubing_http_request_seconds",
		"HTTP request latency by endpoint.", "endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		count.Add(1)
		rid := r.Header.Get(obs.RequestIDHeader)
		if rid == "" {
			rid = obs.NewID()
		}
		w.Header().Set(obs.RequestIDHeader, rid)
		tr := obs.NewTrace(rid)
		startReq := time.Now()
		fn(w, r, tr)
		elapsed := time.Since(startReq)
		hist.Observe(elapsed)
		if s.slow > 0 && elapsed >= s.slow {
			s.slowLog.Printf("slow-query id=%s endpoint=%s dur=%s spec=%q stages=[%s]",
				rid, endpoint, elapsed.Round(time.Microsecond), tr.Note, tr)
		}
	}
}

// handleMetrics serves the merged Prometheus exposition: this server's
// transport metrics, the shard's own registry when it has one (Local's cube
// gauges, a Router's per-worker series), and the process-wide obs.Default
// (probe, cache and WAL instrumentation).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	regs := make([]*obs.Registry, 0, 3)
	regs = append(regs, s.reg)
	if mp, ok := s.shard.(metricsProvider); ok {
		regs = append(regs, mp.MetricsRegistry())
	}
	regs = append(regs, obs.Default)
	w.Header().Set("Content-Type", obs.ContentType)
	_ = obs.WriteText(w, regs...)
}

// handleHealth answers the load-balancer check: transport fields from the
// server, role fields from the shard when it reports them.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Role: "single"}
	if h, ok := s.shard.(healther); ok {
		resp = h.Health()
	}
	resp.Status = "ok"
	resp.UptimeMs = time.Since(s.start).Milliseconds()
	resp.GoVersion = runtime.Version()
	writeJSON(w, http.StatusOK, resp)
}

// Handler returns the serving mux.
func (s *Server) Handler() http.Handler { return s.mux }

// EnablePprof exposes the net/http/pprof endpoints on the serving mux
// (which is not http.DefaultServeMux, so the package's init registration
// does not apply). Opt-in: profiling handlers reveal internals and cost CPU.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func (s *Server) handleCube(w http.ResponseWriter, r *http.Request, _ *obs.Trace) {
	resp, err := s.shard.Meta()
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// readQueryRequest extracts the queryRequest from the GET parameters or the
// JSON body. Semantic validation (exactly-one-of, arity, label resolution)
// belongs to the Shard; this only gets the bytes into the struct, rejecting
// what cannot even be represented.
func (s *Server) readQueryRequest(w http.ResponseWriter, r *http.Request) (queryRequest, error) {
	var req queryRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		cell, values := q.Get("cell"), q.Get("values")
		if (cell == "") == (values == "") {
			return req, fmt.Errorf(`exactly one of the "cell" and "values" parameters is required`)
		}
		if cell != "" {
			req.Cell = strings.Split(cell, ",")
		} else {
			for _, part := range strings.Split(values, ",") {
				v, err := strconv.ParseInt(part, 10, 32)
				if err != nil {
					return req, fmt.Errorf("bad coded value %q", part)
				}
				req.Values = append(req.Values, int32(v))
			}
		}
		// Same contract as the POST body: negative or non-numeric limits are
		// errors, 0 (or absent) means the default.
		if ls := q.Get("limit"); ls != "" {
			var err error
			if req.Limit, err = strconv.Atoi(ls); err != nil || req.Limit < 0 {
				return req, fmt.Errorf("bad limit %q", ls)
			}
		}
		return req, nil
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return req, fmt.Errorf("bad JSON body: %w", err)
	}
	return req, nil
}

// cellSpec renders the point-query target for the slow-query log note.
func cellSpec(req queryRequest) string {
	if len(req.Cell) > 0 {
		return "cell=" + strings.Join(req.Cell, ",")
	}
	parts := make([]string, len(req.Values))
	for i, v := range req.Values {
		parts[i] = strconv.FormatInt(int64(v), 10)
	}
	return "values=" + strings.Join(parts, ",")
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, tr *obs.Trace) {
	req, err := s.readQueryRequest(w, r)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	req.trace = tr
	tr.Note = cellSpec(req)
	resp, err := s.shard.Query(req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request, tr *obs.Trace) {
	req, err := s.readQueryRequest(w, r)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	req.trace = tr
	tr.Note = cellSpec(req)
	resp, err := s.shard.Slice(req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request, tr *obs.Trace) {
	var req aggregateRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		if where := q.Get("where"); where != "" {
			req.Where = strings.Split(where, ",")
		}
		if gb := q.Get("group_by"); gb != "" {
			req.GroupBy = strings.Split(gb, ",")
		}
		if tk := q.Get("top_k"); tk != "" {
			v, err := strconv.Atoi(tk)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad top_k %q", tk))
				return
			}
			req.TopK = v
		}
		req.OrderBy = q.Get("order_by")
		req.AuxAgg = q.Get("aux_agg")
	} else {
		r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			err = fmt.Errorf("bad JSON body: %w", err)
			writeError(w, httpStatus(err), err)
			return
		}
	}
	req.trace = tr
	tr.Note = "where=" + strings.Join(req.Where, ",") + " group_by=" + strings.Join(req.GroupBy, ",")
	resp, err := s.shard.Aggregate(req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request, tr *obs.Trace) {
	if !s.allowMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxAppendBody)
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		resp, err := s.shard.AppendStream(r.Body)
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		err = fmt.Errorf("bad JSON body: %w", err)
		writeError(w, httpStatus(err), err)
		return
	}
	req.trace = tr
	tr.Note = fmt.Sprintf("rows=%d", len(req.Rows)+len(req.Values))
	resp, err := s.shard.Append(req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, tr *obs.Trace) {
	if !s.allowMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxAppendBody)
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		resp, err := s.shard.DeleteStream(r.Body)
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		err = fmt.Errorf("bad JSON body: %w", err)
		writeError(w, httpStatus(err), err)
		return
	}
	req.trace = tr
	tr.Note = fmt.Sprintf("rows=%d", len(req.Rows)+len(req.Values))
	resp, err := s.shard.Delete(req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, tr *obs.Trace) {
	if !s.allowMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxAppendBody)
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		err = fmt.Errorf("bad JSON body: %w", err)
		writeError(w, httpStatus(err), err)
		return
	}
	req.trace = tr
	tr.Note = fmt.Sprintf("pairs=%d", len(req.OldRows)+len(req.OldValues))
	resp, err := s.shard.Update(req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request, _ *obs.Trace) {
	if !s.allowMutation(w) {
		return
	}
	resp, err := s.shard.Refresh()
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request, _ *obs.Trace) {
	if !s.allowMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		err = fmt.Errorf("bad JSON body: %w", err)
		writeError(w, httpStatus(err), err)
		return
	}
	rl, ok := s.shard.(reloader)
	if !ok {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("reload is not supported on this node; reload each shard worker directly"))
		return
	}
	resp, err := rl.Reload(req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, _ *obs.Trace) {
	resp, err := s.shard.Stats()
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	// Transport-level counters belong to this node, not the shard: a router
	// reports its own request mix here, with each worker's in Shards.
	resp.UptimeMs = time.Since(s.start).Milliseconds()
	resp.RateLimited = s.nRateLimited.Load()
	resp.Requests = map[string]int64{
		"cube":      s.nCube.Load(),
		"query":     s.nQuery.Load(),
		"slice":     s.nSlice.Load(),
		"aggregate": s.nAggregate.Load(),
		"append":    s.nAppend.Load(),
		"delete":    s.nDelete.Load(),
		"update":    s.nUpdate.Load(),
		"refresh":   s.nRefresh.Load(),
		"reload":    s.nReload.Load(),
		"stats":     s.nStats.Load(),
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
