package serve

// Observability tests: /metrics exposition from every role, /v1/health role
// reporting, request-ID propagation across a routed topology, the slow-query
// log line, dead-worker stats, and stage-histogram population under a
// WAL-backed workload.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ccubing"
	"ccubing/internal/obs"
)

// scrapeMetrics fetches GET /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics content type = %q, want %q", ct, obs.ContentType)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readBody(t, resp)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// metricValue extracts one sample's value from exposition text; series is
// the full sample name including its label block, e.g.
// `ccubing_http_request_seconds_count{endpoint="query"}`.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %s not found in exposition:\n%s", series, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %s value %q: %v", series, m[1], err)
	}
	return v
}

// TestMetricsAndHealthSingle drives a single-cube server and checks the
// scrape carries transport, cube-state and process families, and that
// /v1/health reports the single role.
func TestMetricsAndHealthSingle(t *testing.T) {
	cube, _ := testCube(t, 1)
	ts := httptest.NewServer(newMux(cube, "", 0))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/query?cell=oslo,pen,2025")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	text := scrapeMetrics(t, ts)
	if got := metricValue(t, text, `ccubing_http_request_seconds_count{endpoint="query"}`); got != 3 {
		t.Fatalf("query request count = %g, want 3", got)
	}
	for _, series := range []string{
		"ccubing_uptime_seconds",
		"ccubing_rate_limited_total",
		"ccubing_generation",
		"ccubing_backlog_rows",
		"ccubing_cells",
		"ccubing_source_rows",
		"ccubing_cache_hits_total",
		"ccubing_cache_misses_total",
		"ccubing_cache_evictions_total",
		"ccubing_refreshes_total",
		"ccubing_probe_ops_total",
		"ccubing_probe_seconds_count",
	} {
		metricValue(t, text, series) // fatal if absent
	}
	// Histogram shape: cumulative buckets end at +Inf and agree with _count.
	if inf := metricValue(t, text, `ccubing_http_request_seconds_bucket{endpoint="query",le="+Inf"}`); inf != 3 {
		t.Fatalf("+Inf bucket = %g, want 3", inf)
	}

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != "single" || h.GoVersion == "" || h.UptimeMs < 0 {
		t.Fatalf("health = %+v", h)
	}
}

// TestHealthRoles pins the role fields: a sharded Local reports its slot, a
// router its worker count.
func TestHealthRoles(t *testing.T) {
	cube, _ := testCube(t, 1)
	l := NewLocal(cube)
	l.SetShard(1, 2)
	if h := l.Health(); h.Role != "shard" || h.Shard != "1/2" {
		t.Fatalf("shard health = %+v", h)
	}

	rt := newTestRouter(t, routerDataset(t), 1, 2)
	if h := rt.Health(); h.Role != "router" || h.Workers != 2 {
		t.Fatalf("router health = %+v", h)
	}
}

// TestRequestIDPropagation stands up two real workers behind header-capturing
// middleware and a router in front: an inbound X-CCubing-Request-ID must
// reach every worker of a scattered query and echo on the router's response.
func TestRequestIDPropagation(t *testing.T) {
	ds := routerDataset(t)
	locals := shardedLocals(t, ds, 1, 2)

	var mu sync.Mutex
	seen := make(map[int][]string) // worker index -> request IDs observed
	var workers []Shard
	for i, l := range locals {
		inner := NewServer(l, Config{}).Handler()
		ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seen[i] = append(seen[i], r.Header.Get(obs.RequestIDHeader))
			mu.Unlock()
			inner.ServeHTTP(w, r)
		}))
		defer ws.Close()
		w, err := Dial(ws.URL)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	rt, err := NewRouter(workers)
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(NewServer(rt, Config{}).Handler())
	defer router.Close()

	// The NewRouter metadata fetch reached the workers untraced; reset.
	mu.Lock()
	seen = make(map[int][]string)
	mu.Unlock()

	const rid = "test-rid-42"
	req, err := http.NewRequest(http.MethodGet, router.URL+"/v1/query?cell=*,pen,*", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != rid {
		t.Fatalf("router echoed ID %q, want %q", got, rid)
	}
	mu.Lock()
	observed := make(map[int][]string, len(seen))
	for i, ids := range seen {
		observed[i] = append([]string(nil), ids...)
	}
	mu.Unlock()
	for i := range locals {
		ids := observed[i]
		if len(ids) == 0 {
			t.Fatalf("worker %d saw no calls for the scattered query", i)
		}
		for _, got := range ids {
			if got != rid {
				t.Fatalf("worker %d saw ID %q, want %q", i, got, rid)
			}
		}
	}

	// Without an inbound header the router mints one and still echoes it.
	resp2, err := http.Get(router.URL + "/v1/query?cell=*,ink,*")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if minted := resp2.Header.Get(obs.RequestIDHeader); minted == "" || minted == rid {
		t.Fatalf("minted ID = %q", minted)
	}
}

// TestSlowQueryLog pins the structured slow-query line: with a threshold
// every request crosses, one line carries the ID, endpoint, spec and stage
// timings.
func TestSlowQueryLog(t *testing.T) {
	cube, _ := testCube(t, 1)
	var buf bytes.Buffer
	var mu sync.Mutex
	logged := func() string { mu.Lock(); defer mu.Unlock(); return buf.String() }
	l := NewLocal(cube)
	srv := NewServer(l, Config{SlowQuery: time.Nanosecond, SlowLog: log.New(lockedWriter{&mu, &buf}, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/query?cell=oslo,pen,2025", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "slow-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := logged()
	for _, want := range []string{
		"slow-query id=slow-1",
		"endpoint=query",
		`spec="cell=oslo,pen,2025"`,
		"resolve=",
		"probe=",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-query log %q missing %q", line, want)
		}
	}
}

// lockedWriter serializes log writes against the test's reader.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestRouterDeadWorkerStats pins the tolerant stats contract: a worker that
// dies after construction keeps its Shards slot with Reachable=false and the
// transport error, while a zero-traffic live worker stays Reachable=true —
// and the merged totals cover exactly the reachable workers.
func TestRouterDeadWorkerStats(t *testing.T) {
	ds := routerDataset(t)
	locals := shardedLocals(t, ds, 1, 2)
	var servers []*httptest.Server
	var workers []Shard
	for _, l := range locals {
		ws := httptest.NewServer(NewServer(l, Config{}).Handler())
		servers = append(servers, ws)
		w, err := Dial(ws.URL)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer servers[0].Close()
	rt, err := NewRouter(workers)
	if err != nil {
		t.Fatal(err)
	}

	servers[1].Close() // worker 1 dies after the topology came up

	st, err := rt.Stats()
	if err != nil {
		t.Fatalf("stats must not fail wholesale with a dead worker: %v", err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("got %d shard entries, want 2", len(st.Shards))
	}
	w0, w1 := st.Shards[0], st.Shards[1]
	if w0.Reachable == nil || !*w0.Reachable || w0.Error != "" || w0.Worker != servers[0].URL {
		t.Fatalf("live worker entry = %+v", w0)
	}
	if w1.Reachable == nil || *w1.Reachable || w1.Error == "" || w1.Worker != servers[1].URL {
		t.Fatalf("dead worker entry = %+v", w1)
	}
	if st.Live {
		t.Fatal("topology with a dead worker must not report live")
	}
	// Merged totals cover only the reachable worker.
	live, err := locals[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SourceRows != live.SourceRows || st.Cells != live.Cells {
		t.Fatalf("merged totals %d rows/%d cells, want reachable-only %d/%d",
			st.SourceRows, st.Cells, live.SourceRows, live.Cells)
	}
}

// TestStageHistogramsPopulated drives a WAL-backed cube through queries,
// mutations and a refresh, and a scattered query through a router, then
// checks every stage histogram observed at least one sample: probe and
// cache-hit on the query path, WAL append/sync and refresh on the write
// path, scatter and merge on the router.
func TestStageHistogramsPopulated(t *testing.T) {
	cube, _ := testCube(t, 1)
	wal := filepath.Join(t.TempDir(), "delta.wal")
	if err := cube.AutoRefresh(ccubing.AutoRefreshOptions{WAL: wal}); err != nil {
		t.Fatal(err)
	}
	l := NewLocal(cube)

	// Miss then hit: the first Lookup probes the store, the second comes from
	// the result cache.
	for i := 0; i < 2; i++ {
		if _, err := l.Query(queryRequest{Cell: []string{"oslo", "pen", "2025"}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Append(appendRequest{Rows: [][]string{{"oslo", "pen", "2030"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := cube.Close(); err != nil { // syncs the WAL
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := obs.WriteText(&sb, obs.Default); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, series := range []string{
		"ccubing_probe_seconds_count",
		"ccubing_cache_hit_seconds_count",
		"ccubing_wal_append_seconds_count",
		"ccubing_wal_sync_seconds_count",
		"ccubing_refresh_seconds_count",
	} {
		if v := metricValue(t, text, series); v <= 0 {
			t.Fatalf("%s = %g, want > 0", series, v)
		}
	}

	// Router stages: one scattered query populates scatter, merge and the
	// per-worker histograms on the router's own registry.
	rt := newTestRouter(t, routerDataset(t), 1, 2)
	if _, err := rt.Query(queryRequest{Cell: []string{"*", "pen", "*"}}); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := obs.WriteText(&sb, rt.MetricsRegistry()); err != nil {
		t.Fatal(err)
	}
	rtext := sb.String()
	for _, series := range []string{
		"ccubing_router_scatter_seconds_count",
		"ccubing_router_merge_seconds_count",
		`ccubing_router_worker_seconds_count{worker="0"}`,
		`ccubing_router_worker_seconds_count{worker="1"}`,
	} {
		if v := metricValue(t, rtext, series); v != 1 {
			t.Fatalf("%s = %g, want 1", series, v)
		}
	}
	if v := metricValue(t, rtext, `ccubing_router_worker_calls_total{endpoint="query"}`); v != 2 {
		t.Fatalf("worker query calls = %g, want 2", v)
	}
	if v := metricValue(t, rtext, "ccubing_router_workers"); v != 2 {
		t.Fatalf("workers gauge = %g, want 2", v)
	}
}
