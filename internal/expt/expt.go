// Package expt defines the paper's experiments (Figs. 3-18, Sec. 5) as
// reusable specifications: datasets, parameter sweeps and algorithm rosters.
// cmd/ccbench renders them as row-printed tables; bench_test.go exposes each
// point as a testing.B benchmark. The `scale` parameter multiplies tuple
// counts (1.0 = paper scale: 0.2M-1M tuples); min_sup values are kept as
// printed in the paper — see EXPERIMENTS.md for the implications.
package expt

import (
	"fmt"
	"runtime"
	"sync"

	"ccubing/internal/engine"
	"ccubing/internal/gen"
	"ccubing/internal/order"
	"ccubing/internal/parallel"
	"ccubing/internal/sink"
	"ccubing/internal/table"

	_ "ccubing/internal/buc"
	_ "ccubing/internal/mmcubing"
	_ "ccubing/internal/obcheck"
	_ "ccubing/internal/qcdfs"
	_ "ccubing/internal/qctree"
	_ "ccubing/internal/stararray"
	_ "ccubing/internal/startree"
)

// Algo names an algorithm variant runnable over a table.
type Algo struct {
	Name string
	Run  func(t *table.Table, out sink.Sink) error
}

// workers is the goroutine count every algorithm run uses; 1 is the
// sequential engines as the paper ran them. cmd/ccbench raises it via
// SetWorkers before running any figure (not safe mid-run).
var workers = 1

// SetWorkers follows the ccubing.Options.Workers convention: 0 and 1 run
// engines sequentially (as the paper did), larger values route runs through
// the parallel sharded driver with that many goroutines, and negative values
// use runtime.NumCPU(). It returns the resolved goroutine count. Call it
// once before running figures (not safe mid-run).
func SetWorkers(n int) int {
	switch {
	case n < 0:
		workers = runtime.NumCPU()
	case n == 0:
		workers = 1
	default:
		workers = n
	}
	return workers
}

// runEngine builds an Algo body dispatching through the engine registry,
// honoring the package worker count.
func runEngine(engName string, cfg engine.Config) func(t *table.Table, out sink.Sink) error {
	return func(t *table.Table, out sink.Sink) error {
		e := engine.MustLookup(engName)
		if workers > 1 {
			return parallel.Run(t, e, cfg, parallel.Config{Workers: workers, Dim: -1}, out)
		}
		return e.Run(t, cfg, out)
	}
}

// Closed-cubing rosters.
func ccMM(minsup int64) Algo {
	return Algo{"CC(MM)", runEngine("CC(MM)", engine.Config{MinSup: minsup, Closed: true})}
}

func ccStar(minsup int64) Algo {
	return Algo{"CC(Star)", runEngine("CC(Star)", engine.Config{MinSup: minsup, Closed: true})}
}

func ccStarArray(minsup int64) Algo {
	return Algo{"CC(StarArray)", runEngine("CC(StarArray)", engine.Config{MinSup: minsup, Closed: true})}
}

func qcDFS(minsup int64) Algo {
	return Algo{"QC-DFS", runEngine("QC-DFS", engine.Config{MinSup: minsup, Closed: true})}
}

// qcTree is QC-DFS plus QC-tree materialization: the full work of the
// original Quotient Cube system (the binary the paper benchmarked).
func qcTree(minsup int64) Algo {
	return Algo{"QC-Tree", runEngine("QC-Tree", engine.Config{MinSup: minsup, Closed: true})}
}

// obBUC is output-based closedness checking (closed-pattern-mining style,
// paper Sec. 2.2.2), an addition beyond the paper's roster that makes the
// third checking approach measurable.
func obBUC(minsup int64) Algo {
	return Algo{"OB-BUC", runEngine("OB-BUC", engine.Config{MinSup: minsup, Closed: true})}
}

func plainMM(minsup int64) Algo {
	return Algo{"MM", runEngine("CC(MM)", engine.Config{MinSup: minsup})}
}

func plainStarArray(minsup int64) Algo {
	return Algo{"StarArray", runEngine("CC(StarArray)", engine.Config{MinSup: minsup})}
}

func orderedStarArray(name string, s order.Strategy, minsup int64) Algo {
	run := runEngine("CC(StarArray)", engine.Config{MinSup: minsup, Closed: true})
	return Algo{name, func(t *table.Table, out sink.Sink) error {
		ot, _, err := order.Apply(t, s)
		if err != nil {
			return err
		}
		// Cell dimension positions differ under reordering, but the
		// experiments only time and count cells, so no remapping is needed.
		return run(ot, out)
	}}
}

// Point is one x-axis position of a figure: a dataset plus the algorithms
// to run on it.
type Point struct {
	Label string
	Data  func() *table.Table // generator; memoized by the harness
	Algos []Algo
}

// Figure is one experiment of the evaluation section.
type Figure struct {
	ID     string
	Title  string
	Params string
	// Kind selects how ccbench reports the figure: "time" (seconds per
	// algorithm), "size" (cube MB per algorithm), or "best" (winner name).
	Kind   string
	Points []Point
}

// cache memoizes generated datasets across figures and benchmarks.
var cache sync.Map

func cached(key string, build func() *table.Table) func() *table.Table {
	return func() *table.Table {
		if v, ok := cache.Load(key); ok {
			return v.(*table.Table)
		}
		t := build()
		cache.Store(key, t)
		return t
	}
}

func scaled(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 100 {
		s = 100
	}
	return s
}

func synth(scale float64, t, d, c int, s float64, r float64) func() *table.Table {
	key := fmt.Sprintf("synth/T%d/D%d/C%d/S%g/R%g/x%g", t, d, c, s, r, scale)
	return cached(key, func() *table.Table {
		cfg := gen.Config{T: scaled(t, scale), D: d, C: c, S: s, Seed: 1}
		if r > 0 {
			cards := make([]int, d)
			for i := range cards {
				cards[i] = c
			}
			cfg.Rules = gen.RulesForDependence(r, cards, 2)
		}
		return gen.MustSynthetic(cfg)
	})
}

func weather(scale float64, nd int) func() *table.Table {
	key := fmt.Sprintf("weather/D%d/x%g", nd, scale)
	return cached(key, func() *table.Table {
		return gen.MustWeather(1, scaled(gen.WeatherTuples, scale), nd)
	})
}

// mixed builds the Fig. 18 dataset: four dimensions of cardinality 10 and
// four of cardinality 1000, with skews 0,1,2,3 in each group.
func mixed(scale float64) func() *table.Table {
	key := fmt.Sprintf("mixed/x%g", scale)
	return cached(key, func() *table.Table {
		return gen.MustSynthetic(gen.Config{
			T:     scaled(400000, scale),
			Cards: []int{10, 10, 10, 10, 1000, 1000, 1000, 1000},
			Skews: []float64{0, 1, 2, 3, 0, 1, 2, 3},
			Seed:  1,
		})
	})
}

func fullClosedRoster(minsup int64) []Algo {
	return []Algo{
		ccMM(minsup), ccStar(minsup), ccStarArray(minsup),
		qcDFS(minsup), qcTree(minsup),
	}
}

func icebergClosedRoster(minsup int64) []Algo {
	return []Algo{ccMM(minsup), ccStar(minsup), ccStarArray(minsup)}
}

// Figures builds every experiment at the given scale.
func Figures(scale float64) []Figure {
	var figs []Figure

	// Fig. 3: full closed cube vs. tuple count.
	{
		var pts []Point
		for _, t := range []int{200000, 400000, 600000, 800000, 1000000} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("T=%dK", scaled(t, scale)/1000),
				Data:  synth(scale, t, 10, 100, 0, 0),
				Algos: fullClosedRoster(1),
			})
		}
		figs = append(figs, Figure{"fig03", "Closed Cube w.r.t. Tuples",
			"D=10, C=100, S=0, M=1", "time", pts})
	}

	// Fig. 4: full closed cube vs. dimensionality.
	{
		var pts []Point
		for d := 6; d <= 10; d++ {
			pts = append(pts, Point{
				Label: fmt.Sprintf("D=%d", d),
				Data:  synth(scale, 1000000, d, 100, 2, 0),
				Algos: fullClosedRoster(1),
			})
		}
		figs = append(figs, Figure{"fig04", "Closed Cube w.r.t. Dimension",
			"T=1000K, S=2, C=100, M=1", "time", pts})
	}

	// Fig. 5: full closed cube vs. cardinality.
	{
		var pts []Point
		for _, c := range []int{10, 100, 1000, 10000} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("C=%d", c),
				Data:  synth(scale, 1000000, 8, c, 1, 0),
				Algos: fullClosedRoster(1),
			})
		}
		figs = append(figs, Figure{"fig05", "Closed Cube w.r.t. Cardinality",
			"T=1000K, D=8, S=1, M=1", "time", pts})
	}

	// Fig. 6: full closed cube vs. skew.
	{
		var pts []Point
		for s := 0; s <= 3; s++ {
			pts = append(pts, Point{
				Label: fmt.Sprintf("S=%d", s),
				Data:  synth(scale, 1000000, 8, 100, float64(s), 0),
				Algos: fullClosedRoster(1),
			})
		}
		figs = append(figs, Figure{"fig06", "Closed Cube w.r.t. Skew",
			"T=1000K, C=100, D=8, M=1", "time", pts})
	}

	// Fig. 7: full closed cube on the weather dataset vs. dimensions.
	{
		var pts []Point
		for d := 5; d <= 8; d++ {
			pts = append(pts, Point{
				Label: fmt.Sprintf("D=%d", d),
				Data:  weather(scale, d),
				Algos: fullClosedRoster(1),
			})
		}
		figs = append(figs, Figure{"fig07", "Closed Cube, Weather Data",
			"M=1, dims 5-8", "time", pts})
	}

	// Fig. 8: closed iceberg vs. min_sup.
	{
		var pts []Point
		for _, m := range []int64{2, 4, 8, 16} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("M=%d", m),
				Data:  synth(scale, 1000000, 8, 100, 0, 0),
				Algos: icebergClosedRoster(m),
			})
		}
		figs = append(figs, Figure{"fig08", "Closed Iceberg w.r.t. Minsup",
			"T=1000K, C=100, S=0, D=8", "time", pts})
	}

	// Fig. 9: closed iceberg vs. skew.
	{
		var pts []Point
		for s := 0; s <= 3; s++ {
			pts = append(pts, Point{
				Label: fmt.Sprintf("S=%d", s),
				Data:  synth(scale, 1000000, 8, 100, float64(s), 0),
				Algos: icebergClosedRoster(10),
			})
		}
		figs = append(figs, Figure{"fig09", "Closed Iceberg w.r.t. Skew",
			"T=1000K, D=8, C=100, M=10", "time", pts})
	}

	// Fig. 10: closed iceberg vs. cardinality.
	{
		var pts []Point
		for _, c := range []int{10, 100, 1000, 10000} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("C=%d", c),
				Data:  synth(scale, 1000000, 8, c, 1, 0),
				Algos: icebergClosedRoster(10),
			})
		}
		figs = append(figs, Figure{"fig10", "Closed Iceberg w.r.t. Cardinality",
			"T=1000K, D=8, S=1, M=10", "time", pts})
	}

	// Fig. 11: closed iceberg on weather vs. min_sup.
	{
		var pts []Point
		for _, m := range []int64{2, 4, 8, 16} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("M=%d", m),
				Data:  weather(scale, 8),
				Algos: icebergClosedRoster(m),
			})
		}
		figs = append(figs, Figure{"fig11", "Closed Iceberg w.r.t. Minsup, Weather Data",
			"D=8", "time", pts})
	}

	// Fig. 12: closed iceberg vs. data dependence.
	{
		var pts []Point
		for r := 0; r <= 3; r++ {
			pts = append(pts, Point{
				Label: fmt.Sprintf("R=%d", r),
				Data:  synth(scale, 400000, 8, 20, 0, float64(r)),
				Algos: []Algo{ccMM(16), ccStar(16)},
			})
		}
		figs = append(figs, Figure{"fig12", "Cube Computation w.r.t. Data Dependence",
			"T=400K, D=8, C=20, S=0, M=16", "time", pts})
	}

	// Fig. 13: cube size vs. data dependence.
	{
		var pts []Point
		for r := 0; r <= 3; r++ {
			pts = append(pts, Point{
				Label: fmt.Sprintf("R=%d", r),
				Data:  synth(scale, 400000, 8, 20, 0, float64(r)),
				Algos: []Algo{
					{Name: "ClosedIceberg", Run: ccStarArray(16).Run},
					{Name: "Iceberg", Run: plainMM(16).Run},
				},
			})
		}
		figs = append(figs, Figure{"fig13", "Cube Size w.r.t. Data Dependence",
			"T=400K, D=8, C=20, S=0, M=16", "size", pts})
	}

	// Fig. 14: cube size vs. min_sup at fixed dependence R=2.
	{
		var pts []Point
		for _, m := range []int64{1, 4, 16, 64} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("M=%d", m),
				Data:  synth(scale, 400000, 8, 20, 0, 2),
				Algos: []Algo{
					{Name: "ClosedIceberg", Run: ccStarArray(m).Run},
					{Name: "Iceberg", Run: plainMM(m).Run},
				},
			})
		}
		figs = append(figs, Figure{"fig14", "Cube Size w.r.t. Minsup",
			"T=400K, D=8, C=20, S=0, R=2", "size", pts})
	}

	// Fig. 15: best algorithm across (min_sup, dependence).
	{
		var pts []Point
		for r := 1; r <= 3; r++ {
			for _, m := range []int64{1, 4, 16, 64, 256} {
				pts = append(pts, Point{
					Label: fmt.Sprintf("R=%d,M=%d", r, m),
					Data:  synth(scale, 400000, 8, 20, 0, float64(r)),
					Algos: []Algo{ccMM(m), ccStar(m)},
				})
			}
		}
		figs = append(figs, Figure{"fig15", "Best Algorithm, Varying Minsup and Dependence",
			"T=400K, D=8, C=20, S=0", "best", pts})
	}

	// Fig. 16: closed-checking overhead of C-Cubing(MM) vs MM-Cubing
	// (weather data, output disabled — the harness always uses a Null sink).
	{
		var pts []Point
		for _, m := range []int64{1, 2, 4, 8, 16, 32} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("M=%d", m),
				Data:  weather(scale, 8),
				Algos: []Algo{ccMM(m), plainMM(m)},
			})
		}
		figs = append(figs, Figure{"fig16", "Overhead of Closed Checking (MM), Weather Data",
			"D=8, output disabled", "time", pts})
	}

	// Fig. 17: closed-pruning benefit of C-Cubing(StarArray) vs StarArray.
	{
		var pts []Point
		for _, m := range []int64{1, 2, 4, 8, 16, 32} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("M=%d", m),
				Data:  weather(scale, 8),
				Algos: []Algo{ccStarArray(m), plainStarArray(m)},
			})
		}
		figs = append(figs, Figure{"fig17", "Benefits of Closed Pruning (StarArray), Weather Data",
			"D=8, output disabled", "time", pts})
	}

	// Fig. 18: dimension ordering strategies on mixed-cardinality data.
	{
		var pts []Point
		for _, m := range []int64{1, 4, 16, 64, 256} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("M=%d", m),
				Data:  mixed(scale),
				Algos: []Algo{
					orderedStarArray("Org", order.Original, m),
					orderedStarArray("Card", order.ByCardinality, m),
					orderedStarArray("Entropy", order.ByEntropy, m),
				},
			})
		}
		figs = append(figs, Figure{"fig18", "Cube Computation w.r.t. Dimension Order",
			"T=400K, D=8, C=10/1000, S=0..3", "time", pts})
	}

	// figA (addition beyond the paper): the three closedness-checking
	// approaches side by side — aggregation-based (C-Cubing), raw-data-based
	// (QC-DFS / QC-Tree) and output-based (OB-BUC, whose subsumption index
	// is the bottleneck Sec. 2.2.2 predicts). OB-BUC's cost grows
	// super-linearly with output size, so this experiment uses a kept-small
	// dataset rather than the Fig. 3 sweep.
	{
		var pts []Point
		for _, m := range []int64{1, 4, 16} {
			pts = append(pts, Point{
				Label: fmt.Sprintf("M=%d", m),
				Data:  synth(scale/4, 1000000, 8, 100, 1, 0),
				Algos: []Algo{ccStar(m), ccStarArray(m), qcDFS(m), qcTree(m), obBUC(m)},
			})
		}
		figs = append(figs, Figure{"figA", "Closedness-Checking Approaches (addition)",
			"T=250K, D=8, C=100, S=1", "time", pts})
	}

	return figs
}

// Find returns the figure with the given ID at the given scale.
func Find(id string, scale float64) (Figure, error) {
	for _, f := range Figures(scale) {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("expt: unknown figure %q", id)
}
