package expt

import (
	"strings"
	"testing"
)

func TestFiguresComplete(t *testing.T) {
	figs := Figures(0.001)
	if len(figs) != 17 {
		t.Fatalf("expected 17 figures (3-18 plus figA), got %d", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure %s", f.ID)
		}
		seen[f.ID] = true
		if len(f.Points) == 0 {
			t.Fatalf("%s has no points", f.ID)
		}
		for _, p := range f.Points {
			if len(p.Algos) == 0 {
				t.Fatalf("%s %s has no algorithms", f.ID, p.Label)
			}
		}
	}
	for n := 3; n <= 18; n++ {
		id := "fig" + pad2(n)
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
}

func pad2(n int) string {
	if n < 10 {
		return "0" + string(rune('0'+n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestFind(t *testing.T) {
	f, err := Find("fig05", 0.001)
	if err != nil || f.ID != "fig05" {
		t.Fatalf("Find: %v %v", f.ID, err)
	}
	if _, err := Find("fig99", 0.001); err == nil {
		t.Fatal("unknown figure must error")
	}
}

// TestRunPointTiny executes one point of each figure kind at minuscule scale
// to validate the full harness path.
func TestRunPointTiny(t *testing.T) {
	for _, id := range []string{"fig03", "fig13", "fig15"} {
		f, err := Find(id, 0.0005)
		if err != nil {
			t.Fatal(err)
		}
		res := RunPoint(f.Points[0])
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: %v", id, r.Err)
			}
			if r.Cells <= 0 {
				t.Fatalf("%s %s produced no cells", id, r.Algo)
			}
		}
	}
}

// TestReportRendersTiny renders three figure kinds end to end.
func TestReportRendersTiny(t *testing.T) {
	for _, id := range []string{"fig12", "fig14", "fig15"} {
		f, err := Find(id, 0.0005)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := Report(&b, f); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := b.String()
		if !strings.Contains(out, f.ID) || len(strings.Split(out, "\n")) < len(f.Points)+2 {
			t.Fatalf("%s report too short:\n%s", id, out)
		}
	}
}

// TestDatasetCache: the same config must return the identical table pointer.
func TestDatasetCache(t *testing.T) {
	a := synth(0.001, 200000, 4, 10, 0, 0)()
	b := synth(0.001, 200000, 4, 10, 0, 0)()
	if a != b {
		t.Fatal("dataset cache miss for identical config")
	}
}
