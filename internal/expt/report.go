package expt

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ccubing/internal/sink"
)

// Result is one algorithm run at one point.
type Result struct {
	Algo    string
	Seconds float64
	Cells   int64
	MB      float64
	Err     error
}

// RunPoint executes every algorithm of one point against a Null sink
// (output disabled, as the paper's overhead experiments prescribe) and
// returns the per-algorithm results.
func RunPoint(p Point) []Result {
	t := p.Data()
	out := make([]Result, 0, len(p.Algos))
	for _, a := range p.Algos {
		var ns sink.Null
		start := time.Now()
		err := a.Run(t, &ns)
		out = append(out, Result{
			Algo:    a.Name,
			Seconds: time.Since(start).Seconds(),
			Cells:   ns.Cells,
			MB:      ns.MB(),
			Err:     err,
		})
	}
	return out
}

// Report runs a whole figure and renders it as an aligned text table.
func Report(w io.Writer, f Figure) error {
	fmt.Fprintf(w, "%s: %s  [%s]\n", f.ID, f.Title, f.Params)
	header := []string{pointColumn(f)}
	var rows [][]string
	for _, p := range f.Points {
		results := RunPoint(p)
		for _, r := range results {
			if r.Err != nil {
				return fmt.Errorf("%s %s %s: %w", f.ID, p.Label, r.Algo, r.Err)
			}
		}
		if len(rows) == 0 {
			for _, r := range results {
				header = append(header, r.Algo)
			}
			if f.Kind == "best" {
				header = []string{pointColumn(f), "best", "margin"}
			}
		}
		row := []string{p.Label}
		switch f.Kind {
		case "size":
			for _, r := range results {
				row = append(row, fmt.Sprintf("%.2fMB (%d cells)", r.MB, r.Cells))
			}
		case "best":
			best, second := 0, -1
			for i := 1; i < len(results); i++ {
				if results[i].Seconds < results[best].Seconds {
					second = best
					best = i
				} else if second < 0 || results[i].Seconds < results[second].Seconds {
					second = i
				}
			}
			margin := "-"
			if second >= 0 && results[best].Seconds > 0 {
				margin = fmt.Sprintf("%.2fx", results[second].Seconds/results[best].Seconds)
			}
			row = append(row, results[best].Algo, margin)
		default: // time
			for _, r := range results {
				row = append(row, fmt.Sprintf("%8.3fs", r.Seconds))
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, header, rows)
	fmt.Fprintln(w)
	return nil
}

func pointColumn(f Figure) string {
	if len(f.Points) == 0 {
		return "point"
	}
	if i := strings.IndexByte(f.Points[0].Label, '='); i > 0 {
		return f.Points[0].Label[:i]
	}
	return "point"
}

func writeAligned(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}
