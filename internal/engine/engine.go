// Package engine defines the interface every cubing engine implements and a
// registry the seven engine packages register into. The facade (package
// ccubing) and the drivers (internal/parallel, internal/partition via the
// facade) dispatch through this registry instead of hard-coded switches, and
// validate requests against declared capabilities instead of per-algorithm
// special cases.
package engine

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config is the union of the per-engine knobs the facade exposes. Engines
// read the fields they understand and ignore the rest; Validate rejects
// combinations an engine's capabilities rule out before Run is called.
type Config struct {
	// MinSup is the iceberg threshold on count; drivers default it to 1.
	MinSup int64
	// Closed computes the closed (iceberg) cube instead of the plain
	// iceberg cube.
	Closed bool
	// Measure optionally aggregates the table's Aux column natively
	// (engines with Capabilities.NativeMeasure only).
	Measure core.MeasureKind
	// DenseBudget overrides the MM-Cubing dense array budget, in cells.
	DenseBudget int
	// DisableLemma5, DisableLemma6 and DisableShortcut switch off individual
	// closed-pruning devices for ablation studies.
	DisableLemma5   bool
	DisableLemma6   bool
	DisableShortcut bool
}

// Capabilities declares what a registered engine can compute. Drivers use it
// to validate options and to decide which transformations (dimension
// reordering, parallel decomposition) apply.
type Capabilities struct {
	// Closed: the engine can compute closed (iceberg) cubes.
	Closed bool
	// Iceberg: the engine can compute plain (non-closed) iceberg cubes.
	Iceberg bool
	// NativeMeasure: the engine aggregates a complex measure over the
	// table's Aux column during the cube computation (paper Sec. 6.1),
	// delivering values through sink.AuxSink.
	NativeMeasure bool
	// OrderSensitive: the engine's cost depends on dimension order, so
	// dimension-ordering strategies (paper Sec. 5.5) should be applied
	// before it runs. MM-Cubing is order-free; the tree engines are not.
	OrderSensitive bool
}

// Engine is one cubing algorithm. Run computes the cube of t under cfg and
// emits every output cell into out; implementations must be safe for
// concurrent Run calls on distinct tables (the parallel driver runs one
// engine instance from many goroutines).
type Engine interface {
	// Name is the engine's display name, matching the paper's figures
	// (e.g. "CC(Star)").
	Name() string
	// Capabilities declares what the engine supports.
	Capabilities() Capabilities
	// Run computes the cube. It must not retain t or out after returning.
	Run(t *table.Table, cfg Config, out sink.Sink) error
}

// Validate checks cfg against e's capabilities and the table's shape,
// returning a descriptive error for unsupported combinations. hasAux reports
// whether the relation carries a measure column.
func Validate(e Engine, hasAux bool, cfg Config) error {
	caps := e.Capabilities()
	if cfg.Closed && !caps.Closed {
		return fmt.Errorf("%s computes iceberg cubes only; pick a closed-capable engine for closed cubes", e.Name())
	}
	if !cfg.Closed && !caps.Iceberg {
		return fmt.Errorf("%s computes closed cubes only", e.Name())
	}
	if cfg.Measure != core.MeasureNone {
		if !caps.NativeMeasure {
			return fmt.Errorf("measure %v is not aggregated natively by %s; use AttachMeasure", cfg.Measure, e.Name())
		}
		if !hasAux {
			return fmt.Errorf("measure %v requested but dataset has no measure column", cfg.Measure)
		}
	}
	return nil
}
