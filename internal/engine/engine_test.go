package engine

import (
	"strings"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

type fake struct {
	name string
	caps Capabilities
}

func (f fake) Name() string               { return f.name }
func (f fake) Capabilities() Capabilities { return f.caps }
func (f fake) Run(t *table.Table, cfg Config, out sink.Sink) error {
	return nil
}

func TestRegistry(t *testing.T) {
	e := fake{name: "test-engine", caps: Capabilities{Closed: true, Iceberg: true}}
	Register(e)
	got, ok := Lookup("test-engine")
	if !ok || got.Name() != "test-engine" {
		t.Fatalf("Lookup(test-engine) = %v, %v", got, ok)
	}
	if _, ok := Lookup("no-such-engine"); ok {
		t.Fatal("Lookup(no-such-engine) succeeded")
	}
	found := false
	for _, n := range Names() {
		if n == "test-engine" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing test-engine", Names())
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("nil", func() { Register(nil) })
	mustPanic("empty name", func() { Register(fake{}) })
	Register(fake{name: "dup-engine"})
	mustPanic("duplicate", func() { Register(fake{name: "dup-engine"}) })
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		caps    Capabilities
		hasAux  bool
		cfg     Config
		wantErr string
	}{
		{"closed ok", Capabilities{Closed: true}, false, Config{Closed: true}, ""},
		{"iceberg ok", Capabilities{Iceberg: true}, false, Config{}, ""},
		{"closed unsupported", Capabilities{Iceberg: true}, false, Config{Closed: true}, "iceberg cubes only"},
		{"iceberg unsupported", Capabilities{Closed: true}, false, Config{}, "closed cubes only"},
		{"measure unsupported", Capabilities{Iceberg: true}, true, Config{Measure: core.MeasureSum}, "not aggregated natively"},
		{"measure without column", Capabilities{Iceberg: true, NativeMeasure: true}, false, Config{Measure: core.MeasureSum}, "no measure column"},
		{"measure ok", Capabilities{Iceberg: true, NativeMeasure: true}, true, Config{Measure: core.MeasureSum}, ""},
	}
	for _, c := range cases {
		err := Validate(fake{name: "E", caps: c.caps}, c.hasAux, c.cfg)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}
