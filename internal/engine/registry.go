package engine

import (
	"fmt"
	"sort"
	"sync"
)

// registry maps engine names to implementations. Engines register from their
// package init functions, so any program importing an engine package (the
// facade blank-imports all seven) can look it up here.
var (
	mu       sync.RWMutex
	registry = map[string]Engine{}
)

// Register adds an engine under its Name. It panics on a duplicate name or a
// nil engine: both are programmer errors surfaced at process start.
func Register(e Engine) {
	if e == nil {
		panic("engine: Register(nil)")
	}
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate Register(%q)", name))
	}
	registry[name] = e
}

// Lookup resolves a registered engine by name.
func Lookup(name string) (Engine, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// MustLookup is Lookup for engines the program registers itself; it panics
// when the name is unknown.
func MustLookup(name string) Engine {
	e, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("engine: unknown engine %q", name))
	}
	return e
}

// Names lists the registered engine names in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
