// Package buc implements BUC (Beyer & Ramakrishnan, SIGMOD'99): bottom-up
// iceberg cube computation by recursive counting-sort partitioning with
// Apriori pruning (paper Sec. 2.1.1). It serves as the iceberg baseline and
// as the substrate QC-DFS derives from.
package buc

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/psort"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a BUC run.
type Config struct {
	// MinSup is the iceberg threshold on count; cells below it are pruned.
	MinSup int64
	// Measure optionally aggregates the table's Aux column per output cell
	// into stored aggregates delivered through sink.AuxSink (paper Sec. 6.1).
	// Avg is delivered as its algebraic pair: (stored sum, count).
	Measure core.MeasureKind
}

type runner struct {
	t      *table.Table
	cfg    Config
	out    sink.Sink
	auxOut sink.AuxSink
	parts  []psort.Partitioner // one per dimension: no reentrant reuse
	tids   []core.TID
	vals   []core.Value
}

// Run computes the iceberg cube of t and emits every cell with
// count >= MinSup into out. Cells arrive in bottom-up partition order, each
// exactly once.
func Run(t *table.Table, cfg Config, out sink.Sink) error {
	if cfg.MinSup < 1 {
		return fmt.Errorf("buc: min_sup %d < 1", cfg.MinSup)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("buc: %w", err)
	}
	if cfg.Measure != core.MeasureNone && t.Aux == nil {
		return fmt.Errorf("buc: measure %v requested but table has no aux column", cfg.Measure)
	}
	n := t.NumTuples()
	if int64(n) < cfg.MinSup {
		return nil
	}
	r := &runner{
		t:     t,
		cfg:   cfg,
		out:   out,
		parts: make([]psort.Partitioner, t.NumDims()),
		tids:  make([]core.TID, n),
		vals:  make([]core.Value, t.NumDims()),
	}
	if a, ok := out.(sink.AuxSink); ok && cfg.Measure != core.MeasureNone {
		r.auxOut = a
	}
	for i := range r.tids {
		r.tids[i] = core.TID(i)
	}
	for d := range r.vals {
		r.vals[d] = core.Star
	}
	r.recurse(0, n, 0)
	return nil
}

// recurse emits the cell for the current partition [lo,hi) (whose group-by
// values are in r.vals) and expands it on every remaining dimension.
func (r *runner) recurse(lo, hi, dim int) {
	r.emit(lo, hi)
	nd := r.t.NumDims()
	for d := dim; d < nd; d++ {
		b := r.parts[d].Partition(r.tids[lo:hi], r.t.Cols[d], r.t.Cards[d])
		for i, v := range b.Vals {
			blo, bhi := lo+b.Off[i], lo+b.Off[i+1]
			if int64(bhi-blo) < r.cfg.MinSup {
				continue // Apriori pruning
			}
			r.vals[d] = v
			r.recurse(blo, bhi, d+1)
			r.vals[d] = core.Star
		}
	}
}

func (r *runner) emit(lo, hi int) {
	count := int64(hi - lo)
	if r.auxOut != nil {
		agg := core.NewMeasureAgg(r.cfg.Measure)
		for _, tid := range r.tids[lo:hi] {
			agg.Add(r.t.Aux[tid])
		}
		r.auxOut.EmitAux(r.vals, count, agg.Stored())
		return
	}
	r.out.Emit(r.vals, count)
}
