package buc

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// bucEngine adapts this package to the engine registry. BUC prunes bottom-up
// on min_sup and has no closedness checking, so it is iceberg-only; it is
// one of the two engines aggregating complex measures natively.
type bucEngine struct{}

func (bucEngine) Name() string { return "BUC" }

func (bucEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Iceberg: true, NativeMeasure: true}
}

func (bucEngine) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, Config{MinSup: cfg.MinSup, Measure: cfg.Measure}, out)
}

func init() { engine.Register(bucEngine{}) }
