package buc

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func run(t *testing.T, tb *table.Table, minsup int64) *sink.Collector {
	t.Helper()
	var c sink.Collector
	d := &sink.Dedup{Next: &c}
	if err := Run(tb, Config{MinSup: minsup}, d); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Dup != 0 {
		t.Fatalf("BUC emitted %d duplicate cells", d.Dup)
	}
	return &c
}

func TestMatchesOracleSmall(t *testing.T) {
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int64{1, 2, 3} {
		want, err := refcube.Iceberg(tb, m)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, m)
		if diff := sink.DiffCells(got.Cells, want, 10); diff != "" {
			t.Fatalf("min_sup %d mismatch:\n%s", m, diff)
		}
	}
}

// TestMatchesOracleRandomized sweeps dataset shapes: skew, cardinality,
// dependence, and min_sup, comparing against the definitional oracle.
func TestMatchesOracleRandomized(t *testing.T) {
	cases := []struct {
		cfg    gen.Config
		minsup int64
	}{
		{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 1}, 1},
		{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 2}, 4},
		{gen.Config{T: 200, D: 3, C: 8, S: 2, Seed: 3}, 2},
		{gen.Config{T: 100, D: 5, C: 2, S: 1, Seed: 4}, 3},
		{gen.Config{T: 300, D: 2, C: 20, S: 0.5, Seed: 5}, 5},
		{gen.Config{T: 120, D: 6, C: 2, S: 0, Seed: 6}, 2},
	}
	for i, c := range cases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Iceberg(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, c.minsup)
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

func TestWithDependenceRules(t *testing.T) {
	cards := []int{4, 4, 4, 4}
	rules := gen.RulesForDependence(1.5, cards, 17)
	tb := gen.MustSynthetic(gen.Config{T: 200, Cards: cards, S: 0, Seed: 18, Rules: rules})
	want, err := refcube.Iceberg(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, tb, 4)
	if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
		t.Fatalf("mismatch:\n%s", diff)
	}
}

func TestMinsupAboveTotal(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 10, D: 2, C: 2, Seed: 1})
	got := run(t, tb, 11)
	if len(got.Cells) != 0 {
		t.Fatalf("expected no cells, got %d", len(got.Cells))
	}
}

func TestErrors(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 10, D: 2, C: 2, Seed: 1})
	var c sink.Collector
	if err := Run(tb, Config{MinSup: 0}, &c); err == nil {
		t.Fatal("min_sup 0 must error")
	}
	if err := Run(tb, Config{MinSup: 1, Measure: core.MeasureSum}, &c); err == nil {
		t.Fatal("measure without aux column must error")
	}
	bad := table.New(1, 2)
	bad.Cols[0][0] = 9 // out of card range
	if err := Run(bad, Config{MinSup: 1}, &c); err == nil {
		t.Fatal("invalid table must error")
	}
}

func TestAuxMeasureSum(t *testing.T) {
	tb, err := table.FromRows([][]core.Value{{0, 0}, {0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	tb.Aux = []float64{10, 20, 40}
	var c sink.AuxCollector
	if err := Run(tb, Config{MinSup: 1, Measure: core.MeasureSum}, &c); err != nil {
		t.Fatalf("Run: %v", err)
	}
	byKey := map[string]float64{}
	for _, cell := range c.Cells {
		byKey[cell.Key()] = cell.Aux
	}
	checks := map[string]float64{
		core.CellKey([]core.Value{core.Star, core.Star}): 70,
		core.CellKey([]core.Value{0, core.Star}):         30,
		core.CellKey([]core.Value{core.Star, 0}):         50,
		core.CellKey([]core.Value{0, 1}):                 20,
	}
	for k, want := range checks {
		if byKey[k] != want {
			t.Fatalf("aux for key: got %v want %v", byKey[k], want)
		}
	}
}

func TestAuxMeasureAvg(t *testing.T) {
	tb, err := table.FromRows([][]core.Value{{0}, {0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	tb.Aux = []float64{1, 3, 5}
	var c sink.AuxCollector
	if err := Run(tb, Config{MinSup: 1, Measure: core.MeasureAvg}, &c); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Avg is delivered as its algebraic pair: Aux carries the stored sum,
	// Count the divisor. The mean of (0) is (1+3)/2 = 2.
	for _, cell := range c.Cells {
		if cell.Key() == core.CellKey([]core.Value{0}) {
			if mean := core.Present(core.MeasureAvg, cell.Aux, cell.Count); mean != 2 {
				t.Fatalf("avg of (0) = %v, want 2", mean)
			}
		}
	}
}

// TestCountsConsistency: parent cell count equals the sum of child counts on
// any one expansion dimension when min_sup is 1 (no pruning).
func TestCountsConsistency(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 150, D: 3, C: 4, S: 1, Seed: 20})
	got := run(t, tb, 1)
	m, ok := got.ByKey()
	if !ok {
		t.Fatal("duplicate cells")
	}
	apex := m[core.CellKey([]core.Value{core.Star, core.Star, core.Star})]
	if apex != 150 {
		t.Fatalf("apex = %d", apex)
	}
	var sum int64
	for v := 0; v < tb.Cards[0]; v++ {
		sum += m[core.CellKey([]core.Value{core.Value(v), core.Star, core.Star})]
	}
	if sum != 150 {
		t.Fatalf("dim-0 children sum = %d", sum)
	}
}
