package cubestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/qcdfs"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// buildFromClosed computes the closed iceberg cube of tbl with QC-DFS and
// freezes it into a store.
func buildFromClosed(t testing.TB, tbl *table.Table, minsup int64) *Store {
	t.Helper()
	col := &sink.Collector{}
	if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: minsup}, col); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(tbl.NumDims(), false)
	for _, c := range col.Cells {
		b.Add(c.Values, c.Count, 0)
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCells() != int64(len(col.Cells)) {
		t.Fatalf("store holds %d cells, built from %d", s.NumCells(), len(col.Cells))
	}
	return s
}

// bruteCount counts the tuples of tbl matching a query pattern.
func bruteCount(tbl *table.Table, vals []core.Value) int64 {
	var n int64
	for tid := 0; tid < tbl.NumTuples(); tid++ {
		ok := true
		for d, v := range vals {
			if v != core.Star && tbl.Cols[d][tid] != v {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

func testTable(t testing.TB, T int, cards []int, skew float64, seed int64) *table.Table {
	t.Helper()
	tbl, err := gen.Synthetic(gen.Config{T: T, Cards: cards, S: skew, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// randomQuery draws a query cell; bound values are biased toward values that
// actually occur so both hits and misses are exercised.
func randomQuery(rng *rand.Rand, tbl *table.Table) []core.Value {
	nd := tbl.NumDims()
	vals := make([]core.Value, nd)
	for d := 0; d < nd; d++ {
		switch rng.Intn(3) {
		case 0:
			vals[d] = core.Star
		case 1: // a value from a real tuple: likely non-empty
			vals[d] = tbl.Cols[d][rng.Intn(tbl.NumTuples())]
		default: // any in-card value: may be empty
			vals[d] = core.Value(rng.Intn(tbl.Cards[d]))
		}
	}
	return vals
}

// TestQueryAgainstBruteForce fuzzes Query/Lookup against tuple counting:
// every non-empty cell at or above min_sup must resolve to its exact count;
// empty or below-threshold cells must miss.
func TestQueryAgainstBruteForce(t *testing.T) {
	for _, minsup := range []int64{1, 3} {
		tbl := testTable(t, 800, []int{9, 7, 5, 6}, 1.1, int64(minsup))
		s := buildFromClosed(t, tbl, minsup)
		rng := rand.New(rand.NewSource(42 + minsup))
		for i := 0; i < 3000; i++ {
			q := randomQuery(rng, tbl)
			want := bruteCount(tbl, q)
			got, ok := s.Query(q)
			if want >= minsup {
				if !ok || got != want {
					t.Fatalf("minsup=%d query %v: got (%d,%v), want (%d,true)", minsup, q, got, ok, want)
				}
				cell, ok := s.Lookup(q)
				if !ok || cell.Count != want {
					t.Fatalf("minsup=%d lookup %v: got (%v,%v)", minsup, q, cell, ok)
				}
				// The closure must cover the query and have the same count.
				for d, v := range q {
					if v != core.Star && cell.Values[d] != v {
						t.Fatalf("closure %v does not cover query %v", cell.Values, q)
					}
				}
			} else if ok {
				t.Fatalf("minsup=%d query %v: got (%d,true), want miss (count %d)", minsup, q, got, want)
			}
		}
	}
}

// TestSliceMatchesWalkFilter checks Slice against filtering a full Walk.
func TestSliceMatchesWalkFilter(t *testing.T) {
	tbl := testTable(t, 500, []int{6, 5, 4}, 0.8, 17)
	s := buildFromClosed(t, tbl, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := randomQuery(rng, tbl)
		want := map[string]int64{}
		s.Walk(func(c core.Cell) bool {
			for d, v := range q {
				if v != core.Star && c.Values[d] != v {
					return true
				}
			}
			want[c.Key()] = c.Count
			return true
		})
		got := map[string]int64{}
		s.Slice(q, func(c core.Cell) bool {
			got[c.Key()] = c.Count
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("slice %v: %d cells, want %d", q, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("slice %v: count mismatch for %q", q, k)
			}
		}
	}
}

// TestConcurrentQueries exercises the store from many goroutines; run under
// -race this pins the immutability/concurrency-safety claim.
func TestConcurrentQueries(t *testing.T) {
	tbl := testTable(t, 600, []int{8, 6, 5, 4}, 1.0, 3)
	s := buildFromClosed(t, tbl, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				q := randomQuery(rng, tbl)
				want := bruteCount(tbl, q)
				got, ok := s.Query(q)
				if want >= 2 && (!ok || got != want) {
					t.Errorf("query %v: got (%d,%v), want (%d,true)", q, got, ok, want)
					return
				}
				if want < 2 && ok {
					t.Errorf("query %v: got (%d,true), want miss", q, got)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestBuilderRejectsDuplicates pins the duplicate-cell error.
func TestBuilderRejectsDuplicates(t *testing.T) {
	b := NewBuilder(2, false)
	b.Add([]core.Value{1, core.Star}, 3, 0)
	b.Add([]core.Value{1, core.Star}, 3, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate cell must fail Build")
	}
}

// TestSnapshotRoundTrip checks Save → Load → Save byte identity and that the
// loaded store answers identically.
func TestSnapshotRoundTrip(t *testing.T) {
	tbl := testTable(t, 700, []int{7, 6, 5, 4}, 1.2, 11)
	// Include aux values to cover the measure arrays.
	col := &sink.Collector{}
	if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: 2}, col); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(tbl.NumDims(), true)
	for i, c := range col.Cells {
		b.Add(c.Values, c.Count, float64(i)*0.5)
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var buf1 bytes.Buffer
	if err := s.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot not byte-identical after round trip (%d vs %d bytes)", buf1.Len(), buf2.Len())
	}
	if loaded.NumCells() != s.NumCells() || loaded.NumDims() != s.NumDims() || !loaded.HasAux() {
		t.Fatalf("loaded store shape mismatch")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		q := randomQuery(rng, tbl)
		c1, ok1 := s.Lookup(q)
		c2, ok2 := loaded.Lookup(q)
		if ok1 != ok2 || c1.Count != c2.Count || c1.Aux != c2.Aux {
			t.Fatalf("query %v: original (%v,%v), loaded (%v,%v)", q, c1, ok1, c2, ok2)
		}
	}
}

// TestSnapshotHighDimensionMask round-trips a 64-dimension store whose masks
// set the top bit (dimension 63) — the unsigned mask-ordering edge.
func TestSnapshotHighDimensionMask(t *testing.T) {
	b := NewBuilder(core.MaxDims, false)
	vals := make([]core.Value, core.MaxDims)
	for d := range vals {
		vals[d] = core.Star
	}
	b.Add(vals, 5, 0) // apex
	vals[core.MaxDims-1] = 1
	b.Add(vals, 3, 0) // fixes dimension 63: mask top bit set
	vals[0] = 2
	b.Add(vals, 2, 0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := loaded.Query(vals); !ok || got != 2 {
		t.Fatalf("dim-63 cell = (%d,%v), want (2,true)", got, ok)
	}
	vals[0] = core.Star
	if got, ok := loaded.Query(vals); !ok || got != 3 {
		t.Fatalf("dim-63-only cell = (%d,%v), want (3,true)", got, ok)
	}
}

// TestSnapshotCorruption checks truncation and bit flips are detected.
func TestSnapshotCorruption(t *testing.T) {
	tbl := testTable(t, 300, []int{5, 4, 3}, 0.5, 2)
	s := buildFromClosed(t, tbl, 1)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated snapshot must fail")
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Load(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupted snapshot must fail")
	}
	bad := append([]byte(nil), raw...)
	bad[7] = 99 // version byte
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown version must fail")
	}
}

// TestSnapshotEveryByteFlip flips each snapshot byte in turn: every mutation
// must yield a load error (CRC32 catches any single-byte change), and none
// may panic — corrupt length prefixes must fail validation, not makeslice.
func TestSnapshotEveryByteFlip(t *testing.T) {
	tbl := testTable(t, 200, []int{5, 4, 3}, 0.7, 8)
	s := buildFromClosed(t, tbl, 1)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d of %d accepted", i, len(raw))
		}
	}
}

func TestQueryShapeMismatch(t *testing.T) {
	tbl := testTable(t, 100, []int{4, 3}, 0, 1)
	s := buildFromClosed(t, tbl, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s with wrong arity must panic", name)
			}
		}()
		f()
	}
	mustPanic("Query", func() { s.Query([]core.Value{0}) })
	mustPanic("Lookup", func() { s.Lookup([]core.Value{0, 1, 2}) })
	mustPanic("Slice", func() { s.Slice([]core.Value{0}, func(core.Cell) bool { return true }) })
}

func ExampleStore_Query() {
	tbl, _ := table.FromRows([][]core.Value{
		{0, 0, 1},
		{0, 1, 1},
		{1, 0, 1},
	})
	col := &sink.Collector{}
	_ = qcdfs.Run(tbl, qcdfs.Config{MinSup: 1}, col)
	b := NewBuilder(3, false)
	for _, c := range col.Cells {
		b.Add(c.Values, c.Count, 0)
	}
	s, _ := b.Build()
	// (0, *, *) is not closed: every matching tuple has 1 on dim 2, so its
	// closure is (0, *, 1) — same count, resolved by the covering probe.
	count, ok := s.Query([]core.Value{0, core.Star, core.Star})
	fmt.Println(count, ok)
	// Output: 2 true
}
