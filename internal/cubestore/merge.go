// MergePartitions is a freeze-file: it assembles new Store and group values
// that are immutable once the merged store is returned.
//
//ccubing:mutates Store, group

package cubestore

import (
	"bytes"
	"fmt"

	"ccubing/internal/core"
)

// This file implements the group-level merge constructor behind incremental
// refresh (internal/refresh): a new store assembled from the cells of an
// existing store whose partitions were untouched by a delta, plus freshly
// recomputed cells for the touched partitions.
//
// The partition argument mirrors the sharded-computation invariant of
// internal/parallel and internal/partition: a closed cell fixing the
// partition dimension aggregates tuples of exactly one partition, so its
// count, measure and closedness are unaffected by appends to other
// partitions. Cells with a wildcard on the partition dimension may aggregate
// tuples of any partition, so an append anywhere can change them; they are
// always replaced.

// MergePartitions builds a new store from s by splitting its cells on dim:
//
//   - cells fixing dim to a value for which replaced reports false are
//     retained (copied group-wise, keeping their sorted order — no re-sort);
//   - cells fixing dim to a replaced value, and every cell with a wildcard
//     on dim, are dropped;
//   - the fresh cells are added in their place.
//
// Fresh cells must have exactly NumDims values and either leave dim wildcard
// or fix it to a replaced value — otherwise a fresh cell could silently
// coexist with a retained cell of the same partition, breaking the closed
// cube's one-cell-per-group-by invariant; such cells are rejected. Duplicate
// keys (within the fresh cells, or between fresh and retained cells) are
// also an error. Aux values of fresh cells are stored iff s carries a
// measure. The merged store is canonical: its snapshot is byte-identical to
// one built from scratch over the same cell set.
//
// freshRes carries the residual of the replaced partitions' recomputation.
// Residual rows fix every dimension, so they partition cleanly on dim: rows
// of s's residual whose dim value is not replaced are retained, and
// freshRes's rows (which must fix dim to replaced values) take the place of
// the dropped ones. Passing freshRes nil produces a store without a residual
// — callers must do so whenever s lacks one (the retained partitions' pruned
// mass is unknown, so claiming exactness would be dishonest).
func (s *Store) MergePartitions(dim int, replaced func(core.Value) bool, fresh []core.Cell, freshRes *Residual) (*Store, error) {
	if dim < 0 || dim >= s.nd {
		return nil, fmt.Errorf("cubestore: merge: dimension %d out of range (store has %d)", dim, s.nd)
	}
	// Accumulate the fresh cells into per-cuboid groups and sort each, the
	// same canonicalization Build performs.
	fb := NewBuilder(s.nd, s.hasAux)
	for _, c := range fresh {
		if len(c.Values) != s.nd {
			return nil, fmt.Errorf("cubestore: merge: fresh cell has %d dimensions, store has %d", len(c.Values), s.nd)
		}
		if v := c.Values[dim]; v != core.Star && !replaced(v) {
			return nil, fmt.Errorf("cubestore: merge: fresh cell fixes dimension %d to unreplaced value %d", dim, v)
		}
		fb.Add(c.Values, c.Count, c.Aux)
	}
	freshGroups := fb.groups
	fb.groups = nil
	for _, g := range freshGroups {
		if err := g.sortRows(); err != nil {
			return nil, fmt.Errorf("cubestore: merge: %w", err)
		}
	}

	out := &Store{
		nd:     s.nd,
		hasAux: s.hasAux,
		byMask: make(map[core.Mask]*group),
	}
	for _, g := range s.groups {
		if !g.mask.Has(dim) {
			continue // wildcard on dim: replaced wholesale by fresh cells
		}
		kept := retainRows(g, dim, replaced)
		fg := freshGroups[g.mask]
		delete(freshGroups, g.mask)
		merged, err := mergeGroupPair(kept, fg)
		if err != nil {
			return nil, err
		}
		if merged != nil && merged.rows() > 0 {
			out.groups = append(out.groups, merged)
		}
	}
	for _, fg := range freshGroups {
		if fg.rows() > 0 {
			out.groups = append(out.groups, fg)
		}
	}
	sortGroups(out.groups)
	for _, g := range out.groups {
		out.byMask[g.mask] = g
		out.cells += int64(g.rows())
	}
	if freshRes != nil {
		res, err := s.mergeResidual(dim, replaced, freshRes)
		if err != nil {
			return nil, err
		}
		out.res = res
	}
	out.buildIndex()
	return out, nil
}

// mergeResidual splits s's residual on dim like MergePartitions splits
// cells: retained rows (dim value not replaced) plus freshRes's rows, which
// must all fix dim to replaced values.
func (s *Store) mergeResidual(dim int, replaced func(core.Value) bool, freshRes *Residual) (*Residual, error) {
	if freshRes.nd != s.nd {
		return nil, fmt.Errorf("cubestore: merge: fresh residual has %d dimensions, store has %d", freshRes.nd, s.nd)
	}
	off := dim * core.ValueWidth
	for i := 0; i < freshRes.NumRows(); i++ {
		if v := core.DecodeValue(freshRes.row(i)[off:]); !replaced(v) {
			return nil, fmt.Errorf("cubestore: merge: fresh residual row fixes dimension %d to unreplaced value %d", dim, v)
		}
	}
	kept := &Residual{nd: s.nd, hasAux: s.hasAux}
	if s.res != nil {
		for i := 0; i < s.res.NumRows(); i++ {
			row := s.res.row(i)
			if replaced(core.DecodeValue(row[off:])) {
				continue
			}
			kept.keys = append(kept.keys, row...)
			kept.counts = append(kept.counts, s.res.counts[i])
			if s.hasAux {
				var a float64
				if s.res.aux != nil {
					a = s.res.aux[i]
				}
				kept.aux = append(kept.aux, a)
			}
		}
	}
	return mergeResiduals(s.nd, s.hasAux, kept, freshRes)
}

// retainRows copies the rows of g whose value on dim is not replaced,
// preserving their sorted order. g must fix dim. Returns nil when nothing
// survives.
func retainRows(g *group, dim int, replaced func(core.Value) bool) *group {
	j := -1
	for k, d := range g.dims {
		if d == dim {
			j = k
			break
		}
	}
	off := j * core.ValueWidth
	kept := &group{mask: g.mask, dims: g.dims, width: g.width}
	for i := 0; i < g.rows(); i++ {
		row := g.row(i)
		if replaced(core.DecodeValue(row[off:])) {
			continue
		}
		kept.keys = append(kept.keys, row...)
		kept.counts = append(kept.counts, g.counts[i])
		if g.aux != nil {
			kept.aux = append(kept.aux, g.aux[i])
		}
	}
	if kept.rows() == 0 {
		return nil
	}
	return kept
}

// mergeGroupPair linearly merges two sorted groups of the same cuboid into
// one, rejecting duplicate keys. Either side may be nil.
func mergeGroupPair(a, b *group) (*group, error) {
	if a == nil {
		return b, nil
	}
	if b == nil {
		return a, nil
	}
	if a.width == 0 {
		// The apex cuboid holds at most one row; both sides non-empty means a
		// duplicate (retainRows and Builder never emit empty groups).
		return nil, fmt.Errorf("cubestore: merge: duplicate apex cell")
	}
	n, m := a.rows(), b.rows()
	out := &group{mask: a.mask, dims: a.dims, width: a.width}
	out.keys = make([]byte, 0, len(a.keys)+len(b.keys))
	out.counts = make([]int64, 0, n+m)
	if a.aux != nil || b.aux != nil {
		out.aux = make([]float64, 0, n+m)
	}
	take := func(g *group, i int) {
		out.keys = append(out.keys, g.row(i)...)
		out.counts = append(out.counts, g.counts[i])
		if out.aux != nil {
			var v float64
			if g.aux != nil {
				v = g.aux[i]
			}
			out.aux = append(out.aux, v)
		}
	}
	i, j := 0, 0
	for i < n && j < m {
		switch bytes.Compare(a.row(i), b.row(j)) {
		case -1:
			take(a, i)
			i++
		case 1:
			take(b, j)
			j++
		default:
			return nil, fmt.Errorf("cubestore: merge: duplicate cell in cuboid mask %#x", uint64(a.mask))
		}
	}
	for ; i < n; i++ {
		take(a, i)
	}
	for ; j < m; j++ {
		take(b, j)
	}
	return out, nil
}
