//go:build race

package cubestore

// raceEnabled reports whether the race detector is compiled in. Allocation
// regression tests skip under -race: the instrumentation itself allocates
// (e.g. one alloc per Lookup miss), so AllocsPerRun counts measure the
// detector, not the probe path.
const raceEnabled = true
