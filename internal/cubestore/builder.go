// Builder-side mutation of the cubestore structures. Store and group are
// //ccubing:freeze types: after Build (or Load, or MergePartitions) returns a
// Store it is published to concurrent readers and never written again. Every
// file that legitimately writes their fields carries a //ccubing:mutates
// comment like this one; writes anywhere else are flagged by cclint.
//
//ccubing:mutates Store, group

package cubestore

import (
	"bytes"
	"fmt"
	"sort"

	"ccubing/internal/core"
	"ccubing/internal/sink"
)

// buildIndex derives the cuboid-lattice index from the sorted group list;
// called by Build and Load.
func (s *Store) buildIndex() {
	s.byDim = make([][]*group, s.nd)
	for _, g := range s.groups {
		for _, d := range g.dims {
			s.byDim[d] = append(s.byDim[d], g)
		}
	}
}

// Builder accumulates closed cells and freezes them into a Store.
type Builder struct {
	nd     int
	hasAux bool
	groups map[core.Mask]*group
	res    *Residual
}

// NewBuilder returns a builder for an nd-dimensional cube; hasAux reserves a
// complex-measure value per cell.
func NewBuilder(nd int, hasAux bool) *Builder {
	return &Builder{nd: nd, hasAux: hasAux, groups: make(map[core.Mask]*group)}
}

// Add records one closed cell. vals is copied; aux is ignored unless the
// builder was created with hasAux.
func (b *Builder) Add(vals []core.Value, count int64, aux float64) {
	mask := core.AllMask(vals) // wildcard bits
	fixed := core.LowBits(b.nd) &^ mask
	g := b.groups[fixed]
	if g == nil {
		g = &group{mask: fixed}
		g.dims = fixed.Dims(nil)
		g.width = core.ValueWidth * len(g.dims)
		b.groups[fixed] = g
	}
	g.keys = core.AppendValues(g.keys, vals, g.dims)
	g.counts = append(g.counts, count)
	if b.hasAux {
		g.aux = append(g.aux, aux)
	}
}

// AddBatch records a whole merge-flush batch of cells: each entry's values
// live at [Off, Off+Width) of the shared arena. The sink.BatchSink fast path
// of the parallel merge pipeline lands here, one call per flushed batch
// instead of one Add per cell under the merger's lock.
func (b *Builder) AddBatch(arena []core.Value, cells []sink.BatchCell) {
	for _, c := range cells {
		b.Add(arena[c.Off:c.Off+c.Width], c.Count, c.Aux)
	}
}

// BuilderSink adapts a Builder to the sink interfaces (Sink, AuxSink and the
// BatchSink bulk path), counting the cells it forwards. It is the terminal
// sink of Materialize-style builds whose dimension order needs no remapping.
type BuilderSink struct {
	B     *Builder
	Cells int64
}

// Emit implements sink.Sink.
func (s *BuilderSink) Emit(vals []core.Value, count int64) {
	s.B.Add(vals, count, 0)
	s.Cells++
}

// EmitAux implements sink.AuxSink.
func (s *BuilderSink) EmitAux(vals []core.Value, count int64, aux float64) {
	s.B.Add(vals, count, aux)
	s.Cells++
}

// EmitBatch implements sink.BatchSink.
func (s *BuilderSink) EmitBatch(arena []core.Value, cells []sink.BatchCell) {
	s.B.AddBatch(arena, cells)
	s.Cells += int64(len(cells))
}

// SetResidual attaches the residual summary of the iceberg pruning the cells
// were computed with (see Residual); Build transfers it to the store. The
// residual's dimensionality must match the builder's. Passing nil clears it.
func (b *Builder) SetResidual(res *Residual) error {
	if res != nil && res.nd != b.nd {
		return fmt.Errorf("cubestore: residual has %d dimensions, builder has %d", res.nd, b.nd)
	}
	b.res = res
	return nil
}

// Build sorts every cuboid group and returns the immutable store. It errors
// on duplicate cells (a closed cube contains each cell once) and leaves the
// builder unusable afterwards.
func (b *Builder) Build() (*Store, error) {
	s := &Store{
		nd:     b.nd,
		hasAux: b.hasAux,
		groups: make([]*group, 0, len(b.groups)),
		byMask: make(map[core.Mask]*group, len(b.groups)),
		res:    b.res,
	}
	for _, g := range b.groups {
		if err := g.sortRows(); err != nil {
			return nil, err
		}
		s.groups = append(s.groups, g)
		s.byMask[g.mask] = g
		s.cells += int64(g.rows())
	}
	sortGroups(s.groups)
	s.buildIndex()
	b.groups = nil
	return s, nil
}

// sortGroups orders a group list into the store's canonical order, masks
// ascending.
func sortGroups(groups []*group) {
	sort.Slice(groups, func(i, j int) bool { return groups[i].mask < groups[j].mask })
}

// sortRows orders the group's rows by packed key and rejects duplicates.
func (g *group) sortRows() error {
	n := g.rows()
	if g.width == 0 {
		if n > 1 {
			return fmt.Errorf("cubestore: duplicate apex cell")
		}
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(g.row(idx[a]), g.row(idx[b])) < 0
	})
	keys := make([]byte, 0, len(g.keys))
	counts := make([]int64, 0, n)
	var aux []float64
	if g.aux != nil {
		aux = make([]float64, 0, n)
	}
	for _, i := range idx {
		keys = append(keys, g.row(i)...)
		counts = append(counts, g.counts[i])
		if g.aux != nil {
			aux = append(aux, g.aux[i])
		}
	}
	for i := 1; i < n; i++ {
		if bytes.Equal(keys[(i-1)*g.width:i*g.width], keys[i*g.width:(i+1)*g.width]) {
			return fmt.Errorf("cubestore: duplicate cell in cuboid mask %#x", uint64(g.mask))
		}
	}
	g.keys, g.counts, g.aux = keys, counts, aux
	return nil
}
