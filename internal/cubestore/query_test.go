package cubestore

import (
	"fmt"
	"math/rand"
	"testing"

	"ccubing/internal/core"
)

// randomPred draws one predicate over a dimension of cardinality card.
func randomPred(rng *rand.Rand, card int) Pred {
	switch rng.Intn(4) {
	case 0:
		return Pred{Kind: PredAny}
	case 1:
		return Pred{Kind: PredEq, Val: core.Value(rng.Intn(card))}
	case 2:
		lo := core.Value(rng.Intn(card))
		hi := lo + core.Value(rng.Intn(card))
		return Pred{Kind: PredRange, Lo: lo, Hi: hi}
	default:
		n := 1 + rng.Intn(3)
		set := make([]core.Value, n)
		for i := range set {
			set[i] = core.Value(rng.Intn(card))
		}
		return Pred{Kind: PredIn, Set: set}
	}
}

func randomSpec(rng *rand.Rand, cards []int) Spec {
	preds := make([]Pred, len(cards))
	for d, c := range cards {
		preds[d] = randomPred(rng, c)
	}
	return Spec{Preds: preds}
}

// TestSelectMatchesWalkFilter checks Select against filtering a full Walk
// with the same predicates.
func TestSelectMatchesWalkFilter(t *testing.T) {
	cards := []int{6, 5, 4, 3}
	tbl := testTable(t, 600, cards, 0.9, 21)
	s := buildFromClosed(t, tbl, 1)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		spec := randomSpec(rng, cards)
		want := map[string]int64{}
		s.Walk(func(c core.Cell) bool {
			for d, p := range spec.Preds {
				if !p.Bound() {
					continue
				}
				if c.Values[d] == core.Star || !p.Match(c.Values[d]) {
					return true
				}
			}
			want[c.Key()] = c.Count
			return true
		})
		got := map[string]int64{}
		s.Select(spec, func(c core.Cell) bool {
			got[c.Key()] = c.Count
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("spec %d: %d cells, want %d", i, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("spec %d: count mismatch for %q", i, k)
			}
		}
	}
}

// bruteAggregate computes the group-by answer directly from the relation:
// count of matching tuples per distinct GroupBy value combination.
func bruteAggregate(tbl *tableLike, spec Spec, groupBy []int) map[string]int64 {
	out := map[string]int64{}
	for tid := 0; tid < tbl.n; tid++ {
		ok := true
		for d, p := range spec.Preds {
			if !p.Match(tbl.cols[d][tid]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		key := make([]byte, 0, len(groupBy)*core.ValueWidth)
		for _, d := range groupBy {
			key = core.AppendValue(key, tbl.cols[d][tid])
		}
		out[string(key)]++
	}
	return out
}

// tableLike avoids importing internal/table twice in helpers.
type tableLike struct {
	cols [][]core.Value
	n    int
}

// TestAggregateAgainstBruteForce fuzzes Aggregate (range/set/exact predicates
// with varying group-by dimension sets) against direct tuple counting. At
// min_sup 1 the closed cube is lossless, so every group and count must match
// exactly.
func TestAggregateAgainstBruteForce(t *testing.T) {
	cards := []int{6, 5, 4, 3}
	tbl := testTable(t, 500, cards, 1.0, 13)
	s := buildFromClosed(t, tbl, 1)
	like := &tableLike{cols: tbl.Cols, n: tbl.NumTuples()}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		spec := randomSpec(rng, cards)
		var groupBy []int
		for d := range cards {
			if rng.Intn(2) == 0 {
				groupBy = append(groupBy, d)
			}
		}
		want := bruteAggregate(like, spec, groupBy)
		rows := s.Aggregate(spec, AggOptions{GroupBy: groupBy})
		if len(rows) != len(want) {
			t.Fatalf("spec %d groupBy %v: %d rows, want %d", i, groupBy, len(rows), len(want))
		}
		for _, r := range rows {
			key := make([]byte, 0, len(groupBy)*core.ValueWidth)
			for _, d := range groupBy {
				if r.Values[d] == core.Star {
					t.Fatalf("spec %d: row %v leaves group-by dimension %d unbound", i, r.Values, d)
				}
				key = core.AppendValue(key, r.Values[d])
			}
			// Non-group dimensions must be wildcards.
			gm := core.Mask(0)
			for _, d := range groupBy {
				gm = gm.With(d)
			}
			for d, v := range r.Values {
				if !gm.Has(d) && v != core.Star {
					t.Fatalf("spec %d: row %v binds non-group dimension %d", i, r.Values, d)
				}
			}
			if want[string(key)] != r.Count {
				t.Fatalf("spec %d groupBy %v: group %v = %d, want %d", i, groupBy, r.Values, r.Count, want[string(key)])
			}
		}
	}
}

// TestAggregateTopK checks ranking, determinism and truncation.
func TestAggregateTopK(t *testing.T) {
	cards := []int{7, 5, 4}
	tbl := testTable(t, 400, cards, 1.3, 5)
	s := buildFromClosed(t, tbl, 1)
	spec := Spec{Preds: []Pred{{Kind: PredAny}, {Kind: PredAny}, {Kind: PredAny}}}
	all := s.Aggregate(spec, AggOptions{GroupBy: []int{0}})
	for i := 1; i < len(all); i++ {
		if all[i].Count > all[i-1].Count {
			t.Fatalf("rows not count-descending at %d: %v", i, all)
		}
		if all[i].Count == all[i-1].Count && all[i].Values[0] < all[i-1].Values[0] {
			t.Fatalf("equal-count tie not key-ascending at %d", i)
		}
	}
	for k := 1; k <= len(all); k++ {
		topk := s.Aggregate(spec, AggOptions{GroupBy: []int{0}, TopK: k})
		if len(topk) != k {
			t.Fatalf("TopK(%d) returned %d rows", k, len(topk))
		}
		for i := range topk {
			if fmt.Sprint(topk[i]) != fmt.Sprint(all[i]) {
				t.Fatalf("TopK(%d) row %d = %v, want %v", k, i, topk[i], all[i])
			}
		}
	}
	// Grand total: no group-by, no predicates = apex count.
	total := s.Aggregate(spec, AggOptions{})
	if len(total) != 1 || total[0].Count != int64(tbl.NumTuples()) {
		t.Fatalf("grand total = %v, want single row of %d", total, tbl.NumTuples())
	}
}

// TestLatticeProbeBound pins the acceptance criterion for the cuboid-lattice
// index: on a cube with ≥10 dimensions, a 1-bound-dimension covering probe
// visits only the groups fixing that dimension — strictly fewer than
// NumCuboids(), which the pre-index implementation scanned.
func TestLatticeProbeBound(t *testing.T) {
	cards := make([]int, 10)
	for d := range cards {
		cards[d] = 3
	}
	tbl := testTable(t, 2000, cards, 0, 7)
	s := buildFromClosed(t, tbl, 4)
	if s.NumDims() < 10 {
		t.Fatalf("want >= 10 dims, got %d", s.NumDims())
	}
	// The query binds dimension 0 to an out-of-domain value: it misses, so
	// the covering scan inspects every candidate group — the worst case.
	q := make([]core.Value, s.NumDims())
	for d := range q {
		q[d] = core.Star
	}
	q[0] = core.Value(cards[0]) // out of domain: a guaranteed miss
	before := s.Probes()
	if _, ok := s.Lookup(q); ok {
		t.Fatal("out-of-domain value must miss")
	}
	probed := s.Probes() - before
	if probed <= 0 {
		t.Fatal("covering scan did not probe any group")
	}
	if probed >= int64(s.NumCuboids()) {
		t.Fatalf("probed %d groups, want strictly fewer than NumCuboids=%d", probed, s.NumCuboids())
	}
	// The bound is exactly the lattice list for dimension 0 (minus the
	// query's own cuboid, which the fast path owns).
	withD0, withD1, withBoth := 0, 0, 0
	for _, g := range s.groups {
		if g.mask.Has(0) {
			withD0++
		}
		if g.mask.Has(1) {
			withD1++
		}
		if g.mask.Has(0) && g.mask.Has(1) {
			withBoth++
		}
	}
	if probed > int64(withD0) {
		t.Fatalf("probed %d groups, lattice bound is %d", probed, withD0)
	}

	// Two bound dimensions: the candidate list is the intersection of the two
	// shortest per-dimension lists, strictly tighter than either list alone.
	if withBoth >= withD0 || withBoth >= withD1 {
		t.Fatalf("dataset does not discriminate: |d0∧d1|=%d, |d0|=%d, |d1|=%d", withBoth, withD0, withD1)
	}
	q[1] = 0 // in-domain; d0 stays out of domain, so the probe still misses
	before = s.Probes()
	if _, ok := s.Lookup(q); ok {
		t.Fatal("out-of-domain value must miss")
	}
	probed = s.Probes() - before
	if probed <= 0 {
		t.Fatal("two-dimension covering scan did not probe any group")
	}
	if probed > int64(withBoth) {
		t.Fatalf("probed %d groups, intersection bound is %d", probed, withBoth)
	}
}

// TestLatticeEmptyDimensionList pins the tightest candidate bound: a query
// binding a dimension no stored cell fixes has zero covering groups, so the
// covering scan must probe nothing.
func TestLatticeEmptyDimensionList(t *testing.T) {
	b := NewBuilder(3, false)
	b.Add([]core.Value{core.Star, core.Star, core.Star}, 4, 0)
	b.Add([]core.Value{1, core.Star, core.Star}, 2, 0)
	b.Add([]core.Value{1, 2, core.Star}, 2, 0) // dimension 2 never fixed
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	before := s.Probes()
	if _, ok := s.Lookup([]core.Value{core.Star, core.Star, 5}); ok {
		t.Fatal("query binding an unfixed dimension must miss")
	}
	if probed := s.Probes() - before; probed != 0 {
		t.Fatalf("probed %d groups, want 0 (byDim list for dimension 2 is empty)", probed)
	}
}

// TestLookupTieBreakMostSpecific pins the deterministic tie-break: when two
// covering cells carry the query's count, they aggregate the same tuples, so
// the most specific one is the true closure and must win regardless of scan
// order. The pair is built directly (the less specific cell is not closed —
// the scenario a consistent closed cube avoids but Builder accepts).
func TestLookupTieBreakMostSpecific(t *testing.T) {
	b := NewBuilder(3, false)
	// (1,2,*) and (1,2,3): equal counts, so every tuple under (1,2,*) has
	// value 3 on the last dimension — the closure of (1,*,*) is (1,2,3).
	b.Add([]core.Value{1, 2, core.Star}, 5, 0)
	b.Add([]core.Value{1, 2, 3}, 5, 0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.Lookup([]core.Value{1, core.Star, core.Star})
	if !ok || c.Count != 5 {
		t.Fatalf("lookup = (%v,%v), want count 5", c, ok)
	}
	want := []core.Value{1, 2, 3}
	for d, v := range want {
		if c.Values[d] != v {
			t.Fatalf("closure = %v, want %v (most specific covering cell)", c.Values, want)
		}
	}
	// With a strictly larger count on the less specific cell, count still
	// dominates specificity.
	b2 := NewBuilder(3, false)
	b2.Add([]core.Value{1, 2, core.Star}, 7, 0)
	b2.Add([]core.Value{1, 2, 3}, 5, 0)
	s2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	c2, ok := s2.Lookup([]core.Value{1, core.Star, core.Star})
	if !ok || c2.Count != 7 || c2.Values[2] != core.Star {
		t.Fatalf("lookup = (%v,%v), want the count-7 cell (1,2,*)", c2, ok)
	}
}

// TestLookupTieBreakOrderIndependent rebuilds the tie store with the
// insertion order reversed: the resolved closure must be identical.
func TestLookupTieBreakOrderIndependent(t *testing.T) {
	build := func(rev bool) *Store {
		cells := [][]core.Value{{1, 2, core.Star}, {1, 2, 3}}
		if rev {
			cells[0], cells[1] = cells[1], cells[0]
		}
		b := NewBuilder(3, false)
		for _, v := range cells {
			b.Add(v, 5, 0)
		}
		s, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	q := []core.Value{1, core.Star, core.Star}
	c1, _ := build(false).Lookup(q)
	c2, _ := build(true).Lookup(q)
	if fmt.Sprint(c1.Values) != fmt.Sprint(c2.Values) {
		t.Fatalf("tie-break depends on build order: %v vs %v", c1.Values, c2.Values)
	}
}

// BenchmarkLookupLattice measures covering-probe cost on a sparse
// 12-dimensional cube with a single bound dimension — the regime where the
// pre-index Lookup scanned every cuboid group. probes/op is reported so the
// bench series records the candidate bound directly.
func BenchmarkLookupLattice(b *testing.B) {
	cards := make([]int, 12)
	for d := range cards {
		cards[d] = 4
	}
	tbl := testTable(b, 4000, cards, 0.5, 3)
	s := buildFromClosed(b, tbl, 8)
	q := make([]core.Value, s.NumDims())
	for d := range q {
		q[d] = core.Star
	}
	q[0] = core.Value(cards[0]) // miss: full candidate scan each op
	start := s.Probes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(q)
	}
	b.StopTimer()
	perOp := float64(s.Probes()-start) / float64(b.N)
	b.ReportMetric(perOp, "probes/op")
	b.ReportMetric(float64(s.NumCuboids()), "cuboids/op")
	// The acceptance bound, asserted where it is measured: the lattice index
	// must probe strictly fewer groups than a full cuboid scan would.
	if perOp >= float64(s.NumCuboids()) {
		b.Fatalf("probed %.0f groups/op, want strictly fewer than NumCuboids=%d", perOp, s.NumCuboids())
	}
}

// BenchmarkAggregateGroupBy measures a predicate group-by over the store.
func BenchmarkAggregateGroupBy(b *testing.B) {
	cards := []int{50, 20, 10, 8, 6}
	tbl := testTable(b, 20000, cards, 1.0, 17)
	s := buildFromClosed(b, tbl, 4)
	spec := Spec{Preds: []Pred{
		{Kind: PredRange, Lo: 0, Hi: 24},
		{Kind: PredAny},
		{Kind: PredIn, Set: []core.Value{1, 3, 5}},
		{Kind: PredAny},
		{Kind: PredAny},
	}}
	opt := AggOptions{GroupBy: []int{1}, TopK: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Aggregate(spec, opt)
	}
}
