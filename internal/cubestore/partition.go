// Partition framing: Split and Merge assemble Store values that are
// immutable once returned, and the frame decoder rebuilds them via Load.
//
//ccubing:mutates Store, group

package cubestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"ccubing/internal/core"
)

// This file makes the leading-dimension partition a transport unit. A store
// is split into one sub-store per shard owner (cells fixing the partition
// dimension, routed by an owner function) plus a residual sub-store (cells
// with a wildcard on the dimension, which aggregate tuples of every shard).
// Each sub-store is framed with a CRC-checked header and the existing
// snapshot encoding as payload, so a shard worker can ship its closed cells
// over a connection and a router can reassemble the exact original store.
//
// The split is lossless and canonical: Split → Encode → Decode → Merge
// yields a store whose Save bytes are identical to the original's, because
// every sub-store and the merged store use the same canonical ordering
// (masks ascending, packed keys lexicographic) as Build.

// Partition frame format (integers uvarint unless noted, little-endian):
//
//	magic   "CCPART\x00" + version byte (8 bytes raw)
//	dim     partition dimension
//	index   shard index (0 for the residual frame)
//	count   total shard count
//	flags   1 byte: bit0 = residual frame (cells wildcard on dim)
//	gen     snapshot generation the frame was cut from
//	paylen  payload length in bytes
//	crc32   IEEE checksum of everything above (4 bytes LE, raw)
//	payload paylen bytes: a Store snapshot (self-checksummed "CCSTOR"; the
//	        snapshot's own version byte governs whether an iceberg-residual
//	        section rides along)
const partitionMagic = "CCPART\x00"

// PartitionVersion is the current partition frame format version.
const PartitionVersion = 1

const flagResidual = 1

// maxPartitionPayload bounds one frame's declared payload length so a
// corrupt varint fails cleanly instead of attempting a giant read.
const maxPartitionPayload = 1 << 40

// PartitionHeader describes one partition frame.
type PartitionHeader struct {
	Dim        int    // partition dimension
	Index      int    // shard index in [0, Count); 0 and unused when Residual
	Count      int    // total shard count of the split
	Residual   bool   // frame holds the cells with a wildcard on Dim
	Generation uint64 // snapshot generation the frame was cut from
}

// Partition is one shard's worth of closed cells: a self-contained store
// holding exactly the cells of the original that fix the partition dimension
// to a value this shard owns (or, for the residual frame, the cells with a
// wildcard on that dimension).
type Partition struct {
	Header PartitionHeader
	Store  *Store
}

// PartitionSet is a complete split of one store: Count owner partitions plus
// the residual partition, in that order.
type PartitionSet struct {
	Dim        int
	Count      int
	Generation uint64
	Parts      []*Partition // len Count+1; Parts[Count] is the residual
}

// Split partitions the store's cells on dim across n owners. Cells fixing
// dim are routed by owner(value), which must return an index in [0, n);
// cells with a wildcard on dim go to the residual partition. Every cell of s
// lands in exactly one partition, so Merge on the result reproduces s
// byte-identically.
func Split(s *Store, dim, n int, owner func(core.Value) int, generation uint64) (*PartitionSet, error) {
	if dim < 0 || dim >= s.nd {
		return nil, fmt.Errorf("cubestore: split: dimension %d out of range (store has %d)", dim, s.nd)
	}
	if n < 1 {
		return nil, fmt.Errorf("cubestore: split: need at least 1 owner, got %d", n)
	}
	builders := make([]*Builder, n+1)
	for i := range builders {
		builders[i] = NewBuilder(s.nd, s.hasAux)
	}
	var werr error
	s.Walk(func(c core.Cell) bool {
		b := builders[n]
		if v := c.Values[dim]; v != core.Star {
			o := owner(v)
			if o < 0 || o >= n {
				werr = fmt.Errorf("cubestore: split: owner(%d) = %d out of range [0, %d)", v, o, n)
				return false
			}
			b = builders[o]
		}
		b.Add(c.Values, c.Count, c.Aux)
		return true
	})
	if werr != nil {
		return nil, werr
	}
	// The iceberg residual (sub-threshold base cells — distinct from this
	// file's wildcard-frame "residual") splits cleanly too: every row fixes
	// all dimensions, so it belongs to exactly one owner. Rows keep their
	// sorted order (a subsequence of a sorted sequence), so owner residuals
	// are canonical without re-sorting.
	if s.res != nil {
		resParts := make([]*Residual, n)
		for i := range resParts {
			resParts[i] = &Residual{nd: s.nd, hasAux: s.res.hasAux}
		}
		off := dim * core.ValueWidth
		for i := 0; i < s.res.NumRows(); i++ {
			row := s.res.row(i)
			v := core.DecodeValue(row[off:])
			o := owner(v)
			if o < 0 || o >= n {
				return nil, fmt.Errorf("cubestore: split: owner(%d) = %d out of range [0, %d)", v, o, n)
			}
			p := resParts[o]
			p.keys = append(p.keys, row...)
			p.counts = append(p.counts, s.res.counts[i])
			if p.hasAux {
				p.aux = append(p.aux, s.res.aux[i])
			}
		}
		for i, b := range builders[:n] {
			if err := b.SetResidual(resParts[i]); err != nil {
				return nil, fmt.Errorf("cubestore: split: partition %d: %w", i, err)
			}
		}
	}
	ps := &PartitionSet{Dim: dim, Count: n, Generation: generation}
	for i, b := range builders {
		st, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("cubestore: split: partition %d: %w", i, err)
		}
		idx := i
		if i == n {
			idx = 0 // the residual frame carries no owner index
		}
		ps.Parts = append(ps.Parts, &Partition{
			Header: PartitionHeader{
				Dim:        dim,
				Index:      idx,
				Count:      n,
				Residual:   i == n,
				Generation: generation,
			},
			Store: st,
		})
	}
	return ps, nil
}

// Merge reassembles the single store the set was split from, using
// MergePartitions as the merge primitive: every owner partition's cells must
// fix Dim, the residual's must leave it wildcard, and duplicate cells across
// partitions are rejected. The result is canonical, so merging a set split
// from a store reproduces that store's snapshot bytes exactly.
func (ps *PartitionSet) Merge() (*Store, error) {
	if len(ps.Parts) != ps.Count+1 {
		return nil, fmt.Errorf("cubestore: merge set: have %d partitions, want %d owners + residual", len(ps.Parts), ps.Count)
	}
	nd, hasAux := 0, false
	for i, p := range ps.Parts {
		if p.Store == nil {
			return nil, fmt.Errorf("cubestore: merge set: partition %d has no store", i)
		}
		if i == 0 {
			nd, hasAux = p.Store.nd, p.Store.hasAux
			continue
		}
		if p.Store.nd != nd || p.Store.hasAux != hasAux {
			return nil, fmt.Errorf("cubestore: merge set: partition %d shape (%d dims, aux=%v) disagrees with partition 0 (%d dims, aux=%v)",
				i, p.Store.nd, p.Store.hasAux, nd, hasAux)
		}
	}
	if ps.Dim < 0 || ps.Dim >= nd {
		return nil, fmt.Errorf("cubestore: merge set: dimension %d out of range (store has %d)", ps.Dim, nd)
	}
	var fresh []core.Cell
	var werr error
	for i, p := range ps.Parts {
		residual := i == ps.Count
		p.Store.Walk(func(c core.Cell) bool {
			if wild := c.Values[ps.Dim] == core.Star; wild != residual {
				werr = fmt.Errorf("cubestore: merge set: partition %d (residual=%v) holds a cell with dim %d wildcard=%v", i, residual, ps.Dim, wild)
				return false
			}
			fresh = append(fresh, c)
			return true
		})
		if werr != nil {
			return nil, werr
		}
	}
	// The merged store carries an iceberg residual iff every owner partition
	// does (the wildcard frame never does: its cells span owners, but residual
	// rows fix Dim). A mixed set would make the merged aggregates claim an
	// exactness only some shards can back, so it is rejected.
	var freshRes *Residual
	withRes := 0
	for i := 0; i < ps.Count; i++ {
		if ps.Parts[i].Store.HasResidual() {
			withRes++
		}
	}
	if ps.Parts[ps.Count].Store.HasResidual() {
		return nil, fmt.Errorf("cubestore: merge set: wildcard partition must not carry an iceberg residual")
	}
	if withRes > 0 && withRes < ps.Count {
		return nil, fmt.Errorf("cubestore: merge set: %d of %d owner partitions carry an iceberg residual", withRes, ps.Count)
	}
	if withRes == ps.Count && ps.Count > 0 {
		var rows []ResidualRow
		for i := 0; i < ps.Count; i++ {
			rows = append(rows, ps.Parts[i].Store.res.Rows()...)
		}
		var err error
		if freshRes, err = residualFromRows(nd, hasAux, rows); err != nil {
			return nil, fmt.Errorf("cubestore: merge set: %w", err)
		}
	}
	base, err := NewBuilder(nd, hasAux).Build()
	if err != nil {
		return nil, fmt.Errorf("cubestore: merge set: %w", err)
	}
	return base.MergePartitions(ps.Dim, func(core.Value) bool { return true }, fresh, freshRes)
}

// WritePartition writes one partition frame to w.
func WritePartition(w io.Writer, p *Partition) error {
	if p.Store == nil {
		return fmt.Errorf("cubestore: write partition: nil store")
	}
	var payload bytes.Buffer
	if err := p.Store.Save(&payload); err != nil {
		return fmt.Errorf("cubestore: write partition: %w", err)
	}
	var head bytes.Buffer
	head.WriteString(partitionMagic)
	head.WriteByte(PartitionVersion)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		head.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	putUvarint(uint64(p.Header.Dim))
	putUvarint(uint64(p.Header.Index))
	putUvarint(uint64(p.Header.Count))
	flags := byte(0)
	if p.Header.Residual {
		flags |= flagResidual
	}
	head.WriteByte(flags)
	putUvarint(p.Header.Generation)
	putUvarint(uint64(payload.Len()))
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(head.Bytes()))
	head.Write(scratch[:4])
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("cubestore: write partition: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("cubestore: write partition: %w", err)
	}
	return nil
}

// ReadPartition reads one partition frame written by WritePartition,
// validating the header checksum and the payload's own snapshot checksum. A
// truncated or corrupted frame yields an error, never a partial partition.
func ReadPartition(r io.Reader) (*Partition, error) {
	cr := &crcReader{r: r}
	rd := &byteReader{r: cr}
	var head [8]byte
	if _, err := io.ReadFull(rd, head[:]); err != nil {
		return nil, fmt.Errorf("cubestore: read partition: %w", err)
	}
	if string(head[:7]) != partitionMagic {
		return nil, fmt.Errorf("cubestore: read partition: bad magic %q", head[:7])
	}
	if head[7] != PartitionVersion {
		return nil, fmt.Errorf("cubestore: read partition: unsupported frame version %d (want %d)", head[7], PartitionVersion)
	}
	var h PartitionHeader
	uvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(rd)
		if err != nil {
			return 0, fmt.Errorf("cubestore: read partition: %s: %w", what, err)
		}
		return v, nil
	}
	dim, err := uvarint("dim")
	if err != nil {
		return nil, err
	}
	index, err := uvarint("index")
	if err != nil {
		return nil, err
	}
	count, err := uvarint("count")
	if err != nil {
		return nil, err
	}
	if dim >= uint64(core.MaxDims) || count == 0 || count > maxSnapshotRows || index >= count {
		return nil, fmt.Errorf("cubestore: read partition: implausible header (dim %d, index %d, count %d)", dim, index, count)
	}
	flags, err := rd.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("cubestore: read partition: flags: %w", err)
	}
	if flags&^flagResidual != 0 {
		return nil, fmt.Errorf("cubestore: read partition: unknown flags %#x", flags)
	}
	h.Dim, h.Index, h.Count = int(dim), int(index), int(count)
	h.Residual = flags&flagResidual != 0
	if h.Generation, err = uvarint("generation"); err != nil {
		return nil, err
	}
	paylen, err := uvarint("payload length")
	if err != nil {
		return nil, err
	}
	if paylen > maxPartitionPayload {
		return nil, fmt.Errorf("cubestore: read partition: implausible payload length %d", paylen)
	}
	want := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(rd, tail[:]); err != nil {
		return nil, fmt.Errorf("cubestore: read partition: checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("cubestore: read partition: header checksum mismatch (%#x != %#x)", got, want)
	}
	payload, err := ReadAllChunked(r, int(paylen))
	if err != nil {
		return nil, fmt.Errorf("cubestore: read partition: payload: %w", err)
	}
	pr := bytes.NewReader(payload)
	st, err := Load(pr)
	if err != nil {
		return nil, fmt.Errorf("cubestore: read partition: payload: %w", err)
	}
	// The snapshot must account for every declared payload byte: trailing
	// garbage would silently desync the next frame in a stream.
	if pr.Len() != 0 {
		return nil, fmt.Errorf("cubestore: read partition: %d trailing payload bytes", pr.Len())
	}
	return &Partition{Header: h, Store: st}, nil
}

// Partition set stream format:
//
//	magic   "CCPSET\x00" + version byte (8 bytes raw)
//	dim     uvarint
//	count   uvarint (owner partitions; count+1 frames follow)
//	gen     uvarint
//	crc32   IEEE checksum of everything above (4 bytes LE, raw)
//	frames  count+1 partition frames, owners ascending then the residual
const partitionSetMagic = "CCPSET\x00"

// Encode writes the whole set — preamble plus every frame — to w.
func (ps *PartitionSet) Encode(w io.Writer) error {
	if len(ps.Parts) != ps.Count+1 {
		return fmt.Errorf("cubestore: encode set: have %d partitions, want %d owners + residual", len(ps.Parts), ps.Count)
	}
	var head bytes.Buffer
	head.WriteString(partitionSetMagic)
	head.WriteByte(PartitionVersion)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		head.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	putUvarint(uint64(ps.Dim))
	putUvarint(uint64(ps.Count))
	putUvarint(ps.Generation)
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(head.Bytes()))
	head.Write(scratch[:4])
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("cubestore: encode set: %w", err)
	}
	for i, p := range ps.Parts {
		if err := WritePartition(w, p); err != nil {
			return fmt.Errorf("cubestore: encode set: partition %d: %w", i, err)
		}
	}
	return nil
}

// DecodePartitionSet reads a stream written by Encode, validating the
// preamble checksum and every frame's header against the set (dimension,
// shard count, generation, position).
func DecodePartitionSet(r io.Reader) (*PartitionSet, error) {
	cr := &crcReader{r: r}
	rd := &byteReader{r: cr}
	var head [8]byte
	if _, err := io.ReadFull(rd, head[:]); err != nil {
		return nil, fmt.Errorf("cubestore: decode set: %w", err)
	}
	if string(head[:7]) != partitionSetMagic {
		return nil, fmt.Errorf("cubestore: decode set: bad magic %q", head[:7])
	}
	if head[7] != PartitionVersion {
		return nil, fmt.Errorf("cubestore: decode set: unsupported version %d (want %d)", head[7], PartitionVersion)
	}
	dim, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("cubestore: decode set: dim: %w", err)
	}
	count, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("cubestore: decode set: count: %w", err)
	}
	gen, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("cubestore: decode set: generation: %w", err)
	}
	if dim >= uint64(core.MaxDims) || count == 0 || count > maxSnapshotRows {
		return nil, fmt.Errorf("cubestore: decode set: implausible preamble (dim %d, count %d)", dim, count)
	}
	want := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(rd, tail[:]); err != nil {
		return nil, fmt.Errorf("cubestore: decode set: checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("cubestore: decode set: preamble checksum mismatch (%#x != %#x)", got, want)
	}
	ps := &PartitionSet{Dim: int(dim), Count: int(count), Generation: gen}
	for i := 0; i <= ps.Count; i++ {
		p, err := ReadPartition(r)
		if err != nil {
			return nil, fmt.Errorf("cubestore: decode set: partition %d: %w", i, err)
		}
		h := p.Header
		residual := i == ps.Count
		switch {
		case h.Dim != ps.Dim || h.Count != ps.Count || h.Generation != ps.Generation:
			return nil, fmt.Errorf("cubestore: decode set: partition %d header (dim %d, count %d, gen %d) disagrees with preamble (dim %d, count %d, gen %d)",
				i, h.Dim, h.Count, h.Generation, ps.Dim, ps.Count, ps.Generation)
		case h.Residual != residual:
			return nil, fmt.Errorf("cubestore: decode set: partition %d: residual=%v at position %d of %d", i, h.Residual, i, ps.Count)
		case !residual && h.Index != i:
			return nil, fmt.Errorf("cubestore: decode set: partition %d carries index %d", i, h.Index)
		}
		ps.Parts = append(ps.Parts, p)
	}
	return ps, nil
}
