// Package cubestore stores a computed closed (iceberg) cube in a form built
// for serving point and slice queries. The closed cube is a lossless
// compression of the full cube (quotient-cube semantics): the count of ANY
// cell — closed or not — equals the count of its closure, the most specific
// closed cell covering it. The store therefore answers arbitrary group-by
// point queries without the base relation and without the QC-tree's
// worst-case-exponential drill-down walk.
//
// Layout: cells are grouped per cuboid, i.e. per fixed-dimension mask. Each
// group holds the cells' fixed values as packed keys (the codec of
// core.AppendValue, 4 bytes per fixed dimension, dimensions ascending),
// sorted lexicographically, with parallel count and optional measure arrays.
// A point query probes the query's own cuboid with one binary search (a hit
// is the cell itself, hence exact) and otherwise probes the covering cuboids
// — fixed-dimension superset groups — narrowing by binary search on the
// longest bound prefix and taking the maximum count over covering cells,
// which is the closure's count (equal-count ties resolve to the most
// specific cell, the true closure). Covering scans go through the
// cuboid-lattice index: per-dimension lists of the groups fixing that
// dimension, of which the query's shortest is walked — bounding probe cost
// by the candidate count instead of NumCuboids. A miss means the cell is
// empty or fell below the iceberg threshold the cube was computed with.
//
// Beyond point and slice probes, the store answers predicate sub-cube
// selections (Select) and group-by / top-k aggregation (Aggregate); see
// query.go.
//
// A Store is immutable after Build and safe for concurrent readers (the
// probe counter is atomic).
package cubestore

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"ccubing/internal/core"
)

// group holds one cuboid: all stored cells fixing exactly the dimensions in
// mask. keys is the row-major packed-key matrix (rows() rows of width bytes),
// sorted lexicographically; counts and aux are parallel to the rows.
//
//ccubing:freeze
type group struct {
	mask   core.Mask
	dims   []int // mask's dimensions, ascending
	width  int   // bytes per key: core.ValueWidth * len(dims)
	keys   []byte
	counts []int64
	aux    []float64 // nil when the store carries no measure
}

//ccubing:hotpath
func (g *group) rows() int { return len(g.counts) }

//ccubing:hotpath
func (g *group) row(i int) []byte { return g.keys[i*g.width : (i+1)*g.width] }

// find binary-searches for an exact key, returning its row or -1.
//
//ccubing:hotpath
func (g *group) find(key []byte) int {
	n := g.rows()
	if g.width == 0 {
		// The apex cuboid has a single, keyless row.
		if n > 0 {
			return 0
		}
		return -1
	}
	//ccubing:allow sort.Search callback is inlined and never escapes
	i := sort.Search(n, func(i int) bool { return bytes.Compare(g.row(i), key) >= 0 })
	if i < n && bytes.Equal(g.row(i), key) {
		return i
	}
	return -1
}

// prefixRange returns the half-open row range whose keys start with prefix.
//
//ccubing:hotpath
func (g *group) prefixRange(prefix []byte) (int, int) {
	n := g.rows()
	p := len(prefix)
	if p == 0 {
		return 0, n
	}
	//ccubing:allow sort.Search callback is inlined and never escapes
	lo := sort.Search(n, func(i int) bool { return bytes.Compare(g.row(i)[:p], prefix) >= 0 })
	//ccubing:allow sort.Search callback is inlined and never escapes
	hi := sort.Search(n, func(i int) bool { return bytes.Compare(g.row(i)[:p], prefix) > 0 })
	return lo, hi
}

// probeStripes is the number of independent cache lines the probe counter is
// striped over. A single shared atomic serializes every concurrent reader on
// one cache line (the contention behind the old parallel-query slowdown);
// each probe scratch is pinned to one stripe instead, and Probes() sums.
const probeStripes = 8

// stripedCount is one probe-counter stripe, padded to a cache line so
// neighboring stripes never false-share.
type stripedCount struct {
	n atomic.Int64
	_ [56]byte
}

// probeScratch holds the per-call buffers of the probe path — packed-key
// bytes, the candidate-merge list, the residual field filters — so Lookup,
// Query, Slice, Select and Aggregate run allocation-free in steady state.
// Scratches are pooled per store and pinned to a probe-counter stripe.
type probeScratch struct {
	key    []byte
	cands  []*group
	rest   []fieldMatch
	probes int64 // probes accumulated by the current call, flushed on release
	nOps   int64 // point-lookup operations begun by the current call
	nCand  int64 // candidate-list entries scanned by the current call
	stripe uint32
}

// fieldMatch is one residual bound-dimension filter of a covering probe: the
// packed value expected at a byte offset of each candidate row.
type fieldMatch struct {
	off int
	val [core.ValueWidth]byte
}

// Store is an immutable, concurrency-safe closed-cube query index. Frozen:
// after Build/Load/MergePartitions publish a Store, its fields (and its
// groups') are never written again — cclint's storemut analyzer enforces
// this outside the //ccubing:mutates builder files.
//
//ccubing:freeze
type Store struct {
	nd     int
	hasAux bool
	groups []*group // ascending by mask
	byMask map[core.Mask]*group
	// byDim is the cuboid-lattice index: byDim[d] lists the groups whose mask
	// fixes dimension d, ascending by mask. Covering probes iterate the
	// shortest list among a query's bound dimensions instead of every group,
	// bounding probe cost by the candidate count.
	byDim [][]*group
	cells int64
	// res, when non-nil, is the residual summary of the iceberg pruning the
	// cube was computed with (sub-threshold base cells with counts and stored
	// aggregates), making Aggregate exact at any threshold. Nil on stores
	// built without one — including every pre-residual snapshot.
	res *Residual
	// probes counts covering-group probes performed by Lookup, Slice, Select
	// and Aggregate since the store was built — an observability counter,
	// striped across cache lines so concurrent readers don't contend.
	probes  [probeStripes]stripedCount
	scratch sync.Pool // *probeScratch
	stripes atomic.Uint32
}

// getScratch takes a probe scratch from the pool (allocating buffers sized
// for this store on a pool miss, with stripes assigned round-robin).
//
//ccubing:hotpath
func (s *Store) getScratch() *probeScratch {
	if v := s.scratch.Get(); v != nil {
		return v.(*probeScratch)
	}
	return s.newScratch()
}

// newScratch is the pool-miss cold path of getScratch, kept out of the hot
// path so its allocations are visibly one-time.
func (s *Store) newScratch() *probeScratch {
	return &probeScratch{
		key:    make([]byte, 0, s.nd*core.ValueWidth),
		cands:  make([]*group, 0, 64),
		rest:   make([]fieldMatch, 0, core.MaxDims),
		stripe: s.stripes.Add(1) % probeStripes,
	}
}

// putScratch flushes the scratch's probe tallies into its stripe (the
// store's own counter plus the package-wide totals) and returns the scratch
// to the pool.
//
//ccubing:hotpath
func (s *Store) putScratch(sc *probeScratch) {
	if sc.probes != 0 {
		s.probes[sc.stripe].n.Add(sc.probes)
		totalProbes[sc.stripe].n.Add(sc.probes)
		sc.probes = 0
	}
	if sc.nOps != 0 {
		totalOps[sc.stripe].n.Add(sc.nOps)
		sc.nOps = 0
	}
	if sc.nCand != 0 {
		totalCands[sc.stripe].n.Add(sc.nCand)
		sc.nCand = 0
	}
	s.scratch.Put(sc)
}

// Package-wide probe totals, striped like the per-store counter and flushed
// on the same scratch release. Per-store counters die with their store when
// a refresh publishes a replacement; these survive the swap, so process
// metrics built on them stay monotonic.
var (
	totalOps    [probeStripes]stripedCount
	totalProbes [probeStripes]stripedCount
	totalCands  [probeStripes]stripedCount
)

// ProbeTotals reports cumulative probe statistics across every store that
// has served in this process: point-lookup operations (Query/Lookup calls),
// covering groups probed, and candidate-list entries scanned. The ratios
// groupsProbed/ops and candidates/ops are the mean probe depth and mean
// candidate list length the lattice index delivers.
func ProbeTotals() (ops, groupsProbed, candidates int64) {
	for i := range totalOps {
		ops += totalOps[i].n.Load()
		groupsProbed += totalProbes[i].n.Load()
		candidates += totalCands[i].n.Load()
	}
	return ops, groupsProbed, candidates
}

// NumDims returns the dimensionality of the stored cube.
func (s *Store) NumDims() int { return s.nd }

// NumCells returns the number of stored closed cells.
func (s *Store) NumCells() int64 { return s.cells }

// NumCuboids returns the number of non-empty cuboid groups.
func (s *Store) NumCuboids() int { return len(s.groups) }

// HasAux reports whether cells carry a complex-measure value.
func (s *Store) HasAux() bool { return s.hasAux }

// Probes returns the cumulative number of cuboid groups probed by covering
// scans (Lookup misses of the exact cuboid, Slice, Select, Aggregate) since
// the store was built. Monotonic; the delta across a query bounds the
// lattice-indexed probe cost and is asserted by tests and benchmarks.
func (s *Store) Probes() int64 {
	var total int64
	for i := range s.probes {
		total += s.probes[i].n.Load()
	}
	return total
}

// candidates returns the groups whose mask can cover q (mask ⊇ q), ascending
// by mask: the intersection of the two shortest per-dimension lattice lists
// among q's bound dimensions (every covering group fixes all bound
// dimensions, so it appears in both). Entries still need the mask-superset
// check — the result is a superset of the covering groups, but its length,
// not NumCuboids, bounds the scan. With a single bound dimension that
// dimension's list is returned directly; a fully-wildcard query is covered by
// every group. The merge path writes into *buf (the caller's scratch,
// regrown in place), so steady-state calls never allocate.
//
//ccubing:hotpath
func (s *Store) candidates(q core.Mask, buf *[]*group) []*group {
	if q == 0 {
		return s.groups
	}
	var best, second []*group
	first := true
	for m := uint64(q); m != 0; m &= m - 1 {
		l := s.byDim[bits.TrailingZeros64(m)]
		switch {
		case first:
			best, first = l, false
		case len(l) < len(best):
			best, second = l, best
		case second == nil || len(l) < len(second):
			second = l
		}
	}
	// An empty list is the tightest bound of all: no group fixes that
	// dimension, so nothing can cover q.
	if len(best) == 0 || second == nil {
		return best
	}
	// Both lists ascend by mask (buildIndex appends in group order), so the
	// intersection is a linear merge.
	out := (*buf)[:0]
	for i, j := 0, 0; i < len(best) && j < len(second); {
		switch {
		case best[i] == second[j]:
			out = append(out, best[i])
			i++
			j++
		case best[i].mask < second[j].mask:
			i++
		default:
			j++
		}
	}
	*buf = out
	return out
}

// Bytes returns the approximate in-memory payload size: packed keys plus
// count and measure arrays, plus the residual summary when one is attached.
func (s *Store) Bytes() int64 {
	var b int64
	for _, g := range s.groups {
		b += int64(len(g.keys)) + 8*int64(len(g.counts)) + 8*int64(len(g.aux))
	}
	return b + s.res.Bytes()
}

// queryMask computes the fixed-dimension mask of a query vector. A query of
// the wrong arity is a programmer error, not a miss: it panics (like an
// out-of-range index) so shape bugs surface instead of reading as
// below-threshold cells.
//
//ccubing:hotpath
func (s *Store) queryMask(vals []core.Value) core.Mask {
	if len(vals) != s.nd {
		//ccubing:allow panic path only; a wrong-arity query is a shape bug, not a probe
		panic(fmt.Sprintf("cubestore: query has %d dimensions, store has %d", len(vals), s.nd))
	}
	var q core.Mask
	for d, v := range vals {
		if v != core.Star {
			q = q.With(d)
		}
	}
	return q
}

// probe scans one covering group for cells matching the query values on the
// query's bound dimensions, reporting the best (maximum-count) matching row,
// or -1. Rows counting no more than floor are skipped, so callers encode the
// tie-break policy in the floor they pass. q must be a subset of g.mask. The
// scratch supplies the prefix and residual-filter buffers, keeping the probe
// allocation-free.
//
//ccubing:hotpath
func (g *group) probe(q core.Mask, vals []core.Value, floor int64, sc *probeScratch) (int, int64) {
	// The leading run of g's dimensions that the query binds forms a key
	// prefix, narrowing the scan by binary search.
	p := 0
	for p < len(g.dims) && q.Has(g.dims[p]) {
		p++
	}
	prefix := core.AppendValues(sc.key[:0], vals, g.dims[:p])
	sc.key = prefix
	lo, hi := g.prefixRange(prefix)
	if lo >= hi {
		return -1, floor
	}
	// Remaining bound dimensions to filter on within the range.
	rest := sc.rest[:0]
	for j := p; j < len(g.dims); j++ {
		if q.Has(g.dims[j]) {
			var f fieldMatch
			f.off = j * core.ValueWidth
			core.AppendValue(f.val[:0], vals[g.dims[j]])
			rest = append(rest, f)
		}
	}
	sc.rest = rest
	bestRow := -1
	for i := lo; i < hi; i++ {
		if g.counts[i] <= floor {
			continue
		}
		row := g.row(i)
		ok := true
		for _, f := range rest {
			if !bytes.Equal(row[f.off:f.off+core.ValueWidth], f.val[:]) {
				ok = false
				break
			}
		}
		if ok {
			floor = g.counts[i]
			bestRow = i
		}
	}
	return bestRow, floor
}

// Query returns the count of an arbitrary cell (core.Star marks wildcard
// dimensions). The second result is false when the cell is empty or fell
// below the iceberg threshold of the stored cube. It panics if vals does not
// have exactly NumDims entries. Unlike Lookup it never materializes the
// closure cell, so steady-state calls are allocation-free.
//
//ccubing:hotpath
func (s *Store) Query(vals []core.Value) (int64, bool) {
	sc := s.getScratch()
	g, row := s.lookupRow(vals, sc)
	var count int64
	if row >= 0 {
		count = g.counts[row]
	}
	s.putScratch(sc)
	return count, row >= 0
}

// Lookup resolves an arbitrary cell to its closure: the stored closed cell
// covering it with the same count (and measure value). The returned cell's
// Values slice is freshly allocated. ok is false when the cell is empty or
// below the stored cube's iceberg threshold. It panics if vals does not have
// exactly NumDims entries.
func (s *Store) Lookup(vals []core.Value) (core.Cell, bool) {
	sc := s.getScratch()
	g, row := s.lookupRow(vals, sc)
	s.putScratch(sc)
	if row < 0 {
		return core.Cell{}, false
	}
	return s.cellAt(g, row), true
}

// lookupRow locates the closure of an arbitrary cell as a (group, row) pair,
// row -1 on a miss: the shared, allocation-free core of Query and Lookup.
//
//ccubing:hotpath
func (s *Store) lookupRow(vals []core.Value, sc *probeScratch) (*group, int) {
	sc.nOps++
	q := s.queryMask(vals)
	// Fast path: the queried cell is itself closed — a hit in its own cuboid
	// is exact (covering cells in superset cuboids never exceed its count).
	if g := s.byMask[q]; g != nil {
		key := core.AppendValues(sc.key[:0], vals, g.dims)
		sc.key = key
		if i := g.find(key); i >= 0 {
			return g, i
		}
	}
	// The cell is not closed (or absent): its closure lives in a cuboid
	// fixing a strict superset of the query's dimensions. Among covering
	// cells the closure has the maximum count; equal-count ties break toward
	// the most specific (largest-mask) covering cell — with equal counts the
	// covering cells aggregate the same tuples, so the most specific one IS
	// the closure, and the tie-break keeps the returned cell deterministic
	// and exact even for stores holding non-closed cells. The lattice index
	// bounds the scan to candidate groups instead of all NumCuboids groups.
	best := int64(-1)
	bestSpec := -1
	var bestG *group
	bestRow := -1
	cands := s.candidates(q, &sc.cands)
	sc.nCand += int64(len(cands))
	for _, g := range cands {
		if g.mask&q != q || g.mask == q {
			continue
		}
		sc.probes++
		// A group at most as specific as the current best can only win with a
		// strictly larger count; a more specific one also wins a count tie.
		floor := best
		if len(g.dims) > bestSpec {
			floor = best - 1
		}
		if row, b := g.probe(q, vals, floor, sc); row >= 0 {
			best, bestSpec, bestG, bestRow = b, len(g.dims), g, row
		}
	}
	return bestG, bestRow
}

// cellAt materializes row i of g as a full-width cell.
func (s *Store) cellAt(g *group, i int) core.Cell {
	vals := make([]core.Value, s.nd)
	for d := range vals {
		vals[d] = core.Star
	}
	row := g.row(i)
	for j, d := range g.dims {
		vals[d] = core.DecodeValue(row[j*core.ValueWidth:])
	}
	c := core.Cell{Values: vals, Count: g.counts[i]}
	if g.aux != nil {
		c.Aux = g.aux[i]
	}
	return c
}

// Slice visits every stored closed cell inside the sub-cube the query pins
// down: cells fixing a superset of the query's bound dimensions with matching
// values. Visiting order is cuboid mask ascending, packed key ascending
// within a cuboid. Each visited cell is freshly allocated; return false from
// visit to stop early. It panics if vals does not have exactly NumDims
// entries, like Query.
func (s *Store) Slice(vals []core.Value, visit func(core.Cell) bool) {
	q := s.queryMask(vals)
	sc := s.getScratch()
	defer s.putScratch(sc)
	cands := s.candidates(q, &sc.cands)
	sc.nCand += int64(len(cands))
	for _, g := range cands {
		if g.mask&q != q {
			continue
		}
		sc.probes++
		p := 0
		for p < len(g.dims) && q.Has(g.dims[p]) {
			p++
		}
		prefix := core.AppendValues(sc.key[:0], vals, g.dims[:p])
		sc.key = prefix
		lo, hi := g.prefixRange(prefix)
	rows:
		for i := lo; i < hi; i++ {
			row := g.row(i)
			for j := p; j < len(g.dims); j++ {
				if !q.Has(g.dims[j]) {
					continue
				}
				if core.DecodeValue(row[j*core.ValueWidth:]) != vals[g.dims[j]] {
					continue rows
				}
			}
			if !visit(s.cellAt(g, i)) {
				return
			}
		}
	}
}

// Walk visits every stored cell (cuboid mask ascending, key ascending).
func (s *Store) Walk(visit func(core.Cell) bool) {
	for _, g := range s.groups {
		for i := 0; i < g.rows(); i++ {
			if !visit(s.cellAt(g, i)) {
				return
			}
		}
	}
}
