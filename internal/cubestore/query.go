package cubestore

import (
	"fmt"
	"sort"

	"ccubing/internal/core"
)

// This file implements the aggregate query engine over the closed-cube store:
// per-dimension predicates (exact, range, value set, wildcard), predicate
// slices (Select) and group-by / top-k aggregation (Aggregate). The engine
// exploits the quotient-cube property twice: candidate cells are enumerated
// from the stored closed cells via the cuboid-lattice index, and every
// distinct group-by combination is resolved to its exact count through one
// closure lookup — deduplicated by combination, so a cell covered by closed
// cells in several cuboids is never double-counted.

// PredKind discriminates the per-dimension predicate forms.
type PredKind uint8

const (
	// PredAny matches every value (wildcard dimension).
	PredAny PredKind = iota
	// PredEq matches exactly Val.
	PredEq
	// PredRange matches values in the inclusive interval [Lo, Hi].
	PredRange
	// PredIn matches any value in Set.
	PredIn
)

// Pred is one dimension's predicate.
type Pred struct {
	Kind   PredKind
	Val    core.Value   // PredEq
	Lo, Hi core.Value   // PredRange, inclusive; Lo > Hi matches nothing
	Set    []core.Value // PredIn; empty matches nothing
}

// Bound reports whether the predicate constrains its dimension.
func (p Pred) Bound() bool { return p.Kind != PredAny }

// Match reports whether v satisfies the predicate.
func (p Pred) Match(v core.Value) bool {
	switch p.Kind {
	case PredAny:
		return true
	case PredEq:
		return v == p.Val
	case PredRange:
		return v >= p.Lo && v <= p.Hi
	default:
		for _, sv := range p.Set {
			if v == sv {
				return true
			}
		}
		return false
	}
}

// Spec is a conjunctive sub-cube selection: one predicate per dimension.
type Spec struct {
	Preds []Pred
}

// boundMask returns the mask of constrained dimensions; panics on arity
// mismatch, like queryMask.
func (s *Store) boundMask(spec Spec) core.Mask {
	if len(spec.Preds) != s.nd {
		panic(fmt.Sprintf("cubestore: spec has %d dimensions, store has %d", len(spec.Preds), s.nd))
	}
	var m core.Mask
	for d, p := range spec.Preds {
		if p.Bound() {
			m = m.With(d)
		}
	}
	return m
}

// Select visits every stored closed cell matching the spec: cells that fix
// each constrained dimension with a value satisfying its predicate (the
// predicate generalization of Slice). Visiting order is cuboid mask
// ascending, packed key ascending within a cuboid; return false from visit to
// stop early. Exact at any iceberg threshold, since it filters stored cells.
// Panics when the spec does not have exactly NumDims predicates.
func (s *Store) Select(spec Spec, visit func(core.Cell) bool) {
	q := s.boundMask(spec)
	sc := s.getScratch()
	defer s.putScratch(sc)
	cands := s.candidates(q, &sc.cands)
	sc.nCand += int64(len(cands))
	for _, g := range cands {
		if g.mask&q != q {
			continue
		}
		sc.probes++
		// A leading run of exact predicates forms a key prefix, narrowing the
		// row range by binary search as in Slice.
		p := 0
		prefix := sc.key[:0]
		for p < len(g.dims) && spec.Preds[g.dims[p]].Kind == PredEq {
			prefix = core.AppendValue(prefix, spec.Preds[g.dims[p]].Val)
			p++
		}
		sc.key = prefix
		lo, hi := g.prefixRange(prefix)
	rows:
		for i := lo; i < hi; i++ {
			row := g.row(i)
			for j := p; j < len(g.dims); j++ {
				pred := spec.Preds[g.dims[j]]
				if !pred.Bound() {
					continue
				}
				if !pred.Match(core.DecodeValue(row[j*core.ValueWidth:])) {
					continue rows
				}
			}
			if !visit(s.cellAt(g, i)) {
				return
			}
		}
	}
}

// AggBy picks the ranking measure of a top-k aggregation.
type AggBy uint8

const (
	// ByCount ranks groups by aggregated count, descending.
	ByCount AggBy = iota
	// ByAux ranks groups by the aggregated measure value, descending.
	ByAux
)

// AuxAgg picks how measure values combine across the cells of one group.
type AuxAgg uint8

const (
	// AuxSum adds measure values (correct for sum-aggregated cubes).
	AuxSum AuxAgg = iota
	// AuxMin keeps the minimum (correct for min-aggregated cubes).
	AuxMin
	// AuxMax keeps the maximum (correct for max-aggregated cubes).
	AuxMax
)

// AggOptions configures Aggregate.
type AggOptions struct {
	// GroupBy lists the dimensions whose value combinations form the result
	// rows; empty computes one grand-total row under the spec's predicates.
	GroupBy []int
	// TopK truncates the result to the k best rows by By; 0 keeps all rows.
	TopK int
	// By ranks rows for TopK (and orders the truncated result best-first).
	By AggBy
	// AuxAgg combines measure values across a group; must match the measure
	// kind the cube was aggregated with for the result to be meaningful.
	AuxAgg AuxAgg
}

// Aggregate answers a group-by query under per-dimension predicates: for
// every distinct value combination on the GroupBy dimensions among tuples
// satisfying the spec, the aggregated count (and measure). Result rows fix
// exactly the GroupBy dimensions, Star elsewhere.
//
// Execution enumerates the distinct value combinations over the union of
// GroupBy and constrained dimensions from the stored closed cells (lattice
// candidates only), deduplicates them — a combination covered by closed cells
// in several cuboids counts once — and resolves each combination to its exact
// count via its closure. Combinations partition the matching tuples, so the
// per-group sums are exact for cubes computed at min_sup 1. On iceberg cubes
// the stored cells alone make the aggregates lower bounds — combinations
// whose count fell below the threshold are absent — but a store carrying a
// residual (HasResidual) recovers exactness: a combination missing from the
// enumeration has count < min_sup, so every base tuple it covers is a
// residual row, and folding the residual rows of exactly those combinations
// back in reconstructs the true aggregates (enumerated combinations already
// carry true counts through their closures, so their residual tuples are
// skipped — no double counting).
//
// Rows are ordered by descending rank (count or measure per opt.By) with ties
// broken by packed group key ascending, so results are deterministic; without
// TopK the same order is used. Panics when the spec's arity or a GroupBy
// dimension is out of range.
func (s *Store) Aggregate(spec Spec, opt AggOptions) []core.Cell {
	q := s.boundMask(spec)
	var gm core.Mask
	for _, d := range opt.GroupBy {
		if d < 0 || d >= s.nd {
			panic(fmt.Sprintf("cubestore: group-by dimension %d out of range (store has %d)", d, s.nd))
		}
		gm = gm.With(d)
	}
	gc := gm | q // enumeration cuboid: group-by plus constrained dimensions
	gcDims := gc.Dims(nil)
	gmDims := gm.Dims(nil)

	// Grand total without predicates: the apex cell, one closure lookup. The
	// apex aggregates every tuple — pruned mass included — so no residual
	// fold-in is needed on a hit; on a miss (the whole relation fell below
	// the threshold) the residual IS the relation.
	vals := make([]core.Value, s.nd)
	if gc == 0 {
		for d := range vals {
			vals[d] = core.Star
		}
		c, ok := s.Lookup(vals)
		if ok {
			return []core.Cell{{Values: valuesAt(s.nd, nil, nil), Count: c.Count, Aux: c.Aux}}
		}
		if s.res == nil || s.res.NumRows() == 0 {
			return nil
		}
		total := core.Cell{Values: valuesAt(s.nd, nil, nil)}
		first := true
		s.res.Walk(func(_ []core.Value, count int64, aux float64) bool {
			total.Count += count
			switch {
			case first:
				total.Aux = aux
				first = false
			case opt.AuxAgg == AuxMin:
				if aux < total.Aux {
					total.Aux = aux
				}
			case opt.AuxAgg == AuxMax:
				if aux > total.Aux {
					total.Aux = aux
				}
			default:
				total.Aux += aux
			}
			return true
		})
		return []core.Cell{total}
	}

	// Pass 1: enumerate the distinct pred-satisfying value combinations on
	// the gc dimensions from the stored cells fixing all of them. Every
	// above-threshold combination appears (its closure fixes a superset of gc
	// with the combination's values), and the map deduplicates combinations
	// covered by cells from several cuboids.
	combos := map[string]struct{}{}
	keyBuf := make([]byte, 0, len(gcDims)*core.ValueWidth)
	pos := make([]int, 0, core.MaxDims)
	sc := s.getScratch()
	gcands := s.candidates(gc, &sc.cands)
	sc.nCand += int64(len(gcands))
	for _, g := range gcands {
		if g.mask&gc != gc {
			continue
		}
		sc.probes++
		// A leading run of exact predicates narrows the row range by binary
		// search, as in Select.
		p := 0
		prefix := sc.key[:0]
		for p < len(g.dims) && spec.Preds[g.dims[p]].Kind == PredEq {
			prefix = core.AppendValue(prefix, spec.Preds[g.dims[p]].Val)
			p++
		}
		sc.key = prefix
		lo, hi := g.prefixRange(prefix)
		// Positions of the gc dimensions inside this group's key layout.
		pos = pos[:0]
		for j, d := range g.dims {
			if gc.Has(d) {
				pos = append(pos, j)
			}
		}
	rows:
		for i := lo; i < hi; i++ {
			row := g.row(i)
			key := keyBuf[:0]
			for _, j := range pos {
				v := core.DecodeValue(row[j*core.ValueWidth:])
				if j >= p && !spec.Preds[g.dims[j]].Match(v) {
					continue rows
				}
				key = append(key, row[j*core.ValueWidth:(j+1)*core.ValueWidth]...)
			}
			combos[string(key)] = struct{}{}
		}
	}
	// Release before the per-combination lookups of pass 2, so they reuse the
	// same scratch instead of growing the pool.
	s.putScratch(sc)

	// Pass 2: resolve each combination through its closure (exact count and
	// measure) and fold it into its group.
	type agg struct {
		count int64
		aux   float64
		n     int64 // combinations folded in, for min/max seeding
	}
	groupRows := map[string]*agg{}
	fold := func(gkey string, count int64, aux float64) {
		a := groupRows[gkey]
		if a == nil {
			a = &agg{}
			groupRows[gkey] = a
		}
		a.count += count
		switch {
		case a.n == 0:
			a.aux = aux
		case opt.AuxAgg == AuxMin:
			if aux < a.aux {
				a.aux = aux
			}
		case opt.AuxAgg == AuxMax:
			if aux > a.aux {
				a.aux = aux
			}
		default:
			a.aux += aux
		}
		a.n++
	}
	for key := range combos {
		for d := range vals {
			vals[d] = core.Star
		}
		for k, d := range gcDims {
			vals[d] = core.DecodeValue([]byte(key)[k*core.ValueWidth:])
		}
		c, ok := s.Lookup(vals)
		if !ok {
			// Unreachable for combinations sourced from stored cells (their
			// closure is stored); guard anyway so a corrupt store degrades to
			// an undercount rather than a panic.
			continue
		}
		gkey := string(core.AppendValues(make([]byte, 0, len(gmDims)*core.ValueWidth), vals, gmDims))
		fold(gkey, c.Count, c.Aux)
	}

	// Residual pass: recover the iceberg-pruned mass. Residual rows whose
	// gc-combination was enumerated above are already counted through that
	// combination's closure and are skipped; the rest belong to combinations
	// entirely below the threshold, whose tuples are all residual rows, so
	// folding them tuple-by-tuple reconstructs the exact aggregates.
	if s.res != nil && s.res.NumRows() > 0 {
		comboBuf := make([]byte, 0, len(gcDims)*core.ValueWidth)
		gkeyBuf := make([]byte, 0, len(gmDims)*core.ValueWidth)
		s.res.Walk(func(rvals []core.Value, count int64, aux float64) bool {
			for d, p := range spec.Preds {
				if p.Bound() && !p.Match(rvals[d]) {
					return true
				}
			}
			comboBuf = core.AppendValues(comboBuf[:0], rvals, gcDims)
			if _, stored := combos[string(comboBuf)]; stored {
				return true
			}
			gkeyBuf = core.AppendValues(gkeyBuf[:0], rvals, gmDims)
			fold(string(gkeyBuf), count, aux)
			return true
		})
	}

	type outRow struct {
		cell core.Cell
		key  string // packed group key, reused as the sort tie-break
	}
	rows := make([]outRow, 0, len(groupRows))
	for gkey, a := range groupRows {
		rows = append(rows, outRow{
			cell: core.Cell{Values: valuesAt(s.nd, gmDims, []byte(gkey)), Count: a.count, Aux: a.aux},
			key:  gkey,
		})
	}
	rank := func(c core.Cell) float64 {
		if opt.By == ByAux {
			return c.Aux
		}
		return float64(c.Count)
	}
	sort.Slice(rows, func(i, j int) bool {
		ri, rj := rank(rows[i].cell), rank(rows[j].cell)
		if ri != rj {
			return ri > rj
		}
		return rows[i].key < rows[j].key
	})
	if opt.TopK > 0 && len(rows) > opt.TopK {
		rows = rows[:opt.TopK]
	}
	out := make([]core.Cell, len(rows))
	for i, r := range rows {
		out[i] = r.cell
	}
	return out
}

// valuesAt builds a full-width value vector fixing dims with the packed key's
// values and Star elsewhere.
func valuesAt(nd int, dims []int, key []byte) []core.Value {
	vals := make([]core.Value, nd)
	for d := range vals {
		vals[d] = core.Star
	}
	for k, d := range dims {
		vals[d] = core.DecodeValue(key[k*core.ValueWidth:])
	}
	return vals
}
