//go:build !race

package cubestore

const raceEnabled = false
