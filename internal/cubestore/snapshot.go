// Snapshot persistence: Load is a freeze-file — it assembles Store and group
// values that are immutable once returned.
//
//ccubing:mutates Store, group

package cubestore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"ccubing/internal/core"
)

// Snapshot format (all integers uvarint unless noted, little-endian):
//
//	magic   "CCSTOR\x00" + version byte (8 bytes raw)
//	nd      dimensions
//	hasAux  1 byte (0/1)
//	ngroups cuboid groups, ascending mask
//	per group:
//	  mask   uvarint
//	  rows   uvarint
//	  keys   rows*width raw bytes (width = 4 * popcount(mask))
//	  counts rows uvarints
//	  aux    rows float64 bit patterns (8 bytes LE each), only when hasAux
//	residual section, version >= 2 only:
//	  rows   uvarint (0 is valid: nothing fell below the threshold)
//	  keys   rows*nd*4 raw bytes (full-width packed keys, strictly sorted)
//	  counts rows uvarints (each >= 1)
//	  aux    rows float64 bit patterns (8 bytes LE each), only when hasAux
//	crc32   IEEE checksum of everything above (4 bytes LE, raw)
//
// Groups and rows are written in the store's canonical order (masks
// ascending, keys lexicographic), so Save is deterministic: Save → Load →
// Save reproduces identical bytes. Stores without a residual are written as
// version 1 — byte-identical to pre-residual snapshots — so only
// residual-carrying stores need the newer reader.

const snapshotMagic = "CCSTOR\x00"

// SnapshotVersion is the current snapshot format version: version 2 appends
// the residual section of iceberg-pruned mass. Version 1 snapshots (no
// residual) still load, and Save emits version 1 when no residual is
// attached.
const SnapshotVersion = 2

// snapshotVersionLegacy is the residual-free format every snapshot used
// before version 2 and residual-free stores still use.
const snapshotVersionLegacy = 1

// maxSnapshotRows bounds one cuboid group's declared row count during Load:
// far above any real cube, and small enough that the count fits int (and
// row counts times ValueWidth fit int64) on every platform.
const maxSnapshotRows = 1<<31 - 1

// ReadAllChunked reads exactly n bytes, growing the buffer as data actually
// arrives so a corrupt length prefix fails on EOF instead of pre-allocating
// the declared size. Shared with the facade's cube-snapshot loader.
func ReadAllChunked(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[len(buf)-step:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// crcWriter tees writes through a CRC32 accumulator.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// Save writes the store's snapshot to w.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(snapshotMagic)); err != nil {
		return fmt.Errorf("cubestore: save: %w", err)
	}
	version := byte(snapshotVersionLegacy)
	if s.res != nil {
		version = SnapshotVersion
	}
	if _, err := cw.Write([]byte{version}); err != nil {
		return fmt.Errorf("cubestore: save: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}
	if err := putUvarint(uint64(s.nd)); err != nil {
		return fmt.Errorf("cubestore: save: %w", err)
	}
	hasAux := byte(0)
	if s.hasAux {
		hasAux = 1
	}
	if _, err := cw.Write([]byte{hasAux}); err != nil {
		return fmt.Errorf("cubestore: save: %w", err)
	}
	if err := putUvarint(uint64(len(s.groups))); err != nil {
		return fmt.Errorf("cubestore: save: %w", err)
	}
	for _, g := range s.groups {
		if err := putUvarint(uint64(g.mask)); err != nil {
			return fmt.Errorf("cubestore: save: %w", err)
		}
		if err := putUvarint(uint64(g.rows())); err != nil {
			return fmt.Errorf("cubestore: save: %w", err)
		}
		if _, err := cw.Write(g.keys); err != nil {
			return fmt.Errorf("cubestore: save: %w", err)
		}
		for _, c := range g.counts {
			if err := putUvarint(uint64(c)); err != nil {
				return fmt.Errorf("cubestore: save: %w", err)
			}
		}
		if s.hasAux {
			for _, a := range g.aux {
				binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(a))
				if _, err := cw.Write(scratch[:8]); err != nil {
					return fmt.Errorf("cubestore: save: %w", err)
				}
			}
		}
	}
	if s.res != nil {
		if err := putUvarint(uint64(s.res.NumRows())); err != nil {
			return fmt.Errorf("cubestore: save: residual: %w", err)
		}
		if _, err := cw.Write(s.res.keys); err != nil {
			return fmt.Errorf("cubestore: save: residual: %w", err)
		}
		for _, c := range s.res.counts {
			if err := putUvarint(uint64(c)); err != nil {
				return fmt.Errorf("cubestore: save: residual: %w", err)
			}
		}
		if s.hasAux {
			for i := range s.res.counts {
				var a float64
				if s.res.aux != nil {
					a = s.res.aux[i]
				}
				binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(a))
				if _, err := cw.Write(scratch[:8]); err != nil {
					return fmt.Errorf("cubestore: save: residual: %w", err)
				}
			}
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("cubestore: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cubestore: save: %w", err)
	}
	return nil
}

// crcReader tees reads through a CRC32 accumulator.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Load reads a snapshot written by Save, validating the header, structural
// invariants and the trailing checksum.
func Load(r io.Reader) (*Store, error) {
	return load(&crcReader{r: bufio.NewReader(r)})
}

func load(cr *crcReader) (*Store, error) {
	rd := &byteReader{r: cr}
	var head [8]byte
	if _, err := io.ReadFull(rd, head[:]); err != nil {
		return nil, fmt.Errorf("cubestore: load: %w", err)
	}
	if string(head[:7]) != snapshotMagic {
		return nil, fmt.Errorf("cubestore: load: bad magic %q", head[:7])
	}
	version := head[7]
	if version < snapshotVersionLegacy || version > SnapshotVersion {
		return nil, fmt.Errorf("cubestore: load: unsupported snapshot version %d (want %d..%d)", version, snapshotVersionLegacy, SnapshotVersion)
	}
	nd64, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("cubestore: load: %w", err)
	}
	if nd64 == 0 || nd64 > uint64(core.MaxDims) {
		return nil, fmt.Errorf("cubestore: load: %d dimensions out of range", nd64)
	}
	nd := int(nd64)
	auxByte, err := rd.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("cubestore: load: %w", err)
	}
	if auxByte > 1 {
		return nil, fmt.Errorf("cubestore: load: bad aux flag %d", auxByte)
	}
	hasAux := auxByte == 1
	ngroups, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("cubestore: load: %w", err)
	}
	if ngroups > 1<<uint(min(nd, 62)) {
		return nil, fmt.Errorf("cubestore: load: %d cuboid groups exceed 2^%d", ngroups, nd)
	}
	s := &Store{
		nd:     nd,
		hasAux: hasAux,
		groups: make([]*group, 0, ngroups),
		byMask: make(map[core.Mask]*group, ngroups),
	}
	var prevMask uint64
	for gi := uint64(0); gi < ngroups; gi++ {
		mask64, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("cubestore: load: group %d: %w", gi, err)
		}
		if nd < core.MaxDims && mask64 >= 1<<uint(nd) {
			return nil, fmt.Errorf("cubestore: load: group %d: mask %#x exceeds %d dimensions", gi, mask64, nd)
		}
		// Unsigned comparison: dimension 63 sets the top bit, which a signed
		// compare would misread as negative.
		if gi > 0 && mask64 <= prevMask {
			return nil, fmt.Errorf("cubestore: load: group masks out of order")
		}
		prevMask = mask64
		rows64, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("cubestore: load: group %d: %w", gi, err)
		}
		// Bound rows before allocating: a corrupt or hostile varint must
		// yield a load error, not a makeslice panic or a giant allocation.
		if rows64 > maxSnapshotRows {
			return nil, fmt.Errorf("cubestore: load: group %d: implausible row count %d", gi, rows64)
		}
		rows := int(rows64)
		g := &group{mask: core.Mask(mask64)}
		g.dims = g.mask.Dims(nil)
		g.width = core.ValueWidth * len(g.dims)
		// rows*width computed in int64: on 32-bit platforms the product can
		// exceed int even though rows passed the bound above.
		keysLen := int64(rows64) * int64(g.width)
		if keysLen > int64(^uint(0)>>1) {
			return nil, fmt.Errorf("cubestore: load: group %d: %d key bytes exceed this platform", gi, keysLen)
		}
		if g.keys, err = ReadAllChunked(rd, int(keysLen)); err != nil {
			return nil, fmt.Errorf("cubestore: load: group %d keys: %w", gi, err)
		}
		// Binary search depends on strictly ascending keys; Builder.Build
		// guarantees it on the write side, so non-sorted input is corruption.
		for i := 1; i < rows && g.width > 0; i++ {
			if bytes.Compare(g.row(i-1), g.row(i)) >= 0 {
				return nil, fmt.Errorf("cubestore: load: group %d: keys not strictly sorted at row %d", gi, i)
			}
		}
		if g.width == 0 && rows > 1 {
			return nil, fmt.Errorf("cubestore: load: apex group has %d rows", rows)
		}
		g.counts = make([]int64, rows)
		for i := range g.counts {
			c, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, fmt.Errorf("cubestore: load: group %d counts: %w", gi, err)
			}
			g.counts[i] = int64(c)
		}
		if hasAux {
			g.aux = make([]float64, rows)
			var buf [8]byte
			for i := range g.aux {
				if _, err := io.ReadFull(rd, buf[:]); err != nil {
					return nil, fmt.Errorf("cubestore: load: group %d aux: %w", gi, err)
				}
				g.aux[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
		}
		s.groups = append(s.groups, g)
		s.byMask[g.mask] = g
		s.cells += int64(rows)
	}
	if version >= SnapshotVersion {
		res, err := loadResidual(rd, nd, hasAux)
		if err != nil {
			return nil, err
		}
		s.res = res
	}
	want := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(rd, tail[:]); err != nil {
		return nil, fmt.Errorf("cubestore: load: checksum: %w", err)
	}
	// The checksum bytes themselves were folded into cr.crc by the read; the
	// value captured before reading them is the one to compare.
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("cubestore: load: checksum mismatch (%#x != %#x)", got, want)
	}
	s.buildIndex()
	return s, nil
}

// loadResidual parses the version-2 residual section, validating the same
// structural invariants group loading enforces: bounded row counts, bounds
// checked before allocation, strictly sorted keys, positive counts.
func loadResidual(rd *byteReader, nd int, hasAux bool) (*Residual, error) {
	rows64, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("cubestore: load: residual: %w", err)
	}
	if rows64 > maxSnapshotRows {
		return nil, fmt.Errorf("cubestore: load: residual: implausible row count %d", rows64)
	}
	rows := int(rows64)
	res := &Residual{nd: nd, hasAux: hasAux}
	keysLen := int64(rows64) * int64(nd) * core.ValueWidth
	if keysLen > int64(^uint(0)>>1) {
		return nil, fmt.Errorf("cubestore: load: residual: %d key bytes exceed this platform", keysLen)
	}
	if res.keys, err = ReadAllChunked(rd, int(keysLen)); err != nil {
		return nil, fmt.Errorf("cubestore: load: residual keys: %w", err)
	}
	for i := 1; i < rows; i++ {
		if bytes.Compare(res.row(i-1), res.row(i)) >= 0 {
			return nil, fmt.Errorf("cubestore: load: residual keys not strictly sorted at row %d", i)
		}
	}
	res.counts = make([]int64, rows)
	for i := range res.counts {
		c, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("cubestore: load: residual counts: %w", err)
		}
		if c == 0 {
			return nil, fmt.Errorf("cubestore: load: residual row %d has count 0", i)
		}
		res.counts[i] = int64(c)
	}
	if hasAux {
		res.aux = make([]float64, rows)
		var buf [8]byte
		for i := range res.aux {
			if _, err := io.ReadFull(rd, buf[:]); err != nil {
				return nil, fmt.Errorf("cubestore: load: residual aux: %w", err)
			}
			res.aux[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
	}
	return res, nil
}

// byteReader adds the io.ByteReader binary.ReadUvarint needs on top of a
// plain reader without buffering ahead (which would desync the CRC tee).
type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}
