package cubestore

// Steady-state allocation regression tests for the probe path: Query and the
// covering scan behind Lookup must not allocate per operation (scratch is
// pooled per store). Bounds allow a fraction of an alloc per op because a GC
// pass can empty the sync.Pool mid-measurement.

import (
	"testing"

	"ccubing/internal/core"
)

func TestQueryAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the probe path; counts are not meaningful")
	}
	cards := []int{8, 6, 5, 4}
	tbl := testTable(t, 3000, cards, 0.8, 11)
	s := buildFromClosed(t, tbl, 2)

	hit := []core.Value{tbl.Cols[0][0], core.Star, tbl.Cols[2][0], core.Star}
	miss := []core.Value{core.Value(cards[0]), core.Star, core.Star, core.Star}
	s.Query(hit)
	s.Query(miss)

	if n := testing.AllocsPerRun(1000, func() { s.Query(hit) }); n > 0.5 {
		t.Fatalf("Query(hit) allocates %v per op; want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { s.Query(miss) }); n > 0.5 {
		t.Fatalf("Query(miss) allocates %v per op; want 0", n)
	}
}

func TestLookupAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the probe path; counts are not meaningful")
	}
	cards := []int{8, 6, 5, 4}
	tbl := testTable(t, 3000, cards, 0.8, 11)
	s := buildFromClosed(t, tbl, 2)

	// A miss never materializes a result cell, so the whole covering scan
	// must be allocation-free.
	miss := []core.Value{core.Value(cards[0]), core.Star, core.Star, core.Star}
	s.Lookup(miss)
	if n := testing.AllocsPerRun(1000, func() { s.Lookup(miss) }); n > 0.5 {
		t.Fatalf("Lookup(miss) allocates %v per op; want 0", n)
	}

	// A hit allocates only the returned closure cell (its values slice),
	// which callers own — the probe machinery itself adds nothing.
	hit := []core.Value{tbl.Cols[0][0], core.Star, core.Star, core.Star}
	if _, ok := s.Lookup(hit); !ok {
		t.Fatal("expected a stored covering cell")
	}
	if n := testing.AllocsPerRun(1000, func() { s.Lookup(hit) }); n > 2.5 {
		t.Fatalf("Lookup(hit) allocates %v per op; want <= 2 (the returned cell)", n)
	}
}
