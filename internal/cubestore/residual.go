// Residual construction is builder-side mutation: a Residual is immutable
// after build()/ComputeResidual return, and Store.res is only assigned by the
// freeze files (Build, Load, MergePartitions).
//
//ccubing:mutates Store, group

package cubestore

import (
	"bytes"
	"fmt"
	"sort"

	"ccubing/internal/core"
)

// Residual summarizes the mass an iceberg cube pruned away: the distinct
// all-dimensions-fixed base cells whose multiplicity fell below the iceberg
// threshold, each with its count and stored measure aggregate (in the style
// of the Cubes Convexes borders). A store carrying a residual answers
// aggregate queries exactly at ANY group-by: a group-by combination absent
// from the stored cells has count < min_sup, so every base tuple it covers
// has multiplicity < min_sup and is present here; combinations that are
// stored already carry their true counts, so their residual tuples are
// skipped (no double counting).
//
// Rows are packed full-width keys (every dimension fixed, core.AppendValue
// codec), strictly sorted, with parallel count and optional stored-aggregate
// arrays. Immutable after construction.
type Residual struct {
	nd     int
	hasAux bool
	keys   []byte // rows * nd * core.ValueWidth bytes, strictly ascending
	counts []int64
	aux    []float64 // nil when !hasAux
}

// ResidualRow is one materialized sub-threshold base cell.
type ResidualRow struct {
	Values []core.Value
	Count  int64
	Aux    float64 // stored measure aggregate (avg: the running sum)
}

// NumRows returns the number of sub-threshold base cells.
func (r *Residual) NumRows() int { return len(r.counts) }

// HasAux reports whether rows carry a stored measure aggregate.
func (r *Residual) HasAux() bool { return r.hasAux }

func (r *Residual) width() int { return r.nd * core.ValueWidth }

func (r *Residual) row(i int) []byte {
	w := r.width()
	return r.keys[i*w : (i+1)*w]
}

// rowValues decodes row i into vals (which must have nd entries).
func (r *Residual) rowValues(i int, vals []core.Value) {
	row := r.row(i)
	for d := 0; d < r.nd; d++ {
		vals[d] = core.DecodeValue(row[d*core.ValueWidth:])
	}
}

// Walk visits every residual row in key order. The vals slice passed to visit
// is reused between calls; copy to retain. Return false to stop early.
func (r *Residual) Walk(visit func(vals []core.Value, count int64, aux float64) bool) {
	vals := make([]core.Value, r.nd)
	for i := range r.counts {
		r.rowValues(i, vals)
		var a float64
		if r.hasAux {
			a = r.aux[i]
		}
		if !visit(vals, r.counts[i], a) {
			return
		}
	}
}

// Rows materializes every residual row (key order, freshly allocated).
func (r *Residual) Rows() []ResidualRow {
	out := make([]ResidualRow, 0, r.NumRows())
	r.Walk(func(vals []core.Value, count int64, aux float64) bool {
		out = append(out, ResidualRow{
			Values: append([]core.Value(nil), vals...),
			Count:  count,
			Aux:    aux,
		})
		return true
	})
	return out
}

// Bytes returns the approximate in-memory payload size.
func (r *Residual) Bytes() int64 {
	if r == nil {
		return 0
	}
	return int64(len(r.keys)) + 8*int64(len(r.counts)) + 8*int64(len(r.aux))
}

// ComputeResidual scans a relation once and returns the residual of an
// iceberg computation at minSup over it: one row per distinct full-width
// tuple with multiplicity < minSup, counts and (when aux is non-nil) stored
// measure aggregates of kind. The result is engine-independent — it depends
// only on the relation and the threshold — and never nil; minSup <= 1 yields
// zero rows (nothing is pruned).
func ComputeResidual(cols core.Columns, aux []float64, minSup int64, kind core.MeasureKind) *Residual {
	nd := len(cols)
	res := &Residual{nd: nd, hasAux: aux != nil}
	if nd == 0 || len(cols[0]) == 0 || minSup <= 1 {
		return res
	}
	n := len(cols[0])
	type acc struct {
		count int64
		aux   float64
	}
	groups := make(map[string]*acc)
	key := make([]byte, 0, nd*core.ValueWidth)
	for tid := 0; tid < n; tid++ {
		key = key[:0]
		for d := 0; d < nd; d++ {
			key = core.AppendValue(key, cols[d][tid])
		}
		a := groups[string(key)]
		if a == nil {
			a = &acc{aux: core.StoredIdentity(kind)}
			groups[string(key)] = a
		}
		a.count++
		if aux != nil {
			a.aux = core.CombineStored(kind, a.aux, aux[tid])
		}
	}
	keys := make([]string, 0, len(groups))
	for k, a := range groups {
		if a.count < minSup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	res.counts = make([]int64, 0, len(keys))
	if aux != nil {
		res.aux = make([]float64, 0, len(keys))
	}
	for _, k := range keys {
		a := groups[k]
		res.keys = append(res.keys, k...)
		res.counts = append(res.counts, a.count)
		if aux != nil {
			res.aux = append(res.aux, a.aux)
		}
	}
	return res
}

// residualFromRows canonicalizes materialized rows into a Residual: sorted by
// packed key, duplicates rejected. hasAux selects whether aggregates are
// kept.
func residualFromRows(nd int, hasAux bool, rows []ResidualRow) (*Residual, error) {
	res := &Residual{nd: nd, hasAux: hasAux}
	if len(rows) == 0 {
		return res, nil
	}
	type packed struct {
		key   string
		count int64
		aux   float64
	}
	ps := make([]packed, len(rows))
	buf := make([]byte, 0, nd*core.ValueWidth)
	for i, row := range rows {
		if len(row.Values) != nd {
			return nil, fmt.Errorf("cubestore: residual row has %d dimensions, want %d", len(row.Values), nd)
		}
		buf = buf[:0]
		for _, v := range row.Values {
			if v == core.Star {
				return nil, fmt.Errorf("cubestore: residual row leaves a dimension wildcard")
			}
			buf = core.AppendValue(buf, v)
		}
		if row.Count < 1 {
			return nil, fmt.Errorf("cubestore: residual row has count %d < 1", row.Count)
		}
		ps[i] = packed{key: string(buf), count: row.Count, aux: row.Aux}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].key < ps[j].key })
	res.counts = make([]int64, 0, len(ps))
	if hasAux {
		res.aux = make([]float64, 0, len(ps))
	}
	for i, p := range ps {
		if i > 0 && p.key == ps[i-1].key {
			return nil, fmt.Errorf("cubestore: duplicate residual row")
		}
		res.keys = append(res.keys, p.key...)
		res.counts = append(res.counts, p.count)
		if hasAux {
			res.aux = append(res.aux, p.aux)
		}
	}
	return res, nil
}

// mergeResiduals merges two sorted residuals into one, rejecting duplicate
// keys. Either side may be nil or empty; hasAux of the result follows the
// arguments (they must agree when both carry rows).
func mergeResiduals(nd int, hasAux bool, a, b *Residual) (*Residual, error) {
	out := &Residual{nd: nd, hasAux: hasAux}
	an, bn := 0, 0
	if a != nil {
		an = a.NumRows()
	}
	if b != nil {
		bn = b.NumRows()
	}
	out.counts = make([]int64, 0, an+bn)
	if hasAux {
		out.aux = make([]float64, 0, an+bn)
	}
	i, j := 0, 0
	for i < an && j < bn {
		switch bytes.Compare(a.row(i), b.row(j)) {
		case -1:
			out.takeRow(a, i)
			i++
		case 1:
			out.takeRow(b, j)
			j++
		default:
			return nil, fmt.Errorf("cubestore: merge: duplicate residual row")
		}
	}
	for ; i < an; i++ {
		out.takeRow(a, i)
	}
	for ; j < bn; j++ {
		out.takeRow(b, j)
	}
	return out, nil
}

// takeRow appends row i of src to out, the per-row step of the residual
// merge. Growth is amortized self-append into capacity mergeResiduals sized
// up front, so the merge loop stays allocation-free in steady state.
//
//ccubing:hotpath
func (out *Residual) takeRow(src *Residual, i int) {
	out.keys = append(out.keys, src.row(i)...)
	out.counts = append(out.counts, src.counts[i])
	if out.hasAux {
		var v float64
		if src.hasAux {
			v = src.aux[i]
		}
		out.aux = append(out.aux, v)
	}
}

// HasResidual reports whether the store carries the residual summary of its
// iceberg pruning — the condition under which Aggregate answers exactly at
// any threshold (see Residual).
func (s *Store) HasResidual() bool { return s.res != nil }

// ResidualRows returns the number of residual rows (0 when no residual is
// attached — use HasResidual to distinguish "absent" from "empty").
func (s *Store) ResidualRows() int64 {
	if s.res == nil {
		return 0
	}
	return int64(s.res.NumRows())
}

// Residual returns the attached residual summary, or nil.
func (s *Store) Residual() *Residual { return s.res }
