package cubestore

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ccubing/internal/core"
)

// splitStore builds a closed store from a synthetic table and splits it on
// the leading dimension across n owners by value mod n.
func splitStore(t testing.TB, minsup int64, n int, seed int64) (*Store, *PartitionSet) {
	t.Helper()
	tbl := testTable(t, 250, []int{6, 5, 4, 3}, 0.8, seed)
	b := NewBuilder(tbl.NumDims(), false)
	for _, c := range closedCells(t, tbl, minsup) {
		b.Add(c.Values, c.Count, 0)
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Split(s, 0, n, func(v core.Value) int { return int(v) % n }, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s, ps
}

// TestSplitMergeByteIdentity is the partition-layer invariant: splitting a
// canonical store into owner partitions plus the residual and merging them
// back reproduces the original snapshot bytes exactly, for several shard
// counts and iceberg thresholds.
func TestSplitMergeByteIdentity(t *testing.T) {
	for _, minsup := range []int64{1, 3} {
		for _, n := range []int{1, 2, 4, 7} {
			s, ps := splitStore(t, minsup, n, int64(100*n)+minsup)
			// Every cell lands in exactly one partition.
			var total int64
			for _, p := range ps.Parts {
				total += p.Store.NumCells()
			}
			if total != s.NumCells() {
				t.Fatalf("minsup %d n %d: partitions hold %d cells, store has %d", minsup, n, total, s.NumCells())
			}
			m, err := ps.Merge()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(storeBytes(t, m), storeBytes(t, s)) {
				t.Fatalf("minsup %d n %d: merged snapshot differs from original", minsup, n)
			}
		}
	}
}

// TestPartitionSetEncodeDecode round-trips the framed stream and checks the
// decoded set merges back to the original bytes, aux payloads included.
func TestPartitionSetEncodeDecode(t *testing.T) {
	b := NewBuilder(3, true)
	b.Add([]core.Value{0, 1, 2}, 2, 1.5)
	b.Add([]core.Value{1, 1, core.Star}, 3, 2.5)
	b.Add([]core.Value{2, core.Star, 0}, 1, -4.25)
	b.Add([]core.Value{core.Star, 1, core.Star}, 5, 4.0)
	b.Add([]core.Value{core.Star, core.Star, core.Star}, 6, 0.25)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Split(s, 0, 2, func(v core.Value) int { return int(v) % 2 }, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ps.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePartitionSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 0 || got.Count != 2 || got.Generation != 42 || len(got.Parts) != 3 {
		t.Fatalf("decoded set header = %+v with %d parts", got, len(got.Parts))
	}
	if !got.Parts[2].Header.Residual || got.Parts[2].Header.Generation != 42 {
		t.Fatalf("residual frame header = %+v", got.Parts[2].Header)
	}
	m, err := got.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeBytes(t, m), storeBytes(t, s)) {
		t.Fatal("decoded+merged snapshot differs from original")
	}
}

// TestPartitionFrameTruncation mirrors the WAL crash fuzz: a stream cut at
// every byte offset must fail to decode with an error — never panic, never
// yield a partition set silently missing cells.
func TestPartitionFrameTruncation(t *testing.T) {
	_, ps := splitStore(t, 1, 2, 9)
	var buf bytes.Buffer
	if err := ps.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodePartitionSet(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(full))
		}
	}
	if _, err := DecodePartitionSet(bytes.NewReader(full)); err != nil {
		t.Fatalf("decode of intact stream: %v", err)
	}
}

// TestPartitionFrameCorruption flips every byte of each checksum field (the
// set preamble CRC, each frame header CRC, and each payload's snapshot CRC)
// and requires decoding to fail with a checksum error.
func TestPartitionFrameCorruption(t *testing.T) {
	_, ps := splitStore(t, 1, 2, 11)
	var buf bytes.Buffer
	if err := ps.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Locate the CRC fields from the known layout: the set preamble ends
	// with 4 CRC bytes; each frame's header ends with 4 CRC bytes followed
	// by paylen payload bytes whose last 4 are the snapshot CRC.
	var crcOffsets []int
	r := bytes.NewReader(full)
	pos := func() int { return len(full) - r.Len() }
	skipPreamble := func(n int) {
		r.Seek(int64(pos()+n), 0)
	}
	// Re-decode structurally to find offsets: decode preamble fields.
	readUvarint := func() uint64 {
		v, err := readUvarintAt(r)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	skipPreamble(8) // magic+version
	readUvarint()   // dim
	count := readUvarint()
	readUvarint() // generation
	crcOffsets = append(crcOffsets, pos())
	skipPreamble(4)
	for i := uint64(0); i <= count; i++ {
		skipPreamble(8) // frame magic+version
		readUvarint()   // dim
		readUvarint()   // index
		readUvarint()   // count
		skipPreamble(1) // flags
		readUvarint()   // generation
		paylen := int(readUvarint())
		crcOffsets = append(crcOffsets, pos()) // frame header CRC
		skipPreamble(4)
		crcOffsets = append(crcOffsets, pos()+paylen-4) // snapshot CRC
		skipPreamble(paylen)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left after structural walk", r.Len())
	}
	for _, off := range crcOffsets {
		for b := off; b < off+4; b++ {
			mut := append([]byte(nil), full...)
			mut[b] ^= 0x5a
			_, err := DecodePartitionSet(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("decode succeeded with flipped CRC byte at offset %d", b)
			}
			if !strings.Contains(err.Error(), "checksum") {
				t.Fatalf("flipped CRC byte at offset %d: error %q does not mention checksum", b, err)
			}
		}
	}
}

// readUvarintAt reads one uvarint from a bytes.Reader without buffering.
func readUvarintAt(r *bytes.Reader) (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
}

// TestPartitionFrameRandomCorruption flips random single bytes anywhere in
// the stream: decoding must either fail or — when the flip lands somewhere
// truly unchecked — still merge to the original cells. With every region
// CRC-protected, silent corruption would be a framing bug.
func TestPartitionFrameRandomCorruption(t *testing.T) {
	orig, ps := splitStore(t, 1, 2, 13)
	var buf bytes.Buffer
	if err := ps.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	want := storeBytes(t, orig)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), full...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		got, err := DecodePartitionSet(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		m, err := got.Merge()
		if err != nil {
			continue
		}
		if !bytes.Equal(storeBytes(t, m), want) {
			t.Fatalf("trial %d: corrupted stream decoded to different cells", trial)
		}
	}
}

// TestSplitRejects covers the validation surface: bad dimension, bad owner
// range, and a residual frame smuggling a fixed-dimension cell into Merge.
func TestSplitRejects(t *testing.T) {
	s, ps := splitStore(t, 1, 2, 15)
	if _, err := Split(s, -1, 2, func(core.Value) int { return 0 }, 0); err == nil {
		t.Fatal("Split accepted dim -1")
	}
	if _, err := Split(s, s.NumDims(), 2, func(core.Value) int { return 0 }, 0); err == nil {
		t.Fatal("Split accepted out-of-range dim")
	}
	if _, err := Split(s, 0, 0, func(core.Value) int { return 0 }, 0); err == nil {
		t.Fatal("Split accepted zero owners")
	}
	if _, err := Split(s, 0, 2, func(core.Value) int { return 2 }, 0); err == nil {
		t.Fatal("Split accepted an out-of-range owner")
	}

	// Swap an owner partition into the residual slot: Merge must notice the
	// fixed-dimension cells where only wildcards belong.
	bad := &PartitionSet{Dim: ps.Dim, Count: ps.Count, Generation: ps.Generation}
	bad.Parts = append(bad.Parts, ps.Parts[0], ps.Parts[1], ps.Parts[0])
	if _, err := bad.Merge(); err == nil {
		t.Fatal("Merge accepted an owner store in the residual slot")
	}

	// Duplicate owner partitions: the same cells twice must be rejected,
	// not summed.
	dup := &PartitionSet{Dim: ps.Dim, Count: ps.Count, Generation: ps.Generation}
	dup.Parts = append(dup.Parts, ps.Parts[0], ps.Parts[0], ps.Parts[2])
	if _, err := dup.Merge(); err == nil {
		t.Fatal("Merge accepted duplicate partitions")
	}
}
