package cubestore

import (
	"bytes"
	"math/rand"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/qcdfs"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// closedCells computes the closed iceberg cube of tbl with QC-DFS.
func closedCells(t testing.TB, tbl *table.Table, minsup int64) []core.Cell {
	t.Helper()
	col := &sink.Collector{}
	if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: minsup}, col); err != nil {
		t.Fatal(err)
	}
	return col.Cells
}

// storeBytes canonicalizes a store as its snapshot bytes.
func storeBytes(t testing.TB, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergePartitionsMatchesRebuild fuzzes the merge constructor: the closed
// cube of a grown relation assembled by merging (retained cells of untouched
// partitions + recomputed cells of touched partitions and the wildcard slice)
// must be byte-identical to the store built from scratch.
func TestMergePartitionsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, minsup := range []int64{1, 3} {
		for trial := 0; trial < 10; trial++ {
			cards := []int{4 + rng.Intn(5), 5, 4, 3}
			nd := len(cards)
			dim := 0
			base := testTable(t, 300+rng.Intn(200), cards, 0.8, int64(trial+10*int(minsup)))

			// Grow the relation: appended tuples touch a strict subset of the
			// leading-dimension partitions (including possibly a new value).
			touched := map[core.Value]bool{core.Value(rng.Intn(cards[dim])): true}
			if rng.Intn(2) == 0 {
				touched[core.Value(cards[dim])] = true // brand-new partition
			}
			var touchedVals []core.Value
			for v := range touched {
				touchedVals = append(touchedVals, v)
			}
			nDelta := 30 + rng.Intn(40)
			full := table.New(nd, base.NumTuples()+nDelta)
			copy(full.Names, base.Names)
			for d := 0; d < nd; d++ {
				copy(full.Cols[d], base.Cols[d])
			}
			for i := 0; i < nDelta; i++ {
				tid := base.NumTuples() + i
				full.Cols[dim][tid] = touchedVals[rng.Intn(len(touchedVals))]
				for d := 1; d < nd; d++ {
					full.Cols[d][tid] = core.Value(rng.Intn(cards[d]))
				}
			}
			full.Recount()

			// From-scratch store of the full relation: the reference.
			fullCells := closedCells(t, full, minsup)
			rb := NewBuilder(nd, false)
			for _, c := range fullCells {
				rb.Add(c.Values, c.Count, 0)
			}
			want, err := rb.Build()
			if err != nil {
				t.Fatal(err)
			}

			// Merge path: old store + the full relation's cells restricted to
			// replaced partitions and the wildcard slice.
			old := buildFromClosed(t, base, minsup)
			var fresh []core.Cell
			for _, c := range fullCells {
				if v := c.Values[dim]; v == core.Star || touched[v] {
					fresh = append(fresh, c)
				}
			}
			got, err := old.MergePartitions(dim, func(v core.Value) bool { return touched[v] }, fresh, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(storeBytes(t, got), storeBytes(t, want)) {
				t.Fatalf("minsup=%d trial %d: merged store differs from rebuild (%d vs %d cells)",
					minsup, trial, got.NumCells(), want.NumCells())
			}
		}
	}
}

// TestMergePartitionsAux checks measure values survive retention and merge.
func TestMergePartitionsAux(t *testing.T) {
	b := NewBuilder(2, true)
	b.Add([]core.Value{0, 1}, 2, 1.5)
	b.Add([]core.Value{1, 1}, 3, 2.5)
	b.Add([]core.Value{0, core.Star}, 2, 1.5)
	b.Add([]core.Value{core.Star, 1}, 5, 4.0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fresh := []core.Cell{
		{Values: []core.Value{1, 1}, Count: 4, Aux: 9.5},
		{Values: []core.Value{1, 0}, Count: 1, Aux: 0.5},
		{Values: []core.Value{core.Star, 1}, Count: 6, Aux: 11.0},
	}
	m, err := s.MergePartitions(0, func(v core.Value) bool { return v == 1 }, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		q     []core.Value
		count int64
		aux   float64
	}{
		{[]core.Value{0, 1}, 2, 1.5},          // retained
		{[]core.Value{1, 1}, 4, 9.5},          // replaced
		{[]core.Value{1, 0}, 1, 0.5},          // new cell in a replaced partition
		{[]core.Value{core.Star, 1}, 6, 11.0}, // wildcard slice rebuilt
	} {
		c, ok := m.Lookup(tc.q)
		if !ok || c.Count != tc.count || c.Aux != tc.aux {
			t.Fatalf("lookup %v = (%v, %v), want count %d aux %g", tc.q, c, ok, tc.count, tc.aux)
		}
	}
	// Retained: (0,1) and (0,*); fresh: the three replacement cells.
	if m.NumCells() != 5 {
		t.Fatalf("merged cells = %d, want 5", m.NumCells())
	}
}

// TestMergePartitionsEmptyReplacement pins the tombstone regime: a replaced
// partition may contribute no fresh cells at all (every tuple of it was
// deleted, or iceberg pruning removed the survivors) — its old cells simply
// vanish, cuboid groups that empty out are dropped, and the merge may even
// produce a store with zero cells.
func TestMergePartitionsEmptyReplacement(t *testing.T) {
	b := NewBuilder(2, false)
	b.Add([]core.Value{0, 1}, 2, 0)
	b.Add([]core.Value{1, 1}, 3, 0)
	b.Add([]core.Value{1, 2}, 1, 0)
	b.Add([]core.Value{core.Star, 1}, 5, 0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Partition 1 vanishes with no replacements; the wildcard slice shrinks
	// to the surviving partition's projection.
	fresh := []core.Cell{{Values: []core.Value{core.Star, 1}, Count: 2}}
	m, err := s.MergePartitions(0, func(v core.Value) bool { return v == 1 }, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 2 {
		t.Fatalf("merged cells = %d, want 2 (retained (0,1), rebuilt (*,1))", m.NumCells())
	}
	if _, ok := m.Query([]core.Value{1, 1}); ok {
		t.Fatal("vanished partition still answers")
	}
	if c, ok := m.Lookup([]core.Value{core.Star, 1}); !ok || c.Count != 2 {
		t.Fatalf("wildcard slice = (%v, %v), want count 2", c, ok)
	}

	// Degenerate total wipe: every partition replaced, nothing fresh. The
	// merged store is empty but fully functional.
	empty, err := s.MergePartitions(0, func(core.Value) bool { return true }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumCells() != 0 || empty.NumCuboids() != 0 {
		t.Fatalf("wiped store has %d cells in %d cuboids, want 0", empty.NumCells(), empty.NumCuboids())
	}
	if _, ok := empty.Query([]core.Value{core.Star, core.Star}); ok {
		t.Fatal("empty store answered the apex")
	}
	// An empty store still snapshots and reloads.
	img := storeBytes(t, empty)
	re, err := Load(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if re.NumCells() != 0 {
		t.Fatalf("reloaded empty store has %d cells", re.NumCells())
	}
}

// TestMergePartitionsRejects pins the misuse errors: wrong arity, a fresh
// cell fixing the partition dimension to an unreplaced value, duplicates.
func TestMergePartitionsRejects(t *testing.T) {
	b := NewBuilder(2, false)
	b.Add([]core.Value{0, 1}, 2, 0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	replaced := func(v core.Value) bool { return v == 1 }
	if _, err := s.MergePartitions(5, replaced, nil, nil); err == nil {
		t.Fatal("out-of-range dimension must fail")
	}
	if _, err := s.MergePartitions(0, replaced, []core.Cell{{Values: []core.Value{1}}}, nil); err == nil {
		t.Fatal("wrong-arity fresh cell must fail")
	}
	if _, err := s.MergePartitions(0, replaced, []core.Cell{{Values: []core.Value{0, 2}, Count: 1}}, nil); err == nil {
		t.Fatal("fresh cell in an unreplaced partition must fail")
	}
	dup := []core.Cell{
		{Values: []core.Value{1, 2}, Count: 1},
		{Values: []core.Value{1, 2}, Count: 1},
	}
	if _, err := s.MergePartitions(0, replaced, dup, nil); err == nil {
		t.Fatal("duplicate fresh cells must fail")
	}
}
