package cubestore

import (
	"bytes"
	"math/rand"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/qcdfs"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// tupleAux derives a deterministic per-tuple measure value. Integer-valued so
// float sums stay exact regardless of accumulation order.
func tupleAux(tbl *table.Table, tid int) float64 {
	v := int64(tid % 17)
	for d := 0; d < tbl.NumDims(); d++ {
		v += int64(tbl.Cols[d][tid]) * int64(d+1)
	}
	return float64(v)
}

// bruteResidual recomputes ComputeResidual's contract by independent means:
// group tuples by full key, keep groups below minSup, aggregate aux in stored
// form (explicit arithmetic, not core.CombineStored, so the test does not
// mirror the implementation).
func bruteResidual(tbl *table.Table, minSup int64, kind core.MeasureKind) map[string]ResidualRow {
	type acc struct {
		count int64
		aux   float64
	}
	groups := map[string]*acc{}
	nd := tbl.NumDims()
	key := make([]byte, 0, nd*core.ValueWidth)
	for tid := 0; tid < tbl.NumTuples(); tid++ {
		key = key[:0]
		for d := 0; d < nd; d++ {
			key = core.AppendValue(key, tbl.Cols[d][tid])
		}
		x := tupleAux(tbl, tid)
		a := groups[string(key)]
		if a == nil {
			groups[string(key)] = &acc{count: 1, aux: x}
			continue
		}
		a.count++
		switch kind {
		case core.MeasureMin:
			if x < a.aux {
				a.aux = x
			}
		case core.MeasureMax:
			if x > a.aux {
				a.aux = x
			}
		default: // sum and avg both store the running sum
			a.aux += x
		}
	}
	out := map[string]ResidualRow{}
	for k, a := range groups {
		if a.count >= minSup {
			continue
		}
		vals := make([]core.Value, nd)
		for d := 0; d < nd; d++ {
			vals[d] = core.DecodeValue([]byte(k)[d*core.ValueWidth:])
		}
		out[k] = ResidualRow{Values: vals, Count: a.count, Aux: a.aux}
	}
	return out
}

func auxColumn(tbl *table.Table) []float64 {
	aux := make([]float64, tbl.NumTuples())
	for tid := range aux {
		aux[tid] = tupleAux(tbl, tid)
	}
	return aux
}

// TestComputeResidualBruteForce checks ComputeResidual against independent
// tuple grouping for every measure kind and several thresholds.
func TestComputeResidualBruteForce(t *testing.T) {
	tbl := testTable(t, 500, []int{8, 6, 5, 4}, 1.0, 23)
	aux := auxColumn(tbl)
	kinds := []core.MeasureKind{core.MeasureSum, core.MeasureMin, core.MeasureMax, core.MeasureAvg}
	for _, minsup := range []int64{0, 1, 2, 3, 5} {
		for _, kind := range kinds {
			res := ComputeResidual(tbl.Cols, aux, minsup, kind)
			if res == nil {
				t.Fatalf("minsup=%d kind=%v: ComputeResidual returned nil", minsup, kind)
			}
			if !res.HasAux() {
				t.Fatalf("minsup=%d kind=%v: residual built with aux must report HasAux", minsup, kind)
			}
			want := bruteResidual(tbl, minsup, kind)
			if minsup <= 1 && res.NumRows() != 0 {
				t.Fatalf("minsup=%d: %d residual rows, want 0 (nothing pruned)", minsup, res.NumRows())
			}
			if res.NumRows() != len(want) {
				t.Fatalf("minsup=%d kind=%v: %d residual rows, brute force has %d", minsup, kind, res.NumRows(), len(want))
			}
			var prev []byte
			key := make([]byte, 0, tbl.NumDims()*core.ValueWidth)
			for _, row := range res.Rows() {
				key = key[:0]
				for _, v := range row.Values {
					key = core.AppendValue(key, v)
				}
				if prev != nil && bytes.Compare(prev, key) >= 0 {
					t.Fatalf("minsup=%d kind=%v: residual rows not strictly sorted", minsup, kind)
				}
				prev = append(prev[:0], key...)
				w, ok := want[string(key)]
				if !ok {
					t.Fatalf("minsup=%d kind=%v: unexpected residual row %v", minsup, kind, row.Values)
				}
				if row.Count != w.Count || row.Aux != w.Aux {
					t.Fatalf("minsup=%d kind=%v row %v: got (count %d, aux %v), want (%d, %v)",
						minsup, kind, row.Values, row.Count, row.Aux, w.Count, w.Aux)
				}
			}
		}
	}
	// Without an aux column the residual carries counts only.
	res := ComputeResidual(tbl.Cols, nil, 3, core.MeasureNone)
	if res.HasAux() {
		t.Fatal("residual built without aux must not report HasAux")
	}
	if res.NumRows() != len(bruteResidual(tbl, 3, core.MeasureNone)) {
		t.Fatal("aux-free residual row count diverges from brute force")
	}
}

// buildWithResidual computes the closed iceberg cube of tbl at minsup with
// per-cell stored measure aggregates of kind (derived by brute force, so the
// store's contents are engine-independent) and attaches the matching residual.
func buildWithResidual(t testing.TB, tbl *table.Table, minsup int64, kind core.MeasureKind) *Store {
	t.Helper()
	col := &sink.Collector{}
	if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: minsup}, col); err != nil {
		t.Fatal(err)
	}
	aux := auxColumn(tbl)
	b := NewBuilder(tbl.NumDims(), true)
	for _, c := range col.Cells {
		a := core.StoredIdentity(kind)
		for tid := 0; tid < tbl.NumTuples(); tid++ {
			match := true
			for d, v := range c.Values {
				if v != core.Star && tbl.Cols[d][tid] != v {
					match = false
					break
				}
			}
			if match {
				a = core.CombineStored(kind, a, aux[tid])
			}
		}
		b.Add(c.Values, c.Count, a)
	}
	if err := b.SetResidual(ComputeResidual(tbl.Cols, aux, minsup, kind)); err != nil {
		t.Fatal(err)
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasResidual() {
		t.Fatal("built store lost its residual")
	}
	return s
}

// TestAggregateResidualExact is the store-layer exactness contract: an iceberg
// store carrying its residual answers Aggregate identically — counts, measure
// values, row order — to a min_sup-1 store over the same relation, for every
// measure kind and random specs/group-bys.
func TestAggregateResidualExact(t *testing.T) {
	tbl := testTable(t, 600, []int{7, 6, 5, 4}, 1.1, 31)
	cases := []struct {
		kind core.MeasureKind
		agg  AuxAgg
	}{
		{core.MeasureSum, AuxSum},
		{core.MeasureMin, AuxMin},
		{core.MeasureMax, AuxMax},
		{core.MeasureAvg, AuxSum}, // avg stores running sums; sums merge
	}
	for _, tc := range cases {
		iceberg := buildWithResidual(t, tbl, 3, tc.kind)
		oracle := buildWithResidual(t, tbl, 1, tc.kind)
		if iceberg.ResidualRows() == 0 {
			t.Fatalf("kind=%v: iceberg residual is empty — test table prunes nothing", tc.kind)
		}
		rng := rand.New(rand.NewSource(7 + int64(tc.kind)))
		for i := 0; i < 120; i++ {
			spec := randomSpec(rng, tbl.Cards)
			var groupBy []int
			for d := 0; d < tbl.NumDims(); d++ {
				if rng.Intn(3) == 0 {
					groupBy = append(groupBy, d)
				}
			}
			opt := AggOptions{GroupBy: groupBy, AuxAgg: tc.agg}
			if rng.Intn(2) == 0 {
				opt.By = ByAux
			}
			got := iceberg.Aggregate(spec, opt)
			want := oracle.Aggregate(spec, opt)
			if len(got) != len(want) {
				t.Fatalf("kind=%v spec %v group-by %v: %d rows, oracle has %d",
					tc.kind, spec.Preds, groupBy, len(got), len(want))
			}
			for j := range got {
				g, w := got[j], want[j]
				if g.Count != w.Count || g.Aux != w.Aux {
					t.Fatalf("kind=%v spec %v group-by %v row %d: got (%v, count %d, aux %v), want (%v, %d, %v)",
						tc.kind, spec.Preds, groupBy, j, g.Values, g.Count, g.Aux, w.Values, w.Count, w.Aux)
				}
				for d := range g.Values {
					if g.Values[d] != w.Values[d] {
						t.Fatalf("kind=%v row %d: group %v, oracle %v", tc.kind, j, g.Values, w.Values)
					}
				}
			}
		}
	}
}

// TestResidualSnapshotRoundTrip checks that a residual-carrying store
// round-trips byte-identically and keeps answering exactly.
func TestResidualSnapshotRoundTrip(t *testing.T) {
	tbl := testTable(t, 400, []int{6, 5, 4}, 0.9, 41)
	s := buildWithResidual(t, tbl, 3, core.MeasureSum)
	var buf1 bytes.Buffer
	if err := s.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	if got := buf1.Bytes()[7]; got != SnapshotVersion {
		t.Fatalf("residual-carrying snapshot has version byte %d, want %d", got, SnapshotVersion)
	}
	loaded, err := Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasResidual() {
		t.Fatal("residual lost across Save/Load")
	}
	if loaded.ResidualRows() != s.ResidualRows() {
		t.Fatalf("loaded %d residual rows, saved %d", loaded.ResidualRows(), s.ResidualRows())
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("residual snapshot not byte-identical after round trip (%d vs %d bytes)", buf1.Len(), buf2.Len())
	}
	a, b := s.Residual().Rows(), loaded.Residual().Rows()
	for i := range a {
		if a[i].Count != b[i].Count || a[i].Aux != b[i].Aux {
			t.Fatalf("residual row %d diverges after round trip", i)
		}
	}
	// The loaded store must keep the exactness property, not just the bytes.
	spec := Spec{Preds: make([]Pred, tbl.NumDims())}
	got := loaded.Aggregate(spec, AggOptions{GroupBy: []int{0, 1}})
	want := s.Aggregate(spec, AggOptions{GroupBy: []int{0, 1}})
	if len(got) != len(want) {
		t.Fatalf("loaded store aggregate has %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Count != want[i].Count || got[i].Aux != want[i].Aux {
			t.Fatalf("loaded store aggregate row %d diverges", i)
		}
	}
}

// TestResidualSnapshotLegacyByteIdentity pins the compatibility contract:
// a store without a residual still writes the legacy version-1 format, so
// pre-residual readers keep working and pre-residual snapshots stay valid.
func TestResidualSnapshotLegacyByteIdentity(t *testing.T) {
	tbl := testTable(t, 300, []int{5, 4, 3}, 0.6, 13)
	s := buildFromClosed(t, tbl, 3)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[7]; got != snapshotVersionLegacy {
		t.Fatalf("residual-free snapshot has version byte %d, want legacy %d", got, snapshotVersionLegacy)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HasResidual() {
		t.Fatal("legacy snapshot must load without a residual")
	}
	if loaded.ResidualRows() != 0 || loaded.Residual() != nil {
		t.Fatal("residual accessors must report absence on legacy stores")
	}
}

// TestResidualSnapshotEveryByteFlip extends the single-byte-flip guarantee to
// the residual section: every mutation of a version-2 snapshot must fail Load.
func TestResidualSnapshotEveryByteFlip(t *testing.T) {
	tbl := testTable(t, 150, []int{5, 4, 3}, 0.8, 19)
	s := buildWithResidual(t, tbl, 3, core.MeasureSum)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d of %d accepted", i, len(raw))
		}
	}
	if _, err := Load(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated residual section must fail")
	}
}

// TestResidualFromRowsValidation pins the canonicalization errors.
func TestResidualFromRowsValidation(t *testing.T) {
	good := []ResidualRow{
		{Values: []core.Value{2, 1}, Count: 2, Aux: 5},
		{Values: []core.Value{1, 3}, Count: 1, Aux: 7},
	}
	res, err := residualFromRows(2, true, good)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0].Values[0] != 1 || rows[1].Values[0] != 2 {
		t.Fatalf("rows not canonicalized into key order: %v", rows)
	}
	cases := []struct {
		name string
		rows []ResidualRow
	}{
		{"wrong arity", []ResidualRow{{Values: []core.Value{1}, Count: 1}}},
		{"wildcard dimension", []ResidualRow{{Values: []core.Value{1, core.Star}, Count: 1}}},
		{"zero count", []ResidualRow{{Values: []core.Value{1, 2}, Count: 0}}},
		{"duplicate key", []ResidualRow{
			{Values: []core.Value{1, 2}, Count: 1},
			{Values: []core.Value{1, 2}, Count: 2},
		}},
	}
	for _, tc := range cases {
		if _, err := residualFromRows(2, true, tc.rows); err == nil {
			t.Fatalf("%s must be rejected", tc.name)
		}
	}
	empty, err := residualFromRows(3, false, nil)
	if err != nil || empty == nil || empty.NumRows() != 0 {
		t.Fatalf("empty row set must build an empty residual, got (%v, %v)", empty, err)
	}
}

// TestMergeResiduals checks the sorted-merge constructor: disjoint unions
// merge in key order, duplicates are rejected, nil sides are fine.
func TestMergeResiduals(t *testing.T) {
	a, err := residualFromRows(2, true, []ResidualRow{
		{Values: []core.Value{1, 1}, Count: 1, Aux: 2},
		{Values: []core.Value{3, 0}, Count: 2, Aux: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := residualFromRows(2, true, []ResidualRow{
		{Values: []core.Value{0, 5}, Count: 1, Aux: 1},
		{Values: []core.Value{2, 2}, Count: 1, Aux: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mergeResiduals(2, true, a, b)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Rows()
	if len(rows) != 4 {
		t.Fatalf("merged %d rows, want 4", len(rows))
	}
	wantFirst := []core.Value{0, 5}
	for d, v := range wantFirst {
		if rows[0].Values[d] != v {
			t.Fatalf("merge not in key order: first row %v", rows[0].Values)
		}
	}
	if _, err := mergeResiduals(2, true, a, a); err == nil {
		t.Fatal("merging overlapping residuals must fail")
	}
	onlyA, err := mergeResiduals(2, true, a, nil)
	if err != nil || onlyA.NumRows() != a.NumRows() {
		t.Fatalf("nil side must pass through, got (%d rows, %v)", onlyA.NumRows(), err)
	}
	neither, err := mergeResiduals(2, true, nil, nil)
	if err != nil || neither.NumRows() != 0 {
		t.Fatalf("nil merge must yield empty residual, got (%v, %v)", neither, err)
	}
}

// TestMergePartitionsResidual checks the refresh path end to end at the store
// layer: replacing one partition with freshly recomputed cells plus the
// partition's fresh residual yields the same residual — and the same exact
// aggregates — as rebuilding from scratch over the updated relation.
func TestMergePartitionsResidual(t *testing.T) {
	const minsup = 3
	tbl := testTable(t, 500, []int{5, 6, 4}, 1.0, 47)
	s := buildWithResidual(t, tbl, minsup, core.MeasureSum)

	// "Refresh" partition dim0==1 with the same data. MergePartitions drops
	// replaced-partition cells AND the whole wildcard-on-dim slice, so fresh
	// carries the full relation's cells restricted to both (as the facade's
	// refresh does), with brute-force stored sums.
	col := &sink.Collector{}
	if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: minsup}, col); err != nil {
		t.Fatal(err)
	}
	var fresh []core.Cell
	for _, c := range col.Cells {
		if v := c.Values[0]; v != core.Star && v != 1 {
			continue
		}
		a := core.StoredIdentity(core.MeasureSum)
		for tid := 0; tid < tbl.NumTuples(); tid++ {
			match := true
			for d, v := range c.Values {
				if v != core.Star && tbl.Cols[d][tid] != v {
					match = false
					break
				}
			}
			if match {
				a = core.CombineStored(core.MeasureSum, a, tupleAux(tbl, tid))
			}
		}
		fresh = append(fresh, core.Cell{Values: c.Values, Count: c.Count, Aux: a})
	}
	// The fresh residual comes from the replaced partition's sub-relation
	// alone: residual rows fix every dimension, so the dim0==1 groups of the
	// full relation are exactly the sub-relation's groups.
	var subRows [][]core.Value
	var subAux []float64
	for tid := 0; tid < tbl.NumTuples(); tid++ {
		if tbl.Cols[0][tid] == 1 {
			row := make([]core.Value, tbl.NumDims())
			for d := range row {
				row[d] = tbl.Cols[d][tid]
			}
			subRows = append(subRows, row)
			subAux = append(subAux, tupleAux(tbl, tid))
		}
	}
	if len(subRows) == 0 {
		t.Fatal("test table has no tuples in the replaced partition")
	}
	sub, err := table.FromRows(subRows)
	if err != nil {
		t.Fatal(err)
	}
	freshRes := ComputeResidual(sub.Cols, subAux, minsup, core.MeasureSum)

	merged, err := s.MergePartitions(0, func(v core.Value) bool { return v == 1 }, fresh, freshRes)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.HasResidual() {
		t.Fatal("merge with freshRes must carry a residual")
	}
	// The residual is engine-independent: merging the partition recomputation
	// must reproduce the full-relation residual exactly.
	wantRows := s.Residual().Rows()
	gotRows := merged.Residual().Rows()
	if len(gotRows) != len(wantRows) {
		t.Fatalf("merged residual has %d rows, want %d", len(gotRows), len(wantRows))
	}
	for i := range gotRows {
		if gotRows[i].Count != wantRows[i].Count || gotRows[i].Aux != wantRows[i].Aux {
			t.Fatalf("merged residual row %d: got (count %d, aux %v), want (%d, %v)",
				i, gotRows[i].Count, gotRows[i].Aux, wantRows[i].Count, wantRows[i].Aux)
		}
		for d := range gotRows[i].Values {
			if gotRows[i].Values[d] != wantRows[i].Values[d] {
				t.Fatalf("merged residual row %d key diverges: %v vs %v", i, gotRows[i].Values, wantRows[i].Values)
			}
		}
	}
	// Dropping freshRes must drop the residual — honesty over optimism.
	bare, err := s.MergePartitions(0, func(v core.Value) bool { return v == 1 }, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bare.HasResidual() {
		t.Fatal("merge without freshRes must not claim a residual")
	}
	// And the merged store's aggregates stay exact against the original.
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 60; i++ {
		spec := randomSpec(rng, tbl.Cards)
		opt := AggOptions{GroupBy: []int{rng.Intn(tbl.NumDims())}, AuxAgg: AuxSum}
		got := merged.Aggregate(spec, opt)
		want := s.Aggregate(spec, opt)
		if len(got) != len(want) {
			t.Fatalf("merged aggregate has %d rows, want %d", len(got), len(want))
		}
		for j := range got {
			if got[j].Count != want[j].Count || got[j].Aux != want[j].Aux {
				t.Fatalf("merged aggregate row %d diverges: (%d,%v) vs (%d,%v)",
					j, got[j].Count, got[j].Aux, want[j].Count, want[j].Aux)
			}
		}
	}
}
