package rules

import (
	"strings"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/table"
)

func TestMineOnFunctionalData(t *testing.T) {
	// dim2 = dim0 (functional); dim1 free.
	rows := [][]core.Value{}
	for i := 0; i < 24; i++ {
		a := core.Value(i % 3)
		rows = append(rows, []core.Value{a, core.Value(i % 4), a})
	}
	tb, err := table.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := refcube.Closed(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs := Mine(tb, closed)
	if len(rs) == 0 {
		t.Fatal("expected rules on functional data")
	}
	if err := Verify(tb, rs); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Compression: rules must be fewer than closed cells (the paper's
	// motivation for rules over lower bounds).
	if len(rs) >= len(closed) {
		t.Fatalf("%d rules for %d closed cells: no compression", len(rs), len(closed))
	}
}

func TestMineOnDependentSynthetic(t *testing.T) {
	cards := []int{6, 6, 6, 6}
	planted := gen.RulesForDependence(2, cards, 3)
	tb := gen.MustSynthetic(gen.Config{T: 400, Cards: cards, S: 0.5, Seed: 4, Rules: planted})
	closed, err := refcube.Closed(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs := Mine(tb, closed)
	if err := Verify(tb, rs); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestMineSkipsTrivial(t *testing.T) {
	// Independent uniform data: closures rarely drop dimensions, so rules
	// should be rare and all valid.
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 3, C: 2, S: 0, Seed: 5})
	closed, err := refcube.Closed(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs := Mine(tb, closed)
	if err := Verify(tb, rs); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		CondDims: []int{0, 2}, CondVals: []core.Value{3, 1},
		TargDims: []int{1}, TargVals: []core.Value{4},
	}
	s := r.String()
	if !strings.Contains(s, "d0=3") || !strings.Contains(s, "-> (d1=4)") {
		t.Fatalf("String = %q", s)
	}
}

func TestVerifyCatchesViolation(t *testing.T) {
	tb, err := table.FromRows([][]core.Value{{0, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Rule{{
		CondDims: []int{0}, CondVals: []core.Value{0},
		TargDims: []int{1}, TargVals: []core.Value{0},
	}}
	if err := Verify(tb, bad); err == nil {
		t.Fatal("violated rule must be reported")
	}
}
