// Package rules mines closed rules from a closed cube (paper Sec. 6.2): a
// rule  a_c1, ..., a_ci -> a_t1, ..., a_tj  states that any cell fixing the
// condition values must also carry the target values. The paper recommends
// closed rules over per-class lower bounds because many upper/lower-bound
// pairs share one rule (their weather example: 462k closed cells compress to
// 57k rules).
package rules

import (
	"fmt"
	"sort"
	"strings"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

// Rule is one closed rule: when every condition dimension holds its value,
// the target dimensions are determined.
type Rule struct {
	CondDims []int
	CondVals []core.Value
	TargDims []int
	TargVals []core.Value
	// Support is the number of tuples matching the condition.
	Support int64
}

// String renders the rule like (d0=3, d2=1) -> (d1=4).
func (r Rule) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range r.CondDims {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "d%d=%d", d, r.CondVals[i])
	}
	b.WriteString(") -> (")
	for i, d := range r.TargDims {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "d%d=%d", d, r.TargVals[i])
	}
	b.WriteByte(')')
	return b.String()
}

// key canonicalizes a rule for deduplication.
func (r Rule) key() string {
	var b strings.Builder
	for i, d := range r.CondDims {
		fmt.Fprintf(&b, "c%d=%d;", d, r.CondVals[i])
	}
	b.WriteByte('|')
	for i, d := range r.TargDims {
		fmt.Fprintf(&b, "t%d=%d;", d, r.TargVals[i])
	}
	return b.String()
}

// Mine derives closed rules from closed cells. For each closed cell it
// greedily drops fixed dimensions whose removal keeps the match count
// unchanged; the surviving dimensions form the condition and the dropped
// ones the target. Rules with empty targets (the cell is its own minimal
// generator) are skipped, and duplicate rules are merged. The greedy
// generator is one minimal generator per cell, not all of them — enough for
// the compression the paper reports, at O(cells × dims × T) cost.
func Mine(t *table.Table, closed []core.Cell) []Rule {
	seen := map[string]bool{}
	var out []Rule
	vals := make([]core.Value, t.NumDims())
	for _, cell := range closed {
		copy(vals, cell.Values)
		fixed := make([]int, 0, len(vals))
		for d, v := range vals {
			if v != core.Star {
				fixed = append(fixed, d)
			}
		}
		if len(fixed) < 2 {
			continue
		}
		var targDims []int
		var targVals []core.Value
		// Drop dimensions in descending order: later dimensions are often
		// the determined ones in practice, matching the paper's examples.
		for i := len(fixed) - 1; i >= 0; i-- {
			d := fixed[i]
			if len(fixed)-len(targDims) <= 1 {
				break // keep at least one condition dimension
			}
			v := vals[d]
			vals[d] = core.Star
			if matchCount(t, vals) == cell.Count {
				targDims = append(targDims, d)
				targVals = append(targVals, v)
			} else {
				vals[d] = v
			}
		}
		if len(targDims) == 0 {
			continue
		}
		r := Rule{Support: cell.Count}
		for _, d := range fixed {
			if vals[d] != core.Star {
				r.CondDims = append(r.CondDims, d)
				r.CondVals = append(r.CondVals, vals[d])
			}
		}
		// Restore and record targets in ascending dimension order.
		idx := make([]int, len(targDims))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return targDims[idx[a]] < targDims[idx[b]] })
		for _, i := range idx {
			r.TargDims = append(r.TargDims, targDims[i])
			r.TargVals = append(r.TargVals, targVals[i])
		}
		if k := r.key(); !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// Verify checks that every rule holds on the relation; it returns the first
// violation found, or nil.
func Verify(t *table.Table, rs []Rule) error {
	for ri, r := range rs {
		for tid := 0; tid < t.NumTuples(); tid++ {
			match := true
			for i, d := range r.CondDims {
				if t.Cols[d][tid] != r.CondVals[i] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			for i, d := range r.TargDims {
				if t.Cols[d][tid] != r.TargVals[i] {
					return fmt.Errorf("rules: rule %d (%v) violated by tuple %d", ri, r, tid)
				}
			}
		}
	}
	return nil
}

func matchCount(t *table.Table, vals []core.Value) int64 {
	var c int64
	n := t.NumTuples()
	for tid := 0; tid < n; tid++ {
		ok := true
		for d, v := range vals {
			if v != core.Star && t.Cols[d][tid] != v {
				ok = false
				break
			}
		}
		if ok {
			c++
		}
	}
	return c
}
