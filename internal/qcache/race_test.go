package qcache

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentHammer drives Get/Put from many goroutines with keys spread
// across every shard while a separate goroutine keeps bumping the generation
// prefix — the facade's invalidation scheme, where a refresh changes the key
// prefix and stale generations age out of the LRU. Run under -race (CI does)
// it exercises the shard-lock interleavings; with or without it, the hit and
// miss counters must exactly partition the Get calls.
func TestConcurrentHammer(t *testing.T) {
	c := New(256)
	workers := 4 * runtime.GOMAXPROCS(0)
	const opsPerWorker = 2000

	var gen atomic.Uint64
	stop := make(chan struct{})
	var bumper sync.WaitGroup
	bumper.Add(1)
	go func() {
		defer bumper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				gen.Add(1)
				runtime.Gosched()
			}
		}
	}()

	var gets atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			key := make([]byte, 12)
			for i := 0; i < opsPerWorker; i++ {
				// Generation prefix plus a small key space, so goroutines
				// collide on entries in every shard and old generations
				// keep getting evicted while new ones fill in.
				binary.BigEndian.PutUint64(key[:8], gen.Load())
				binary.BigEndian.PutUint32(key[8:], uint32((seed+uint64(i))%64))
				if v, ok := c.Get(key); ok {
					if _, isInt := v.(uint64); !isInt {
						t.Errorf("cached value has wrong type %T", v)
						return
					}
				} else {
					c.Put(key, uint64(i))
				}
				gets.Add(1)
			}
		}(uint64(w) * 31)
	}
	wg.Wait()
	close(stop)
	bumper.Wait()

	hits, misses := c.Metrics()
	if hits+misses != gets.Load() {
		t.Fatalf("hits %d + misses %d = %d; want %d gets", hits, misses, hits+misses, gets.Load())
	}
	if misses == 0 {
		t.Fatal("generation bumps should force misses")
	}
	if c.Len() > 256 {
		t.Fatalf("Len = %d exceeds capacity 256", c.Len())
	}
}
